//! # EACP — Energy-Aware Adaptive Checkpointing
//!
//! A full Rust reproduction of *Li, Chen, Yu — "Performance Optimization
//! for Energy-Aware Adaptive Checkpointing in Embedded Real-Time Systems"
//! (DATE 2006)*: double-modular-redundancy (DMR) task execution with
//! store-checkpoints (SCP), compare-checkpoints (CCP) and
//! compare-and-store checkpoints (CSCP), adaptive checkpoint-interval
//! selection, optimal sub-checkpoint placement, and dynamic voltage
//! scaling (DVS) for energy reduction.
//!
//! This facade crate re-exports the whole workspace:
//!
//! * [`core`] — the paper's analysis and checkpointing policies;
//! * [`sim`] — the DMR discrete-event simulator and its `Observer` event
//!   stream;
//! * [`exec`] — the unified execution layer: `Job`s, `Runner`s, the
//!   sharded sweep executor and report renderers;
//! * [`faults`] — transient-fault arrival processes;
//! * [`energy`] — DVS speed levels and energy accounting;
//! * [`numerics`] — minimization, root finding, online statistics;
//! * [`rtsched`] — periodic task sets, feasibility tests, EDF executive;
//! * [`experiments`] — the harness regenerating the paper's Tables 1–4;
//! * [`spec`] — declarative, serializable experiment descriptions: the
//!   JSON layer driving the CLI, the experiments harness, the examples
//!   and the benches. `spec + seed = identical results`.
//!
//! # Quickstart
//!
//! Run the paper's proposed `A_D_S` scheme on its nominal operating point
//! and inspect the outcome:
//!
//! ```
//! use eacp::core::policies::Adaptive;
//! use eacp::energy::DvsConfig;
//! use eacp::faults::PoissonProcess;
//! use eacp::sim::{CheckpointCosts, Executor, Scenario, TaskSpec};
//! use rand::SeedableRng;
//!
//! let scenario = Scenario::new(
//!     TaskSpec::from_utilization(0.76, 1.0, 10_000.0),
//!     CheckpointCosts::paper_scp_variant(),
//!     DvsConfig::paper_default(),
//! );
//! let lambda = 0.0014;
//! let mut policy = Adaptive::dvs_scp(lambda, 5);
//! let mut faults =
//!     PoissonProcess::new(lambda, rand::rngs::StdRng::seed_from_u64(7));
//! let outcome = Executor::new(&scenario).run(&mut policy, &mut faults);
//! println!(
//!     "timely: {}, energy: {:.0}, rollbacks: {}",
//!     outcome.timely, outcome.energy, outcome.rollbacks
//! );
//! ```
//!
//! Regenerate the paper's tables with
//! `cargo run --release -p eacp-experiments --bin gen-tables`, and see
//! `EXPERIMENTS.md` for the full paper-vs-measured record.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use eacp_core as core;
pub use eacp_energy as energy;
pub use eacp_exec as exec;
pub use eacp_experiments as experiments;
pub use eacp_faults as faults;
pub use eacp_numerics as numerics;
pub use eacp_rtsched as rtsched;
pub use eacp_sim as sim;
pub use eacp_spec as spec;
