//! Reproduces the paper's Figures 1 and 5 from live executions: a CSCP
//! interval with sub-checkpoints, a fault, its detection point, and the
//! rollback target.
//!
//! * Fig. 1 (SCP scheme): the fault is detected at the CSCP at the end of
//!   the interval, and the pair rolls back to the most recent *clean* SCP.
//! * Fig. 5 (CCP scheme): the fault is detected at the first CCP after it
//!   strikes, and the pair rolls back to the interval start.
//!
//! The worlds are built from spec documents, so each figure's setup is a
//! serializable artifact rather than ad-hoc constructor calls.
//!
//! ```text
//! cargo run --release --example trace_timeline
//! ```

use eacp::sim::{Executor, TraceRecorder};
use eacp::spec::{CostsSpec, DvsSpec, FaultSpec, PolicySpec, ScenarioSpec, WorkSpec};

/// Short task, loose deadline, fixed speed: a readable timeline.
fn figure_scenario(costs: CostsSpec) -> ScenarioSpec {
    ScenarioSpec {
        work: WorkSpec::Cycles {
            work_cycles: 600.0,
            deadline: 50_000.0,
        },
        costs,
        dvs: DvsSpec::PaperDefault,
        processors: 2,
    }
}

fn main() {
    println!("== Figure 1: task execution with SCPs ==");
    println!("(fault in the middle of the interval; detection at the CSCP;");
    println!(" rollback to the last SCP with identical states)\n");
    let scenario = figure_scenario(CostsSpec::PaperScp) // ts = 2, tcp = 20
        .build()
        .expect("valid scenario spec");
    // Fixed speed so the timeline is easy to read; λ here only drives the
    // policy's subdivision choice — the actual fault is deterministic.
    let mut policy = PolicySpec::from_tag("a_s", 2.5e-3, 5, 0)
        .and_then(|p| p.build())
        .expect("valid policy spec");
    let mut faults = FaultSpec::Deterministic { times: vec![260.0] }
        .build(0)
        .expect("valid fault spec");
    let mut rec = TraceRecorder::new();
    let out = Executor::new(&scenario).run_observed(&mut policy, &mut faults, &mut rec);
    print!("{}", rec.render(100));
    println!(
        "-> completed={} with {} SCPs, {} CSCPs, {} rollback(s)\n",
        out.completed, out.store_checkpoints, out.compare_store_checkpoints, out.rollbacks
    );

    println!("== Figure 5: task execution with CCPs ==");
    println!("(fault detected at the next CCP; rollback to the last CSCP)\n");
    let scenario = figure_scenario(CostsSpec::PaperCcp) // ts = 20, tcp = 2
        .build()
        .expect("valid scenario spec");
    let mut policy = PolicySpec::from_tag("a_c", 2.5e-3, 5, 0)
        .and_then(|p| p.build())
        .expect("valid policy spec");
    let mut faults = FaultSpec::Deterministic { times: vec![260.0] }
        .build(0)
        .expect("valid fault spec");
    let mut rec = TraceRecorder::new();
    let out = Executor::new(&scenario).run_observed(&mut policy, &mut faults, &mut rec);
    print!("{}", rec.render(100));
    println!(
        "-> completed={} with {} CCPs, {} CSCPs, {} rollback(s)\n",
        out.completed, out.compare_checkpoints, out.compare_store_checkpoints, out.rollbacks
    );

    println!("== Bonus: a DVS run with a mid-flight downshift ==");
    let scenario = ScenarioSpec::paper_nominal().build().expect("valid spec");
    let mut policy = PolicySpec::from_tag("a_d_s", 1.4e-3, 5, 0)
        .and_then(|p| p.build())
        .expect("valid policy spec");
    let mut faults = FaultSpec::Deterministic {
        times: vec![2_000.0],
    }
    .build(0)
    .expect("valid fault spec");
    let mut rec = TraceRecorder::new();
    let out = Executor::new(&scenario).run_observed(&mut policy, &mut faults, &mut rec);
    // The full event log is long; show the bar plus the speed changes.
    let rendered = rec.render(100);
    for line in rendered.lines().take(1) {
        println!("{line}");
    }
    for line in rendered
        .lines()
        .filter(|l| l.contains("speed") || l.contains("rollback"))
    {
        println!("{line}");
    }
    println!(
        "-> timely={} energy={:.0} fast-fraction={:.2}",
        out.timely,
        out.energy,
        out.fast_fraction()
    );
}
