//! Beyond the paper: a periodic avionics-style task set under checkpointed
//! DMR execution — feasibility analysis first, then a hyperperiod
//! simulation with the paper's `A_D_S` policy per job.
//!
//! ```text
//! cargo run --release --example periodic_taskset
//! ```

use eacp::rtsched::executive::{run_executive, ExecutiveConfig};
use eacp::rtsched::feasibility::{edf_density, k_fault_wcet, rm_response_times};
use eacp::rtsched::{PeriodicTask, TaskSet};
use eacp::spec::{CostsSpec, DvsSpec, PolicySpec};

fn main() {
    let set = TaskSet::new(vec![
        PeriodicTask::new("attitude-control", 900.0, 5_000, 5_000),
        PeriodicTask::new("sensor-fusion", 1_400.0, 10_000, 10_000),
        PeriodicTask::new("telemetry-downlink", 2_600.0, 20_000, 20_000),
    ]);
    // Checkpoint costs and the DVS table come from the same spec layer the
    // CLI and the experiments harness build from.
    let costs = CostsSpec::PaperScp.build().expect("valid costs spec");
    let k = 2;

    println!("== Task set ==");
    for t in set.tasks() {
        println!(
            "{:<20} N={:>6} cycles  T={:>6}  WCET_k({k}) = {:.0} cycles",
            t.name,
            t.wcet_cycles,
            t.period,
            k_fault_wcet(t.wcet_cycles, costs.cscp_cycles(), k)
        );
    }
    println!("hyperperiod = {}", set.hyperperiod());

    println!("\n== Feasibility with k-fault-tolerant checkpointing ==");
    for f in [1.0, 2.0] {
        let density = edf_density(&set, &costs, k, f);
        println!(
            "EDF density at f{} = {:.3} -> {}",
            f as u32,
            density,
            if density <= 1.0 {
                "feasible"
            } else {
                "INFEASIBLE"
            }
        );
    }
    match rm_response_times(&set, &costs, k, 1.0) {
        Some(r) => {
            println!("RM response times at f1:");
            for (t, resp) in set.tasks().iter().zip(&r) {
                println!("  {:<20} R = {resp:.0} (D = {})", t.name, t.deadline);
            }
        }
        None => println!("RM: not schedulable at f1"),
    }

    println!("\n== Hyperperiod simulation (non-preemptive EDF, λ = 5e-4) ==");
    let config = ExecutiveConfig {
        set: &set,
        costs,
        dvs: DvsSpec::PaperDefault.build().expect("valid DVS spec"),
        lambda: 5e-4,
        hyperperiods: 5,
        seed: 13,
    };
    let report = run_executive(&config, |_, lambda| {
        Box::new(
            PolicySpec::from_tag("a_d_s", lambda, k, 0)
                .and_then(|p| p.build())
                .expect("valid policy spec"),
        )
    });
    println!(
        "{} jobs, {} deadline misses (miss ratio {:.3}), total energy {:.0}",
        report.jobs.len(),
        report.deadline_misses,
        report.miss_ratio(),
        report.total_energy
    );
    for (i, t) in set.tasks().iter().enumerate() {
        let jobs: Vec<_> = report.jobs_of(i).collect();
        let faults: u32 = jobs.iter().map(|j| j.faults).sum();
        let worst_resp = jobs
            .iter()
            .map(|j| j.finished - j.release)
            .fold(0.0_f64, f64::max);
        println!(
            "  {:<20} {} jobs, {} faults, worst response {:.0}",
            t.name,
            jobs.len(),
            faults,
            worst_resp
        );
    }
}
