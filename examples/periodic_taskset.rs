//! Beyond the paper: a periodic avionics-style task set under checkpointed
//! DMR execution — loaded from the shipped `specs/avionics-trio.json`
//! spec document, feasibility analysis first, then a hyperperiod
//! simulation through `eacp_exec::run_executive`.
//!
//! ```text
//! cargo run --release --example periodic_taskset
//! ```
//!
//! The same document drives the CLI:
//!
//! ```text
//! eacp feasibility --spec specs/avionics-trio.json
//! eacp executive   --spec specs/avionics-trio.json --json
//! ```

use eacp::exec::run_executive;
use eacp::rtsched::feasibility::{edf_density, k_fault_wcet, rm_response_times};
use eacp::spec::ExecutiveSpec;

fn main() {
    let path = std::path::Path::new(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/specs/avionics-trio.json"
    ));
    let spec = ExecutiveSpec::load(path).expect("shipped spec parses");
    spec.validate().expect("shipped spec validates");

    // Everything below builds from the document — the task set, the
    // checkpoint costs, the DVS table, the fault stream and the policy
    // assignment all live in one JSON file.
    let set = spec.tasks.build().expect("valid task set");
    let costs = spec.costs.build().expect("valid costs spec");
    let k = spec.k;

    println!("== Task set ({}) ==", spec.name);
    for t in set.tasks() {
        println!(
            "{:<20} N={:>6} cycles  T={:>6}  WCET_k({k}) = {:.0} cycles",
            t.name,
            t.wcet_cycles,
            t.period,
            k_fault_wcet(t.wcet_cycles, costs.cscp_cycles(), k)
        );
    }
    println!("hyperperiod = {}", set.hyperperiod());

    println!("\n== Feasibility with k-fault-tolerant checkpointing ==");
    for f in [1.0, 2.0] {
        let density = edf_density(&set, &costs, k, f);
        println!(
            "EDF density at f{} = {:.3} -> {}",
            f as u32,
            density,
            if density <= 1.0 {
                "feasible"
            } else {
                "INFEASIBLE"
            }
        );
    }
    match rm_response_times(&set, &costs, k, 1.0) {
        Some(r) => {
            println!("RM response times at f1:");
            for (t, resp) in set.tasks().iter().zip(&r) {
                println!("  {:<20} R = {resp:.0} (D = {})", t.name, t.deadline);
            }
        }
        None => println!("RM: not schedulable at f1"),
    }

    println!(
        "\n== Hyperperiod simulation (non-preemptive EDF, {} hyperperiods, seed {}) ==",
        spec.hyperperiods, spec.seed
    );
    let (_, report) = run_executive(&spec).expect("valid executive spec");
    let s = &report.summary;
    println!(
        "{} jobs, {} deadline misses (miss ratio {:.3}), total energy {:.0}",
        s.jobs, s.deadline_misses, s.miss_ratio, s.total_energy
    );
    for (t, policy) in report.tasks.iter().zip(&report.policy_names) {
        println!(
            "  {:<20} {policy}: {} jobs, {} faults, {} checkpoints, worst response {:.0}",
            t.name,
            t.jobs,
            t.faults,
            t.checkpoints.total(),
            t.worst_response
        );
    }
}
