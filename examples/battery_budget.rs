//! Battery-budget exploration: how much energy does DVS-aware adaptive
//! checkpointing save across deadline slack, and where does the processor
//! actually spend its cycles?
//!
//! A battery-powered instrument can trade deadline slack for energy: with
//! a looser deadline the adaptive scheme rides the low-voltage level; as
//! the deadline tightens it upshifts. This example sweeps the deadline for
//! a fixed workload and reports energy, the fraction of cycles at `f2`,
//! and the effective "battery frames per charge" for a hypothetical
//! 100 MJ-equivalent budget.
//!
//! ```text
//! cargo run --release --example battery_budget
//! ```

use eacp::core::policies::Adaptive;
use eacp::energy::DvsConfig;
use eacp::faults::PoissonProcess;
use eacp::sim::{CheckpointCosts, ExecutorOptions, MonteCarlo, Scenario, TaskSpec};
use rand::rngs::StdRng;
use rand::SeedableRng;

const WORK_CYCLES: f64 = 7_600.0;
const LAMBDA: f64 = 1.4e-3;
const BUDGET: f64 = 100.0e6;

fn main() {
    println!("Workload: N = {WORK_CYCLES} cycles, λ = {LAMBDA}, k = 5, DMR pair");
    println!(
        "\n{:>10} {:>9} {:>11} {:>11} {:>13} {:>14}",
        "deadline", "P", "E(mean)", "f2-share", "frames/charge", "note"
    );
    let mc = MonteCarlo::new(2_000).with_seed(5);
    for &deadline in &[
        8_200.0, 8_800.0, 9_400.0, 10_000.0, 11_000.0, 12_500.0, 15_000.0, 20_000.0, 40_000.0,
    ] {
        let scenario = Scenario::new(
            TaskSpec::new(WORK_CYCLES, deadline),
            CheckpointCosts::paper_scp_variant(),
            DvsConfig::paper_default(),
        );
        let summary = mc.run(
            &scenario,
            ExecutorOptions::default(),
            |_| Adaptive::dvs_scp(LAMBDA, 5),
            |seed| PoissonProcess::new(LAMBDA, StdRng::seed_from_u64(seed)),
        );
        let e = summary.mean_energy_timely();
        let frames = if e.is_nan() { 0.0 } else { BUDGET / e };
        let share = summary.fast_fraction.mean();
        let note = if share > 0.95 {
            "pinned at f2"
        } else if share < 0.05 {
            "pinned at f1"
        } else {
            "mixed DVS"
        };
        println!(
            "{deadline:>10.0} {:>9.4} {:>11.0} {:>11.2} {:>13.0} {:>14}",
            summary.p_timely(),
            e,
            share,
            frames,
            note
        );
    }

    println!("\nReading: at tight deadlines the policy burns 4·V² cycles at f2 to stay");
    println!("timely; once slack covers t_est(f1) it pins to f1 and roughly halves the");
    println!("energy per frame — that is the DVS half of the paper's contribution.");
}
