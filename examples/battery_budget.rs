//! Battery-budget exploration: how much energy does DVS-aware adaptive
//! checkpointing save across deadline slack, and where does the processor
//! actually spend its cycles?
//!
//! A battery-powered instrument can trade deadline slack for energy: with
//! a looser deadline the adaptive scheme rides the low-voltage level; as
//! the deadline tightens it upshifts. This example starts from the
//! `battery-budget` preset, patches the deadline across a slack range, and
//! reports energy, the fraction of cycles at `f2`, and the effective
//! "battery frames per charge" for a hypothetical 100 MJ-equivalent budget.
//!
//! ```text
//! cargo run --release --example battery_budget
//! ```

use eacp::spec::{preset, FaultSpec, McSpec, PolicySpec, WorkSpec};

const WORK_CYCLES: f64 = 7_600.0;
const LAMBDA: f64 = 1.4e-3;
const BUDGET: f64 = 100.0e6;

fn main() {
    // The named preset is the reproducible anchor; this example varies its
    // deadline only (the preset's own operating point is lighter).
    let mut base = preset("battery-budget").expect("built-in preset");
    base.faults = FaultSpec::Poisson { lambda: LAMBDA };
    base.policy = PolicySpec::from_tag("a_d_s", LAMBDA, 5, 0).expect("known tag");
    base.mc = McSpec {
        replications: 2_000,
        seed: 5,
        threads: 0,
    };

    println!("Workload: N = {WORK_CYCLES} cycles, λ = {LAMBDA}, k = 5, DMR pair");
    println!(
        "\n{:>10} {:>9} {:>11} {:>11} {:>13} {:>14}",
        "deadline", "P", "E(mean)", "f2-share", "frames/charge", "note"
    );
    for &deadline in &[
        8_200.0, 8_800.0, 9_400.0, 10_000.0, 11_000.0, 12_500.0, 15_000.0, 20_000.0, 40_000.0,
    ] {
        let mut spec = base.clone();
        spec.name = format!("battery-budget-d{deadline}");
        spec.scenario.work = WorkSpec::Cycles {
            work_cycles: WORK_CYCLES,
            deadline,
        };
        let (summary, _) = eacp::exec::run(&spec).expect("valid experiment spec");
        let e = summary.mean_energy_timely();
        let frames = if e.is_nan() { 0.0 } else { BUDGET / e };
        let share = summary.fast_fraction.mean();
        let note = if share > 0.95 {
            "pinned at f2"
        } else if share < 0.05 {
            "pinned at f1"
        } else {
            "mixed DVS"
        };
        println!(
            "{deadline:>10.0} {:>9.4} {:>11.0} {:>11.2} {:>13.0} {:>14}",
            summary.p_timely(),
            e,
            share,
            frames,
            note
        );
    }

    println!("\nReading: at tight deadlines the policy burns 4·V² cycles at f2 to stay");
    println!("timely; once slack covers t_est(f1) it pins to f1 and roughly halves the");
    println!("energy per frame — that is the DVS half of the paper's contribution.");
}
