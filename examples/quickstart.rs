//! Quickstart: run every scheme of the paper once on the nominal operating
//! point (Table 1(a), U = 0.76, λ = 0.0014, k = 5) and print a comparison.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use eacp::core::analysis::{
    checkpoint_interval_with_branch, estimated_completion_time, num_scp, IntervalInputs,
    OptimizeMethod, RenewalParams,
};
use eacp::core::policies::{Adaptive, KFaultTolerant, PoissonArrival};
use eacp::energy::DvsConfig;
use eacp::faults::PoissonProcess;
use eacp::sim::{
    CheckpointCosts, Executor, ExecutorOptions, MonteCarlo, Policy, Scenario, TaskSpec,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // The paper's SCP experiment: D = 10000, ts = 2, tcp = 20, c = 22.
    let lambda = 0.0014;
    let k = 5;
    let scenario = Scenario::new(
        TaskSpec::from_utilization(0.76, 1.0, 10_000.0),
        CheckpointCosts::paper_scp_variant(),
        DvsConfig::paper_default(),
    );

    println!("== Analysis at the initial planning point ==");
    let rd = scenario.task.deadline;
    let rt = scenario.task.work_cycles; // at f1 = 1
    let t_est_slow = estimated_completion_time(rt, 1.0, 22.0, lambda);
    let t_est_fast = estimated_completion_time(rt, 2.0, 22.0, lambda);
    println!("t_est(f1) = {t_est_slow:.0}, t_est(f2) = {t_est_fast:.0}, Rd = {rd:.0}");
    println!(
        "-> DVS starts at {}",
        if t_est_slow <= rd {
            "f1 (slow)"
        } else {
            "f2 (fast)"
        }
    );
    let (itv, branch) = checkpoint_interval_with_branch(IntervalInputs {
        rd,
        rt: rt / 2.0, // at f2
        c: 11.0,      // c / f2
        rf: k as f64,
        lambda,
    });
    let params = RenewalParams::new(1.0, 10.0, 0.0, lambda); // ts/f2, tcp/f2
    let m = num_scp(itv, &params, OptimizeMethod::PaperClosedForm);
    println!("interval() = {itv:.1} time units via {branch:?}; num_SCP -> m = {m}");

    println!("\n== One seeded run per scheme ==");
    let schemes: Vec<(&str, Box<dyn Policy>)> = vec![
        ("Poisson", Box::new(PoissonArrival::new(lambda, 0))),
        ("k-f-t", Box::new(KFaultTolerant::new(k, 0))),
        ("A_D", Box::new(Adaptive::adt_dvs(lambda, k))),
        ("A_D_S", Box::new(Adaptive::dvs_scp(lambda, k))),
    ];
    for (name, mut policy) in schemes {
        let mut faults = PoissonProcess::new(lambda, StdRng::seed_from_u64(2006));
        let out = Executor::new(&scenario).run(&mut *policy, &mut faults);
        println!(
            "{name:<8} timely={} finish={:>8.1} energy={:>8.0} faults={:>2} rollbacks={:>2} \
             checkpoints={:>3} fast-fraction={:.2}",
            out.timely as u8,
            out.finish_time,
            out.energy,
            out.faults,
            out.rollbacks,
            out.checkpoints(),
            out.fast_fraction(),
        );
    }

    println!("\n== Monte-Carlo (2000 replications, like a paper table cell) ==");
    let mc = MonteCarlo::new(2000).with_seed(42);
    for name in ["Poisson", "A_D", "A_D_S"] {
        let summary = mc.run(
            &scenario,
            ExecutorOptions {
                faults_during_overhead: false, // the paper's fault model
                ..ExecutorOptions::default()
            },
            |_| -> Box<dyn Policy> {
                match name {
                    "Poisson" => Box::new(PoissonArrival::new(lambda, 0)),
                    "A_D" => Box::new(Adaptive::adt_dvs(lambda, k)),
                    _ => Box::new(Adaptive::dvs_scp(lambda, k)),
                }
            },
            |seed| PoissonProcess::new(lambda, StdRng::seed_from_u64(seed)),
        );
        let (lo, hi) = summary.p_timely_ci(1.96);
        println!(
            "{name:<8} P = {:.4} [{lo:.4}, {hi:.4}]   E = {:>8.0}   (paper: P = {}, E = {})",
            summary.p_timely(),
            summary.mean_energy_timely(),
            match name {
                "Poisson" => "0.1185",
                "A_D" => "0.9991",
                _ => "0.9999",
            },
            match name {
                "Poisson" => "39015",
                "A_D" => "57564",
                _ => "52863",
            },
        );
    }
}
