//! Quickstart: run every scheme of the paper once on the nominal operating
//! point (Table 1(a), U = 0.76, λ = 0.0014, k = 5) and print a comparison.
//!
//! Everything is constructed through the declarative spec layer: the same
//! [`eacp::spec::ExperimentSpec`] documents printed at the end can be saved
//! to a file and replayed with `eacp mc --spec file.json` — bit for bit.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use eacp::core::analysis::{
    checkpoint_interval_with_branch, estimated_completion_time, num_scp, IntervalInputs,
    OptimizeMethod, RenewalParams,
};
use eacp::faults::PoissonProcess;
use eacp::sim::Executor;
use eacp::spec::{paper_cell, PaperScheme, PolicySpec, ScenarioSpec};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // The paper's SCP experiment: D = 10000, ts = 2, tcp = 20, c = 22.
    let lambda = 0.0014;
    let k = 5;
    let scenario = ScenarioSpec::paper_nominal()
        .build()
        .expect("the paper's nominal scenario is valid");

    println!("== Analysis at the initial planning point ==");
    let rd = scenario.task.deadline;
    let rt = scenario.task.work_cycles; // at f1 = 1
    let t_est_slow = estimated_completion_time(rt, 1.0, 22.0, lambda);
    let t_est_fast = estimated_completion_time(rt, 2.0, 22.0, lambda);
    println!("t_est(f1) = {t_est_slow:.0}, t_est(f2) = {t_est_fast:.0}, Rd = {rd:.0}");
    println!(
        "-> DVS starts at {}",
        if t_est_slow <= rd {
            "f1 (slow)"
        } else {
            "f2 (fast)"
        }
    );
    let (itv, branch) = checkpoint_interval_with_branch(IntervalInputs {
        rd,
        rt: rt / 2.0, // at f2
        c: 11.0,      // c / f2
        rf: k as f64,
        lambda,
    });
    let params = RenewalParams::new(1.0, 10.0, 0.0, lambda); // ts/f2, tcp/f2
    let m = num_scp(itv, &params, OptimizeMethod::PaperClosedForm);
    println!("interval() = {itv:.1} time units via {branch:?}; num_SCP -> m = {m}");

    println!("\n== One seeded run per scheme ==");
    for tag in ["poisson", "kft", "a_d", "a_d_s"] {
        let policy_spec = PolicySpec::from_tag(tag, lambda, k, 0).expect("known tag");
        let mut policy = policy_spec.build().expect("valid policy spec");
        let mut faults = PoissonProcess::new(lambda, StdRng::seed_from_u64(2006));
        let out = Executor::new(&scenario).run(&mut policy, &mut faults);
        println!(
            "{:<8} timely={} finish={:>8.1} energy={:>8.0} faults={:>2} rollbacks={:>2} \
             checkpoints={:>3} fast-fraction={:.2}",
            policy_spec.policy_name(),
            out.timely as u8,
            out.finish_time,
            out.energy,
            out.faults,
            out.rollbacks,
            out.checkpoints(),
            out.fast_fraction(),
        );
    }

    println!("\n== Monte-Carlo (2000 replications, like a paper table cell) ==");
    let schemes = [
        (PaperScheme::Poisson, "0.1185", "39015"),
        (PaperScheme::AdtDvs, "0.9991", "57564"),
        (PaperScheme::Proposed, "0.9999", "52863"),
    ];
    let mut last_spec_json = String::new();
    for (scheme, paper_p, paper_e) in schemes {
        // One declarative document describes the whole cell...
        let mut spec =
            paper_cell(1, 0.76, lambda, k, scheme).expect("table 1 cell specs are valid");
        spec.mc.seed = 42;
        // ...and running it is one call.
        let (summary, report) = eacp::exec::run(&spec).expect("valid experiment spec");
        let (lo, hi) = summary.p_timely_ci(1.96);
        println!(
            "{:<8} P = {:.4} [{lo:.4}, {hi:.4}]   E = {:>8.0}   (paper: P = {paper_p}, E = {paper_e})",
            report.policy_name,
            summary.p_timely(),
            summary.mean_energy_timely(),
        );
        last_spec_json = spec.to_json_string();
    }

    println!("\n== The last cell above, as a replayable spec document ==");
    println!("(save as cell.json and reproduce with: eacp mc --spec cell.json)\n");
    print!("{last_spec_json}");
}
