//! A harsh-environment scenario from the paper's motivation: a space
//! system whose fault rate swings with radiation conditions (quiet sky vs
//! solar-event bursts).
//!
//! The telemetry-compression task must finish each frame by its deadline
//! on a battery budget. We sweep the environment from benign to hostile —
//! including a *bursty* (Markov-modulated) environment the Poisson-based
//! analysis does not model — and compare the static Poisson baseline
//! against the paper's `A_D_S`.
//!
//! ```text
//! cargo run --release --example satellite_telemetry
//! ```

use eacp::core::policies::{Adaptive, PoissonArrival};
use eacp::energy::DvsConfig;
use eacp::faults::{BurstProcess, FaultProcess, PoissonProcess};
use eacp::sim::{
    CheckpointCosts, Executor, ExecutorOptions, MonteCarlo, Policy, Scenario, TaskSpec,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

const REPS: u64 = 2_000;

fn scenario() -> Scenario {
    Scenario::new(
        // One telemetry frame: 7600 cycles of compression work, 10 ms
        // frame deadline (normalized units).
        TaskSpec::from_utilization(0.76, 1.0, 10_000.0),
        CheckpointCosts::paper_scp_variant(),
        DvsConfig::paper_default(),
    )
}

fn run<Q, FQ>(make_policy: impl Fn() -> Box<dyn Policy> + Sync, fault_factory: FQ) -> (f64, f64)
where
    Q: FaultProcess,
    FQ: Fn(u64) -> Q + Sync,
{
    let s = scenario();
    let summary = MonteCarlo::new(REPS).with_seed(99).run(
        &s,
        ExecutorOptions::default(),
        |_| make_policy(),
        fault_factory,
    );
    (summary.p_timely(), summary.mean_energy_timely())
}

fn main() {
    println!("Telemetry frame: N = 7600 cycles, D = 10000, DMR pair, ts=2 tcp=20");
    println!("\n== Poisson environments (quiet sky ... hostile belt) ==");
    println!(
        "{:<12} {:>10} {:>10} {:>10} {:>10}",
        "lambda", "P(static)", "E(static)", "P(A_D_S)", "E(A_D_S)"
    );
    for &lambda in &[1e-5, 1e-4, 5e-4, 1e-3, 1.4e-3, 2e-3] {
        let (p_static, e_static) = run(
            || Box::new(PoissonArrival::new(lambda, 0)),
            |seed| PoissonProcess::new(lambda, StdRng::seed_from_u64(seed)),
        );
        let (p_ads, e_ads) = run(
            || Box::new(Adaptive::dvs_scp(lambda, 5)),
            |seed| PoissonProcess::new(lambda, StdRng::seed_from_u64(seed)),
        );
        println!("{lambda:<12.0e} {p_static:>10.4} {e_static:>10.0} {p_ads:>10.4} {e_ads:>10.0}");
    }

    println!("\n== Solar-event bursts (MMPP), nominal rate matched to λ = 1.4e-3 ==");
    // Quiet rate 4e-4, burst rate 1.2e-2, mean dwell 20k quiet / 2k burst:
    // stationary rate ≈ (10/11)·4e-4 + (1/11)·1.2e-2 ≈ 1.45e-3.
    let nominal = 1.4e-3;
    let burst =
        |seed: u64| BurstProcess::new(4e-4, 1.2e-2, 20_000.0, 2_000.0, StdRng::seed_from_u64(seed));
    println!(
        "stationary burst rate ≈ {:.2e}",
        burst(0).mean_rate().unwrap()
    );
    let (p_static, e_static) = run(|| Box::new(PoissonArrival::new(nominal, 0)), burst);
    let (p_ads, e_ads) = run(|| Box::new(Adaptive::dvs_scp(nominal, 5)), burst);
    println!(
        "{:<12} {:>10} {:>10} {:>10} {:>10}",
        "environment", "P(static)", "E(static)", "P(A_D_S)", "E(A_D_S)"
    );
    println!(
        "{:<12} {p_static:>10.4} {e_static:>10.0} {p_ads:>10.4} {e_ads:>10.0}",
        "bursty"
    );

    println!("\n== A single hostile run, inspected ==");
    let s = scenario();
    let mut policy = Adaptive::dvs_scp(2e-3, 5);
    let mut faults = PoissonProcess::new(2e-3, StdRng::seed_from_u64(7));
    let out = Executor::new(&s).run(&mut policy, &mut faults);
    println!(
        "timely={} finish={:.0} energy={:.0} faults={} rollbacks={} SCPs={} CSCPs={} \
         fast-fraction={:.2}",
        out.timely,
        out.finish_time,
        out.energy,
        out.faults,
        out.rollbacks,
        out.store_checkpoints,
        out.compare_store_checkpoints,
        out.fast_fraction(),
    );
}
