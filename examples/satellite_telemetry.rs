//! A harsh-environment scenario from the paper's motivation: a space
//! system whose fault rate swings with radiation conditions (quiet sky vs
//! solar-event bursts).
//!
//! The telemetry-compression task must finish each frame by its deadline
//! on a battery budget. We sweep the environment from benign to hostile —
//! including a *bursty* (Markov-modulated) environment the Poisson-based
//! analysis does not model — and compare the static Poisson baseline
//! against the paper's `A_D_S`. The whole grid is one declarative
//! [`eacp::spec::SweepSpec`] per scheme.
//!
//! ```text
//! cargo run --release --example satellite_telemetry
//! ```

use eacp::faults::FaultProcess;
use eacp::sim::Executor;
use eacp::spec::{preset, ExperimentSpec, FaultSpec, McSpec, PolicySpec, SweepAxis, SweepSpec};
use rand::rngs::StdRng;
use rand::SeedableRng;

const REPS: u64 = 2_000;
const LAMBDAS: [f64; 6] = [1e-5, 1e-4, 5e-4, 1e-3, 1.4e-3, 2e-3];

/// The `satellite-telemetry` preset pinned to this example's replication
/// budget, with the scheme and (Poisson) environment swapped in.
fn base(scheme_tag: &str) -> ExperimentSpec {
    let mut spec = preset("satellite-telemetry").expect("built-in preset");
    spec.name = format!("telemetry-{scheme_tag}");
    spec.scenario.work = eacp::spec::WorkSpec::Utilization {
        utilization: 0.76,
        speed: 1.0,
        deadline: 10_000.0,
    };
    spec.faults = FaultSpec::Poisson { lambda: 1.4e-3 };
    spec.policy = PolicySpec::from_tag(scheme_tag, 1.4e-3, 5, 0).expect("known tag");
    spec.mc = McSpec {
        replications: REPS,
        seed: 99,
        threads: 0,
    };
    spec
}

fn p_and_e(spec: &ExperimentSpec) -> (f64, f64) {
    let (summary, _) = eacp::exec::run(spec).expect("valid experiment spec");
    (summary.p_timely(), summary.mean_energy_timely())
}

fn main() {
    println!("Telemetry frame: N = 7600 cycles, D = 10000, DMR pair, ts=2 tcp=20");
    println!("\n== Poisson environments (quiet sky ... hostile belt) ==");
    println!(
        "{:<12} {:>10} {:>10} {:>10} {:>10}",
        "lambda", "P(static)", "E(static)", "P(A_D_S)", "E(A_D_S)"
    );
    // One sweep document per scheme; the λ axis retunes both the injected
    // faults and the policy's assumed rate, as in the paper.
    let sweep = |tag: &str| {
        SweepSpec {
            base: base(tag),
            axes: vec![SweepAxis::Lambda(LAMBDAS.to_vec())],
        }
        .expand()
        .expect("compatible axes")
    };
    // Keep every point on the same seed so the two schemes face identical
    // fault streams, like the original hand-rolled comparison.
    let pin_seed = |mut spec: ExperimentSpec| {
        spec.mc.seed = 99;
        spec
    };
    let static_points = sweep("poisson");
    let ads_points = sweep("a_d_s");
    for (s, a) in static_points.into_iter().zip(ads_points) {
        let lambda = s.faults.nominal_lambda().expect("poisson base");
        let (p_static, e_static) = p_and_e(&pin_seed(s));
        let (p_ads, e_ads) = p_and_e(&pin_seed(a));
        println!("{lambda:<12.0e} {p_static:>10.4} {e_static:>10.0} {p_ads:>10.4} {e_ads:>10.0}");
    }

    println!("\n== Solar-event bursts (MMPP), nominal rate matched to λ = 1.4e-3 ==");
    // Quiet rate 4e-4, burst rate 1.2e-2, mean dwell 20k quiet / 2k burst:
    // stationary rate ≈ (10/11)·4e-4 + (1/11)·1.2e-2 ≈ 1.45e-3.
    let burst = FaultSpec::Burst {
        quiet_rate: 4e-4,
        burst_rate: 1.2e-2,
        mean_quiet_dwell: 20_000.0,
        mean_burst_dwell: 2_000.0,
    };
    println!(
        "stationary burst rate ≈ {:.2e}",
        burst
            .build(0)
            .expect("valid fault spec")
            .mean_rate()
            .expect("MMPP has a stationary rate")
    );
    let with_burst = |tag: &str| {
        let mut spec = base(tag);
        spec.name = format!("telemetry-burst-{tag}");
        spec.faults = burst.clone();
        spec
    };
    let (p_static, e_static) = p_and_e(&with_burst("poisson"));
    let (p_ads, e_ads) = p_and_e(&with_burst("a_d_s"));
    println!(
        "{:<12} {:>10} {:>10} {:>10} {:>10}",
        "environment", "P(static)", "E(static)", "P(A_D_S)", "E(A_D_S)"
    );
    println!(
        "{:<12} {p_static:>10.4} {e_static:>10.0} {p_ads:>10.4} {e_ads:>10.0}",
        "bursty"
    );

    println!("\n== A single hostile run, inspected ==");
    let spec = base("a_d_s");
    let scenario = spec.scenario.build().expect("valid scenario spec");
    let mut policy = PolicySpec::from_tag("a_d_s", 2e-3, 5, 0)
        .and_then(|p| p.build())
        .expect("valid policy spec");
    let mut faults = eacp::faults::PoissonProcess::new(2e-3, StdRng::seed_from_u64(7));
    let out = Executor::new(&scenario).run(&mut policy, &mut faults);
    println!(
        "timely={} finish={:.0} energy={:.0} faults={} rollbacks={} SCPs={} CSCPs={} \
         fast-fraction={:.2}",
        out.timely,
        out.finish_time,
        out.energy,
        out.faults,
        out.rollbacks,
        out.store_checkpoints,
        out.compare_store_checkpoints,
        out.fast_fraction(),
    );
}
