//! Acceptance tests for the declarative spec layer at the facade level:
//! round-tripping, scheme coverage, and the determinism contract
//! `spec + seed = identical results` (including thread-count invariance).

use eacp::sim::Policy;
use eacp::spec::{
    paper_cell, preset, preset_names, ExperimentSpec, FaultSpec, McSpec, PaperScheme, PolicySpec,
    SweepAxis, SweepSpec,
};

fn small(mut spec: ExperimentSpec) -> ExperimentSpec {
    spec.mc.replications = 150;
    spec
}

#[test]
fn serialize_deserialize_run_is_bit_identical() {
    let spec = small(paper_cell(1, 0.76, 1.4e-3, 5, PaperScheme::Proposed).unwrap());
    let (direct, _) = eacp::exec::run(&spec).unwrap();

    let json = spec.to_json_string();
    let reread = ExperimentSpec::from_json_str(&json).unwrap();
    assert_eq!(reread, spec, "round-trip must preserve the spec exactly");
    let (replayed, _) = eacp::exec::run(&reread).unwrap();
    assert_eq!(replayed, direct, "replayed Summary must be bit-identical");
}

#[test]
fn every_policy_scheme_builds_and_matches_the_paper_name_table() {
    // The mapping of core::policies' module docs: tag -> Policy::name().
    let expected = [
        ("poisson", "Poisson"),
        ("kft", "k-f-t"),
        ("a_d", "A_D"),
        ("a_d_s", "A_D_S"),
        ("a_d_c", "A_D_C"),
        ("a_s", "A_S"),
        ("a_c", "A_C"),
        ("cscp", "A"),
    ];
    assert_eq!(expected.len(), PolicySpec::TAGS.len());
    for (tag, name) in expected {
        let spec = PolicySpec::from_tag(tag, 1.4e-3, 5, 0).unwrap();
        assert_eq!(spec.build().unwrap().name(), name, "tag {tag}");
    }
}

#[test]
fn monte_carlo_summary_invariant_across_thread_counts() {
    // Guards the seed-derivation contract in montecarlo.rs: replication i
    // derives its seed from (base_seed, i) alone, so the partition of
    // replications over workers must not change any outcome.
    let base = small(paper_cell(1, 0.78, 1.6e-3, 5, PaperScheme::Proposed).unwrap());
    let run_with_threads = |threads: usize| {
        let mut spec = base.clone();
        spec.mc = McSpec { threads, ..spec.mc };
        eacp::exec::run(&spec).unwrap().0
    };
    let one = run_with_threads(1);
    let four = run_with_threads(4);
    assert_eq!(one.timely, four.timely);
    assert_eq!(one.completed, four.completed);
    assert_eq!(one.aborted, four.aborted);
    assert_eq!(one.anomalies, four.anomalies);
    assert_eq!(one.faults.min(), four.faults.min());
    assert_eq!(one.faults.max(), four.faults.max());
    // Welford merges reassociate float additions across partitions; counts
    // are exact, means agree to merge-order rounding.
    let rel = (one.energy_all.mean() - four.energy_all.mean()).abs() / one.energy_all.mean();
    assert!(rel < 1e-12, "relative mean drift {rel}");
}

#[test]
fn presets_run_and_stay_deterministic() {
    for name in preset_names() {
        let spec = small(preset(name).unwrap());
        let (a, report) = eacp::exec::run(&spec).unwrap();
        let (b, _) = eacp::exec::run(&spec).unwrap();
        assert_eq!(a, b, "preset {name} must be reproducible");
        assert_eq!(a.anomalies, 0, "preset {name} must run cleanly");
        assert_eq!(report.spec.name, name);
    }
}

#[test]
fn sweep_points_reproduce_individually() {
    // Sharding contract: running one expanded point elsewhere gives the
    // same numbers as running it inside the sweep.
    let sweep = SweepSpec {
        base: small(paper_cell(1, 0.76, 1.4e-3, 5, PaperScheme::Proposed).unwrap()),
        axes: vec![SweepAxis::Lambda(vec![1.0e-4, 1.4e-3])],
    };
    let points = sweep.expand().unwrap();
    assert_eq!(points.len(), 2);
    for point in &points {
        let (inside, _) = eacp::exec::run(point).unwrap();
        let reread = ExperimentSpec::from_json_str(&point.to_json_string()).unwrap();
        let (outside, _) = eacp::exec::run(&reread).unwrap();
        assert_eq!(inside, outside, "point {}", point.name);
    }
}

#[test]
fn fault_models_beyond_poisson_run_through_specs() {
    let mut spec = small(preset("satellite-telemetry").unwrap());
    spec.mc.replications = 60;
    let (summary, _) = eacp::exec::run(&spec).unwrap();
    assert_eq!(summary.replications, 60);
    assert_eq!(summary.anomalies, 0);
    assert!(summary.faults.mean() >= 0.0);

    spec.faults = FaultSpec::Phased {
        phases: vec![(9_000.0, 1e-4), (1_000.0, 2e-2)],
        repeat: true,
    };
    let (summary, _) = eacp::exec::run(&spec).unwrap();
    assert_eq!(summary.anomalies, 0);
}
