//! End-to-end semantic checks of the paper's procedures across crates:
//! exact rollback targets, DVS decisions, abort behaviour and the
//! SCP-vs-CCP detection trade-off, all with deterministic fault schedules.

use eacp::core::policies::Adaptive;
use eacp::energy::DvsConfig;
use eacp::faults::DeterministicFaults;
use eacp::sim::{
    CheckpointCosts, CheckpointKind, Executor, Scenario, TaskSpec, TraceEvent, TraceRecorder,
};

fn scp_scenario(n: f64, d: f64) -> Scenario {
    Scenario::new(
        TaskSpec::new(n, d),
        CheckpointCosts::paper_scp_variant(),
        DvsConfig::paper_default(),
    )
}

fn ccp_scenario(n: f64, d: f64) -> Scenario {
    Scenario::new(
        TaskSpec::new(n, d),
        CheckpointCosts::paper_ccp_variant(),
        DvsConfig::paper_default(),
    )
}

#[test]
fn scp_scheme_rolls_back_to_clean_scp_not_interval_start() {
    // Fixed-speed adaptive SCP scheme with a fault mid-interval: the trace
    // must show a rollback to an SCP position strictly inside the interval
    // (paper Fig. 1), not to position 0.
    let s = scp_scenario(600.0, 50_000.0);
    let mut p = Adaptive::scp(2.5e-3, 5, 0);
    let mut f = DeterministicFaults::new(vec![260.0]);
    let mut rec = TraceRecorder::new();
    let out = Executor::new(&s).run_observed(&mut p, &mut f, &mut rec);
    assert!(out.completed && out.rollbacks == 1);
    let rollback_pos = rec
        .events()
        .iter()
        .find_map(|e| match e {
            TraceEvent::Rollback { to_position, .. } => Some(*to_position),
            _ => None,
        })
        .expect("one rollback");
    assert!(
        rollback_pos > 0.0,
        "SCP scheme must not lose the whole interval"
    );
    // And the rollback target is an SCP position: some Store checkpoint
    // was recorded at exactly that position before the rollback.
    let stored_positions: Vec<f64> = rec
        .events()
        .iter()
        .filter_map(|e| match e {
            TraceEvent::Checkpoint {
                kind: CheckpointKind::Store,
                position,
                ..
            } => Some(*position),
            _ => None,
        })
        .collect();
    assert!(
        stored_positions
            .iter()
            .any(|p| (p - rollback_pos).abs() < 1e-9),
        "rollback target {rollback_pos} not among SCP positions {stored_positions:?}"
    );
}

#[test]
fn ccp_scheme_detects_early_but_rolls_back_to_interval_start() {
    let s = ccp_scenario(600.0, 50_000.0);
    let mut p = Adaptive::ccp(2.5e-3, 5, 0);
    let mut f = DeterministicFaults::new(vec![260.0]);
    let mut rec = TraceRecorder::new();
    let out = Executor::new(&s).run_observed(&mut p, &mut f, &mut rec);
    assert!(out.completed && out.rollbacks == 1);
    let (detect_time, rollback_pos) = rec
        .events()
        .iter()
        .find_map(|e| match e {
            TraceEvent::Rollback {
                from, to_position, ..
            } => Some((*from, *to_position)),
            _ => None,
        })
        .expect("one rollback");
    // Early detection: the mismatch fires at the first comparison after
    // t = 260, well before the interval would end.
    assert!(detect_time < 600.0, "CCP detection at {detect_time}");
    // But nothing inside the interval is stored (paper Fig. 5): back to a
    // CSCP boundary, which for the first interval is position 0.
    let cscp_positions: Vec<f64> = rec
        .events()
        .iter()
        .filter(|e| {
            matches!(
                e,
                TraceEvent::Checkpoint {
                    kind: CheckpointKind::CompareStore,
                    mismatch: false,
                    ..
                }
            )
        })
        .filter_map(|e| match e {
            TraceEvent::Checkpoint { position, to, .. } if *to <= detect_time => Some(*position),
            _ => None,
        })
        .collect();
    let last_commit = cscp_positions.iter().copied().fold(0.0, f64::max);
    assert!(
        (rollback_pos - last_commit).abs() < 1e-9,
        "CCP rollback to {rollback_pos}, last committed CSCP at {last_commit}"
    );
}

#[test]
fn dvs_upshifts_then_downshifts_with_slack() {
    // Tight start (t_est(f1) > Rd) forces f2; a fault replan later in the
    // task finds enough slack to return to f1 (paper Fig. 6 line 15).
    let s = scp_scenario(7_600.0, 10_000.0);
    let mut p = Adaptive::dvs_scp(1.4e-3, 5);
    let mut f = DeterministicFaults::new(vec![2_500.0]);
    let mut rec = TraceRecorder::new();
    let out = Executor::new(&s).run_observed(&mut p, &mut f, &mut rec);
    assert!(out.timely);
    let switches: Vec<(usize, usize)> = rec
        .events()
        .iter()
        .filter_map(|e| match e {
            TraceEvent::SpeedChange { from, to, .. } => Some((*from, *to)),
            _ => None,
        })
        .collect();
    assert!(
        switches.contains(&(0, 1)),
        "must upshift at start: {switches:?}"
    );
    assert!(
        switches.contains(&(1, 0)),
        "must downshift after the fault replan: {switches:?}"
    );
}

#[test]
fn adaptive_aborts_exactly_when_rt_exceeds_rd() {
    // Feasible at f2 only by a hair: N/2 <= D. Make N/2 > D so line 6 of
    // the paper's procedure fires immediately.
    let s = scp_scenario(20_002.0, 10_000.0);
    let mut p = Adaptive::dvs_scp(1e-4, 5);
    let out = Executor::new(&s).run(&mut p, &mut DeterministicFaults::none());
    assert!(out.aborted);
    assert_eq!(out.segments, 0, "abort before any work");

    // One cycle less of work at the boundary: runs (and completes).
    let s = scp_scenario(19_000.0, 10_000.0);
    let mut p = Adaptive::dvs_scp(1e-4, 5);
    let out = Executor::new(&s).run(&mut p, &mut DeterministicFaults::none());
    assert!(!out.aborted && out.completed);
}

#[test]
fn repeated_faults_exhaust_budget_but_execution_continues() {
    // More faults than k: Rf saturates at 0 and the interval procedure
    // falls back to its Poisson/deadline branches; the run still finishes
    // if time permits.
    let s = scp_scenario(4_000.0, 30_000.0);
    let mut p = Adaptive::dvs_scp(1e-3, 2);
    let faults: Vec<f64> = (1..=6).map(|i| 500.0 * i as f64).collect();
    let out = Executor::new(&s).run(&mut p, &mut DeterministicFaults::new(faults));
    assert!(out.completed);
    assert_eq!(out.rollbacks, 6);
    assert_eq!(p.errors_seen(), 6);
    assert_eq!(p.remaining_fault_budget(), 0.0);
}

#[test]
fn scp_and_ccp_waste_profiles_differ_as_in_figures() {
    // Same fault instant, same subdivision geometry (one interval of 1000
    // split in m = 5): the SCP scheme pays (detection latency to the
    // interval-ending CSCP) but re-executes only from the last clean SCP;
    // the CCP scheme detects at the next comparison but re-executes from
    // the interval start. A late fault favours SCP, an early fault CCP.
    use eacp::sim::{Directive, PlanContext, Policy};
    struct Static {
        sub: f64,
        m: u32,
        seg: u32,
        kind: CheckpointKind,
    }
    impl Policy for Static {
        fn name(&self) -> &'static str {
            "static"
        }
        fn plan(&mut self, _ctx: &PlanContext<'_>) -> Directive {
            let kind = if (self.seg + 1).is_multiple_of(self.m) {
                CheckpointKind::CompareStore
            } else {
                self.kind
            };
            self.seg += 1;
            Directive::run(0, self.sub, kind)
        }
        fn on_compare(&mut self, ctx: &PlanContext<'_>, _k: CheckpointKind, mismatch: bool) {
            if mismatch {
                self.seg = (ctx.position_cycles / self.sub).round() as u32 % self.m;
            }
        }
    }
    let run = |kind: CheckpointKind, fault_at: f64| -> f64 {
        let s = Scenario::new(
            TaskSpec::new(1_000.0, 1e9),
            CheckpointCosts::new(2.0, 2.0, 0.0),
            DvsConfig::paper_default(),
        );
        let mut p = Static {
            sub: 200.0,
            m: 5,
            seg: 0,
            kind,
        };
        let mut f = DeterministicFaults::new(vec![fault_at]);
        let out = Executor::new(&s).run(&mut p, &mut f);
        assert!(out.completed);
        out.finish_time
    };
    // Late fault (segment 4 of 5): SCP's local rollback beats CCP restart.
    let scp_late = run(CheckpointKind::Store, 780.0);
    let ccp_late = run(CheckpointKind::Compare, 780.0);
    assert!(
        scp_late < ccp_late,
        "late fault: SCP {scp_late} vs CCP {ccp_late}"
    );
    // Early fault (segment 1 of 5): CCP's early detection wins.
    let scp_early = run(CheckpointKind::Store, 20.0);
    let ccp_early = run(CheckpointKind::Compare, 20.0);
    assert!(
        ccp_early < scp_early,
        "early fault: CCP {ccp_early} vs SCP {scp_early}"
    );
}
