//! Reproducibility guarantees: identical seeds give identical runs, across
//! policies, fault processes and thread counts.

use eacp::core::policies::{Adaptive, PoissonArrival};
use eacp::energy::DvsConfig;
use eacp::exec::{Job, LocalRunner, Runner};
use eacp::faults::{PoissonProcess, WeibullRenewal};
use eacp::sim::{CheckpointCosts, Executor, ExecutorOptions, RunOutcome, Scenario, TaskSpec};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn scenario() -> Scenario {
    Scenario::new(
        TaskSpec::from_utilization(0.78, 1.0, 10_000.0),
        CheckpointCosts::paper_scp_variant(),
        DvsConfig::paper_default(),
    )
}

fn run_once(seed: u64) -> RunOutcome {
    let s = scenario();
    let mut p = Adaptive::dvs_scp(1.4e-3, 5);
    let mut f = PoissonProcess::new(1.4e-3, StdRng::seed_from_u64(seed));
    Executor::new(&s).run(&mut p, &mut f)
}

#[test]
fn single_runs_are_bit_identical() {
    let a = run_once(123);
    let b = run_once(123);
    assert_eq!(a, b);
    let c = run_once(124);
    // Different seed, different fault arrivals (overwhelmingly likely at
    // this rate).
    assert_ne!(a.finish_time, c.finish_time);
}

#[test]
fn monte_carlo_invariant_to_thread_count() {
    let run = |threads| {
        let job = Job::from_parts(
            "thread-invariance",
            scenario(),
            ExecutorOptions::default(),
            400,
            55,
            |_| Box::new(Adaptive::dvs_scp(1.4e-3, 5)),
            |seed| Box::new(PoissonProcess::new(1.4e-3, StdRng::seed_from_u64(seed))),
        )
        .unwrap();
        LocalRunner::new(threads).run(&job).unwrap()
    };
    let a = run(1);
    let b = run(8);
    // The canonical block reduction makes the whole summary bit-identical
    // across thread counts — not just the counts.
    assert_eq!(a, b);
}

#[test]
fn different_policies_share_fault_streams() {
    // With per-replication seeding, two schemes face exactly the same
    // fault arrivals — the comparison is paired, like the paper's.
    let run = |policy: fn() -> Box<dyn eacp::sim::Policy>| {
        let job = Job::from_parts(
            "paired",
            scenario(),
            ExecutorOptions::default(),
            100,
            7,
            move |_| policy(),
            |seed| Box::new(PoissonProcess::new(1.4e-3, StdRng::seed_from_u64(seed))),
        )
        .unwrap();
        LocalRunner::default().run(&job).unwrap()
    };
    let a = run(|| Box::new(PoissonArrival::new(1.4e-3, 0)));
    let b = run(|| Box::new(Adaptive::dvs_scp(1.4e-3, 5)));
    // Same streams: the *first arrival* statistics are identical even
    // though executions diverge afterwards (faster schemes see fewer
    // arrivals in their shorter runs).
    assert_eq!(a.replications, b.replications);
    assert!(b.faults.mean() <= a.faults.mean() + 1e-9);
}

#[test]
fn weibull_runs_are_reproducible() {
    let s = scenario();
    let run = |seed: u64| {
        let mut p = Adaptive::dvs_scp(1.4e-3, 5);
        let mut f = WeibullRenewal::new(0.7, 900.0, StdRng::seed_from_u64(seed));
        Executor::new(&s).run(&mut p, &mut f)
    };
    assert_eq!(run(9), run(9));
}
