//! Reproducibility guarantees: identical seeds give identical runs, across
//! policies, fault processes and thread counts.

use eacp::core::policies::{Adaptive, PoissonArrival};
use eacp::energy::DvsConfig;
use eacp::faults::{PoissonProcess, WeibullRenewal};
use eacp::sim::{
    CheckpointCosts, Executor, ExecutorOptions, MonteCarlo, Policy, RunOutcome, Scenario, TaskSpec,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn scenario() -> Scenario {
    Scenario::new(
        TaskSpec::from_utilization(0.78, 1.0, 10_000.0),
        CheckpointCosts::paper_scp_variant(),
        DvsConfig::paper_default(),
    )
}

fn run_once(seed: u64) -> RunOutcome {
    let s = scenario();
    let mut p = Adaptive::dvs_scp(1.4e-3, 5);
    let mut f = PoissonProcess::new(1.4e-3, StdRng::seed_from_u64(seed));
    Executor::new(&s).run(&mut p, &mut f)
}

#[test]
fn single_runs_are_bit_identical() {
    let a = run_once(123);
    let b = run_once(123);
    assert_eq!(a, b);
    let c = run_once(124);
    // Different seed, different fault arrivals (overwhelmingly likely at
    // this rate).
    assert_ne!(a.finish_time, c.finish_time);
}

#[test]
fn monte_carlo_invariant_to_thread_count() {
    let s = scenario();
    let run = |threads| {
        MonteCarlo::new(400)
            .with_seed(55)
            .with_threads(threads)
            .run(
                &s,
                ExecutorOptions::default(),
                |_| Adaptive::dvs_scp(1.4e-3, 5),
                |seed| PoissonProcess::new(1.4e-3, StdRng::seed_from_u64(seed)),
            )
    };
    let a = run(1);
    let b = run(8);
    assert_eq!(a.timely, b.timely);
    assert_eq!(a.completed, b.completed);
    assert_eq!(a.aborted, b.aborted);
    assert_eq!(a.faults.min(), b.faults.min());
    assert_eq!(a.faults.max(), b.faults.max());
    assert!((a.energy_all.mean() - b.energy_all.mean()).abs() / a.energy_all.mean() < 1e-12);
}

#[test]
fn different_policies_share_fault_streams() {
    // With per-replication seeding, two schemes face exactly the same
    // fault arrivals — the comparison is paired, like the paper's.
    let s = scenario();
    let mc = MonteCarlo::new(100).with_seed(7);
    let a = mc.run(
        &s,
        ExecutorOptions::default(),
        |_| -> Box<dyn Policy> { Box::new(PoissonArrival::new(1.4e-3, 0)) },
        |seed| PoissonProcess::new(1.4e-3, StdRng::seed_from_u64(seed)),
    );
    let b = mc.run(
        &s,
        ExecutorOptions::default(),
        |_| -> Box<dyn Policy> { Box::new(Adaptive::dvs_scp(1.4e-3, 5)) },
        |seed| PoissonProcess::new(1.4e-3, StdRng::seed_from_u64(seed)),
    );
    // Same streams: the *first arrival* statistics are identical even
    // though executions diverge afterwards (faster schemes see fewer
    // arrivals in their shorter runs).
    assert_eq!(a.replications, b.replications);
    assert!(b.faults.mean() <= a.faults.mean() + 1e-9);
}

#[test]
fn weibull_runs_are_reproducible() {
    let s = scenario();
    let run = |seed: u64| {
        let mut p = Adaptive::dvs_scp(1.4e-3, 5);
        let mut f = WeibullRenewal::new(0.7, 900.0, StdRng::seed_from_u64(seed));
        Executor::new(&s).run(&mut p, &mut f)
    };
    assert_eq!(run(9), run(9));
}
