//! The paper's renewal-equation formulas against ground-truth Monte-Carlo
//! simulation of the same operational model.
//!
//! One CSCP interval of length `T` is run as a stand-alone "task" with a
//! static SCP/CCP subdivision policy; the Monte-Carlo mean completion time
//! must agree with the exact recursions (tightly) and with the paper's
//! closed forms (loosely for Eq. (1), which is an approximation; exactly
//! for Eq. (2)).

use eacp::core::analysis::{
    ccp_interval_mean_exact, ccp_interval_mean_time, scp_interval_mean_exact,
    scp_interval_mean_time, RenewalParams,
};
use eacp::energy::DvsConfig;
use eacp::faults::PoissonProcess;
use eacp::sim::{
    CheckpointCosts, CheckpointKind, Directive, Executor, ExecutorOptions, PlanContext, Policy,
    Scenario, TaskSpec,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Static schedule: `m` segments of `T/m`, sub-checkpoints between them, a
/// CSCP at the end; realigns with the engine's rollback position.
struct StaticSubdivision {
    sub_interval: f64,
    m: u32,
    seg: u32,
    sub_kind: CheckpointKind,
}

impl StaticSubdivision {
    fn scp(t: f64, m: u32) -> Self {
        Self {
            sub_interval: t / m as f64,
            m,
            seg: 0,
            sub_kind: CheckpointKind::Store,
        }
    }

    fn ccp(t: f64, m: u32) -> Self {
        Self {
            sub_interval: t / m as f64,
            m,
            seg: 0,
            sub_kind: CheckpointKind::Compare,
        }
    }
}

impl Policy for StaticSubdivision {
    fn name(&self) -> &'static str {
        "static-subdivision"
    }

    fn plan(&mut self, _ctx: &PlanContext<'_>) -> Directive {
        let kind = if (self.seg + 1).is_multiple_of(self.m) {
            CheckpointKind::CompareStore
        } else {
            self.sub_kind
        };
        self.seg += 1;
        Directive::run(0, self.sub_interval, kind)
    }

    fn on_compare(&mut self, ctx: &PlanContext<'_>, _kind: CheckpointKind, mismatch: bool) {
        if mismatch {
            self.seg = (ctx.position_cycles / self.sub_interval).round() as u32 % self.m;
        }
    }
}

/// Simulates the mean completion time of one interval under the given
/// policy factory (fault window = useful computation only, matching the
/// analysis).
fn simulated_mean(
    t: f64,
    costs: CheckpointCosts,
    lambda: f64,
    reps: u64,
    make: impl Fn() -> StaticSubdivision,
) -> (f64, f64) {
    let scenario = Scenario::new(
        TaskSpec::new(t, 1e12), // no deadline pressure
        costs,
        DvsConfig::paper_default(),
    );
    let executor = Executor::new(&scenario).with_options(ExecutorOptions {
        faults_during_overhead: false,
        ..ExecutorOptions::default()
    });
    let mut stats = eacp::numerics::OnlineStats::new();
    for rep in 0..reps {
        let mut policy = make();
        let mut faults = PoissonProcess::new(lambda, StdRng::seed_from_u64(rep * 77 + 5));
        let out = executor.run(&mut policy, &mut faults);
        assert!(out.completed, "interval must eventually complete");
        stats.push(out.finish_time);
    }
    (stats.mean(), stats.std_error())
}

#[test]
fn scp_exact_recursion_matches_simulation() {
    let lambda = 1.4e-3;
    let params = RenewalParams::new(2.0, 20.0, 0.0, lambda);
    for (t, m) in [(177.0, 3), (400.0, 8), (300.0, 1)] {
        let predicted = scp_interval_mean_exact(m, t, &params);
        let (mean, se) = simulated_mean(
            t,
            CheckpointCosts::paper_scp_variant(),
            lambda,
            20_000,
            || StaticSubdivision::scp(t, m),
        );
        let diff = (mean - predicted).abs();
        assert!(
            diff < 5.0 * se.max(0.01),
            "T={t} m={m}: simulated {mean:.3} ± {se:.3}, exact {predicted:.3}"
        );
    }
}

#[test]
fn ccp_closed_form_matches_simulation() {
    let lambda = 1.4e-3;
    let params = RenewalParams::new(20.0, 2.0, 0.0, lambda);
    for (t, m) in [(177.0, 3), (400.0, 6), (250.0, 1)] {
        let predicted = ccp_interval_mean_time(t / m as f64, t, &params);
        let exact = ccp_interval_mean_exact(m, t, &params);
        assert!((predicted - exact).abs() / exact < 1e-10);
        let (mean, se) = simulated_mean(
            t,
            CheckpointCosts::paper_ccp_variant(),
            lambda,
            20_000,
            || StaticSubdivision::ccp(t, m),
        );
        let diff = (mean - predicted).abs();
        assert!(
            diff < 5.0 * se.max(0.01),
            "T={t} m={m}: simulated {mean:.3} ± {se:.3}, closed form {predicted:.3}"
        );
    }
}

#[test]
fn scp_closed_form_tracks_simulation_within_approximation_error() {
    // Eq. (1) is a renewal approximation; at the paper's operating point it
    // should stay within ~10% of the simulated truth.
    let lambda = 1.6e-3;
    let params = RenewalParams::new(2.0, 20.0, 0.0, lambda);
    let (t, m) = (200.0, 4);
    let approx = scp_interval_mean_time(t / m as f64, t, &params);
    let (mean, _) = simulated_mean(
        t,
        CheckpointCosts::paper_scp_variant(),
        lambda,
        20_000,
        || StaticSubdivision::scp(t, m),
    );
    let rel = (approx - mean).abs() / mean;
    assert!(rel < 0.10, "closed form {approx:.2} vs simulated {mean:.2}");
}

#[test]
fn higher_lambda_increases_simulated_interval_time() {
    let t = 300.0;
    let m = 4;
    let (low, _) = simulated_mean(t, CheckpointCosts::paper_scp_variant(), 2e-4, 4_000, || {
        StaticSubdivision::scp(t, m)
    });
    let (high, _) = simulated_mean(t, CheckpointCosts::paper_scp_variant(), 4e-3, 4_000, || {
        StaticSubdivision::scp(t, m)
    });
    assert!(high > low);
}

#[test]
fn static_scheme_prediction_matches_monte_carlo() {
    // The analytic completion estimate (mean, variance, CLT-based P) for
    // the static Poisson baseline must agree with the simulator across the
    // paper's operating points.
    use eacp::core::analysis::static_scheme_completion;
    use eacp::core::policies::PoissonArrival;
    use eacp::exec::{Job, LocalRunner, Runner};

    for (util, lambda) in [(0.76_f64, 1.4e-3_f64), (0.78, 1.6e-3), (0.92, 1.0e-4)] {
        let n = util * 10_000.0;
        let interval = (2.0 * 22.0 / lambda).sqrt();
        let est = static_scheme_completion(n, interval, 22.0, 0.0, lambda);
        let scenario = Scenario::new(
            TaskSpec::new(n, 10_000.0),
            CheckpointCosts::paper_scp_variant(),
            DvsConfig::paper_default(),
        );
        let job = Job::from_parts(
            "static-vs-analysis",
            scenario,
            ExecutorOptions {
                faults_during_overhead: false,
                stop_at_deadline: false, // measure the full distribution
                ..ExecutorOptions::default()
            },
            6_000,
            31,
            move |_| Box::new(PoissonArrival::new(lambda, 0)),
            move |seed| Box::new(PoissonProcess::new(lambda, StdRng::seed_from_u64(seed))),
        )
        .unwrap();
        let summary = LocalRunner::default().run(&job).unwrap();
        // With stop_at_deadline off every run completes, so the measured
        // timely fraction is the untruncated P the CLT estimate predicts.
        assert_eq!(summary.completed, summary.replications);
        let p_mc = summary.p_timely();
        let p_pred = est.p_timely(10_000.0);
        assert!(
            (p_mc - p_pred).abs() < 0.06,
            "U={util} λ={lambda}: MC P={p_mc:.4} vs predicted {p_pred:.4}"
        );
    }
}
