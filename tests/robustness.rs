//! Robustness beyond the paper's Poisson assumption: the adaptive schemes
//! plan with a *nominal* Poisson rate, but the environment may be bursty
//! (MMPP), clustered (Weibull, shape < 1) or phased (mission profile).
//! The paper's qualitative claims should degrade gracefully, not collapse.

use eacp::core::policies::{Adaptive, PoissonArrival};
use eacp::energy::DvsConfig;
use eacp::exec::{Job, LocalRunner, Runner};
use eacp::faults::{BurstProcess, FaultProcess, PhasedPoisson, WeibullRenewal};
use eacp::sim::{CheckpointCosts, ExecutorOptions, Policy, Scenario, TaskSpec};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

fn scenario() -> Scenario {
    Scenario::new(
        TaskSpec::from_utilization(0.76, 1.0, 10_000.0),
        CheckpointCosts::paper_scp_variant(),
        DvsConfig::paper_default(),
    )
}

fn run_pair<Q, FQ>(nominal: f64, faults: FQ) -> (f64, f64)
where
    Q: FaultProcess + 'static,
    FQ: Fn(u64) -> Q + Send + Sync + 'static,
{
    let faults = Arc::new(faults);
    let runner = LocalRunner::default();
    let p_of = |name: &str, policy: Box<dyn Fn() -> Box<dyn Policy> + Send + Sync>| {
        let faults = Arc::clone(&faults);
        let job = Job::from_parts(
            name,
            scenario(),
            ExecutorOptions::default(),
            1_500,
            71,
            move |_| policy(),
            move |seed| Box::new(faults(seed)) as Box<dyn FaultProcess>,
        )
        .unwrap();
        runner.run(&job).unwrap().p_timely()
    };
    let p_static = p_of(
        "static",
        Box::new(move || Box::new(PoissonArrival::new(nominal, 0))),
    );
    let p_ads = p_of(
        "a_d_s",
        Box::new(move || Box::new(Adaptive::dvs_scp(nominal, 5))),
    );
    (p_static, p_ads)
}

#[test]
fn adaptive_dominates_under_bursty_faults() {
    // MMPP with stationary rate ≈ 1.45e-3; policies assume 1.4e-3.
    let nominal = 1.4e-3;
    let (p_static, p_ads) = run_pair(nominal, |seed| {
        BurstProcess::new(4e-4, 1.2e-2, 20_000.0, 2_000.0, StdRng::seed_from_u64(seed))
    });
    // Quiet stretches between bursts help the static baseline more than
    // under homogeneous Poisson, so the margin narrows — but the adaptive
    // scheme must still win clearly and stay near-certain itself.
    assert!(
        p_ads > p_static + 0.15,
        "bursty: A_D_S {p_ads} vs static {p_static}"
    );
    assert!(p_ads > 0.9, "A_D_S must stay robust under bursts: {p_ads}");
}

#[test]
fn adaptive_dominates_under_clustered_weibull_faults() {
    // Weibull shape 0.7 with the same mean rate as λ = 1.4e-3:
    // scale = 1/(λ·Γ(1+1/0.7)).
    let nominal = 1.4e-3;
    let scale = 564.0; // 1/(1.4e-3 · Γ(2.428)) ≈ 564
    let (p_static, p_ads) = run_pair(nominal, move |seed| {
        WeibullRenewal::new(0.7, scale, StdRng::seed_from_u64(seed))
    });
    assert!(
        p_ads > p_static,
        "clustered: A_D_S {p_ads} vs static {p_static}"
    );
    assert!(p_ads > 0.85, "A_D_S under clustering: {p_ads}");
}

#[test]
fn adaptive_survives_mission_phase_profiles() {
    // Quiet cruise, hot belt transit half-way through the task window.
    let nominal = 1.4e-3;
    let (p_static, p_ads) = run_pair(nominal, move |seed| {
        PhasedPoisson::new(
            vec![(4_000.0, 2e-4), (2_000.0, 5e-3), (100_000.0, 2e-4)],
            false,
            StdRng::seed_from_u64(seed),
        )
    });
    assert!(
        p_ads > p_static,
        "phased: A_D_S {p_ads} vs static {p_static}"
    );
    assert!(p_ads > 0.9, "A_D_S across a hot transit: {p_ads}");
}

#[test]
fn rate_misestimation_degrades_gracefully() {
    // The policy assumes λ = 1.4e-3 but the world is 2× hotter; P should
    // drop, not crater to baseline levels.
    use eacp::faults::PoissonProcess;
    let nominal = 1.4e-3;
    let actual = 2.8e-3;
    let (p_static, p_ads) = run_pair(nominal, move |seed| {
        PoissonProcess::new(actual, StdRng::seed_from_u64(seed))
    });
    assert!(p_ads > 0.6, "2× misestimation: A_D_S {p_ads}");
    assert!(p_ads > p_static + 0.3, "vs static {p_static}");
}
