//! DVS-configuration coverage beyond the paper's two-speed processor:
//! multi-level scaling, non-zero switch overheads, and single-speed
//! degenerate configurations must all compose correctly with the adaptive
//! policies.

use eacp::core::policies::Adaptive;
use eacp::energy::{DvsConfig, SpeedLevel};
use eacp::faults::{DeterministicFaults, PoissonProcess};
use eacp::sim::{CheckpointCosts, Executor, ExecutorOptions, Scenario, TaskSpec};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn three_level() -> DvsConfig {
    DvsConfig::new(vec![
        SpeedLevel::new(1.0, 1.2),
        SpeedLevel::new(1.5, 1.6),
        SpeedLevel::new(2.0, 2.0),
    ])
}

#[test]
fn three_level_processor_picks_middle_speed() {
    // Work sized so f1 misses but f1.5 fits comfortably.
    let scenario = Scenario::new(
        TaskSpec::new(12_000.0, 10_000.0),
        CheckpointCosts::paper_scp_variant(),
        three_level(),
    );
    let mut policy = Adaptive::dvs_scp(1e-4, 3);
    let out = Executor::new(&scenario).run(&mut policy, &mut DeterministicFaults::none());
    assert!(out.completed && out.timely);
    // Ran at 1.5 (not the fastest): nothing at frequency 2.0.
    assert_eq!(out.cycles_at_fastest, 0.0);
    assert!(out.total_cycles >= 12_000.0);
}

#[test]
fn three_level_processor_escalates_to_fastest() {
    let scenario = Scenario::new(
        TaskSpec::new(18_000.0, 10_000.0), // needs f ≈ 1.8+
        CheckpointCosts::paper_scp_variant(),
        three_level(),
    );
    let mut policy = Adaptive::dvs_scp(1e-4, 3);
    let out = Executor::new(&scenario).run(&mut policy, &mut DeterministicFaults::none());
    assert!(out.completed && out.timely);
    assert!(out.fast_fraction() > 0.9);
}

#[test]
fn switch_energy_is_charged_exactly() {
    // With switch_time = 0 the two runs have identical timelines, so the
    // energy difference is exactly processors · switch_energy · switches.
    let run = |switch_energy: f64| {
        let mut dvs = DvsConfig::paper_default();
        dvs.switch_energy = switch_energy;
        let scenario = Scenario::new(
            TaskSpec::new(7_600.0, 10_000.0),
            CheckpointCosts::paper_scp_variant(),
            dvs,
        );
        // Tight start forces f2; the injected fault triggers a replan
        // that downshifts — at least two switches.
        let mut policy = Adaptive::dvs_scp(1.4e-3, 5);
        let mut faults = DeterministicFaults::new(vec![2_500.0]);
        Executor::new(&scenario).run(&mut policy, &mut faults)
    };
    let free = run(0.0);
    let charged = run(40.0);
    assert!(charged.completed && free.completed);
    assert!(charged.speed_switches >= 2);
    assert_eq!(charged.speed_switches, free.speed_switches);
    assert!((charged.finish_time - free.finish_time).abs() < 1e-9);
    let expected_extra = 2.0 * 40.0 * charged.speed_switches as f64;
    assert!(
        (charged.energy - free.energy - expected_extra).abs() < 1e-6,
        "ΔE = {} vs expected {expected_extra}",
        charged.energy - free.energy
    );
}

#[test]
fn switch_time_delays_completion() {
    let run = |switch_time: f64| {
        let mut dvs = DvsConfig::paper_default();
        dvs.switch_time = switch_time;
        let scenario = Scenario::new(
            TaskSpec::new(7_600.0, 10_000.0),
            CheckpointCosts::paper_scp_variant(),
            dvs,
        );
        let mut policy = Adaptive::dvs_scp(1.4e-3, 5);
        Executor::new(&scenario).run(&mut policy, &mut DeterministicFaults::none())
    };
    let instant = run(0.0);
    let slow = run(25.0);
    assert!(instant.completed && slow.completed);
    // Fault-free: one initial upshift; the delayed run finishes exactly
    // one switch_time later.
    assert_eq!(slow.speed_switches, instant.speed_switches);
    let expected_delay = 25.0 * slow.speed_switches as f64;
    assert!(
        (slow.finish_time - instant.finish_time - expected_delay).abs() < 1e-9,
        "delay = {}",
        slow.finish_time - instant.finish_time
    );
}

#[test]
fn single_speed_config_disables_dvs_gracefully() {
    let scenario = Scenario::new(
        TaskSpec::new(5_000.0, 10_000.0),
        CheckpointCosts::paper_scp_variant(),
        DvsConfig::fixed(SpeedLevel::new(1.0, 1.5)),
    );
    let job = eacp::exec::Job::from_parts(
        "single-speed",
        scenario,
        ExecutorOptions::default(),
        300,
        4,
        |_| Box::new(Adaptive::dvs_scp(1e-3, 5)),
        |seed| Box::new(PoissonProcess::new(1e-3, StdRng::seed_from_u64(seed))),
    )
    .unwrap();
    use eacp::exec::Runner;
    let summary = eacp::exec::LocalRunner::default().run(&job).unwrap();
    assert_eq!(summary.anomalies, 0);
    assert!(summary.p_timely() > 0.95);
    // With one level, "fastest" is also "slowest": the fast fraction is
    // trivially 1 whenever anything ran.
    assert!(summary.fast_fraction.mean() > 0.99);
}
