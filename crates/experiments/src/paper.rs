//! The paper's reported numbers, transcribed from Tables 1–4.
//!
//! Each row is `(U, λ, [P, E] × {Poisson, k-f-t, A_D, proposed})`. The
//! `NaN` energies reproduce the paper's own `NaN` cells (no timely run to
//! average over).

use crate::tables::{SchemeId, TableId, TablePart};

/// Paper-reported `(P, E)` for all four schemes at one operating point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PaperCell {
    /// Probability of timely completion per scheme, in [`SchemeId::ALL`]
    /// column order.
    pub p: [f64; 4],
    /// Mean energy per scheme (same order); `NaN` where the paper prints
    /// `NaN`.
    pub e: [f64; 4],
}

impl PaperCell {
    /// `P` for one scheme.
    pub fn p_of(&self, scheme: SchemeId) -> f64 {
        self.p[scheme_index(scheme)]
    }

    /// `E` for one scheme.
    pub fn e_of(&self, scheme: SchemeId) -> f64 {
        self.e[scheme_index(scheme)]
    }
}

fn scheme_index(scheme: SchemeId) -> usize {
    match scheme {
        SchemeId::Poisson => 0,
        SchemeId::KFaultTolerant => 1,
        SchemeId::AdtDvs => 2,
        SchemeId::Proposed => 3,
    }
}

type Row = (f64, f64, [f64; 8]);

const NAN: f64 = f64::NAN;

#[rustfmt::skip]
const TABLE_1A: &[Row] = &[
    (0.76, 1.4e-3, [0.1185, 39015.0, 0.1115, 38940.0, 0.9991, 57564.0, 0.9999, 52863.0]),
    (0.76, 1.6e-3, [0.0489, 39183.0, 0.0466, 39153.0, 0.9992, 59765.0, 0.9999, 54176.0]),
    (0.78, 1.4e-3, [0.0504, 39358.0, 0.0496, 39350.0, 0.9990, 60441.0, 0.9999, 55520.0]),
    (0.78, 1.6e-3, [0.0181, 39443.0, 0.0182, 39396.0, 0.9993, 62687.0, 0.9999, 56814.0]),
    (0.80, 1.4e-3, [0.0091, 38951.0, 0.0204, 39507.0, 0.9993, 63039.0, 0.9999, 58079.0]),
    (0.80, 1.6e-3, [0.0021, 39217.0, 0.0062, 39684.0, 0.9990, 65233.0, 0.9998, 59344.0]),
    (0.82, 1.4e-3, [0.0013, 39161.0, 0.0018, 39122.0, 0.9995, 65778.0, 1.0000, 60731.0]),
    (0.82, 1.6e-3, [0.0005, 39290.0, 0.0003, 39200.0, 0.9990, 67987.0, 0.9999, 62091.0]),
];

#[rustfmt::skip]
const TABLE_1B: &[Row] = &[
    (0.92, 1.0e-4, [0.3914, 38032.0, 0.3965, 38665.0, 0.9229, 74193.0, 0.9549, 72862.0]),
    (0.92, 2.0e-4, [0.1650, 38623.0, 0.1628, 38681.0, 0.9793, 76444.0, 0.9985, 72566.0]),
    (0.95, 1.0e-4, [0.3851, 39316.0, 0.3852, 39844.0, 0.9188, 77097.0, 0.9516, 75743.0]),
    (0.95, 2.0e-4, [0.1520, 39844.0, 0.1510, 39844.0, 0.9462, 80414.0, 0.9944, 76841.0]),
    (1.00, 1.0e-4, [0.0000, NAN,     0.0000, NAN,     0.9146, 81572.0, 0.9557, 81047.0]),
    (1.00, 2.0e-4, [0.0000, NAN,     0.0000, NAN,     0.9204, 84371.0, 0.9892, 82499.0]),
];

#[rustfmt::skip]
const TABLE_2A: &[Row] = &[
    (0.76, 1.4e-3, [0.6159, 149458.0, 0.6121, 149682.0, 0.6486, 149599.0, 0.9462, 146097.0]),
    (0.76, 1.6e-3, [0.5369, 151339.0, 0.4258, 150911.0, 0.5451, 151264.0, 0.9006, 147873.0]),
    (0.78, 1.4e-3, [0.4659, 151964.0, 0.3593, 150851.0, 0.4699, 151935.0, 0.8385, 149415.0]),
    (0.78, 1.6e-3, [0.3007, 152371.0, 0.2055, 151581.0, 0.3227, 152552.0, 0.7389, 150742.0]),
    (0.80, 1.4e-3, [0.2355, 152698.0, 0.2305, 152918.0, 0.2672, 153124.0, 0.6491, 151905.0]),
    (0.80, 1.6e-3, [0.1264, 153007.0, 0.1207, 153495.0, 0.1617, 153695.0, 0.4864, 152742.0]),
    (0.82, 1.4e-3, [0.0921, 153077.0, 0.0838, 153103.0, 0.0992, 153320.0, 0.3843, 153562.0]),
    (0.82, 1.6e-3, [0.0285, 153494.0, 0.0271, 153619.0, 0.0388, 154288.0, 0.2242, 154279.0]),
];

#[rustfmt::skip]
const TABLE_2B: &[Row] = &[
    (0.92, 1.0e-4, [0.7609, 151255.0, 0.7638, 151722.0, 0.7640, 150583.0, 0.7776, 150583.0]),
    (0.92, 2.0e-4, [0.4365, 152453.0, 0.4384, 152554.0, 0.4737, 152444.0, 0.5334, 152452.0]),
    (0.95, 1.0e-4, [0.3847, 152589.0, 0.3924, 154140.0, 0.3799, 149117.0, 0.3941, 150259.0]),
    (0.95, 2.0e-4, [0.1498, 153946.0, 0.1498, 154167.0, 0.2816, 155147.0, 0.2842, 155612.0]),
];

#[rustfmt::skip]
const TABLE_3A: &[Row] = &[
    (0.76, 1.4e-3, [0.1104, 38942.0, 0.1070, 38953.0, 0.9990, 57662.0, 1.0000, 52862.0]),
    (0.76, 1.6e-3, [0.0505, 39141.0, 0.0479, 39128.0, 0.9989, 59736.0, 0.9999, 54036.0]),
    (0.78, 1.4e-3, [0.0530, 39374.0, 0.0534, 39345.0, 0.9989, 60435.0, 1.0000, 55520.0]),
    (0.78, 1.6e-3, [0.0190, 39422.0, 0.0210, 39362.0, 0.9989, 62477.0, 0.9998, 56719.0]),
    (0.80, 1.4e-3, [0.0085, 39030.0, 0.0209, 39500.0, 0.9989, 63040.0, 1.0000, 58042.0]),
    (0.80, 1.6e-3, [0.0022, 39103.0, 0.0057, 39530.0, 0.9992, 65230.0, 1.0000, 59274.0]),
    (0.82, 1.4e-3, [0.0021, 39266.0, 0.0020, 39031.0, 0.9990, 65731.0, 1.0000, 60573.0]),
    (0.82, 1.6e-3, [0.0005, 39658.0, 0.0005, 39350.0, 0.9989, 68038.0, 1.0000, 61935.0]),
];

#[rustfmt::skip]
const TABLE_3B: &[Row] = &[
    (0.92, 1.0e-4, [0.3887, 38032.0, 0.3984, 38667.0, 0.9241, 74350.0, 0.9800, 73547.0]),
    (0.92, 2.0e-4, [0.1634, 38619.0, 0.1635, 38685.0, 0.9783, 77021.0, 0.9994, 72669.0]),
    (0.95, 1.0e-4, [0.3775, 39316.0, 0.3772, 39844.0, 0.9116, 77266.0, 0.9812, 76756.0]),
    (0.95, 2.0e-4, [0.1498, 39844.0, 0.1480, 39844.0, 0.9519, 80540.0, 0.9978, 76614.0]),
    (1.00, 1.0e-4, [0.0000, NAN,     0.0000, NAN,     0.9074, 81397.0, 0.9831, 81675.0]),
    (1.00, 2.0e-4, [0.0000, NAN,     0.0000, NAN,     0.9202, 84379.0, 0.9959, 82254.0]),
];

#[rustfmt::skip]
const TABLE_4A: &[Row] = &[
    (0.76, 1.4e-3, [0.6130, 149575.0, 0.6063, 149738.0, 0.6456, 149694.0, 0.9544, 146237.0]),
    (0.76, 1.6e-3, [0.5252, 151286.0, 0.4147, 150869.0, 0.5336, 151206.0, 0.9104, 148058.0]),
    (0.78, 1.4e-3, [0.4731, 151926.0, 0.3641, 150860.0, 0.4804, 151917.0, 0.8519, 149493.0]),
    (0.78, 1.6e-3, [0.3016, 152389.0, 0.2061, 151610.0, 0.3277, 152618.0, 0.7546, 150926.0]),
    (0.80, 1.4e-3, [0.2356, 152662.0, 0.2283, 152988.0, 0.2664, 153111.0, 0.6540, 152034.0]),
    (0.80, 1.6e-3, [0.1279, 153171.0, 0.1195, 153558.0, 0.1629, 153834.0, 0.4942, 152927.0]),
    (0.82, 1.4e-3, [0.0873, 153081.0, 0.0849, 153118.0, 0.0950, 153365.0, 0.3758, 153731.0]),
    (0.82, 1.6e-3, [0.0321, 153207.0, 0.0319, 153394.0, 0.0418, 153946.0, 0.2115, 154400.0]),
];

#[rustfmt::skip]
const TABLE_4B: &[Row] = &[
    (0.92, 1.0e-4, [0.7559, 151220.0, 0.7570, 151703.0, 0.7583, 150564.0, 0.7657, 150564.0]),
    (0.92, 2.0e-4, [0.4409, 152537.0, 0.4398, 152623.0, 0.4715, 152479.0, 0.5327, 152546.0]),
    (0.95, 1.0e-4, [0.3946, 152591.0, 0.3984, 154155.0, 0.3878, 149117.0, 0.3995, 150239.0]),
    (0.95, 2.0e-4, [0.1479, 153946.0, 0.1488, 154171.0, 0.2775, 155132.0, 0.2850, 155597.0]),
];

fn rows_of(table: TableId, part: TablePart) -> &'static [Row] {
    match (table, part) {
        (TableId::Table1, TablePart::A) => TABLE_1A,
        (TableId::Table1, TablePart::B) => TABLE_1B,
        (TableId::Table2, TablePart::A) => TABLE_2A,
        (TableId::Table2, TablePart::B) => TABLE_2B,
        (TableId::Table3, TablePart::A) => TABLE_3A,
        (TableId::Table3, TablePart::B) => TABLE_3B,
        (TableId::Table4, TablePart::A) => TABLE_4A,
        (TableId::Table4, TablePart::B) => TABLE_4B,
    }
}

/// Looks up the paper's reported values for an operating point.
///
/// Returns `None` for `(U, λ)` combinations the paper does not report.
///
/// # Examples
///
/// ```
/// use eacp_experiments::paper::paper_cell;
/// use eacp_experiments::{SchemeId, TableId, TablePart};
///
/// let c = paper_cell(TableId::Table1, TablePart::A, 0.76, 1.4e-3).unwrap();
/// assert_eq!(c.p_of(SchemeId::Proposed), 0.9999);
/// assert_eq!(c.e_of(SchemeId::Poisson), 39015.0);
/// ```
pub fn paper_cell(table: TableId, part: TablePart, u: f64, lambda: f64) -> Option<PaperCell> {
    rows_of(table, part)
        .iter()
        .find(|(ru, rl, _)| (ru - u).abs() < 1e-9 && (rl - lambda).abs() < 1e-12)
        .map(|(_, _, v)| PaperCell {
            p: [v[0], v[2], v[4], v[6]],
            e: [v[1], v[3], v[5], v[7]],
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tables::table_config;

    #[test]
    fn every_configured_cell_has_paper_data() {
        for id in TableId::ALL {
            let cfg = table_config(id);
            for cell in &cfg.cells {
                assert!(
                    paper_cell(id, cell.part, cell.utilization, cell.lambda).is_some(),
                    "{id}({}) missing U={} λ={}",
                    cell.part,
                    cell.utilization,
                    cell.lambda
                );
            }
        }
    }

    #[test]
    fn unknown_cell_returns_none() {
        assert!(paper_cell(TableId::Table1, TablePart::A, 0.5, 1e-3).is_none());
    }

    #[test]
    fn nan_cells_only_at_full_utilization() {
        for id in [TableId::Table1, TableId::Table3] {
            for lambda in [1.0e-4, 2.0e-4] {
                let c = paper_cell(id, TablePart::B, 1.00, lambda).unwrap();
                assert!(c.e_of(SchemeId::Poisson).is_nan());
                assert!(c.e_of(SchemeId::KFaultTolerant).is_nan());
                assert_eq!(c.p_of(SchemeId::Poisson), 0.0);
                assert!(!c.e_of(SchemeId::AdtDvs).is_nan());
            }
        }
    }

    #[test]
    fn proposed_dominates_ad_in_paper_part_a() {
        // The paper's headline: the proposed scheme beats A_D on P in every
        // part-(a) row of every table.
        for id in TableId::ALL {
            for (u, l, v) in rows_of(id, TablePart::A) {
                let (p_ad, p_prop) = (v[4], v[6]);
                assert!(
                    p_prop >= p_ad,
                    "{id} U={u} λ={l}: proposed {p_prop} < A_D {p_ad}"
                );
            }
        }
    }

    #[test]
    fn f2_tables_use_more_energy_than_f1_tables() {
        // All-f2 baselines burn ≈3.8× the all-f1 energy (V² doubles, work
        // doubles) — the calibration anchor from DESIGN.md §2.4.
        let f1 = paper_cell(TableId::Table1, TablePart::A, 0.76, 1.4e-3).unwrap();
        let f2 = paper_cell(TableId::Table2, TablePart::A, 0.76, 1.4e-3).unwrap();
        let ratio = f2.e_of(SchemeId::Poisson) / f1.e_of(SchemeId::Poisson);
        assert!((3.5..4.2).contains(&ratio), "ratio = {ratio}");
    }
}
