//! Parameter sweeps beyond the paper's tables (ablations / sensitivity).
//!
//! ```text
//! sweep --kind store-compare-ratio   # A_D_S vs A_D_C crossover over ts:tcp
//! sweep --kind lambda                # all schemes over a λ grid
//! sweep --kind optimizer             # paper closed-form vs exact num_SCP
//! sweep --kind no-dvs                # paper §2 (Fig. 3): adaptive schemes
//!                                    # at a fixed speed vs static baselines
//! ```
//!
//! Optional: `--reps N` (default 2000), `--seed S`.

use eacp_core::analysis::OptimizeMethod;
use eacp_core::policies::Adaptive;
use eacp_energy::DvsConfig;
use eacp_faults::PoissonProcess;
use eacp_sim::{CheckpointCosts, ExecutorOptions, MonteCarlo, Scenario, TaskSpec};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn mc_summary(
    scenario: &Scenario,
    lambda: f64,
    reps: u64,
    seed: u64,
    make: impl Fn() -> Adaptive + Sync,
) -> eacp_sim::Summary {
    MonteCarlo::new(reps).with_seed(seed).run(
        scenario,
        ExecutorOptions::default(),
        |_| make(),
        |s| PoissonProcess::new(lambda, StdRng::seed_from_u64(s)),
    )
}

/// A_D_S vs A_D_C as the store/compare cost ratio varies with `ts + tcp`
/// fixed at 22 cycles — the design-insight sweep: "separating the
/// comparison and store operations enables choosing the optimal interval
/// for each".
fn sweep_store_compare_ratio(reps: u64, seed: u64) {
    println!("ts,tcp,P_ads,E_ads,P_adc,E_adc,winner_p");
    let lambda = 1.4e-3;
    for &ts in &[1.0, 2.0, 5.0, 8.0, 11.0, 14.0, 17.0, 20.0, 21.0] {
        let tcp = 22.0 - ts;
        let scenario = Scenario::new(
            TaskSpec::from_utilization(0.76, 1.0, 10_000.0),
            CheckpointCosts::new(ts, tcp, 0.0),
            DvsConfig::paper_default(),
        );
        let ads = mc_summary(&scenario, lambda, reps, seed, || {
            Adaptive::dvs_scp(lambda, 5)
        });
        let adc = mc_summary(&scenario, lambda, reps, seed, || {
            Adaptive::dvs_ccp(lambda, 5)
        });
        let winner = if ads.p_timely() >= adc.p_timely() {
            "A_D_S"
        } else {
            "A_D_C"
        };
        println!(
            "{ts},{tcp},{:.4},{:.0},{:.4},{:.0},{winner}",
            ads.p_timely(),
            ads.mean_energy_timely(),
            adc.p_timely(),
            adc.mean_energy_timely(),
        );
    }
}

/// All adaptive variants over a fault-rate grid at the paper's nominal
/// operating point.
fn sweep_lambda(reps: u64, seed: u64) {
    println!("lambda,scheme,P,E,faults_mean,fast_fraction");
    let scenario = Scenario::new(
        TaskSpec::from_utilization(0.76, 1.0, 10_000.0),
        CheckpointCosts::paper_scp_variant(),
        DvsConfig::paper_default(),
    );
    for &lambda in &[1e-5, 5e-5, 1e-4, 5e-4, 1e-3, 1.4e-3, 2e-3, 4e-3] {
        for (name, make) in [
            (
                "A_D",
                Box::new(move || Adaptive::adt_dvs(lambda, 5)) as Box<dyn Fn() -> Adaptive + Sync>,
            ),
            ("A_D_S", Box::new(move || Adaptive::dvs_scp(lambda, 5))),
            ("A_D_C", Box::new(move || Adaptive::dvs_ccp(lambda, 5))),
        ] {
            let s = mc_summary(&scenario, lambda, reps, seed, &*make);
            println!(
                "{lambda:e},{name},{:.4},{:.0},{:.2},{:.3}",
                s.p_timely(),
                s.mean_energy_timely(),
                s.faults.mean(),
                s.fast_fraction.mean(),
            );
        }
    }
}

/// The paper's closed-form `num_SCP` vs the exact-recursion optimizer.
fn sweep_optimizer(reps: u64, seed: u64) {
    println!("lambda,method,P,E,checkpoints_mean");
    let scenario = Scenario::new(
        TaskSpec::from_utilization(0.76, 1.0, 10_000.0),
        CheckpointCosts::paper_scp_variant(),
        DvsConfig::paper_default(),
    );
    for &lambda in &[1.4e-3, 1.6e-3, 4e-3] {
        for (name, method) in [
            ("paper-closed-form", OptimizeMethod::PaperClosedForm),
            ("exact-recursion", OptimizeMethod::ExactRecursion),
        ] {
            let s = mc_summary(&scenario, lambda, reps, seed, move || {
                Adaptive::dvs_scp(lambda, 5).with_optimizer(method)
            });
            println!(
                "{lambda:e},{name},{:.4},{:.0},{:.1}",
                s.p_timely(),
                s.mean_energy_timely(),
                s.checkpoints.mean(),
            );
        }
    }
}

/// The paper's §2 setting (Fig. 3): adaptive checkpointing *without* DVS
/// at the fixed low speed, against the static baselines — isolating the
/// benefit of adaptive intervals + SCP subdivision from the DVS benefit.
fn sweep_no_dvs(reps: u64, seed: u64) {
    use eacp_core::policies::{KFaultTolerant, PoissonArrival};
    use eacp_sim::Policy;
    type PolicyFactory = Box<dyn Fn() -> Box<dyn Policy> + Sync>;
    println!("utilization,lambda,scheme,P,E");
    // Generous deadline so the fixed-speed adaptive schemes are feasible.
    for &(util, lambda) in &[(0.60, 1.4e-3), (0.68, 1.4e-3), (0.76, 1.4e-3), (0.76, 2e-3)] {
        let scenario = Scenario::new(
            TaskSpec::from_utilization(util, 1.0, 10_000.0),
            CheckpointCosts::paper_scp_variant(),
            DvsConfig::paper_default(),
        );
        let factories: Vec<(&str, PolicyFactory)> = vec![
            (
                "Poisson",
                Box::new(move || Box::new(PoissonArrival::new(lambda, 0))),
            ),
            (
                "k-f-t",
                Box::new(move || Box::new(KFaultTolerant::new(5, 0))),
            ),
            (
                "A(cscp)",
                Box::new(move || Box::new(Adaptive::cscp(lambda, 5, 0))),
            ),
            (
                "A_S",
                Box::new(move || Box::new(Adaptive::scp(lambda, 5, 0))),
            ),
        ];
        for (name, make) in factories {
            let s = MonteCarlo::new(reps).with_seed(seed).run(
                &scenario,
                ExecutorOptions::default(),
                |_| make(),
                |sd| PoissonProcess::new(lambda, StdRng::seed_from_u64(sd)),
            );
            println!(
                "{util},{lambda:e},{name},{:.4},{:.0}",
                s.p_timely(),
                s.mean_energy_timely()
            );
        }
    }
}

fn main() {
    let mut kind = String::from("store-compare-ratio");
    let mut reps = 2000u64;
    let mut seed = 77u64;
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--kind" => kind = it.next().expect("missing value for --kind"),
            "--reps" => {
                reps = it
                    .next()
                    .expect("missing value for --reps")
                    .parse()
                    .expect("bad --reps")
            }
            "--seed" => {
                seed = it
                    .next()
                    .expect("missing value for --seed")
                    .parse()
                    .expect("bad --seed")
            }
            "--help" | "-h" => {
                println!(
                    "usage: sweep --kind store-compare-ratio|lambda|optimizer|no-dvs [--reps N] [--seed S]"
                );
                return;
            }
            other => {
                eprintln!("sweep: unknown flag {other:?}");
                std::process::exit(2);
            }
        }
    }
    match kind.as_str() {
        "store-compare-ratio" => sweep_store_compare_ratio(reps, seed),
        "lambda" => sweep_lambda(reps, seed),
        "optimizer" => sweep_optimizer(reps, seed),
        "no-dvs" => sweep_no_dvs(reps, seed),
        other => {
            eprintln!("sweep: unknown kind {other:?}");
            std::process::exit(2);
        }
    }
}
