//! Parameter sweeps beyond the paper's tables (ablations / sensitivity).
//!
//! ```text
//! sweep --kind store-compare-ratio   # A_D_S vs A_D_C crossover over ts:tcp
//! sweep --kind lambda                # adaptive schemes over a λ grid
//! sweep --kind optimizer             # paper closed-form vs exact num_SCP
//! sweep --kind no-dvs                # paper §2 (Fig. 3): adaptive schemes
//!                                    # at a fixed speed vs static baselines
//! sweep --spec sweep.json            # any user-provided SweepSpec grid
//! ```
//!
//! Optional: `--reps N` (default 2000), `--seed S`.
//!
//! Every built-in kind is expressed as `eacp-spec` documents: a base
//! [`ExperimentSpec`] plus [`SweepAxis`] grids where the shape is a
//! cartesian product, or explicit spec lists where it is not. `--emit-spec`
//! prints the expanded documents instead of running them.

#![forbid(unsafe_code)]

use eacp_spec::{
    CostsSpec, ExperimentSpec, FaultSpec, McSpec, OptimizerSpec, PolicySpec, SweepAxis, SweepSpec,
    ToJson,
};

fn nominal_base(name: &str, lambda: f64, reps: u64, seed: u64) -> ExperimentSpec {
    let mut spec = ExperimentSpec::paper_nominal();
    spec.name = name.to_owned();
    spec.faults = FaultSpec::Poisson { lambda };
    spec.policy = spec.policy.with_lambda(lambda);
    spec.mc = McSpec {
        replications: reps,
        seed,
        threads: 0,
    };
    // These sweeps use the physical fault model (faults can also strike
    // during checkpoint operations), unlike the paper-faithful tables.
    spec.executor = eacp_spec::ExecSpec::default();
    spec
}

fn run_spec(spec: &ExperimentSpec) -> eacp_sim::Summary {
    let (summary, _) = eacp_exec::run(spec).unwrap_or_else(|e| {
        eprintln!("sweep: {}: {e}", spec.name);
        std::process::exit(1);
    });
    summary
}

/// A_D_S vs A_D_C as the store/compare cost ratio varies with `ts + tcp`
/// fixed at 22 cycles — the design-insight sweep: "separating the
/// comparison and store operations enables choosing the optimal interval
/// for each".
fn sweep_store_compare_ratio(reps: u64, seed: u64, emit: bool) {
    let costs: Vec<CostsSpec> = [1.0, 2.0, 5.0, 8.0, 11.0, 14.0, 17.0, 20.0, 21.0]
        .iter()
        .map(|&ts| CostsSpec::Explicit {
            store: ts,
            compare: 22.0 - ts,
            rollback: 0.0,
        })
        .collect();
    let grid = |tag: &str| SweepSpec {
        base: {
            let mut b = nominal_base(tag, 1.4e-3, reps, seed);
            b.policy = PolicySpec::from_tag(tag, 1.4e-3, 5, 0).expect("known tag");
            b
        },
        axes: vec![
            SweepAxis::Costs(costs.clone()),
            // Pin every point to the same seed: both schemes must face
            // identical fault streams for the crossover to be meaningful.
            SweepAxis::Seed(vec![seed]),
        ],
    };
    let ads_grid = grid("a_d_s").expand().expect("compatible axes");
    let adc_grid = grid("a_d_c").expand().expect("compatible axes");
    if emit {
        emit_specs(ads_grid.iter().chain(&adc_grid));
        return;
    }
    println!("ts,tcp,P_ads,E_ads,P_adc,E_adc,winner_p");
    for (ads_spec, adc_spec) in ads_grid.iter().zip(&adc_grid) {
        let (ts, tcp) = match ads_spec.scenario.costs {
            CostsSpec::Explicit { store, compare, .. } => (store, compare),
            _ => unreachable!("axis values are explicit costs"),
        };
        let ads = run_spec(ads_spec);
        let adc = run_spec(adc_spec);
        let winner = if ads.p_timely() >= adc.p_timely() {
            "A_D_S"
        } else {
            "A_D_C"
        };
        println!(
            "{ts},{tcp},{:.4},{:.0},{:.4},{:.0},{winner}",
            ads.p_timely(),
            ads.mean_energy_timely(),
            adc.p_timely(),
            adc.mean_energy_timely(),
        );
    }
}

/// All adaptive variants over a fault-rate grid at the paper's nominal
/// operating point.
fn sweep_lambda(reps: u64, seed: u64, emit: bool) {
    let lambdas = vec![1e-5, 5e-5, 1e-4, 5e-4, 1e-3, 1.4e-3, 2e-3, 4e-3];
    let grids: Vec<Vec<ExperimentSpec>> = ["a_d", "a_d_s", "a_d_c"]
        .iter()
        .map(|tag| {
            SweepSpec {
                base: {
                    let mut b = nominal_base(tag, 1.4e-3, reps, seed);
                    b.policy = PolicySpec::from_tag(tag, 1.4e-3, 5, 0).expect("known tag");
                    b
                },
                axes: vec![
                    SweepAxis::Lambda(lambdas.clone()),
                    SweepAxis::Seed(vec![seed]),
                ],
            }
            .expand()
            .expect("compatible axes")
        })
        .collect();
    if emit {
        emit_specs(grids.iter().flatten());
        return;
    }
    println!("lambda,scheme,P,E,faults_mean,fast_fraction");
    for i in 0..lambdas.len() {
        for grid in &grids {
            let spec = &grid[i];
            let s = run_spec(spec);
            println!(
                "{:e},{},{:.4},{:.0},{:.2},{:.3}",
                lambdas[i],
                spec.policy.policy_name(),
                s.p_timely(),
                s.mean_energy_timely(),
                s.faults.mean(),
                s.fast_fraction.mean(),
            );
        }
    }
}

/// The paper's closed-form `num_SCP` vs the exact-recursion optimizer.
fn sweep_optimizer(reps: u64, seed: u64, emit: bool) {
    let lambdas = vec![1.4e-3, 1.6e-3, 4e-3];
    let variants = [
        ("paper-closed-form", OptimizerSpec::PaperClosedForm),
        ("exact-recursion", OptimizerSpec::ExactRecursion),
    ];
    let mut specs = Vec::new();
    for &lambda in &lambdas {
        for (name, optimizer) in variants {
            let mut spec = nominal_base(&format!("optimizer-{name}-l{lambda}"), lambda, reps, seed);
            spec.policy = PolicySpec::DvsScp {
                lambda,
                k: 5,
                optimizer,
            };
            specs.push((name, lambda, spec));
        }
    }
    if emit {
        emit_specs(specs.iter().map(|(_, _, s)| s));
        return;
    }
    println!("lambda,method,P,E,checkpoints_mean");
    for (name, lambda, spec) in &specs {
        let s = run_spec(spec);
        println!(
            "{lambda:e},{name},{:.4},{:.0},{:.1}",
            s.p_timely(),
            s.mean_energy_timely(),
            s.checkpoints.mean(),
        );
    }
}

/// The paper's §2 setting (Fig. 3): adaptive checkpointing *without* DVS
/// at the fixed low speed, against the static baselines — isolating the
/// benefit of adaptive intervals + SCP subdivision from the DVS benefit.
fn sweep_no_dvs(reps: u64, seed: u64, emit: bool) {
    // The (U, λ) list is deliberately not a cartesian product, so this
    // kind enumerates explicit specs rather than axes.
    let points = [(0.60, 1.4e-3), (0.68, 1.4e-3), (0.76, 1.4e-3), (0.76, 2e-3)];
    let tags = ["poisson", "kft", "cscp", "a_s"];
    let mut specs = Vec::new();
    for &(util, lambda) in &points {
        for tag in tags {
            let mut spec = nominal_base(
                &format!("no-dvs-{tag}-u{util}-l{lambda}"),
                lambda,
                reps,
                seed,
            );
            spec.scenario.work = eacp_spec::WorkSpec::Utilization {
                utilization: util,
                speed: 1.0,
                deadline: 10_000.0,
            };
            spec.policy = PolicySpec::from_tag(tag, lambda, 5, 0).expect("known tag");
            specs.push((util, lambda, spec));
        }
    }
    if emit {
        emit_specs(specs.iter().map(|(_, _, s)| s));
        return;
    }
    println!("utilization,lambda,scheme,P,E");
    for (util, lambda, spec) in &specs {
        let s = run_spec(spec);
        println!(
            "{util},{lambda:e},{},{:.4},{:.0}",
            spec.policy.policy_name(),
            s.p_timely(),
            s.mean_energy_timely()
        );
    }
}

/// Runs an arbitrary user-provided [`SweepSpec`] document.
fn sweep_from_file(path: &str, reps_override: Option<u64>, emit: bool) {
    let mut sweep = SweepSpec::load(std::path::Path::new(path)).unwrap_or_else(|e| {
        eprintln!("sweep: {e}");
        std::process::exit(2);
    });
    if let Some(reps) = reps_override {
        sweep.base.mc.replications = reps;
    }
    let specs = sweep.expand().unwrap_or_else(|e| {
        eprintln!("sweep: {e}");
        std::process::exit(2);
    });
    if emit {
        emit_specs(specs.iter());
        return;
    }
    println!("experiment,P,E,faults_mean");
    for spec in &specs {
        let s = run_spec(spec);
        println!(
            "{},{:.4},{:.0},{:.2}",
            spec.name,
            s.p_timely(),
            s.mean_energy_timely(),
            s.faults.mean(),
        );
    }
}

fn emit_specs<'a, I: Iterator<Item = &'a ExperimentSpec>>(specs: I) {
    let docs: Vec<eacp_spec::Json> = specs.map(ToJson::to_json).collect();
    print!("{}", eacp_spec::Json::Array(docs).pretty());
}

fn main() {
    let mut kind = String::from("store-compare-ratio");
    let mut reps = 2000u64;
    let mut reps_given = false;
    let mut seed = 77u64;
    let mut spec_path: Option<String> = None;
    let mut emit = false;
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--kind" => kind = it.next().expect("missing value for --kind"),
            "--spec" => spec_path = Some(it.next().expect("missing value for --spec")),
            "--emit-spec" => emit = true,
            "--reps" => {
                reps = it
                    .next()
                    .expect("missing value for --reps")
                    .parse()
                    .expect("bad --reps");
                reps_given = true;
            }
            "--seed" => {
                seed = it
                    .next()
                    .expect("missing value for --seed")
                    .parse()
                    .expect("bad --seed")
            }
            "--help" | "-h" => {
                println!(
                    "usage: sweep --kind store-compare-ratio|lambda|optimizer|no-dvs [--reps N] [--seed S]\n\
                     \x20      sweep --spec sweep.json [--reps N]\n\
                     \x20      (add --emit-spec to print the expanded spec documents instead of running)"
                );
                return;
            }
            other => {
                eprintln!("sweep: unknown flag {other:?}");
                std::process::exit(2);
            }
        }
    }
    if let Some(path) = spec_path {
        sweep_from_file(&path, reps_given.then_some(reps), emit);
        return;
    }
    match kind.as_str() {
        "store-compare-ratio" => sweep_store_compare_ratio(reps, seed, emit),
        "lambda" => sweep_lambda(reps, seed, emit),
        "optimizer" => sweep_optimizer(reps, seed, emit),
        "no-dvs" => sweep_no_dvs(reps, seed, emit),
        other => {
            eprintln!("sweep: unknown kind {other:?}");
            std::process::exit(2);
        }
    }
}
