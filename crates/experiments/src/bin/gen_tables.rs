//! Regenerates the paper's Tables 1–4 and checks the reproduction shape.
//!
//! ```text
//! gen-tables [--table 1|2|3|4] [--reps N] [--seed S]
//!            [--format text|markdown|csv] [--out DIR] [--no-shape]
//!            [--physical-fault-model] [--queue-workers N]
//! ```
//!
//! Defaults: all four tables, 10,000 replications per cell (the paper's
//! count), text output to stdout, shape checks on, and the paper's fault
//! model (faults strike only during useful computation — matching the
//! renewal analysis; calibration against the paper's reported values
//! confirms this is what the authors simulated). With
//! `--physical-fault-model` checkpoint/rollback operations are also
//! exposed to faults. With `--out DIR`, text, markdown and CSV renderings
//! are also written to files.

#![forbid(unsafe_code)]

use eacp_experiments::compare::render_comparison;
use eacp_experiments::shape::{check_table, tally};
use eacp_experiments::{render, TableId};
use eacp_sim::ExecutorOptions;
use std::io::Write;

struct Args {
    tables: Vec<TableId>,
    reps: u64,
    seed: u64,
    format: String,
    out_dir: Option<String>,
    shape: bool,
    physical_fault_model: bool,
    queue_workers: Option<usize>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        tables: TableId::ALL.to_vec(),
        reps: eacp_experiments::tables::PAPER_REPLICATIONS,
        seed: 2006,
        format: "text".to_owned(),
        out_dir: None,
        shape: true,
        physical_fault_model: false,
        queue_workers: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("missing value for {name}"));
        match flag.as_str() {
            "--table" => {
                let v = value("--table")?;
                let id = match v.as_str() {
                    "1" => TableId::Table1,
                    "2" => TableId::Table2,
                    "3" => TableId::Table3,
                    "4" => TableId::Table4,
                    other => return Err(format!("unknown table {other:?} (use 1..4)")),
                };
                args.tables = vec![id];
            }
            "--reps" => {
                args.reps = value("--reps")?
                    .parse()
                    .map_err(|e| format!("bad --reps: {e}"))?;
            }
            "--seed" => {
                args.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("bad --seed: {e}"))?;
            }
            "--format" => {
                let v = value("--format")?;
                if !["text", "markdown", "csv"].contains(&v.as_str()) {
                    return Err(format!("unknown format {v:?}"));
                }
                args.format = v;
            }
            "--out" => args.out_dir = Some(value("--out")?),
            "--no-shape" => args.shape = false,
            "--physical-fault-model" => args.physical_fault_model = true,
            "--queue-workers" => {
                args.queue_workers = Some(
                    value("--queue-workers")?
                        .parse()
                        .map_err(|e| format!("bad --queue-workers: {e}"))?,
                );
            }
            "--help" | "-h" => {
                println!(
                    "usage: gen-tables [--table 1|2|3|4] [--reps N] [--seed S] \
                     [--format text|markdown|csv] [--out DIR] [--no-shape] \
                     [--physical-fault-model] [--queue-workers N]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    Ok(args)
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("gen-tables: {e}");
            std::process::exit(2);
        }
    };

    let options = ExecutorOptions {
        faults_during_overhead: args.physical_fault_model,
        ..ExecutorOptions::default()
    };
    // The scheduling choice rides on the executor spec; summaries are
    // bit-identical with or without the queue.
    let mut executor = eacp_spec::ExecSpec::from_options(&options);
    if let Some(workers) = args.queue_workers {
        executor = executor.with_queue(eacp_spec::QueueSpec {
            workers,
            ..Default::default()
        });
    }
    let mut any_shape_failure = false;
    for &id in &args.tables {
        // Progress timing for the operator; outside the R1 determinism
        // scope (see clippy.toml).
        #[allow(clippy::disallowed_types)]
        let t0 = std::time::Instant::now();
        let result = eacp_experiments::run_table_exec(id, args.reps, args.seed, executor.clone());
        let elapsed = t0.elapsed();
        match args.format.as_str() {
            "markdown" => println!("{}", render::to_markdown(&result)),
            "csv" => println!("{}", render::to_csv(&result)),
            _ => println!("{}", render::to_text(&result)),
        }
        eprintln!(
            "# {} regenerated in {:.1}s ({} replications/cell)",
            id,
            elapsed.as_secs_f64(),
            args.reps
        );

        if let Some(dir) = &args.out_dir {
            std::fs::create_dir_all(dir).expect("create output directory");
            let base = format!("{dir}/table{}", id.number());
            for (ext, body) in [
                ("txt", render::to_text(&result)),
                ("md", render::to_markdown(&result)),
                ("csv", render::to_csv(&result)),
            ] {
                let mut f =
                    std::fs::File::create(format!("{base}.{ext}")).expect("create output file");
                f.write_all(body.as_bytes()).expect("write output file");
            }
        }

        eprintln!("{}", render_comparison(&result));

        if args.shape {
            let findings = check_table(&result);
            let (passed, failed) = tally(&findings);
            eprintln!("# shape: {passed} criteria passed, {failed} failed");
            for f in findings.iter().filter(|f| !f.passed) {
                eprintln!("#   FAIL {}: {}", f.criterion, f.detail);
                any_shape_failure = true;
            }
        }
    }
    if any_shape_failure {
        std::process::exit(1);
    }
}
