//! Monte-Carlo driver for table cells.

use crate::paper::{paper_cell, PaperCell};
use crate::tables::{CellSpec, SchemeId, TableConfig, TableId};
use eacp_core::policies::{Adaptive, KFaultTolerant, PoissonArrival, SubCheckpointKind};
use eacp_energy::DvsConfig;
use eacp_faults::PoissonProcess;
use eacp_sim::{ExecutorOptions, MonteCarlo, Policy, Scenario, Summary, TaskSpec};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Result of one scheme at one operating point.
#[derive(Debug, Clone)]
pub struct SchemeResult {
    /// Which scheme.
    pub scheme: SchemeId,
    /// Display name ("Poisson", "k-f-t", "A_D", "A_D_S"/"A_D_C").
    pub name: String,
    /// Monte-Carlo aggregate.
    pub summary: Summary,
}

/// All four schemes at one operating point, plus the paper's numbers.
#[derive(Debug, Clone)]
pub struct CellResult {
    /// The operating point.
    pub spec: CellSpec,
    /// Results in [`SchemeId::ALL`] column order.
    pub schemes: Vec<SchemeResult>,
    /// The paper's reported values for this cell, when available.
    pub paper: Option<PaperCell>,
}

impl CellResult {
    /// The result for one scheme.
    pub fn scheme(&self, id: SchemeId) -> &SchemeResult {
        self.schemes
            .iter()
            .find(|s| s.scheme == id)
            .expect("all schemes are always run")
    }
}

/// A fully regenerated table.
#[derive(Debug, Clone)]
pub struct TableResult {
    /// Which table.
    pub id: TableId,
    /// The configuration that produced it.
    pub config: TableConfig,
    /// Row results in configuration order.
    pub cells: Vec<CellResult>,
    /// Replications per scheme per cell.
    pub replications: u64,
}

/// Builds the scenario for one cell of a table.
pub fn cell_scenario(config: &TableConfig, spec: &CellSpec) -> Scenario {
    Scenario::new(
        TaskSpec::from_utilization(spec.utilization, config.util_speed, config.deadline),
        config.costs,
        DvsConfig::paper_default(),
    )
}

/// Builds the policy for one scheme at one cell.
pub fn make_policy(config: &TableConfig, spec: &CellSpec, scheme: SchemeId) -> Box<dyn Policy> {
    match scheme {
        SchemeId::Poisson => Box::new(PoissonArrival::new(spec.lambda, config.baseline_speed)),
        SchemeId::KFaultTolerant => Box::new(KFaultTolerant::new(spec.k, config.baseline_speed)),
        SchemeId::AdtDvs => Box::new(Adaptive::adt_dvs(spec.lambda, spec.k)),
        SchemeId::Proposed => Box::new(match config.sub_kind {
            SubCheckpointKind::Store => Adaptive::dvs_scp(spec.lambda, spec.k),
            SubCheckpointKind::Compare => Adaptive::dvs_ccp(spec.lambda, spec.k),
        }),
    }
}

/// Runs all four schemes at one operating point with default executor
/// options.
pub fn run_cell(config: &TableConfig, spec: &CellSpec, replications: u64, seed: u64) -> CellResult {
    run_cell_with(config, spec, replications, seed, ExecutorOptions::default())
}

/// Runs all four schemes at one operating point.
///
/// `options` selects executor semantics — notably
/// [`ExecutorOptions::faults_during_overhead`], which distinguishes the
/// physical fault model (faults can strike during checkpoint operations;
/// the default) from the analysis-faithful model the paper's renewal
/// equations assume (faults only during useful computation).
pub fn run_cell_with(
    config: &TableConfig,
    spec: &CellSpec,
    replications: u64,
    seed: u64,
    options: ExecutorOptions,
) -> CellResult {
    let scenario = cell_scenario(config, spec);
    let mc = MonteCarlo::new(replications).with_seed(seed);
    let lambda = spec.lambda;
    let schemes = SchemeId::ALL
        .iter()
        .map(|&scheme| {
            let summary = mc.run(
                &scenario,
                options,
                |_| make_policy(config, spec, scheme),
                |s| PoissonProcess::new(lambda, StdRng::seed_from_u64(s)),
            );
            debug_assert_eq!(summary.anomalies, 0, "policy anomaly in {scheme:?}");
            let name = match scheme {
                SchemeId::Poisson => "Poisson".to_owned(),
                SchemeId::KFaultTolerant => "k-f-t".to_owned(),
                SchemeId::AdtDvs => "A_D".to_owned(),
                SchemeId::Proposed => config.proposed_name().to_owned(),
            };
            SchemeResult {
                scheme,
                name,
                summary,
            }
        })
        .collect();
    CellResult {
        spec: *spec,
        schemes,
        paper: paper_cell(config.id, spec.part, spec.utilization, spec.lambda),
    }
}

/// Regenerates one full table at the given replication count (the paper
/// uses 10,000; lower counts are useful for quick looks and CI).
pub fn run_table(id: TableId, replications: u64, seed: u64) -> TableResult {
    run_table_with(id, replications, seed, ExecutorOptions::default())
}

/// [`run_table`] with explicit executor options (see [`run_cell_with`]).
pub fn run_table_with(
    id: TableId,
    replications: u64,
    seed: u64,
    options: ExecutorOptions,
) -> TableResult {
    let config = crate::tables::table_config(id);
    let cells = config
        .cells
        .iter()
        .enumerate()
        .map(|(i, spec)| {
            run_cell_with(
                &config,
                spec,
                replications,
                seed.wrapping_add(i as u64),
                options,
            )
        })
        .collect();
    TableResult {
        id,
        config,
        cells,
        replications,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tables::{table_config, TablePart};

    #[test]
    fn cell_scenario_scales_work_with_util_speed() {
        let t1 = table_config(TableId::Table1);
        let t2 = table_config(TableId::Table2);
        let spec = t1.cells[0];
        assert_eq!(cell_scenario(&t1, &spec).task.work_cycles, 7600.0);
        assert_eq!(cell_scenario(&t2, &t2.cells[0]).task.work_cycles, 15_200.0);
    }

    #[test]
    fn policies_have_expected_names() {
        let cfg = table_config(TableId::Table3);
        let spec = cfg.cells[0];
        assert_eq!(
            make_policy(&cfg, &spec, SchemeId::Poisson).name(),
            "Poisson"
        );
        assert_eq!(
            make_policy(&cfg, &spec, SchemeId::KFaultTolerant).name(),
            "k-f-t"
        );
        assert_eq!(make_policy(&cfg, &spec, SchemeId::AdtDvs).name(), "A_D");
        assert_eq!(make_policy(&cfg, &spec, SchemeId::Proposed).name(), "A_D_C");
    }

    #[test]
    fn smoke_cell_runs_all_schemes() {
        let cfg = table_config(TableId::Table1);
        let spec = cfg.cells[0]; // U = 0.76, λ = 1.4e-3, k = 5
        let cell = run_cell(&cfg, &spec, 60, 1);
        assert_eq!(cell.schemes.len(), 4);
        assert!(cell.paper.is_some());
        for s in &cell.schemes {
            assert_eq!(s.summary.replications, 60);
            assert_eq!(s.summary.anomalies, 0, "{}", s.name);
        }
        // Coarse shape even at 60 reps: adaptive schemes nearly always
        // finish, baselines rarely do at this operating point.
        let p_prop = cell.scheme(SchemeId::Proposed).summary.p_timely();
        let p_poisson = cell.scheme(SchemeId::Poisson).summary.p_timely();
        assert!(p_prop > 0.9, "P(A_D_S) = {p_prop}");
        assert!(p_poisson < 0.5, "P(Poisson) = {p_poisson}");
    }

    #[test]
    fn impossible_utilization_gives_zero_p_and_nan_e() {
        // U = 1.00, k = 1 (Table 1(b)): the baselines can never finish by D.
        let cfg = table_config(TableId::Table1);
        let spec = *cfg
            .cells
            .iter()
            .find(|c| c.part == TablePart::B && (c.utilization - 1.0).abs() < 1e-9)
            .unwrap();
        let cell = run_cell(&cfg, &spec, 40, 2);
        let poisson = &cell.scheme(SchemeId::Poisson).summary;
        assert_eq!(poisson.p_timely(), 0.0);
        assert!(poisson.mean_energy_timely().is_nan());
    }
}
