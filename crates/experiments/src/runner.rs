//! Monte-Carlo driver for table cells.
//!
//! Since the `eacp-spec` redesign this module no longer hand-builds
//! scenarios and policies: every cell is first *described* as an
//! [`ExperimentSpec`] ([`cell_experiment`]) and then executed through
//! [`eacp_exec::run`] (the `Job`/`Runner` path). The same spec,
//! serialized to JSON and fed to `eacp mc --spec`, reproduces any cell of
//! any table bit for bit.

use crate::paper::{paper_cell, PaperCell};
use crate::tables::{CellSpec, SchemeId, TableConfig, TableId};
use eacp_core::policies::SubCheckpointKind;
use eacp_sim::{ExecutorOptions, Policy, Scenario, Summary};
use eacp_spec::{
    CostsSpec, DvsSpec, ExecSpec, ExperimentSpec, FaultSpec, McSpec, PolicySpec, ScenarioSpec,
    SummaryReport, WorkSpec,
};

/// Result of one scheme at one operating point.
#[derive(Debug, Clone)]
pub struct SchemeResult {
    /// Which scheme.
    pub scheme: SchemeId,
    /// Display name ("Poisson", "k-f-t", "A_D", "A_D_S"/"A_D_C").
    pub name: String,
    /// Monte-Carlo aggregate.
    pub summary: Summary,
    /// The spec that produced `summary` (serialize it to reproduce the
    /// number outside this harness).
    pub spec: ExperimentSpec,
}

impl SchemeResult {
    /// The serializable mirror of [`Self::summary`].
    pub fn summary_report(&self) -> SummaryReport {
        SummaryReport::from_summary(&self.summary)
    }
}

/// All four schemes at one operating point, plus the paper's numbers.
#[derive(Debug, Clone)]
pub struct CellResult {
    /// The operating point.
    pub spec: CellSpec,
    /// Results in [`SchemeId::ALL`] column order.
    pub schemes: Vec<SchemeResult>,
    /// The paper's reported values for this cell, when available.
    pub paper: Option<PaperCell>,
}

impl CellResult {
    /// The result for one scheme.
    pub fn scheme(&self, id: SchemeId) -> &SchemeResult {
        self.schemes
            .iter()
            .find(|s| s.scheme == id)
            // audit:allow(panic): run_table iterates SchemeId::ALL, so every
            // id is present by construction.
            .expect("all schemes are always run")
    }
}

/// A fully regenerated table.
#[derive(Debug, Clone)]
pub struct TableResult {
    /// Which table.
    pub id: TableId,
    /// The configuration that produced it.
    pub config: TableConfig,
    /// Row results in configuration order.
    pub cells: Vec<CellResult>,
    /// Replications per scheme per cell.
    pub replications: u64,
}

/// The scenario description for one cell of a table.
pub fn cell_scenario_spec(config: &TableConfig, spec: &CellSpec) -> ScenarioSpec {
    ScenarioSpec {
        work: WorkSpec::Utilization {
            utilization: spec.utilization,
            speed: config.util_speed,
            deadline: config.deadline,
        },
        costs: CostsSpec::from_costs(&config.costs),
        dvs: DvsSpec::PaperDefault,
        processors: 2,
    }
}

/// Builds the scenario for one cell of a table.
pub fn cell_scenario(config: &TableConfig, spec: &CellSpec) -> Scenario {
    cell_scenario_spec(config, spec)
        .build()
        // audit:allow(panic): the table configs are compiled-in constants
        // exercised by every experiments test; an invalid one is a bug here.
        .expect("table configurations are valid scenarios")
}

/// The policy description for one scheme at one cell.
pub fn scheme_policy_spec(config: &TableConfig, spec: &CellSpec, scheme: SchemeId) -> PolicySpec {
    match scheme {
        SchemeId::Poisson => PolicySpec::Poisson {
            lambda: spec.lambda,
            speed: config.baseline_speed,
        },
        SchemeId::KFaultTolerant => PolicySpec::KFaultTolerant {
            k: spec.k,
            speed: config.baseline_speed,
        },
        SchemeId::AdtDvs => PolicySpec::AdtDvs {
            lambda: spec.lambda,
            k: spec.k,
            optimizer: Default::default(),
        },
        SchemeId::Proposed => match config.sub_kind {
            SubCheckpointKind::Store => PolicySpec::DvsScp {
                lambda: spec.lambda,
                k: spec.k,
                optimizer: Default::default(),
            },
            SubCheckpointKind::Compare => PolicySpec::DvsCcp {
                lambda: spec.lambda,
                k: spec.k,
                optimizer: Default::default(),
            },
        },
    }
}

/// Builds the policy for one scheme at one cell.
pub fn make_policy(config: &TableConfig, spec: &CellSpec, scheme: SchemeId) -> Box<dyn Policy> {
    Box::new(
        scheme_policy_spec(config, spec, scheme)
            .build()
            // audit:allow(panic): same compiled-in table constants as the
            // scenario above; failure is a programming error, not input.
            .expect("table configurations are valid policies"),
    )
}

/// The complete experiment description for one scheme at one cell — the
/// single source of truth [`run_cell_with`] executes, and the document
/// `eacp mc --spec` accepts.
pub fn cell_experiment(
    config: &TableConfig,
    spec: &CellSpec,
    scheme: SchemeId,
    replications: u64,
    seed: u64,
    options: ExecutorOptions,
) -> ExperimentSpec {
    cell_experiment_exec(
        config,
        spec,
        scheme,
        replications,
        seed,
        ExecSpec::from_options(&options),
    )
}

/// [`cell_experiment`] with the full executor section — including the
/// execution-layer scheduling choice ([`eacp_spec::QueueSpec`]) that
/// [`ExecutorOptions`] cannot express.
pub fn cell_experiment_exec(
    config: &TableConfig,
    spec: &CellSpec,
    scheme: SchemeId,
    replications: u64,
    seed: u64,
    executor: ExecSpec,
) -> ExperimentSpec {
    let policy = scheme_policy_spec(config, spec, scheme);
    ExperimentSpec {
        name: format!(
            "table{}{}-u{}-l{}-k{}-{}",
            config.id.number(),
            spec.part,
            spec.utilization,
            spec.lambda,
            spec.k,
            policy.tag()
        ),
        scenario: cell_scenario_spec(config, spec),
        faults: FaultSpec::Poisson {
            lambda: spec.lambda,
        },
        policy,
        mc: McSpec {
            replications,
            seed,
            threads: 0,
        },
        executor,
    }
}

/// Runs all four schemes at one operating point with default executor
/// options.
pub fn run_cell(config: &TableConfig, spec: &CellSpec, replications: u64, seed: u64) -> CellResult {
    run_cell_with(config, spec, replications, seed, ExecutorOptions::default())
}

/// Runs all four schemes at one operating point.
///
/// `options` selects executor semantics — notably
/// [`ExecutorOptions::faults_during_overhead`], which distinguishes the
/// physical fault model (faults can strike during checkpoint operations;
/// the default) from the analysis-faithful model the paper's renewal
/// equations assume (faults only during useful computation).
pub fn run_cell_with(
    config: &TableConfig,
    spec: &CellSpec,
    replications: u64,
    seed: u64,
    options: ExecutorOptions,
) -> CellResult {
    run_cell_exec(
        config,
        spec,
        replications,
        seed,
        ExecSpec::from_options(&options),
    )
}

/// [`run_cell_with`] with the full executor section: with a
/// [`eacp_spec::QueueSpec`] present the cell's replications are scheduled
/// through the work-queue runner (`eacp_exec::run` dispatches on it) —
/// summaries are bit-identical either way.
pub fn run_cell_exec(
    config: &TableConfig,
    spec: &CellSpec,
    replications: u64,
    seed: u64,
    executor: ExecSpec,
) -> CellResult {
    let schemes = SchemeId::ALL
        .iter()
        .map(|&scheme| {
            let experiment =
                cell_experiment_exec(config, spec, scheme, replications, seed, executor.clone());
            let (summary, report) =
                // audit:allow(panic): specs are assembled from validated
                // table constants; eacp_exec::run only errs on invalid specs.
                eacp_exec::run(&experiment).expect("table cells are valid experiment specs");
            debug_assert_eq!(summary.anomalies, 0, "policy anomaly in {scheme:?}");
            SchemeResult {
                scheme,
                name: report.policy_name,
                summary,
                spec: experiment,
            }
        })
        .collect();
    CellResult {
        spec: *spec,
        schemes,
        paper: paper_cell(config.id, spec.part, spec.utilization, spec.lambda),
    }
}

/// Regenerates one full table at the given replication count (the paper
/// uses 10,000; lower counts are useful for quick looks and CI).
pub fn run_table(id: TableId, replications: u64, seed: u64) -> TableResult {
    run_table_with(id, replications, seed, ExecutorOptions::default())
}

/// [`run_table`] with explicit executor options (see [`run_cell_with`]).
pub fn run_table_with(
    id: TableId,
    replications: u64,
    seed: u64,
    options: ExecutorOptions,
) -> TableResult {
    run_table_exec(id, replications, seed, ExecSpec::from_options(&options))
}

/// [`run_table_with`] with the full executor section (see
/// [`run_cell_exec`]); `gen-tables --queue-workers N` regenerates whole
/// tables through the work-queue scheduler this way.
pub fn run_table_exec(
    id: TableId,
    replications: u64,
    seed: u64,
    executor: ExecSpec,
) -> TableResult {
    let config = crate::tables::table_config(id);
    let cells = config
        .cells
        .iter()
        .enumerate()
        .map(|(i, spec)| {
            run_cell_exec(
                &config,
                spec,
                replications,
                seed.wrapping_add(i as u64),
                executor.clone(),
            )
        })
        .collect();
    TableResult {
        id,
        config,
        cells,
        replications,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tables::{table_config, TablePart};

    #[test]
    fn cell_scenario_scales_work_with_util_speed() {
        let t1 = table_config(TableId::Table1);
        let t2 = table_config(TableId::Table2);
        let spec = t1.cells[0];
        assert_eq!(cell_scenario(&t1, &spec).task.work_cycles, 7600.0);
        assert_eq!(cell_scenario(&t2, &t2.cells[0]).task.work_cycles, 15_200.0);
    }

    #[test]
    fn policies_have_expected_names() {
        let cfg = table_config(TableId::Table3);
        let spec = cfg.cells[0];
        assert_eq!(
            make_policy(&cfg, &spec, SchemeId::Poisson).name(),
            "Poisson"
        );
        assert_eq!(
            make_policy(&cfg, &spec, SchemeId::KFaultTolerant).name(),
            "k-f-t"
        );
        assert_eq!(make_policy(&cfg, &spec, SchemeId::AdtDvs).name(), "A_D");
        assert_eq!(make_policy(&cfg, &spec, SchemeId::Proposed).name(), "A_D_C");
    }

    #[test]
    fn smoke_cell_runs_all_schemes() {
        let cfg = table_config(TableId::Table1);
        let spec = cfg.cells[0]; // U = 0.76, λ = 1.4e-3, k = 5
        let cell = run_cell(&cfg, &spec, 60, 1);
        assert_eq!(cell.schemes.len(), 4);
        assert!(cell.paper.is_some());
        for s in &cell.schemes {
            assert_eq!(s.summary.replications, 60);
            assert_eq!(s.summary.anomalies, 0, "{}", s.name);
        }
        // Coarse shape even at 60 reps: adaptive schemes nearly always
        // finish, baselines rarely do at this operating point.
        let p_prop = cell.scheme(SchemeId::Proposed).summary.p_timely();
        let p_poisson = cell.scheme(SchemeId::Poisson).summary.p_timely();
        assert!(p_prop > 0.9, "P(A_D_S) = {p_prop}");
        assert!(p_poisson < 0.5, "P(Poisson) = {p_poisson}");
    }

    #[test]
    fn impossible_utilization_gives_zero_p_and_nan_e() {
        // U = 1.00, k = 1 (Table 1(b)): the baselines can never finish by D.
        let cfg = table_config(TableId::Table1);
        let spec = *cfg
            .cells
            .iter()
            .find(|c| c.part == TablePart::B && (c.utilization - 1.0).abs() < 1e-9)
            .unwrap();
        let cell = run_cell(&cfg, &spec, 40, 2);
        let poisson = &cell.scheme(SchemeId::Poisson).summary;
        assert_eq!(poisson.p_timely(), 0.0);
        assert!(poisson.mean_energy_timely().is_nan());
    }

    #[test]
    fn cell_experiment_round_trips_and_reproduces_the_cell() {
        // The acceptance contract of the spec redesign: the embedded spec,
        // serialized to JSON and re-run elsewhere, gives the same Summary.
        let cfg = table_config(TableId::Table1);
        let spec = cfg.cells[0];
        let cell = run_cell(&cfg, &spec, 50, 3);
        for s in &cell.schemes {
            let json = s.spec.to_json_string();
            let reread = ExperimentSpec::from_json_str(&json).unwrap();
            assert_eq!(reread, s.spec);
            let (summary, _) = eacp_exec::run(&reread).unwrap();
            assert_eq!(summary, s.summary, "scheme {}", s.name);
        }
    }

    #[test]
    fn queued_cell_is_bit_identical_to_the_plain_cell() {
        let cfg = table_config(TableId::Table1);
        let spec = cfg.cells[0];
        let plain = run_cell(&cfg, &spec, 40, 6);
        let queued = run_cell_exec(
            &cfg,
            &spec,
            40,
            6,
            ExecSpec::default().with_queue(eacp_spec::QueueSpec {
                workers: 3,
                ..Default::default()
            }),
        );
        for (a, b) in plain.schemes.iter().zip(&queued.schemes) {
            assert_eq!(a.summary, b.summary, "scheme {}", a.name);
            assert!(b.spec.executor.queue.is_some());
        }
    }

    #[test]
    fn scheme_result_report_matches_summary() {
        let cfg = table_config(TableId::Table1);
        let cell = run_cell(&cfg, &cfg.cells[0], 30, 1);
        let s = cell.scheme(SchemeId::Proposed);
        let report = s.summary_report();
        assert_eq!(report.replications, 30);
        assert_eq!(report.p_timely, s.summary.p_timely());
    }
}
