//! Experiment harness regenerating every table and figure of the paper.
//!
//! The paper's evaluation consists of four tables (each with an (a) part at
//! `k = 5`, high fault rates, and a (b) part at `k = 1`, low fault rates)
//! comparing four schemes — Poisson-arrival, k-fault-tolerant, `A_D`
//! (ADT_DVS) and the proposed `A_D_S`/`A_D_C` — on the probability of
//! timely completion `P` and the energy consumption `E`:
//!
//! * **Table 1** — SCP cost variant (`ts = 2, tcp = 20`), baselines at `f1`;
//! * **Table 2** — SCP cost variant, baselines at `f2` (heavier tasks:
//!   `N = U·f2·D`);
//! * **Table 3** — CCP cost variant (`ts = 20, tcp = 2`), baselines at `f1`;
//! * **Table 4** — CCP cost variant, baselines at `f2`.
//!
//! [`tables::table_config`] holds the exact parameters, [`paper`] the
//! values transcribed from the paper, [`runner`] the Monte-Carlo driver,
//! [`render`] the side-by-side formatting and [`shape`] the qualitative
//! claims ("who wins, by roughly what factor") that a successful
//! reproduction must satisfy.
//!
//! Regenerate everything with:
//!
//! ```text
//! cargo run --release -p eacp-experiments --bin gen-tables
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod compare;
pub mod paper;
pub mod render;
pub mod runner;
pub mod shape;
pub mod tables;

pub use runner::{
    cell_experiment, cell_experiment_exec, cell_scenario_spec, run_cell, run_cell_exec,
    run_cell_with, run_table, run_table_exec, run_table_with, scheme_policy_spec, CellResult,
    SchemeResult, TableResult,
};
pub use tables::{table_config, CellSpec, SchemeId, TableConfig, TableId, TablePart};
