//! Qualitative "shape" criteria a successful reproduction must satisfy.
//!
//! The authors' absolute numbers came from their simulator; ours come from
//! a reimplementation, so exact values are not expected to match. What
//! *must* match is the shape of the comparison — who wins, by roughly what
//! factor, and where the regimes flip. These checks encode the paper's
//! claims (see `DESIGN.md` §5) and are evaluated by the `gen-tables` binary
//! and the workspace integration tests.

use crate::runner::TableResult;
use crate::tables::{SchemeId, TableId, TablePart};

/// Outcome of one shape criterion.
#[derive(Debug, Clone)]
pub struct ShapeFinding {
    /// Short criterion identifier.
    pub criterion: &'static str,
    /// Human-readable detail (which cell, which values).
    pub detail: String,
    /// Whether the criterion held.
    pub passed: bool,
}

/// Evaluates every applicable shape criterion against a regenerated table.
pub fn check_table(result: &TableResult) -> Vec<ShapeFinding> {
    let mut findings = Vec::new();
    let id = result.id;
    let baselines_slow = matches!(id, TableId::Table1 | TableId::Table3);

    for cell in &result.cells {
        let u = cell.spec.utilization;
        let l = cell.spec.lambda;
        let p_poisson = cell.scheme(SchemeId::Poisson).summary.p_timely();
        let p_kft = cell.scheme(SchemeId::KFaultTolerant).summary.p_timely();
        let p_ad = cell.scheme(SchemeId::AdtDvs).summary.p_timely();
        let p_prop = cell.scheme(SchemeId::Proposed).summary.p_timely();
        let e_ad = cell.scheme(SchemeId::AdtDvs).summary.mean_energy_timely();
        let e_prop = cell.scheme(SchemeId::Proposed).summary.mean_energy_timely();

        // (i) The proposed scheme never loses to A_D on timely completion
        // (small Monte-Carlo tolerance).
        findings.push(ShapeFinding {
            criterion: "proposed-beats-ad-on-p",
            detail: format!("{id} U={u} λ={l:.1e}: proposed={p_prop:.4} A_D={p_ad:.4}"),
            passed: p_prop >= p_ad - 0.02,
        });

        if baselines_slow && cell.spec.part == TablePart::A {
            // (ii) f1-baselines collapse under heavy faults while the
            // adaptive schemes nearly always finish (paper Tables 1/3 (a)).
            findings.push(ShapeFinding {
                criterion: "adaptive-near-certain",
                detail: format!("{id} U={u} λ={l:.1e}: proposed={p_prop:.4}"),
                passed: p_prop > 0.95,
            });
            findings.push(ShapeFinding {
                criterion: "static-baselines-collapse",
                detail: format!("{id} U={u} λ={l:.1e}: Poisson={p_poisson:.4} kft={p_kft:.4}"),
                passed: p_poisson < 0.4 && p_kft < 0.4,
            });
            // (iii) The proposed scheme also spends less energy than A_D
            // in the heavy-fault tables.
            findings.push(ShapeFinding {
                criterion: "proposed-saves-energy-vs-ad",
                detail: format!("{id} U={u} λ={l:.1e}: proposed={e_prop:.0} A_D={e_ad:.0}"),
                passed: e_prop < e_ad,
            });
        }

        if baselines_slow && cell.spec.part == TablePart::B && (u - 1.0).abs() < 1e-9 {
            // (iv) At U = 1.00 the static baselines can never finish.
            let e_poisson = cell.scheme(SchemeId::Poisson).summary.mean_energy_timely();
            findings.push(ShapeFinding {
                criterion: "u1-baselines-impossible",
                detail: format!("{id} λ={l:.1e}: Poisson P={p_poisson:.4} E={e_poisson}"),
                passed: p_poisson == 0.0 && p_kft == 0.0 && e_poisson.is_nan(),
            });
        }

        if !baselines_slow && cell.spec.part == TablePart::A {
            // (v) With baselines at f2 everyone pays the high-voltage bill;
            // the proposed scheme still wins P clearly at the heavier
            // operating points (the paper shows 0.95 vs 0.65 at U = 0.76).
            findings.push(ShapeFinding {
                criterion: "proposed-wins-at-f2",
                detail: format!("{id} U={u} λ={l:.1e}: proposed={p_prop:.4} A_D={p_ad:.4}"),
                passed: p_prop > p_ad,
            });
        }
    }

    // (vi) Energy scale sanity (calibration anchor): an f1-pinned baseline
    // spends ≈4·2·N·(1 + small overhead); an f2-pinned baseline ≈8·2·N.
    if let Some(cell) = result
        .cells
        .iter()
        .find(|c| c.spec.part == TablePart::A && (c.spec.utilization - 0.76).abs() < 1e-9)
    {
        let e_all = cell.scheme(SchemeId::Poisson).summary.energy_all.mean();
        let n = 0.76 * result.config.util_speed * result.config.deadline;
        let vsq = if baselines_slow { 2.0 } else { 4.0 };
        let floor = 2.0 * vsq * n;
        findings.push(ShapeFinding {
            criterion: "energy-scale-calibration",
            detail: format!("{id}: E_all={e_all:.0}, ideal floor={floor:.0}"),
            passed: e_all > floor && e_all < 1.35 * floor,
        });
    }

    findings
}

/// Summarizes findings: `(passed, failed)`.
pub fn tally(findings: &[ShapeFinding]) -> (usize, usize) {
    let passed = findings.iter().filter(|f| f.passed).count();
    (passed, findings.len() - passed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::run_table;

    #[test]
    fn shape_holds_on_reduced_table1() {
        // 250 replications are enough for every qualitative criterion.
        let result = run_table(TableId::Table1, 250, 3);
        let findings = check_table(&result);
        let (passed, failed) = tally(&findings);
        let failures: Vec<_> = findings
            .iter()
            .filter(|f| !f.passed)
            .map(|f| format!("{}: {}", f.criterion, f.detail))
            .collect();
        assert_eq!(
            failed,
            0,
            "{passed} passed, failures:\n{}",
            failures.join("\n")
        );
    }
}
