//! Rendering of regenerated tables: plain text (side-by-side with the
//! paper's numbers), Markdown, and CSV.

use crate::runner::TableResult;
use crate::tables::{SchemeId, TablePart};

fn fmt_p(p: f64) -> String {
    if p.is_nan() {
        "NaN".to_owned()
    } else {
        format!("{p:.4}")
    }
}

fn fmt_e(e: f64) -> String {
    if e.is_nan() {
        "NaN".to_owned()
    } else {
        format!("{e:.0}")
    }
}

/// Renders a table as aligned plain text, one block per part, with the
/// paper's value in parentheses next to each measured value.
pub fn to_text(result: &TableResult) -> String {
    let mut out = String::new();
    let cfg = &result.config;
    out.push_str(&format!(
        "{} — {} variant (ts={}, tcp={}), baselines at f{}, {} replications/cell\n",
        result.id,
        cfg.proposed_name(),
        cfg.costs.store_cycles,
        cfg.costs.compare_cycles,
        cfg.baseline_speed + 1,
        result.replications,
    ));
    for part in [TablePart::A, TablePart::B] {
        let rows: Vec<_> = result
            .cells
            .iter()
            .filter(|c| c.spec.part == part)
            .collect();
        if rows.is_empty() {
            continue;
        }
        let k = rows[0].spec.k;
        out.push_str(&format!("\n({part}) k = {k}   [measured (paper)]\n"));
        out.push_str(&format!(
            "{:<6} {:<9} {:<3} {:<24} {:<24} {:<24} {:<24}\n",
            "U",
            "lambda",
            "",
            "Poisson",
            "k-f-t",
            "A_D",
            cfg.proposed_name()
        ));
        for cell in rows {
            let mut pline = format!(
                "{:<6} {:<9} {:<3} ",
                cell.spec.utilization,
                format!("{:.1e}", cell.spec.lambda),
                "P"
            );
            let mut eline = format!("{:<6} {:<9} {:<3} ", "", "", "E");
            for scheme in SchemeId::ALL {
                let s = cell.scheme(scheme);
                let (pp, pe) = cell
                    .paper
                    .map(|p| (p.p_of(scheme), p.e_of(scheme)))
                    .unwrap_or((f64::NAN, f64::NAN));
                pline.push_str(&format!(
                    "{:<24} ",
                    format!("{} ({})", fmt_p(s.summary.p_timely()), fmt_p(pp))
                ));
                eline.push_str(&format!(
                    "{:<24} ",
                    format!("{} ({})", fmt_e(s.summary.mean_energy_timely()), fmt_e(pe))
                ));
            }
            out.push_str(pline.trim_end());
            out.push('\n');
            out.push_str(eline.trim_end());
            out.push('\n');
        }
    }
    out
}

/// Renders a table as GitHub-flavoured Markdown.
pub fn to_markdown(result: &TableResult) -> String {
    let cfg = &result.config;
    let mut out = format!(
        "### {} — {} variant (ts={}, tcp={}), baselines at f{}\n\n",
        result.id,
        cfg.proposed_name(),
        cfg.costs.store_cycles,
        cfg.costs.compare_cycles,
        cfg.baseline_speed + 1
    );
    for part in [TablePart::A, TablePart::B] {
        let rows: Vec<_> = result
            .cells
            .iter()
            .filter(|c| c.spec.part == part)
            .collect();
        if rows.is_empty() {
            continue;
        }
        out.push_str(&format!("**({part}) k = {}**\n\n", rows[0].spec.k));
        out.push_str(&format!(
            "| U | λ | | Poisson | k-f-t | A_D | {} |\n|---|---|---|---|---|---|---|\n",
            cfg.proposed_name()
        ));
        for cell in rows {
            for metric in ["P", "E"] {
                let mut line = if metric == "P" {
                    format!(
                        "| {} | {:.1e} | {} |",
                        cell.spec.utilization, cell.spec.lambda, metric
                    )
                } else {
                    format!("| | | {metric} |")
                };
                for scheme in SchemeId::ALL {
                    let s = cell.scheme(scheme);
                    let (meas, pap) = if metric == "P" {
                        (
                            fmt_p(s.summary.p_timely()),
                            cell.paper.map(|p| fmt_p(p.p_of(scheme))),
                        )
                    } else {
                        (
                            fmt_e(s.summary.mean_energy_timely()),
                            cell.paper.map(|p| fmt_e(p.e_of(scheme))),
                        )
                    };
                    match pap {
                        Some(p) => line.push_str(&format!(" {meas} ({p}) |")),
                        None => line.push_str(&format!(" {meas} |")),
                    }
                }
                out.push_str(&line);
                out.push('\n');
            }
        }
        out.push('\n');
    }
    out
}

/// Renders a table as CSV with one row per (cell, scheme): all measured
/// aggregates plus the paper's `P`/`E` for direct post-processing.
pub fn to_csv(result: &TableResult) -> String {
    let mut out = String::from(
        "table,part,k,utilization,lambda,scheme,p_timely,p_ci_lo,p_ci_hi,\
         energy_timely,energy_all,finish_timely,faults_mean,rollbacks_mean,\
         checkpoints_mean,fast_fraction,paper_p,paper_e\n",
    );
    for cell in &result.cells {
        for scheme in SchemeId::ALL {
            let s = cell.scheme(scheme);
            let (lo, hi) = s.summary.p_timely_ci(1.96);
            let (pp, pe) = cell
                .paper
                .map(|p| (p.p_of(scheme), p.e_of(scheme)))
                .unwrap_or((f64::NAN, f64::NAN));
            out.push_str(&format!(
                "{},{},{},{},{:e},{},{:.6},{:.6},{:.6},{:.2},{:.2},{:.2},{:.4},{:.4},{:.2},{:.5},{:.4},{:.1}\n",
                result.id.number(),
                cell.spec.part,
                cell.spec.k,
                cell.spec.utilization,
                cell.spec.lambda,
                s.name,
                s.summary.p_timely(),
                lo,
                hi,
                s.summary.mean_energy_timely(),
                s.summary.energy_all.mean(),
                s.summary.finish_timely.mean(),
                s.summary.faults.mean(),
                s.summary.rollbacks.mean(),
                s.summary.checkpoints.mean(),
                s.summary.fast_fraction.mean(),
                pp,
                pe,
            ));
        }
    }
    out
}

/// Renders a table as a JSON document: the cell grid with, per scheme, the
/// full serializable [`SummaryReport`](eacp_spec::SummaryReport), the spec
/// that produced it, and the paper's reference values. This is the
/// machine-readable counterpart of [`to_text`] — the report schema sweeps,
/// dashboards and CI gates consume.
pub fn to_json(result: &TableResult) -> String {
    use eacp_spec::{Json, ToJson};
    let cells = result
        .cells
        .iter()
        .map(|cell| {
            let schemes = cell
                .schemes
                .iter()
                .map(|s| {
                    Json::obj([
                        ("scheme", s.name.as_str().into()),
                        ("spec", s.spec.to_json()),
                        ("summary", s.summary_report().to_json()),
                    ])
                })
                .collect();
            let mut fields = vec![
                ("part".to_owned(), Json::Str(cell.spec.part.to_string())),
                ("utilization".to_owned(), Json::Float(cell.spec.utilization)),
                ("lambda".to_owned(), Json::Float(cell.spec.lambda)),
                ("k".to_owned(), Json::Int(cell.spec.k as i128)),
                ("schemes".to_owned(), Json::Array(schemes)),
            ];
            if let Some(p) = cell.paper {
                let paper = Json::Array(
                    SchemeId::ALL
                        .iter()
                        .map(|&id| Json::obj([("p", p.p_of(id).into()), ("e", p.e_of(id).into())]))
                        .collect(),
                );
                fields.push(("paper".to_owned(), paper));
            }
            Json::Object(fields)
        })
        .collect();
    Json::obj([
        ("table", result.id.number().into()),
        ("replications", result.replications.into()),
        ("cells", Json::Array(cells)),
    ])
    .pretty()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::run_table;
    use crate::tables::TableId;

    fn small_table() -> TableResult {
        run_table(TableId::Table1, 30, 7)
    }

    #[test]
    fn json_report_parses_and_covers_all_cells() {
        use eacp_spec::Json;
        let r = small_table();
        let text = to_json(&r);
        let doc = Json::parse(&text).unwrap();
        assert_eq!(doc.req("table").unwrap().as_u64().unwrap(), 1);
        let cells = doc.req("cells").unwrap().as_array().unwrap();
        assert_eq!(cells.len(), 14);
        let first = &cells[0];
        assert_eq!(first.req("schemes").unwrap().as_array().unwrap().len(), 4);
        // Every scheme entry embeds a re-runnable spec.
        let spec_json = first.req("schemes").unwrap().as_array().unwrap()[0]
            .req("spec")
            .unwrap();
        assert!(spec_json.get("policy").is_some());
    }

    #[test]
    fn text_contains_all_sections_and_schemes() {
        let r = small_table();
        let t = to_text(&r);
        assert!(t.contains("Table 1"));
        assert!(t.contains("(a) k = 5"));
        assert!(t.contains("(b) k = 1"));
        assert!(t.contains("Poisson"));
        assert!(t.contains("A_D_S"));
        // One P-line and one E-line per row.
        assert_eq!(t.matches(" P ").count() + t.matches(" P\n").count(), 14);
    }

    #[test]
    fn markdown_is_well_formed() {
        let r = small_table();
        let md = to_markdown(&r);
        assert!(md.starts_with("### Table 1"));
        assert!(md.contains("| U | λ |"));
        // Two data lines per cell: 14 P-rows and 14 E-rows.
        assert_eq!(md.matches("| P |").count(), 14);
        assert_eq!(md.matches("| E |").count(), 14);
    }

    #[test]
    fn csv_has_header_and_rows() {
        let r = small_table();
        let csv = to_csv(&r);
        let lines: Vec<_> = csv.lines().collect();
        assert!(lines[0].starts_with("table,part,k"));
        // 14 cells × 4 schemes + header.
        assert_eq!(lines.len(), 14 * 4 + 1);
        assert!(lines[1].starts_with("1,a,5,0.76"));
    }
}
