//! Parameterization of the paper's four evaluation tables.

use eacp_core::policies::SubCheckpointKind;
use eacp_sim::CheckpointCosts;

/// The paper's deadline for every experiment (`D = 10000` normalized time
/// units, i.e. CPU cycles at the minimum speed).
pub const DEADLINE: f64 = 10_000.0;

/// Replications per cell used by the paper.
pub const PAPER_REPLICATIONS: u64 = 10_000;

/// One of the paper's four evaluation tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TableId {
    /// Table 1: SCP variant, baselines at `f1`.
    Table1,
    /// Table 2: SCP variant, baselines at `f2`.
    Table2,
    /// Table 3: CCP variant, baselines at `f1`.
    Table3,
    /// Table 4: CCP variant, baselines at `f2`.
    Table4,
}

impl TableId {
    /// All four tables.
    pub const ALL: [TableId; 4] = [
        TableId::Table1,
        TableId::Table2,
        TableId::Table3,
        TableId::Table4,
    ];

    /// 1-based table number as printed in the paper.
    pub fn number(self) -> u32 {
        match self {
            TableId::Table1 => 1,
            TableId::Table2 => 2,
            TableId::Table3 => 3,
            TableId::Table4 => 4,
        }
    }
}

impl std::fmt::Display for TableId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Table {}", self.number())
    }
}

/// The (a)/(b) half of a table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TablePart {
    /// Part (a): `k = 5`, high fault arrival rates.
    A,
    /// Part (b): `k = 1`, low fault arrival rates.
    B,
}

impl std::fmt::Display for TablePart {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TablePart::A => f.write_str("a"),
            TablePart::B => f.write_str("b"),
        }
    }
}

/// One row of a table: a `(U, λ, k)` operating point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CellSpec {
    /// Which table half the cell belongs to.
    pub part: TablePart,
    /// Task utilization `U` (w.r.t. the table's utilization speed).
    pub utilization: f64,
    /// Fault arrival rate `λ`.
    pub lambda: f64,
    /// Fault-tolerance target `k`.
    pub k: u32,
}

/// The four schemes of each table, in column order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SchemeId {
    /// Poisson-arrival baseline (fixed `sqrt(2C/λ)` interval).
    Poisson,
    /// k-fault-tolerant baseline (fixed `sqrt(NC/k)` interval).
    KFaultTolerant,
    /// ADT_DVS of DATE'03 (`A_D`).
    AdtDvs,
    /// The paper's proposal: `A_D_S` for Tables 1–2, `A_D_C` for 3–4.
    Proposed,
}

impl SchemeId {
    /// Column order used throughout the harness.
    pub const ALL: [SchemeId; 4] = [
        SchemeId::Poisson,
        SchemeId::KFaultTolerant,
        SchemeId::AdtDvs,
        SchemeId::Proposed,
    ];
}

/// Full parameterization of one table.
#[derive(Debug, Clone)]
pub struct TableConfig {
    /// Which table this is.
    pub id: TableId,
    /// Checkpoint costs (`ts`, `tcp`, `tr`) in cycles.
    pub costs: CheckpointCosts,
    /// DVS level index the baselines are pinned to (0 = `f1`, 1 = `f2`).
    pub baseline_speed: usize,
    /// The speed the utilization is quoted at (`N = U · util_speed · D`).
    pub util_speed: f64,
    /// Sub-checkpoint kind of the proposed scheme (`Store` ⇒ `A_D_S`,
    /// `Compare` ⇒ `A_D_C`).
    pub sub_kind: SubCheckpointKind,
    /// Relative deadline `D`.
    pub deadline: f64,
    /// All rows, part (a) followed by part (b).
    pub cells: Vec<CellSpec>,
}

impl TableConfig {
    /// Scheme name of the proposed column ("A_D_S" or "A_D_C").
    pub fn proposed_name(&self) -> &'static str {
        match self.sub_kind {
            SubCheckpointKind::Store => "A_D_S",
            SubCheckpointKind::Compare => "A_D_C",
        }
    }

    /// Rows belonging to one part.
    pub fn part_cells(&self, part: TablePart) -> impl Iterator<Item = &CellSpec> {
        self.cells.iter().filter(move |c| c.part == part)
    }
}

/// Part (a) grid: `k = 5`, `U ∈ {0.76..0.82}`, `λ ∈ {1.4, 1.6}·10⁻³`.
fn part_a_cells() -> Vec<CellSpec> {
    let mut cells = Vec::new();
    for &u in &[0.76, 0.78, 0.80, 0.82] {
        for &l in &[1.4e-3, 1.6e-3] {
            cells.push(CellSpec {
                part: TablePart::A,
                utilization: u,
                lambda: l,
                k: 5,
            });
        }
    }
    cells
}

/// Part (b) grid: `k = 1`, `λ ∈ {1, 2}·10⁻⁴`; the `U` list depends on the
/// table (`U = 1.00` rows exist only for the `f1`-baseline tables).
fn part_b_cells(us: &[f64]) -> Vec<CellSpec> {
    let mut cells = Vec::new();
    for &u in us {
        for &l in &[1.0e-4, 2.0e-4] {
            cells.push(CellSpec {
                part: TablePart::B,
                utilization: u,
                lambda: l,
                k: 1,
            });
        }
    }
    cells
}

/// The exact configuration of one of the paper's tables.
///
/// # Examples
///
/// ```
/// use eacp_experiments::{table_config, TableId};
/// let t1 = table_config(TableId::Table1);
/// assert_eq!(t1.costs.store_cycles, 2.0);
/// assert_eq!(t1.baseline_speed, 0);
/// assert_eq!(t1.proposed_name(), "A_D_S");
/// assert_eq!(t1.cells.len(), 14);
/// ```
pub fn table_config(id: TableId) -> TableConfig {
    let (costs, sub_kind) = match id {
        TableId::Table1 | TableId::Table2 => (
            CheckpointCosts::paper_scp_variant(),
            SubCheckpointKind::Store,
        ),
        TableId::Table3 | TableId::Table4 => (
            CheckpointCosts::paper_ccp_variant(),
            SubCheckpointKind::Compare,
        ),
    };
    let (baseline_speed, util_speed, part_b_us): (usize, f64, &[f64]) = match id {
        TableId::Table1 | TableId::Table3 => (0, 1.0, &[0.92, 0.95, 1.00]),
        TableId::Table2 | TableId::Table4 => (1, 2.0, &[0.92, 0.95]),
    };
    let mut cells = part_a_cells();
    cells.extend(part_b_cells(part_b_us));
    TableConfig {
        id,
        costs,
        baseline_speed,
        util_speed,
        sub_kind,
        deadline: DEADLINE,
        cells,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_row_counts_match_paper() {
        assert_eq!(table_config(TableId::Table1).cells.len(), 8 + 6);
        assert_eq!(table_config(TableId::Table2).cells.len(), 8 + 4);
        assert_eq!(table_config(TableId::Table3).cells.len(), 8 + 6);
        assert_eq!(table_config(TableId::Table4).cells.len(), 8 + 4);
    }

    #[test]
    fn cost_variants_swap_store_and_compare() {
        let t1 = table_config(TableId::Table1);
        let t3 = table_config(TableId::Table3);
        assert_eq!(t1.costs.store_cycles, t3.costs.compare_cycles);
        assert_eq!(t1.costs.compare_cycles, t3.costs.store_cycles);
        assert_eq!(t1.costs.cscp_cycles(), 22.0);
        assert_eq!(t3.costs.cscp_cycles(), 22.0);
    }

    #[test]
    fn baselines_pinned_to_correct_speed() {
        assert_eq!(table_config(TableId::Table1).baseline_speed, 0);
        assert_eq!(table_config(TableId::Table2).baseline_speed, 1);
        assert_eq!(table_config(TableId::Table2).util_speed, 2.0);
        assert_eq!(table_config(TableId::Table3).util_speed, 1.0);
    }

    #[test]
    fn part_filters() {
        let t1 = table_config(TableId::Table1);
        assert_eq!(t1.part_cells(TablePart::A).count(), 8);
        assert_eq!(t1.part_cells(TablePart::B).count(), 6);
        assert!(t1.part_cells(TablePart::A).all(|c| c.k == 5));
        assert!(t1.part_cells(TablePart::B).all(|c| c.k == 1));
    }

    #[test]
    fn display_impls() {
        assert_eq!(TableId::Table2.to_string(), "Table 2");
        assert_eq!(TablePart::A.to_string(), "a");
        assert_eq!(TablePart::B.to_string(), "b");
    }

    #[test]
    fn proposed_names() {
        assert_eq!(table_config(TableId::Table2).proposed_name(), "A_D_S");
        assert_eq!(table_config(TableId::Table4).proposed_name(), "A_D_C");
    }
}
