//! Quantitative comparison of regenerated tables against the paper's
//! reported values: per-scheme error statistics and the worst cells.

use crate::runner::TableResult;
use crate::tables::SchemeId;
use eacp_numerics::OnlineStats;

/// Error statistics of one scheme's column across a table.
#[derive(Debug, Clone)]
pub struct SchemeErrors {
    /// Which scheme.
    pub scheme: SchemeId,
    /// Scheme display name.
    pub name: String,
    /// Absolute error on `P` (measured − paper) over cells with paper data.
    pub p_abs_error: OnlineStats,
    /// Relative error on `E` over cells where both energies are finite.
    pub e_rel_error: OnlineStats,
    /// Cells where the paper reports `NaN` energy and we also measure
    /// `NaN` (agreement on impossibility).
    pub nan_agreements: u32,
    /// Cells where exactly one side is `NaN` (disagreement).
    pub nan_disagreements: u32,
    /// Worst `P` deviation: `(U, λ, measured, paper)`.
    pub worst_p: Option<(f64, f64, f64, f64)>,
}

/// Compares a regenerated table with the paper cell by cell.
pub fn compare_with_paper(result: &TableResult) -> Vec<SchemeErrors> {
    SchemeId::ALL
        .iter()
        .map(|&scheme| {
            let mut p_abs = OnlineStats::new();
            let mut e_rel = OnlineStats::new();
            let mut nan_agree = 0;
            let mut nan_disagree = 0;
            let mut worst: Option<(f64, f64, f64, f64)> = None;
            let mut name = String::new();
            for cell in &result.cells {
                let Some(paper) = cell.paper else { continue };
                let s = cell.scheme(scheme);
                name = s.name.clone();
                let (pm, pp) = (s.summary.p_timely(), paper.p_of(scheme));
                p_abs.push(pm - pp);
                if worst.is_none_or(|(_, _, wm, wp)| (pm - pp).abs() > (wm - wp).abs()) {
                    worst = Some((cell.spec.utilization, cell.spec.lambda, pm, pp));
                }
                let (em, ep) = (s.summary.mean_energy_timely(), paper.e_of(scheme));
                match (em.is_nan(), ep.is_nan()) {
                    (true, true) => nan_agree += 1,
                    (false, false) => e_rel.push((em - ep) / ep),
                    _ => nan_disagree += 1,
                }
            }
            SchemeErrors {
                scheme,
                name,
                p_abs_error: p_abs,
                e_rel_error: e_rel,
                nan_agreements: nan_agree,
                nan_disagreements: nan_disagree,
                worst_p: worst,
            }
        })
        .collect()
}

/// Renders the comparison as a compact report.
pub fn render_comparison(result: &TableResult) -> String {
    let mut out = format!("{} vs paper (per-scheme error statistics)\n", result.id);
    out.push_str(&format!(
        "{:<10} {:>12} {:>12} {:>12} {:>12} {:>8}\n",
        "scheme", "mean dP", "max |dP|", "mean dE/E", "max |dE/E|", "NaN +/-"
    ));
    for e in compare_with_paper(result) {
        let max_dp = e
            .worst_p
            .map(|(_, _, m, p)| (m - p).abs())
            .unwrap_or(f64::NAN);
        let max_de = e.e_rel_error.max().abs().max(e.e_rel_error.min().abs());
        out.push_str(&format!(
            "{:<10} {:>12.4} {:>12.4} {:>11.2}% {:>11.2}% {:>5}/{}\n",
            e.name,
            e.p_abs_error.mean(),
            max_dp,
            100.0 * e.e_rel_error.mean(),
            100.0 * max_de,
            e.nan_agreements,
            e.nan_disagreements
        ));
        if let Some((u, l, m, p)) = e.worst_p {
            out.push_str(&format!(
                "{:<10} worst P cell: U={u} λ={l:.1e}: {m:.4} vs paper {p:.4}\n",
                ""
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::run_table_with;
    use crate::tables::TableId;
    use eacp_sim::ExecutorOptions;

    fn paper_model() -> ExecutorOptions {
        ExecutorOptions {
            faults_during_overhead: false,
            ..ExecutorOptions::default()
        }
    }

    #[test]
    fn comparison_reports_tight_errors_on_table1() {
        let result = run_table_with(TableId::Table1, 800, 2006, paper_model());
        let errors = compare_with_paper(&result);
        assert_eq!(errors.len(), 4);
        for e in &errors {
            // Baseline schemes: P within a few points, E within 4%.
            assert!(
                e.p_abs_error.mean().abs() < 0.1,
                "{}: mean dP = {}",
                e.name,
                e.p_abs_error.mean()
            );
            if e.e_rel_error.count() > 0 {
                assert!(
                    e.e_rel_error.mean().abs() < 0.08,
                    "{}: mean dE/E = {}",
                    e.name,
                    e.e_rel_error.mean()
                );
            }
            // At 800 replications a paper cell with P ≈ 0.0005 can measure
            // zero timely runs (NaN energy); allow that one artifact. At
            // the full 10,000 replications there are no disagreements.
            assert!(e.nan_disagreements <= 1, "{}", e.name);
        }
        // The two NaN cells (U = 1.00) agree for the static baselines.
        let poisson = &errors[0];
        assert_eq!(poisson.nan_agreements, 2);
    }

    #[test]
    fn render_contains_all_schemes() {
        let result = run_table_with(TableId::Table1, 60, 1, paper_model());
        let report = render_comparison(&result);
        for name in ["Poisson", "k-f-t", "A_D", "A_D_S"] {
            assert!(report.contains(name), "missing {name} in:\n{report}");
        }
        assert!(report.contains("worst P cell"));
    }
}
