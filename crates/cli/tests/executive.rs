//! End-to-end tests of the spec-driven periodic-workload subcommands:
//! `eacp feasibility` and `eacp executive`.

use eacp_cli::dispatch;
use eacp_spec::{executive_preset, ExecutiveRunReport, ExecutiveSpec, FromJson, Json};

fn args(s: &str) -> Vec<String> {
    s.split_whitespace().map(str::to_owned).collect()
}

fn temp_dir() -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("eacp-exec-cli-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// `feasibility --spec` prints exactly what the equivalent `--tasks`
/// shorthand prints: the shorthand is a parser into the same spec.
#[test]
fn feasibility_spec_matches_tasks_shorthand() {
    let tasks = "ctrl:900:5000,tele:2600:20000:15000";
    let from_flags = dispatch(args(&format!(
        "feasibility --tasks {tasks} --k 2 --speed 1"
    )))
    .unwrap();

    // Emit the effective spec, write it, and drive feasibility from it.
    let emitted = dispatch(args(&format!(
        "feasibility --tasks {tasks} --k 2 --speed 1 --emit-spec"
    )))
    .unwrap();
    let dir = temp_dir();
    let path = dir.join("feasibility.json");
    std::fs::write(&path, &emitted).unwrap();
    let from_spec = dispatch(args(&format!("feasibility --spec {}", path.display()))).unwrap();
    std::fs::remove_file(&path).unwrap();

    assert_eq!(from_flags, from_spec);
    assert!(from_flags.contains("EDF density"), "{from_flags}");
    assert!(from_flags.contains("k-fault sensitivity"), "{from_flags}");
    // The constrained deadline survives the spec round trip.
    let spec = ExecutiveSpec::from_json_str(&emitted).unwrap();
    assert_eq!(spec.tasks.tasks[1].deadline, 15_000);
}

/// `executive --spec --emit-spec` round-trips: the emitted document
/// re-parses to an equal spec, and flags act as overrides on top of it.
#[test]
fn executive_emit_spec_round_trips() {
    let emitted = dispatch(args("executive --preset avionics-trio --emit-spec")).unwrap();
    let spec = ExecutiveSpec::from_json_str(&emitted).unwrap();
    assert_eq!(spec, executive_preset("avionics-trio").unwrap());

    // Replay the document through --spec: identical emission.
    let dir = temp_dir();
    let path = dir.join("avionics.json");
    std::fs::write(&path, &emitted).unwrap();
    let replayed = dispatch(args(&format!(
        "executive --spec {} --emit-spec",
        path.display()
    )))
    .unwrap();
    assert_eq!(emitted, replayed);

    // Flags override the loaded document (and are re-emitted).
    let overridden = dispatch(args(&format!(
        "executive --spec {} --hyperperiods 2 --seed 5 --k 3 --emit-spec",
        path.display()
    )))
    .unwrap();
    std::fs::remove_file(&path).unwrap();
    let spec = ExecutiveSpec::from_json_str(&overridden).unwrap();
    assert_eq!(spec.hyperperiods, 2);
    assert_eq!(spec.seed, 5);
    assert_eq!(spec.k, 3);
    assert_eq!(spec.policy.for_task(0).k(), Some(3));
}

/// Golden snapshot: the JSON report of the shipped `avionics-trio`
/// preset is pinned byte for byte. A diff here means either the executive
/// semantics, the RNG stream, or the report schema changed — all three
/// must be deliberate, reviewed changes (regenerate with
/// `eacp executive --preset avionics-trio --json`).
#[test]
fn executive_preset_report_matches_golden_snapshot() {
    let expected = include_str!("golden/executive-avionics-trio.json");
    let actual = dispatch(args("executive --preset avionics-trio --json")).unwrap();
    assert_eq!(actual, expected, "golden executive report drifted");

    // The snapshot itself parses as a well-formed report document.
    let report = ExecutiveRunReport::from_json_str(expected).unwrap();
    assert_eq!(report.spec.name, "avionics-trio");
    assert_eq!(report.tasks.len(), 3);
    assert_eq!(report.summary.jobs, 35);
}

/// The `--spec` document and the preset of the same name ship in
/// lockstep: specs/avionics-trio.json etc. are the emitted presets.
#[test]
fn shipped_spec_files_match_their_presets() {
    for name in eacp_spec::executive_preset_names() {
        let path = std::path::Path::new(concat!(env!("CARGO_MANIFEST_DIR"), "/../.."))
            .join("specs")
            .join(format!("{name}.json"));
        let loaded =
            ExecutiveSpec::load(&path).unwrap_or_else(|e| panic!("specs/{name}.json: {e}"));
        assert_eq!(loaded, executive_preset(name).unwrap(), "{name} drifted");
    }
}

/// `executive` runs end to end from a preset, both human and JSON forms.
#[test]
fn executive_preset_runs_end_to_end() {
    let out = dispatch(args("executive --preset avionics-trio")).unwrap();
    assert!(out.contains("executive avionics-trio"), "{out}");
    assert!(out.contains("attitude-control"), "{out}");

    let json = dispatch(args("executive --preset k-fault-feasibility-sweep --json")).unwrap();
    let doc = Json::parse(&json).unwrap();
    let report = ExecutiveRunReport::from_json(&doc).unwrap();
    assert_eq!(report.tasks.len(), 5);
    // The per-task assignment surfaces in the report.
    assert_eq!(report.policy_names[2], "k-f-t");

    assert!(dispatch(args("executive --preset nope")).is_err());
    assert!(dispatch(args("executive")).is_err());
}

/// Switching the scheme on a loaded document must not silently reset the
/// pinned DVS level (mirrors the `mc` override contract).
#[test]
fn executive_scheme_override_preserves_pinned_speed() {
    // The policy's own k (4) differs from the top-level feasibility k
    // (5): a scheme switch must carry the policy's k, not spec.k.
    let text = r#"{
        "tasks": [{"name": "solo", "wcet": 500, "period": 4000}],
        "faults": {"kind": "poisson", "lambda": 0.001},
        "policy": {"kind": "a_s", "lambda": 0.001, "k": 4, "speed": 1},
        "k": 5
    }"#;
    let dir = temp_dir();
    let path = dir.join("pinned.json");
    std::fs::write(&path, text).unwrap();
    let emitted = dispatch(args(&format!(
        "executive --spec {} --scheme a_c --emit-spec",
        path.display()
    )))
    .unwrap();
    std::fs::remove_file(&path).unwrap();
    let spec = ExecutiveSpec::from_json_str(&emitted).unwrap();
    assert_eq!(spec.policy.for_task(0).tag(), "a_c");
    assert_eq!(spec.policy.for_task(0).speed(), Some(1));
    assert_eq!(spec.policy.for_task(0).k(), Some(4));
    assert_eq!(spec.k, 5, "the feasibility k is untouched");
}

/// Determinism at the CLI boundary: two invocations of the same spec
/// emit byte-identical JSON reports.
#[test]
fn executive_json_is_deterministic_across_invocations() {
    let a = dispatch(args("executive --preset k-fault-feasibility-sweep --json")).unwrap();
    let b = dispatch(args("executive --preset k-fault-feasibility-sweep --json")).unwrap();
    assert_eq!(a, b);
}
