//! The acceptance criterion of the spec redesign: one JSON
//! `ExperimentSpec` file reproduces a paper table cell through **both**
//! the CLI and the experiments runner, with identical `Summary` numbers
//! for the same seed.

use eacp_experiments::{cell_experiment, table_config, SchemeId, TableId};
use eacp_spec::{ExecSpec, ExperimentSpec, Json};

#[test]
fn one_spec_file_reproduces_a_table_cell_through_cli_and_runner() {
    let reps = 80;
    let seed = 7;
    let config = table_config(TableId::Table1);
    let cell = config.cells[0]; // U = 0.76, λ = 1.4e-3, k = 5

    // The experiments runner's own result for the proposed scheme...
    let runner_cell = eacp_experiments::run_cell_with(
        &config,
        &cell,
        reps,
        seed,
        ExecSpec::paper().build().unwrap(),
    );
    let runner_result = runner_cell.scheme(SchemeId::Proposed);

    // ...and the spec document describing exactly that scheme/cell.
    let spec = cell_experiment(
        &config,
        &cell,
        SchemeId::Proposed,
        reps,
        seed,
        ExecSpec::paper().build().unwrap(),
    );
    assert_eq!(spec, runner_result.spec);

    // Written to a JSON file and fed to the CLI...
    let dir = std::env::temp_dir().join("eacp-spec-equivalence");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("cell.json");
    spec.save(&path).unwrap();
    let out = eacp_cli::dispatch(vec![
        "mc".into(),
        "--spec".into(),
        path.to_str().unwrap().into(),
        "--json".into(),
    ])
    .unwrap();
    std::fs::remove_file(&path).unwrap();

    // ...the CLI's JSON report must carry the identical summary numbers.
    let doc = Json::parse(&out).unwrap();
    let summary = doc.req("summary").unwrap();
    assert_eq!(
        summary.req("replications").unwrap().as_u64().unwrap(),
        runner_result.summary.replications
    );
    assert_eq!(
        summary.req("timely").unwrap().as_u64().unwrap(),
        runner_result.summary.timely
    );
    assert_eq!(
        summary.req("p_timely").unwrap().as_f64().unwrap(),
        runner_result.summary.p_timely()
    );
    assert_eq!(
        summary
            .req("energy_timely")
            .unwrap()
            .req("mean")
            .unwrap()
            .as_f64()
            .unwrap(),
        runner_result.summary.energy_timely.mean()
    );
    assert_eq!(
        summary
            .req("faults")
            .unwrap()
            .req("mean")
            .unwrap()
            .as_f64()
            .unwrap(),
        runner_result.summary.faults.mean()
    );

    // The report embeds the spec; it must be the exact document we wrote.
    use eacp_spec::FromJson;
    let embedded = ExperimentSpec::from_json(doc.req("spec").unwrap()).unwrap();
    assert_eq!(embedded, spec);

    // And running the embedded spec directly is still bit-identical.
    let (direct, _) = eacp_exec::run(&embedded).unwrap();
    assert_eq!(direct, runner_result.summary);
}

#[test]
fn cli_flags_desugar_to_the_same_cell_spec() {
    // `eacp mc` flags for Table 1(a)'s first cell must desugar into the
    // same experiment the harness builds, modulo the experiment name.
    let config = table_config(TableId::Table1);
    let cell = config.cells[0];
    let harness_spec = cell_experiment(
        &config,
        &cell,
        SchemeId::Proposed,
        2_000,
        2006,
        ExecSpec::paper().build().unwrap(),
    );

    let emitted = eacp_cli::dispatch(vec![
        "mc".into(),
        "--emit-spec".into(),
        "--scheme".into(),
        "a_d_s".into(),
        "--util".into(),
        "0.76".into(),
        "--lambda".into(),
        "1.4e-3".into(),
        "--k".into(),
        "5".into(),
    ])
    .unwrap();
    let mut cli_spec = ExperimentSpec::from_json_str(&emitted).unwrap();
    cli_spec.name = harness_spec.name.clone();
    assert_eq!(cli_spec, harness_spec);
}
