//! Acceptance test of the sharded sweep executor, end to end through the
//! CLI: running `eacp sweep --shard i/3` for i = 0..3 and merging the shard
//! documents produces a grid report bit-identical to the unsharded
//! `eacp sweep` run; `eacp merge` fails loudly on a withheld or duplicated
//! shard; bad `--shard` arguments are clear errors; and `eacp csv` renders
//! the merged directory with paper-value deltas.

use eacp_spec::{ExperimentSpec, McSpec, SweepAxis, SweepSpec};
use std::path::PathBuf;

fn args(parts: &[&str]) -> Vec<String> {
    parts.iter().map(|s| (*s).to_owned()).collect()
}

/// A 4-point paper-anchored sweep (Table 1(a) first row × λ axis), small
/// enough for CI.
fn write_sweep(dir: &PathBuf) -> PathBuf {
    let mut base = ExperimentSpec::paper_nominal();
    base.name = "anchor".into();
    base.mc = McSpec {
        replications: 60,
        seed: 11,
        threads: 1,
    };
    let sweep = SweepSpec {
        base,
        axes: vec![
            SweepAxis::Lambda(vec![1.4e-3, 1.6e-3]),
            SweepAxis::K(vec![5, 1]),
        ],
    };
    std::fs::create_dir_all(dir).unwrap();
    let path = dir.join("sweep.json");
    std::fs::write(&path, sweep.to_json_string()).unwrap();
    path
}

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("eacp-shard-merge-{}-{name}", std::process::id()))
}

#[test]
fn sharded_sweep_merges_bit_identically_to_the_unsharded_run() {
    let base = tmp("determinism");
    let _ = std::fs::remove_dir_all(&base);
    let spec_path = write_sweep(&base);
    let spec = spec_path.to_str().unwrap();

    // Unsharded reference run.
    let full_dir = base.join("full");
    eacp_cli::dispatch(args(&[
        "sweep",
        "--spec",
        spec,
        "--out",
        full_dir.to_str().unwrap(),
    ]))
    .unwrap();
    let full = std::fs::read_to_string(full_dir.join("grid.json")).unwrap();

    // Three shards, then merge.
    let shard_dir = base.join("shards");
    for i in 0..3 {
        let out = eacp_cli::dispatch(args(&[
            "sweep",
            "--spec",
            spec,
            "--shard",
            &format!("{i}/3"),
            "--out",
            shard_dir.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(out.contains(&format!("shard {i}/3")), "{out}");
    }
    let merged = eacp_cli::dispatch(args(&["merge", shard_dir.to_str().unwrap()])).unwrap();
    assert_eq!(
        merged, full,
        "merged shard documents must be bit-identical to the unsharded grid report"
    );

    // --out writes the same bytes to a file.
    let merged_path = base.join("merged.json");
    eacp_cli::dispatch(args(&[
        "merge",
        shard_dir.to_str().unwrap(),
        "--out",
        merged_path.to_str().unwrap(),
    ]))
    .unwrap();
    assert_eq!(std::fs::read_to_string(&merged_path).unwrap(), full);

    // The CSV renderer covers the merged directory: header + 4 rows, with
    // paper reference values for the anchor point (Table 1(a), U = 0.76,
    // λ = 1.4e-3, k = 5, A_D_S → paper P = 0.9999).
    let csv = eacp_cli::dispatch(args(&["csv", shard_dir.to_str().unwrap()])).unwrap();
    let lines: Vec<&str> = csv.lines().collect();
    assert_eq!(lines.len(), 5, "{csv}");
    assert!(lines[0].starts_with("index,experiment,scheme,"), "{csv}");
    let anchor = lines
        .iter()
        .find(|l| l.starts_with("0,"))
        .expect("grid point 0 present");
    let cols: Vec<&str> = anchor.split(',').collect();
    assert_eq!(cols[2], "A_D_S", "{anchor}");
    assert_eq!(cols[9], "0.9999", "paper P column: {anchor}");
    assert!(!cols[10].is_empty(), "delta_p column: {anchor}");

    std::fs::remove_dir_all(&base).unwrap();
}

#[test]
fn merge_fails_on_withheld_or_duplicated_shards() {
    let base = tmp("failures");
    let _ = std::fs::remove_dir_all(&base);
    let spec_path = write_sweep(&base);
    let spec = spec_path.to_str().unwrap();

    let shard_dir = base.join("shards");
    for i in 0..3 {
        eacp_cli::dispatch(args(&[
            "sweep",
            "--spec",
            spec,
            "--shard",
            &format!("{i}/3"),
            "--out",
            shard_dir.to_str().unwrap(),
        ]))
        .unwrap();
    }

    // Withheld shard: only 0 and 2 present.
    let withheld = base.join("withheld");
    std::fs::create_dir_all(&withheld).unwrap();
    for name in ["shard-0-of-3.json", "shard-2-of-3.json"] {
        std::fs::copy(shard_dir.join(name), withheld.join(name)).unwrap();
    }
    let err = eacp_cli::dispatch(args(&["merge", withheld.to_str().unwrap()])).unwrap_err();
    assert!(err.contains("missing"), "{err}");

    // Duplicated shard: shard 0 appears under two file names.
    let duplicated = base.join("duplicated");
    std::fs::create_dir_all(&duplicated).unwrap();
    for name in [
        "shard-0-of-3.json",
        "shard-1-of-3.json",
        "shard-2-of-3.json",
    ] {
        std::fs::copy(shard_dir.join(name), duplicated.join(name)).unwrap();
    }
    std::fs::copy(
        shard_dir.join("shard-0-of-3.json"),
        duplicated.join("shard-0-again.json"),
    )
    .unwrap();
    let err = eacp_cli::dispatch(args(&["merge", duplicated.to_str().unwrap()])).unwrap_err();
    assert!(err.contains("covered twice"), "{err}");

    // csv refuses the same duplication instead of silently emitting each
    // row twice (merged grid + shards in one directory is the common way
    // to hit this).
    let err = eacp_cli::dispatch(args(&["csv", duplicated.to_str().unwrap()])).unwrap_err();
    assert!(err.contains("already covered"), "{err}");

    std::fs::remove_dir_all(&base).unwrap();
}

#[test]
fn invalid_shard_arguments_are_clear_errors() {
    let base = tmp("badshard");
    let _ = std::fs::remove_dir_all(&base);
    let spec_path = write_sweep(&base);
    let spec = spec_path.to_str().unwrap();

    // i >= n.
    let err = eacp_cli::dispatch(args(&["sweep", "--spec", spec, "--shard", "3/3"])).unwrap_err();
    assert!(err.contains("out of range"), "{err}");
    // n == 0.
    let err = eacp_cli::dispatch(args(&["sweep", "--spec", spec, "--shard", "0/0"])).unwrap_err();
    assert!(err.contains("positive"), "{err}");
    // Malformed.
    let err = eacp_cli::dispatch(args(&["sweep", "--spec", spec, "--shard", "x"])).unwrap_err();
    assert!(err.contains("index/count"), "{err}");

    std::fs::remove_dir_all(&base).unwrap();
}

#[test]
fn sweep_with_an_empty_axis_is_a_clear_error() {
    let base = tmp("emptyaxis");
    let _ = std::fs::remove_dir_all(&base);
    std::fs::create_dir_all(&base).unwrap();
    // Hand-written document with an empty lambda axis: rejected at parse
    // time with a message naming the axis.
    let text = r#"{
        "base": {
            "name": "empty",
            "scenario": {"work": {"kind": "utilization", "utilization": 0.76, "deadline": 10000}},
            "faults": {"kind": "poisson", "lambda": 0.0014},
            "policy": {"kind": "a_d_s", "lambda": 0.0014, "k": 5}
        },
        "axes": [{"lambda": []}]
    }"#;
    let path = base.join("empty-axis.json");
    std::fs::write(&path, text).unwrap();
    let err = eacp_cli::dispatch(args(&["sweep", "--spec", path.to_str().unwrap()])).unwrap_err();
    assert!(err.contains("empty"), "{err}");

    std::fs::remove_dir_all(&base).unwrap();
}
