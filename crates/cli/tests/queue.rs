//! Acceptance tests of the work-queue scheduler through the CLI: a queued
//! sweep writes a grid report byte-identical to the default runner's,
//! `eacp queue status` tracks a trickling-in collection directory, the
//! queue config round-trips through `--emit-spec`, and corrupt shard
//! documents are clear errors naming the offending file.

use eacp_spec::{ExperimentSpec, McSpec, SweepAxis, SweepSpec};
use std::path::PathBuf;

fn args(parts: &[&str]) -> Vec<String> {
    parts.iter().map(|s| (*s).to_owned()).collect()
}

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("eacp-queue-cli-{}-{name}", std::process::id()))
}

/// A 4-point sweep, small enough for CI.
fn write_sweep(dir: &PathBuf) -> PathBuf {
    let mut base = ExperimentSpec::paper_nominal();
    base.name = "queued".into();
    base.mc = McSpec {
        replications: 50,
        seed: 7,
        threads: 1,
    };
    let sweep = SweepSpec {
        base,
        axes: vec![
            SweepAxis::Lambda(vec![1.4e-3, 1.6e-3]),
            SweepAxis::K(vec![5, 1]),
        ],
    };
    std::fs::create_dir_all(dir).unwrap();
    let path = dir.join("sweep.json");
    std::fs::write(&path, sweep.to_json_string()).unwrap();
    path
}

#[test]
fn queued_sweep_grid_report_is_byte_identical_to_the_default_runner() {
    let base = tmp("identical");
    let _ = std::fs::remove_dir_all(&base);
    let spec_path = write_sweep(&base);
    let spec = spec_path.to_str().unwrap();

    let plain_dir = base.join("plain");
    eacp_cli::dispatch(args(&[
        "sweep",
        "--spec",
        spec,
        "--out",
        plain_dir.to_str().unwrap(),
    ]))
    .unwrap();

    for workers in ["1", "3"] {
        let queued_dir = base.join(format!("queued-{workers}"));
        let out = eacp_cli::dispatch(args(&[
            "sweep",
            "--spec",
            spec,
            "--queue",
            "--workers",
            workers,
            "--out",
            queued_dir.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(out.contains("queued:"), "{out}");
        assert!(out.contains(&format!("{workers}-worker pool")), "{out}");
        assert_eq!(
            std::fs::read_to_string(queued_dir.join("grid.json")).unwrap(),
            std::fs::read_to_string(plain_dir.join("grid.json")).unwrap(),
            "queued grid report must be byte-identical ({workers} workers)"
        );
    }

    // Queued shard runs produce the same shard documents, too.
    let shard_plain = base.join("shard-plain");
    let shard_queued = base.join("shard-queued");
    for (dir, extra) in [(&shard_plain, &[][..]), (&shard_queued, &["--queue"][..])] {
        let mut a = args(&["sweep", "--spec", spec, "--shard", "1/3", "--out"]);
        a.push(dir.to_str().unwrap().to_owned());
        a.extend(extra.iter().map(|s| (*s).to_owned()));
        eacp_cli::dispatch(a).unwrap();
    }
    assert_eq!(
        std::fs::read_to_string(shard_plain.join("shard-1-of-3.json")).unwrap(),
        std::fs::read_to_string(shard_queued.join("shard-1-of-3.json")).unwrap(),
    );

    std::fs::remove_dir_all(&base).unwrap();
}

#[test]
fn queue_status_tracks_a_collection_directory() {
    let base = tmp("status");
    let _ = std::fs::remove_dir_all(&base);
    let spec_path = write_sweep(&base);
    let spec = spec_path.to_str().unwrap();
    let dir = base.join("collect");

    // Two of three shards in: incomplete.
    for i in ["0", "2"] {
        eacp_cli::dispatch(args(&[
            "sweep",
            "--spec",
            spec,
            "--shard",
            &format!("{i}/3"),
            "--out",
            dir.to_str().unwrap(),
        ]))
        .unwrap();
    }
    let out = eacp_cli::dispatch(args(&["queue", "status", dir.to_str().unwrap()])).unwrap();
    assert!(out.contains("sweep \"queued\": 4 grid points"), "{out}");
    assert!(out.contains("3 shards declared"), "{out}");
    assert!(out.contains("covered 3/4 points"), "{out}");
    // Balanced 4-over-3 partition: shard 1 owns index 2.
    assert!(out.contains("missing: [2]"), "{out}");
    assert!(out.contains("not ready to merge"), "{out}");

    // Third shard lands: complete.
    eacp_cli::dispatch(args(&[
        "sweep",
        "--spec",
        spec,
        "--shard",
        "1/3",
        "--out",
        dir.to_str().unwrap(),
    ]))
    .unwrap();
    let out = eacp_cli::dispatch(args(&["queue", "status", dir.to_str().unwrap()])).unwrap();
    assert!(out.contains("covered 4/4 points"), "{out}");
    assert!(out.contains("ready to merge"), "{out}");
    assert!(out.contains("shard 1/3"), "{out}");

    // And the merge proves the status right.
    eacp_cli::dispatch(args(&["merge", dir.to_str().unwrap()])).unwrap();

    std::fs::remove_dir_all(&base).unwrap();
}

#[test]
fn queue_subcommand_rejects_bad_invocations() {
    let err = eacp_cli::dispatch(args(&["queue"])).unwrap_err();
    assert!(err.contains("missing subcommand"), "{err}");
    let err = eacp_cli::dispatch(args(&["queue", "frobnicate"])).unwrap_err();
    assert!(err.contains("frobnicate"), "{err}");
    let err = eacp_cli::dispatch(args(&["queue", "status"])).unwrap_err();
    assert!(err.contains("missing report directory"), "{err}");
    // --workers is queue-only.
    let err = eacp_cli::dispatch(args(&["mc", "--workers", "3"])).unwrap_err();
    assert!(err.contains("--queue"), "{err}");
    // --threads would be silently dead under --queue: rejected loudly.
    let err = eacp_cli::dispatch(args(&[
        "sweep",
        "--spec",
        "x.json",
        "--queue",
        "--threads",
        "2",
    ]))
    .unwrap_err();
    assert!(err.contains("--workers"), "{err}");
}

#[test]
fn mc_queue_flag_is_recorded_in_the_spec_and_changes_nothing() {
    let plain = eacp_cli::dispatch(args(&["mc", "--reps", "80", "--seed", "4"])).unwrap();
    let queued = eacp_cli::dispatch(args(&[
        "mc",
        "--reps",
        "80",
        "--seed",
        "4",
        "--queue",
        "--workers",
        "3",
    ]))
    .unwrap();
    assert_eq!(plain, queued, "queue scheduling must not change results");

    let emitted = eacp_cli::dispatch(args(&[
        "mc",
        "--reps",
        "80",
        "--queue",
        "--workers",
        "3",
        "--emit-spec",
    ]))
    .unwrap();
    let spec = ExperimentSpec::from_json_str(&emitted).unwrap();
    let queue = spec.executor.queue.expect("queue config recorded");
    assert_eq!(queue.workers, 3);
}

#[test]
fn sweep_emit_spec_records_the_queue_config_too() {
    let base = tmp("emit");
    let _ = std::fs::remove_dir_all(&base);
    let spec_path = write_sweep(&base);
    let spec = spec_path.to_str().unwrap();

    let emitted = eacp_cli::dispatch(args(&[
        "sweep",
        "--spec",
        spec,
        "--queue",
        "--workers",
        "2",
        "--emit-spec",
    ]))
    .unwrap();
    let docs = eacp_spec::Json::parse(&emitted).unwrap();
    let docs = docs.as_array().unwrap();
    assert_eq!(docs.len(), 4);
    for doc in docs {
        use eacp_spec::FromJson;
        let point = ExperimentSpec::from_json(doc).unwrap();
        assert_eq!(
            point.executor.queue.map(|q| q.workers),
            Some(2),
            "{emitted}"
        );
    }
    // Without --queue the emitted specs stay queue-free.
    let emitted = eacp_cli::dispatch(args(&["sweep", "--spec", spec, "--emit-spec"])).unwrap();
    assert!(!emitted.contains("\"queue\""), "{emitted}");

    std::fs::remove_dir_all(&base).unwrap();
}

#[test]
fn corrupt_shard_documents_are_clear_errors_naming_the_file() {
    let base = tmp("corrupt");
    let _ = std::fs::remove_dir_all(&base);
    let spec_path = write_sweep(&base);
    let spec = spec_path.to_str().unwrap();
    let dir = base.join("shards");
    for i in ["0", "1", "2"] {
        eacp_cli::dispatch(args(&[
            "sweep",
            "--spec",
            spec,
            "--shard",
            &format!("{i}/3"),
            "--out",
            dir.to_str().unwrap(),
        ]))
        .unwrap();
    }

    // Truncated JSON (a partially-copied shard document).
    let victim = dir.join("shard-1-of-3.json");
    let intact = std::fs::read_to_string(&victim).unwrap();
    std::fs::write(&victim, &intact[..intact.len() / 3]).unwrap();
    for cmd in ["merge", "queue-status", "csv"] {
        let argv = match cmd {
            "queue-status" => args(&["queue", "status", dir.to_str().unwrap()]),
            other => args(&[other, dir.to_str().unwrap()]),
        };
        let err = eacp_cli::dispatch(argv).unwrap_err();
        assert!(err.contains("shard-1-of-3.json"), "{cmd}: {err}");
        assert!(!err.contains("panicked"), "{cmd}: {err}");
    }

    // A lying total_points must be a clear error, not an allocation panic.
    let lying = intact.replace(
        "\"total_points\": 4",
        "\"total_points\": 1152921504606846976",
    );
    assert_ne!(lying, intact, "fixture must actually corrupt the field");
    std::fs::write(&victim, lying).unwrap();
    let err = eacp_cli::dispatch(args(&["merge", dir.to_str().unwrap()])).unwrap_err();
    assert!(err.contains("shard-1-of-3.json"), "{err}");
    // queue status must reject the same lie instead of iterating a
    // fantasy-sized grid.
    let err = eacp_cli::dispatch(args(&["queue", "status", dir.to_str().unwrap()])).unwrap_err();
    assert!(err.contains("shard-1-of-3.json"), "{err}");

    std::fs::remove_dir_all(&base).unwrap();
}
