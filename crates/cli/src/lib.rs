//! Implementation of the `eacp` command-line tool.
//!
//! Subcommands:
//!
//! * `run` — execute one task instance under a chosen scheme, optionally
//!   with an ASCII execution timeline;
//! * `mc` — Monte-Carlo summary of a scheme at an operating point;
//! * `analyze` — print the paper's analysis quantities (`I1/I2/I3`,
//!   thresholds, `num_SCP`/`num_CCP`, `t_est`, chosen speed);
//! * `table` — regenerate one of the paper's tables;
//! * `feasibility` — checkpoint-aware EDF/RM analysis of a periodic task
//!   set.
//!
//! The library portion exists so argument parsing and command execution
//! are unit-testable; `main.rs` is a thin shim.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use eacp_core::analysis::{
    checkpoint_interval_with_branch, choose_speed, estimated_completion_time, num_ccp, num_scp,
    IntervalInputs, OptimizeMethod, RenewalParams,
};
use eacp_core::policies::{Adaptive, KFaultTolerant, PoissonArrival};
use eacp_energy::DvsConfig;
use eacp_faults::PoissonProcess;
use eacp_rtsched::feasibility::{edf_density, k_fault_wcet, rm_response_times};
use eacp_rtsched::{PeriodicTask, TaskSet};
use eacp_sim::{
    CheckpointCosts, Executor, ExecutorOptions, MonteCarlo, Policy, Scenario, TaskSpec,
    TraceRecorder,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Usage text for `--help`.
pub const USAGE: &str = "\
eacp — energy-aware adaptive checkpointing (DATE 2006 reproduction)

USAGE:
  eacp run        [--scheme S] [--util U] [--lambda L] [--k K] [--deadline D]
                  [--variant scp|ccp] [--seed N] [--trace]
  eacp mc         [--scheme S] [--util U] [--lambda L] [--k K] [--deadline D]
                  [--variant scp|ccp] [--reps N] [--seed N]
  eacp analyze    [--util U] [--lambda L] [--k K] [--deadline D] [--variant scp|ccp]
  eacp table      <1|2|3|4> [--reps N] [--seed N]
  eacp feasibility --tasks name:wcet:period[:deadline][,...] [--k K] [--speed F]

SCHEMES: poisson | kft | a_d | a_d_s | a_d_c | a_s | a_c (default a_d_s)
DEFAULTS: util 0.76, lambda 1.4e-3, k 5, deadline 10000, variant scp";

/// Parsed common options.
#[derive(Debug, Clone, PartialEq)]
pub struct Options {
    /// Scheme name (see [`USAGE`]).
    pub scheme: String,
    /// Task utilization at `f1`.
    pub util: f64,
    /// Fault rate.
    pub lambda: f64,
    /// Fault-tolerance target.
    pub k: u32,
    /// Relative deadline.
    pub deadline: f64,
    /// Cost variant: `scp` (ts=2, tcp=20) or `ccp` (ts=20, tcp=2).
    pub variant: String,
    /// RNG seed.
    pub seed: u64,
    /// Monte-Carlo replications.
    pub reps: u64,
    /// Print a trace timeline (run subcommand).
    pub trace: bool,
    /// Task-set spec (feasibility subcommand).
    pub tasks: String,
    /// Fixed speed for feasibility (frequency value).
    pub speed: f64,
    /// Positional arguments (e.g. the table number).
    pub positional: Vec<String>,
}

impl Default for Options {
    fn default() -> Self {
        Self {
            scheme: "a_d_s".into(),
            util: 0.76,
            lambda: 1.4e-3,
            k: 5,
            deadline: 10_000.0,
            variant: "scp".into(),
            seed: 2006,
            reps: 2_000,
            trace: false,
            tasks: String::new(),
            speed: 1.0,
            positional: Vec::new(),
        }
    }
}

/// Parses flags following the subcommand.
///
/// # Errors
///
/// Returns a message for unknown flags or unparsable values.
pub fn parse_options<I: Iterator<Item = String>>(mut args: I) -> Result<Options, String> {
    let mut o = Options::default();
    while let Some(flag) = args.next() {
        let mut val = |name: &str| -> Result<String, String> {
            args.next()
                .ok_or_else(|| format!("missing value for {name}"))
        };
        match flag.as_str() {
            "--scheme" => o.scheme = val("--scheme")?,
            "--util" => o.util = parse_num(&val("--util")?, "--util")?,
            "--lambda" => o.lambda = parse_num(&val("--lambda")?, "--lambda")?,
            "--k" => o.k = parse_num(&val("--k")?, "--k")? as u32,
            "--deadline" => o.deadline = parse_num(&val("--deadline")?, "--deadline")?,
            "--variant" => o.variant = val("--variant")?,
            "--seed" => o.seed = parse_num(&val("--seed")?, "--seed")? as u64,
            "--reps" => o.reps = parse_num(&val("--reps")?, "--reps")? as u64,
            "--speed" => o.speed = parse_num(&val("--speed")?, "--speed")?,
            "--tasks" => o.tasks = val("--tasks")?,
            "--trace" => o.trace = true,
            other if !other.starts_with("--") => o.positional.push(other.to_owned()),
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    if !["scp", "ccp"].contains(&o.variant.as_str()) {
        return Err(format!("unknown variant {:?} (use scp|ccp)", o.variant));
    }
    Ok(o)
}

fn parse_num(s: &str, name: &str) -> Result<f64, String> {
    s.parse::<f64>().map_err(|e| format!("bad {name}: {e}"))
}

fn costs_of(o: &Options) -> CheckpointCosts {
    if o.variant == "scp" {
        CheckpointCosts::paper_scp_variant()
    } else {
        CheckpointCosts::paper_ccp_variant()
    }
}

fn scenario_of(o: &Options) -> Scenario {
    Scenario::new(
        TaskSpec::from_utilization(o.util, 1.0, o.deadline),
        costs_of(o),
        DvsConfig::paper_default(),
    )
}

/// Builds the policy named by `--scheme`.
///
/// # Errors
///
/// Returns a message for unknown scheme names.
pub fn build_policy(o: &Options) -> Result<Box<dyn Policy>, String> {
    Ok(match o.scheme.as_str() {
        "poisson" => Box::new(PoissonArrival::new(o.lambda, 0)),
        "kft" => Box::new(KFaultTolerant::new(o.k, 0)),
        "a_d" => Box::new(Adaptive::adt_dvs(o.lambda, o.k)),
        "a_d_s" => Box::new(Adaptive::dvs_scp(o.lambda, o.k)),
        "a_d_c" => Box::new(Adaptive::dvs_ccp(o.lambda, o.k)),
        "a_s" => Box::new(Adaptive::scp(o.lambda, o.k, 0)),
        "a_c" => Box::new(Adaptive::ccp(o.lambda, o.k, 0)),
        other => return Err(format!("unknown scheme {other:?}")),
    })
}

/// `eacp run`: one seeded execution, optionally traced.
pub fn cmd_run(o: &Options) -> Result<String, String> {
    let scenario = scenario_of(o);
    let mut policy = build_policy(o)?;
    let mut faults = PoissonProcess::new(o.lambda, StdRng::seed_from_u64(o.seed));
    let mut rec = TraceRecorder::new();
    let out = if o.trace {
        Executor::new(&scenario).run_traced(&mut *policy, &mut faults, Some(&mut rec))
    } else {
        Executor::new(&scenario).run(&mut *policy, &mut faults)
    };
    let mut s = format!(
        "scheme={} N={:.0} D={:.0} λ={:e} k={}\n\
         completed={} timely={} aborted={}\n\
         finish={:.1} energy={:.0} faults={} rollbacks={}\n\
         checkpoints: SCP={} CCP={} CSCP={} fast-fraction={:.2}\n",
        policy.name(),
        scenario.task.work_cycles,
        scenario.task.deadline,
        o.lambda,
        o.k,
        out.completed,
        out.timely,
        out.aborted,
        out.finish_time,
        out.energy,
        out.faults,
        out.rollbacks,
        out.store_checkpoints,
        out.compare_checkpoints,
        out.compare_store_checkpoints,
        out.fast_fraction(),
    );
    if o.trace {
        s.push('\n');
        s.push_str(&rec.render(100));
    }
    Ok(s)
}

/// `eacp mc`: Monte-Carlo summary with confidence interval.
pub fn cmd_mc(o: &Options) -> Result<String, String> {
    build_policy(o)?; // validate the scheme name up front
    let scenario = scenario_of(o);
    let lambda = o.lambda;
    let summary = MonteCarlo::new(o.reps).with_seed(o.seed).run(
        &scenario,
        ExecutorOptions {
            faults_during_overhead: false,
            ..ExecutorOptions::default()
        },
        |_| build_policy(o).expect("validated above"),
        |seed| PoissonProcess::new(lambda, StdRng::seed_from_u64(seed)),
    );
    let (lo, hi) = summary.p_timely_ci(1.96);
    Ok(format!(
        "scheme={} reps={}\nP = {:.4} [95% CI {:.4}, {:.4}]\nE(timely) = {:.0}\n\
         E(all) = {:.0}\nfaults/run = {:.2}  rollbacks/run = {:.2}\n\
         checkpoints/run = {:.1}  fast-fraction = {:.3}\naborted = {}  anomalies = {}\n",
        o.scheme,
        o.reps,
        summary.p_timely(),
        lo,
        hi,
        summary.mean_energy_timely(),
        summary.energy_all.mean(),
        summary.faults.mean(),
        summary.rollbacks.mean(),
        summary.checkpoints.mean(),
        summary.fast_fraction.mean(),
        summary.aborted,
        summary.anomalies,
    ))
}

/// `eacp analyze`: the paper's analysis quantities at the initial planning
/// point.
pub fn cmd_analyze(o: &Options) -> Result<String, String> {
    let costs = costs_of(o);
    let dvs = DvsConfig::paper_default();
    let n = o.util * o.deadline;
    let c = costs.cscp_cycles();
    let speed = choose_speed(n, o.deadline, c, o.lambda, &dvs);
    let f = dvs.level(speed).frequency;
    let t1 = estimated_completion_time(n, dvs.level(0).frequency, c, o.lambda);
    let t2 = estimated_completion_time(n, dvs.level(1).frequency, c, o.lambda);
    let (itv, branch) = checkpoint_interval_with_branch(IntervalInputs {
        rd: o.deadline,
        rt: n / f,
        c: c / f,
        rf: o.k as f64,
        lambda: o.lambda,
    });
    let params = RenewalParams::new(
        costs.store_cycles / f,
        costs.compare_cycles / f,
        costs.rollback_cycles / f,
        o.lambda,
    );
    let (m, label) = if o.variant == "scp" {
        (
            num_scp(itv, &params, OptimizeMethod::PaperClosedForm),
            "num_SCP",
        )
    } else {
        (
            num_ccp(itv, &params, OptimizeMethod::PaperClosedForm),
            "num_CCP",
        )
    };
    Ok(format!(
        "task: N = {n:.0} cycles, D = {:.0}, λ = {:e}, k = {}, variant = {}\n\
         t_est(f1) = {t1:.1}   t_est(f2) = {t2:.1}   chosen speed = f{}\n\
         interval() = {itv:.2} time units  (branch: {branch:?})\n\
         {label}(interval) = {m}  →  sub-interval = {:.2}\n",
        o.deadline,
        o.lambda,
        o.k,
        o.variant,
        speed + 1,
        itv / m as f64,
    ))
}

/// `eacp table`: regenerate one paper table (delegates to
/// `eacp-experiments`).
pub fn cmd_table(o: &Options) -> Result<String, String> {
    use eacp_experiments::TableId;
    let which = o
        .positional
        .first()
        .ok_or("table: missing table number (1..4)")?;
    let id = match which.as_str() {
        "1" => TableId::Table1,
        "2" => TableId::Table2,
        "3" => TableId::Table3,
        "4" => TableId::Table4,
        other => return Err(format!("unknown table {other:?}")),
    };
    let result = eacp_experiments::run_table_with(
        id,
        o.reps,
        o.seed,
        ExecutorOptions {
            faults_during_overhead: false,
            ..ExecutorOptions::default()
        },
    );
    let mut out = eacp_experiments::render::to_text(&result);
    out.push('\n');
    out.push_str(&eacp_experiments::compare::render_comparison(&result));
    Ok(out)
}

/// Parses `name:wcet:period[:deadline]` task lists.
///
/// # Errors
///
/// Returns a message for malformed specs.
pub fn parse_taskset(spec: &str) -> Result<TaskSet, String> {
    let mut tasks = Vec::new();
    for part in spec.split(',').filter(|s| !s.is_empty()) {
        let fields: Vec<&str> = part.split(':').collect();
        if fields.len() < 3 || fields.len() > 4 {
            return Err(format!(
                "task {part:?}: expected name:wcet:period[:deadline]"
            ));
        }
        let wcet: f64 = fields[1]
            .parse()
            .map_err(|e| format!("task {part:?}: bad wcet: {e}"))?;
        let period: u64 = fields[2]
            .parse()
            .map_err(|e| format!("task {part:?}: bad period: {e}"))?;
        let deadline: u64 = match fields.get(3) {
            Some(d) => d
                .parse()
                .map_err(|e| format!("task {part:?}: bad deadline: {e}"))?,
            None => period,
        };
        tasks.push(PeriodicTask::new(fields[0], wcet, period, deadline));
    }
    if tasks.is_empty() {
        return Err("no tasks given".into());
    }
    Ok(TaskSet::new(tasks))
}

/// `eacp feasibility`: checkpoint-aware EDF/RM analysis.
pub fn cmd_feasibility(o: &Options) -> Result<String, String> {
    let set = parse_taskset(&o.tasks)?;
    let costs = costs_of(o);
    let mut out = String::new();
    for t in set.tasks() {
        out.push_str(&format!(
            "{:<16} N={:<8.0} T={:<8} D={:<8} WCET_k({}) = {:.0}\n",
            t.name,
            t.wcet_cycles,
            t.period,
            t.deadline,
            o.k,
            k_fault_wcet(t.wcet_cycles, costs.cscp_cycles(), o.k)
        ));
    }
    let density = edf_density(&set, &costs, o.k, o.speed);
    out.push_str(&format!(
        "hyperperiod = {}\nEDF density at f={} : {:.3} → {}\n",
        set.hyperperiod(),
        o.speed,
        density,
        if density <= 1.0 {
            "feasible"
        } else {
            "INFEASIBLE"
        }
    ));
    match rm_response_times(&set, &costs, o.k, o.speed) {
        Some(r) => {
            out.push_str("RM response times:\n");
            for (t, resp) in set.tasks().iter().zip(&r) {
                out.push_str(&format!(
                    "  {:<16} R = {resp:.0} (D = {})\n",
                    t.name, t.deadline
                ));
            }
        }
        None => out.push_str("RM: not schedulable\n"),
    }
    Ok(out)
}

/// Dispatches a full command line (without the program name).
///
/// # Errors
///
/// Returns a user-facing message on any parse or execution failure.
pub fn dispatch(args: Vec<String>) -> Result<String, String> {
    let Some(cmd) = args.first().cloned() else {
        return Ok(USAGE.to_owned());
    };
    let rest = args.into_iter().skip(1);
    match cmd.as_str() {
        "run" => cmd_run(&parse_options(rest)?),
        "mc" => cmd_mc(&parse_options(rest)?),
        "analyze" => cmd_analyze(&parse_options(rest)?),
        "table" => cmd_table(&parse_options(rest)?),
        "feasibility" => cmd_feasibility(&parse_options(rest)?),
        "--help" | "-h" | "help" => Ok(USAGE.to_owned()),
        other => Err(format!("unknown command {other:?}\n{USAGE}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_owned).collect()
    }

    #[test]
    fn parse_defaults_and_overrides() {
        let o = parse_options(args("--scheme a_d --util 0.8 --k 3 --trace").into_iter()).unwrap();
        assert_eq!(o.scheme, "a_d");
        assert_eq!(o.util, 0.8);
        assert_eq!(o.k, 3);
        assert!(o.trace);
        assert_eq!(o.lambda, 1.4e-3); // default retained
    }

    #[test]
    fn parse_rejects_unknown_flag() {
        assert!(parse_options(args("--bogus 1").into_iter()).is_err());
    }

    #[test]
    fn parse_rejects_bad_variant() {
        assert!(parse_options(args("--variant xyz").into_iter()).is_err());
    }

    #[test]
    fn run_command_produces_report() {
        let out = dispatch(args("run --seed 7")).unwrap();
        assert!(out.contains("scheme=A_D_S"));
        assert!(out.contains("energy="));
    }

    #[test]
    fn run_with_trace_renders_timeline() {
        let out = dispatch(args("run --util 0.3 --lambda 1e-3 --trace --seed 3")).unwrap();
        assert!(out.contains("compute @f"), "no timeline in:\n{out}");
    }

    #[test]
    fn mc_command_reports_ci() {
        let out = dispatch(args("mc --reps 200 --scheme poisson")).unwrap();
        assert!(out.contains("95% CI"));
        assert!(out.contains("anomalies = 0"));
    }

    #[test]
    fn analyze_command_matches_paper_operating_point() {
        let out = dispatch(args("analyze")).unwrap();
        assert!(out.contains("chosen speed = f2"), "{out}");
        assert!(out.contains("num_SCP"));
    }

    #[test]
    fn analyze_ccp_variant_uses_num_ccp() {
        let out = dispatch(args("analyze --variant ccp")).unwrap();
        assert!(out.contains("num_CCP"));
    }

    #[test]
    fn table_command_requires_number() {
        assert!(dispatch(args("table")).is_err());
        assert!(dispatch(args("table 9")).is_err());
        let out = dispatch(args("table 1 --reps 30")).unwrap();
        assert!(out.contains("Table 1"));
        assert!(out.contains("vs paper"));
    }

    #[test]
    fn feasibility_parses_task_lists() {
        let set = parse_taskset("a:100:1000,b:200:2000:1500").unwrap();
        assert_eq!(set.len(), 2);
        assert_eq!(set.tasks()[1].deadline, 1500);
        assert!(parse_taskset("").is_err());
        assert!(parse_taskset("a:1").is_err());
        assert!(parse_taskset("a:x:1000").is_err());
    }

    #[test]
    fn feasibility_command_end_to_end() {
        let out = dispatch(args(
            "feasibility --tasks ctrl:900:5000,tele:2600:20000 --k 2",
        ))
        .unwrap();
        assert!(out.contains("EDF density"));
        assert!(out.contains("feasible"));
        assert!(out.contains("RM response times"));
    }

    #[test]
    fn help_and_unknown_commands() {
        assert!(dispatch(vec![]).unwrap().contains("USAGE"));
        assert!(dispatch(args("help")).unwrap().contains("USAGE"));
        assert!(dispatch(args("frobnicate")).is_err());
    }

    #[test]
    fn unknown_scheme_is_rejected() {
        assert!(dispatch(args("run --scheme nope")).is_err());
    }
}
