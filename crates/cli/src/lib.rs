//! Implementation of the `eacp` command-line tool.
//!
//! Subcommands:
//!
//! * `run` — execute one task instance under a chosen scheme, optionally
//!   with an ASCII execution timeline;
//! * `mc` — Monte-Carlo summary of a scheme at an operating point;
//! * `sweep` — expand a sweep grid and run every point (or one
//!   `--shard i/n` of it, writing report documents with `--out`);
//! * `merge` — reassemble a directory of shard report documents into the
//!   full grid report, failing on missing/duplicate/mismatched points;
//! * `queue` — `queue status DIR` inspects a result-collection directory:
//!   which grid points the present shard documents cover, which are still
//!   owed, whether the directory is ready to merge;
//! * `csv` — render a directory of report documents as a CSV matrix with
//!   paper-value deltas;
//! * `analyze` — print the paper's analysis quantities (`I1/I2/I3`,
//!   thresholds, `num_SCP`/`num_CCP`, `t_est`, chosen speed);
//! * `table` — regenerate one of the paper's tables;
//! * `feasibility` — checkpoint-aware EDF/RM analysis of a periodic task
//!   set, with a per-k sensitivity table (spec-driven via
//!   [`ExecutiveSpec`], or the `--tasks` shorthand);
//! * `executive` — run the non-preemptive EDF executive over N
//!   hyperperiods and emit an [`eacp_spec::ExecutiveRunReport`]; with
//!   `--mc` run N seeded horizons through the replication engine
//!   (mergeable [`eacp_exec::ExecutiveSummary`], store-cacheable), and
//!   with `--sweep grid.json` expand an [`ExecutiveSweepSpec`] grid with
//!   the same shard/store workflow as `sweep`;
//! * `store` — inspect (`status`), prune (`gc`) and audit (`verify`) the
//!   content-addressed result store that `run`/`mc`/`sweep` consult with
//!   `--store DIR` (or `$EACP_STORE`);
//! * `presets` — list the named experiment presets.
//!
//! Every simulation subcommand is spec-driven: `--spec file.json` loads an
//! [`ExperimentSpec`] (`sweep` loads a [`SweepSpec`]), `--preset name`
//! loads a named preset, and bare flags desugar into a spec. Flags given
//! *alongside* `--spec`/`--preset` override the loaded document, so
//! `eacp mc --preset table1-a --lambda 2e-3` is the preset at a different
//! fault rate. `--emit-spec` prints the effective spec instead of running
//! it — the exact JSON any other consumer (the experiments harness, CI,
//! a remote executor) reproduces bit for bit.
//!
//! The library portion exists so argument parsing and command execution
//! are unit-testable; `main.rs` is a thin shim.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use eacp_core::analysis::{
    checkpoint_interval_with_branch, choose_speed, estimated_completion_time, num_ccp, num_scp,
    IntervalInputs, OptimizeMethod, RenewalParams,
};
use eacp_core::policies::PolicyKind;
use eacp_energy::DvsConfig;
use eacp_exec::{
    coverage_dir, executive_coverage_dir, merge_dir, merge_executive_dir, render_executive_csv,
    run_executive_point, run_executive_sweep, run_sweep, run_sweep_queued_tiered, run_sweep_tiered,
    ExecutiveGridReport, ExecutiveJob, ExecutivePointReport, GridReport, Job, LocalRunner,
    PaperRef, QueueObserver, QueueRunner, QueueStatus, Runner, ShardId, Summary,
};
use eacp_rtsched::feasibility::{
    edf_density, k_fault_wcet, minimum_feasible_speed, rm_response_times,
};
use eacp_rtsched::TaskSet;
use eacp_sim::{Executor, Policy, TraceRecorder};
use eacp_spec::{
    executive_preset, executive_preset_names, preset, preset_names, CostsSpec, ExecSpec,
    ExecutiveMcSpec, ExecutiveSpec, ExecutiveSweepSpec, ExperimentSpec, FaultSpec, FromJson, Json,
    McSpec, PeriodicTaskSpec, PolicyAssignment, PolicySpec, RunReport, ScenarioSpec, SweepAxis,
    SweepSpec, TaskSetSpec, ToJson, WorkSpec,
};
use eacp_store::{
    executive_store_coverage, run_cached, run_cached_single, run_cached_tiered,
    run_executive_cached, run_executive_sweep_cached, run_sweep_cached_tiered, store_coverage,
    verify_store, CacheMode, CacheOutcome, FsBackend, MemBackend, NoopStoreObserver,
    RetentionPolicy, StoreBackend, StoreCounters, STORE_ENV_VAR,
};

/// Usage text for `--help`.
pub const USAGE: &str = "\
eacp — energy-aware adaptive checkpointing (DATE 2006 reproduction)

USAGE:
  eacp run        [SPEC] [--scheme S] [--util U] [--lambda L] [--k K] [--deadline D]
                  [--variant scp|ccp] [--seed N] [--trace] [CACHE]
  eacp mc         [SPEC] [--scheme S] [--util U] [--lambda L] [--k K] [--deadline D]
                  [--variant scp|ccp] [--reps N] [--seed N] [--threads N] [--json]
                  [--queue [--workers N] [--endpoints H:P,... [--timeout-ms T]]]
                  [--no-analytic] [CACHE]
  eacp sweep      --spec sweep.json [--reps N] [--json] [--shard I/N] [--out DIR]
                  [--queue [--workers N] [--endpoints H:P,... [--timeout-ms T]]]
                  [--no-analytic] [CACHE]
  eacp serve      --listen HOST:PORT
  eacp merge      <DIR> [--out FILE]
  eacp queue      status <DIR>
  eacp csv        <DIR> [--out FILE]
  eacp analyze    [--util U] [--lambda L] [--k K] [--deadline D] [--variant scp|ccp]
  eacp table      <1|2|3|4> [--reps N] [--seed N] [--json]
  eacp feasibility [SPEC] [--tasks name:wcet:period[:deadline][,...]] [--k K] [--speed F]
  eacp executive  [SPEC] [--tasks ...] [--scheme S] [--lambda L] [--k K]
                  [--hyperperiods N] [--seed N] [--json]
                  | --mc [--reps N] [--threads N] [--queue [--workers N]] [CACHE]
                  | --sweep grid.json [--reps N] [--shard I/N] [--out DIR]
                  [--queue [--workers N]] [CACHE]
  eacp bench      [--reps N] [--quick] [--threads N] [--seed N] [--out FILE]
                  [--baseline FILE [--max-regress FRAC]]
  eacp store      status [--spec sweep.json [--reps N] [--seed N]]
                  | gc [--max-entries N] [--max-bytes N] | verify [--sample N]
                  (all take --store DIR or $EACP_STORE)
  eacp presets

CACHE (run/mc/sweep):
  --store DIR        consult/record a result store (default: $EACP_STORE)
  --no-cache         ignore any configured store for this invocation
  --refresh          recompute and re-record even on a hit

ANALYTIC SERVE TIER (mc/sweep):
  Replication-invariant cells — fault specs where every replication is
  the same execution (poisson lambda=0, deterministic fault times) — are
  answered in closed form: one execution, aggregated N times, marked
  \"served\": \"analytic\" in reports and store cells. --no-analytic forces
  the full Monte-Carlo loop; `store verify` re-derives each cell through
  the tier that recorded it.

PERIODIC TASK SETS (feasibility/executive):
  Both subcommands resolve an ExecutiveSpec: --spec file.json loads a
  document, --preset NAME a named workload (avionics-trio,
  k-fault-feasibility-sweep), and --tasks desugars the shorthand into the
  same spec (flags override either). `feasibility` runs the
  checkpoint-aware EDF/RM analysis plus a per-k sensitivity table;
  `executive` simulates N hyperperiods of non-preemptive EDF and emits a
  JSON report (--json) with per-task deadline misses, energy and
  checkpoint totals. --emit-spec prints the effective spec on both.

EXECUTIVE MONTE-CARLO:
  `executive --mc` runs the spec's mc.replications seeded horizons
  (replication i seeds hyperperiod horizon i) and reports miss-ratio /
  energy distributions with per-task aggregates; the summary is
  bit-identical for any --threads or --queue --workers count, and
  --store serves repeat cells byte-identical to recomputation.
  `executive --sweep grid.json` expands an executive sweep document
  (hyperperiods/utilization/lambda/k/seed axes) with the same --shard /
  --out / --store workflow as `eacp sweep`; `merge`, `queue status` and
  `csv` detect executive report collections automatically.

SHARDED SWEEPS:
  --shard I/N runs only shard I's grid-index range; --out DIR writes the
  shard (or full grid) as a report document. `eacp merge DIR` reassembles
  shards into the full grid report — identical to an unsharded run — and
  fails on missing, duplicate or spec-mismatched points. `eacp queue
  status DIR` shows how far the collection has progressed (covered /
  missing / duplicated points) without failing. `eacp csv DIR` renders
  report documents as CSV with paper-value deltas.

BENCH:
  `eacp bench` measures replication throughput on the paper-nominal
  10k-replication job (pooled spec path vs the boxed-factory escape
  hatch, bit-identical by construction) plus one sweep cell, and writes
  the numbers as BENCH_simulator.json (override with --out). Track
  pooled.reps_per_s across commits for the perf trajectory. --quick runs
  a reduced-replication smoke for CI.

RESULT STORE:
  A store is a content-addressed cache of finished cells: each result is
  keyed by a stable hash of the canonical spec (minus name, Monte-Carlo
  block and queue scheduling) plus (seed, replications). With --store DIR
  (or $EACP_STORE), `run`/`mc` serve hits byte-identical to recomputation
  and record misses; `sweep --store` is resumable — kill it anywhere,
  rerun, and only uncovered grid cells are computed. Corrupt entries are
  quarantined and recomputed, never served. `eacp store status` reports
  health (add --spec sweep.json for grid coverage), `gc` applies a
  retention policy, `verify` recomputes sampled cells and fails on any
  byte mismatch.

QUEUED EXECUTION AND THE REMOTE FLEET:
  --queue schedules work through a work queue drained by a worker pool
  (--workers N, 0 = auto) with lease retry; results are bit-identical to
  the default runner for any worker count. On `mc` the queue config is
  recorded in the effective spec (see --emit-spec). With --endpoints
  H:P,... each leased block is shipped over TCP to `eacp serve`
  processes instead of executing in-process (--timeout-ms caps each
  request, default 10000). Dead or wedged servers fail the lease; the
  retry budget re-leases to surviving endpoints and the final attempt
  always runs in-process, so a fleet run completes — bit-identical —
  even with every server down. `eacp serve --listen HOST:PORT` runs one
  stateless block server (start several, list them all in --endpoints;
  the merged summary is byte-identical to an unqueued run).

SPEC selection (run/mc):
  --spec file.json   load an ExperimentSpec document
  --preset NAME      load a named preset (see `eacp presets`)
  --emit-spec        print the effective spec as JSON instead of running
  Flags given alongside --spec/--preset override the loaded document.

SCHEMES: poisson | kft | a_d | a_d_s | a_d_c | a_s | a_c | cscp (default a_d_s)
DEFAULTS: util 0.76, lambda 1.4e-3, k 5, deadline 10000, variant scp";

/// Parsed common options.
///
/// `explicit` records which flags the user actually passed — that is what
/// lets flags act as *overrides* on top of `--spec`/`--preset` instead of
/// silently re-imposing defaults.
#[derive(Debug, Clone, PartialEq)]
pub struct Options {
    /// Scheme name (see [`USAGE`]).
    pub scheme: String,
    /// Task utilization at `f1`.
    pub util: f64,
    /// Fault rate.
    pub lambda: f64,
    /// Fault-tolerance target.
    pub k: u32,
    /// Relative deadline.
    pub deadline: f64,
    /// Cost variant: `scp` (ts=2, tcp=20) or `ccp` (ts=20, tcp=2).
    pub variant: String,
    /// RNG seed.
    pub seed: u64,
    /// Monte-Carlo replications.
    pub reps: u64,
    /// Monte-Carlo worker threads (0 = automatic).
    pub threads: usize,
    /// Print a trace timeline (run subcommand).
    pub trace: bool,
    /// Task-set spec (feasibility/executive subcommands).
    pub tasks: String,
    /// Fixed speed for feasibility (frequency value).
    pub speed: f64,
    /// Hyperperiods the executive simulates.
    pub hyperperiods: u32,
    /// Monte-Carlo mode for `executive` (`--mc`: N seeded horizons).
    pub mc: bool,
    /// Executive sweep document (`executive --sweep grid.json`).
    pub sweep: String,
    /// Baseline BENCH document to compare against (bench subcommand).
    pub baseline: String,
    /// Tolerated fractional replications/sec regression vs the baseline.
    pub max_regress: f64,
    /// Path to an `ExperimentSpec`/`SweepSpec` JSON document.
    pub spec: String,
    /// Name of a built-in preset.
    pub preset: String,
    /// Shard selector `i/n` (sweep subcommand).
    pub shard: String,
    /// Schedule through the work-queue runner.
    pub queue: bool,
    /// Worker-pool size for `--queue` (0 = automatic).
    pub workers: usize,
    /// Comma-separated remote endpoints for `--queue` (`host:port,...`);
    /// empty = in-process workers.
    pub endpoints: String,
    /// Per-request transport timeout for `--endpoints`, in milliseconds.
    pub timeout_ms: u64,
    /// Listen address for `eacp serve` (`host:port`; port 0 = ephemeral).
    pub listen: String,
    /// Result-store directory (`--store`; empty = consult `$EACP_STORE`).
    pub store: String,
    /// Ignore any configured result store for this invocation.
    pub no_cache: bool,
    /// Disable the closed-form serve tier: always run the full
    /// Monte-Carlo loop even for replication-invariant cells.
    pub no_analytic: bool,
    /// Recompute and re-record even on a store hit.
    pub refresh: bool,
    /// Retention bound for `store gc`: keep at most this many entries.
    pub max_entries: u64,
    /// Retention bound for `store gc`: keep at most this many bytes.
    pub max_bytes: u64,
    /// Cells to spot-check for `store verify` (0 = all).
    pub sample: u64,
    /// Output path: a directory for `sweep`, a file for
    /// `merge`/`csv`/`bench`.
    pub out: String,
    /// Reduced-replication quick mode (bench subcommand; CI smoke).
    pub quick: bool,
    /// Emit results as JSON.
    pub json: bool,
    /// Print the effective spec instead of running it.
    pub emit_spec: bool,
    /// Positional arguments (e.g. the table number).
    pub positional: Vec<String>,
    /// Flag names the user explicitly passed.
    pub explicit: Vec<String>,
}

impl Default for Options {
    fn default() -> Self {
        Self {
            scheme: "a_d_s".into(),
            util: 0.76,
            lambda: 1.4e-3,
            k: 5,
            deadline: 10_000.0,
            variant: "scp".into(),
            seed: 2006,
            reps: 2_000,
            threads: 0,
            trace: false,
            tasks: String::new(),
            speed: 1.0,
            hyperperiods: 1,
            mc: false,
            sweep: String::new(),
            baseline: String::new(),
            max_regress: 0.30,
            spec: String::new(),
            preset: String::new(),
            shard: String::new(),
            queue: false,
            workers: 0,
            endpoints: String::new(),
            timeout_ms: eacp_spec::DEFAULT_REMOTE_TIMEOUT_MS,
            listen: String::new(),
            store: String::new(),
            no_cache: false,
            no_analytic: false,
            refresh: false,
            max_entries: 0,
            max_bytes: 0,
            sample: 0,
            out: String::new(),
            quick: false,
            json: false,
            emit_spec: false,
            positional: Vec::new(),
            explicit: Vec::new(),
        }
    }
}

impl Options {
    fn has(&self, flag: &str) -> bool {
        self.explicit.iter().any(|f| f == flag)
    }
}

/// Parses flags following the subcommand.
///
/// # Errors
///
/// Returns a message for unknown flags or unparsable values.
pub fn parse_options<I: Iterator<Item = String>>(mut args: I) -> Result<Options, String> {
    let mut o = Options::default();
    while let Some(flag) = args.next() {
        let mut val = |name: &str| -> Result<String, String> {
            args.next()
                .ok_or_else(|| format!("missing value for {name}"))
        };
        match flag.as_str() {
            "--scheme" => o.scheme = val("--scheme")?,
            "--util" => o.util = parse_num(&val("--util")?, "--util")?,
            "--lambda" => o.lambda = parse_num(&val("--lambda")?, "--lambda")?,
            "--k" => o.k = parse_num(&val("--k")?, "--k")? as u32,
            "--deadline" => o.deadline = parse_num(&val("--deadline")?, "--deadline")?,
            "--variant" => o.variant = val("--variant")?,
            "--seed" => o.seed = parse_num(&val("--seed")?, "--seed")? as u64,
            "--reps" => o.reps = parse_num(&val("--reps")?, "--reps")? as u64,
            "--threads" => o.threads = parse_num(&val("--threads")?, "--threads")? as usize,
            "--speed" => o.speed = parse_num(&val("--speed")?, "--speed")?,
            "--hyperperiods" => {
                o.hyperperiods = parse_num(&val("--hyperperiods")?, "--hyperperiods")? as u32
            }
            "--baseline" => o.baseline = val("--baseline")?,
            "--max-regress" => o.max_regress = parse_num(&val("--max-regress")?, "--max-regress")?,
            "--tasks" => o.tasks = val("--tasks")?,
            "--sweep" => o.sweep = val("--sweep")?,
            "--spec" => o.spec = val("--spec")?,
            "--preset" => o.preset = val("--preset")?,
            "--shard" => o.shard = val("--shard")?,
            "--workers" => o.workers = parse_num(&val("--workers")?, "--workers")? as usize,
            "--endpoints" => o.endpoints = val("--endpoints")?,
            "--timeout-ms" => {
                o.timeout_ms = parse_num(&val("--timeout-ms")?, "--timeout-ms")? as u64
            }
            "--listen" => o.listen = val("--listen")?,
            "--store" => o.store = val("--store")?,
            "--max-entries" => {
                o.max_entries = parse_num(&val("--max-entries")?, "--max-entries")? as u64
            }
            "--max-bytes" => o.max_bytes = parse_num(&val("--max-bytes")?, "--max-bytes")? as u64,
            "--sample" => o.sample = parse_num(&val("--sample")?, "--sample")? as u64,
            "--out" => o.out = val("--out")?,
            "--no-cache" => o.no_cache = true,
            "--no-analytic" => o.no_analytic = true,
            "--refresh" => o.refresh = true,
            "--mc" => o.mc = true,
            "--queue" => o.queue = true,
            "--quick" => o.quick = true,
            "--trace" => o.trace = true,
            "--json" => o.json = true,
            "--emit-spec" => o.emit_spec = true,
            other if !other.starts_with("--") => {
                o.positional.push(other.to_owned());
                continue;
            }
            other => return Err(format!("unknown flag {other:?}")),
        }
        o.explicit.push(flag);
    }
    if !["scp", "ccp"].contains(&o.variant.as_str()) {
        return Err(format!("unknown variant {:?} (use scp|ccp)", o.variant));
    }
    if o.has("--workers") && !o.queue {
        return Err("--workers only applies with --queue".to_owned());
    }
    if o.has("--endpoints") && !o.queue {
        return Err("--endpoints only applies with --queue".to_owned());
    }
    if o.has("--endpoints") && o.endpoints.split(',').all(|e| e.trim().is_empty()) {
        return Err("--endpoints needs at least one host:port".to_owned());
    }
    if o.has("--timeout-ms") && !o.has("--endpoints") {
        return Err("--timeout-ms only applies with --endpoints".to_owned());
    }
    if o.no_cache && o.refresh {
        return Err("--no-cache conflicts with --refresh".to_owned());
    }
    if o.no_cache && o.has("--store") {
        return Err("--no-cache conflicts with --store (drop one)".to_owned());
    }
    if o.queue && o.has("--threads") {
        return Err(
            "--threads applies to the default runner; with --queue size the pool \
             with --workers"
                .to_owned(),
        );
    }
    if o.has("--max-regress") {
        if !o.has("--baseline") {
            return Err("--max-regress only applies with --baseline".to_owned());
        }
        // A value >= 1 would make the regression floor non-positive and
        // silently wave every slowdown through.
        if !(o.max_regress > 0.0 && o.max_regress < 1.0) {
            return Err(format!(
                "--max-regress must be a fraction in (0, 1) — e.g. 0.30 for 30% — got {}",
                o.max_regress
            ));
        }
    }
    Ok(o)
}

fn parse_num(s: &str, name: &str) -> Result<f64, String> {
    s.parse::<f64>().map_err(|e| format!("bad {name}: {e}"))
}

/// Builds the point runner `--queue` asks for: an in-process worker pool,
/// or — with `--endpoints` — the remote fleet (leased blocks ship to
/// `eacp serve` processes, wedged leases are reclaimed on a deadline, and
/// the final attempt falls back in-process). Bit-identical either way.
fn queue_runner_of(o: &Options) -> Result<Box<dyn Runner>, String> {
    let q = queue_spec_of(o);
    q.validate().map_err(|e| e.to_string())?;
    let runner = QueueRunner::new(q.workers).with_max_attempts(q.max_attempts);
    if q.endpoints.is_empty() {
        return Ok(Box::new(runner));
    }
    let worker = eacp_exec::RemoteWorker::from_queue_spec(&q);
    let lease_timeout = worker.lease_timeout();
    Ok(Box::new(
        runner.with_worker(worker).with_lease_timeout(lease_timeout),
    ))
}

/// Desugars the `--queue [--workers N] [--endpoints ... [--timeout-ms T]]`
/// flags into the spec's queue section, so `--emit-spec` reproduces the
/// scheduling (and fleet) choice exactly.
fn queue_spec_of(o: &Options) -> eacp_spec::QueueSpec {
    eacp_spec::QueueSpec {
        workers: o.workers,
        endpoints: o
            .endpoints
            .split(',')
            .map(str::trim)
            .filter(|e| !e.is_empty())
            .map(str::to_owned)
            .collect(),
        timeout_ms: o.timeout_ms,
        ..Default::default()
    }
}

fn costs_of(o: &Options) -> CostsSpec {
    if o.variant == "scp" {
        CostsSpec::PaperScp
    } else {
        CostsSpec::PaperCcp
    }
}

/// Resolves the result store for `run`/`mc`/`sweep`: `--store DIR` wins,
/// else `$EACP_STORE`, else no store. `--no-cache` disables both.
///
/// # Errors
///
/// Returns a message for an unopenable store directory, or `--refresh`
/// with no store configured.
fn resolve_store(o: &Options) -> Result<Option<FsBackend>, String> {
    let dir = if !o.store.is_empty() {
        o.store.clone()
    } else if o.no_cache {
        String::new()
    } else {
        // The CLI is outside the audit's R1 determinism scope: resolving
        // operator configuration from the environment is its job.
        #[allow(clippy::disallowed_methods)]
        std::env::var(STORE_ENV_VAR).unwrap_or_default()
    };
    if o.no_cache || dir.is_empty() {
        if o.refresh {
            return Err(format!(
                "--refresh needs a store (--store DIR or ${STORE_ENV_VAR})"
            ));
        }
        return Ok(None);
    }
    FsBackend::open(std::path::Path::new(&dir))
        .map(Some)
        .map_err(|e| e.to_string())
}

/// The store required by `eacp store` subcommands (which make no sense
/// without one).
fn require_store(o: &Options) -> Result<FsBackend, String> {
    resolve_store(o)?
        .ok_or_else(|| format!("store: no store configured (--store DIR or ${STORE_ENV_VAR})"))
}

fn cache_mode(o: &Options) -> CacheMode {
    if o.refresh {
        CacheMode::Refresh
    } else {
        CacheMode::ReadWrite
    }
}

/// One-line cache telemetry appended to `run`/`mc` text output.
fn store_note(cache: CacheOutcome, source: Option<&std::path::Path>) -> String {
    let what = match cache {
        CacheOutcome::Hit => "hit — served from the store",
        CacheOutcome::Miss => "miss — computed and recorded",
        CacheOutcome::Refreshed => "refreshed — recomputed and re-recorded",
    };
    match source {
        Some(p) => format!("store: {what} ({})\n", p.display()),
        None => format!("store: {what}\n"),
    }
}

/// The coverage footer shared by `eacp queue status` (report directories)
/// and `eacp store status --spec` (store cells): covered/missing counts —
/// plus duplicates where the collection can have them — and a readiness
/// verdict.
fn coverage_summary(
    covered: usize,
    total: usize,
    missing: &[usize],
    duplicated: Option<&[usize]>,
    complete_msg: &str,
    incomplete_msg: &str,
) -> String {
    let fmt_indices = |v: &[usize]| {
        if v.is_empty() {
            "none".to_owned()
        } else {
            format!(
                "{:?}{}",
                &v[..v.len().min(8)],
                if v.len() > 8 { ", ..." } else { "" }
            )
        }
    };
    let mut out = format!(
        "covered {covered}/{total} points; missing: {}",
        fmt_indices(missing)
    );
    if let Some(dup) = duplicated {
        out.push_str(&format!("; duplicated: {}", fmt_indices(dup)));
    }
    out.push('\n');
    let complete = missing.is_empty() && duplicated.is_none_or(<[usize]>::is_empty);
    out.push_str("status: ");
    out.push_str(if complete {
        complete_msg
    } else {
        incomplete_msg
    });
    out.push('\n');
    out
}

/// Applies `--lambda` to a spec's fault process. Only the Poisson process
/// has a single rate to override; anything else is a loud error shared by
/// every spec-resolving subcommand.
fn override_lambda(faults: &mut FaultSpec, lambda: f64) -> Result<(), String> {
    match faults {
        FaultSpec::Poisson { lambda: l } => {
            *l = lambda;
            Ok(())
        }
        other => Err(format!(
            "--lambda cannot override a {} fault process",
            other
                .to_json()
                .req("kind")
                .map_or("?", |k| k.as_str().unwrap_or("?"))
        )),
    }
}

/// The policy description named by `--scheme`.
///
/// # Errors
///
/// Returns a message for unknown scheme names.
pub fn policy_spec_of(o: &Options) -> Result<PolicySpec, String> {
    PolicySpec::from_tag(&o.scheme, o.lambda, o.k, 0).map_err(|e| e.to_string())
}

/// Builds the policy named by `--scheme` (the concrete [`PolicyKind`];
/// box it where a `dyn Policy` is required).
///
/// # Errors
///
/// Returns a message for unknown scheme names.
pub fn build_policy(o: &Options) -> Result<PolicyKind, String> {
    policy_spec_of(o)?.build().map_err(|e| e.to_string())
}

/// Resolves the effective [`ExperimentSpec`] for `mc`: load
/// `--spec`/`--preset` if given (flags become overrides), else desugar the
/// flags into a spec.
///
/// # Errors
///
/// Returns a message for unreadable spec files, unknown presets, unknown
/// schemes, or flag overrides incompatible with the loaded spec.
pub fn experiment_spec(o: &Options) -> Result<ExperimentSpec, String> {
    // Monte-Carlo summaries default to the paper's analysis-faithful
    // executor semantics (matching the tables).
    experiment_spec_with(o, ExecSpec::paper())
}

/// [`experiment_spec`] with an explicit executor default for the
/// flag-desugaring path (loaded documents always keep their own executor).
fn experiment_spec_with(o: &Options, flag_executor: ExecSpec) -> Result<ExperimentSpec, String> {
    let mut spec = if !o.spec.is_empty() {
        ExperimentSpec::load(std::path::Path::new(&o.spec)).map_err(|e| e.to_string())?
    } else if !o.preset.is_empty() {
        preset(&o.preset).ok_or_else(|| {
            format!(
                "unknown preset {:?} (known: {})",
                o.preset,
                preset_names().join(", ")
            )
        })?
    } else {
        // Pure flag desugaring: the historical CLI behavior.
        ExperimentSpec {
            name: format!("cli-{}", o.scheme),
            scenario: ScenarioSpec {
                work: WorkSpec::Utilization {
                    utilization: o.util,
                    speed: 1.0,
                    deadline: o.deadline,
                },
                costs: costs_of(o),
                dvs: eacp_spec::DvsSpec::PaperDefault,
                processors: 2,
            },
            faults: FaultSpec::Poisson { lambda: o.lambda },
            policy: policy_spec_of(o)?,
            mc: McSpec {
                replications: o.reps,
                seed: o.seed,
                threads: o.threads,
            },
            executor: flag_executor,
        }
    };

    // Explicit flags override whatever the document said.
    if o.has("--scheme") {
        // Carry the loaded spec's parameters into the new scheme unless
        // the matching flag was also passed — switching the scheme must
        // not silently reset k, λ or the pinned speed to flag defaults.
        let lambda = spec.faults.nominal_lambda().unwrap_or(o.lambda);
        let lambda = if o.has("--lambda") { o.lambda } else { lambda };
        let k = if o.has("--k") {
            o.k
        } else {
            spec.policy.k().unwrap_or(o.k)
        };
        let speed = spec.policy.speed().unwrap_or(0);
        spec.policy =
            PolicySpec::from_tag(&o.scheme, lambda, k, speed).map_err(|e| e.to_string())?;
    }
    if o.has("--util") {
        match &mut spec.scenario.work {
            WorkSpec::Utilization { utilization, .. } => *utilization = o.util,
            WorkSpec::Cycles { .. } => {
                return Err("--util cannot override a spec whose work is cycle-based".to_owned())
            }
        }
    }
    if o.has("--deadline") {
        match &mut spec.scenario.work {
            WorkSpec::Utilization { deadline, .. } | WorkSpec::Cycles { deadline, .. } => {
                *deadline = o.deadline
            }
        }
    }
    if o.has("--variant") {
        spec.scenario.costs = costs_of(o);
    }
    if o.has("--lambda") {
        override_lambda(&mut spec.faults, o.lambda)?;
        spec.policy = spec.policy.with_lambda(o.lambda);
    }
    if o.has("--k") {
        spec.policy = spec.policy.with_k(o.k);
    }
    if o.has("--seed") {
        spec.mc.seed = o.seed;
    }
    if o.has("--reps") {
        spec.mc.replications = o.reps;
    }
    if o.has("--threads") {
        spec.mc.threads = o.threads;
    }
    if o.queue {
        // Recorded in the spec so --emit-spec reproduces the scheduling
        // choice; the summary is bit-identical either way.
        spec.executor = spec.executor.with_queue(queue_spec_of(o));
    }
    spec.validate().map_err(|e| e.to_string())?;
    Ok(spec)
}

/// `eacp run`: one seeded execution, optionally traced.
pub fn cmd_run(o: &Options) -> Result<String, String> {
    // Flag-desugared single runs keep the physical executor semantics
    // (faults during overhead) — the historical behavior; loaded documents
    // keep their own executor. The choice lives in the desugared spec so
    // `--emit-spec` reproduces exactly what this command executes.
    let spec = experiment_spec_with(o, ExecSpec::default())?;
    if o.emit_spec {
        return Ok(spec.to_json_string());
    }
    let store = resolve_store(o)?;
    let scenario = spec.scenario.build().map_err(|e| e.to_string())?;
    let mut policy = spec.policy.build().map_err(|e| e.to_string())?;
    let mut rec = TraceRecorder::new();
    let mut note = String::new();
    let out = match &store {
        // Tracing needs a live execution — the cache can replay the
        // outcome but not the event stream.
        Some(backend) if !o.trace => {
            let cached = run_cached_single(&spec, backend, cache_mode(o), &NoopStoreObserver)
                .map_err(|e| e.to_string())?;
            note = store_note(cached.cache, cached.source.as_deref());
            cached.outcome
        }
        _ => {
            let mut faults = spec.faults.build(spec.mc.seed).map_err(|e| e.to_string())?;
            let options = spec.executor.build().map_err(|e| e.to_string())?;
            let executor = Executor::new(&scenario).with_options(options);
            if o.trace {
                // Tracing is just one Observer on the unified engine path.
                executor.run_observed(&mut policy, &mut faults, &mut rec)
            } else {
                executor.run(&mut policy, &mut faults)
            }
        }
    };
    // Non-Poisson fault processes (burst, phased, ...) have no single λ;
    // show the fault kind instead of a confusing NaN.
    let faults_desc = match spec.faults.nominal_lambda() {
        Some(lambda) => format!("λ={lambda:e}"),
        None => format!(
            "faults={}",
            spec.faults
                .to_json()
                .req("kind")
                .ok()
                .and_then(|k| k.as_str().ok().map(str::to_owned))
                .unwrap_or_else(|| "?".to_owned())
        ),
    };
    let mut s = format!(
        "scheme={} N={:.0} D={:.0} {} k={}\n\
         completed={} timely={} aborted={}\n\
         finish={:.1} energy={:.0} faults={} rollbacks={}\n\
         checkpoints: SCP={} CCP={} CSCP={} fast-fraction={:.2}\n",
        policy.name(),
        scenario.task.work_cycles,
        scenario.task.deadline,
        faults_desc,
        // Report the k the policy actually runs with, not the flag
        // default ("-" for schemes without a fault-tolerance target).
        spec.policy
            .k()
            .map_or_else(|| "-".to_owned(), |k| k.to_string()),
        out.completed,
        out.timely,
        out.aborted,
        out.finish_time,
        out.energy,
        out.faults,
        out.rollbacks,
        out.store_checkpoints,
        out.compare_checkpoints,
        out.compare_store_checkpoints,
        out.fast_fraction(),
    );
    s.push_str(&note);
    if o.trace {
        s.push('\n');
        s.push_str(&rec.render(100));
    }
    Ok(s)
}

/// `eacp mc`: Monte-Carlo summary with confidence interval.
pub fn cmd_mc(o: &Options) -> Result<String, String> {
    let spec = experiment_spec(o)?;
    if o.emit_spec {
        return Ok(spec.to_json_string());
    }
    let mut note = String::new();
    let (summary, report) = match resolve_store(o)? {
        Some(backend) => {
            let run = run_cached_tiered(
                &spec,
                &backend,
                cache_mode(o),
                &NoopStoreObserver,
                !o.no_analytic,
            )
            .map_err(|e| e.to_string())?;
            note = store_note(run.cache, run.report.source.as_deref());
            (run.summary, run.report)
        }
        None => eacp_exec::run_tiered(&spec, !o.no_analytic).map_err(|e| e.to_string())?,
    };
    if report.served == eacp_spec::ServeTier::Analytic {
        note.insert_str(0, "served: analytic (replication-invariant cell)\n");
    }
    if o.json {
        // The report document is byte-identical on hit and miss; cache
        // telemetry stays out of it.
        return Ok(report.to_json().pretty());
    }
    let (lo, hi) = summary.p_timely_ci(1.96);
    Ok(format!(
        "scheme={} reps={}\nP = {:.4} [95% CI {:.4}, {:.4}]\nE(timely) = {:.0}\n\
         E(all) = {:.0}\nfaults/run = {:.2}  rollbacks/run = {:.2}\n\
         checkpoints/run = {:.1}  fast-fraction = {:.3}\naborted = {}  anomalies = {}\n{note}",
        report.policy_name,
        summary.replications,
        summary.p_timely(),
        lo,
        hi,
        summary.mean_energy_timely(),
        summary.energy_all.mean(),
        summary.faults.mean(),
        summary.rollbacks.mean(),
        summary.checkpoints.mean(),
        summary.fast_fraction.mean(),
        summary.aborted,
        summary.anomalies,
    ))
}

/// `eacp sweep`: expand a sweep document and run every grid point.
pub fn cmd_sweep(o: &Options) -> Result<String, String> {
    if o.spec.is_empty() {
        return Err("sweep: --spec sweep.json is required".to_owned());
    }
    // Only base-level Monte-Carlo knobs make sense as overrides on a
    // whole grid; reject experiment-shaping flags instead of silently
    // dropping them (the grid's axes own those).
    for flag in [
        "--scheme",
        "--util",
        "--lambda",
        "--k",
        "--deadline",
        "--variant",
    ] {
        if o.has(flag) {
            return Err(format!(
                "sweep: {flag} cannot override a sweep document — edit the base spec or its axes"
            ));
        }
    }
    let mut sweep = SweepSpec::load(std::path::Path::new(&o.spec)).map_err(|e| e.to_string())?;
    if o.has("--reps") {
        sweep.base.mc.replications = o.reps;
    }
    if o.has("--seed") {
        sweep.base.mc.seed = o.seed;
    }
    if o.has("--threads") {
        sweep.base.mc.threads = o.threads;
    }
    let shard = if o.shard.is_empty() {
        None
    } else {
        Some(ShardId::parse(&o.shard).map_err(|e| e.to_string())?)
    };
    if o.emit_spec {
        let mut specs = sweep.expand().map_err(|e| e.to_string())?;
        if o.queue {
            // Emitted point specs must reproduce the scheduling choice,
            // exactly as `mc --queue --emit-spec` records it.
            for spec in &mut specs {
                spec.executor = spec.executor.clone().with_queue(queue_spec_of(o));
            }
        }
        let range = shard.map_or(0..specs.len(), |s| s.range(specs.len()));
        let docs: Vec<eacp_spec::Json> = specs[range].iter().map(ToJson::to_json).collect();
        return Ok(eacp_spec::Json::Array(docs).pretty());
    }
    let store = resolve_store(o)?;
    let progress = QueueProgress::default();
    let counters = StoreCounters::new();
    let grid = if let Some(backend) = &store {
        // Store-backed sweep: covered cells are served, the rest are
        // scheduled on the chosen runner and recorded — this is what makes
        // an interrupted sweep resumable.
        let runner: Box<dyn Runner> = if o.queue {
            queue_runner_of(o)?
        } else {
            Box::new(LocalRunner::new(sweep.base.mc.threads))
        };
        run_sweep_cached_tiered(
            &sweep,
            shard,
            runner.as_ref(),
            backend,
            cache_mode(o),
            &counters,
            !o.no_analytic,
        )
        .map_err(|e| e.to_string())?
    } else if o.queue && !o.endpoints.is_empty() {
        // Remote fleet: each grid point's canonical blocks fan out across
        // the endpoints through the fleet point-runner.
        let runner = queue_runner_of(o)?;
        run_sweep_tiered(&sweep, shard, runner.as_ref(), !o.no_analytic)
            .map_err(|e| e.to_string())?
    } else if o.queue {
        run_sweep_queued_tiered(
            &sweep,
            shard,
            o.workers,
            eacp_exec::queue::DEFAULT_MAX_ATTEMPTS,
            &progress,
            !o.no_analytic,
        )
        .map_err(|e| e.to_string())?
    } else {
        run_sweep_tiered(
            &sweep,
            shard,
            &LocalRunner::new(sweep.base.mc.threads),
            !o.no_analytic,
        )
        .map_err(|e| e.to_string())?
    };
    let queue_note = if store.is_some() {
        let mut s = format!(
            ", store: {} served, {} computed",
            counters.hits(),
            counters.records()
        );
        if counters.quarantined() > 0 {
            s.push_str(&format!(", {} quarantined", counters.quarantined()));
        }
        s
    } else if o.queue && !o.endpoints.is_empty() {
        let n = queue_spec_of(o).endpoints.len();
        format!(", fleet: {n} endpoint(s)")
    } else if o.queue {
        format!(", queued: {}", progress.render(o.workers))
    } else {
        String::new()
    };
    if !o.out.is_empty() {
        let path = grid
            .save(std::path::Path::new(&o.out))
            .map_err(|e| e.to_string())?;
        return Ok(format!(
            "wrote {} ({} of {} grid points{}{queue_note})\n",
            path.display(),
            grid.points.len(),
            grid.total_points,
            shard.map_or_else(String::new, |s| format!(", shard {s}")),
        ));
    }
    if o.json {
        let docs: Vec<eacp_spec::Json> = grid.points.iter().map(|p| p.report.to_json()).collect();
        return Ok(eacp_spec::Json::Array(docs).pretty());
    }
    let mut out = format!(
        "sweep over {} points ({} replications each{}{queue_note})\n\n{:<44} {:>8} {:>12} {:>10}\n",
        grid.total_points,
        sweep.base.mc.replications,
        shard.map_or_else(String::new, |s| format!(
            ", shard {s}: {} points",
            grid.points.len()
        )),
        "experiment",
        "P",
        "E(timely)",
        "faults"
    );
    for p in &grid.points {
        let r = &p.report;
        out.push_str(&format!(
            "{:<44} {:>8.4} {:>12.0} {:>10.2}\n",
            r.spec.name, r.summary.p_timely, r.summary.energy_timely.mean, r.summary.faults.mean,
        ));
    }
    Ok(out)
}

/// Work-queue telemetry accumulated across the pool's threads; rendered
/// as a one-line note in `eacp sweep --queue` output.
#[derive(Default)]
struct QueueProgress {
    leases: std::sync::atomic::AtomicU64,
    retries: std::sync::atomic::AtomicU64,
    completed: std::sync::atomic::AtomicU64,
}

impl QueueProgress {
    fn render(&self, workers: usize) -> String {
        use std::sync::atomic::Ordering;
        let pool = if workers == 0 {
            "auto-sized pool".to_owned()
        } else {
            format!("{workers}-worker pool")
        };
        format!(
            "{} assignments drained by {pool} ({} leases, {} retries)",
            self.completed.load(Ordering::Relaxed),
            self.leases.load(Ordering::Relaxed),
            self.retries.load(Ordering::Relaxed),
        )
    }
}

impl QueueObserver for QueueProgress {
    fn on_lease(&self, _worker: usize, _index: usize, _attempt: u32, _status: QueueStatus) {
        self.leases
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    }
    fn on_complete(&self, _worker: usize, _index: usize, status: QueueStatus) {
        self.completed.fetch_max(
            status.completed as u64,
            std::sync::atomic::Ordering::Relaxed,
        );
    }
    fn on_retry(
        &self,
        _worker: usize,
        _index: usize,
        _attempt: u32,
        _error: &eacp_spec::SpecError,
        _status: QueueStatus,
    ) {
        self.retries
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    }
}

/// `eacp queue`: work-queue utilities over the result-collection
/// convention. `queue status DIR` reports how far a (possibly still
/// running) distributed sweep has progressed.
pub fn cmd_queue(o: &Options) -> Result<String, String> {
    match o.positional.first().map(String::as_str) {
        Some("status") => {
            let dir = o
                .positional
                .get(1)
                .ok_or("queue status: missing report directory")?;
            let dir = std::path::Path::new(dir);
            // Executive collections produce the same SweepCoverage shape,
            // so both kinds render through one coverage formatter.
            let cov = if dir_has_executive_reports(dir)? {
                executive_coverage_dir(dir).map_err(|e| e.to_string())?
            } else {
                coverage_dir(dir).map_err(|e| e.to_string())?
            };
            let mut out = format!(
                "sweep {:?}: {} grid points{}\n",
                cov.sweep_name,
                cov.total_points,
                cov.shard_count
                    .map_or_else(String::new, |n| format!(", {n} shards declared")),
            );
            for doc in &cov.docs {
                let name = doc.path.file_name().map_or_else(
                    || doc.path.display().to_string(),
                    |n| n.to_string_lossy().into_owned(),
                );
                out.push_str(&format!(
                    "  {name:<28} {:<11} {:>4} point{}\n",
                    doc.shard
                        .map_or_else(|| "full grid".to_owned(), |s| format!("shard {s}")),
                    doc.indices.len(),
                    if doc.indices.len() == 1 { "" } else { "s" },
                ));
            }
            out.push_str(&coverage_summary(
                cov.covered(),
                cov.total_points,
                &cov.missing,
                Some(&cov.duplicated),
                "complete — ready to merge",
                "incomplete — not ready to merge",
            ));
            Ok(out)
        }
        Some(other) => Err(format!(
            "unknown queue subcommand {other:?} (expected: status)"
        )),
        None => Err("queue: missing subcommand (expected: status)".to_owned()),
    }
}

/// `eacp store`: result-store utilities — `status` reports backend health
/// (and, with `--spec sweep.json`, how much of that grid the store
/// covers), `gc` applies a retention policy, `verify` recomputes sampled
/// cells and fails on any byte mismatch with the stored entry.
pub fn cmd_store(o: &Options) -> Result<String, String> {
    let backend = require_store(o)?;
    match o.positional.first().map(String::as_str) {
        Some("status") => {
            let health = backend.health().map_err(|e| e.to_string())?;
            let mut out = format!(
                "store at {}\nentries: {} ({} bytes); quarantined: {}\n",
                health.location, health.entries, health.total_bytes, health.quarantined
            );
            if !o.spec.is_empty() {
                let text =
                    std::fs::read_to_string(&o.spec).map_err(|e| format!("{}: {e}", o.spec))?;
                let json = Json::parse(&text).map_err(|e| format!("{}: {e}", o.spec))?;
                // Cells are keyed by (spec hash, seed, replications), so
                // coverage must be asked about the same Monte-Carlo block
                // the sweep ran with — honor the same overrides. Both
                // sweep kinds produce one StoreCoverage shape, rendered
                // through the shared coverage formatter below.
                let cov = if json_is_executive_sweep(&json) {
                    let mut sweep = ExecutiveSweepSpec::from_json(&json)
                        .map_err(|e| format!("{}: {e}", o.spec))?;
                    if o.has("--reps") {
                        let mut mc = sweep.base.mc_or_default();
                        mc.replications = o.reps;
                        sweep.base.mc = Some(mc);
                    }
                    if o.has("--seed") {
                        sweep.base.seed = o.seed;
                    }
                    executive_store_coverage(&backend, &sweep).map_err(|e| e.to_string())?
                } else {
                    let mut sweep =
                        SweepSpec::from_json(&json).map_err(|e| format!("{}: {e}", o.spec))?;
                    if o.has("--reps") {
                        sweep.base.mc.replications = o.reps;
                    }
                    if o.has("--seed") {
                        sweep.base.mc.seed = o.seed;
                    }
                    store_coverage(&backend, &sweep).map_err(|e| e.to_string())?
                };
                out.push_str(&format!(
                    "sweep {:?}: {} grid points\n",
                    cov.sweep_name, cov.total_points
                ));
                out.push_str(&coverage_summary(
                    cov.covered(),
                    cov.total_points,
                    &cov.missing,
                    None,
                    "complete — a store-backed sweep is served entirely from cache",
                    "incomplete — a store-backed sweep computes the missing points",
                ));
            }
            Ok(out)
        }
        Some("gc") => {
            if !o.has("--max-entries") && !o.has("--max-bytes") {
                return Err(
                    "store gc: set a retention bound (--max-entries N and/or --max-bytes N)"
                        .to_owned(),
                );
            }
            let policy = RetentionPolicy {
                max_entries: o.has("--max-entries").then_some(o.max_entries),
                max_bytes: o.has("--max-bytes").then_some(o.max_bytes),
            };
            let report = backend.evict(&policy).map_err(|e| e.to_string())?;
            Ok(format!(
                "examined {} entries; evicted {} ({} bytes reclaimed); {} remaining\n",
                report.examined, report.evicted, report.reclaimed_bytes, report.remaining
            ))
        }
        Some("verify") => {
            let report = verify_store(&backend, o.sample as usize).map_err(|e| e.to_string())?;
            Ok(format!(
                "verified {} of {} entries: stored bytes match recomputation\n",
                report.checked, report.entries
            ))
        }
        Some(other) => Err(format!(
            "unknown store subcommand {other:?} (expected: status|gc|verify)"
        )),
        None => Err("store: missing subcommand (expected: status|gc|verify)".to_owned()),
    }
}

/// Whether a report directory holds *executive* sweep documents (the
/// embedded sweep base describes a periodic task set) rather than
/// single-task experiment reports. The first document that embeds a
/// sweep decides; merge/coverage then reject any mixed stragglers.
fn dir_has_executive_reports(dir: &std::path::Path) -> Result<bool, String> {
    let paths = eacp_exec::list_report_files(dir).map_err(|e| e.to_string())?;
    for path in &paths {
        let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
        let json = Json::parse(&text).map_err(|e| format!("{}: {e}", path.display()))?;
        if let Some(sweep) = json.get("sweep") {
            return Ok(sweep.get("base").is_some_and(|b| b.get("tasks").is_some()));
        }
    }
    Ok(false)
}

/// Whether a sweep *document* is an executive sweep (base has a task
/// set) rather than a single-task experiment sweep (base has a
/// scenario).
fn json_is_executive_sweep(json: &Json) -> bool {
    json.get("base").is_some_and(|b| b.get("tasks").is_some())
}

/// `eacp merge`: reassemble a directory of shard report documents into the
/// full grid report (printed, or written with `--out`). Handles both
/// single-task and executive sweep collections — the document shape
/// picks the merge path.
pub fn cmd_merge(o: &Options) -> Result<String, String> {
    let dir = o
        .positional
        .first()
        .ok_or("merge: missing report directory")?;
    let dir = std::path::Path::new(dir);
    let (text, points) = if dir_has_executive_reports(dir)? {
        let grid = merge_executive_dir(dir).map_err(|e| e.to_string())?;
        (grid.to_json().pretty(), grid.points.len())
    } else {
        let grid = merge_dir(dir).map_err(|e| e.to_string())?;
        (grid.to_json().pretty(), grid.points.len())
    };
    if o.out.is_empty() {
        return Ok(text);
    }
    std::fs::write(&o.out, &text).map_err(|e| format!("{}: {e}", o.out))?;
    Ok(format!("merged {points} grid points into {}\n", o.out))
}

/// `eacp csv`: render a directory of report documents (grid/shard files
/// from `sweep --out`, or standalone `mc --json` reports) as a CSV matrix
/// with paper-value deltas.
pub fn cmd_csv(o: &Options) -> Result<String, String> {
    let dir = o
        .positional
        .first()
        .ok_or("csv: missing report directory")?;
    let dir = std::path::Path::new(dir);
    let (csv, rows) = if dir_has_executive_reports(dir)? {
        let points = load_executive_points(dir)?;
        (render_executive_csv(&points), points.len())
    } else {
        let rows = load_report_rows(dir)?;
        (
            eacp_exec::csv::render_rows(&rows, &paper_ref_of),
            rows.len(),
        )
    };
    if o.out.is_empty() {
        return Ok(csv);
    }
    std::fs::write(&o.out, &csv).map_err(|e| format!("{}: {e}", o.out))?;
    Ok(format!("wrote {} ({} rows)\n", o.out, rows))
}

/// Loads every executive sweep report document under `dir` into grid
/// points sorted by index — the executive analogue of
/// [`load_report_rows`], with the same loud duplicate-coverage failure.
// The map keys duplicate-detection paths; nothing iterates it (see
// clippy.toml on R1 scope).
#[allow(clippy::disallowed_types)]
fn load_executive_points(dir: &std::path::Path) -> Result<Vec<ExecutivePointReport>, String> {
    let paths = eacp_exec::list_report_files(dir).map_err(|e| e.to_string())?;
    let mut points: Vec<ExecutivePointReport> = Vec::new();
    let mut seen: std::collections::HashMap<usize, std::path::PathBuf> =
        std::collections::HashMap::new();
    for path in &paths {
        let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
        let json = Json::parse(&text).map_err(|e| format!("{}: {e}", path.display()))?;
        let grid = ExecutiveGridReport::from_json(&json).map_err(|e| {
            format!(
                "{}: invalid executive sweep report document: {e}",
                path.display()
            )
        })?;
        for p in grid.points {
            if let Some(first) = seen.insert(p.index, path.clone()) {
                return Err(format!(
                    "{}: grid point {} already covered by {} — merged and \
                     shard documents mixed in one directory?",
                    path.display(),
                    p.index,
                    first.display()
                ));
            }
            points.push(p);
        }
    }
    if points.is_empty() {
        return Err(format!("{}: no report documents found", dir.display()));
    }
    points.sort_by_key(|p| p.index);
    Ok(points)
}

/// Loads every `.json` report document under `dir` into CSV rows: sweep
/// report documents contribute their grid points (sorted by index),
/// standalone run reports follow without an index.
///
/// Uses the same directory-enumeration rule as `eacp merge`
/// ([`eacp_exec::list_report_files`]) and, like merge, fails loudly on a
/// grid point covered twice (e.g. shard documents *and* a merged grid
/// report in the same directory) instead of silently duplicating rows.
// The map keys duplicate-detection paths; nothing iterates it, so hash
// order cannot leak into output (see clippy.toml on R1 scope).
#[allow(clippy::disallowed_types)]
fn load_report_rows(dir: &std::path::Path) -> Result<Vec<(Option<usize>, RunReport)>, String> {
    let paths = eacp_exec::list_report_files(dir).map_err(|e| e.to_string())?;
    let mut indexed: Vec<(usize, RunReport)> = Vec::new();
    let mut seen: std::collections::HashMap<usize, std::path::PathBuf> =
        std::collections::HashMap::new();
    let mut loose: Vec<RunReport> = Vec::new();
    for path in &paths {
        let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
        let json = eacp_spec::Json::parse(&text).map_err(|e| format!("{}: {e}", path.display()))?;
        // Dispatch on the document's shape so a malformed field surfaces
        // its real parse error instead of a generic "not a report".
        if json.get("points").is_some() || json.get("sweep").is_some() {
            let grid = GridReport::from_json(&json)
                .map_err(|e| format!("{}: invalid sweep report document: {e}", path.display()))?;
            for p in grid.points {
                if let Some(first) = seen.insert(p.index, path.clone()) {
                    return Err(format!(
                        "{}: grid point {} already covered by {} — merged and \
                         shard documents mixed in one directory?",
                        path.display(),
                        p.index,
                        first.display()
                    ));
                }
                indexed.push((p.index, p.report));
            }
        } else if json.get("spec").is_some() {
            let report = RunReport::from_json(&json)
                .map_err(|e| format!("{}: invalid run report: {e}", path.display()))?;
            loose.push(report);
        } else {
            return Err(format!(
                "{}: not a sweep report document or a run report",
                path.display()
            ));
        }
    }
    if indexed.is_empty() && loose.is_empty() {
        return Err(format!("{}: no report documents found", dir.display()));
    }
    indexed.sort_by_key(|(i, _)| *i);
    let mut rows: Vec<(Option<usize>, RunReport)> =
        indexed.into_iter().map(|(i, r)| (Some(i), r)).collect();
    rows.extend(loose.into_iter().map(|r| (None, r)));
    Ok(rows)
}

/// The paper's reference values for a report's operating point, where the
/// report matches a transcribed table cell (paper deadline, DMR, paper
/// cost variant, a tabulated `(U, λ)` row, and a scheme column of that
/// table).
fn paper_ref_of(report: &RunReport) -> Option<PaperRef> {
    use eacp_experiments::{SchemeId, TableId, TablePart};
    let spec = &report.spec;
    let (util, util_speed, deadline) = match spec.scenario.work {
        WorkSpec::Utilization {
            utilization,
            speed,
            deadline,
        } => (utilization, speed, deadline),
        WorkSpec::Cycles { .. } => return None,
    };
    if deadline != 10_000.0 || spec.scenario.processors != 2 {
        return None;
    }
    let lambda = spec.faults.nominal_lambda()?;
    let table = match spec.scenario.costs {
        CostsSpec::PaperScp if util_speed == 1.0 => TableId::Table1,
        CostsSpec::PaperScp if util_speed == 2.0 => TableId::Table2,
        CostsSpec::PaperCcp if util_speed == 1.0 => TableId::Table3,
        CostsSpec::PaperCcp if util_speed == 2.0 => TableId::Table4,
        _ => return None,
    };
    let scheme = match (spec.policy.tag(), table) {
        ("poisson", _) => SchemeId::Poisson,
        ("kft", _) => SchemeId::KFaultTolerant,
        ("a_d", _) => SchemeId::AdtDvs,
        ("a_d_s", TableId::Table1 | TableId::Table2) => SchemeId::Proposed,
        ("a_d_c", TableId::Table3 | TableId::Table4) => SchemeId::Proposed,
        _ => return None,
    };
    [TablePart::A, TablePart::B].iter().find_map(|&part| {
        eacp_experiments::paper::paper_cell(table, part, util, lambda).map(|cell| PaperRef {
            p: cell.p_of(scheme),
            e: cell.e_of(scheme),
        })
    })
}

/// `eacp presets`: list the named presets.
pub fn cmd_presets() -> String {
    let mut out = String::from("named presets (eacp mc --preset NAME):\n");
    for name in preset_names() {
        // audit:allow(panic): `preset_names()` and `preset()` are backed by
        // the same static table, so lookup of a listed name cannot fail.
        let spec = preset(name).expect("every listed preset exists");
        let fault_kind = spec
            .faults
            .to_json()
            .req("kind")
            .ok()
            .and_then(|k| k.as_str().ok().map(str::to_owned))
            .unwrap_or_else(|| "?".to_owned());
        out.push_str(&format!(
            "  {:<22} scheme={:<8} faults={}\n",
            name,
            spec.policy.tag(),
            fault_kind,
        ));
    }
    out.push_str("periodic workloads (eacp executive|feasibility --preset NAME):\n");
    for name in executive_preset_names() {
        // audit:allow(panic): same static-table pairing as `preset()` above.
        let spec = executive_preset(name).expect("every listed preset exists");
        out.push_str(&format!(
            "  {:<26} {} task(s), {} hyperperiod(s)\n",
            name,
            spec.tasks.len(),
            spec.hyperperiods,
        ));
    }
    out
}

/// `eacp analyze`: the paper's analysis quantities at the initial planning
/// point.
pub fn cmd_analyze(o: &Options) -> Result<String, String> {
    let costs = costs_of(o).build().map_err(|e| e.to_string())?;
    let dvs = DvsConfig::paper_default();
    let n = o.util * o.deadline;
    let c = costs.cscp_cycles();
    let speed = choose_speed(n, o.deadline, c, o.lambda, &dvs);
    let f = dvs.level(speed).frequency;
    let t1 = estimated_completion_time(n, dvs.level(0).frequency, c, o.lambda);
    let t2 = estimated_completion_time(n, dvs.level(1).frequency, c, o.lambda);
    let (itv, branch) = checkpoint_interval_with_branch(IntervalInputs {
        rd: o.deadline,
        rt: n / f,
        c: c / f,
        rf: o.k as f64,
        lambda: o.lambda,
    });
    let params = RenewalParams::new(
        costs.store_cycles / f,
        costs.compare_cycles / f,
        costs.rollback_cycles / f,
        o.lambda,
    );
    let (m, label) = if o.variant == "scp" {
        (
            num_scp(itv, &params, OptimizeMethod::PaperClosedForm),
            "num_SCP",
        )
    } else {
        (
            num_ccp(itv, &params, OptimizeMethod::PaperClosedForm),
            "num_CCP",
        )
    };
    Ok(format!(
        "task: N = {n:.0} cycles, D = {:.0}, λ = {:e}, k = {}, variant = {}\n\
         t_est(f1) = {t1:.1}   t_est(f2) = {t2:.1}   chosen speed = f{}\n\
         interval() = {itv:.2} time units  (branch: {branch:?})\n\
         {label}(interval) = {m}  →  sub-interval = {:.2}\n",
        o.deadline,
        o.lambda,
        o.k,
        o.variant,
        speed + 1,
        itv / m as f64,
    ))
}

/// `eacp table`: regenerate one paper table (delegates to
/// `eacp-experiments`).
pub fn cmd_table(o: &Options) -> Result<String, String> {
    use eacp_experiments::TableId;
    let which = o
        .positional
        .first()
        .ok_or("table: missing table number (1..4)")?;
    let id = match which.as_str() {
        "1" => TableId::Table1,
        "2" => TableId::Table2,
        "3" => TableId::Table3,
        "4" => TableId::Table4,
        other => return Err(format!("unknown table {other:?}")),
    };
    let result = eacp_experiments::run_table_with(
        id,
        o.reps,
        o.seed,
        ExecSpec::paper().build().map_err(|e| e.to_string())?,
    );
    if o.json {
        return Ok(eacp_experiments::render::to_json(&result));
    }
    let mut out = eacp_experiments::render::to_text(&result);
    out.push('\n');
    out.push_str(&eacp_experiments::compare::render_comparison(&result));
    Ok(out)
}

/// Parses `name:wcet:period[:deadline]` task lists into a [`TaskSetSpec`].
///
/// # Errors
///
/// Returns a message for malformed lists (invalid *values* — zero period,
/// deadline beyond the period — surface later as `SpecError`s when the
/// spec is validated).
pub fn parse_taskset_spec(spec: &str) -> Result<TaskSetSpec, String> {
    let mut tasks = Vec::new();
    for part in spec.split(',').filter(|s| !s.is_empty()) {
        let fields: Vec<&str> = part.split(':').collect();
        if fields.len() < 3 || fields.len() > 4 {
            return Err(format!(
                "task {part:?}: expected name:wcet:period[:deadline]"
            ));
        }
        let wcet: f64 = fields[1]
            .parse()
            .map_err(|e| format!("task {part:?}: bad wcet: {e}"))?;
        let period: u64 = fields[2]
            .parse()
            .map_err(|e| format!("task {part:?}: bad period: {e}"))?;
        let deadline: u64 = match fields.get(3) {
            Some(d) => d
                .parse()
                .map_err(|e| format!("task {part:?}: bad deadline: {e}"))?,
            None => period,
        };
        tasks.push(PeriodicTaskSpec {
            name: fields[0].to_owned(),
            wcet,
            period,
            deadline,
        });
    }
    if tasks.is_empty() {
        return Err("no tasks given".into());
    }
    Ok(TaskSetSpec { tasks })
}

/// Parses `name:wcet:period[:deadline]` task lists into the runtime
/// [`TaskSet`] (the `--tasks` shorthand validated through the spec layer).
///
/// # Errors
///
/// Returns a message for malformed lists or invalid task parameters.
pub fn parse_taskset(spec: &str) -> Result<TaskSet, String> {
    parse_taskset_spec(spec)?.build().map_err(|e| e.to_string())
}

/// Resolves the effective [`ExecutiveSpec`] for `feasibility`/`executive`:
/// load `--spec`/`--preset` if given, else desugar `--tasks` plus flags
/// into a spec. Explicit flags override the loaded document.
///
/// # Errors
///
/// Returns a message when no task source is given, for unreadable spec
/// files, unknown presets/schemes, or invalid parameters.
pub fn executive_spec(o: &Options) -> Result<ExecutiveSpec, String> {
    let mut spec = if !o.spec.is_empty() {
        ExecutiveSpec::load(std::path::Path::new(&o.spec)).map_err(|e| e.to_string())?
    } else if !o.preset.is_empty() {
        executive_preset(&o.preset).ok_or_else(|| {
            format!(
                "unknown executive preset {:?} (known: {})",
                o.preset,
                executive_preset_names().join(", ")
            )
        })?
    } else if !o.tasks.is_empty() {
        let mut spec =
            ExecutiveSpec::new(format!("cli-{}", o.scheme), parse_taskset_spec(&o.tasks)?);
        spec.costs = costs_of(o);
        spec.faults = FaultSpec::Poisson { lambda: o.lambda };
        spec.policy = PolicyAssignment::Shared(policy_spec_of(o)?);
        spec.k = o.k;
        spec.speed = o.speed;
        spec.hyperperiods = o.hyperperiods;
        spec.seed = o.seed;
        spec
    } else {
        return Err(
            "a task set is required: --tasks name:wcet:period[,...], --spec file.json \
             or --preset NAME"
                .to_owned(),
        );
    };

    // Explicit flags override whatever the document said.
    let override_policies = |spec: &mut ExecutiveSpec, f: &dyn Fn(PolicySpec) -> PolicySpec| {
        spec.policy = match spec.policy.clone() {
            PolicyAssignment::Shared(p) => PolicyAssignment::Shared(f(p)),
            PolicyAssignment::PerTask(ps) => {
                PolicyAssignment::PerTask(ps.into_iter().map(f).collect())
            }
        };
    };
    if o.has("--scheme") {
        // Carry the loaded spec's parameters into the new scheme unless
        // the matching flag was also passed — switching the scheme must
        // not silently reset k, λ or the pinned speed to flag defaults.
        // (A per-task assignment collapses to one shared scheme; the
        // policy k and pinned speed carry from the first task's policy.
        // The top-level spec.k stays what it was: it parameterizes the
        // feasibility analysis, not the policies.)
        let lambda = if o.has("--lambda") {
            o.lambda
        } else {
            spec.faults.nominal_lambda().unwrap_or(o.lambda)
        };
        let first_policy = match &spec.policy {
            PolicyAssignment::Shared(p) => Some(p),
            PolicyAssignment::PerTask(ps) => ps.first(),
        };
        let k = if o.has("--k") {
            o.k
        } else {
            first_policy.and_then(PolicySpec::k).unwrap_or(spec.k)
        };
        let speed = first_policy.and_then(PolicySpec::speed).unwrap_or(0);
        spec.policy = PolicyAssignment::Shared(
            PolicySpec::from_tag(&o.scheme, lambda, k, speed).map_err(|e| e.to_string())?,
        );
    }
    if o.has("--variant") {
        spec.costs = costs_of(o);
    }
    if o.has("--lambda") {
        override_lambda(&mut spec.faults, o.lambda)?;
        override_policies(&mut spec, &|p| p.with_lambda(o.lambda));
    }
    if o.has("--k") {
        spec.k = o.k;
        override_policies(&mut spec, &|p| p.with_k(o.k));
    }
    if o.has("--speed") {
        spec.speed = o.speed;
    }
    if o.has("--hyperperiods") {
        spec.hyperperiods = o.hyperperiods;
    }
    if o.has("--seed") {
        spec.seed = o.seed;
    }
    spec.validate().map_err(|e| e.to_string())?;
    Ok(spec)
}

/// `eacp feasibility`: checkpoint-aware EDF/RM analysis of the resolved
/// [`ExecutiveSpec`], plus a per-k sensitivity table over the spec's DVS
/// levels.
pub fn cmd_feasibility(o: &Options) -> Result<String, String> {
    let spec = executive_spec(o)?;
    if o.emit_spec {
        return Ok(spec.to_json_string());
    }
    let set = spec.tasks.build().map_err(|e| e.to_string())?;
    let costs = spec.costs.build().map_err(|e| e.to_string())?;
    let dvs = spec.dvs.build().map_err(|e| e.to_string())?;
    let mut out = String::new();
    for t in set.tasks() {
        out.push_str(&format!(
            "{:<16} N={:<8.0} T={:<8} D={:<8} WCET_k({}) = {:.0}\n",
            t.name,
            t.wcet_cycles,
            t.period,
            t.deadline,
            spec.k,
            k_fault_wcet(t.wcet_cycles, costs.cscp_cycles(), spec.k)
        ));
    }
    let density = edf_density(&set, &costs, spec.k, spec.speed);
    out.push_str(&format!(
        "hyperperiod = {}\nEDF density at f={} : {:.3} → {}\n",
        set.hyperperiod(),
        spec.speed,
        density,
        if density <= 1.0 {
            "feasible"
        } else {
            "INFEASIBLE"
        }
    ));
    match rm_response_times(&set, &costs, spec.k, spec.speed) {
        Some(r) => {
            out.push_str("RM response times:\n");
            for (t, resp) in set.tasks().iter().zip(&r) {
                out.push_str(&format!(
                    "  {:<16} R = {resp:.0} (D = {})\n",
                    t.name, t.deadline
                ));
            }
        }
        None => out.push_str("RM: not schedulable\n"),
    }
    // How much fault tolerance the set can afford: EDF density and the
    // slowest feasible DVS level for every k up to the spec's target.
    out.push_str("k-fault sensitivity (EDF density, minimum feasible DVS level):\n");
    for k in 0..=spec.k {
        let d = edf_density(&set, &costs, k, spec.speed);
        let min_speed = match minimum_feasible_speed(&set, &costs, k, &dvs) {
            Some(idx) => format!("f{}", idx + 1),
            None => "infeasible at every level".to_owned(),
        };
        out.push_str(&format!(
            "  k={k}: density(f={}) = {d:.3}, min level = {min_speed}\n",
            spec.speed
        ));
    }
    Ok(out)
}

/// `eacp executive`: simulate the resolved [`ExecutiveSpec`] over N
/// hyperperiods of non-preemptive EDF and report per-task deadline
/// misses, energy and checkpoint totals. `--mc` runs N seeded horizons
/// through the replication engine instead ([`cmd_executive_mc`]);
/// `--sweep grid.json` expands an executive sweep document
/// ([`cmd_executive_sweep`]).
pub fn cmd_executive(o: &Options) -> Result<String, String> {
    if o.has("--endpoints") {
        // The remote protocol ships spec-built replication jobs; executive
        // horizons run in-process only (their queue leases whole points).
        return Err("--endpoints is not supported for executive workloads".to_owned());
    }
    if !o.sweep.is_empty() {
        return cmd_executive_sweep(o);
    }
    if o.mc {
        return cmd_executive_mc(o);
    }
    let spec = executive_spec(o)?;
    if o.emit_spec {
        return Ok(spec.to_json_string());
    }
    let (_, report) = eacp_exec::run_executive(&spec).map_err(|e| e.to_string())?;
    if o.json {
        return Ok(report.to_json_string());
    }
    let s = &report.summary;
    let mut out = format!(
        "executive {}: {} task(s), hyperperiod {} × {} = horizon {:.0}\n\
         jobs={} misses={} (ratio {:.3}) energy={:.0}\n\
         faults={} rollbacks={} checkpoints: SCP={} CCP={} CSCP={}\n",
        report.spec.name,
        report.tasks.len(),
        s.hyperperiod,
        report.spec.hyperperiods,
        s.horizon,
        s.jobs,
        s.deadline_misses,
        s.miss_ratio,
        s.total_energy,
        s.faults,
        s.rollbacks,
        s.checkpoints.store,
        s.checkpoints.compare,
        s.checkpoints.compare_store,
    );
    for (t, policy) in report.tasks.iter().zip(&report.policy_names) {
        out.push_str(&format!(
            "  {:<20} {:<6} {:>3} jobs  {:>3} misses  E={:<10.0} faults={:<4} worst R={:.0}\n",
            t.name, policy, t.jobs, t.deadline_misses, t.energy, t.faults, t.worst_response,
        ));
    }
    Ok(out)
}

/// `eacp executive --mc`: Monte-Carlo over seeded executive horizons —
/// replication `i` runs one whole hyperperiod horizon with
/// `replication_seed(spec.seed, i)` and the per-horizon observations are
/// folded into a mergeable [`eacp_exec::ExecutiveSummary`].
///
/// The Monte-Carlo flags (`--reps`, `--threads`, `--queue --workers`)
/// are folded into the spec's `mc` section, so `--emit-spec` reproduces
/// exactly what this command executes; with a store configured the cell
/// is served byte-identical to recomputation.
fn cmd_executive_mc(o: &Options) -> Result<String, String> {
    let mut spec = executive_spec(o)?;
    let mut mc = spec.mc_or_default();
    if o.has("--reps") {
        mc.replications = o.reps;
    }
    if o.has("--threads") {
        mc.threads = o.threads;
    }
    if o.queue {
        mc.queue = Some(eacp_spec::QueueSpec {
            workers: o.workers,
            ..Default::default()
        });
    }
    spec.mc = Some(mc);
    spec.validate().map_err(|e| e.to_string())?;
    if o.emit_spec {
        return Ok(spec.to_json_string());
    }
    let mut note = String::new();
    let report = match resolve_store(o)? {
        Some(backend) => {
            let run = run_executive_cached(&spec, &backend, cache_mode(o), &NoopStoreObserver)
                .map_err(|e| e.to_string())?;
            note = store_note(run.cache, run.source.as_deref());
            run.report
        }
        None => {
            // Same dispatch as the single-task path: an mc.queue section
            // picks the work-queue runner, result-neutral by construction.
            let mc = spec.mc_or_default();
            let runner: Box<dyn Runner> = match mc.queue {
                Some(q) => Box::new(QueueRunner::new(q.workers).with_max_attempts(q.max_attempts)),
                None => Box::new(LocalRunner::new(mc.threads)),
            };
            run_executive_point(runner.as_ref(), &spec).map_err(|e| e.to_string())?
        }
    };
    if o.json {
        // Byte-identical on hit and miss; cache telemetry stays out.
        return Ok(report.to_json().pretty());
    }
    let s = &report.summary;
    let sd = |stats: &eacp_numerics::OnlineStats| stats.population_variance().sqrt();
    let horizons = s.horizons.max(1) as f64;
    let mut out = format!(
        "executive mc {}: {} seeded horizons × {} hyperperiod(s), {} task(s)\n\
         miss ratio = {:.4} (sd {:.4})  E(horizon) = {:.0} (sd {:.0})\n\
         jobs/horizon = {:.1}  faults/horizon = {:.2}  rollbacks/horizon = {:.2}\n\
         checkpoints/horizon: SCP={:.1} CCP={:.1} CSCP={:.1}\n",
        report.spec.name,
        s.horizons,
        report.spec.hyperperiods,
        report.spec.tasks.len(),
        s.mean_miss_ratio(),
        sd(&s.miss_ratio),
        s.mean_energy(),
        sd(&s.energy),
        s.jobs as f64 / horizons,
        s.horizon_faults.mean(),
        s.horizon_rollbacks.mean(),
        s.checkpoints.store as f64 / horizons,
        s.checkpoints.compare as f64 / horizons,
        s.checkpoints.compare_store as f64 / horizons,
    );
    for ((task, agg), policy) in report
        .spec
        .tasks
        .tasks
        .iter()
        .zip(&s.per_task)
        .zip(&report.policy_names)
    {
        out.push_str(&format!(
            "  {:<20} {:<6} {:>6} jobs  {:>4} misses  E={:<12.0} faults={:<6} worst R={:.0}\n",
            task.name,
            policy,
            agg.jobs,
            agg.deadline_misses,
            agg.energy,
            agg.faults,
            agg.worst_response,
        ));
    }
    out.push_str(&note);
    Ok(out)
}

/// `eacp executive --sweep grid.json`: expand an
/// [`ExecutiveSweepSpec`] and run every grid point (or one `--shard i/n`
/// of it) as an executive Monte-Carlo, with the same resumable-store and
/// sharded-collection workflow as the single-task `eacp sweep`.
fn cmd_executive_sweep(o: &Options) -> Result<String, String> {
    if !o.spec.is_empty() || !o.preset.is_empty() || !o.tasks.is_empty() {
        return Err(
            "executive --sweep: the sweep document embeds its base spec — drop \
             --spec/--preset/--tasks"
                .to_owned(),
        );
    }
    // Grid axes own the experiment shape; only base-level Monte-Carlo
    // knobs make sense as overrides (mirrors `eacp sweep`).
    for flag in [
        "--scheme",
        "--lambda",
        "--k",
        "--hyperperiods",
        "--speed",
        "--variant",
    ] {
        if o.has(flag) {
            return Err(format!(
                "executive --sweep: {flag} cannot override a sweep document — edit the \
                 base spec or its axes"
            ));
        }
    }
    let mut sweep =
        ExecutiveSweepSpec::load(std::path::Path::new(&o.sweep)).map_err(|e| e.to_string())?;
    if o.has("--reps") || o.has("--threads") {
        let mut mc = sweep.base.mc_or_default();
        if o.has("--reps") {
            mc.replications = o.reps;
        }
        if o.has("--threads") {
            mc.threads = o.threads;
        }
        sweep.base.mc = Some(mc);
    }
    if o.has("--seed") {
        sweep.base.seed = o.seed;
    }
    let shard = if o.shard.is_empty() {
        None
    } else {
        Some(ShardId::parse(&o.shard).map_err(|e| e.to_string())?)
    };
    let base_mc = sweep.base.mc_or_default();
    if o.emit_spec {
        let mut specs = sweep.expand().map_err(|e| e.to_string())?;
        if o.queue {
            // Emitted point specs must reproduce the scheduling choice.
            for spec in &mut specs {
                let mut mc = spec.mc_or_default();
                mc.queue = Some(eacp_spec::QueueSpec {
                    workers: o.workers,
                    ..Default::default()
                });
                spec.mc = Some(mc);
            }
        }
        let range = shard.map_or(0..specs.len(), |s| s.range(specs.len()));
        let docs: Vec<Json> = specs[range].iter().map(ToJson::to_json).collect();
        return Ok(Json::Array(docs).pretty());
    }
    let store = resolve_store(o)?;
    let counters = StoreCounters::new();
    let runner: Box<dyn Runner> = if o.queue {
        Box::new(QueueRunner::new(o.workers))
    } else {
        Box::new(LocalRunner::new(base_mc.threads))
    };
    let grid = if let Some(backend) = &store {
        run_executive_sweep_cached(
            &sweep,
            shard,
            runner.as_ref(),
            backend,
            cache_mode(o),
            &counters,
        )
        .map_err(|e| e.to_string())?
    } else {
        run_executive_sweep(&sweep, shard, runner.as_ref()).map_err(|e| e.to_string())?
    };
    let queue_note = if store.is_some() {
        let mut s = format!(
            ", store: {} served, {} computed",
            counters.hits(),
            counters.records()
        );
        if counters.quarantined() > 0 {
            s.push_str(&format!(", {} quarantined", counters.quarantined()));
        }
        s
    } else {
        String::new()
    };
    if !o.out.is_empty() {
        let path = grid
            .save(std::path::Path::new(&o.out))
            .map_err(|e| e.to_string())?;
        return Ok(format!(
            "wrote {} ({} of {} grid points{}{queue_note})\n",
            path.display(),
            grid.points.len(),
            grid.total_points,
            shard.map_or_else(String::new, |s| format!(", shard {s}")),
        ));
    }
    if o.json {
        let docs: Vec<Json> = grid.points.iter().map(|p| p.report.to_json()).collect();
        return Ok(Json::Array(docs).pretty());
    }
    let mut out = format!(
        "executive sweep over {} points ({} seeded horizons each{}{queue_note})\n\n\
         {:<44} {:>10} {:>12} {:>10}\n",
        grid.total_points,
        base_mc.replications,
        shard.map_or_else(String::new, |s| format!(
            ", shard {s}: {} points",
            grid.points.len()
        )),
        "experiment",
        "miss",
        "E(horizon)",
        "faults"
    );
    for p in &grid.points {
        let r = &p.report;
        out.push_str(&format!(
            "{:<44} {:>10.4} {:>12.0} {:>10.2}\n",
            r.spec.name,
            r.summary.mean_miss_ratio(),
            r.summary.mean_energy(),
            r.summary.horizon_faults.mean(),
        ));
    }
    Ok(out)
}

/// `eacp bench`: measured throughput telemetry for the replication hot
/// path, written as a `BENCH_simulator.json` document.
///
/// Runs the paper-nominal job (10,000 replications; 500 with `--quick`)
/// twice — once on the pooled/monomorphized spec path, once on the
/// boxed-factory escape hatch ([`Job::from_spec_boxed`]: per-replication
/// `Box<dyn ...>`, virtual dispatch) — plus one sweep grid cell, and
/// reports wall time and replications/second for each. The two runs
/// double as a live sanity check: their summaries must be bit-identical
/// or the bench fails.
///
/// Note the boxed run still shares every *engine-level* optimization
/// (pooled scratch, the integer-argmin `num_SCP`/`num_CCP`, inlined
/// sampling), so `speedup_pooled_vs_boxed` isolates only the dispatch +
/// per-replication-allocation cost. Cross-commit before/after comparisons
/// come from tracking `pooled.reps_per_s` over the artifact trajectory,
/// not from that ratio.
///
/// # Errors
///
/// Returns a message on invalid options, runner failures, a pooled/boxed
/// summary mismatch, or an unwritable output path.
// Timing the runners is the command's purpose; the CLI is outside the R1
// determinism scope (see clippy.toml and crates/audit).
#[allow(clippy::disallowed_types)]
pub fn cmd_bench(o: &Options) -> Result<String, String> {
    use std::time::Instant;

    let reps = if o.has("--reps") {
        o.reps
    } else if o.quick {
        500
    } else {
        10_000
    };
    let mut spec = ExperimentSpec::paper_nominal();
    spec.name = "bench-paper-nominal".into();
    spec.mc = McSpec {
        replications: reps,
        seed: o.seed,
        threads: o.threads,
    };

    let pooled_job = Job::from_spec(&spec).map_err(|e| e.to_string())?;
    let boxed_job = Job::from_spec_boxed(&spec).map_err(|e| e.to_string())?;

    let runner = LocalRunner::new(o.threads);
    // Best-of-K wall time after one discarded warmup repetition: the
    // warmup faults in code pages, branch predictors and the allocator so
    // the first timed repetition isn't structurally the slowest, and
    // best-of-K rides out scheduler noise without a statistics engine.
    // Quick mode times once when it only feeds a CI artifact — but a
    // --baseline comparison is a comparison, so it always gets the
    // best-of-3 treatment.
    let iterations = if o.quick && o.baseline.is_empty() {
        1
    } else {
        3
    };
    let best_of = |mut timed: Box<dyn FnMut() -> Result<(f64, Summary), String> + '_>|
     -> Result<(f64, Summary), String> {
        timed()?; // warmup, discarded
        let mut best = f64::INFINITY;
        let mut summary = None;
        for _ in 0..iterations {
            let (wall_s, s) = timed()?;
            best = best.min(wall_s);
            summary = Some(s);
        }
        summary
            .map(|s| (best, s))
            .ok_or_else(|| "bench ran zero iterations".to_owned())
    };
    let time_job = |job: &Job| -> Result<(f64, Summary), String> {
        best_of(Box::new(|| {
            let started = Instant::now();
            let s = runner.run(job).map_err(|e| e.to_string())?;
            Ok((started.elapsed().as_secs_f64(), s))
        }))
    };

    let (pooled_s, pooled_summary) = time_job(&pooled_job)?;
    let (boxed_s, boxed_summary) = time_job(&boxed_job)?;
    if pooled_summary != boxed_summary {
        return Err(
            "bench sanity check failed: pooled and boxed paths produced different summaries"
                .to_owned(),
        );
    }

    // A replanning-dominated cell: 10x the nominal fault rate makes the
    // adaptive policies recompute their checkpoint plan constantly, so
    // this section tracks the replan/memoization path the nominal cell
    // barely exercises. Fewer replications keep the wall time bounded —
    // the recorded number is reps/s, so the count doesn't skew it.
    let hl_reps = (reps / 10).max(100);
    let mut hl_spec = ExperimentSpec::paper_nominal();
    hl_spec.name = "bench-high-lambda".into();
    hl_spec.faults = FaultSpec::Poisson { lambda: 1.4e-2 };
    hl_spec.mc = McSpec {
        replications: hl_reps,
        seed: o.seed,
        threads: o.threads,
    };
    let hl_job = Job::from_spec(&hl_spec).map_err(|e| e.to_string())?;
    let (hl_s, _hl_summary) = time_job(&hl_job)?;

    // The work-queue scheduler on the same nominal job: tracks the
    // lease/drain orchestration overhead relative to the plain runner.
    // The run doubles as a live bit-identity check across schedulers.
    let queue_runner = QueueRunner::new(o.workers);
    let (queue_s, queue_summary) = best_of(Box::new(|| {
        let started = Instant::now();
        let s = queue_runner.run(&pooled_job).map_err(|e| e.to_string())?;
        Ok((started.elapsed().as_secs_f64(), s))
    }))?;
    if queue_summary != pooled_summary {
        return Err(
            "bench sanity check failed: queue and local schedulers produced different summaries"
                .to_owned(),
        );
    }

    // The remote fleet on the same nominal job: two in-process block
    // servers behind the real TCP transport, so the section prices the
    // full spec-serialization + framing + loopback-socket overhead per
    // block — the saturation telemetry for sizing a fleet. The run
    // doubles as a live bit-identity check across execution locations.
    let fleet_a = eacp_exec::RemoteServer::bind("127.0.0.1:0").map_err(|e| e.to_string())?;
    let fleet_b = eacp_exec::RemoteServer::bind("127.0.0.1:0").map_err(|e| e.to_string())?;
    let fleet_endpoints = 2usize;
    let fleet_worker = eacp_exec::RemoteWorker::new(
        vec![fleet_a.endpoint().to_owned(), fleet_b.endpoint().to_owned()],
        eacp_spec::DEFAULT_REMOTE_TIMEOUT_MS,
    )
    .with_fallback_attempt(eacp_exec::queue::DEFAULT_MAX_ATTEMPTS);
    let fleet_lease_timeout = fleet_worker.lease_timeout();
    let fleet_runner = QueueRunner::new(o.workers)
        .with_worker(fleet_worker)
        .with_lease_timeout(fleet_lease_timeout);
    let (remote_s, remote_summary) = best_of(Box::new(|| {
        let started = Instant::now();
        let s = fleet_runner.run(&pooled_job).map_err(|e| e.to_string())?;
        Ok((started.elapsed().as_secs_f64(), s))
    }))?;
    if remote_summary != pooled_summary {
        return Err(
            "bench sanity check failed: remote fleet and local runner produced different summaries"
                .to_owned(),
        );
    }
    fleet_a.shutdown();
    fleet_b.shutdown();

    // One sweep grid cell through the sweep executor, so the telemetry
    // also tracks the per-point orchestration overhead.
    let mut sweep_base = spec.clone();
    sweep_base.name = "bench-sweep-cell".into();
    let lambda = sweep_base.faults.nominal_lambda().unwrap_or(1.4e-3);
    let sweep = SweepSpec {
        base: sweep_base,
        axes: vec![SweepAxis::Lambda(vec![lambda])],
    };
    let mut sweep_s = f64::INFINITY;
    let mut sweep_points = 0;
    for i in 0..=iterations {
        let started = Instant::now();
        let grid = run_sweep(&sweep, None, o.threads).map_err(|e| e.to_string())?;
        if i > 0 {
            sweep_s = sweep_s.min(started.elapsed().as_secs_f64());
        }
        sweep_points = grid.points.len();
    }
    let sweep_reps = sweep_points as u64 * reps;

    // Result-store round-trip on the same cell: a cold miss pays compute
    // plus record, a warm hit replays the persisted summary. Each
    // repetition gets a fresh store so every cold is a true miss.
    let mut cold_s = f64::INFINITY;
    let mut warm_s = f64::INFINITY;
    for i in 0..=iterations {
        let store = MemBackend::new();
        let started = Instant::now();
        let cold = run_cached(&spec, &store, CacheMode::ReadWrite, &NoopStoreObserver)
            .map_err(|e| e.to_string())?;
        let cold_rep_s = started.elapsed().as_secs_f64();
        let started = Instant::now();
        let warm = run_cached(&spec, &store, CacheMode::ReadWrite, &NoopStoreObserver)
            .map_err(|e| e.to_string())?;
        let warm_rep_s = started.elapsed().as_secs_f64();
        if cold.cache != CacheOutcome::Miss
            || warm.cache != CacheOutcome::Hit
            || warm.summary != pooled_summary
        {
            return Err(
                "bench sanity check failed: store hit diverged from the computed summary"
                    .to_owned(),
            );
        }
        if i > 0 {
            cold_s = cold_s.min(cold_rep_s);
            warm_s = warm_s.min(warm_rep_s);
        }
    }

    // Executive horizon throughput over the avionics-trio workload
    // (specs/avionics-trio.json ships the same document): the replication
    // engine pushed through the Workload seam, timed single- and
    // multi-threaded. The two runs double as a live bit-identity check.
    let exec_horizons = if o.has("--reps") {
        reps.min(200)
    } else if o.quick {
        50
    } else {
        200
    };
    let mut exec_spec =
        executive_preset("avionics-trio").ok_or("bench: missing avionics-trio preset")?;
    exec_spec.name = "bench-executive".into();
    exec_spec.seed = o.seed;
    exec_spec.mc = Some(ExecutiveMcSpec {
        replications: exec_horizons,
        threads: 1,
        queue: None,
    });
    let exec_job = ExecutiveJob::from_spec(&exec_spec).map_err(|e| e.to_string())?;
    let time_executive =
        |runner: &LocalRunner| -> Result<(f64, eacp_exec::ExecutiveSummary), String> {
            runner.run_executive(&exec_job).map_err(|e| e.to_string())?; // warmup
            let mut best = f64::INFINITY;
            let mut summary = None;
            for _ in 0..iterations {
                let started = Instant::now();
                let s = runner.run_executive(&exec_job).map_err(|e| e.to_string())?;
                best = best.min(started.elapsed().as_secs_f64());
                summary = Some(s);
            }
            summary
                .map(|s| (best, s))
                .ok_or_else(|| "bench ran zero iterations".to_owned())
        };
    let threads = if o.threads == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        o.threads
    };
    let (exec_single_s, exec_single) = time_executive(&LocalRunner::new(1))?;
    // A second, threaded run is only a *multi*-thread measurement when the
    // host can actually run more than one worker; on a single-core host
    // the section is omitted instead of recording a mislabeled repeat of
    // the single-thread number. When it runs, it doubles as a live
    // bit-identity check across thread counts.
    let exec_multi = if threads > 1 {
        let (exec_multi_s, exec_multi) = time_executive(&LocalRunner::new(threads))?;
        if exec_single != exec_multi {
            return Err(
                "bench sanity check failed: executive summaries diverged across thread counts"
                    .to_owned(),
            );
        }
        Some(exec_multi_s)
    } else {
        None
    };
    let section = |reps: u64, wall_s: f64| {
        Json::obj([
            ("wall_s", wall_s.into()),
            ("reps_per_s", (reps as f64 / wall_s.max(1e-12)).into()),
        ])
    };
    let speedup = boxed_s / pooled_s.max(1e-12);
    let mut executive_fields = vec![
        ("job", exec_spec.name.as_str().into()),
        ("horizons", exec_horizons.into()),
        (
            "single_thread",
            Json::obj([
                ("wall_s", exec_single_s.into()),
                (
                    "horizons_per_s",
                    (exec_horizons as f64 / exec_single_s.max(1e-12)).into(),
                ),
            ]),
        ),
    ];
    if let Some(exec_multi_s) = exec_multi {
        executive_fields.push((
            "multi_thread",
            Json::obj([
                ("threads", threads.into()),
                ("wall_s", exec_multi_s.into()),
                (
                    "horizons_per_s",
                    (exec_horizons as f64 / exec_multi_s.max(1e-12)).into(),
                ),
            ]),
        ));
    }
    let doc = Json::obj([
        ("bench", "simulator".into()),
        ("mode", if o.quick { "quick" } else { "full" }.into()),
        ("job", spec.name.as_str().into()),
        ("replications", reps.into()),
        ("threads", threads.into()),
        ("pooled", section(reps, pooled_s)),
        ("boxed_baseline", section(reps, boxed_s)),
        ("speedup_pooled_vs_boxed", speedup.into()),
        (
            "high_lambda",
            Json::obj([
                ("lambda", 1.4e-2.into()),
                ("replications", hl_reps.into()),
                ("wall_s", hl_s.into()),
                ("reps_per_s", (hl_reps as f64 / hl_s.max(1e-12)).into()),
            ]),
        ),
        (
            "queue",
            Json::obj([
                ("workers", o.workers.into()),
                ("wall_s", queue_s.into()),
                ("reps_per_s", (reps as f64 / queue_s.max(1e-12)).into()),
            ]),
        ),
        (
            "remote",
            Json::obj([
                ("endpoints", fleet_endpoints.into()),
                ("workers", o.workers.into()),
                ("wall_s", remote_s.into()),
                ("reps_per_s", (reps as f64 / remote_s.max(1e-12)).into()),
            ]),
        ),
        (
            "sweep_cell",
            Json::obj([
                ("points", sweep_points.into()),
                ("replications", sweep_reps.into()),
                ("wall_s", sweep_s.into()),
                (
                    "reps_per_s",
                    (sweep_reps as f64 / sweep_s.max(1e-12)).into(),
                ),
            ]),
        ),
        (
            "store",
            Json::obj([
                ("cold_miss", section(reps, cold_s)),
                ("warm_hit", section(reps, warm_s)),
                ("hit_speedup", (cold_s / warm_s.max(1e-12)).into()),
            ]),
        ),
        ("executive", Json::obj(executive_fields)),
    ]);

    let path = if o.out.is_empty() {
        "BENCH_simulator.json"
    } else {
        o.out.as_str()
    };
    std::fs::write(path, doc.pretty()).map_err(|e| format!("{path}: {e}"))?;

    let exec_multi_note = match exec_multi {
        Some(exec_multi_s) => format!(
            ", {threads} thread(s) {exec_multi_s:.3} s ({:.0}/s)",
            exec_horizons as f64 / exec_multi_s.max(1e-12),
        ),
        None => " (single-core host: threaded section omitted)".to_owned(),
    };
    let mut out = format!(
        "bench simulator: {reps} replications on {threads} thread(s)\n\
         pooled  : {pooled_s:.3} s  ({:.0} reps/s)\n\
         boxed   : {boxed_s:.3} s  ({:.0} reps/s)\n\
         speedup : {speedup:.2}x\n\
         high-λ  : {hl_reps} reps at λ=1.4e-2 in {hl_s:.3} s ({:.0} reps/s)\n\
         queue   : {queue_s:.3} s  ({:.0} reps/s)\n\
         remote  : {fleet_endpoints} endpoint(s) in {remote_s:.3} s  ({:.0} reps/s)\n\
         sweep   : {sweep_points} point(s) in {sweep_s:.3} s\n\
         store   : cold {cold_s:.3} s, warm hit {:.2} ms ({:.0}x)\n\
         executive: {exec_horizons} horizons — 1 thread {exec_single_s:.3} s \
         ({:.0}/s){exec_multi_note}\n\
         wrote {path}",
        reps as f64 / pooled_s.max(1e-12),
        reps as f64 / boxed_s.max(1e-12),
        hl_reps as f64 / hl_s.max(1e-12),
        reps as f64 / queue_s.max(1e-12),
        reps as f64 / remote_s.max(1e-12),
        warm_s * 1e3,
        cold_s / warm_s.max(1e-12),
        exec_horizons as f64 / exec_single_s.max(1e-12),
    );
    if !o.baseline.is_empty() {
        out.push('\n');
        out.push_str(&check_bench_baseline(
            &o.baseline,
            reps as f64 / pooled_s.max(1e-12),
            exec_horizons as f64 / exec_single_s.max(1e-12),
            hl_reps as f64 / hl_s.max(1e-12),
            reps as f64 / queue_s.max(1e-12),
            reps as f64 / remote_s.max(1e-12),
            o.max_regress,
        )?);
    }
    Ok(out)
}

/// Compares the measured pooled replications/sec against a tracked
/// baseline document, failing on a regression beyond `max_regress`
/// (a fraction: 0.30 tolerates a 30% slowdown — headroom for
/// runner-to-runner noise; the tracked number is what CI pins).
///
/// # Errors
///
/// Returns a message for an unreadable/invalid baseline document or a
/// replications/sec regression beyond the tolerance.
fn check_bench_baseline(
    path: &str,
    pooled_reps_per_s: f64,
    exec_horizons_per_s: f64,
    high_lambda_reps_per_s: f64,
    queue_reps_per_s: f64,
    remote_reps_per_s: f64,
    max_regress: f64,
) -> Result<String, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("baseline {path}: {e}"))?;
    let doc = Json::parse(&text).map_err(|e| format!("baseline {path}: {e}"))?;
    let baseline = doc
        .req("pooled")
        .and_then(|p| p.req("reps_per_s"))
        .and_then(Json::as_f64)
        .map_err(|e| format!("baseline {path}: {e}"))?;
    let floor = baseline * (1.0 - max_regress);
    let ratio = pooled_reps_per_s / baseline.max(1e-12);
    if pooled_reps_per_s < floor {
        return Err(format!(
            "perf regression: pooled {pooled_reps_per_s:.0} reps/s is {:.1}% below the \
             baseline {baseline:.0} reps/s in {path} (tolerance {:.0}%)",
            (1.0 - ratio) * 100.0,
            max_regress * 100.0,
        ));
    }
    let mut out = format!(
        "baseline check ok: pooled {pooled_reps_per_s:.0} reps/s vs {baseline:.0} baseline \
         ({:+.1}%, tolerance -{:.0}%)",
        (ratio - 1.0) * 100.0,
        max_regress * 100.0,
    );
    // The executive section gates too when the baseline records one
    // (older baseline documents without it still pass the pooled gate).
    if let Ok(exec_base) = doc
        .req("executive")
        .and_then(|e| e.req("single_thread"))
        .and_then(|s| s.req("horizons_per_s"))
        .and_then(Json::as_f64)
    {
        let exec_ratio = exec_horizons_per_s / exec_base.max(1e-12);
        if exec_horizons_per_s < exec_base * (1.0 - max_regress) {
            return Err(format!(
                "perf regression: executive {exec_horizons_per_s:.0} horizons/s is {:.1}% \
                 below the baseline {exec_base:.0} horizons/s in {path} (tolerance {:.0}%)",
                (1.0 - exec_ratio) * 100.0,
                max_regress * 100.0,
            ));
        }
        out.push_str(&format!(
            "\nbaseline check ok: executive {exec_horizons_per_s:.0} horizons/s vs \
             {exec_base:.0} baseline ({:+.1}%, tolerance -{:.0}%)",
            (exec_ratio - 1.0) * 100.0,
            max_regress * 100.0,
        ));
    }
    // The replanning-dominated and queue-scheduler sections gate the same
    // way — optional in the baseline so older documents keep passing.
    for (label, measured, section) in [
        ("high-lambda", high_lambda_reps_per_s, "high_lambda"),
        ("queue", queue_reps_per_s, "queue"),
        ("remote", remote_reps_per_s, "remote"),
    ] {
        if let Ok(base) = doc
            .req(section)
            .and_then(|s| s.req("reps_per_s"))
            .and_then(Json::as_f64)
        {
            let ratio = measured / base.max(1e-12);
            if measured < base * (1.0 - max_regress) {
                return Err(format!(
                    "perf regression: {label} {measured:.0} reps/s is {:.1}% below the \
                     baseline {base:.0} reps/s in {path} (tolerance {:.0}%)",
                    (1.0 - ratio) * 100.0,
                    max_regress * 100.0,
                ));
            }
            out.push_str(&format!(
                "\nbaseline check ok: {label} {measured:.0} reps/s vs {base:.0} baseline \
                 ({:+.1}%, tolerance -{:.0}%)",
                (ratio - 1.0) * 100.0,
                max_regress * 100.0,
            ));
        }
    }
    Ok(out)
}

/// `eacp serve`: run one stateless block server for the remote fleet.
///
/// Accepts framed `run_block` requests (spec + canonical block range),
/// executes them in-process and streams the block `Summary` back. Serves
/// until the process is killed; the driver's lease retry absorbs that.
///
/// # Errors
///
/// Returns a message when `--listen` is missing or the bind fails.
pub fn cmd_serve(o: &Options) -> Result<String, String> {
    if o.listen.is_empty() {
        return Err("serve requires --listen HOST:PORT (use port 0 for an ephemeral port)".into());
    }
    eacp_exec::serve_blocking(&o.listen, |endpoint| {
        // Announce readiness on stdout so orchestration (CI fleet-smoke,
        // shell scripts) can scrape the bound address, then serve forever.
        println!("eacp serve: listening on {endpoint}");
        let _ = std::io::Write::flush(&mut std::io::stdout());
    })
    .map_err(|e| e.to_string())?;
    Ok(String::new())
}

/// Dispatches a full command line (without the program name).
///
/// # Errors
///
/// Returns a user-facing message on any parse or execution failure.
pub fn dispatch(args: Vec<String>) -> Result<String, String> {
    let Some(cmd) = args.first().cloned() else {
        return Ok(USAGE.to_owned());
    };
    let rest = args.into_iter().skip(1);
    match cmd.as_str() {
        "run" => cmd_run(&parse_options(rest)?),
        "mc" => cmd_mc(&parse_options(rest)?),
        "sweep" => cmd_sweep(&parse_options(rest)?),
        "serve" => cmd_serve(&parse_options(rest)?),
        "merge" => cmd_merge(&parse_options(rest)?),
        "queue" => cmd_queue(&parse_options(rest)?),
        "store" => cmd_store(&parse_options(rest)?),
        "csv" => cmd_csv(&parse_options(rest)?),
        "analyze" => cmd_analyze(&parse_options(rest)?),
        "table" => cmd_table(&parse_options(rest)?),
        "feasibility" => cmd_feasibility(&parse_options(rest)?),
        "executive" => cmd_executive(&parse_options(rest)?),
        "bench" => cmd_bench(&parse_options(rest)?),
        "presets" => Ok(cmd_presets()),
        "--help" | "-h" | "help" => Ok(USAGE.to_owned()),
        other => Err(format!("unknown command {other:?}\n{USAGE}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_owned).collect()
    }

    #[test]
    fn parse_defaults_and_overrides() {
        let o = parse_options(args("--scheme a_d --util 0.8 --k 3 --trace").into_iter()).unwrap();
        assert_eq!(o.scheme, "a_d");
        assert_eq!(o.util, 0.8);
        assert_eq!(o.k, 3);
        assert!(o.trace);
        assert_eq!(o.lambda, 1.4e-3); // default retained
        assert!(o.has("--scheme") && o.has("--trace") && !o.has("--lambda"));
    }

    #[test]
    fn parse_rejects_unknown_flag() {
        assert!(parse_options(args("--bogus 1").into_iter()).is_err());
    }

    #[test]
    fn parse_rejects_bad_variant() {
        assert!(parse_options(args("--variant xyz").into_iter()).is_err());
    }

    #[test]
    fn parse_validates_max_regress() {
        // Requires --baseline, and must be a fraction in (0, 1): a value
        // like 30 (percent misread) would disable the gate entirely.
        assert!(parse_options(args("--max-regress 0.3").into_iter()).is_err());
        for bad in ["30", "1.0", "0", "-0.1"] {
            let line = format!("--baseline b.json --max-regress {bad}");
            assert!(
                parse_options(args(&line).into_iter()).is_err(),
                "{bad} should be rejected"
            );
        }
        let o = parse_options(args("--baseline b.json --max-regress 0.25").into_iter()).unwrap();
        assert_eq!(o.max_regress, 0.25);
    }

    #[test]
    fn parse_validates_fleet_flags() {
        // --endpoints rides on --queue, --timeout-ms on --endpoints, and
        // a list that trims away to nothing is an error, not a silent
        // in-process run.
        assert!(parse_options(args("--endpoints 127.0.0.1:7117").into_iter()).is_err());
        assert!(parse_options(args("--queue --timeout-ms 500").into_iter()).is_err());
        assert!(parse_options(
            ["--queue", "--endpoints", " , ,"]
                .map(str::to_owned)
                .into_iter()
        )
        .is_err());
        let o = parse_options(
            args("--queue --workers 4 --endpoints a:1,b:2 --timeout-ms 500").into_iter(),
        )
        .unwrap();
        assert_eq!(o.endpoints, "a:1,b:2");
        assert_eq!(o.timeout_ms, 500);
        // The desugared spec splits, trims and drops empty entries.
        let q = queue_spec_of(&o);
        assert_eq!(q.endpoints, vec!["a:1".to_owned(), "b:2".to_owned()]);
        assert_eq!(q.timeout_ms, 500);
        assert_eq!(q.workers, 4);
    }

    #[test]
    fn serve_requires_listen() {
        let err = dispatch(args("serve")).unwrap_err();
        assert!(err.contains("--listen"), "{err}");
    }

    #[test]
    fn executive_rejects_endpoints() {
        let err = dispatch(args(
            "executive --preset avionics-trio --mc --queue --endpoints 127.0.0.1:7117",
        ))
        .unwrap_err();
        assert!(err.contains("not supported"), "{err}");
    }

    #[test]
    fn run_command_produces_report() {
        let out = dispatch(args("run --seed 7")).unwrap();
        assert!(out.contains("scheme=A_D_S"));
        assert!(out.contains("energy="));
    }

    #[test]
    fn run_with_trace_renders_timeline() {
        let out = dispatch(args("run --util 0.3 --lambda 1e-3 --trace --seed 3")).unwrap();
        assert!(out.contains("compute @f"), "no timeline in:\n{out}");
    }

    #[test]
    fn mc_command_reports_ci() {
        let out = dispatch(args("mc --reps 200 --scheme poisson")).unwrap();
        assert!(out.contains("95% CI"));
        assert!(out.contains("anomalies = 0"));
    }

    #[test]
    fn mc_json_emits_full_report() {
        let out = dispatch(args("mc --reps 50 --json")).unwrap();
        let doc = eacp_spec::Json::parse(&out).unwrap();
        assert_eq!(doc.req("policy").unwrap().as_str().unwrap(), "A_D_S");
        assert_eq!(
            doc.req("summary")
                .unwrap()
                .req("replications")
                .unwrap()
                .as_u64()
                .unwrap(),
            50
        );
        // The embedded spec reproduces the run.
        use eacp_spec::FromJson;
        let spec = ExperimentSpec::from_json(doc.req("spec").unwrap()).unwrap();
        assert_eq!(spec.mc.replications, 50);
    }

    #[test]
    fn bench_quick_writes_telemetry_document() {
        let path = std::env::temp_dir().join(format!("eacp-bench-{}.json", std::process::id()));
        let out = dispatch(args(&format!(
            "bench --quick --reps 40 --threads 1 --out {}",
            path.display()
        )))
        .unwrap();
        assert!(out.contains("speedup"), "{out}");
        let doc = Json::parse(&std::fs::read_to_string(&path).unwrap()).unwrap();
        assert_eq!(doc.req("bench").unwrap().as_str().unwrap(), "simulator");
        assert_eq!(doc.req("mode").unwrap().as_str().unwrap(), "quick");
        assert_eq!(doc.req("replications").unwrap().as_u64().unwrap(), 40);
        for section in [
            "pooled",
            "boxed_baseline",
            "high_lambda",
            "queue",
            "sweep_cell",
        ] {
            let s = doc.req(section).unwrap();
            assert!(s.req("wall_s").unwrap().as_f64().unwrap() >= 0.0);
            assert!(s.req("reps_per_s").unwrap().as_f64().unwrap() > 0.0);
        }
        assert!(
            doc.req("speedup_pooled_vs_boxed")
                .unwrap()
                .as_f64()
                .unwrap()
                > 0.0
        );
        // Honest labeling: a "multi_thread" executive section may only
        // exist when it actually ran on more than one thread.
        if let Ok(multi) = doc.req("executive").and_then(|e| e.req("multi_thread")) {
            assert!(
                multi.req("threads").unwrap().as_u64().unwrap() > 1,
                "multi_thread section recorded on a single-thread run"
            );
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn mc_preset_runs_named_experiments() {
        let out = dispatch(args("mc --preset battery-budget --reps 60")).unwrap();
        assert!(out.contains("scheme=A_D_S"), "{out}");
        assert!(dispatch(args("mc --preset nope")).is_err());
    }

    #[test]
    fn emit_spec_round_trips_through_mc() {
        let emitted =
            dispatch(args("mc --emit-spec --reps 80 --scheme a_d --lambda 2e-3")).unwrap();
        let spec = ExperimentSpec::from_json_str(&emitted).unwrap();
        assert_eq!(spec.mc.replications, 80);
        assert_eq!(spec.policy.tag(), "a_d");
        match spec.faults {
            FaultSpec::Poisson { lambda } => assert_eq!(lambda, 2e-3),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn spec_file_drives_mc_and_flags_override_it() {
        let dir = std::env::temp_dir().join("eacp-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("spec.json");
        let mut spec = ExperimentSpec::paper_nominal();
        spec.mc.replications = 40;
        spec.save(&path).unwrap();
        let p = path.to_str().unwrap();

        let out = dispatch(args(&format!("mc --spec {p}"))).unwrap();
        assert!(out.contains("reps=40"), "{out}");
        // Flag overrides the file.
        let out = dispatch(args(&format!("mc --spec {p} --reps 30 --scheme kft"))).unwrap();
        assert!(out.contains("reps=30"), "{out}");
        assert!(out.contains("scheme=k-f-t"), "{out}");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn analyze_command_matches_paper_operating_point() {
        let out = dispatch(args("analyze")).unwrap();
        assert!(out.contains("chosen speed = f2"), "{out}");
        assert!(out.contains("num_SCP"));
    }

    #[test]
    fn analyze_ccp_variant_uses_num_ccp() {
        let out = dispatch(args("analyze --variant ccp")).unwrap();
        assert!(out.contains("num_CCP"));
    }

    #[test]
    fn table_command_requires_number() {
        assert!(dispatch(args("table")).is_err());
        assert!(dispatch(args("table 9")).is_err());
        let out = dispatch(args("table 1 --reps 30")).unwrap();
        assert!(out.contains("Table 1"));
        assert!(out.contains("vs paper"));
    }

    #[test]
    fn table_json_report_is_parsable() {
        let out = dispatch(args("table 1 --reps 20 --json")).unwrap();
        let doc = eacp_spec::Json::parse(&out).unwrap();
        assert_eq!(doc.req("cells").unwrap().as_array().unwrap().len(), 14);
    }

    #[test]
    fn sweep_command_runs_grids() {
        use eacp_spec::{SweepAxis, SweepSpec};
        let dir = std::env::temp_dir().join("eacp-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sweep.json");
        let mut base = ExperimentSpec::paper_nominal();
        base.name = "grid".into();
        base.mc.replications = 30;
        let sweep = SweepSpec {
            base,
            axes: vec![SweepAxis::Lambda(vec![1.0e-4, 1.4e-3])],
        };
        std::fs::write(&path, sweep.to_json_string()).unwrap();
        let p = path.to_str().unwrap();

        let out = dispatch(args(&format!("sweep --spec {p}"))).unwrap();
        assert!(out.contains("sweep over 2 points"), "{out}");
        assert!(out.contains("grid-l0.0001"), "{out}");

        let json = dispatch(args(&format!("sweep --spec {p} --json"))).unwrap();
        let doc = eacp_spec::Json::parse(&json).unwrap();
        assert_eq!(doc.as_array().unwrap().len(), 2);
        std::fs::remove_file(&path).unwrap();

        assert!(dispatch(args("sweep")).is_err());
    }

    #[test]
    fn presets_command_lists_known_names() {
        let out = dispatch(args("presets")).unwrap();
        for name in eacp_spec::preset_names() {
            assert!(out.contains(name), "missing {name} in:\n{out}");
        }
    }

    #[test]
    fn feasibility_parses_task_lists() {
        let set = parse_taskset("a:100:1000,b:200:2000:1500").unwrap();
        assert_eq!(set.len(), 2);
        assert_eq!(set.tasks()[1].deadline, 1500);
        assert!(parse_taskset("").is_err());
        assert!(parse_taskset("a:1").is_err());
        assert!(parse_taskset("a:x:1000").is_err());
    }

    #[test]
    fn feasibility_command_end_to_end() {
        let out = dispatch(args(
            "feasibility --tasks ctrl:900:5000,tele:2600:20000 --k 2",
        ))
        .unwrap();
        assert!(out.contains("EDF density"));
        assert!(out.contains("feasible"));
        assert!(out.contains("RM response times"));
    }

    #[test]
    fn help_and_unknown_commands() {
        assert!(dispatch(vec![]).unwrap().contains("USAGE"));
        assert!(dispatch(args("help")).unwrap().contains("USAGE"));
        assert!(dispatch(args("frobnicate")).is_err());
    }

    #[test]
    fn unknown_scheme_is_rejected() {
        assert!(dispatch(args("run --scheme nope")).is_err());
    }

    #[test]
    fn all_eight_schemes_run_from_flags() {
        for tag in PolicySpec::TAGS {
            let out = dispatch(args(&format!("mc --reps 20 --scheme {tag}")))
                .unwrap_or_else(|e| panic!("{tag}: {e}"));
            assert!(out.contains("anomalies = 0"), "{tag}:\n{out}");
        }
    }

    #[test]
    fn scheme_override_preserves_loaded_k_and_lambda() {
        // table1-b has k = 1, λ = 1e-4; switching the scheme must not
        // silently reset them to the flag defaults (k = 5, λ = 1.4e-3).
        let emitted = dispatch(args("mc --emit-spec --preset table1-b --scheme a_d")).unwrap();
        let spec = ExperimentSpec::from_json_str(&emitted).unwrap();
        assert_eq!(spec.policy.tag(), "a_d");
        assert_eq!(spec.policy.k(), Some(1));
        match spec.faults {
            FaultSpec::Poisson { lambda } => assert_eq!(lambda, 1.0e-4),
            other => panic!("unexpected {other:?}"),
        }
        // An explicit --k still wins.
        let emitted =
            dispatch(args("mc --emit-spec --preset table1-b --scheme a_d --k 3")).unwrap();
        let spec = ExperimentSpec::from_json_str(&emitted).unwrap();
        assert_eq!(spec.policy.k(), Some(3));
    }

    #[test]
    fn run_emit_spec_reproduces_the_flag_run_exactly() {
        // The flag-driven `run` uses the physical executor; its emitted
        // spec must encode that, so replaying the file gives the same
        // output (modulo nothing — byte-identical).
        let emitted = dispatch(args("run --emit-spec --seed 7")).unwrap();
        let spec = ExperimentSpec::from_json_str(&emitted).unwrap();
        assert!(spec.executor.faults_during_overhead, "run is physical");

        let direct = dispatch(args("run --seed 7")).unwrap();
        let dir = std::env::temp_dir().join("eacp-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("run-spec.json");
        std::fs::write(&path, &emitted).unwrap();
        let replayed = dispatch(args(&format!("run --spec {}", path.to_str().unwrap()))).unwrap();
        std::fs::remove_file(&path).unwrap();
        assert_eq!(direct, replayed);
    }

    #[test]
    fn run_header_reports_the_spec_k_not_the_flag_default() {
        let out = dispatch(args("run --preset table1-b")).unwrap();
        assert!(out.contains("k=1"), "{out}");
        // Schemes without a fault-tolerance target show "-".
        let out = dispatch(args("run --scheme poisson")).unwrap();
        assert!(out.contains("k=-"), "{out}");
    }

    #[test]
    fn sweep_honors_mc_flags_and_rejects_shape_flags() {
        use eacp_spec::{SweepAxis, SweepSpec};
        let dir = std::env::temp_dir().join("eacp-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sweep-flags.json");
        let mut base = ExperimentSpec::paper_nominal();
        base.name = "grid".into();
        base.mc.replications = 20;
        let sweep = SweepSpec {
            base,
            axes: vec![SweepAxis::Seed(vec![5, 6])],
        };
        std::fs::write(&path, sweep.to_json_string()).unwrap();
        let p = path.to_str().unwrap().to_owned();

        // --seed applies to the base (the Seed axis then overrides per
        // point, so the run still succeeds)...
        assert!(dispatch(args(&format!("sweep --spec {p} --seed 9"))).is_ok());
        // ...but experiment-shaping flags are rejected loudly, not
        // silently dropped.
        let err = dispatch(args(&format!("sweep --spec {p} --lambda 2e-3"))).unwrap_err();
        assert!(err.contains("--lambda"), "{err}");
        let err = dispatch(args(&format!("sweep --spec {p} --scheme a_d"))).unwrap_err();
        assert!(err.contains("--scheme"), "{err}");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn store_flags_are_validated() {
        assert!(parse_options(args("--no-cache --refresh").into_iter()).is_err());
        assert!(parse_options(args("--store d --no-cache").into_iter()).is_err());
        // --refresh needs a store; checked at resolution, not parse, so
        // $EACP_STORE can still satisfy it.
        let err = dispatch(args("mc --refresh --reps 30")).unwrap_err();
        assert!(err.contains("--refresh"), "{err}");
    }

    fn temp_store(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("eacp-cli-store-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn mc_store_serves_hits_byte_identical() {
        let dir = temp_store("mc");
        let s = dir.to_str().unwrap();
        let line = format!("mc --reps 50 --seed 9 --threads 1 --store {s}");
        let cold = dispatch(args(&line)).unwrap();
        assert!(
            cold.contains("store: miss — computed and recorded"),
            "{cold}"
        );
        let warm = dispatch(args(&line)).unwrap();
        assert!(
            warm.contains("store: hit — served from the store"),
            "{warm}"
        );

        // The JSON report document is byte-identical on hit and miss and
        // carries no cache telemetry.
        let json_line = format!("{line} --json");
        let a = dispatch(args(&json_line)).unwrap();
        let b = dispatch(args(&json_line)).unwrap();
        assert_eq!(a, b);
        assert!(!a.contains("store:"), "{a}");

        let refreshed = dispatch(args(&format!("{line} --refresh"))).unwrap();
        assert!(refreshed.contains("store: refreshed"), "{refreshed}");
        // --no-cache computes without consulting the configured store.
        let bypassed = dispatch(args("mc --reps 50 --seed 9 --threads 1 --no-cache")).unwrap();
        assert!(!bypassed.contains("store:"), "{bypassed}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn run_store_caches_single_executions_but_not_traces() {
        let dir = temp_store("run");
        let s = dir.to_str().unwrap();
        let line = format!("run --seed 7 --store {s}");
        let cold = dispatch(args(&line)).unwrap();
        assert!(cold.contains("store: miss"), "{cold}");
        let warm = dispatch(args(&line)).unwrap();
        assert!(warm.contains("store: hit"), "{warm}");
        // Identical execution report either way (modulo the cache note).
        assert_eq!(
            cold.replace("store: miss — computed and recorded", ""),
            warm.split("store: hit").next().unwrap().to_owned() + "\n",
        );
        // A traced run needs the live event stream: no cache note.
        let traced = dispatch(args(&format!("{line} --trace"))).unwrap();
        assert!(!traced.contains("store:"), "{traced}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn sweep_store_resumes_and_store_subcommands_inspect_it() {
        use eacp_spec::{SweepAxis, SweepSpec};
        let dir = temp_store("sweep");
        let s = dir.to_str().unwrap();
        let spec_path = dir.join("sweep.json");
        let mut base = ExperimentSpec::paper_nominal();
        base.name = "grid".into();
        base.mc.replications = 30;
        base.mc.threads = 1;
        let sweep = SweepSpec {
            base,
            axes: vec![SweepAxis::Lambda(vec![1.0e-4, 1.4e-3])],
        };
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(&spec_path, sweep.to_json_string()).unwrap();
        let p = spec_path.to_str().unwrap();

        // "Interrupted": only shard 0 of 2 lands in the store.
        let out = dispatch(args(&format!("sweep --spec {p} --shard 0/2 --store {s}"))).unwrap();
        assert!(out.contains("store: 0 served, 1 computed"), "{out}");

        let status = dispatch(args(&format!("store status --spec {p} --store {s}"))).unwrap();
        assert!(status.contains("entries: 1"), "{status}");
        assert!(
            status.contains("covered 1/2 points; missing: [1]"),
            "{status}"
        );
        assert!(status.contains("incomplete"), "{status}");

        // Resume over the full grid: the finished half is served.
        let resumed = dispatch(args(&format!("sweep --spec {p} --store {s}"))).unwrap();
        assert!(resumed.contains("store: 1 served, 1 computed"), "{resumed}");
        let plain = dispatch(args(&format!("sweep --spec {p}"))).unwrap();
        assert_eq!(resumed.replace(", store: 1 served, 1 computed", ""), plain);

        let status = dispatch(args(&format!("store status --spec {p} --store {s}"))).unwrap();
        assert!(
            status.contains("complete — a store-backed sweep is served"),
            "{status}"
        );

        // verify recomputes every cell and matches bytes; gc prunes.
        let verified = dispatch(args(&format!("store verify --store {s}"))).unwrap();
        assert!(verified.contains("verified 2 of 2 entries"), "{verified}");
        let gc = dispatch(args(&format!("store gc --max-entries 1 --store {s}"))).unwrap();
        assert!(gc.contains("evicted 1"), "{gc}");
        assert!(dispatch(args(&format!("store gc --store {s}"))).is_err());
        assert!(dispatch(args(&format!("store bogus --store {s}"))).is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    const EXEC_DUO: &str = "--tasks sensor:500:4000,control:1200:8000 --lambda 8e-4 --k 2 \
                            --hyperperiods 2 --seed 7";

    #[test]
    fn executive_mc_reports_distributions_and_is_runner_invariant() {
        let out = dispatch(args(&format!(
            "executive {EXEC_DUO} --mc --reps 12 --threads 1"
        )))
        .unwrap();
        assert!(out.contains("executive mc"), "{out}");
        assert!(out.contains("12 seeded horizons"), "{out}");
        assert!(out.contains("miss ratio ="), "{out}");
        assert!(out.contains("sensor"), "{out}");

        // Runner placement (threads, queue workers) never changes a bit
        // of the Monte-Carlo aggregate.
        let summary_of = |line: &str| {
            let doc = Json::parse(&dispatch(args(line)).unwrap()).unwrap();
            doc.req("summary").unwrap().pretty()
        };
        let single = summary_of(&format!(
            "executive {EXEC_DUO} --mc --reps 12 --threads 1 --json"
        ));
        let multi = summary_of(&format!(
            "executive {EXEC_DUO} --mc --reps 12 --threads 4 --json"
        ));
        let queued = summary_of(&format!(
            "executive {EXEC_DUO} --mc --reps 12 --queue --workers 3 --json"
        ));
        assert_eq!(single, multi);
        assert_eq!(single, queued);
    }

    #[test]
    fn executive_mc_emit_spec_records_the_scheduling_choice() {
        let emitted = dispatch(args(&format!(
            "executive {EXEC_DUO} --mc --reps 9 --queue --workers 2 --emit-spec"
        )))
        .unwrap();
        let spec = ExecutiveSpec::from_json_str(&emitted).unwrap();
        let mc = spec.mc.expect("mc section recorded");
        assert_eq!(mc.replications, 9);
        assert_eq!(mc.queue.map(|q| q.workers), Some(2));
    }

    #[test]
    fn executive_mc_store_serves_hits_byte_identical() {
        let dir = temp_store("exec-mc");
        let s = dir.to_str().unwrap();
        let line = format!("executive {EXEC_DUO} --mc --reps 10 --threads 1 --store {s}");
        let cold = dispatch(args(&line)).unwrap();
        assert!(cold.contains("store: miss"), "{cold}");
        let warm = dispatch(args(&line)).unwrap();
        assert!(warm.contains("store: hit"), "{warm}");
        // The JSON report document is byte-identical on hit and miss.
        let json_line = format!("{line} --json");
        let a = dispatch(args(&json_line)).unwrap();
        let b = dispatch(args(&json_line)).unwrap();
        assert_eq!(a, b);
        assert!(!a.contains("store:"), "{a}");
        let verified = dispatch(args(&format!("store verify --store {s}"))).unwrap();
        assert!(verified.contains("verified 1 of 1 entries"), "{verified}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    fn write_executive_sweep(dir: &std::path::Path) -> std::path::PathBuf {
        use eacp_spec::{ExecutiveSweepAxis, ExecutiveSweepSpec};
        let mut base = executive_preset("avionics-trio").unwrap();
        base.name = "exec-grid".into();
        base.hyperperiods = 2;
        base.mc = Some(ExecutiveMcSpec {
            replications: 8,
            threads: 1,
            queue: None,
        });
        let sweep = ExecutiveSweepSpec {
            base,
            axes: vec![ExecutiveSweepAxis::Lambda(vec![2.0e-4, 1.0e-3])],
        };
        std::fs::create_dir_all(dir).unwrap();
        let path = dir.join("exec-sweep.json");
        std::fs::write(&path, sweep.to_json_string()).unwrap();
        path
    }

    #[test]
    fn executive_sweep_shards_merge_and_render_like_experiment_sweeps() {
        let dir = temp_store("exec-sweep");
        let spec_path = write_executive_sweep(&dir);
        let p = spec_path.to_str().unwrap();

        let full = dispatch(args(&format!("executive --sweep {p}"))).unwrap();
        assert!(full.contains("executive sweep over 2 points"), "{full}");
        assert!(full.contains("exec-grid-l0.0002"), "{full}");

        // Shards collect into a report directory; status/merge/csv all
        // detect the executive document shape.
        let reports = dir.join("reports");
        for shard in ["0/2", "1/2"] {
            let out = dispatch(args(&format!(
                "executive --sweep {p} --shard {shard} --out {}",
                reports.display()
            )))
            .unwrap();
            assert!(out.contains("1 of 2 grid points"), "{out}");
        }
        let status = dispatch(args(&format!("queue status {}", reports.display()))).unwrap();
        assert!(status.contains("covered 2/2 points"), "{status}");
        assert!(status.contains("ready to merge"), "{status}");

        let merged_path = dir.join("merged.json");
        let merged = dispatch(args(&format!(
            "merge {} --out {}",
            reports.display(),
            merged_path.display()
        )))
        .unwrap();
        assert!(merged.contains("merged 2 grid points"), "{merged}");

        let csv = dispatch(args(&format!("csv {}", reports.display()))).unwrap();
        assert!(
            csv.starts_with("index,experiment,policies,horizons"),
            "{csv}"
        );
        assert!(csv.contains("exec-grid-l0.0002"), "{csv}");
        assert_eq!(csv.lines().count(), 3, "{csv}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn executive_sweep_store_resumes_byte_identically() {
        let dir = temp_store("exec-resume");
        let spec_path = write_executive_sweep(&dir);
        let p = spec_path.to_str().unwrap();
        let s = dir.to_str().unwrap();

        // "Interrupted": only shard 0 of 2 lands in the store.
        let out = dispatch(args(&format!(
            "executive --sweep {p} --shard 0/2 --store {s}"
        )))
        .unwrap();
        assert!(out.contains("store: 0 served, 1 computed"), "{out}");

        let status = dispatch(args(&format!("store status --spec {p} --store {s}"))).unwrap();
        assert!(
            status.contains("covered 1/2 points; missing: [1]"),
            "{status}"
        );
        assert!(status.contains("incomplete"), "{status}");

        // Resume over the full grid: the finished half is served, and the
        // report is byte-identical to an uninterrupted run.
        let resumed = dispatch(args(&format!("executive --sweep {p} --store {s}"))).unwrap();
        assert!(resumed.contains("store: 1 served, 1 computed"), "{resumed}");
        let plain = dispatch(args(&format!("executive --sweep {p}"))).unwrap();
        assert_eq!(resumed.replace(", store: 1 served, 1 computed", ""), plain);

        let status = dispatch(args(&format!("store status --spec {p} --store {s}"))).unwrap();
        assert!(status.contains("complete"), "{status}");
        let verified = dispatch(args(&format!("store verify --store {s}"))).unwrap();
        assert!(verified.contains("verified 2 of 2 entries"), "{verified}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn executive_sweep_rejects_shape_overrides() {
        let dir = temp_store("exec-flags");
        let spec_path = write_executive_sweep(&dir);
        let p = spec_path.to_str().unwrap();
        let err = dispatch(args(&format!("executive --sweep {p} --lambda 1e-3"))).unwrap_err();
        assert!(err.contains("--lambda"), "{err}");
        let err = dispatch(args(&format!(
            "executive --sweep {p} --preset avionics-trio"
        )))
        .unwrap_err();
        assert!(err.contains("--spec/--preset/--tasks"), "{err}");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
