//! The `eacp` command-line tool (see `eacp --help`).

#![forbid(unsafe_code)]

use std::io::Write;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match eacp_cli::dispatch(args) {
        Ok(out) => {
            // Write directly (not println!) so a consumer closing the pipe
            // early — `eacp table 1 --json | head` — ends the program
            // quietly instead of panicking on EPIPE.
            let mut stdout = std::io::stdout().lock();
            let _ = writeln!(stdout, "{out}");
        }
        Err(e) => {
            eprintln!("eacp: {e}");
            std::process::exit(2);
        }
    }
}
