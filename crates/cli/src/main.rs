//! The `eacp` command-line tool (see `eacp --help`).

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match eacp_cli::dispatch(args) {
        Ok(out) => println!("{out}"),
        Err(e) => {
            eprintln!("eacp: {e}");
            std::process::exit(2);
        }
    }
}
