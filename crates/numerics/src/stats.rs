//! Numerically stable online statistics for Monte-Carlo aggregation.

/// Single-pass mean / variance accumulator (Welford's algorithm).
///
/// Used to aggregate per-replication task metrics (completion time, energy,
/// fault counts) without storing all samples.
///
/// # Examples
///
/// ```
/// use eacp_numerics::stats::OnlineStats;
///
/// let mut s = OnlineStats::new();
/// for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
///     s.push(x);
/// }
/// assert_eq!(s.count(), 8);
/// assert!((s.mean() - 5.0).abs() < 1e-12);
/// assert!((s.population_variance() - 4.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct OnlineStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    #[inline]
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        let delta2 = x - self.mean;
        self.m2 += delta * delta2;
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Merges another accumulator into this one (parallel reduction).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean; `NaN` when empty (mirrors the paper's `NaN` energy cells).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            f64::NAN
        } else {
            self.mean
        }
    }

    /// Population variance (`m2 / n`); `NaN` when empty.
    pub fn population_variance(&self) -> f64 {
        if self.count == 0 {
            f64::NAN
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Unbiased sample variance (`m2 / (n - 1)`); `NaN` for fewer than two
    /// observations.
    pub fn sample_variance(&self) -> f64 {
        if self.count < 2 {
            f64::NAN
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Sample standard deviation; `NaN` for fewer than two observations.
    pub fn sample_std_dev(&self) -> f64 {
        self.sample_variance().sqrt()
    }

    /// Standard error of the mean; `NaN` for fewer than two observations.
    pub fn std_error(&self) -> f64 {
        self.sample_std_dev() / (self.count as f64).sqrt()
    }

    /// Smallest observation; `+inf` when empty.
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation; `-inf` when empty.
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Two-sided normal-approximation confidence interval for the mean at
    /// `z` standard errors (e.g. `z = 1.96` for 95%).
    ///
    /// Returns `(lo, hi)`; `(NaN, NaN)` for fewer than two observations.
    pub fn mean_confidence_interval(&self, z: f64) -> (f64, f64) {
        let se = self.std_error();
        (self.mean() - z * se, self.mean() + z * se)
    }

    /// The exact accumulator state `(count, mean, m2, min, max)`.
    ///
    /// Unlike the derived views ([`OnlineStats::mean`] returns NaN when
    /// empty, variance divides `m2` by `n`), this is the *lossless* raw
    /// state: persisting these five values and restoring them with
    /// [`OnlineStats::from_raw_parts`] reproduces the accumulator bit for
    /// bit — what a result store needs for cache hits that are
    /// byte-identical to recomputation. The raw state never holds NaN
    /// (empty is `(0, 0.0, 0.0, +inf, -inf)`).
    pub fn raw_parts(&self) -> (u64, f64, f64, f64, f64) {
        (self.count, self.mean, self.m2, self.min, self.max)
    }

    /// Rebuilds an accumulator from [`OnlineStats::raw_parts`] state.
    pub fn from_raw_parts(count: u64, mean: f64, m2: f64, min: f64, max: f64) -> Self {
        Self {
            count,
            mean,
            m2,
            min,
            max,
        }
    }
}

/// Wilson score interval for a binomial proportion.
///
/// Given `successes` out of `trials` and a normal quantile `z` (1.96 for a
/// 95% interval), returns `(lo, hi)` bounds on the true success probability.
/// Unlike the Wald interval it behaves sensibly at `p ≈ 0` and `p ≈ 1`,
/// which is exactly where the paper's timely-completion probabilities live
/// (`P = 0.9999`, `P = 0.0005`, …).
///
/// # Panics
///
/// Panics if `trials == 0` or `successes > trials`.
///
/// # Examples
///
/// ```
/// use eacp_numerics::stats::wilson_interval;
/// let (lo, hi) = wilson_interval(9990, 10_000, 1.96);
/// assert!(lo > 0.99 && hi < 1.0);
/// ```
pub fn wilson_interval(successes: u64, trials: u64, z: f64) -> (f64, f64) {
    assert!(trials > 0, "trials must be positive");
    assert!(successes <= trials, "successes cannot exceed trials");
    let n = trials as f64;
    let p = successes as f64 / n;
    let z2 = z * z;
    let denom = 1.0 + z2 / n;
    let center = (p + z2 / (2.0 * n)) / denom;
    let half = (z / denom) * ((p * (1.0 - p) / n) + z2 / (4.0 * n * n)).sqrt();
    // At p ∈ {0, 1} the exact bound equals p but floating-point rounding can
    // land a hair inside it; clamp so the interval always brackets p.
    (
        (center - half).max(0.0).min(p),
        (center + half).min(1.0).max(p),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_stats_are_nan() {
        let s = OnlineStats::new();
        assert_eq!(s.count(), 0);
        assert!(s.mean().is_nan());
        assert!(s.population_variance().is_nan());
    }

    #[test]
    fn single_observation() {
        let mut s = OnlineStats::new();
        s.push(3.0);
        assert_eq!(s.mean(), 3.0);
        assert_eq!(s.population_variance(), 0.0);
        assert!(s.sample_variance().is_nan());
        assert_eq!(s.min(), 3.0);
        assert_eq!(s.max(), 3.0);
    }

    #[test]
    fn merge_matches_sequential() {
        let xs: Vec<f64> = (0..1000).map(|i| (i as f64 * 0.37).sin() * 10.0).collect();
        let mut all = OnlineStats::new();
        for &x in &xs {
            all.push(x);
        }
        let mut a = OnlineStats::new();
        let mut b = OnlineStats::new();
        for &x in &xs[..313] {
            a.push(x);
        }
        for &x in &xs[313..] {
            b.push(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert!((a.mean() - all.mean()).abs() < 1e-10);
        assert!((a.sample_variance() - all.sample_variance()).abs() < 1e-8);
        assert_eq!(a.min(), all.min());
        assert_eq!(a.max(), all.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = OnlineStats::new();
        a.push(1.0);
        a.push(2.0);
        let before = a;
        a.merge(&OnlineStats::new());
        assert_eq!(a, before);

        let mut e = OnlineStats::new();
        e.merge(&before);
        assert_eq!(e, before);
    }

    #[test]
    fn raw_parts_round_trip_bit_exactly() {
        let mut s = OnlineStats::new();
        for x in [1.0 / 3.0, -7.25, 1e-300, 42.0] {
            s.push(x);
        }
        for stats in [s, OnlineStats::new()] {
            let (count, mean, m2, min, max) = stats.raw_parts();
            let back = OnlineStats::from_raw_parts(count, mean, m2, min, max);
            assert_eq!(back.count(), stats.count());
            assert_eq!(back.mean.to_bits(), stats.mean.to_bits());
            assert_eq!(back.m2.to_bits(), stats.m2.to_bits());
            assert_eq!(back.min.to_bits(), stats.min.to_bits());
            assert_eq!(back.max.to_bits(), stats.max.to_bits());
        }
        // Empty state is finite-free of NaN: (0, 0.0, 0.0, +inf, -inf).
        let (count, mean, m2, min, max) = OnlineStats::new().raw_parts();
        assert_eq!(count, 0);
        assert_eq!(mean, 0.0);
        assert_eq!(m2, 0.0);
        assert_eq!(min, f64::INFINITY);
        assert_eq!(max, f64::NEG_INFINITY);
    }

    #[test]
    fn wilson_extremes() {
        let (lo, hi) = wilson_interval(0, 100, 1.96);
        assert_eq!(lo, 0.0);
        assert!(hi > 0.0 && hi < 0.06);
        let (lo, hi) = wilson_interval(100, 100, 1.96);
        // Mathematically 1.0; floating point may round one ulp below.
        assert!(hi > 1.0 - 1e-12 && hi <= 1.0);
        assert!(lo > 0.94);
    }

    #[test]
    fn wilson_contains_p_hat_center_ordering() {
        let (lo, hi) = wilson_interval(42, 100, 1.96);
        assert!(lo < 0.42 && 0.42 < hi);
    }

    #[test]
    #[should_panic(expected = "trials")]
    fn wilson_rejects_zero_trials() {
        wilson_interval(0, 0, 1.96);
    }

    #[test]
    #[should_panic(expected = "successes")]
    fn wilson_rejects_excess_successes() {
        wilson_interval(5, 4, 1.96);
    }

    #[test]
    fn confidence_interval_shrinks_with_n() {
        let mut small = OnlineStats::new();
        let mut large = OnlineStats::new();
        for i in 0..10 {
            small.push((i % 3) as f64);
        }
        for i in 0..10_000 {
            large.push((i % 3) as f64);
        }
        let (slo, shi) = small.mean_confidence_interval(1.96);
        let (llo, lhi) = large.mean_confidence_interval(1.96);
        assert!((lhi - llo) < (shi - slo));
    }
}

/// Standard normal cumulative distribution function `Φ(x)`.
///
/// Uses the Abramowitz–Stegun 7.1.26 rational approximation of `erf`
/// (absolute error < 1.5e-7), which is ample for the Monte-Carlo-scale
/// probabilities this workspace reports.
///
/// # Examples
///
/// ```
/// use eacp_numerics::stats::normal_cdf;
/// assert!((normal_cdf(0.0) - 0.5).abs() < 1e-9);
/// assert!((normal_cdf(1.96) - 0.975).abs() < 1e-3);
/// ```
pub fn normal_cdf(x: f64) -> f64 {
    0.5 * (1.0 + erf(x / std::f64::consts::SQRT_2))
}

/// Error function via Abramowitz–Stegun 7.1.26 (|error| < 1.5e-7).
fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    const A1: f64 = 0.254_829_592;
    const A2: f64 = -0.284_496_736;
    const A3: f64 = 1.421_413_741;
    const A4: f64 = -1.453_152_027;
    const A5: f64 = 1.061_405_429;
    const P: f64 = 0.327_591_1;
    let t = 1.0 / (1.0 + P * x);
    let y = 1.0 - (((((A5 * t + A4) * t) + A3) * t + A2) * t + A1) * t * (-x * x).exp();
    sign * y
}

#[cfg(test)]
mod normal_tests {
    use super::*;

    #[test]
    fn cdf_reference_values() {
        // (x, Φ(x)) reference pairs.
        for (x, phi) in [
            (0.0, 0.5),
            (1.0, 0.841_344_7),
            (-1.0, 0.158_655_3),
            (2.0, 0.977_249_9),
            (-2.0, 0.022_750_1),
            (3.0, 0.998_650_1),
        ] {
            assert!(
                (normal_cdf(x) - phi).abs() < 1e-5,
                "Φ({x}) = {} vs {phi}",
                normal_cdf(x)
            );
        }
    }

    #[test]
    fn cdf_is_monotone_and_symmetric() {
        let mut last = 0.0;
        let mut x = -6.0;
        while x <= 6.0 {
            let v = normal_cdf(x);
            assert!(v >= last - 1e-12);
            assert!((normal_cdf(x) + normal_cdf(-x) - 1.0).abs() < 1e-6);
            last = v;
            x += 0.25;
        }
        assert!(normal_cdf(-8.0) < 1e-9);
        assert!(normal_cdf(8.0) > 1.0 - 1e-9);
    }
}
