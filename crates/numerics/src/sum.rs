//! Compensated floating-point summation.

/// Neumaier (improved Kahan) compensated summation.
///
/// Long simulations accumulate energy over millions of small segments; naive
/// `f64` accumulation loses low-order bits once the running total dwarfs the
/// increments. Neumaier summation keeps a running compensation term and also
/// handles the case where the increment is larger than the running sum.
///
/// # Examples
///
/// ```
/// use eacp_numerics::sum::NeumaierSum;
///
/// let mut s = NeumaierSum::new();
/// s.add(1.0);
/// s.add(1e100);
/// s.add(1.0);
/// s.add(-1e100);
/// assert_eq!(s.value(), 2.0); // naive summation would return 0.0
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct NeumaierSum {
    sum: f64,
    compensation: f64,
}

impl NeumaierSum {
    /// Creates a zeroed accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an accumulator seeded with `initial`.
    pub fn with_initial(initial: f64) -> Self {
        Self {
            sum: initial,
            compensation: 0.0,
        }
    }

    /// Adds one term.
    // Non-generic and called per recorded segment from other crates:
    // inline so the compensation arithmetic fuses into the caller's loop.
    #[inline]
    pub fn add(&mut self, x: f64) {
        let t = self.sum + x;
        if self.sum.abs() >= x.abs() {
            self.compensation += (self.sum - t) + x;
        } else {
            self.compensation += (x - t) + self.sum;
        }
        self.sum = t;
    }

    /// Current compensated total.
    #[inline]
    pub fn value(&self) -> f64 {
        self.sum + self.compensation
    }
}

impl FromIterator<f64> for NeumaierSum {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut s = NeumaierSum::new();
        for x in iter {
            s.add(x);
        }
        s
    }
}

impl Extend<f64> for NeumaierSum {
    fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        for x in iter {
            self.add(x);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catastrophic_cancellation_is_compensated() {
        let mut s = NeumaierSum::new();
        s.add(1.0);
        s.add(1e100);
        s.add(1.0);
        s.add(-1e100);
        assert_eq!(s.value(), 2.0);
    }

    #[test]
    fn many_small_terms() {
        let mut s = NeumaierSum::new();
        let n = 10_000_000u64;
        for _ in 0..n {
            s.add(0.1);
        }
        let expected = n as f64 * 0.1;
        assert!((s.value() - expected).abs() < 1e-4);
    }

    #[test]
    fn from_iterator_and_extend() {
        let s: NeumaierSum = [1.0, 2.0, 3.0].into_iter().collect();
        assert_eq!(s.value(), 6.0);
        let mut s2 = NeumaierSum::with_initial(10.0);
        s2.extend([1.0, 2.0]);
        assert_eq!(s2.value(), 13.0);
    }

    #[test]
    fn empty_sum_is_zero() {
        assert_eq!(NeumaierSum::new().value(), 0.0);
    }
}
