//! Bracketing root finders.

/// Finds a root of `f` in `[lo, hi]` by bisection.
///
/// Requires `f(lo)` and `f(hi)` to have opposite signs (a zero of either
/// endpoint is returned immediately). The iteration stops when the bracket
/// width drops below `tol` or after `max_iter` halvings.
///
/// Returns `None` when the endpoints do not bracket a sign change.
///
/// # Panics
///
/// Panics if `lo > hi`, the bounds are not finite, or `tol <= 0`.
///
/// # Examples
///
/// ```
/// use eacp_numerics::roots::bisect;
/// let r = bisect(|x| x * x - 2.0, 0.0, 2.0, 1e-12, 200).unwrap();
/// assert!((r - 2f64.sqrt()).abs() < 1e-10);
/// ```
pub fn bisect<F>(mut f: F, lo: f64, hi: f64, tol: f64, max_iter: usize) -> Option<f64>
where
    F: FnMut(f64) -> f64,
{
    assert!(lo.is_finite() && hi.is_finite(), "bounds must be finite");
    assert!(lo <= hi, "lower bound must not exceed upper bound");
    assert!(tol > 0.0, "tolerance must be positive");

    let mut a = lo;
    let mut b = hi;
    let mut fa = f(a);
    let fb = f(b);
    if fa == 0.0 {
        return Some(a);
    }
    if fb == 0.0 {
        return Some(b);
    }
    if fa.signum() == fb.signum() {
        return None;
    }
    for _ in 0..max_iter {
        let mid = 0.5 * (a + b);
        if (b - a) <= tol {
            return Some(mid);
        }
        let fm = f(mid);
        if fm == 0.0 {
            return Some(mid);
        }
        if fm.signum() == fa.signum() {
            a = mid;
            fa = fm;
        } else {
            b = mid;
        }
    }
    Some(0.5 * (a + b))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_sqrt_two() {
        let r = bisect(|x| x * x - 2.0, 0.0, 2.0, 1e-13, 200).unwrap();
        assert!((r - std::f64::consts::SQRT_2).abs() < 1e-10);
    }

    #[test]
    fn exact_endpoint_root() {
        assert_eq!(bisect(|x| x, 0.0, 1.0, 1e-9, 50), Some(0.0));
        assert_eq!(bisect(|x| x - 1.0, 0.0, 1.0, 1e-9, 50), Some(1.0));
    }

    #[test]
    fn no_bracket_returns_none() {
        assert!(bisect(|x| x * x + 1.0, -3.0, 3.0, 1e-9, 50).is_none());
    }

    #[test]
    fn transcendental_root() {
        // exp(x) = 3x has a root near 0.619 and one near 1.512.
        let r = bisect(|x| x.exp() - 3.0 * x, 0.0, 1.0, 1e-12, 200).unwrap();
        assert!((r.exp() - 3.0 * r).abs() < 1e-9);
    }
}
