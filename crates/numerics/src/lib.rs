//! Numerical utilities for the EACP (energy-aware adaptive checkpointing)
//! workspace.
//!
//! This crate is a small, dependency-free substrate providing exactly the
//! numerics the checkpointing analysis needs:
//!
//! * [`minimize`] — golden-section minimization of a unimodal function on an
//!   interval, and exhaustive/patience search for integer minimizers (used by
//!   the `num_SCP` / `num_CCP` procedures of the paper).
//! * [`roots`] — bracketing root finders (bisection), used for threshold
//!   inversions.
//! * [`stats`] — numerically stable online statistics (Welford) and
//!   binomial-proportion confidence intervals for Monte-Carlo estimates.
//! * [`sum`] — compensated (Neumaier) summation for long accumulations such
//!   as energy integration.
//!
//! # Examples
//!
//! ```
//! use eacp_numerics::minimize::golden_section_min;
//!
//! let (x, fx) = golden_section_min(|x| (x - 2.0) * (x - 2.0), 0.0, 10.0, 1e-9, 200);
//! assert!((x - 2.0).abs() < 1e-6);
//! assert!(fx < 1e-10);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod minimize;
pub mod roots;
pub mod stats;
pub mod sum;

pub use minimize::{golden_section_min, integer_min_by_key, unimodal_integer_min};
pub use roots::bisect;
pub use stats::{normal_cdf, wilson_interval, OnlineStats};
pub use sum::NeumaierSum;
