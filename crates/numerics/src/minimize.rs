//! One-dimensional minimization over reals and integers.
//!
//! The checkpointing analysis repeatedly minimizes expected-execution-time
//! functions `R1(T1)` / `R2(T2)` that are smooth and unimodal on `(0, T]`,
//! and their integer counterparts `R(m)` over the number of sub-intervals
//! `m ∈ {1, 2, …}`. The helpers here are deliberately simple, allocation-free
//! and deterministic.

/// Golden-ratio constant `(sqrt(5) - 1) / 2 ≈ 0.618`.
const INV_PHI: f64 = 0.618_033_988_749_894_9;

/// Minimizes a unimodal function `f` on the closed interval `[lo, hi]` using
/// golden-section search.
///
/// Returns `(x_min, f(x_min))`. If `f` is not unimodal the result is a local
/// minimum inside the bracket. The search stops when the bracket width drops
/// below `tol` or after `max_iter` shrink steps, whichever comes first.
///
/// # Panics
///
/// Panics if `lo > hi`, if either bound is not finite, or if `tol` is not
/// positive.
///
/// # Examples
///
/// ```
/// use eacp_numerics::minimize::golden_section_min;
/// let (x, _) = golden_section_min(|x| x.powi(2) + 3.0, -5.0, 5.0, 1e-10, 200);
/// assert!(x.abs() < 1e-6);
/// ```
pub fn golden_section_min<F>(mut f: F, lo: f64, hi: f64, tol: f64, max_iter: usize) -> (f64, f64)
where
    F: FnMut(f64) -> f64,
{
    assert!(lo.is_finite() && hi.is_finite(), "bounds must be finite");
    assert!(lo <= hi, "lower bound must not exceed upper bound");
    assert!(tol > 0.0, "tolerance must be positive");

    let (mut a, mut b) = (lo, hi);
    let mut c = b - INV_PHI * (b - a);
    let mut d = a + INV_PHI * (b - a);
    let mut fc = f(c);
    let mut fd = f(d);

    for _ in 0..max_iter {
        if (b - a).abs() <= tol {
            break;
        }
        if fc <= fd {
            b = d;
            d = c;
            fd = fc;
            c = b - INV_PHI * (b - a);
            fc = f(c);
        } else {
            a = c;
            c = d;
            fc = fd;
            d = a + INV_PHI * (b - a);
            fd = f(d);
        }
    }
    let x = 0.5 * (a + b);
    let fx = f(x);
    // The midpoint may be (very slightly) worse than the best probe; return
    // the best of the three so the result never regresses below a probe.
    if fc <= fx && fc <= fd {
        (c, fc)
    } else if fd <= fx {
        (d, fd)
    } else {
        (x, fx)
    }
}

/// Finds the integer `m ∈ [lo, hi]` minimizing `f(m)` for a *unimodal*
/// integer sequence, by ascending scan with a patience window.
///
/// The scan starts at `lo` and walks upward; it stops early once the value
/// has failed to improve for `patience` consecutive probes (the sequence is
/// assumed unimodal, so further probes cannot improve). Returns
/// `(m_min, f(m_min))`.
///
/// This is the robust default used by the `num_SCP` / `num_CCP` procedures:
/// the expected-time sequences are unimodal in `m`, and `m` is small in
/// practice, so an ascending scan is both exact and cheap.
///
/// # Panics
///
/// Panics if `lo > hi` or `patience == 0`.
///
/// # Examples
///
/// ```
/// use eacp_numerics::minimize::unimodal_integer_min;
/// let (m, v) = unimodal_integer_min(|m| ((m as f64) - 7.3).powi(2), 1, 1000, 3);
/// assert_eq!(m, 7);
/// assert!((v - 0.09).abs() < 1e-12);
/// ```
pub fn unimodal_integer_min<F>(mut f: F, lo: u32, hi: u32, patience: u32) -> (u32, f64)
where
    F: FnMut(u32) -> f64,
{
    assert!(lo <= hi, "lower bound must not exceed upper bound");
    assert!(patience > 0, "patience must be positive");

    let mut best_m = lo;
    let mut best_v = f(lo);
    let mut since_improve = 0u32;
    let mut m = lo;
    while m < hi {
        m += 1;
        let v = f(m);
        if v < best_v {
            best_v = v;
            best_m = m;
            since_improve = 0;
        } else {
            since_improve += 1;
            if since_improve >= patience {
                break;
            }
        }
    }
    (best_m, best_v)
}

/// Exhaustively minimizes `f` over `lo..=hi`, returning `(argmin, min)`.
///
/// Unlike [`unimodal_integer_min`] this makes no unimodality assumption; it
/// is used in tests as the ground truth the patience scan is checked against.
///
/// # Panics
///
/// Panics if `lo > hi`.
pub fn integer_min_by_key<F>(mut f: F, lo: u32, hi: u32) -> (u32, f64)
where
    F: FnMut(u32) -> f64,
{
    assert!(lo <= hi, "lower bound must not exceed upper bound");
    let mut best = (lo, f(lo));
    for m in lo + 1..=hi {
        let v = f(m);
        if v < best.1 {
            best = (m, v);
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn golden_finds_quadratic_min() {
        let (x, fx) = golden_section_min(|x| (x - 3.5) * (x - 3.5) + 1.0, 0.0, 100.0, 1e-10, 300);
        assert!((x - 3.5).abs() < 1e-5, "x = {x}");
        assert!((fx - 1.0).abs() < 1e-9);
    }

    #[test]
    fn golden_handles_boundary_minimum() {
        // Monotone increasing: minimum at the left edge.
        let (x, _) = golden_section_min(|x| x.exp(), 1.0, 4.0, 1e-9, 200);
        assert!((x - 1.0).abs() < 1e-4, "x = {x}");
        // Monotone decreasing: minimum at the right edge.
        let (x, _) = golden_section_min(|x| -x, 1.0, 4.0, 1e-9, 200);
        assert!((x - 4.0).abs() < 1e-4, "x = {x}");
    }

    #[test]
    fn golden_degenerate_interval() {
        let (x, fx) = golden_section_min(|x| x * x, 2.0, 2.0, 1e-9, 10);
        assert_eq!(x, 2.0);
        assert_eq!(fx, 4.0);
    }

    #[test]
    #[should_panic(expected = "lower bound")]
    fn golden_rejects_inverted_bounds() {
        golden_section_min(|x| x, 1.0, 0.0, 1e-9, 10);
    }

    #[test]
    #[should_panic(expected = "tolerance")]
    fn golden_rejects_bad_tol() {
        golden_section_min(|x| x, 0.0, 1.0, 0.0, 10);
    }

    #[test]
    fn integer_scan_matches_exhaustive_on_unimodal() {
        let f = |m: u32| {
            let x = m as f64;
            x + 400.0 / x
        };
        let (m1, v1) = unimodal_integer_min(f, 1, 10_000, 2);
        let (m2, v2) = integer_min_by_key(f, 1, 200);
        assert_eq!(m1, m2);
        assert_eq!(m1, 20);
        assert!((v1 - v2).abs() < 1e-12);
    }

    #[test]
    fn integer_scan_minimum_at_lo() {
        let (m, v) = unimodal_integer_min(|m| m as f64, 1, 100, 3);
        assert_eq!(m, 1);
        assert_eq!(v, 1.0);
    }

    #[test]
    fn integer_scan_minimum_at_hi() {
        let (m, _) = unimodal_integer_min(|m| -(m as f64), 1, 50, 3);
        assert_eq!(m, 50);
    }

    #[test]
    fn integer_scan_lo_equals_hi() {
        let (m, v) = unimodal_integer_min(|m| m as f64 * 2.0, 7, 7, 1);
        assert_eq!(m, 7);
        assert_eq!(v, 14.0);
    }

    #[test]
    #[should_panic(expected = "patience")]
    fn integer_scan_rejects_zero_patience() {
        unimodal_integer_min(|m| m as f64, 1, 10, 0);
    }
}
