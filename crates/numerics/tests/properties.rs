//! Property-based tests for the numerics substrate.

use eacp_numerics::minimize::{golden_section_min, integer_min_by_key, unimodal_integer_min};
use eacp_numerics::roots::bisect;
use eacp_numerics::stats::{wilson_interval, OnlineStats};
use eacp_numerics::sum::NeumaierSum;
use proptest::prelude::*;

proptest! {
    /// Golden-section search locates the vertex of an arbitrary upward
    /// parabola placed inside the bracket.
    #[test]
    fn golden_section_finds_parabola_vertex(
        center in -50.0f64..50.0,
        scale in 0.01f64..100.0,
        offset in -1.0e3f64..1.0e3,
    ) {
        let (x, _) = golden_section_min(
            |x| scale * (x - center) * (x - center) + offset,
            -60.0,
            60.0,
            1e-10,
            500,
        );
        prop_assert!((x - center).abs() < 1e-4, "x = {x}, center = {center}");
    }

    /// The patience scan agrees with exhaustive search on unimodal data.
    #[test]
    fn patience_scan_is_exact_on_unimodal(opt in 1.0f64..500.0, curv in 0.001f64..10.0) {
        let f = |m: u32| curv * ((m as f64) - opt) * ((m as f64) - opt);
        let (m1, _) = unimodal_integer_min(f, 1, 2000, 2);
        let (m2, _) = integer_min_by_key(f, 1, 1000);
        prop_assert_eq!(m1, m2);
    }

    /// A bisection root is always inside the original bracket and nearly a
    /// zero of the (continuous, sign-changing) function.
    #[test]
    fn bisect_root_in_bracket(shift in -0.9f64..0.9) {
        let f = |x: f64| x.tanh() - shift;
        let r = bisect(f, -5.0, 5.0, 1e-12, 300).expect("bracket holds a root");
        prop_assert!((-5.0..=5.0).contains(&r));
        prop_assert!(f(r).abs() < 1e-9);
    }

    /// Welford mean matches a compensated direct sum.
    #[test]
    fn welford_mean_matches_direct(xs in proptest::collection::vec(-1e6f64..1e6, 1..400)) {
        let mut stats = OnlineStats::new();
        let mut sum = NeumaierSum::new();
        for &x in &xs {
            stats.push(x);
            sum.add(x);
        }
        let direct = sum.value() / xs.len() as f64;
        prop_assert!((stats.mean() - direct).abs() < 1e-6);
    }

    /// Merging stats in any split position equals sequential accumulation.
    #[test]
    fn welford_merge_any_split(xs in proptest::collection::vec(-1e3f64..1e3, 2..200), split_frac in 0.0f64..1.0) {
        let split = ((xs.len() as f64 * split_frac) as usize).min(xs.len());
        let mut whole = OnlineStats::new();
        for &x in &xs { whole.push(x); }
        let mut left = OnlineStats::new();
        let mut right = OnlineStats::new();
        for &x in &xs[..split] { left.push(x); }
        for &x in &xs[split..] { right.push(x); }
        left.merge(&right);
        prop_assert_eq!(left.count(), whole.count());
        prop_assert!((left.mean() - whole.mean()).abs() < 1e-9);
        prop_assert!((left.population_variance() - whole.population_variance()).abs() < 1e-6);
    }

    /// The Wilson interval always contains the point estimate and stays in [0, 1].
    #[test]
    fn wilson_contains_estimate(successes in 0u64..=500, extra in 0u64..500) {
        let trials = successes + extra.max(1);
        let p = successes as f64 / trials as f64;
        let (lo, hi) = wilson_interval(successes, trials, 1.96);
        prop_assert!((0.0..=1.0).contains(&lo));
        prop_assert!((0.0..=1.0).contains(&hi));
        prop_assert!(lo <= p + 1e-12 && p - 1e-12 <= hi);
    }

    /// Neumaier summation is within float tolerance of exact rational order-free sums
    /// for adversarial magnitude mixes.
    #[test]
    fn neumaier_is_order_insensitive(mut xs in proptest::collection::vec(-1e12f64..1e12, 2..100)) {
        let forward: NeumaierSum = xs.iter().copied().collect();
        xs.reverse();
        let backward: NeumaierSum = xs.iter().copied().collect();
        let scale = xs.iter().map(|x| x.abs()).fold(1.0, f64::max);
        prop_assert!((forward.value() - backward.value()).abs() <= 1e-9 * scale);
    }

    /// The sharded-execution invariant: merging *any* multi-way partition
    /// of the observations equals the unpartitioned accumulation — counts
    /// and extrema exactly, moments to float tolerance.
    #[test]
    fn welford_merge_any_partition(
        xs in proptest::collection::vec(-1e3f64..1e3, 1..300),
        cuts in proptest::collection::vec(0.0f64..1.0, 1..6),
    ) {
        let mut whole = OnlineStats::new();
        for &x in &xs { whole.push(x); }

        // Split xs at the (sorted) cut fractions into up to 7 chunks.
        let mut bounds: Vec<usize> = cuts.iter().map(|f| (f * xs.len() as f64) as usize).collect();
        bounds.push(0);
        bounds.push(xs.len());
        bounds.sort_unstable();
        let mut merged = OnlineStats::new();
        for pair in bounds.windows(2) {
            let mut part = OnlineStats::new();
            for &x in &xs[pair[0]..pair[1]] { part.push(x); }
            merged.merge(&part);
        }

        prop_assert_eq!(merged.count(), whole.count());
        prop_assert_eq!(merged.min(), whole.min());
        prop_assert_eq!(merged.max(), whole.max());
        prop_assert!((merged.mean() - whole.mean()).abs() < 1e-9);
        prop_assert!((merged.population_variance() - whole.population_variance()).abs() < 1e-6);
    }

    /// Merge is associative ((a ⊕ b) ⊕ c ≈ a ⊕ (b ⊕ c)) and the empty
    /// accumulator is its exact two-sided identity.
    #[test]
    fn welford_merge_associative_with_identity(
        a in proptest::collection::vec(-1e4f64..1e4, 0..80),
        b in proptest::collection::vec(-1e4f64..1e4, 0..80),
        c in proptest::collection::vec(-1e4f64..1e4, 0..80),
    ) {
        let stats = |xs: &[f64]| {
            let mut s = OnlineStats::new();
            for &x in xs { s.push(x); }
            s
        };
        let (sa, sb, sc) = (stats(&a), stats(&b), stats(&c));

        // Identity is exact, both sides.
        let mut left_id = OnlineStats::new();
        left_id.merge(&sa);
        prop_assert_eq!(left_id, sa);
        let mut right_id = sa;
        right_id.merge(&OnlineStats::new());
        prop_assert_eq!(right_id, sa);

        // Associativity: exact on counts/extrema, tight on moments.
        let mut ab = sa; ab.merge(&sb);
        let mut ab_c = ab; ab_c.merge(&sc);
        let mut bc = sb; bc.merge(&sc);
        let mut a_bc = sa; a_bc.merge(&bc);
        prop_assert_eq!(ab_c.count(), a_bc.count());
        prop_assert_eq!(ab_c.min(), a_bc.min());
        prop_assert_eq!(ab_c.max(), a_bc.max());
        if ab_c.count() > 0 {
            prop_assert!((ab_c.mean() - a_bc.mean()).abs() < 1e-9);
            prop_assert!(
                (ab_c.population_variance() - a_bc.population_variance()).abs() < 1e-6
            );
        }
    }
}
