//! Property-based tests of the paper's analytical procedures.

use eacp_core::analysis::{
    ccp_interval_mean_exact, ccp_interval_mean_time, checkpoint_interval,
    checkpoint_interval_with_branch, estimated_completion_time, k_fault_interval,
    k_fault_threshold, num_ccp, num_scp, poisson_interval, poisson_threshold,
    scp_interval_mean_exact, scp_interval_mean_time, IntervalBranch, IntervalInputs,
    OptimizeMethod, RenewalParams,
};
use proptest::prelude::*;

fn params_strategy() -> impl Strategy<Value = RenewalParams> {
    (0.5f64..40.0, 0.5f64..40.0, 0.0f64..10.0, 1e-5f64..5e-3)
        .prop_map(|(ts, tcp, tr, l)| RenewalParams::new(ts, tcp, tr, l))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The Fig. 4 interval is always within (0, Rt] and finite.
    #[test]
    fn interval_always_in_bounds(
        rd in 10.0f64..50_000.0,
        rt in 1.0f64..40_000.0,
        c in 1.0f64..100.0,
        rf in 0.0f64..10.0,
        lambda in 0.0f64..1e-2,
    ) {
        let itv = checkpoint_interval(IntervalInputs { rd, rt, c, rf, lambda });
        prop_assert!(itv.is_finite());
        prop_assert!(itv > 0.0);
        prop_assert!(itv <= rt + 1e-9);
    }

    /// Branch selection respects the thresholds it is defined by.
    #[test]
    fn interval_branch_consistency(
        rd in 100.0f64..50_000.0,
        rt in 1.0f64..40_000.0,
        c in 1.0f64..100.0,
        rf in 0.0f64..10.0,
        lambda in 1e-6f64..1e-2,
    ) {
        let (_, branch) = checkpoint_interval_with_branch(
            IntervalInputs { rd, rt, c, rf, lambda });
        let exp_error = lambda * rt;
        let thl = poisson_threshold(rd, lambda, c);
        match branch {
            IntervalBranch::DeadlineDriven => prop_assert!(rt > thl),
            IntervalBranch::Poisson => {
                prop_assert!(exp_error > rf);
                prop_assert!(rt <= thl);
            }
            IntervalBranch::KFaultExpected => {
                prop_assert!(exp_error <= rf);
                prop_assert!(rt <= thl);
                prop_assert!(rt > k_fault_threshold(rd, rf, c));
            }
            IntervalBranch::KFaultBudget => {
                prop_assert!(exp_error <= rf);
                prop_assert!(rt <= k_fault_threshold(rd, rf, c).max(thl.min(rt)));
            }
        }
    }

    /// `I1` and `I2` satisfy their defining first-order conditions: they
    /// minimize the respective overhead models.
    #[test]
    fn i1_minimizes_poisson_overhead(c in 1.0f64..100.0, lambda in 1e-5f64..1e-2) {
        // Overhead model: h(I) = C/I + λI/2 (checkpoint cost per unit work
        // plus expected re-execution loss). I1 is its argmin.
        let i1 = poisson_interval(c, lambda);
        let h = |i: f64| c / i + lambda * i / 2.0;
        prop_assert!(h(i1) <= h(i1 * 0.9) + 1e-12);
        prop_assert!(h(i1) <= h(i1 * 1.1) + 1e-12);
    }

    #[test]
    fn i2_minimizes_worst_case(n in 100.0f64..50_000.0, k in 1.0f64..10.0, c in 1.0f64..100.0) {
        // Worst case: w(I) = N + (N/I)·c + k·I; I2 = sqrt(Nc/k) minimizes.
        let i2 = k_fault_interval(n, k, c);
        let w = |i: f64| n + n / i * c + k * i;
        prop_assert!(w(i2) <= w(i2 * 0.9) + 1e-9);
        prop_assert!(w(i2) <= w(i2 * 1.1) + 1e-9);
    }

    /// The thresholds solve their defining equations.
    #[test]
    fn thresholds_solve_equations(
        rd in 100.0f64..100_000.0,
        lambda in 1e-6f64..1e-2,
        rf in 0.1f64..10.0,
        c in 1.0f64..100.0,
    ) {
        let thl = poisson_threshold(rd, lambda, c);
        prop_assert!((thl * (1.0 + (lambda * c / 2.0).sqrt()) - c - rd).abs() < 1e-6 * rd);
        let th = k_fault_threshold(rd, rf, c);
        prop_assert!((th + 2.0 * (rf * c * th).sqrt() - rd).abs() < 1e-6 * rd);
        // Both thresholds are below the deadline slack itself.
        prop_assert!(thl <= rd + c);
        prop_assert!(th <= rd);
    }

    /// Both renewal expressions are bounded below by the fault-free cost
    /// and increase with λ.
    #[test]
    fn renewal_times_dominate_fault_free(
        p in params_strategy(),
        t in 20.0f64..2_000.0,
        m in 1u32..16,
    ) {
        let t1 = t / m as f64;
        let fault_free_scp = t + m as f64 * p.store_time + p.compare_time;
        let r1 = scp_interval_mean_time(t1, t, &p);
        let r1x = scp_interval_mean_exact(m, t, &p);
        prop_assert!(r1 >= fault_free_scp - 1e-9);
        prop_assert!(r1x >= fault_free_scp - 1e-9);
        let fault_free_ccp = t + m as f64 * p.compare_time + p.store_time;
        let r2 = ccp_interval_mean_time(t1, t, &p);
        prop_assert!(r2 >= fault_free_ccp - 1e-9);

        let hotter = RenewalParams::new(
            p.store_time, p.compare_time, p.rollback_time, p.lambda * 2.0 + 1e-6);
        prop_assert!(scp_interval_mean_exact(m, t, &hotter) >= r1x - 1e-9);
        prop_assert!(ccp_interval_mean_time(t1, t, &hotter) >= r2 - 1e-9);
    }

    /// The CCP closed form and the defining renewal sum agree everywhere.
    #[test]
    fn ccp_closed_form_identity(
        p in params_strategy(),
        t in 20.0f64..2_000.0,
        m in 1u32..24,
    ) {
        let closed = ccp_interval_mean_time(t / m as f64, t, &p);
        let sum = ccp_interval_mean_exact(m, t, &p);
        prop_assert!((closed - sum).abs() / sum.max(1.0) < 1e-8,
            "closed {closed} vs sum {sum}");
    }

    /// Optimizer outputs are locally optimal for their own objective.
    #[test]
    fn optimizers_are_locally_optimal(
        p in params_strategy(),
        t in 20.0f64..2_000.0,
    ) {
        let m = num_scp(t, &p, OptimizeMethod::ExactRecursion);
        let cost = |m: u32| scp_interval_mean_exact(m, t, &p);
        prop_assert!(cost(m) <= cost(m + 1) + 1e-9);
        if m > 1 {
            prop_assert!(cost(m) <= cost(m - 1) + 1e-9);
        }
        let mc = num_ccp(t, &p, OptimizeMethod::ExactRecursion);
        let cost_c = |m: u32| ccp_interval_mean_exact(m, t, &p);
        prop_assert!(cost_c(mc) <= cost_c(mc + 1) + 1e-9);
        if mc > 1 {
            prop_assert!(cost_c(mc) <= cost_c(mc - 1) + 1e-9);
        }
    }

    /// `t_est` dominates the ideal fault-free time and is monotone in the
    /// remaining work, the fault rate, and (inversely) the speed.
    #[test]
    fn t_est_monotonicity(
        rc in 1.0f64..100_000.0,
        f in 0.5f64..4.0,
        c in 1.0f64..100.0,
        lambda in 0.0f64..1e-3,
    ) {
        let t = estimated_completion_time(rc, f, c, lambda);
        prop_assert!(t >= rc / f - 1e-9);
        prop_assert!(estimated_completion_time(rc * 2.0, f, c, lambda) >= t);
        prop_assert!(estimated_completion_time(rc, f, c, lambda + 1e-5) >= t);
        prop_assert!(estimated_completion_time(rc, f * 2.0, c, lambda) <= t);
    }
}
