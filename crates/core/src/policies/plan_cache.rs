//! Replan memoization: a fixed-capacity direct-mapped cache over replan
//! inputs.
//!
//! The adaptive schemes recompute speed, CSCP interval and `num_SCP` /
//! `num_CCP` subdivision at task start and after every detected error.
//! That computation — an integer argmin over the renewal closed form — is
//! the single most expensive call on the Monte-Carlo hot path, yet its
//! inputs recur constantly: every replication's *initial* plan sees the
//! same `(work, deadline, k)` triple, and post-fault replans happen at
//! checkpoint-grid positions whose `(remaining work, remaining time,
//! fault budget)` values form a small lattice revisited across
//! replications in the same block.
//!
//! [`PlanCache`] memoizes the full replan result behind an **exact-key**
//! contract: keys are the raw IEEE-754 bit patterns of the replan inputs
//! (plus a fingerprint of the cost/DVS environment), compared for
//! equality on every probe. A hit therefore returns the bit-identical
//! plan the uncached computation would produce — quantization decides
//! only which slot a key maps to, never whether two keys match. The
//! property test in `tests/replan_cache.rs` pins "cache never changes a
//! decision" over randomized contexts.
//!
//! Per the audit rules the cache is a fixed inline array (no `HashMap`,
//! no iteration-order dependence — R1) and performs no allocation at any
//! point (R3): direct-mapped, one slot per key hash, eviction by
//! overwrite.

/// Number of direct-mapped slots. Power of two so the slot index is a
/// mask; 64 entries (~3 KiB) cover the replan lattice of a paper-nominal
/// block with negligible conflict eviction.
const SLOTS: usize = 64;

/// One memoized replan decision.
#[derive(Debug, Clone, Copy)]
struct Entry {
    /// Exact key: bit patterns of (remaining cycles, time left, fault
    /// budget) and the environment fingerprint.
    key: [u64; 4],
    /// Chosen speed level.
    speed: usize,
    /// Chosen subdivision count `m`.
    m: u32,
    /// Whether the slot holds a value.
    full: bool,
    /// Chosen sub-interval length (interval / m).
    sub_interval: f64,
}

const EMPTY: Entry = Entry {
    key: [0; 4],
    speed: 0,
    m: 0,
    full: false,
    sub_interval: 0.0,
};

/// A fixed-capacity direct-mapped memo of replan decisions. See the
/// [module docs](self) for the exact-key contract.
#[derive(Debug, Clone)]
pub(crate) struct PlanCache {
    slots: [Entry; SLOTS],
    hits: u64,
    misses: u64,
}

impl PlanCache {
    /// An empty cache. The array is inline — no allocation, ever.
    pub(crate) const fn new() -> Self {
        Self {
            slots: [EMPTY; SLOTS],
            hits: 0,
            misses: 0,
        }
    }

    /// Forgets every memoized decision (used when the optimizer method
    /// changes after construction).
    pub(crate) fn invalidate(&mut self) {
        self.slots = [EMPTY; SLOTS];
    }

    /// Probes the cache for an exact key match.
    #[inline]
    pub(crate) fn get(&mut self, key: &[u64; 4]) -> Option<(usize, u32, f64)> {
        let slot = &self.slots[Self::index(key)];
        if slot.full && slot.key == *key {
            self.hits += 1;
            Some((slot.speed, slot.m, slot.sub_interval))
        } else {
            self.misses += 1;
            None
        }
    }

    /// Memoizes a computed decision, overwriting any colliding entry.
    #[inline]
    pub(crate) fn put(&mut self, key: [u64; 4], speed: usize, m: u32, sub_interval: f64) {
        self.slots[Self::index(&key)] = Entry {
            key,
            speed,
            m,
            full: true,
            sub_interval,
        };
    }

    /// Lifetime (hits, misses) — diagnostics only.
    pub(crate) fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Direct-mapped slot for a key: a SplitMix64-style mix of the folded
    /// key bits, masked to the table size. This quantization picks the
    /// slot only — matching is always on the full key.
    #[inline]
    fn index(key: &[u64; 4]) -> usize {
        let mut x = key[0]
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .wrapping_add(key[1])
            .wrapping_mul(0xbf58_476d_1ce4_e5b9)
            .wrapping_add(key[2])
            .wrapping_add(key[3]);
        x ^= x >> 31;
        x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
        x ^= x >> 29;
        (x as usize) & (SLOTS - 1)
    }
}

/// Number of slots in the subdivision-argmin memo. The key lattice is
/// tiny — one entry per (interval, frequency) pair, and the Fig. 4
/// Poisson branch yields an `rd`/`rt`-independent interval, so a handful
/// of slots cover a whole block.
const ARGMIN_SLOTS: usize = 8;

/// One memoized `num_SCP`/`num_CCP` argmin result.
#[derive(Debug, Clone, Copy)]
struct ArgminEntry {
    /// Exact key: bit patterns of (interval, frequency) plus the
    /// environment fingerprint.
    key: [u64; 3],
    /// The argmin subdivision count.
    m: u32,
    /// Whether the slot holds a value.
    full: bool,
}

const ARGMIN_EMPTY: ArgminEntry = ArgminEntry {
    key: [0; 3],
    m: 0,
    full: false,
};

/// A fixed-capacity direct-mapped memo of subdivision argmins — the
/// `num_SCP`/`num_CCP` integer walk over the renewal closed form, the
/// most expensive call a replan makes. Same exact-key contract as
/// [`PlanCache`]; this cache hits even when the full replan key misses,
/// because the Fig. 4 Poisson-branch interval does not depend on the
/// remaining work or time.
#[derive(Debug, Clone)]
pub(crate) struct ArgminCache {
    slots: [ArgminEntry; ARGMIN_SLOTS],
}

impl ArgminCache {
    /// An empty cache. Inline array — no allocation.
    pub(crate) const fn new() -> Self {
        Self {
            slots: [ARGMIN_EMPTY; ARGMIN_SLOTS],
        }
    }

    /// Forgets every memoized argmin.
    pub(crate) fn invalidate(&mut self) {
        self.slots = [ARGMIN_EMPTY; ARGMIN_SLOTS];
    }

    /// Probes for an exact key match.
    #[inline]
    pub(crate) fn get(&self, key: &[u64; 3]) -> Option<u32> {
        let slot = &self.slots[Self::index(key)];
        if slot.full && slot.key == *key {
            Some(slot.m)
        } else {
            None
        }
    }

    /// Memoizes a computed argmin, overwriting any colliding entry.
    #[inline]
    pub(crate) fn put(&mut self, key: [u64; 3], m: u32) {
        self.slots[Self::index(&key)] = ArgminEntry { key, m, full: true };
    }

    /// Direct-mapped slot for a key; matching is always on the full key.
    #[inline]
    fn index(key: &[u64; 3]) -> usize {
        let mut x = key[0]
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .wrapping_add(key[1])
            .wrapping_add(key[2]);
        x ^= x >> 33;
        x = x.wrapping_mul(0xff51_afd7_ed55_8ccd);
        (x as usize) & (ARGMIN_SLOTS - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miss_then_hit_roundtrips_the_value() {
        let mut c = PlanCache::new();
        let key = [1.5f64.to_bits(), 2.5f64.to_bits(), 5.0f64.to_bits(), 7];
        assert_eq!(c.get(&key), None);
        c.put(key, 1, 4, 123.456);
        assert_eq!(c.get(&key), Some((1, 4, 123.456)));
        assert_eq!(c.stats(), (1, 1));
    }

    #[test]
    fn different_keys_do_not_alias() {
        let mut c = PlanCache::new();
        let a = [1u64, 2, 3, 4];
        c.put(a, 0, 1, 1.0);
        // Same slot or not, a different key must never report a hit.
        for delta in 1..200u64 {
            let b = [1u64.wrapping_add(delta), 2, 3, 4];
            assert_eq!(c.get(&b), None, "delta {delta}");
        }
    }

    #[test]
    fn colliding_keys_evict_by_overwrite() {
        let mut c = PlanCache::new();
        // Find two distinct keys that map to the same slot.
        let a = [10u64, 20, 30, 40];
        let mut b = a;
        loop {
            b[0] += 1;
            if PlanCache::index(&b) == PlanCache::index(&a) {
                break;
            }
        }
        c.put(a, 1, 2, 3.0);
        c.put(b, 4, 5, 6.0);
        assert_eq!(c.get(&a), None, "overwritten by the colliding key");
        assert_eq!(c.get(&b), Some((4, 5, 6.0)));
    }

    #[test]
    fn invalidate_forgets_everything() {
        let mut c = PlanCache::new();
        let key = [9, 9, 9, 9];
        c.put(key, 2, 3, 4.0);
        c.invalidate();
        assert_eq!(c.get(&key), None);
    }

    #[test]
    fn argmin_cache_roundtrips_and_never_aliases() {
        let mut c = ArgminCache::new();
        let key = [100.0f64.to_bits(), 1.0f64.to_bits(), 7];
        assert_eq!(c.get(&key), None);
        c.put(key, 6);
        assert_eq!(c.get(&key), Some(6));
        for delta in 1..100u64 {
            let other = [key[0] ^ delta, key[1], key[2]];
            assert_eq!(c.get(&other), None, "delta {delta}");
        }
        c.invalidate();
        assert_eq!(c.get(&key), None);
    }
}
