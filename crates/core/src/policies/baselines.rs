//! Static-interval baseline schemes: Poisson-arrival and k-fault-tolerant.

use crate::analysis::{k_fault_interval, poisson_interval};
use eacp_sim::{CheckpointKind, CommitWindow, Directive, PlanContext, Policy};

/// The Poisson-arrival baseline (Duda 1983): compare-and-store checkpoints
/// at a constant interval `sqrt(2C/λ)`, minimizing the *average* execution
/// time; runs at one fixed speed and never aborts.
///
/// # Examples
///
/// ```
/// use eacp_core::policies::PoissonArrival;
/// use eacp_sim::{CheckpointCosts, Executor, Scenario, TaskSpec};
/// use eacp_energy::DvsConfig;
/// use eacp_faults::DeterministicFaults;
///
/// let s = Scenario::new(
///     TaskSpec::new(1000.0, 5000.0),
///     CheckpointCosts::paper_scp_variant(),
///     DvsConfig::paper_default(),
/// );
/// let mut p = PoissonArrival::new(1e-3, 0);
/// let out = Executor::new(&s).run(&mut p, &mut DeterministicFaults::none());
/// assert!(out.timely);
/// ```
#[derive(Debug, Clone)]
pub struct PoissonArrival {
    lambda: f64,
    speed: usize,
    interval: Option<f64>,
}

impl PoissonArrival {
    /// Creates the scheme for fault rate `lambda`, running at DVS level
    /// `speed`.
    ///
    /// # Panics
    ///
    /// Panics if `lambda` is negative or NaN.
    pub fn new(lambda: f64, speed: usize) -> Self {
        assert!(
            lambda >= 0.0 && !lambda.is_nan(),
            "lambda must be non-negative"
        );
        Self {
            lambda,
            speed,
            interval: None,
        }
    }

    /// The constant checkpoint interval, once computed (time units at the
    /// configured speed).
    pub fn interval(&self) -> Option<f64> {
        self.interval
    }

    /// Restores the just-constructed state (interval not yet computed) so
    /// one instance can serve many replications.
    pub fn reset(&mut self) {
        self.interval = None;
    }
}

impl Policy for PoissonArrival {
    fn name(&self) -> &str {
        "Poisson"
    }

    fn plan(&mut self, ctx: &PlanContext<'_>) -> Directive {
        let f = ctx.dvs.level(self.speed).frequency;
        let c = ctx.costs.cscp_cycles() / f;
        let lambda = self.lambda;
        let itv = *self
            .interval
            .get_or_insert_with(|| poisson_interval(c, lambda));
        // λ = 0 yields an infinite interval: a single checkpoint at task
        // end (the min against the remaining time keeps it finite).
        let dur = itv.min(ctx.remaining_time_at(self.speed));
        Directive::run(self.speed, dur, CheckpointKind::CompareStore)
    }

    fn commit_window(&mut self, ctx: &PlanContext<'_>) -> Option<CommitWindow> {
        // Every segment commits: the next interval is a one-segment window.
        // The executor only takes it when the interval fits before the
        // task end, which is exactly when `plan()`'s min() would pick the
        // constant interval; an infinite interval (λ = 0) is rejected by
        // the executor's finiteness guard and falls back to `plan()`.
        let f = ctx.dvs.level(self.speed).frequency;
        let c = ctx.costs.cscp_cycles() / f;
        let lambda = self.lambda;
        let itv = *self
            .interval
            .get_or_insert_with(|| poisson_interval(c, lambda));
        Some(CommitWindow {
            speed: self.speed,
            compute_time: itv,
            sub_kind: CheckpointKind::Store, // unused: subs == 0
            subs: 0,
        })
    }
}

/// The k-fault-tolerant baseline (Lee/Shin/Min 1999): compare-and-store
/// checkpoints at a constant interval `sqrt(NC/k)`, minimizing the
/// *worst-case* execution time under up to `k` faults; fixed speed, never
/// aborts.
#[derive(Debug, Clone)]
pub struct KFaultTolerant {
    k: u32,
    speed: usize,
    interval: Option<f64>,
}

impl KFaultTolerant {
    /// Creates the scheme tolerating up to `k` faults at DVS level `speed`.
    pub fn new(k: u32, speed: usize) -> Self {
        Self {
            k,
            speed,
            interval: None,
        }
    }

    /// The constant checkpoint interval, once computed (time units at the
    /// configured speed).
    pub fn interval(&self) -> Option<f64> {
        self.interval
    }

    /// Restores the just-constructed state (interval not yet computed) so
    /// one instance can serve many replications.
    pub fn reset(&mut self) {
        self.interval = None;
    }
}

impl Policy for KFaultTolerant {
    fn name(&self) -> &str {
        "k-f-t"
    }

    fn plan(&mut self, ctx: &PlanContext<'_>) -> Directive {
        let f = ctx.dvs.level(self.speed).frequency;
        let c = ctx.costs.cscp_cycles() / f;
        let k = self.k;
        let n_time = ctx.work_cycles / f;
        let itv = *self
            .interval
            .get_or_insert_with(|| k_fault_interval(n_time, k as f64, c));
        let dur = itv.min(ctx.remaining_time_at(self.speed));
        Directive::run(self.speed, dur, CheckpointKind::CompareStore)
    }

    fn commit_window(&mut self, ctx: &PlanContext<'_>) -> Option<CommitWindow> {
        // Same shape as `PoissonArrival`: one-segment commit windows at
        // the constant Lee/Shin/Min interval (k = 0 gives an infinite
        // interval, rejected by the executor's finiteness guard).
        let f = ctx.dvs.level(self.speed).frequency;
        let c = ctx.costs.cscp_cycles() / f;
        let k = self.k;
        let n_time = ctx.work_cycles / f;
        let itv = *self
            .interval
            .get_or_insert_with(|| k_fault_interval(n_time, k as f64, c));
        Some(CommitWindow {
            speed: self.speed,
            compute_time: itv,
            sub_kind: CheckpointKind::Store, // unused: subs == 0
            subs: 0,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eacp_energy::DvsConfig;
    use eacp_faults::{DeterministicFaults, PoissonProcess};
    use eacp_sim::{CheckpointCosts, Executor, Scenario, TaskSpec};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn scenario() -> Scenario {
        Scenario::new(
            TaskSpec::new(7600.0, 10_000.0),
            CheckpointCosts::paper_scp_variant(),
            DvsConfig::paper_default(),
        )
    }

    #[test]
    fn poisson_uses_duda_interval() {
        let s = scenario();
        let mut p = PoissonArrival::new(0.0014, 0);
        let out = Executor::new(&s).run(&mut p, &mut DeterministicFaults::none());
        assert!(out.completed);
        let expected_itv = (2.0 * 22.0 / 0.0014_f64).sqrt();
        assert!((p.interval().unwrap() - expected_itv).abs() < 1e-9);
        // ceil(7600 / 177.28) = 43 checkpoints.
        assert_eq!(out.compare_store_checkpoints, 43);
        assert_eq!(out.store_checkpoints, 0);
        assert_eq!(out.compare_checkpoints, 0);
    }

    #[test]
    fn poisson_zero_lambda_single_checkpoint() {
        let s = scenario();
        let mut p = PoissonArrival::new(0.0, 0);
        let out = Executor::new(&s).run(&mut p, &mut DeterministicFaults::none());
        assert!(out.completed);
        assert_eq!(out.compare_store_checkpoints, 1);
        assert!((out.finish_time - 7622.0).abs() < 1e-9);
    }

    #[test]
    fn poisson_at_high_speed_halves_exposure() {
        let s = scenario();
        let mut slow = PoissonArrival::new(0.0014, 0);
        let mut fast = PoissonArrival::new(0.0014, 1);
        let o_slow = Executor::new(&s).run(&mut slow, &mut DeterministicFaults::none());
        let o_fast = Executor::new(&s).run(&mut fast, &mut DeterministicFaults::none());
        assert!(o_fast.finish_time < o_slow.finish_time / 1.9);
        assert!(o_fast.energy > o_slow.energy, "V² doubles at f2");
    }

    #[test]
    fn kft_uses_lee_interval() {
        let s = scenario();
        let mut p = KFaultTolerant::new(5, 0);
        let out = Executor::new(&s).run(&mut p, &mut DeterministicFaults::none());
        assert!(out.completed);
        let expected_itv = (7600.0 * 22.0 / 5.0_f64).sqrt();
        assert!((p.interval().unwrap() - expected_itv).abs() < 1e-9);
    }

    #[test]
    fn kft_zero_k_single_checkpoint() {
        let s = scenario();
        let mut p = KFaultTolerant::new(0, 0);
        let out = Executor::new(&s).run(&mut p, &mut DeterministicFaults::none());
        assert!(out.completed);
        assert_eq!(out.compare_store_checkpoints, 1);
    }

    #[test]
    fn baselines_recover_from_faults() {
        let s = scenario();
        for policy in [true, false] {
            let mut faults = DeterministicFaults::new(vec![500.0, 3000.0]);
            let out = if policy {
                let mut p = PoissonArrival::new(0.0014, 0);
                Executor::new(&s).run(&mut p, &mut faults)
            } else {
                let mut p = KFaultTolerant::new(5, 0);
                Executor::new(&s).run(&mut p, &mut faults)
            };
            assert!(out.completed);
            assert_eq!(out.rollbacks, 2);
            assert_eq!(out.faults, 2);
        }
    }

    #[test]
    fn baseline_never_aborts_under_heavy_faults() {
        let s = Scenario::new(
            TaskSpec::new(7600.0, 8_000.0),
            CheckpointCosts::paper_scp_variant(),
            DvsConfig::paper_default(),
        );
        let mut p = PoissonArrival::new(5e-3, 0);
        let mut faults = PoissonProcess::new(5e-3, StdRng::seed_from_u64(1));
        let out = Executor::new(&s).run(&mut p, &mut faults);
        assert!(!out.aborted);
        assert!(out.anomaly.is_none());
    }
}
