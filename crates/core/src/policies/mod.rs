//! The checkpointing schemes evaluated in the paper.
//!
//! | Paper name | Constructor | Checkpoints | Speed |
//! |---|---|---|---|
//! | Poisson | [`PoissonArrival::new`] | CSCP every `sqrt(2C/λ)` | fixed |
//! | k-f-t | [`KFaultTolerant::new`] | CSCP every `sqrt(NC/k)` | fixed |
//! | A_D (ADT_DVS, DATE'03) | [`Adaptive::adt_dvs`] | adaptive CSCP | DVS |
//! | A_D_S (`adapchp_dvs_SCP`, Fig. 6) | [`Adaptive::dvs_scp`] | adaptive CSCP + SCP subdivision | DVS |
//! | A_D_C (`adapchp_dvs_CCP`, Fig. 7) | [`Adaptive::dvs_ccp`] | adaptive CSCP + CCP subdivision | DVS |
//! | `adapchp-SCP` (Fig. 3) | [`Adaptive::scp`] | adaptive CSCP + SCP subdivision | fixed |
//! | `adapchp-CCP` | [`Adaptive::ccp`] | adaptive CSCP + CCP subdivision | fixed |
//! | ADT without DVS (ablation) | [`Adaptive::cscp`] | adaptive CSCP | fixed |

mod adaptive;
mod baselines;
mod plan_cache;

pub use adaptive::{Adaptive, SubCheckpointKind};
pub use baselines::{KFaultTolerant, PoissonArrival};

use eacp_sim::{CheckpointKind, CommitWindow, Directive, PlanContext, Policy};

/// The closed set of in-repo checkpointing schemes, as one concrete type.
///
/// All eight spec schemes map onto these three implementations (the six
/// adaptive variants are [`Adaptive`] configurations). Monte-Carlo loops
/// build one `PolicyKind` per block and [`reset`](PolicyKind::reset) it
/// per replication — no `Box<dyn Policy>` allocation, and the engine loop
/// monomorphizes over the enum so `plan`/`on_compare` inline instead of
/// dispatching virtually. Custom policies outside this set keep using the
/// boxed trait object — the open, slower path.
#[derive(Debug, Clone)]
#[allow(missing_docs)]
// `Adaptive` embeds its direct-mapped plan/argmin caches inline (~4 KiB)
// so cache lookups stay pointer-chase-free on the replication hot path.
// Instances are pooled per block, never created per replication, so the
// variant-size skew costs nothing; boxing the caches would trade it for
// an indirection on every plan call.
#[allow(clippy::large_enum_variant)]
pub enum PolicyKind {
    Poisson(PoissonArrival),
    KFaultTolerant(KFaultTolerant),
    Adaptive(Adaptive),
}

impl PolicyKind {
    /// Restores the policy to its just-constructed state for a new
    /// replication seeded with `seed`.
    ///
    /// Every in-repo scheme is deterministic given the execution it
    /// observes, so the seed is currently unused — it is part of the
    /// signature so randomized policies can join the pooled path without
    /// changing any replication loop.
    pub fn reset(&mut self, seed: u64) {
        let _ = seed;
        match self {
            PolicyKind::Poisson(p) => p.reset(),
            PolicyKind::KFaultTolerant(p) => p.reset(),
            PolicyKind::Adaptive(p) => p.reset(),
        }
    }
}

impl Policy for PolicyKind {
    #[inline]
    fn name(&self) -> &str {
        match self {
            PolicyKind::Poisson(p) => p.name(),
            PolicyKind::KFaultTolerant(p) => p.name(),
            PolicyKind::Adaptive(p) => p.name(),
        }
    }

    #[inline]
    fn plan(&mut self, ctx: &PlanContext<'_>) -> Directive {
        match self {
            PolicyKind::Poisson(p) => p.plan(ctx),
            PolicyKind::KFaultTolerant(p) => p.plan(ctx),
            PolicyKind::Adaptive(p) => p.plan(ctx),
        }
    }

    #[inline]
    fn on_compare(&mut self, ctx: &PlanContext<'_>, kind: CheckpointKind, mismatch: bool) {
        match self {
            PolicyKind::Poisson(p) => p.on_compare(ctx, kind, mismatch),
            PolicyKind::KFaultTolerant(p) => p.on_compare(ctx, kind, mismatch),
            PolicyKind::Adaptive(p) => p.on_compare(ctx, kind, mismatch),
        }
    }

    #[inline]
    fn commit_window(&mut self, ctx: &PlanContext<'_>) -> Option<CommitWindow> {
        match self {
            PolicyKind::Poisson(p) => p.commit_window(ctx),
            PolicyKind::KFaultTolerant(p) => p.commit_window(ctx),
            PolicyKind::Adaptive(p) => p.commit_window(ctx),
        }
    }

    #[inline]
    fn on_commit_window_executed(&mut self) {
        match self {
            PolicyKind::Poisson(p) => p.on_commit_window_executed(),
            PolicyKind::KFaultTolerant(p) => p.on_commit_window_executed(),
            PolicyKind::Adaptive(p) => p.on_commit_window_executed(),
        }
    }
}
