//! The checkpointing schemes evaluated in the paper.
//!
//! | Paper name | Constructor | Checkpoints | Speed |
//! |---|---|---|---|
//! | Poisson | [`PoissonArrival::new`] | CSCP every `sqrt(2C/λ)` | fixed |
//! | k-f-t | [`KFaultTolerant::new`] | CSCP every `sqrt(NC/k)` | fixed |
//! | A_D (ADT_DVS, DATE'03) | [`Adaptive::adt_dvs`] | adaptive CSCP | DVS |
//! | A_D_S (`adapchp_dvs_SCP`, Fig. 6) | [`Adaptive::dvs_scp`] | adaptive CSCP + SCP subdivision | DVS |
//! | A_D_C (`adapchp_dvs_CCP`, Fig. 7) | [`Adaptive::dvs_ccp`] | adaptive CSCP + CCP subdivision | DVS |
//! | `adapchp-SCP` (Fig. 3) | [`Adaptive::scp`] | adaptive CSCP + SCP subdivision | fixed |
//! | `adapchp-CCP` | [`Adaptive::ccp`] | adaptive CSCP + CCP subdivision | fixed |
//! | ADT without DVS (ablation) | [`Adaptive::cscp`] | adaptive CSCP | fixed |

mod adaptive;
mod baselines;

pub use adaptive::{Adaptive, SubCheckpointKind};
pub use baselines::{KFaultTolerant, PoissonArrival};
