//! The paper's adaptive checkpointing schemes, with and without DVS and
//! with optional SCP/CCP subdivision — one implementation covering
//! `A_D`, `A_D_S`, `A_D_C` (Figs. 6/7), `adapchp-SCP`/`-CCP` (Fig. 3) and
//! the no-DVS adaptive-CSCP ablation.

use crate::analysis::{
    checkpoint_interval, choose_speed, num_ccp, num_scp, IntervalInputs, OptimizeMethod,
    RenewalParams,
};
use crate::policies::plan_cache::{ArgminCache, PlanCache};
use eacp_sim::{CheckpointKind, CommitWindow, Directive, PlanContext, Policy};

/// Which sub-checkpoint is placed between consecutive CSCPs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubCheckpointKind {
    /// SCPs between CSCPs (the `adapchp*_SCP` family): errors are detected
    /// late (at the CSCP) but roll back only to the nearest clean store.
    Store,
    /// CCPs between CSCPs (the `adapchp*_CCP` family): errors are detected
    /// early (at the next comparison) but roll back to the interval start.
    Compare,
}

/// One planned CSCP interval: `m` segments of `sub_interval` time units at
/// `speed`, the first `m − 1` ending in sub-checkpoints, the last in a CSCP.
#[derive(Debug, Clone, Copy)]
struct IntervalPlan {
    speed: usize,
    sub_interval: f64,
    m: u32,
    segments_done: u32,
    /// The planned level's frequency (denormalized from `speed`).
    freq: f64,
    /// Reciprocal fast path for the per-segment `remaining / freq`:
    /// `inv_exact` holds exactly when the frequency is a power of two, in
    /// which case multiplying by `inv_freq` is bit-identical to dividing
    /// (both are the correctly rounded `x·2⁻ᵏ`).
    inv_freq: f64,
    inv_exact: bool,
}

impl IntervalPlan {
    fn new(speed: usize, sub_interval: f64, m: u32, freq: f64) -> Self {
        let inv = 1.0 / freq;
        Self {
            speed,
            sub_interval,
            m,
            segments_done: 0,
            freq,
            inv_freq: inv,
            inv_exact: freq.to_bits() & ((1u64 << 52) - 1) == 0 && inv.is_finite(),
        }
    }

    /// `remaining / freq`, bit-identical to writing the division.
    #[inline]
    fn remaining_time(&self, remaining: f64) -> f64 {
        if self.inv_exact {
            remaining * self.inv_freq
        } else {
            remaining / self.freq
        }
    }
}

/// The adaptive checkpointing policy of the paper.
///
/// Behaviour (matching Figs. 3/6/7):
///
/// 1. At task start — and again after every detected error — pick the speed
///    (lowest level with `t_est <= Rd` when DVS is enabled), compute the
///    CSCP interval via the Fig. 4 `interval()` procedure, and subdivide it
///    into `m` sub-intervals via `num_SCP`/`num_CCP` when a sub-checkpoint
///    kind is configured.
/// 2. Between errors, keep the same interval and subdivision (the paper
///    recomputes only on faults).
/// 3. At each CSCP-interval boundary, "break with task failure" when the
///    remaining execution time exceeds the time left to the deadline.
///
/// Use the named constructors; see the [module docs](crate::policies) for
/// the mapping to the paper's scheme names.
#[derive(Debug, Clone)]
pub struct Adaptive {
    name: &'static str,
    lambda: f64,
    sub: Option<SubCheckpointKind>,
    dvs_enabled: bool,
    fixed_speed: usize,
    optimizer: OptimizeMethod,
    /// Configured fault-tolerance target `k` (the initial fault budget).
    k: u32,
    /// Remaining fault budget `Rf` (decremented on each detected error).
    rf: f64,
    plan: Option<IntervalPlan>,
    /// Count of detected errors (exposed for tests/diagnostics).
    errors_seen: u32,
    /// Memoized replan decisions, exact-key direct-mapped. Survives
    /// [`Adaptive::reset`]: replications in a block revisit the same
    /// replan lattice, and an exact-key hit is bit-identical to the
    /// uncached computation by construction.
    cache: PlanCache,
    /// Memoized `num_SCP`/`num_CCP` argmins keyed on (interval,
    /// frequency, env). Hits even when the full replan key misses: the
    /// Fig. 4 Poisson-branch interval is independent of remaining work
    /// and time, so post-fault replans reuse the same argmin.
    argmin_cache: ArgminCache,
}

impl Adaptive {
    fn new(
        name: &'static str,
        lambda: f64,
        k: u32,
        sub: Option<SubCheckpointKind>,
        dvs_enabled: bool,
        fixed_speed: usize,
    ) -> Self {
        assert!(
            lambda >= 0.0 && !lambda.is_nan(),
            "lambda must be non-negative"
        );
        Self {
            name,
            lambda,
            sub,
            dvs_enabled,
            fixed_speed,
            optimizer: OptimizeMethod::PaperClosedForm,
            k,
            rf: k as f64,
            plan: None,
            errors_seen: 0,
            cache: PlanCache::new(),
            argmin_cache: ArgminCache::new(),
        }
    }

    /// Restores the just-constructed state (full fault budget, no plan,
    /// no errors seen) so one instance can serve many replications.
    ///
    /// The replan memo deliberately survives: it caches a pure function
    /// of the replan inputs, so a later replication hitting an entry
    /// computes exactly what a fresh instance would.
    pub fn reset(&mut self) {
        self.rf = self.k as f64;
        self.plan = None;
        self.errors_seen = 0;
    }

    /// `A_D`: the DATE'03 ADT_DVS baseline — adaptive CSCP interval with
    /// DVS, no subdivision.
    pub fn adt_dvs(lambda: f64, k: u32) -> Self {
        Self::new("A_D", lambda, k, None, true, 0)
    }

    /// `A_D_S`: `adapchp_dvs_SCP` (paper Fig. 6) — the paper's proposed
    /// scheme for systems whose overhead is dominated by comparison time.
    pub fn dvs_scp(lambda: f64, k: u32) -> Self {
        Self::new("A_D_S", lambda, k, Some(SubCheckpointKind::Store), true, 0)
    }

    /// `A_D_C`: `adapchp_dvs_CCP` (paper Fig. 7) — the paper's proposed
    /// scheme for systems whose overhead is dominated by store time.
    pub fn dvs_ccp(lambda: f64, k: u32) -> Self {
        Self::new(
            "A_D_C",
            lambda,
            k,
            Some(SubCheckpointKind::Compare),
            true,
            0,
        )
    }

    /// `adapchp-SCP` (paper Fig. 3): adaptive SCP subdivision at a fixed
    /// speed (no DVS).
    pub fn scp(lambda: f64, k: u32, speed: usize) -> Self {
        Self::new(
            "A_S",
            lambda,
            k,
            Some(SubCheckpointKind::Store),
            false,
            speed,
        )
    }

    /// `adapchp-CCP`: adaptive CCP subdivision at a fixed speed (no DVS).
    pub fn ccp(lambda: f64, k: u32, speed: usize) -> Self {
        Self::new(
            "A_C",
            lambda,
            k,
            Some(SubCheckpointKind::Compare),
            false,
            speed,
        )
    }

    /// Adaptive CSCP interval at a fixed speed — the DATE'03 ADT scheme
    /// without DVS (ablation baseline, not in the paper's tables).
    pub fn cscp(lambda: f64, k: u32, speed: usize) -> Self {
        Self::new("A", lambda, k, None, false, speed)
    }

    /// Overrides how `num_SCP`/`num_CCP` optimize the subdivision count
    /// (default: the paper's closed-form procedure).
    pub fn with_optimizer(mut self, optimizer: OptimizeMethod) -> Self {
        self.optimizer = optimizer;
        // Memoized decisions were computed under the previous optimizer.
        self.cache.invalidate();
        self.argmin_cache.invalidate();
        self
    }

    /// Lifetime replan-memo (hits, misses) — diagnostics and tests.
    pub fn plan_cache_stats(&self) -> (u64, u64) {
        self.cache.stats()
    }

    /// Remaining fault budget `Rf`.
    pub fn remaining_fault_budget(&self) -> f64 {
        self.rf
    }

    /// Errors detected so far.
    pub fn errors_seen(&self) -> u32 {
        self.errors_seen
    }

    /// The configured sub-checkpoint kind, if any.
    pub fn sub_checkpoint(&self) -> Option<SubCheckpointKind> {
        self.sub
    }

    /// Fingerprint of the planning environment (checkpoint costs and DVS
    /// table) folded into the memo key, so an instance reused against a
    /// different scenario — the `from_parts` escape hatch allows it —
    /// can never serve a stale plan.
    #[inline]
    fn env_fingerprint(ctx: &PlanContext<'_>) -> u64 {
        let mut fp = ctx
            .costs
            .store_cycles
            .to_bits()
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            ^ ctx.costs.compare_cycles.to_bits().rotate_left(21)
            ^ ctx.costs.rollback_cycles.to_bits().rotate_left(42);
        for level in ctx.dvs.levels() {
            fp = fp
                .rotate_left(7)
                .wrapping_add(level.frequency.to_bits() ^ level.voltage.to_bits().rotate_left(32));
        }
        fp
    }

    /// Builds a fresh interval plan (paper Fig. 6 lines 2–4 / 15–17),
    /// memoized through the exact-key [`PlanCache`]. Returns `None` when
    /// the deadline can no longer be met.
    fn replan(&mut self, ctx: &PlanContext<'_>, remaining_cycles: f64) -> Option<IntervalPlan> {
        let c_cycles = ctx.costs.cscp_cycles();
        let rd = ctx.time_left();
        let key = [
            remaining_cycles.to_bits(),
            rd.to_bits(),
            self.rf.to_bits(),
            Self::env_fingerprint(ctx),
        ];
        if let Some((speed, m, sub_interval)) = self.cache.get(&key) {
            return Some(IntervalPlan::new(
                speed,
                sub_interval,
                m,
                ctx.dvs.level(speed).frequency,
            ));
        }
        let speed = if self.dvs_enabled {
            choose_speed(remaining_cycles, rd, c_cycles, self.lambda, ctx.dvs)
        } else {
            self.fixed_speed
        };
        let f = ctx.dvs.level(speed).frequency;
        let rt = remaining_cycles / f;
        if rt > rd {
            return None; // "break with task failure"
        }
        let interval = checkpoint_interval(IntervalInputs {
            rd,
            rt,
            c: c_cycles / f,
            rf: self.rf,
            lambda: self.lambda,
        });
        let (m, sub_interval) = match self.sub {
            None => (1, interval),
            Some(kind) => {
                let argmin_key = [interval.to_bits(), f.to_bits(), key[3]];
                let m = match self.argmin_cache.get(&argmin_key) {
                    Some(m) => m,
                    None => {
                        let params = RenewalParams::new(
                            ctx.costs.store_cycles / f,
                            ctx.costs.compare_cycles / f,
                            ctx.costs.rollback_cycles / f,
                            self.lambda,
                        );
                        let m = match kind {
                            SubCheckpointKind::Store => num_scp(interval, &params, self.optimizer),
                            SubCheckpointKind::Compare => {
                                num_ccp(interval, &params, self.optimizer)
                            }
                        };
                        self.argmin_cache.put(argmin_key, m);
                        m
                    }
                };
                (m, interval / m as f64)
            }
        };
        self.cache.put(key, speed, m, sub_interval);
        Some(IntervalPlan::new(speed, sub_interval, m, f))
    }
}

impl Policy for Adaptive {
    fn name(&self) -> &str {
        self.name
    }

    fn plan(&mut self, ctx: &PlanContext<'_>) -> Directive {
        let remaining = ctx.remaining_cycles();
        if remaining <= 1e-9 {
            // All work done but not yet verified (an interval ended exactly
            // at task end with a sub-checkpoint): commit now.
            return Directive::run(ctx.speed, 0.0, CheckpointKind::CompareStore);
        }
        if self.plan.is_none() {
            match self.replan(ctx, remaining) {
                Some(p) => self.plan = Some(p),
                None => return Directive::Abort,
            }
        }
        let sub = self.sub;
        // audit:allow(panic): the branch above either fills `self.plan` or
        // returns `Abort`, so the option is always `Some` here.
        let plan = self.plan.as_mut().expect("plan was just ensured");
        let remaining_time = plan.remaining_time(remaining);
        if plan.segments_done == 0 && remaining_time > ctx.time_left() + 1e-9 {
            // The paper's while-loop guard, re-checked at every CSCP
            // interval boundary.
            return Directive::Abort;
        }
        let last_of_interval = plan.segments_done + 1 >= plan.m;
        let final_segment = remaining_time <= plan.sub_interval + 1e-9;
        let kind = if last_of_interval || final_segment {
            CheckpointKind::CompareStore
        } else {
            // audit:allow(panic): the constructor only accepts `m > 1` plans
            // together with a sub-checkpoint kind, so `sub` is `Some`.
            match sub.expect("m > 1 only with a sub-checkpoint kind") {
                SubCheckpointKind::Store => CheckpointKind::Store,
                SubCheckpointKind::Compare => CheckpointKind::Compare,
            }
        };
        plan.segments_done = if kind == CheckpointKind::CompareStore {
            0
        } else {
            plan.segments_done + 1
        };
        Directive::run(plan.speed, plan.sub_interval, kind)
    }

    fn on_compare(&mut self, _ctx: &PlanContext<'_>, _kind: CheckpointKind, mismatch: bool) {
        if mismatch {
            // Fig. 6 lines 14–17: decrement the fault budget and recompute
            // speed, interval and subdivision at the next planning point.
            self.errors_seen += 1;
            self.rf = (self.rf - 1.0).max(0.0);
            self.plan = None;
        }
    }

    fn commit_window(&mut self, ctx: &PlanContext<'_>) -> Option<CommitWindow> {
        let remaining = ctx.remaining_cycles();
        if remaining <= 1e-9 {
            return None; // `plan()` would issue the zero-length commit
        }
        if self.plan.is_none() {
            // Materialize the plan exactly as `plan()` would: `replan` is
            // deterministic in (ctx, rf), so whether or not the executor
            // takes the window, a later `plan()` call sees this identical
            // plan (and `None` here means `plan()` will return `Abort`).
            self.plan = Some(self.replan(ctx, remaining)?);
        }
        // audit:allow(panic): the branch above either fills `self.plan` or
        // returns early, so the option is always `Some` here.
        let plan = self.plan.as_ref().expect("plan was just ensured");
        let remaining_time = plan.remaining_time(remaining);
        if plan.segments_done == 0 && remaining_time > ctx.time_left() + 1e-9 {
            return None; // the interval-boundary abort guard would fire
        }
        // Between errors the schedule is fixed (the paper replans only on
        // faults): the rest of this CSCP interval is committed in advance.
        let subs = (plan.m - 1).checked_sub(plan.segments_done)?;
        let sub_kind = match self.sub {
            Some(SubCheckpointKind::Compare) => CheckpointKind::Compare,
            // `subs` is 0 for `m == 1` plans; the kind is then unused.
            Some(SubCheckpointKind::Store) | None => CheckpointKind::Store,
        };
        Some(CommitWindow {
            speed: plan.speed,
            compute_time: plan.sub_interval,
            sub_kind,
            subs,
        })
    }

    fn on_commit_window_executed(&mut self) {
        // The window ends in a clean CSCP commit: `plan()` would have
        // counted up to `m` and reset on issuing the CompareStore.
        if let Some(plan) = &mut self.plan {
            plan.segments_done = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eacp_energy::DvsConfig;
    use eacp_faults::{DeterministicFaults, PoissonProcess};
    use eacp_sim::{CheckpointCosts, Executor, Scenario, TaskSpec};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn scenario(util: f64, deadline: f64) -> Scenario {
        Scenario::new(
            TaskSpec::from_utilization(util, 1.0, deadline),
            CheckpointCosts::paper_scp_variant(),
            DvsConfig::paper_default(),
        )
    }

    #[test]
    fn all_variants_complete_fault_free() {
        let s = scenario(0.76, 10_000.0);
        let policies: Vec<Adaptive> = vec![
            Adaptive::adt_dvs(1e-4, 5),
            Adaptive::dvs_scp(1e-4, 5),
            Adaptive::dvs_ccp(1e-4, 5),
            Adaptive::scp(1e-4, 5, 0),
            Adaptive::ccp(1e-4, 5, 0),
            Adaptive::cscp(1e-4, 5, 0),
        ];
        for mut p in policies {
            let name = p.name().to_owned();
            let out = Executor::new(&s).run(&mut p, &mut DeterministicFaults::none());
            assert!(out.completed && out.timely, "{name} failed fault-free run");
            assert!(out.anomaly.is_none(), "{name} anomaly");
        }
    }

    #[test]
    fn scheme_names_match_paper() {
        assert_eq!(Adaptive::adt_dvs(1e-3, 5).name(), "A_D");
        assert_eq!(Adaptive::dvs_scp(1e-3, 5).name(), "A_D_S");
        assert_eq!(Adaptive::dvs_ccp(1e-3, 5).name(), "A_D_C");
        assert_eq!(Adaptive::scp(1e-3, 5, 0).name(), "A_S");
        assert_eq!(Adaptive::ccp(1e-3, 5, 0).name(), "A_C");
        assert_eq!(Adaptive::cscp(1e-3, 5, 0).name(), "A");
    }

    #[test]
    fn scp_variant_places_store_checkpoints() {
        let s = scenario(0.5, 20_000.0);
        let mut p = Adaptive::dvs_scp(2e-3, 5);
        let out = Executor::new(&s).run(&mut p, &mut DeterministicFaults::none());
        assert!(out.completed);
        assert!(
            out.store_checkpoints > 0,
            "A_D_S must subdivide with SCPs at λ = 2e-3"
        );
        assert_eq!(out.compare_checkpoints, 0);
        assert!(out.compare_store_checkpoints > 0);
    }

    #[test]
    fn ccp_variant_places_compare_checkpoints() {
        let s = Scenario::new(
            TaskSpec::from_utilization(0.5, 1.0, 20_000.0),
            CheckpointCosts::paper_ccp_variant(),
            DvsConfig::paper_default(),
        );
        let mut p = Adaptive::dvs_ccp(2e-3, 5);
        let out = Executor::new(&s).run(&mut p, &mut DeterministicFaults::none());
        assert!(out.completed);
        assert!(out.compare_checkpoints > 0);
        assert_eq!(out.store_checkpoints, 0);
    }

    #[test]
    fn adt_dvs_uses_only_cscp() {
        let s = scenario(0.76, 10_000.0);
        let mut p = Adaptive::adt_dvs(0.0014, 5);
        let out = Executor::new(&s).run(&mut p, &mut DeterministicFaults::none());
        assert!(out.completed);
        assert_eq!(out.store_checkpoints, 0);
        assert_eq!(out.compare_checkpoints, 0);
    }

    #[test]
    fn dvs_runs_slow_with_ample_slack() {
        let s = scenario(0.3, 40_000.0);
        let mut p = Adaptive::dvs_scp(1e-4, 5);
        let out = Executor::new(&s).run(&mut p, &mut DeterministicFaults::none());
        assert!(out.completed);
        assert_eq!(out.fast_fraction(), 0.0, "no need for f2 at U = 0.3");
    }

    #[test]
    fn dvs_runs_fast_when_tight() {
        // Paper operating point: U = 0.76, λ = 0.0014 ⇒ t_est(f1) ≈ 10835
        // > 10000, so the run must start at f2.
        let s = scenario(0.76, 10_000.0);
        let mut p = Adaptive::dvs_scp(0.0014, 5);
        let out = Executor::new(&s).run(&mut p, &mut DeterministicFaults::none());
        assert!(out.completed);
        assert!(out.fast_fraction() > 0.0);
    }

    #[test]
    fn dvs_downshifts_after_progress() {
        // Start tight (must run fast); after enough progress the f1
        // estimate fits the remaining slack. A replan only happens on a
        // fault, so inject one late in the run.
        let s = scenario(0.76, 10_000.0);
        let mut p = Adaptive::dvs_scp(0.0014, 5);
        let mut faults = DeterministicFaults::new(vec![2500.0]);
        let out = Executor::new(&s).run(&mut p, &mut faults);
        assert!(out.completed, "one fault must be absorbed");
        let frac = out.fast_fraction();
        assert!(
            frac > 0.05 && frac < 0.95,
            "expected a mixed-speed run, got fast fraction {frac}"
        );
        assert!(out.speed_switches >= 1);
    }

    #[test]
    fn fixed_speed_variant_never_switches() {
        let s = scenario(0.5, 20_000.0);
        let mut p = Adaptive::scp(1e-3, 5, 0);
        let out = Executor::new(&s).run(&mut p, &mut DeterministicFaults::none());
        assert!(out.completed);
        assert_eq!(out.speed_switches, 0);
        assert_eq!(out.fast_fraction(), 0.0);
    }

    #[test]
    fn aborts_when_deadline_impossible() {
        // Remaining time at every speed exceeds the deadline outright.
        let s = Scenario::new(
            TaskSpec::new(30_000.0, 10_000.0), // even f2 needs 15_000
            CheckpointCosts::paper_scp_variant(),
            DvsConfig::paper_default(),
        );
        let mut p = Adaptive::dvs_scp(1e-4, 5);
        let out = Executor::new(&s).run(&mut p, &mut DeterministicFaults::none());
        assert!(out.aborted);
        assert!(!out.completed);
    }

    #[test]
    fn error_decrements_fault_budget_and_replans() {
        let s = scenario(0.5, 20_000.0);
        let mut p = Adaptive::dvs_scp(1e-3, 5);
        let mut faults = DeterministicFaults::new(vec![1000.0, 4000.0]);
        let out = Executor::new(&s).run(&mut p, &mut faults);
        assert!(out.completed);
        assert_eq!(out.rollbacks, 2);
        assert_eq!(p.errors_seen(), 2);
        assert!((p.remaining_fault_budget() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn fault_budget_saturates_at_zero() {
        let s = scenario(0.3, 40_000.0);
        let mut p = Adaptive::dvs_scp(1e-3, 1);
        let faults: Vec<f64> = (1..=5).map(|i| i as f64 * 1500.0).collect();
        let out = Executor::new(&s).run(&mut p, &mut DeterministicFaults::new(faults));
        assert!(out.completed);
        assert_eq!(p.errors_seen(), 5);
        assert_eq!(p.remaining_fault_budget(), 0.0);
    }

    #[test]
    fn scp_scheme_beats_cscp_only_under_matching_faults() {
        // The paper's core claim: with expensive comparisons (ts = 2,
        // tcp = 20) and a heavy fault load, SCP subdivision loses less work
        // per error than CSCP-only checkpointing. Compare mean timely
        // finish times under the fault rate the policies assume.
        // eacp-core sits below eacp-exec in the crate graph, so this test
        // aggregates replications directly on the public Summary API with
        // the workspace's standard per-replication seeding.
        use eacp_sim::{replication_seed, Summary};
        let s = scenario(0.76, 10_000.0);
        let lambda = 4e-3;
        let mc = |make: &dyn Fn() -> Adaptive| {
            let executor = Executor::new(&s);
            let mut sum = Summary::empty();
            for rep in 0..400u64 {
                let seed = replication_seed(11, rep);
                let mut p = make();
                let mut f = PoissonProcess::new(lambda, StdRng::seed_from_u64(seed));
                sum.absorb(&executor.run(&mut p, &mut f));
            }
            sum
        };
        let ads = mc(&|| Adaptive::dvs_scp(lambda, 5));
        let ad = mc(&|| Adaptive::adt_dvs(lambda, 5));
        assert!(ads.timely > 0 && ad.timely > 0);
        assert!(
            ads.finish_timely.mean() < ad.finish_timely.mean(),
            "A_D_S {} vs A_D {}",
            ads.finish_timely.mean(),
            ad.finish_timely.mean()
        );
        assert!(ads.p_timely() >= ad.p_timely() - 0.02);
    }

    #[test]
    fn exact_optimizer_variant_also_completes() {
        let s = scenario(0.76, 10_000.0);
        let mut p = Adaptive::dvs_scp(0.0014, 5).with_optimizer(OptimizeMethod::ExactRecursion);
        let mut faults = PoissonProcess::new(0.0014, StdRng::seed_from_u64(99));
        let out = Executor::new(&s).run(&mut p, &mut faults);
        assert!(out.anomaly.is_none());
        assert!(out.completed || out.aborted);
    }

    #[test]
    fn stochastic_runs_have_no_anomalies() {
        // Stress the planner across many seeds; any anomaly is a policy bug.
        let s = scenario(0.8, 10_000.0);
        for seed in 0..200 {
            let mut p = Adaptive::dvs_scp(0.0016, 5);
            let mut faults = PoissonProcess::new(0.0016, StdRng::seed_from_u64(seed));
            let out = Executor::new(&s).run(&mut p, &mut faults);
            assert!(out.anomaly.is_none(), "seed {seed}: {:?}", out.anomaly);
        }
        for seed in 0..200 {
            let mut p = Adaptive::dvs_ccp(0.0016, 5);
            let mut faults = PoissonProcess::new(0.0016, StdRng::seed_from_u64(seed));
            let out = Executor::new(&s).run(&mut p, &mut faults);
            assert!(out.anomaly.is_none(), "seed {seed}: {:?}", out.anomaly);
        }
    }

    #[test]
    #[should_panic(expected = "lambda")]
    fn rejects_negative_lambda() {
        Adaptive::dvs_scp(-1.0, 5);
    }
}
