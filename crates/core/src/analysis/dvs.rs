//! The DVS feasibility estimate `t_est` and speed selection (paper §3).

use eacp_energy::DvsConfig;

/// `t_est(Rc, f)` — estimated time to finish `rc` remaining cycles at
/// frequency `f` in the presence of faults and checkpointing:
///
/// ```text
/// t_est = (Rc/f) · (1 + sqrt(λc/f)) / (1 − sqrt(λc/f))
/// ```
///
/// Derivation: to tolerate the `λ·t_est` faults expected during execution,
/// the checkpoint interval is set to `sqrt(C/λ)` with `C = c/f`, giving a
/// checkpointing overhead factor `sqrt(λc/f)` and a matching expected
/// re-execution loss, which solves to the closed form above.
///
/// Returns `+inf` when `sqrt(λc/f) >= 1` (the fault rate is too high for
/// any useful progress at this speed).
///
/// # Panics
///
/// Panics unless `rc >= 0`, `f > 0`, `c > 0` (all finite) and
/// `lambda >= 0`.
///
/// # Examples
///
/// ```
/// use eacp_core::analysis::estimated_completion_time;
/// let t = estimated_completion_time(7600.0, 1.0, 22.0, 0.0014);
/// // Overhead factor (1+s)/(1−s) with s = sqrt(0.0308) ≈ 0.1755.
/// assert!((t / 7600.0 - 1.4256).abs() < 1e-3);
/// ```
pub fn estimated_completion_time(rc: f64, f: f64, c: f64, lambda: f64) -> f64 {
    assert!(
        rc >= 0.0 && rc.is_finite(),
        "remaining cycles must be non-negative and finite"
    );
    assert!(f > 0.0 && f.is_finite(), "frequency must be positive");
    assert!(
        c > 0.0 && c.is_finite(),
        "checkpoint cycles must be positive"
    );
    assert!(
        lambda >= 0.0 && !lambda.is_nan(),
        "lambda must be non-negative"
    );
    let s = (lambda * c / f).sqrt();
    if s >= 1.0 {
        f64::INFINITY
    } else {
        (rc / f) * (1.0 + s) / (1.0 - s)
    }
}

/// Picks the speed level per the paper's Figs. 6/7 line 2/15: the lowest
/// (most energy-efficient) level whose estimated completion time fits the
/// remaining deadline slack `rd`; the fastest level if none fits.
///
/// For the paper's two-level processor this is exactly
/// "`f = f1` if `t_est(Rc, f1) <= Rd`, else `f = f2`"; the generalization
/// to more levels scans slowest-first.
///
/// # Panics
///
/// Panics on the same conditions as [`estimated_completion_time`].
pub fn choose_speed(rc: f64, rd: f64, c_cycles: f64, lambda: f64, dvs: &DvsConfig) -> usize {
    for (idx, level) in dvs.levels().iter().enumerate() {
        if estimated_completion_time(rc, level.frequency, c_cycles, lambda) <= rd {
            return idx;
        }
    }
    dvs.fastest()
}

#[cfg(test)]
mod tests {
    use super::*;
    use eacp_energy::SpeedLevel;

    #[test]
    fn t_est_reduces_to_ideal_time_without_faults() {
        let t = estimated_completion_time(1000.0, 2.0, 22.0, 0.0);
        assert_eq!(t, 500.0);
    }

    #[test]
    fn t_est_monotone_in_lambda_and_rc() {
        let base = estimated_completion_time(1000.0, 1.0, 22.0, 1e-4);
        assert!(estimated_completion_time(1000.0, 1.0, 22.0, 1e-3) > base);
        assert!(estimated_completion_time(2000.0, 1.0, 22.0, 1e-4) > base);
    }

    #[test]
    fn t_est_infinite_when_rate_overwhelms() {
        // λc/f >= 1 ⇒ no progress possible.
        let t = estimated_completion_time(1000.0, 1.0, 22.0, 1.0 / 22.0);
        assert_eq!(t, f64::INFINITY);
    }

    #[test]
    fn faster_speed_cuts_t_est_superlinearly() {
        // Doubling f more than halves t_est: fewer faults land in the
        // shorter exposure window.
        let slow = estimated_completion_time(1000.0, 1.0, 22.0, 2e-3);
        let fast = estimated_completion_time(1000.0, 2.0, 22.0, 2e-3);
        assert!(fast < slow / 2.0);
    }

    #[test]
    fn choose_speed_prefers_slow_when_feasible() {
        let dvs = DvsConfig::paper_default();
        // Huge slack: run slow.
        assert_eq!(choose_speed(7600.0, 100_000.0, 22.0, 0.0014, &dvs), 0);
        // Paper-tight slack at U = 0.76, λ = 0.0014: t_est(f1) ≈ 10835 >
        // 10000, must run fast.
        assert_eq!(choose_speed(7600.0, 10_000.0, 22.0, 0.0014, &dvs), 1);
    }

    #[test]
    fn choose_speed_falls_back_to_fastest() {
        let dvs = DvsConfig::paper_default();
        // Nothing fits: still returns the fastest level.
        assert_eq!(choose_speed(50_000.0, 10.0, 22.0, 0.0014, &dvs), 1);
    }

    #[test]
    fn choose_speed_scans_multiple_levels() {
        let dvs = DvsConfig::new(vec![
            SpeedLevel::new(1.0, 1.0),
            SpeedLevel::new(1.5, 1.5),
            SpeedLevel::new(2.0, 2.0),
        ]);
        // Pick the middle level when the slow one is infeasible but the
        // middle fits.
        let rc = 10_000.0;
        let lambda = 1e-4;
        let rd_mid = estimated_completion_time(rc, 1.5, 22.0, lambda) * 1.01;
        let chosen = choose_speed(rc, rd_mid, 22.0, lambda, &dvs);
        assert_eq!(chosen, 1);
    }

    #[test]
    #[should_panic(expected = "frequency")]
    fn t_est_rejects_zero_frequency() {
        estimated_completion_time(1.0, 0.0, 22.0, 1e-4);
    }
}
