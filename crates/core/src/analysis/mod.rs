//! The paper's analytical machinery.
//!
//! Every display equation in the available paper text is corrupted by PDF
//! extraction; the formulas here were re-derived from first principles and
//! validated against the limiting cases the paper states in prose and
//! against Monte-Carlo simulation (see `DESIGN.md` §2 and the
//! `analysis_vs_simulation` integration tests).

mod dvs;
mod intervals;
mod prediction;
mod renewal;

pub use dvs::{choose_speed, estimated_completion_time};
pub use intervals::{
    checkpoint_interval, checkpoint_interval_with_branch, deadline_interval, k_fault_interval,
    k_fault_threshold, poisson_interval, poisson_threshold, IntervalBranch, IntervalInputs,
};
pub use prediction::{static_scheme_completion, CompletionEstimate};
pub use renewal::{
    ccp_interval_mean_exact, ccp_interval_mean_time, num_ccp, num_scp, scp_interval_mean_exact,
    scp_interval_mean_time, OptimizeMethod, RenewalParams,
};
