//! Mean execution time of one CSCP interval under the SCP and CCP schemes
//! (paper Eqs. (1) and (2)), and the optimal sub-checkpoint counts
//! (paper Fig. 2, procedures `num_SCP` / `num_CCP`).
//!
//! # Operational model
//!
//! One CSCP interval covers `T` time units of useful work, divided into `m`
//! equal segments of `T1 = T/m` (SCP scheme) or `T2 = T/m` (CCP scheme).
//! Sub-checkpoints are placed between segments, a CSCP at the end. Faults
//! are Poisson(λ) over useful computation; checkpoint costs are always paid
//! in full; a comparison detects any divergence that began before the
//! operation started.
//!
//! * **SCP scheme**: detection only at the terminal CSCP; rollback to the
//!   most recent *clean* SCP — so a fault wastes on average about half the
//!   interval plus its overheads.
//! * **CCP scheme**: detection at the first comparison after the fault —
//!   but rollback all the way to the interval start (nothing was stored).
//!
//! Both closed forms reproduce the limits the paper states in prose:
//! `R(T_sub = T) = (T + ts + tcp)·e^{λT}` (at `tr = 0`) and `R → ∞` as
//! `T_sub → 0⁺`. The exact recursions are validated against Monte-Carlo
//! simulation in the workspace integration tests.

use eacp_numerics::unimodal_integer_min;

/// Largest sub-checkpoint count considered by the optimizers.
const MAX_SUBDIVISIONS: u32 = 4096;

/// Cost and fault-rate parameters of the renewal analysis, all expressed in
/// wall-clock time at the *current* processor speed (`ts/f`, `tcp/f`,
/// `tr/f`, λ per time unit).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RenewalParams {
    /// `ts`: time to store the states of both processors.
    pub store_time: f64,
    /// `tcp`: time to compare the processors' states.
    pub compare_time: f64,
    /// `tr`: time to roll back to a consistent state.
    pub rollback_time: f64,
    /// `λ`: fault arrival rate.
    pub lambda: f64,
}

impl RenewalParams {
    /// Creates parameters.
    ///
    /// # Panics
    ///
    /// Panics if any time is negative/non-finite or `lambda` is
    /// negative/NaN.
    pub fn new(store_time: f64, compare_time: f64, rollback_time: f64, lambda: f64) -> Self {
        for (name, v) in [
            ("store_time", store_time),
            ("compare_time", compare_time),
            ("rollback_time", rollback_time),
        ] {
            assert!(
                v >= 0.0 && v.is_finite(),
                "{name} must be non-negative and finite"
            );
        }
        assert!(
            lambda >= 0.0 && !lambda.is_nan(),
            "lambda must be non-negative"
        );
        Self {
            store_time,
            compare_time,
            rollback_time,
            lambda,
        }
    }
}

/// Paper Eq. (1): mean execution time of one CSCP interval of length `t`
/// with SCPs every `t1` time units (closed-form renewal approximation).
///
/// ```text
/// R1(T1) = (T/T1)(T1 + ts) + tcp
///        + [ (T/T1)·(T + T1)/2 + (T/T1)·(ts + tr) + tcp ] · (e^{λT1} − 1)
/// ```
///
/// The first line is the fault-free cost; the second charges each expected
/// retry with the mean residual distance to the detecting CSCP
/// (`(T + T1)/2`), the re-executed stores, the comparison and the rollback.
///
/// # Panics
///
/// Panics unless `0 < t1 <= t` (with a small tolerance) and `t` is finite.
pub fn scp_interval_mean_time(t1: f64, t: f64, params: &RenewalParams) -> f64 {
    assert!(
        t > 0.0 && t.is_finite(),
        "interval length must be positive and finite"
    );
    assert!(
        t1 > 0.0 && t1 <= t * (1.0 + 1e-12),
        "sub-interval must be in (0, T]"
    );
    let m = t / t1;
    let ts = params.store_time;
    let tcp = params.compare_time;
    let tr = params.rollback_time;
    let fault_free = m * (t1 + ts) + tcp;
    let waste = m * (t + t1) / 2.0 + m * (ts + tr) + tcp;
    fault_free + waste * (params.lambda * t1).exp_m1()
}

/// Exact mean execution time of one CSCP interval under the SCP scheme with
/// `m` sub-intervals, by backward recursion over the last-good-SCP position.
///
/// For position `p` (segments already secured), `s = m − p` segments
/// remain; an attempt costs `s(T1 + ts) + tcp` and, if the first fault hits
/// relative segment `r`, leaves the system at position `p + r − 1` after a
/// rollback of `tr`:
///
/// ```text
/// E_p = s(T1 + ts) + tcp + Σ_{r=1..s} q_r (tr + E_{p+r−1}),
/// q_r = e^{−λ(r−1)T1} − e^{−λrT1},  R1(m) = E_0
/// ```
///
/// This is the ground truth the closed form approximates; the workspace
/// integration tests check it against Monte-Carlo simulation.
///
/// # Panics
///
/// Panics unless `m >= 1` and `t` is positive and finite.
pub fn scp_interval_mean_exact(m: u32, t: f64, params: &RenewalParams) -> f64 {
    assert!(m >= 1, "at least one segment is required");
    assert!(
        t > 0.0 && t.is_finite(),
        "interval length must be positive and finite"
    );
    let m = m as usize;
    let t1 = t / m as f64;
    let ts = params.store_time;
    let tcp = params.compare_time;
    let tr = params.rollback_time;
    let x = (-params.lambda * t1).exp(); // per-segment survival
    if x >= 1.0 {
        // Fault-free: single pass.
        return m as f64 * (t1 + ts) + tcp;
    }
    // e[p] = E_p; solve backwards from p = m − 1 down to 0.
    let mut e = vec![0.0_f64; m + 1];
    for p in (0..m).rev() {
        let s = m - p;
        let attempt = s as f64 * (t1 + ts) + tcp;
        let survive_all = x.powi(s as i32);
        // Σ_{r=2..s} q_r · E_{p+r−1}; q_r = x^{r−1}(1 − x).
        let mut cross = 0.0;
        let mut q = x * (1.0 - x); // q_2
        for r in 2..=s {
            cross += q * e[p + r - 1];
            q *= x;
        }
        let fail_any = 1.0 - survive_all;
        e[p] = (attempt + fail_any * tr + cross) / x;
    }
    e[0]
}

/// Paper Eq. (2): mean execution time of one CSCP interval of length `t`
/// with CCPs every `t2` time units (closed form, exact for the operational
/// model):
///
/// ```text
/// R2(T2) = (T2 + tcp)·(e^{λT} − 1)/(1 − e^{−λT2}) + ts·e^{λT2}
///        + tr·(e^{λT} − 1)
/// ```
///
/// # Panics
///
/// Panics unless `0 < t2 <= t` and `t` is finite.
pub fn ccp_interval_mean_time(t2: f64, t: f64, params: &RenewalParams) -> f64 {
    assert!(
        t > 0.0 && t.is_finite(),
        "interval length must be positive and finite"
    );
    assert!(
        t2 > 0.0 && t2 <= t * (1.0 + 1e-12),
        "sub-interval must be in (0, T]"
    );
    let ts = params.store_time;
    let tcp = params.compare_time;
    let tr = params.rollback_time;
    let lt = params.lambda * t;
    if lt < 1e-12 {
        return (t / t2) * (t2 + tcp) + ts;
    }
    let growth = lt.exp_m1(); // e^{λT} − 1
    let seg_fail = -(-params.lambda * t2).exp_m1(); // 1 − e^{−λT2}
    (t2 + tcp) * growth / seg_fail + ts * (params.lambda * t2).exp() + tr * growth
}

/// Exact mean execution time of one CSCP interval under the CCP scheme with
/// `m` sub-intervals, from the defining renewal sum (the algebraic closed
/// form [`ccp_interval_mean_time`] must agree to rounding):
///
/// ```text
/// R2(m) = A + e^{λmT2} Σ_{r=1..m} q_r W_r,
/// A = mT2 + m·tcp + ts,
/// W_r = r(T2 + tcp) + tr (+ ts when r = m)
/// ```
///
/// # Panics
///
/// Panics unless `m >= 1` and `t` is positive and finite.
pub fn ccp_interval_mean_exact(m: u32, t: f64, params: &RenewalParams) -> f64 {
    assert!(m >= 1, "at least one segment is required");
    assert!(
        t > 0.0 && t.is_finite(),
        "interval length must be positive and finite"
    );
    let mf = m as f64;
    let t2 = t / mf;
    let ts = params.store_time;
    let tcp = params.compare_time;
    let tr = params.rollback_time;
    let x = (-params.lambda * t2).exp();
    let a = mf * (t2 + tcp) + ts;
    if x >= 1.0 {
        return a;
    }
    let mut weighted = 0.0;
    let mut xr = 1.0; // x^{r−1}
    for r in 1..=m {
        let q = xr * (1.0 - x);
        let mut w = r as f64 * (t2 + tcp) + tr;
        if r == m {
            w += ts;
        }
        weighted += q * w;
        xr *= x;
    }
    // xr is now x^m.
    a + weighted / xr
}

/// How the sub-checkpoint count optimizers evaluate candidate counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OptimizeMethod {
    /// Minimize the paper's closed form (Eq. (1)/(2)) directly over the
    /// integer sub-division count. This computes the quantity Fig. 2's
    /// procedure (continuous golden-section minimization followed by the
    /// floor/ceil refinement) approximates — the `m` minimizing `R(T/m)` —
    /// exactly, in a handful of closed-form evaluations instead of ~45
    /// golden-section probes. `num_SCP`/`num_CCP` run on every adaptive
    /// replan (once per detected fault per replication), which made the
    /// old probe loop one of the hottest kernels of the whole simulator.
    /// This is the default (paper fidelity: same objective, same
    /// optimality guarantee, minus the continuous-search detour).
    #[default]
    PaperClosedForm,
    /// Direct integer search over the exact recursion (ablation variant;
    /// see the `ablations` bench).
    ExactRecursion,
}

/// Paper Fig. 2 (`num_SCP`): the number of sub-intervals `m` minimizing the
/// mean SCP-scheme execution time of a CSCP interval of length `t`.
///
/// # Panics
///
/// Panics unless `t` is positive and finite.
///
/// # Examples
///
/// ```
/// use eacp_core::analysis::{num_scp, OptimizeMethod, RenewalParams};
/// // Paper SCP parameters at f1: ts = 2, tcp = 20, λ = 0.0014.
/// let p = RenewalParams::new(2.0, 20.0, 0.0, 0.0014);
/// let m = num_scp(177.0, &p, OptimizeMethod::PaperClosedForm);
/// assert!((2..=6).contains(&m), "m = {m}");
/// ```
pub fn num_scp(t: f64, params: &RenewalParams, method: OptimizeMethod) -> u32 {
    optimize_subdivisions(
        t,
        method,
        |t_sub| scp_interval_mean_time(t_sub, t, params),
        |m| scp_interval_mean_exact(m, t, params),
    )
}

/// `num_CCP`: the number of sub-intervals `m` minimizing the mean
/// CCP-scheme execution time of a CSCP interval of length `t` (the paper
/// applies the Fig. 2 procedure to Eq. (2)).
///
/// # Panics
///
/// Panics unless `t` is positive and finite.
pub fn num_ccp(t: f64, params: &RenewalParams, method: OptimizeMethod) -> u32 {
    optimize_subdivisions(
        t,
        method,
        |t_sub| ccp_interval_mean_time(t_sub, t, params),
        |m| ccp_interval_mean_exact(m, t, params),
    )
}

fn optimize_subdivisions(
    t: f64,
    method: OptimizeMethod,
    closed: impl Fn(f64) -> f64,
    exact: impl Fn(u32) -> f64,
) -> u32 {
    assert!(
        t > 0.0 && t.is_finite(),
        "interval length must be positive and finite"
    );
    match method {
        OptimizeMethod::PaperClosedForm => {
            // R(T/m) is unimodal in m (it diverges at both ends and the
            // local-optimality tests pin the interior); the patience walk
            // finds the integer argmin Fig. 2's continuous minimization +
            // floor/ceil refinement approximates, at a fraction of the
            // closed-form evaluations.
            unimodal_integer_min(|m| closed(t / m as f64), 1, MAX_SUBDIVISIONS, 4).0
        }
        OptimizeMethod::ExactRecursion => {
            // Exact sequences are unimodal in m; a modest patience absorbs
            // floating-point plateaus.
            unimodal_integer_min(exact, 1, MAX_SUBDIVISIONS, 4).0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scp_params(lambda: f64) -> RenewalParams {
        RenewalParams::new(2.0, 20.0, 0.0, lambda)
    }

    fn ccp_params(lambda: f64) -> RenewalParams {
        RenewalParams::new(20.0, 2.0, 0.0, lambda)
    }

    #[test]
    fn r1_limit_at_t1_equals_t_matches_paper() {
        // Paper: "Let T1 = T, we have R1(T1) = (T + ts + tcp)·e^{λT}".
        let p = scp_params(0.001);
        let t = 500.0;
        let expected = (t + 2.0 + 20.0) * (0.001_f64 * t).exp();
        assert!((scp_interval_mean_time(t, t, &p) - expected).abs() < 1e-9);
        // The exact recursion with m = 1 agrees too (tr = 0).
        assert!((scp_interval_mean_exact(1, t, &p) - expected).abs() < 1e-9);
    }

    #[test]
    fn r2_limit_at_t2_equals_t_matches_paper() {
        // Paper: "If T2 = T, then R2(T2) = (T + ts + tcp)·e^{λT}".
        let p = ccp_params(0.001);
        let t = 500.0;
        let expected = (t + 20.0 + 2.0) * (0.001_f64 * t).exp();
        assert!((ccp_interval_mean_time(t, t, &p) - expected).abs() < 1e-9);
        assert!((ccp_interval_mean_exact(1, t, &p) - expected).abs() < 1e-9);
    }

    #[test]
    fn r1_diverges_as_t1_shrinks() {
        // Paper: "If T1 → 0+, then R1(T1) = +∞".
        let p = scp_params(0.0014);
        let t = 500.0;
        let r_tiny = scp_interval_mean_time(t / 1e6, t, &p);
        let r_small = scp_interval_mean_time(t / 1e3, t, &p);
        let r_mid = scp_interval_mean_time(t / 4.0, t, &p);
        assert!(r_small > r_mid);
        assert!(r_tiny > 100.0 * r_small);
    }

    #[test]
    fn r2_diverges_as_t2_shrinks() {
        let p = ccp_params(0.0014);
        let t = 500.0;
        let r_tiny = ccp_interval_mean_time(t / 1e6, t, &p);
        let r_small = ccp_interval_mean_time(t / 1e3, t, &p);
        let r_mid = ccp_interval_mean_time(t / 4.0, t, &p);
        assert!(r_small > r_mid);
        assert!(r_tiny > 100.0 * r_small);
    }

    #[test]
    fn ccp_closed_form_equals_renewal_sum() {
        // The algebraic closed form and the defining sum are the same
        // quantity; check across m, λ, and interval lengths.
        for &lambda in &[1e-4, 1e-3, 5e-3] {
            let p = ccp_params(lambda);
            for &t in &[50.0, 177.0, 1000.0] {
                for m in 1..=12u32 {
                    let closed = ccp_interval_mean_time(t / m as f64, t, &p);
                    let sum = ccp_interval_mean_exact(m, t, &p);
                    let rel = (closed - sum).abs() / sum;
                    assert!(rel < 1e-10, "m={m} t={t} λ={lambda}: {closed} vs {sum}");
                }
            }
        }
    }

    #[test]
    fn ccp_closed_form_with_rollback_cost() {
        let p = RenewalParams::new(20.0, 2.0, 7.0, 1e-3);
        for m in 1..=8u32 {
            let t = 300.0;
            let closed = ccp_interval_mean_time(t / m as f64, t, &p);
            let sum = ccp_interval_mean_exact(m, t, &p);
            assert!((closed - sum).abs() / sum < 1e-10);
        }
    }

    #[test]
    fn r1_closed_form_tracks_exact_recursion() {
        // Eq. (1) is an approximation; it should stay within a few percent
        // of the exact recursion in the operating range the paper uses.
        let p = scp_params(0.0014);
        for &t in &[100.0, 177.0, 400.0] {
            for m in 1..=8u32 {
                let closed = scp_interval_mean_time(t / m as f64, t, &p);
                let exact = scp_interval_mean_exact(m, t, &p);
                let rel = (closed - exact).abs() / exact;
                assert!(rel < 0.08, "m={m} t={t}: closed={closed} exact={exact}");
            }
        }
    }

    #[test]
    fn exact_recursions_reduce_to_fault_free_at_zero_lambda() {
        let p = RenewalParams::new(2.0, 20.0, 0.0, 0.0);
        let t = 300.0;
        for m in 1..=6u32 {
            let ff_scp = t + m as f64 * 2.0 + 20.0;
            assert!((scp_interval_mean_exact(m, t, &p) - ff_scp).abs() < 1e-9);
        }
        let p2 = RenewalParams::new(20.0, 2.0, 0.0, 0.0);
        for m in 1..=6u32 {
            let ff_ccp = t + m as f64 * 2.0 + 20.0;
            assert!((ccp_interval_mean_exact(m, t, &p2) - ff_ccp).abs() < 1e-9);
        }
    }

    #[test]
    fn num_scp_matches_classic_store_spacing() {
        // Optimal store spacing ≈ sqrt(2·ts/λ): for ts = 2, λ = 0.0014
        // that is ≈ 53.5, so an interval of 177 should get m ≈ 3–4.
        let p = scp_params(0.0014);
        let m = num_scp(177.0, &p, OptimizeMethod::PaperClosedForm);
        assert!((2..=5).contains(&m), "m = {m}");
        let m_big = num_scp(1000.0, &p, OptimizeMethod::PaperClosedForm);
        assert!(m_big > m, "longer interval wants more SCPs");
    }

    #[test]
    fn num_scp_is_one_for_rare_faults() {
        // Nearly fault-free: extra stores only cost time.
        let p = scp_params(1e-7);
        assert_eq!(num_scp(177.0, &p, OptimizeMethod::PaperClosedForm), 1);
        assert_eq!(num_scp(177.0, &p, OptimizeMethod::ExactRecursion), 1);
    }

    #[test]
    fn num_ccp_is_one_for_rare_faults() {
        let p = ccp_params(1e-7);
        assert_eq!(num_ccp(177.0, &p, OptimizeMethod::PaperClosedForm), 1);
        assert_eq!(num_ccp(177.0, &p, OptimizeMethod::ExactRecursion), 1);
    }

    #[test]
    fn num_scp_paper_result_is_locally_optimal() {
        let p = scp_params(0.0016);
        for &t in &[120.0, 177.0, 350.0, 900.0] {
            let m = num_scp(t, &p, OptimizeMethod::PaperClosedForm);
            let r = |m: u32| scp_interval_mean_time(t / m as f64, t, &p);
            assert!(r(m) <= r(m + 1) + 1e-9, "t={t}, m={m}");
            if m > 1 {
                assert!(r(m) <= r(m - 1) + 1e-9, "t={t}, m={m}");
            }
        }
    }

    #[test]
    fn num_ccp_exact_is_locally_optimal() {
        let p = ccp_params(0.0016);
        for &t in &[120.0, 177.0, 350.0, 900.0] {
            let m = num_ccp(t, &p, OptimizeMethod::ExactRecursion);
            let r = |m: u32| ccp_interval_mean_exact(m, t, &p);
            assert!(r(m) <= r(m + 1) + 1e-9, "t={t}, m={m}");
            if m > 1 {
                assert!(r(m) <= r(m - 1) + 1e-9, "t={t}, m={m}");
            }
        }
    }

    #[test]
    fn exact_and_paper_optimizers_agree_closely() {
        // Eq. (1) is an approximation, so its minimizer can deviate from the
        // exact recursion's; across the paper's operating range they stay
        // within a factor of two (the resulting mean-time penalty is
        // negligible — quantified in the `ablations` bench).
        for &lambda in &[1e-4, 1.4e-3, 1.6e-3] {
            let p = scp_params(lambda);
            for &t in &[100.0, 200.0, 500.0] {
                let a = num_scp(t, &p, OptimizeMethod::PaperClosedForm);
                let b = num_scp(t, &p, OptimizeMethod::ExactRecursion);
                let ratio = a.max(b) as f64 / a.min(b) as f64;
                assert!(ratio <= 2.0, "λ={lambda} t={t}: paper={a} exact={b}");
                // And the paper's m never costs more than 3% extra mean
                // time relative to the exact optimum.
                let cost = |m: u32| scp_interval_mean_exact(m, t, &p);
                assert!(
                    cost(a) <= cost(b) * 1.03,
                    "λ={lambda} t={t}: paper={a} exact={b}"
                );
            }
        }
    }

    #[test]
    fn higher_lambda_wants_more_subcheckpoints() {
        let t = 400.0;
        let low = num_scp(t, &scp_params(2e-4), OptimizeMethod::PaperClosedForm);
        let high = num_scp(t, &scp_params(4e-3), OptimizeMethod::PaperClosedForm);
        assert!(high >= low);
        let low_c = num_ccp(t, &ccp_params(2e-4), OptimizeMethod::PaperClosedForm);
        let high_c = num_ccp(t, &ccp_params(4e-3), OptimizeMethod::PaperClosedForm);
        assert!(high_c >= low_c);
    }

    #[test]
    #[should_panic(expected = "interval length")]
    fn num_scp_rejects_zero_interval() {
        num_scp(0.0, &scp_params(1e-3), OptimizeMethod::PaperClosedForm);
    }

    #[test]
    #[should_panic(expected = "sub-interval")]
    fn r1_rejects_oversized_subinterval() {
        scp_interval_mean_time(200.0, 100.0, &scp_params(1e-3));
    }

    #[test]
    #[should_panic(expected = "lambda")]
    fn params_reject_negative_lambda() {
        RenewalParams::new(1.0, 1.0, 0.0, -1.0);
    }
}
