//! Checkpoint-interval selection (paper Fig. 4, after Zhang & Chakrabarty,
//! DATE'03).
//!
//! All quantities are in wall-clock time units at the *current* processor
//! speed: the remaining execution time `Rt = Rc / f`, the time left to the
//! deadline `Rd`, and the checkpoint cost `C = c / f`.

/// Inputs of the interval-selection procedure.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IntervalInputs {
    /// Time left before the deadline (`Rd`).
    pub rd: f64,
    /// Remaining fault-free execution time at the current speed (`Rt`).
    pub rt: f64,
    /// Cost of one CSCP at the current speed (`C = c / f`).
    pub c: f64,
    /// Remaining number of faults the system still has to tolerate (`Rf`).
    pub rf: f64,
    /// Fault arrival rate (`λ`).
    pub lambda: f64,
}

/// Which branch of the Fig. 4 decision procedure produced the interval.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IntervalBranch {
    /// `Rt > Thλ`: deadline-driven interval `I3` (lines 3–4 / 8–9).
    DeadlineDriven,
    /// k-fault requirement stringent, moderate slack: `I2(Rt, exp_error, C)`
    /// (lines 5–6).
    KFaultExpected,
    /// k-fault requirement stringent, ample slack: `I2(Rt, Rf, C)` (line 7).
    KFaultBudget,
    /// Poisson criterion stringent, ample slack: `I1(C, λ)` (line 10).
    Poisson,
}

/// `I1(C, λ) = sqrt(2C/λ)` — the Poisson-arrival interval (Duda 1983):
/// minimizes the *average* execution time under Poisson faults.
///
/// Returns `+inf` for `λ <= 0` (no faults: checkpoint as rarely as
/// possible).
///
/// # Panics
///
/// Panics if `c` is not positive and finite.
///
/// # Examples
///
/// ```
/// use eacp_core::analysis::poisson_interval;
/// let i1 = poisson_interval(22.0, 0.0014);
/// assert!((i1 - (2.0 * 22.0 / 0.0014_f64).sqrt()).abs() < 1e-9);
/// ```
pub fn poisson_interval(c: f64, lambda: f64) -> f64 {
    assert!(
        c > 0.0 && c.is_finite(),
        "checkpoint cost must be positive and finite"
    );
    if lambda <= 0.0 {
        f64::INFINITY
    } else {
        (2.0 * c / lambda).sqrt()
    }
}

/// `I2(N, k, C) = sqrt(NC/k)` — the k-fault-tolerant interval
/// (Lee/Shin/Min 1999): minimizes the *worst-case* execution time under up
/// to `k` faults for remaining work `N`.
///
/// Returns `+inf` for `k <= 0` (no faults to tolerate) and `0` for
/// `n <= 0`.
///
/// # Panics
///
/// Panics if `c` is not positive and finite.
pub fn k_fault_interval(n: f64, k: f64, c: f64) -> f64 {
    assert!(
        c > 0.0 && c.is_finite(),
        "checkpoint cost must be positive and finite"
    );
    if k <= 0.0 {
        f64::INFINITY
    } else if n <= 0.0 {
        0.0
    } else {
        (n * c / k).sqrt()
    }
}

/// `I3(Rt, Rd, C) = 2C + Rt·C/(Rd − Rt)` — the deadline-driven interval
/// used when the remaining work is large relative to the slack: stretch the
/// interval (reduce checkpointing overhead) just enough to still fit the
/// deadline in the fault-free case.
///
/// Returns `+inf` when `Rd <= Rt` (no fault-free schedule fits; the caller
/// clamps to a single end-of-task checkpoint).
///
/// # Panics
///
/// Panics if `c` is not positive and finite or `rt` is not positive.
pub fn deadline_interval(rt: f64, rd: f64, c: f64) -> f64 {
    assert!(
        c > 0.0 && c.is_finite(),
        "checkpoint cost must be positive and finite"
    );
    assert!(rt > 0.0, "remaining time must be positive");
    if rd <= rt {
        f64::INFINITY
    } else {
        2.0 * c + rt * c / (rd - rt)
    }
}

/// `Thλ(Rd, λ, C) = (Rd + C) / (1 + sqrt(λC/2))` — the largest remaining
/// execution time for which Poisson-interval checkpointing still meets the
/// deadline fault-free.
///
/// With interval `I1 = sqrt(2C/λ)` the per-unit-work overhead is
/// `C/I1 = sqrt(λC/2)`, so completion takes `Rt(1 + sqrt(λC/2))` minus the
/// final checkpoint (`+C` in the numerator).
///
/// Returns `+inf` for `λ <= 0`.
///
/// # Panics
///
/// Panics if `c` is not positive and finite.
pub fn poisson_threshold(rd: f64, lambda: f64, c: f64) -> f64 {
    assert!(
        c > 0.0 && c.is_finite(),
        "checkpoint cost must be positive and finite"
    );
    if lambda <= 0.0 {
        f64::INFINITY
    } else {
        (rd + c) / (1.0 + (lambda * c / 2.0).sqrt())
    }
}

/// `Th(Rd, Rf, C) = Rd + 2RfC − 2·sqrt(RfC(Rd + RfC))` — the largest
/// remaining execution time for which the k-fault-tolerant worst case
/// (`Rt + 2·sqrt(RfCRt)`) still meets the deadline.
///
/// Returns `Rd` for `rf <= 0` (with no faults left to tolerate the worst
/// case is the fault-free case).
///
/// # Panics
///
/// Panics if `c` is not positive and finite or `rd` is negative.
pub fn k_fault_threshold(rd: f64, rf: f64, c: f64) -> f64 {
    assert!(
        c > 0.0 && c.is_finite(),
        "checkpoint cost must be positive and finite"
    );
    assert!(rd >= 0.0, "deadline slack must be non-negative");
    if rf <= 0.0 {
        return rd;
    }
    let kc = rf * c;
    rd + 2.0 * kc - 2.0 * (kc * (rd + kc)).sqrt()
}

/// The adaptive checkpoint-interval procedure of paper Fig. 4.
///
/// Returns the interval clamped into `(0, Rt]`: an interval longer than the
/// remaining work degenerates to a single checkpoint at task end, and a
/// positive floor guards the pathological `Rd ≈ Rt` corner.
///
/// See [`checkpoint_interval_with_branch`] for the branch taken.
///
/// # Panics
///
/// Panics if `rt` or `c` is not positive and finite, or `lambda` is
/// negative or NaN.
pub fn checkpoint_interval(inputs: IntervalInputs) -> f64 {
    checkpoint_interval_with_branch(inputs).0
}

/// [`checkpoint_interval`], also reporting which Fig. 4 branch fired.
pub fn checkpoint_interval_with_branch(inputs: IntervalInputs) -> (f64, IntervalBranch) {
    let IntervalInputs {
        rd,
        rt,
        c,
        rf,
        lambda,
    } = inputs;
    assert!(
        rt > 0.0 && rt.is_finite(),
        "remaining time must be positive and finite"
    );
    assert!(
        c > 0.0 && c.is_finite(),
        "checkpoint cost must be positive and finite"
    );
    assert!(lambda >= 0.0, "fault rate must be non-negative");

    // Line 1: expected number of faults in the remaining time.
    let exp_error = lambda * rt;
    let (raw, branch) = if exp_error <= rf {
        // Lines 2–7: the k-fault-tolerant requirement is the stringent one.
        if rt > poisson_threshold(rd, lambda, c) {
            (deadline_interval(rt, rd, c), IntervalBranch::DeadlineDriven)
        } else if rt > k_fault_threshold(rd, rf, c) {
            (
                k_fault_interval(rt, exp_error, c),
                IntervalBranch::KFaultExpected,
            )
        } else {
            (k_fault_interval(rt, rf, c), IntervalBranch::KFaultBudget)
        }
    } else {
        // Lines 8–10: the Poisson-arrival criterion is the stringent one.
        if rt > poisson_threshold(rd, lambda, c) {
            (deadline_interval(rt, rd, c), IntervalBranch::DeadlineDriven)
        } else {
            (poisson_interval(c, lambda), IntervalBranch::Poisson)
        }
    };
    // Clamp: never longer than the remaining work, never absurdly small.
    let floor = c.min(rt);
    (raw.clamp(floor, rt), branch)
}

#[cfg(test)]
mod tests {
    use super::*;

    const C: f64 = 22.0;

    #[test]
    fn i1_matches_duda() {
        let lambda = 0.0014;
        assert!((poisson_interval(C, lambda) - 177.281).abs() < 1e-2);
        assert_eq!(poisson_interval(C, 0.0), f64::INFINITY);
    }

    #[test]
    fn i2_matches_k_fault() {
        // sqrt(7600·22/5) ≈ 182.866
        assert!((k_fault_interval(7600.0, 5.0, C) - 182.866).abs() < 1e-2);
        assert_eq!(k_fault_interval(7600.0, 0.0, C), f64::INFINITY);
        assert_eq!(k_fault_interval(0.0, 3.0, C), 0.0);
    }

    #[test]
    fn i3_grows_as_slack_shrinks() {
        let rt = 7600.0;
        let roomy = deadline_interval(rt, 12_000.0, C);
        let tight = deadline_interval(rt, 8_000.0, C);
        assert!(tight > roomy);
        assert!(roomy >= 2.0 * C);
        assert_eq!(deadline_interval(rt, rt, C), f64::INFINITY);
    }

    #[test]
    fn poisson_threshold_is_consistent_with_i1_overhead() {
        // At Rt = Thλ, fault-free completion with interval I1 (minus the
        // final checkpoint) exactly meets the deadline:
        // Rt(1 + sqrt(λC/2)) − C = Rd.
        let (rd, lambda) = (10_000.0, 0.0014);
        let th = poisson_threshold(rd, lambda, C);
        let completion = th * (1.0 + (lambda * C / 2.0).sqrt()) - C;
        assert!((completion - rd).abs() < 1e-6);
        assert_eq!(poisson_threshold(rd, 0.0, C), f64::INFINITY);
    }

    #[test]
    fn k_fault_threshold_solves_worst_case_equation() {
        // At Rt = Th, the k-fault worst case Rt + 2·sqrt(RfCRt) = Rd.
        let (rd, rf) = (10_000.0, 5.0);
        let th = k_fault_threshold(rd, rf, C);
        let worst = th + 2.0 * (rf * C * th).sqrt();
        assert!((worst - rd).abs() < 1e-6, "worst = {worst}");
        assert_eq!(k_fault_threshold(rd, 0.0, C), rd);
    }

    #[test]
    fn threshold_is_below_deadline() {
        let th = k_fault_threshold(10_000.0, 5.0, C);
        assert!(th < 10_000.0);
        let thl = poisson_threshold(10_000.0, 0.0014, C);
        assert!(thl < 10_000.0);
    }

    #[test]
    fn branch_poisson_for_high_rate_ample_slack() {
        // λRt = 14 > Rf = 5, and Rt comfortably below Thλ.
        let inp = IntervalInputs {
            rd: 10_000.0,
            rt: 7_600.0,
            c: C,
            rf: 5.0,
            lambda: 0.0014,
        };
        let (itv, branch) = checkpoint_interval_with_branch(inp);
        assert_eq!(branch, IntervalBranch::Poisson);
        assert!((itv - poisson_interval(C, 0.0014)).abs() < 1e-9);
    }

    #[test]
    fn branch_k_fault_budget_for_low_rate_ample_slack() {
        // λRt = 0.76 ≤ Rf = 5, Rt far below Th.
        let inp = IntervalInputs {
            rd: 30_000.0,
            rt: 7_600.0,
            c: C,
            rf: 5.0,
            lambda: 1e-4,
        };
        let (itv, branch) = checkpoint_interval_with_branch(inp);
        assert_eq!(branch, IntervalBranch::KFaultBudget);
        assert!((itv - k_fault_interval(7_600.0, 5.0, C)).abs() < 1e-9);
    }

    #[test]
    fn branch_k_fault_expected_in_middle_band() {
        // Between Th and Thλ with exp_error ≤ Rf: uses exp_error faults.
        let lambda = 1e-4;
        let (rd, rf) = (10_000.0, 5.0);
        let th = k_fault_threshold(rd, rf, C);
        let thl = poisson_threshold(rd, lambda, C);
        assert!(th < thl);
        let rt = 0.5 * (th + thl);
        let inp = IntervalInputs {
            rd,
            rt,
            c: C,
            rf,
            lambda,
        };
        let (itv, branch) = checkpoint_interval_with_branch(inp);
        assert_eq!(branch, IntervalBranch::KFaultExpected);
        assert!((itv - k_fault_interval(rt, lambda * rt, C)).abs() < 1e-9);
    }

    #[test]
    fn branch_deadline_driven_when_tight() {
        // Rt barely below Rd: beyond Thλ, must stretch intervals.
        let inp = IntervalInputs {
            rd: 10_000.0,
            rt: 9_900.0,
            c: C,
            rf: 5.0,
            lambda: 0.0014,
        };
        let (itv, branch) = checkpoint_interval_with_branch(inp);
        assert_eq!(branch, IntervalBranch::DeadlineDriven);
        assert!((itv - deadline_interval(9_900.0, 10_000.0, C)).abs() < 1e-9);
    }

    #[test]
    fn interval_clamped_to_remaining_time() {
        // Tiny remaining work: whatever the branch says, never exceed Rt.
        let inp = IntervalInputs {
            rd: 10_000.0,
            rt: 10.0,
            c: C,
            rf: 5.0,
            lambda: 1e-6,
        };
        let itv = checkpoint_interval(inp);
        assert!(itv <= 10.0);
        assert!(itv > 0.0);
    }

    #[test]
    fn interval_handles_infeasible_slack() {
        // Rd < Rt with Rt above Thλ: I3 = inf, clamps to Rt (one final
        // checkpoint); the policy's abort logic handles the failure.
        let inp = IntervalInputs {
            rd: 5_000.0,
            rt: 7_600.0,
            c: C,
            rf: 5.0,
            lambda: 0.0014,
        };
        let (itv, branch) = checkpoint_interval_with_branch(inp);
        assert_eq!(branch, IntervalBranch::DeadlineDriven);
        assert_eq!(itv, 7_600.0);
    }

    #[test]
    fn interval_with_zero_lambda_uses_k_fault() {
        let inp = IntervalInputs {
            rd: 30_000.0,
            rt: 7_600.0,
            c: C,
            rf: 5.0,
            lambda: 0.0,
        };
        let (itv, branch) = checkpoint_interval_with_branch(inp);
        assert_eq!(branch, IntervalBranch::KFaultBudget);
        assert!((itv - k_fault_interval(7_600.0, 5.0, C)).abs() < 1e-9);
    }

    #[test]
    fn zero_fault_budget_with_zero_lambda_degenerates_to_single_checkpoint() {
        // Rf = 0 and λ = 0: I2(·, 0, ·) = inf clamps to Rt.
        let inp = IntervalInputs {
            rd: 30_000.0,
            rt: 7_600.0,
            c: C,
            rf: 0.0,
            lambda: 0.0,
        };
        assert_eq!(checkpoint_interval(inp), 7_600.0);
    }

    #[test]
    #[should_panic(expected = "remaining time")]
    fn rejects_non_positive_rt() {
        checkpoint_interval(IntervalInputs {
            rd: 1.0,
            rt: 0.0,
            c: C,
            rf: 1.0,
            lambda: 0.1,
        });
    }
}
