//! Analytic prediction of full-task completion for static CSCP schemes.
//!
//! For a fixed checkpoint interval `T` at a fixed speed, each CSCP interval
//! is an independent renewal: a geometric number of attempts, each costing
//! the full interval, until one passes fault-free. That gives closed-form
//! mean *and variance* per interval; summing over the task's intervals and
//! applying the central limit theorem yields an analytic estimate of the
//! paper's `P` (probability of timely completion) without simulation —
//! useful for design-space exploration at zero Monte-Carlo cost, and
//! validated against the simulator in the workspace integration tests.

use eacp_numerics::normal_cdf;

/// Closed-form completion-time distribution summary of one task under a
/// static CSCP scheme.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CompletionEstimate {
    /// Number of whole checkpoint intervals (the trailing partial interval
    /// is accounted proportionally).
    pub intervals: f64,
    /// Mean completion time.
    pub mean: f64,
    /// Variance of the completion time.
    pub variance: f64,
}

impl CompletionEstimate {
    /// Normal-approximation probability that the task completes by
    /// `deadline` (the paper's `P`).
    ///
    /// The CLT is accurate when the task spans tens of intervals, which is
    /// exactly the paper's operating regime (≈40–60 intervals per task).
    pub fn p_timely(&self, deadline: f64) -> f64 {
        if self.variance <= 0.0 {
            return if self.mean <= deadline { 1.0 } else { 0.0 };
        }
        normal_cdf((deadline - self.mean) / self.variance.sqrt())
    }

    /// Expected energy of the run (unconditional): at a fixed speed every
    /// wall-clock unit executes `frequency` cycles on each of `processors`
    /// processors at `voltage²` per cycle, so
    /// `E = processors · voltage² · frequency · mean`.
    pub fn mean_energy(&self, frequency: f64, voltage: f64, processors: u32) -> f64 {
        processors as f64 * voltage * voltage * frequency * self.mean
    }

    /// Expected completion time *conditional on meeting the deadline*
    /// (truncated-normal mean via the inverse Mills ratio):
    /// `E[X | X ≤ D] = μ − σ·φ(z)/Φ(z)`, `z = (D − μ)/σ`.
    ///
    /// Returns `NaN` when the timely probability is (numerically) zero —
    /// mirroring the paper's `NaN` energy cells.
    pub fn mean_timely(&self, deadline: f64) -> f64 {
        if self.variance <= 0.0 {
            return if self.mean <= deadline {
                self.mean
            } else {
                f64::NAN
            };
        }
        let sigma = self.variance.sqrt();
        let z = (deadline - self.mean) / sigma;
        let phi_z = (-0.5 * z * z).exp() / (2.0 * std::f64::consts::PI).sqrt();
        let cap_phi = normal_cdf(z);
        if cap_phi <= 1e-300 {
            return f64::NAN;
        }
        self.mean - sigma * phi_z / cap_phi
    }

    /// Expected energy over *timely* runs — the quantity the paper's `E`
    /// columns report. For the paper's `f1` baselines
    /// (`processors = 2, V² = 2, f = 1`) this reproduces the ≈39k energy
    /// column of Tables 1/3 analytically (see the module tests).
    pub fn mean_energy_timely(
        &self,
        deadline: f64,
        frequency: f64,
        voltage: f64,
        processors: u32,
    ) -> f64 {
        processors as f64 * voltage * voltage * frequency * self.mean_timely(deadline)
    }
}

/// Predicts the completion time of `n_time` work-time units checkpointed
/// every `interval` time units with CSCPs of `c_time` (all at the executing
/// speed), rollback `tr_time`, under Poisson faults of rate `lambda`
/// striking useful computation.
///
/// Per interval: attempts are i.i.d.; each costs `interval + c_time` (plus
/// `tr_time` after a failure) and succeeds with `p = e^{−λ·interval}`, so
/// with `a = interval + c_time + tr_time`:
///
/// ```text
/// E[X]   = (interval + c_time) + (1/p − 1)·a
/// Var[X] = a²·(1 − p)/p²
/// ```
///
/// # Panics
///
/// Panics unless `n_time`, `interval` and `c_time` are positive and finite,
/// and `lambda`, `tr_time` non-negative.
///
/// # Examples
///
/// ```
/// use eacp_core::analysis::static_scheme_completion;
/// // The paper's Poisson baseline at U = 0.76, λ = 1.4e-3 (Table 1(a)):
/// let est = static_scheme_completion(7600.0, 177.28, 22.0, 0.0, 1.4e-3);
/// let p = est.p_timely(10_000.0);
/// // The paper reports P = 0.1185; the analytic estimate lands nearby.
/// assert!((p - 0.1185).abs() < 0.08, "p = {p}");
/// ```
pub fn static_scheme_completion(
    n_time: f64,
    interval: f64,
    c_time: f64,
    tr_time: f64,
    lambda: f64,
) -> CompletionEstimate {
    assert!(
        n_time > 0.0 && n_time.is_finite(),
        "work time must be positive and finite"
    );
    assert!(
        interval > 0.0 && interval.is_finite(),
        "interval must be positive and finite"
    );
    assert!(
        c_time > 0.0 && c_time.is_finite(),
        "checkpoint time must be positive and finite"
    );
    assert!(tr_time >= 0.0, "rollback time must be non-negative");
    assert!(lambda >= 0.0, "lambda must be non-negative");

    let whole = (n_time / interval).floor();
    let tail = n_time - whole * interval; // final partial interval
    let mut mean = 0.0;
    let mut variance = 0.0;
    let mut add_interval = |len: f64| {
        if len <= 0.0 {
            return;
        }
        let p = (-lambda * len).exp();
        let a = len + c_time + tr_time;
        mean += (len + c_time) + (1.0 / p - 1.0) * a;
        variance += a * a * (1.0 - p) / (p * p);
    };
    for _ in 0..whole as u64 {
        add_interval(interval);
    }
    add_interval(tail);

    CompletionEstimate {
        intervals: whole + if tail > 0.0 { tail / interval } else { 0.0 },
        mean,
        variance,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_free_prediction_is_exact() {
        let est = static_scheme_completion(1000.0, 100.0, 22.0, 0.0, 0.0);
        assert!((est.mean - (1000.0 + 10.0 * 22.0)).abs() < 1e-9);
        assert_eq!(est.variance, 0.0);
        assert_eq!(est.p_timely(1220.0), 1.0);
        assert_eq!(est.p_timely(1219.0), 0.0);
    }

    #[test]
    fn partial_tail_interval_counts() {
        let est = static_scheme_completion(250.0, 100.0, 22.0, 0.0, 0.0);
        // Two whole intervals + one 50-unit tail, 3 checkpoints.
        assert!((est.mean - (250.0 + 3.0 * 22.0)).abs() < 1e-9);
        assert!((est.intervals - 2.5).abs() < 1e-9);
    }

    #[test]
    fn single_interval_matches_renewal_formula() {
        let (t, c, lambda) = (200.0, 22.0, 2e-3);
        let est = static_scheme_completion(t, t, c, 0.0, lambda);
        let p = (-lambda * t).exp();
        let a = t + c;
        assert!((est.mean - (a + (1.0 / p - 1.0) * a)).abs() < 1e-9);
        // At tr = 0 the single-interval mean is (T+c)·e^{λT}: the paper's
        // stated limit.
        assert!((est.mean - a * (lambda * t).exp()).abs() < 1e-9);
    }

    #[test]
    fn mean_and_variance_grow_with_lambda() {
        let low = static_scheme_completion(7600.0, 177.0, 22.0, 0.0, 2e-4);
        let high = static_scheme_completion(7600.0, 177.0, 22.0, 0.0, 2e-3);
        assert!(high.mean > low.mean);
        assert!(high.variance > low.variance);
    }

    #[test]
    fn predicts_paper_baseline_collapse_across_utilizations() {
        // Table 1(a): as U rises at λ = 1.4e-3, the Poisson baseline's P
        // collapses (0.1185 → 0.0504 → 0.0091 → 0.0013).
        let lambda = 1.4e-3_f64;
        let interval = (2.0 * 22.0 / lambda).sqrt();
        let mut last = 1.0;
        for u in [0.76, 0.78, 0.80, 0.82] {
            let est = static_scheme_completion(u * 10_000.0, interval, 22.0, 0.0, lambda);
            let p = est.p_timely(10_000.0);
            assert!(p < last, "P must fall with U");
            last = p;
        }
        assert!(last < 0.05, "P(U = 0.82) = {last}");
    }

    #[test]
    fn mean_energy_timely_reproduces_paper_scale() {
        // Poisson baseline, Table 1(a), U = 0.76, λ = 1.4e-3: the paper
        // reports E = 39015 over timely runs. The unconditional mean is
        // higher (late runs carry extra re-execution); the truncated-normal
        // conditional mean lands within 2% of the paper.
        let lambda = 1.4e-3_f64;
        let interval = (2.0 * 22.0 / lambda).sqrt();
        let est = static_scheme_completion(7600.0, interval, 22.0, 0.0, lambda);
        let e_all = est.mean_energy(1.0, std::f64::consts::SQRT_2, 2);
        let e_timely = est.mean_energy_timely(10_000.0, 1.0, std::f64::consts::SQRT_2, 2);
        assert!(e_timely < e_all);
        assert!(
            (e_timely - 39_015.0).abs() / 39_015.0 < 0.02,
            "predicted E|timely = {e_timely}"
        );
    }

    #[test]
    fn mean_timely_nan_when_impossible() {
        // U = 1.00, k-free static scheme: completion is always past D.
        let est = static_scheme_completion(10_000.0, 400.0, 22.0, 0.0, 1e-4);
        assert!(est.mean > 10_000.0);
        // Deep in the impossible region the CDF underflows to 0 → NaN.
        assert!(est.mean_timely(1_000.0).is_nan());
        // Fault-free degenerate case.
        let ff = static_scheme_completion(1_000.0, 100.0, 22.0, 0.0, 0.0);
        assert!((ff.mean_timely(2_000.0) - ff.mean).abs() < 1e-9);
        assert!(ff.mean_timely(1_000.0).is_nan());
    }

    #[test]
    fn mean_energy_scales_with_voltage_squared() {
        let est = static_scheme_completion(1000.0, 100.0, 22.0, 0.0, 1e-3);
        let low = est.mean_energy(1.0, 1.0, 2);
        let high = est.mean_energy(1.0, 2.0, 2);
        assert!((high / low - 4.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "interval")]
    fn rejects_zero_interval() {
        static_scheme_completion(100.0, 0.0, 22.0, 0.0, 1e-3);
    }
}
