//! Energy-aware adaptive checkpointing for embedded real-time systems.
//!
//! This crate is a faithful implementation of
//! *Li, Chen, Yu — "Performance Optimization for Energy-Aware Adaptive
//! Checkpointing in Embedded Real-Time Systems" (DATE 2006)*, on top of the
//! [`eacp_sim`] DMR execution substrate.
//!
//! # What is here
//!
//! * [`analysis`] — the paper's closed-form machinery:
//!   * the checkpoint-interval selection procedure of Fig. 4 (inherited
//!     from Zhang & Chakrabarty's DATE'03 ADT_DVS): intervals
//!     [`analysis::poisson_interval`] (`I1`), [`analysis::k_fault_interval`]
//!     (`I2`), [`analysis::deadline_interval`] (`I3`) and thresholds
//!     [`analysis::poisson_threshold`] (`Thλ`), [`analysis::k_fault_threshold`]
//!     (`Th`);
//!   * the renewal-equation mean execution times `R1` (SCP scheme, Eq. (1))
//!     and `R2` (CCP scheme, Eq. (2)) with both the paper's closed forms and
//!     exact recursions;
//!   * the optimal sub-checkpoint counts [`analysis::num_scp`] /
//!     [`analysis::num_ccp`] (Fig. 2);
//!   * the DVS completion-time estimate [`analysis::estimated_completion_time`]
//!     (`t_est`) and speed selection [`analysis::choose_speed`].
//! * [`policies`] — the five checkpointing schemes evaluated in the paper
//!   plus the no-DVS variants:
//!   * [`policies::PoissonArrival`] — static `sqrt(2C/λ)` CSCP interval;
//!   * [`policies::KFaultTolerant`] — static `sqrt(NC/k)` CSCP interval;
//!   * [`policies::Adaptive`] — one configurable implementation covering
//!     `A_D` (ADT_DVS, CSCP-only), `A_D_S` (`adapchp_dvs_SCP`, Fig. 6),
//!     `A_D_C` (`adapchp_dvs_CCP`, Fig. 7), and the fixed-speed
//!     `adapchp-SCP`/`-CCP` of Fig. 3.
//!
//! # Quickstart
//!
//! ```
//! use eacp_core::policies::Adaptive;
//! use eacp_sim::{CheckpointCosts, Executor, Scenario, TaskSpec};
//! use eacp_energy::DvsConfig;
//! use eacp_faults::PoissonProcess;
//! use rand::SeedableRng;
//!
//! let scenario = Scenario::new(
//!     TaskSpec::from_utilization(0.76, 1.0, 10_000.0),
//!     CheckpointCosts::paper_scp_variant(),
//!     DvsConfig::paper_default(),
//! );
//! let lambda = 0.0014;
//! let mut policy = Adaptive::dvs_scp(lambda, 5); // the paper's A_D_S
//! let mut faults = PoissonProcess::new(lambda, rand::rngs::StdRng::seed_from_u64(1));
//! let outcome = Executor::new(&scenario).run(&mut policy, &mut faults);
//! assert!(outcome.completed || outcome.aborted);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod policies;
