//! The pooling contract: `reset(seed)` on a reused `PolicyKind` /
//! `FaultKind` instance is equivalent to building a fresh instance from
//! the same spec — for **every** variant, across several consecutive
//! replications of reused state.
//!
//! Monte-Carlo runners build one instance per block and reset it per
//! replication; these properties are what protect that pooling against
//! stale-state bugs (an interval cache, a fault budget, a burst-state
//! flag or a stream position surviving a reset).

use eacp_faults::FaultProcess;
use eacp_sim::{Executor, ExecutorOptions, Scenario};
use eacp_spec::{ExperimentSpec, FaultSpec, PolicySpec};
use proptest::prelude::*;

fn all_fault_specs(lambda: f64) -> Vec<FaultSpec> {
    vec![
        FaultSpec::Poisson { lambda },
        FaultSpec::Deterministic {
            times: vec![120.0, 480.0, 2_500.0],
        },
        FaultSpec::Weibull {
            shape: 0.7,
            scale: 1.0 / lambda.max(1e-6),
        },
        FaultSpec::Burst {
            quiet_rate: lambda / 4.0,
            burst_rate: lambda * 8.0,
            mean_quiet_dwell: 4_000.0,
            mean_burst_dwell: 400.0,
        },
        FaultSpec::Phased {
            phases: vec![(3_000.0, lambda / 2.0), (1_500.0, lambda * 3.0)],
            repeat: true,
        },
    ]
}

fn scenario() -> Scenario {
    ExperimentSpec::paper_nominal()
        .scenario
        .build()
        .expect("paper-nominal scenario is valid")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every fault kind: one instance reset across 1..8 replications
    /// emits exactly the arrival stream of a fresh build per seed.
    #[test]
    fn fault_kind_reset_equals_fresh_build(
        base_seed in 0u64..10_000,
        reps in 1u64..8,
        lambda in 1e-4f64..5e-3,
    ) {
        for spec in all_fault_specs(lambda) {
            let mut reused = spec.build(0).expect("valid fault spec");
            for rep in 0..reps {
                let seed = eacp_sim::replication_seed(base_seed, rep);
                // Drain the reused instance unevenly first, so a reset
                // that fails to rewind stream position would be caught.
                reused.reset(seed);
                let mut fresh = spec.build(seed).expect("valid fault spec");
                for draw in 0..64 {
                    let a = reused.next_fault();
                    let b = fresh.next_fault();
                    prop_assert!(
                        a == b || (a.is_infinite() && b.is_infinite()),
                        "{spec:?}: rep {rep} draw {draw}: reused {a} vs fresh {b}"
                    );
                }
            }
        }
    }

    /// Every policy kind: one instance reset per replication drives the
    /// executor to the identical outcome as a fresh build, over runs that
    /// mutate real policy state (rollbacks, replans, fault budgets).
    #[test]
    fn policy_kind_reset_equals_fresh_build(
        base_seed in 0u64..10_000,
        reps in 1u64..8,
        lambda in 5e-4f64..4e-3,
    ) {
        let s = scenario();
        let executor = Executor::new(&s).with_options(ExecutorOptions::default());
        let faults = FaultSpec::Poisson { lambda };
        for tag in PolicySpec::TAGS {
            let policy_spec = PolicySpec::from_tag(tag, lambda, 3, 0).expect("known tag");
            let mut reused = policy_spec.build().expect("valid policy spec");
            for rep in 0..reps {
                let seed = eacp_sim::replication_seed(base_seed, rep);
                reused.reset(seed);
                let mut fresh = policy_spec.build().expect("valid policy spec");
                let out_reused =
                    executor.run(&mut reused, &mut faults.build(seed).unwrap());
                let out_fresh =
                    executor.run(&mut fresh, &mut faults.build(seed).unwrap());
                prop_assert_eq!(
                    &out_reused, &out_fresh,
                    "scheme {} rep {} seed {}", tag, rep, seed
                );
            }
        }
    }
}
