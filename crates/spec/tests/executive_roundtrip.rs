//! Property-based round-trip and validation tests for the periodic
//! task-set spec layer: any `TaskSetSpec`/`ExecutiveSpec` serializes to
//! JSON and parses back to an identical value, and every invalid
//! parameter surfaces as a `SpecError` instead of a panic.

use eacp_spec::{
    ExecutiveSpec, FaultSpec, FromJson, PeriodicTaskSpec, PolicyAssignment, PolicySpec, SpecError,
    TaskSetSpec, ToJson,
};
use proptest::prelude::*;

/// Strategy: a valid periodic task (deadline constrained to the period).
fn task_strategy() -> impl Strategy<Value = PeriodicTaskSpec> {
    (1u64..=8, 10.0f64..5_000.0, 1u64..=1_000).prop_map(|(scale, wcet, dslack)| {
        let period = 1_000 * scale;
        PeriodicTaskSpec {
            name: format!("t{scale}-{wcet:.0}"),
            wcet,
            period,
            deadline: period - dslack.min(period - 1),
        }
    })
}

fn taskset_strategy() -> impl Strategy<Value = TaskSetSpec> {
    proptest::collection::vec(task_strategy(), 1..5).prop_map(|tasks| TaskSetSpec { tasks })
}

/// Strategy: an executive spec varying every scalar knob plus the policy
/// assignment shape (shared vs per-task) and the scheme tag.
fn executive_strategy() -> impl Strategy<Value = ExecutiveSpec> {
    (
        taskset_strategy(),
        1e-5f64..5e-3,
        0u32..=6,
        1u32..=4,
        0u64..10_000,
        0usize..2 * PolicySpec::TAGS.len(),
    )
        .prop_map(|(tasks, lambda, k, hyperperiods, seed, shape)| {
            // `shape` folds the scheme tag and the assignment flavor
            // (shared vs per-task) into one draw — the vendored proptest
            // shim has no bool strategy.
            let per_task = shape >= PolicySpec::TAGS.len();
            let tag = PolicySpec::TAGS[shape % PolicySpec::TAGS.len()];
            // The poisson baseline needs λ > 0; kft needs k >= 1 — the
            // strategy stays inside the valid envelope so every generated
            // spec must validate.
            let policy = PolicySpec::from_tag(tag, lambda.max(1e-6), k.max(1), 0).unwrap();
            let mut spec = ExecutiveSpec::new("prop", tasks);
            spec.faults = FaultSpec::Poisson { lambda };
            spec.policy = if per_task {
                PolicyAssignment::PerTask(vec![policy; spec.tasks.len()])
            } else {
                PolicyAssignment::Shared(policy)
            };
            spec.k = k;
            spec.hyperperiods = hyperperiods;
            spec.seed = seed;
            spec
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `TaskSetSpec → JSON → parse` is the identity, and the built
    /// runtime set mirrors the spec field for field.
    #[test]
    fn taskset_round_trips_through_json(spec in taskset_strategy()) {
        let json = spec.to_json();
        let back = TaskSetSpec::from_json(&json).unwrap();
        prop_assert_eq!(&back, &spec);
        // Text round-trip too (the pretty printer is the on-disk form).
        let reparsed =
            TaskSetSpec::from_json(&eacp_spec::Json::parse(&json.pretty()).unwrap()).unwrap();
        prop_assert_eq!(&reparsed, &spec);

        let set = spec.build().unwrap();
        prop_assert_eq!(set.len(), spec.len());
        for (t, ts) in set.tasks().iter().zip(&spec.tasks) {
            prop_assert_eq!(&t.name, &ts.name);
            prop_assert_eq!(t.wcet_cycles, ts.wcet);
            prop_assert_eq!(t.period, ts.period);
            prop_assert_eq!(t.deadline, ts.deadline);
        }
    }

    /// `ExecutiveSpec → JSON → parse` is the identity, and every
    /// generated spec validates.
    #[test]
    fn executive_spec_round_trips_through_json(spec in executive_strategy()) {
        spec.validate().unwrap();
        let back = ExecutiveSpec::from_json_str(&spec.to_json_string()).unwrap();
        prop_assert_eq!(back, spec);
    }
}

#[test]
fn zero_period_is_a_spec_error() {
    let spec = TaskSetSpec {
        tasks: vec![PeriodicTaskSpec {
            name: "bad".into(),
            wcet: 100.0,
            period: 0,
            deadline: 0,
        }],
    };
    match spec.build() {
        Err(SpecError::Invalid(msg)) => assert!(msg.contains("period"), "{msg}"),
        other => panic!("expected Invalid, got {other:?}"),
    }
}

#[test]
fn deadline_beyond_period_is_a_spec_error() {
    let spec = TaskSetSpec {
        tasks: vec![PeriodicTaskSpec {
            name: "late".into(),
            wcet: 100.0,
            period: 1_000,
            deadline: 1_001,
        }],
    };
    match spec.build() {
        Err(SpecError::Invalid(msg)) => assert!(msg.contains("deadline"), "{msg}"),
        other => panic!("expected Invalid, got {other:?}"),
    }
}

#[test]
fn empty_task_set_is_a_spec_error() {
    let spec = TaskSetSpec { tasks: vec![] };
    match spec.build() {
        Err(SpecError::Invalid(msg)) => assert!(msg.contains("at least one task"), "{msg}"),
        other => panic!("expected Invalid, got {other:?}"),
    }
    // The same failure through the full executive spec.
    let exec = ExecutiveSpec::new("empty", spec);
    assert!(matches!(exec.validate(), Err(SpecError::Invalid(_))));
}

#[test]
fn non_positive_wcet_is_a_spec_error() {
    for wcet in [0.0, -10.0, f64::NAN, f64::INFINITY] {
        let spec = TaskSetSpec {
            tasks: vec![PeriodicTaskSpec {
                name: "w".into(),
                wcet,
                period: 1_000,
                deadline: 1_000,
            }],
        };
        assert!(
            matches!(spec.build(), Err(SpecError::Invalid(_))),
            "wcet {wcet} should be rejected"
        );
    }
}

#[test]
fn per_task_policy_arity_mismatch_is_a_spec_error() {
    let mut spec = ExecutiveSpec::new(
        "arity",
        TaskSetSpec::implicit([("a", 100.0, 1_000), ("b", 100.0, 2_000)]),
    );
    spec.policy =
        PolicyAssignment::PerTask(vec![PolicySpec::from_tag("a_d_s", 1e-3, 2, 0).unwrap()]);
    match spec.validate() {
        Err(SpecError::Invalid(msg)) => assert!(msg.contains("2 tasks"), "{msg}"),
        other => panic!("expected Invalid, got {other:?}"),
    }
}

#[test]
fn zero_hyperperiods_and_bad_speed_are_spec_errors() {
    let base = ExecutiveSpec::new("scalars", TaskSetSpec::implicit([("a", 100.0, 1_000)]));
    let mut spec = base.clone();
    spec.hyperperiods = 0;
    assert!(matches!(spec.validate(), Err(SpecError::Invalid(_))));
    for speed in [0.0, -1.0, f64::NAN] {
        let mut spec = base.clone();
        spec.speed = speed;
        assert!(
            matches!(spec.validate(), Err(SpecError::Invalid(_))),
            "speed {speed} should be rejected"
        );
    }
}
