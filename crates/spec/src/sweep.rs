//! Sweep grids: a base experiment plus axes of variation, expanding into
//! the cartesian product of concrete [`ExperimentSpec`]s.
//!
//! `spec + seed = identical results` extends to sweeps: the expansion order
//! is deterministic (axes in declaration order, values in listed order) and
//! each point derives a distinct seed from the base seed and its grid
//! index, so a sweep can be sharded across machines by index range and
//! re-assembled without collisions.

use crate::error::SpecError;
use crate::executive::{ExecutiveSpec, PolicyAssignment};
use crate::json::{FromJson, Json, ToJson};
use crate::model::{CostsSpec, ExperimentSpec, FaultSpec, PolicySpec, WorkSpec};

/// One axis of variation.
#[derive(Debug, Clone, PartialEq)]
pub enum SweepAxis {
    /// Task utilization (requires the base work spec to be
    /// [`WorkSpec::Utilization`]).
    Utilization(Vec<f64>),
    /// Fault arrival rate; updates the fault process *and* the policy's
    /// assumed rate, mirroring the paper where the two coincide.
    Lambda(Vec<f64>),
    /// Fault-tolerance target `k`.
    K(Vec<u32>),
    /// Checkpoint cost models.
    Costs(Vec<CostsSpec>),
    /// Replication base seeds (for variance studies).
    Seed(Vec<u64>),
}

impl SweepAxis {
    fn len(&self) -> usize {
        match self {
            SweepAxis::Utilization(v) => v.len(),
            SweepAxis::Lambda(v) => v.len(),
            SweepAxis::K(v) => v.len(),
            SweepAxis::Costs(v) => v.len(),
            SweepAxis::Seed(v) => v.len(),
        }
    }

    fn label(&self, idx: usize) -> String {
        match self {
            SweepAxis::Utilization(v) => format!("u{}", v[idx]),
            SweepAxis::Lambda(v) => format!("l{}", v[idx]),
            SweepAxis::K(v) => format!("k{}", v[idx]),
            SweepAxis::Costs(v) => match v[idx] {
                CostsSpec::PaperScp => "scp".to_owned(),
                CostsSpec::PaperCcp => "ccp".to_owned(),
                CostsSpec::Explicit { store, compare, .. } => format!("ts{store}-tcp{compare}"),
            },
            SweepAxis::Seed(v) => format!("s{}", v[idx]),
        }
    }

    fn apply(&self, idx: usize, spec: &mut ExperimentSpec) -> Result<(), SpecError> {
        match self {
            SweepAxis::Utilization(v) => match &mut spec.scenario.work {
                WorkSpec::Utilization { utilization, .. } => {
                    *utilization = v[idx];
                    Ok(())
                }
                WorkSpec::Cycles { .. } => Err(SpecError::invalid(
                    "utilization axis requires the base work spec to be utilization-based",
                )),
            },
            SweepAxis::Lambda(v) => {
                let lambda = v[idx];
                match &mut spec.faults {
                    FaultSpec::Poisson { lambda: l } => *l = lambda,
                    _ => {
                        return Err(SpecError::invalid(
                            "lambda axis requires a Poisson base fault process",
                        ))
                    }
                }
                spec.policy = spec.policy.with_lambda(lambda);
                Ok(())
            }
            SweepAxis::K(v) => {
                spec.policy = spec.policy.with_k(v[idx]);
                Ok(())
            }
            SweepAxis::Costs(v) => {
                spec.scenario.costs = v[idx];
                Ok(())
            }
            SweepAxis::Seed(v) => {
                spec.mc.seed = v[idx];
                Ok(())
            }
        }
    }
}

impl ToJson for SweepAxis {
    fn to_json(&self) -> Json {
        match self {
            SweepAxis::Utilization(v) => Json::obj([(
                "utilization",
                Json::Array(v.iter().map(|&x| x.into()).collect()),
            )]),
            SweepAxis::Lambda(v) => {
                Json::obj([("lambda", Json::Array(v.iter().map(|&x| x.into()).collect()))])
            }
            SweepAxis::K(v) => {
                Json::obj([("k", Json::Array(v.iter().map(|&x| x.into()).collect()))])
            }
            SweepAxis::Costs(v) => Json::obj([(
                "costs",
                Json::Array(v.iter().map(ToJson::to_json).collect()),
            )]),
            SweepAxis::Seed(v) => {
                Json::obj([("seed", Json::Array(v.iter().map(|&x| x.into()).collect()))])
            }
        }
    }
}

impl FromJson for SweepAxis {
    fn from_json(json: &Json) -> Result<Self, SpecError> {
        let fields = match json {
            Json::Object(fields) if fields.len() == 1 => fields,
            _ => {
                return Err(SpecError::invalid(
                    "a sweep axis is a single-key object, e.g. {\"lambda\": [1e-4, 2e-4]}",
                ))
            }
        };
        let (key, value) = &fields[0];
        let axis = match key.as_str() {
            "utilization" => SweepAxis::Utilization(
                value
                    .as_array()?
                    .iter()
                    .map(Json::as_f64)
                    .collect::<Result<_, _>>()?,
            ),
            "lambda" => SweepAxis::Lambda(
                value
                    .as_array()?
                    .iter()
                    .map(Json::as_f64)
                    .collect::<Result<_, _>>()?,
            ),
            "k" => SweepAxis::K(
                value
                    .as_array()?
                    .iter()
                    .map(Json::as_u32)
                    .collect::<Result<_, _>>()?,
            ),
            "costs" => SweepAxis::Costs(
                value
                    .as_array()?
                    .iter()
                    .map(CostsSpec::from_json)
                    .collect::<Result<_, _>>()?,
            ),
            "seed" => SweepAxis::Seed(
                value
                    .as_array()?
                    .iter()
                    .map(Json::as_u64)
                    .collect::<Result<_, _>>()?,
            ),
            other => {
                return Err(SpecError::unknown_kind(
                    "sweep axis",
                    other,
                    "utilization, lambda, k, costs, seed",
                ))
            }
        };
        if axis.len() == 0 {
            return Err(SpecError::invalid(format!("sweep axis {key:?} is empty")));
        }
        Ok(axis)
    }
}

/// A base experiment and the axes to vary it over.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepSpec {
    /// The experiment every grid point starts from.
    pub base: ExperimentSpec,
    /// Axes, outermost first.
    pub axes: Vec<SweepAxis>,
}

impl SweepSpec {
    /// Number of grid points.
    pub fn len(&self) -> usize {
        self.axes.iter().map(SweepAxis::len).product()
    }

    /// Whether the grid is empty (never true for a valid spec — axes must
    /// be non-empty — but kept for clippy's `len_without_is_empty`).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Validates the grid's shape: every axis must have at least one value
    /// (an empty axis would expand to a silent zero-point grid).
    pub fn validate_axes(&self) -> Result<(), SpecError> {
        for (i, axis) in self.axes.iter().enumerate() {
            if axis.len() == 0 {
                return Err(SpecError::invalid(format!(
                    "sweep axis #{i} has no values: the grid would be empty"
                )));
            }
        }
        Ok(())
    }

    /// Expands the grid into concrete experiments, outermost axis slowest.
    ///
    /// Each point gets a derived name (`base-u0.78-l0.0014`) and, unless a
    /// [`SweepAxis::Seed`] axis overrides it, a per-point seed
    /// `base.mc.seed + index` — the same offsetting the legacy table
    /// runner applies to its cells, so sweeps shard reproducibly.
    ///
    /// # Errors
    ///
    /// Fails with a clear [`SpecError`] when an axis has zero values
    /// (instead of silently returning an empty grid) or when an axis is
    /// incompatible with the base spec.
    pub fn expand(&self) -> Result<Vec<ExperimentSpec>, SpecError> {
        self.validate_axes()?;
        let total = self.len();
        let has_seed_axis = self.axes.iter().any(|a| matches!(a, SweepAxis::Seed(_)));
        let mut out = Vec::with_capacity(total);
        for flat in 0..total {
            let mut spec = self.base.clone();
            let mut name = self.base.name.clone();
            // Decompose the flat index, outermost axis slowest.
            let mut rem = flat;
            let mut stride = total;
            for axis in &self.axes {
                stride /= axis.len();
                let idx = rem / stride;
                rem %= stride;
                axis.apply(idx, &mut spec)?;
                name.push('-');
                name.push_str(&axis.label(idx));
            }
            if !has_seed_axis {
                spec.mc.seed = self.base.mc.seed.wrapping_add(flat as u64);
            }
            spec.name = name;
            out.push(spec);
        }
        Ok(out)
    }

    /// Parses a sweep from JSON text.
    pub fn from_json_str(text: &str) -> Result<Self, SpecError> {
        Self::from_json(&Json::parse(text)?)
    }

    /// Serializes as pretty-printed JSON.
    pub fn to_json_string(&self) -> String {
        self.to_json().pretty()
    }

    /// Reads a sweep file.
    pub fn load(path: &std::path::Path) -> Result<Self, SpecError> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| SpecError::Io(format!("{}: {e}", path.display())))?;
        Self::from_json_str(&text)
    }
}

impl ToJson for SweepSpec {
    fn to_json(&self) -> Json {
        Json::obj([
            ("base", self.base.to_json()),
            (
                "axes",
                Json::Array(self.axes.iter().map(ToJson::to_json).collect()),
            ),
        ])
    }
}

impl FromJson for SweepSpec {
    fn from_json(json: &Json) -> Result<Self, SpecError> {
        let axes = json
            .req("axes")?
            .as_array()?
            .iter()
            .map(SweepAxis::from_json)
            .collect::<Result<Vec<_>, _>>()?;
        if axes.is_empty() {
            return Err(SpecError::invalid("a sweep needs at least one axis"));
        }
        Ok(Self {
            base: ExperimentSpec::from_json(json.req("base")?)?,
            axes,
        })
    }
}

/// One axis of variation over an [`ExecutiveSpec`] task-set workload.
///
/// The executive analogue of [`SweepAxis`]: single-key-object JSON, the
/// same outermost-slowest expansion order, the same per-point seed
/// derivation.
#[derive(Debug, Clone, PartialEq)]
pub enum ExecutiveSweepAxis {
    /// Number of hyperperiods per horizon.
    Hyperperiods(Vec<u32>),
    /// Target task-set utilization; rescales every task's WCET uniformly
    /// so `sum(wcet_i / period_i)` hits the listed value.
    Utilization(Vec<f64>),
    /// Fault arrival rate; updates the fault process *and* every assigned
    /// policy's assumed rate, mirroring the single-task lambda axis.
    Lambda(Vec<f64>),
    /// Fault-tolerance target `k` (feasibility input and every policy).
    K(Vec<u32>),
    /// Base seeds (for variance studies).
    Seed(Vec<u64>),
}

/// Applies `f` to every policy in the assignment, shared or per-task.
fn map_policies(assignment: &mut PolicyAssignment, f: impl Fn(&PolicySpec) -> PolicySpec) {
    match assignment {
        PolicyAssignment::Shared(p) => *p = f(p),
        PolicyAssignment::PerTask(ps) => {
            for p in ps.iter_mut() {
                *p = f(p);
            }
        }
    }
}

impl ExecutiveSweepAxis {
    fn len(&self) -> usize {
        match self {
            ExecutiveSweepAxis::Hyperperiods(v) => v.len(),
            ExecutiveSweepAxis::Utilization(v) => v.len(),
            ExecutiveSweepAxis::Lambda(v) => v.len(),
            ExecutiveSweepAxis::K(v) => v.len(),
            ExecutiveSweepAxis::Seed(v) => v.len(),
        }
    }

    fn label(&self, idx: usize) -> String {
        match self {
            ExecutiveSweepAxis::Hyperperiods(v) => format!("h{}", v[idx]),
            ExecutiveSweepAxis::Utilization(v) => format!("u{}", v[idx]),
            ExecutiveSweepAxis::Lambda(v) => format!("l{}", v[idx]),
            ExecutiveSweepAxis::K(v) => format!("k{}", v[idx]),
            ExecutiveSweepAxis::Seed(v) => format!("s{}", v[idx]),
        }
    }

    fn apply(&self, idx: usize, spec: &mut ExecutiveSpec) -> Result<(), SpecError> {
        match self {
            ExecutiveSweepAxis::Hyperperiods(v) => {
                spec.hyperperiods = v[idx];
                Ok(())
            }
            ExecutiveSweepAxis::Utilization(v) => {
                let target = v[idx];
                if !(target > 0.0 && target.is_finite()) {
                    return Err(SpecError::invalid(format!(
                        "utilization axis values must be positive and finite, got {target}"
                    )));
                }
                let current: f64 = spec
                    .tasks
                    .tasks
                    .iter()
                    .map(|t| t.wcet / t.period as f64)
                    .sum();
                if !(current > 0.0 && current.is_finite()) {
                    return Err(SpecError::invalid(
                        "utilization axis requires a non-empty task set with positive \
                         wcets and periods",
                    ));
                }
                let scale = target / current;
                for task in &mut spec.tasks.tasks {
                    task.wcet *= scale;
                }
                Ok(())
            }
            ExecutiveSweepAxis::Lambda(v) => {
                let lambda = v[idx];
                match &mut spec.faults {
                    FaultSpec::Poisson { lambda: l } => *l = lambda,
                    _ => {
                        return Err(SpecError::invalid(
                            "lambda axis requires a Poisson base fault process",
                        ))
                    }
                }
                map_policies(&mut spec.policy, |p| p.with_lambda(lambda));
                Ok(())
            }
            ExecutiveSweepAxis::K(v) => {
                spec.k = v[idx];
                map_policies(&mut spec.policy, |p| p.with_k(v[idx]));
                Ok(())
            }
            ExecutiveSweepAxis::Seed(v) => {
                spec.seed = v[idx];
                Ok(())
            }
        }
    }
}

impl ToJson for ExecutiveSweepAxis {
    fn to_json(&self) -> Json {
        match self {
            ExecutiveSweepAxis::Hyperperiods(v) => Json::obj([(
                "hyperperiods",
                Json::Array(v.iter().map(|&x| x.into()).collect()),
            )]),
            ExecutiveSweepAxis::Utilization(v) => Json::obj([(
                "utilization",
                Json::Array(v.iter().map(|&x| x.into()).collect()),
            )]),
            ExecutiveSweepAxis::Lambda(v) => {
                Json::obj([("lambda", Json::Array(v.iter().map(|&x| x.into()).collect()))])
            }
            ExecutiveSweepAxis::K(v) => {
                Json::obj([("k", Json::Array(v.iter().map(|&x| x.into()).collect()))])
            }
            ExecutiveSweepAxis::Seed(v) => {
                Json::obj([("seed", Json::Array(v.iter().map(|&x| x.into()).collect()))])
            }
        }
    }
}

impl FromJson for ExecutiveSweepAxis {
    fn from_json(json: &Json) -> Result<Self, SpecError> {
        let fields = match json {
            Json::Object(fields) if fields.len() == 1 => fields,
            _ => {
                return Err(SpecError::invalid(
                    "a sweep axis is a single-key object, e.g. {\"lambda\": [1e-4, 2e-4]}",
                ))
            }
        };
        let (key, value) = &fields[0];
        let axis = match key.as_str() {
            "hyperperiods" => ExecutiveSweepAxis::Hyperperiods(
                value
                    .as_array()?
                    .iter()
                    .map(Json::as_u32)
                    .collect::<Result<_, _>>()?,
            ),
            "utilization" => ExecutiveSweepAxis::Utilization(
                value
                    .as_array()?
                    .iter()
                    .map(Json::as_f64)
                    .collect::<Result<_, _>>()?,
            ),
            "lambda" => ExecutiveSweepAxis::Lambda(
                value
                    .as_array()?
                    .iter()
                    .map(Json::as_f64)
                    .collect::<Result<_, _>>()?,
            ),
            "k" => ExecutiveSweepAxis::K(
                value
                    .as_array()?
                    .iter()
                    .map(Json::as_u32)
                    .collect::<Result<_, _>>()?,
            ),
            "seed" => ExecutiveSweepAxis::Seed(
                value
                    .as_array()?
                    .iter()
                    .map(Json::as_u64)
                    .collect::<Result<_, _>>()?,
            ),
            other => {
                return Err(SpecError::unknown_kind(
                    "executive sweep axis",
                    other,
                    "hyperperiods, utilization, lambda, k, seed",
                ))
            }
        };
        if axis.len() == 0 {
            return Err(SpecError::invalid(format!("sweep axis {key:?} is empty")));
        }
        Ok(axis)
    }
}

/// A base executive workload and the axes to vary it over — the task-set
/// counterpart of [`SweepSpec`], expanding into concrete
/// [`ExecutiveSpec`]s for `eacp executive --sweep`.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecutiveSweepSpec {
    /// The workload every grid point starts from.
    pub base: ExecutiveSpec,
    /// Axes, outermost first.
    pub axes: Vec<ExecutiveSweepAxis>,
}

impl ExecutiveSweepSpec {
    /// Number of grid points.
    pub fn len(&self) -> usize {
        self.axes.iter().map(ExecutiveSweepAxis::len).product()
    }

    /// Whether the grid is empty (never true for a valid spec — axes must
    /// be non-empty — but kept for clippy's `len_without_is_empty`).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Validates the grid's shape: every axis must have at least one value.
    pub fn validate_axes(&self) -> Result<(), SpecError> {
        for (i, axis) in self.axes.iter().enumerate() {
            if axis.len() == 0 {
                return Err(SpecError::invalid(format!(
                    "sweep axis #{i} has no values: the grid would be empty"
                )));
            }
        }
        Ok(())
    }

    /// Expands the grid into concrete workloads, outermost axis slowest.
    ///
    /// Each point gets a derived name (`base-h5-l0.0014`) and, unless a
    /// [`ExecutiveSweepAxis::Seed`] axis overrides it, a per-point seed
    /// `base.seed + index` — the same derivation the single-task
    /// [`SweepSpec::expand`] applies, so executive sweeps shard and
    /// resume reproducibly.
    ///
    /// # Errors
    ///
    /// Fails with a clear [`SpecError`] when an axis has zero values or is
    /// incompatible with the base spec, and validates every expanded
    /// point so a bad grid is rejected before any horizon runs.
    pub fn expand(&self) -> Result<Vec<ExecutiveSpec>, SpecError> {
        self.validate_axes()?;
        let total = self.len();
        let has_seed_axis = self
            .axes
            .iter()
            .any(|a| matches!(a, ExecutiveSweepAxis::Seed(_)));
        let mut out = Vec::with_capacity(total);
        for flat in 0..total {
            let mut spec = self.base.clone();
            let mut name = self.base.name.clone();
            // Decompose the flat index, outermost axis slowest.
            let mut rem = flat;
            let mut stride = total;
            for axis in &self.axes {
                stride /= axis.len();
                let idx = rem / stride;
                rem %= stride;
                axis.apply(idx, &mut spec)?;
                name.push('-');
                name.push_str(&axis.label(idx));
            }
            if !has_seed_axis {
                spec.seed = self.base.seed.wrapping_add(flat as u64);
            }
            spec.name = name;
            spec.validate()
                .map_err(|e| SpecError::invalid(format!("grid point {flat}: {e}")))?;
            out.push(spec);
        }
        Ok(out)
    }

    /// Parses a sweep from JSON text.
    pub fn from_json_str(text: &str) -> Result<Self, SpecError> {
        Self::from_json(&Json::parse(text)?)
    }

    /// Serializes as pretty-printed JSON.
    pub fn to_json_string(&self) -> String {
        self.to_json().pretty()
    }

    /// Reads a sweep file.
    pub fn load(path: &std::path::Path) -> Result<Self, SpecError> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| SpecError::Io(format!("{}: {e}", path.display())))?;
        Self::from_json_str(&text)
    }
}

impl ToJson for ExecutiveSweepSpec {
    fn to_json(&self) -> Json {
        Json::obj([
            ("base", self.base.to_json()),
            (
                "axes",
                Json::Array(self.axes.iter().map(ToJson::to_json).collect()),
            ),
        ])
    }
}

impl FromJson for ExecutiveSweepSpec {
    fn from_json(json: &Json) -> Result<Self, SpecError> {
        let axes = json
            .req("axes")?
            .as_array()?
            .iter()
            .map(ExecutiveSweepAxis::from_json)
            .collect::<Result<Vec<_>, _>>()?;
        if axes.is_empty() {
            return Err(SpecError::invalid("a sweep needs at least one axis"));
        }
        Ok(Self {
            base: ExecutiveSpec::from_json(json.req("base")?)?,
            axes,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executive::TaskSetSpec;
    use crate::model::PolicySpec;

    fn base() -> ExperimentSpec {
        let mut spec = ExperimentSpec::paper_nominal();
        spec.name = "grid".into();
        spec.mc.replications = 50;
        spec
    }

    #[test]
    fn expansion_is_cartesian_and_ordered() {
        let sweep = SweepSpec {
            base: base(),
            axes: vec![
                SweepAxis::Utilization(vec![0.76, 0.78]),
                SweepAxis::Lambda(vec![1.4e-3, 1.6e-3]),
            ],
        };
        assert_eq!(sweep.len(), 4);
        let specs = sweep.expand().unwrap();
        assert_eq!(specs.len(), 4);
        assert_eq!(specs[0].name, "grid-u0.76-l0.0014");
        assert_eq!(specs[3].name, "grid-u0.78-l0.0016");
        // Outermost axis slowest.
        match (&specs[1].scenario.work, &specs[1].faults) {
            (WorkSpec::Utilization { utilization, .. }, FaultSpec::Poisson { lambda }) => {
                assert_eq!(*utilization, 0.76);
                assert_eq!(*lambda, 1.6e-3);
            }
            other => panic!("unexpected {other:?}"),
        }
        // Each point gets a distinct derived seed.
        let seeds: Vec<u64> = specs.iter().map(|s| s.mc.seed).collect();
        assert_eq!(seeds, vec![2006, 2007, 2008, 2009]);
    }

    #[test]
    fn lambda_axis_updates_policy_too() {
        let sweep = SweepSpec {
            base: base(),
            axes: vec![SweepAxis::Lambda(vec![9e-4])],
        };
        let specs = sweep.expand().unwrap();
        match specs[0].policy {
            PolicySpec::DvsScp { lambda, .. } => assert_eq!(lambda, 9e-4),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn seed_axis_takes_precedence_over_derived_seeds() {
        let sweep = SweepSpec {
            base: base(),
            axes: vec![SweepAxis::Seed(vec![100, 200])],
        };
        let seeds: Vec<u64> = sweep.expand().unwrap().iter().map(|s| s.mc.seed).collect();
        assert_eq!(seeds, vec![100, 200]);
    }

    #[test]
    fn empty_axis_is_a_clear_error_not_a_silent_empty_grid() {
        let sweep = SweepSpec {
            base: base(),
            axes: vec![
                SweepAxis::Utilization(vec![0.76]),
                SweepAxis::Lambda(vec![]),
            ],
        };
        assert_eq!(sweep.len(), 0);
        let err = sweep.expand().unwrap_err();
        assert!(
            err.to_string().contains("axis #1"),
            "unhelpful error: {err}"
        );
    }

    #[test]
    fn incompatible_axes_error() {
        let mut b = base();
        b.faults = FaultSpec::Deterministic { times: vec![] };
        let sweep = SweepSpec {
            base: b,
            axes: vec![SweepAxis::Lambda(vec![1e-3])],
        };
        assert!(sweep.expand().is_err());
    }

    #[test]
    fn sweep_round_trips_through_json() {
        let sweep = SweepSpec {
            base: base(),
            axes: vec![
                SweepAxis::Utilization(vec![0.76, 0.8]),
                SweepAxis::K(vec![1, 5]),
                SweepAxis::Costs(vec![CostsSpec::PaperScp, CostsSpec::PaperCcp]),
            ],
        };
        let back = SweepSpec::from_json_str(&sweep.to_json_string()).unwrap();
        assert_eq!(sweep, back);
        assert_eq!(back.expand().unwrap().len(), 8);
    }

    fn executive_base() -> ExecutiveSpec {
        let mut spec = ExecutiveSpec::new(
            "exec-grid",
            TaskSetSpec::implicit([("sensor", 500.0, 4_000), ("control", 1_200.0, 8_000)]),
        );
        spec.faults = FaultSpec::Poisson { lambda: 5e-4 };
        spec.seed = 2006;
        spec
    }

    #[test]
    fn executive_expansion_is_cartesian_and_ordered() {
        let sweep = ExecutiveSweepSpec {
            base: executive_base(),
            axes: vec![
                ExecutiveSweepAxis::Hyperperiods(vec![2, 4]),
                ExecutiveSweepAxis::Lambda(vec![1.4e-3, 1.6e-3]),
            ],
        };
        assert_eq!(sweep.len(), 4);
        let specs = sweep.expand().unwrap();
        assert_eq!(specs.len(), 4);
        assert_eq!(specs[0].name, "exec-grid-h2-l0.0014");
        assert_eq!(specs[3].name, "exec-grid-h4-l0.0016");
        // Outermost axis slowest.
        assert_eq!(specs[1].hyperperiods, 2);
        match specs[1].faults {
            FaultSpec::Poisson { lambda } => assert_eq!(lambda, 1.6e-3),
            ref other => panic!("unexpected {other:?}"),
        }
        // Each point gets a distinct derived seed.
        let seeds: Vec<u64> = specs.iter().map(|s| s.seed).collect();
        assert_eq!(seeds, vec![2006, 2007, 2008, 2009]);
    }

    #[test]
    fn executive_lambda_axis_updates_every_assigned_policy() {
        let mut base = executive_base();
        base.policy = PolicyAssignment::PerTask(vec![
            PolicySpec::from_tag("a_d_s", 5e-4, 2, 0).unwrap(),
            PolicySpec::from_tag("a_d", 5e-4, 2, 0).unwrap(),
        ]);
        let sweep = ExecutiveSweepSpec {
            base,
            axes: vec![ExecutiveSweepAxis::Lambda(vec![9e-4])],
        };
        let specs = sweep.expand().unwrap();
        match &specs[0].policy {
            PolicyAssignment::PerTask(ps) => {
                for p in ps {
                    match p {
                        PolicySpec::DvsScp { lambda, .. } | PolicySpec::AdtDvs { lambda, .. } => {
                            assert_eq!(*lambda, 9e-4)
                        }
                        other => panic!("unexpected {other:?}"),
                    }
                }
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn executive_utilization_axis_rescales_wcets_to_the_target() {
        let sweep = ExecutiveSweepSpec {
            base: executive_base(),
            axes: vec![ExecutiveSweepAxis::Utilization(vec![0.5, 0.9])],
        };
        let specs = sweep.expand().unwrap();
        for (spec, target) in specs.iter().zip([0.5, 0.9]) {
            let util: f64 = spec
                .tasks
                .tasks
                .iter()
                .map(|t| t.wcet / t.period as f64)
                .sum();
            assert!(
                (util - target).abs() < 1e-12,
                "wanted utilization {target}, got {util}"
            );
        }
        // The relative wcet mix is preserved (uniform scaling).
        let ratio = specs[0].tasks.tasks[1].wcet / specs[0].tasks.tasks[0].wcet;
        assert!((ratio - 1_200.0 / 500.0).abs() < 1e-12);
    }

    #[test]
    fn executive_k_axis_updates_feasibility_target_and_policies() {
        let sweep = ExecutiveSweepSpec {
            base: executive_base(),
            axes: vec![ExecutiveSweepAxis::K(vec![4])],
        };
        let specs = sweep.expand().unwrap();
        assert_eq!(specs[0].k, 4);
        match &specs[0].policy {
            PolicyAssignment::Shared(p) => assert_eq!(p.k(), Some(4)),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn executive_seed_axis_takes_precedence_over_derived_seeds() {
        let sweep = ExecutiveSweepSpec {
            base: executive_base(),
            axes: vec![ExecutiveSweepAxis::Seed(vec![100, 200])],
        };
        let seeds: Vec<u64> = sweep.expand().unwrap().iter().map(|s| s.seed).collect();
        assert_eq!(seeds, vec![100, 200]);
    }

    #[test]
    fn executive_sweep_errors_are_clear() {
        // Lambda over a non-Poisson base.
        let mut b = executive_base();
        b.faults = FaultSpec::Deterministic { times: vec![] };
        let sweep = ExecutiveSweepSpec {
            base: b,
            axes: vec![ExecutiveSweepAxis::Lambda(vec![1e-3])],
        };
        let err = sweep.expand().unwrap_err();
        assert!(err.to_string().contains("Poisson"), "unhelpful: {err}");

        // Empty axis.
        let sweep = ExecutiveSweepSpec {
            base: executive_base(),
            axes: vec![
                ExecutiveSweepAxis::Hyperperiods(vec![1]),
                ExecutiveSweepAxis::Lambda(vec![]),
            ],
        };
        let err = sweep.expand().unwrap_err();
        assert!(err.to_string().contains("axis #1"), "unhelpful: {err}");

        // Non-positive utilization target.
        let sweep = ExecutiveSweepSpec {
            base: executive_base(),
            axes: vec![ExecutiveSweepAxis::Utilization(vec![0.0])],
        };
        assert!(sweep.expand().is_err());

        // Unknown axis kind names the executive vocabulary.
        let err =
            ExecutiveSweepAxis::from_json(&Json::parse(r#"{"costs": []}"#).unwrap()).unwrap_err();
        assert!(err.to_string().contains("hyperperiods"), "unhelpful: {err}");
    }

    #[test]
    fn executive_sweep_round_trips_through_json() {
        let mut base = executive_base();
        base.mc = Some(crate::executive::ExecutiveMcSpec {
            replications: 32,
            threads: 0,
            queue: None,
        });
        let sweep = ExecutiveSweepSpec {
            base,
            axes: vec![
                ExecutiveSweepAxis::Hyperperiods(vec![1, 2]),
                ExecutiveSweepAxis::Utilization(vec![0.4, 0.7]),
                ExecutiveSweepAxis::K(vec![1, 3]),
            ],
        };
        let back = ExecutiveSweepSpec::from_json_str(&sweep.to_json_string()).unwrap();
        assert_eq!(sweep, back);
        assert_eq!(back.expand().unwrap().len(), 8);
    }
}
