//! Spec-layer error type.
//!
//! Hand-implemented `Display`/`Error` (the offline build has no `thiserror`),
//! but shaped the way a `thiserror` derive would shape it: one variant per
//! failure class, each carrying the context a caller needs to print a
//! actionable message.

/// Why a spec document could not be parsed, validated or built.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpecError {
    /// The JSON text itself is malformed.
    Parse(String),
    /// A required object field is absent.
    MissingField {
        /// The absent field.
        field: String,
        /// The JSON type of the value the field was looked up in.
        in_type: &'static str,
    },
    /// A field holds the wrong JSON type.
    TypeMismatch {
        /// What the spec schema expects.
        expected: &'static str,
        /// What the document contains.
        found: &'static str,
    },
    /// A tagged enum's `kind` is not one of the known variants.
    UnknownKind {
        /// What kind of spec object was being read.
        what: &'static str,
        /// The unrecognized tag.
        kind: String,
        /// Accepted tags, for the error message.
        expected: &'static str,
    },
    /// A value is structurally valid JSON but semantically invalid
    /// (negative rate, empty DVS table, zero replications, ...).
    Invalid(String),
    /// Reading or writing a spec file failed.
    Io(String),
}

impl SpecError {
    pub(crate) fn parse(msg: impl Into<String>) -> Self {
        SpecError::Parse(msg.into())
    }

    pub(crate) fn missing_field(field: &str, in_type: &'static str) -> Self {
        SpecError::MissingField {
            field: field.to_owned(),
            in_type,
        }
    }

    pub(crate) fn type_mismatch(expected: &'static str, found: &'static str) -> Self {
        SpecError::TypeMismatch { expected, found }
    }

    pub(crate) fn unknown_kind(
        what: &'static str,
        kind: impl Into<String>,
        expected: &'static str,
    ) -> Self {
        SpecError::UnknownKind {
            what,
            kind: kind.into(),
            expected,
        }
    }

    /// A semantic-validation error.
    pub fn invalid(msg: impl Into<String>) -> Self {
        SpecError::Invalid(msg.into())
    }
}

impl std::fmt::Display for SpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SpecError::Parse(msg) => write!(f, "invalid JSON: {msg}"),
            SpecError::MissingField { field, in_type } => {
                write!(f, "missing field {field:?} (in a JSON {in_type})")
            }
            SpecError::TypeMismatch { expected, found } => {
                write!(f, "expected {expected}, found {found}")
            }
            SpecError::UnknownKind {
                what,
                kind,
                expected,
            } => write!(
                f,
                "unknown {what} kind {kind:?} (expected one of: {expected})"
            ),
            SpecError::Invalid(msg) => write!(f, "invalid spec: {msg}"),
            SpecError::Io(msg) => write!(f, "spec file I/O: {msg}"),
        }
    }
}

impl std::error::Error for SpecError {}

impl From<std::io::Error> for SpecError {
    fn from(e: std::io::Error) -> Self {
        SpecError::Io(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_carry_context() {
        let e = SpecError::missing_field("lambda", "object");
        assert_eq!(e.to_string(), "missing field \"lambda\" (in a JSON object)");
        let e = SpecError::unknown_kind("policy", "bogus", "poisson, kft");
        assert!(e.to_string().contains("bogus"));
        assert!(e.to_string().contains("poisson"));
    }

    #[test]
    fn implements_std_error() {
        fn takes_error(_: &dyn std::error::Error) {}
        takes_error(&SpecError::invalid("x"));
    }
}
