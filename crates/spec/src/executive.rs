//! Spec layer for periodic task sets and the EDF executive.
//!
//! The paper analyzes one task instance; `eacp-rtsched` models the
//! periodic substrate around it (after the paper's Ref.\[2\]). This module
//! gives that substrate the same declarative treatment the single-task
//! experiments already have:
//!
//! * [`PeriodicTaskSpec`] / [`TaskSetSpec`] — a serializable periodic
//!   workload (name, WCET cycles, period, deadline), with all the
//!   panicking invariants of [`eacp_rtsched::PeriodicTask`] reported as
//!   [`SpecError`]s instead;
//! * [`PolicyAssignment`] — one shared [`PolicySpec`] for every task, or
//!   an explicit per-task list;
//! * [`ExecutiveSpec`] — everything `eacp feasibility` and
//!   `eacp executive` need: the task set, checkpoint costs, DVS table,
//!   the fault stream, policy assignment, the k-fault-tolerance target
//!   and analysis speed for feasibility, and the hyperperiod count + seed
//!   for the executive run;
//! * [`ExecutiveRunReport`] — the serializable result of an executive
//!   run, shaped like [`crate::RunReport`] (`spec` + `policy` + `summary`)
//!   with per-task aggregates.
//!
//! The reproducibility contract matches the Monte-Carlo layer: the same
//! `ExecutiveSpec` (seed included) always produces a byte-identical
//! report. Execution lives in `eacp-exec` (`eacp_exec::run_executive`).

use crate::error::SpecError;
use crate::json::{FromJson, Json, ToJson};
use crate::model::{CostsSpec, DvsSpec, FaultSpec, PolicySpec, QueueSpec};
use eacp_rtsched::{PeriodicTask, TaskSet};

/// One periodic task in serializable form.
///
/// JSON shape: `{"name": ..., "wcet": ..., "period": ..., "deadline": ...}`
/// with `deadline` defaulting to `period` (implicit deadlines).
#[derive(Debug, Clone, PartialEq)]
pub struct PeriodicTaskSpec {
    /// Human-readable name used in reports.
    pub name: String,
    /// Worst-case work per job, in cycles at the minimum speed.
    pub wcet: f64,
    /// Release period (normalized time units).
    pub period: u64,
    /// Relative deadline (must satisfy `0 < deadline <= period`).
    pub deadline: u64,
}

impl PeriodicTaskSpec {
    /// An implicit-deadline task (`deadline = period`).
    pub fn new(name: impl Into<String>, wcet: f64, period: u64) -> Self {
        Self {
            name: name.into(),
            wcet,
            period,
            deadline: period,
        }
    }

    /// Builds the runtime [`PeriodicTask`], validating every invariant the
    /// runtime constructor would panic on.
    pub fn build(&self) -> Result<PeriodicTask, SpecError> {
        if !(self.wcet > 0.0 && self.wcet.is_finite()) {
            return Err(SpecError::invalid(format!(
                "task {:?}: wcet must be positive and finite, got {}",
                self.name, self.wcet
            )));
        }
        if self.period == 0 {
            return Err(SpecError::invalid(format!(
                "task {:?}: period must be positive",
                self.name
            )));
        }
        if self.deadline == 0 || self.deadline > self.period {
            return Err(SpecError::invalid(format!(
                "task {:?}: deadline must be in (0, period], got {} (period {})",
                self.name, self.deadline, self.period
            )));
        }
        Ok(PeriodicTask::new(
            self.name.clone(),
            self.wcet,
            self.period,
            self.deadline,
        ))
    }
}

impl ToJson for PeriodicTaskSpec {
    fn to_json(&self) -> Json {
        Json::obj([
            ("name", self.name.as_str().into()),
            ("wcet", self.wcet.into()),
            ("period", self.period.into()),
            ("deadline", self.deadline.into()),
        ])
    }
}

impl FromJson for PeriodicTaskSpec {
    fn from_json(json: &Json) -> Result<Self, SpecError> {
        let period = json.req("period")?.as_u64()?;
        Ok(Self {
            name: json.req("name")?.as_str()?.to_owned(),
            wcet: json.req("wcet")?.as_f64()?,
            period,
            deadline: json.get("deadline").map_or(Ok(period), Json::as_u64)?,
        })
    }
}

/// A serializable periodic task set.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TaskSetSpec {
    /// The tasks, in declaration order (order is part of the contract:
    /// task indices in reports refer to it).
    pub tasks: Vec<PeriodicTaskSpec>,
}

impl TaskSetSpec {
    /// A task set from implicit-deadline `(name, wcet, period)` triples.
    pub fn implicit<N: Into<String>>(tasks: impl IntoIterator<Item = (N, f64, u64)>) -> Self {
        Self {
            tasks: tasks
                .into_iter()
                .map(|(n, w, p)| PeriodicTaskSpec::new(n, w, p))
                .collect(),
        }
    }

    /// Number of tasks.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// Whether the spec holds no tasks (never valid to build).
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// Builds the runtime [`TaskSet`].
    ///
    /// Rejects empty sets and any task with a non-positive WCET, a zero
    /// period, or a deadline outside `(0, period]`.
    pub fn build(&self) -> Result<TaskSet, SpecError> {
        if self.tasks.is_empty() {
            return Err(SpecError::invalid(
                "a task set needs at least one task (tasks is empty)",
            ));
        }
        let tasks = self
            .tasks
            .iter()
            .map(PeriodicTaskSpec::build)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(TaskSet::new(tasks))
    }
}

impl ToJson for TaskSetSpec {
    fn to_json(&self) -> Json {
        Json::Array(self.tasks.iter().map(ToJson::to_json).collect())
    }
}

impl FromJson for TaskSetSpec {
    fn from_json(json: &Json) -> Result<Self, SpecError> {
        let tasks = json
            .as_array()?
            .iter()
            .map(PeriodicTaskSpec::from_json)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Self { tasks })
    }
}

/// How checkpointing policies map onto the task set.
///
/// JSON shape: a single policy object (`{"kind": "a_d_s", ...}`) is the
/// shared assignment; an array of policy objects assigns one per task (in
/// task order, arity-checked at validation).
#[derive(Debug, Clone, PartialEq)]
pub enum PolicyAssignment {
    /// Every job of every task runs the same scheme.
    Shared(PolicySpec),
    /// Task `i` runs `policies[i]`.
    PerTask(Vec<PolicySpec>),
}

impl PolicyAssignment {
    /// The policy for one task index.
    ///
    /// # Panics
    ///
    /// Panics on an out-of-range index for a per-task assignment (the
    /// arity is checked by [`PolicyAssignment::validate`]).
    pub fn for_task(&self, index: usize) -> &PolicySpec {
        match self {
            PolicyAssignment::Shared(p) => p,
            PolicyAssignment::PerTask(ps) => &ps[index],
        }
    }

    /// The per-task `Policy::name()` list (one entry per task).
    pub fn policy_names(&self, task_count: usize) -> Vec<String> {
        (0..task_count)
            .map(|i| self.for_task(i).policy_name().to_owned())
            .collect()
    }

    /// Validates arity and every contained policy.
    pub fn validate(&self, task_count: usize) -> Result<(), SpecError> {
        match self {
            PolicyAssignment::Shared(p) => {
                p.build()?;
            }
            PolicyAssignment::PerTask(ps) => {
                if ps.len() != task_count {
                    return Err(SpecError::invalid(format!(
                        "per-task policy list has {} entries for {} tasks",
                        ps.len(),
                        task_count
                    )));
                }
                for p in ps {
                    p.build()?;
                }
            }
        }
        Ok(())
    }
}

impl ToJson for PolicyAssignment {
    fn to_json(&self) -> Json {
        match self {
            PolicyAssignment::Shared(p) => p.to_json(),
            PolicyAssignment::PerTask(ps) => Json::Array(ps.iter().map(ToJson::to_json).collect()),
        }
    }
}

impl FromJson for PolicyAssignment {
    fn from_json(json: &Json) -> Result<Self, SpecError> {
        match json {
            Json::Array(items) => Ok(PolicyAssignment::PerTask(
                items
                    .iter()
                    .map(PolicySpec::from_json)
                    .collect::<Result<Vec<_>, _>>()?,
            )),
            other => Ok(PolicyAssignment::Shared(PolicySpec::from_json(other)?)),
        }
    }
}

/// Monte-Carlo parameters of an executive run: how many seeded horizons
/// to simulate and how to execute them. The executive analogue of
/// [`crate::McSpec`] — the seed lives on the enclosing [`ExecutiveSpec`],
/// and horizon `i` derives its stream from `replication_seed(seed, i)`.
///
/// JSON shape: `{"replications": ..., "threads": ..., "queue": {...}}`
/// with every field optional (`queue` is emitted only when present, so
/// locally-run documents stay byte-stable).
#[derive(Debug, Clone, PartialEq)]
pub struct ExecutiveMcSpec {
    /// Number of independently seeded horizons.
    pub replications: u64,
    /// Worker threads for the local runner (0 = all available cores).
    pub threads: usize,
    /// Run through the work queue instead of the local runner.
    pub queue: Option<QueueSpec>,
}

impl Default for ExecutiveMcSpec {
    fn default() -> Self {
        Self {
            replications: 200,
            threads: 0,
            queue: None,
        }
    }
}

impl ExecutiveMcSpec {
    /// Validates the Monte-Carlo parameters.
    pub fn validate(&self) -> Result<(), SpecError> {
        if self.replications == 0 {
            return Err(SpecError::invalid(
                "mc.replications must be at least 1 (a Monte-Carlo run needs horizons)",
            ));
        }
        if let Some(q) = &self.queue {
            q.validate()?;
        }
        Ok(())
    }
}

impl ToJson for ExecutiveMcSpec {
    fn to_json(&self) -> Json {
        let mut fields: Vec<(&'static str, Json)> = vec![
            ("replications", self.replications.into()),
            ("threads", self.threads.into()),
        ];
        if let Some(q) = &self.queue {
            fields.push(("queue", q.to_json()));
        }
        Json::obj(fields)
    }
}

impl FromJson for ExecutiveMcSpec {
    fn from_json(json: &Json) -> Result<Self, SpecError> {
        let defaults = Self::default();
        Ok(Self {
            replications: json
                .get("replications")
                .map_or(Ok(defaults.replications), Json::as_u64)?,
            threads: json
                .get("threads")
                .map_or(Ok(defaults.threads), Json::as_usize)?,
            queue: match json.get("queue") {
                None | Some(Json::Null) => None,
                Some(q) => Some(QueueSpec::from_json(q)?),
            },
        })
    }
}

/// Everything needed to analyze and run a periodic workload: the
/// feasibility inputs (`k`, `speed`) and the executive inputs
/// (`faults`, `policy`, `hyperperiods`, `seed`) around one [`TaskSetSpec`].
#[derive(Debug, Clone, PartialEq)]
pub struct ExecutiveSpec {
    /// Human-readable workload name.
    pub name: String,
    /// The periodic task set.
    pub tasks: TaskSetSpec,
    /// Checkpoint costs shared by all tasks.
    pub costs: CostsSpec,
    /// DVS level table shared by all tasks.
    pub dvs: DvsSpec,
    /// The global wall-clock fault stream the executive injects (shared
    /// across tasks: each job sees the arrivals inside its own window).
    pub faults: FaultSpec,
    /// Checkpointing policy per task (shared or per-task).
    pub policy: PolicyAssignment,
    /// Fault-tolerance target for the k-fault WCET inflation used by the
    /// feasibility tests.
    pub k: u32,
    /// Processor speed (frequency) the feasibility analysis is quoted at.
    pub speed: f64,
    /// Number of hyperperiods the executive simulates.
    pub hyperperiods: u32,
    /// RNG seed for the fault stream (base seed of the per-horizon
    /// derivation when `mc` is present).
    pub seed: u64,
    /// Monte-Carlo parameters for `eacp executive --mc`; `None` means a
    /// single horizon (the original executive run).
    pub mc: Option<ExecutiveMcSpec>,
}

impl ExecutiveSpec {
    /// Default feasibility/executive parameters around a task set: paper
    /// SCP costs, paper DVS table, a fault-free stream, the shared `A_D_S`
    /// policy at `k = 2`, one hyperperiod, seed 2006.
    pub fn new(name: impl Into<String>, tasks: TaskSetSpec) -> Self {
        let k = 2;
        Self {
            name: name.into(),
            tasks,
            costs: CostsSpec::PaperScp,
            dvs: DvsSpec::PaperDefault,
            faults: FaultSpec::Poisson { lambda: 0.0 },
            policy: PolicyAssignment::Shared(default_policy(0.0, k)),
            k,
            speed: 1.0,
            hyperperiods: 1,
            seed: 2006,
            mc: None,
        }
    }

    /// Parses a spec from JSON text.
    pub fn from_json_str(text: &str) -> Result<Self, SpecError> {
        Self::from_json(&Json::parse(text)?)
    }

    /// Serializes the spec as pretty-printed JSON.
    pub fn to_json_string(&self) -> String {
        self.to_json().pretty()
    }

    /// Reads a spec file.
    pub fn load(path: &std::path::Path) -> Result<Self, SpecError> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| SpecError::Io(format!("{}: {e}", path.display())))?;
        Self::from_json_str(&text)
    }

    /// Writes the spec as a JSON file.
    pub fn save(&self, path: &std::path::Path) -> Result<(), SpecError> {
        std::fs::write(path, self.to_json_string())
            .map_err(|e| SpecError::Io(format!("{}: {e}", path.display())))
    }

    /// Validates every component by building it once.
    pub fn validate(&self) -> Result<(), SpecError> {
        self.tasks.build()?;
        self.costs.build()?;
        self.dvs.build()?;
        self.faults.build(0)?;
        self.policy.validate(self.tasks.len())?;
        if !(self.speed > 0.0 && self.speed.is_finite()) {
            return Err(SpecError::invalid(format!(
                "speed must be positive and finite, got {}",
                self.speed
            )));
        }
        if self.hyperperiods == 0 {
            return Err(SpecError::invalid("hyperperiods must be at least 1"));
        }
        if let Some(mc) = &self.mc {
            mc.validate()?;
        }
        Ok(())
    }

    /// The Monte-Carlo parameters, defaulted when the spec carries none —
    /// what `eacp executive --mc` runs with before CLI overrides.
    pub fn mc_or_default(&self) -> ExecutiveMcSpec {
        self.mc.clone().unwrap_or_default()
    }
}

/// The default shared scheme: the paper's proposed `A_D_S`.
fn default_policy(lambda: f64, k: u32) -> PolicySpec {
    // audit:allow(panic): "a_d_s" is a literal member of `PolicySpec::TAGS`.
    PolicySpec::from_tag("a_d_s", lambda, k, 0).expect("a_d_s is a known tag")
}

impl ToJson for ExecutiveSpec {
    fn to_json(&self) -> Json {
        let mut fields: Vec<(&'static str, Json)> = vec![
            ("name", self.name.as_str().into()),
            ("tasks", self.tasks.to_json()),
            ("costs", self.costs.to_json()),
            ("dvs", self.dvs.to_json()),
            ("faults", self.faults.to_json()),
            ("policy", self.policy.to_json()),
            ("k", self.k.into()),
            ("speed", self.speed.into()),
            ("hyperperiods", self.hyperperiods.into()),
            ("seed", self.seed.into()),
        ];
        // Emitted only when present, so pre-Monte-Carlo documents (and the
        // checked-in presets) round-trip byte-identically.
        if let Some(mc) = &self.mc {
            fields.push(("mc", mc.to_json()));
        }
        Json::obj(fields)
    }
}

impl FromJson for ExecutiveSpec {
    fn from_json(json: &Json) -> Result<Self, SpecError> {
        let tasks = TaskSetSpec::from_json(json.req("tasks")?)?;
        let faults = json
            .get("faults")
            .map_or(Ok(FaultSpec::Poisson { lambda: 0.0 }), FaultSpec::from_json)?;
        let k = json.get("k").map_or(Ok(2), Json::as_u32)?;
        let policy = match json.get("policy") {
            Some(p) => PolicyAssignment::from_json(p)?,
            None => {
                PolicyAssignment::Shared(default_policy(faults.nominal_lambda().unwrap_or(0.0), k))
            }
        };
        Ok(Self {
            name: json
                .get("name")
                .map_or(Ok("unnamed"), Json::as_str)?
                .to_owned(),
            tasks,
            costs: json
                .get("costs")
                .map_or(Ok(CostsSpec::PaperScp), CostsSpec::from_json)?,
            dvs: json
                .get("dvs")
                .map_or(Ok(DvsSpec::PaperDefault), DvsSpec::from_json)?,
            faults,
            policy,
            k,
            speed: json.get("speed").map_or(Ok(1.0), Json::as_f64)?,
            hyperperiods: json.get("hyperperiods").map_or(Ok(1), Json::as_u32)?,
            seed: json.get("seed").map_or(Ok(2006), Json::as_u64)?,
            mc: match json.get("mc") {
                None | Some(Json::Null) => None,
                Some(mc) => Some(ExecutiveMcSpec::from_json(mc)?),
            },
        })
    }
}

/// Checkpoint operation totals (store / compare / compare-and-store).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CheckpointTotals {
    /// Store checkpoints (SCP).
    pub store: u64,
    /// Compare checkpoints (CCP).
    pub compare: u64,
    /// Compare-and-store checkpoints (CSCP).
    pub compare_store: u64,
}

impl CheckpointTotals {
    /// Sum over all checkpoint kinds.
    pub fn total(&self) -> u64 {
        self.store + self.compare + self.compare_store
    }

    /// Accumulates another total.
    pub fn add(&mut self, other: &CheckpointTotals) {
        self.store += other.store;
        self.compare += other.compare;
        self.compare_store += other.compare_store;
    }
}

impl ToJson for CheckpointTotals {
    fn to_json(&self) -> Json {
        Json::obj([
            ("store", self.store.into()),
            ("compare", self.compare.into()),
            ("compare_store", self.compare_store.into()),
            ("total", self.total().into()),
        ])
    }
}

impl FromJson for CheckpointTotals {
    fn from_json(json: &Json) -> Result<Self, SpecError> {
        Ok(Self {
            store: json.req("store")?.as_u64()?,
            compare: json.req("compare")?.as_u64()?,
            compare_store: json.req("compare_store")?.as_u64()?,
        })
    }
}

/// Per-task aggregate of an executive run.
#[derive(Debug, Clone, PartialEq)]
pub struct TaskReport {
    /// The task's name (from the spec).
    pub name: String,
    /// Jobs released over the horizon.
    pub jobs: u64,
    /// Jobs that missed their deadline.
    pub deadline_misses: u64,
    /// Energy consumed by this task's jobs.
    pub energy: f64,
    /// Faults observed inside this task's execution windows.
    pub faults: u64,
    /// Rollbacks taken by this task's jobs.
    pub rollbacks: u64,
    /// Checkpoint operations executed by this task's jobs.
    pub checkpoints: CheckpointTotals,
    /// Worst observed response time (finish − release; 0 with no jobs).
    pub worst_response: f64,
}

impl ToJson for TaskReport {
    fn to_json(&self) -> Json {
        Json::obj([
            ("name", self.name.as_str().into()),
            ("jobs", self.jobs.into()),
            ("deadline_misses", self.deadline_misses.into()),
            ("energy", self.energy.into()),
            ("faults", self.faults.into()),
            ("rollbacks", self.rollbacks.into()),
            ("checkpoints", self.checkpoints.to_json()),
            ("worst_response", self.worst_response.into()),
        ])
    }
}

impl FromJson for TaskReport {
    fn from_json(json: &Json) -> Result<Self, SpecError> {
        Ok(Self {
            name: json.req("name")?.as_str()?.to_owned(),
            jobs: json.req("jobs")?.as_u64()?,
            deadline_misses: json.req("deadline_misses")?.as_u64()?,
            energy: json.req("energy")?.as_f64()?,
            faults: json.req("faults")?.as_u64()?,
            rollbacks: json.req("rollbacks")?.as_u64()?,
            checkpoints: CheckpointTotals::from_json(json.req("checkpoints")?)?,
            worst_response: json.req("worst_response")?.as_f64()?,
        })
    }
}

/// Whole-horizon aggregate of an executive run.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecutiveSummaryReport {
    /// Hyperperiod of the task set.
    pub hyperperiod: u64,
    /// Simulated horizon (`hyperperiod × hyperperiods`).
    pub horizon: f64,
    /// Total jobs released.
    pub jobs: u64,
    /// Jobs that missed their deadline.
    pub deadline_misses: u64,
    /// `deadline_misses / jobs` (0 with no jobs).
    pub miss_ratio: f64,
    /// Total energy over the horizon.
    pub total_energy: f64,
    /// Total faults observed inside execution windows.
    pub faults: u64,
    /// Total rollbacks.
    pub rollbacks: u64,
    /// Total checkpoint operations.
    pub checkpoints: CheckpointTotals,
}

impl ToJson for ExecutiveSummaryReport {
    fn to_json(&self) -> Json {
        Json::obj([
            ("hyperperiod", self.hyperperiod.into()),
            ("horizon", self.horizon.into()),
            ("jobs", self.jobs.into()),
            ("deadline_misses", self.deadline_misses.into()),
            ("miss_ratio", self.miss_ratio.into()),
            ("total_energy", self.total_energy.into()),
            ("faults", self.faults.into()),
            ("rollbacks", self.rollbacks.into()),
            ("checkpoints", self.checkpoints.to_json()),
        ])
    }
}

impl FromJson for ExecutiveSummaryReport {
    fn from_json(json: &Json) -> Result<Self, SpecError> {
        Ok(Self {
            hyperperiod: json.req("hyperperiod")?.as_u64()?,
            horizon: json.req("horizon")?.as_f64()?,
            jobs: json.req("jobs")?.as_u64()?,
            deadline_misses: json.req("deadline_misses")?.as_u64()?,
            miss_ratio: json.req("miss_ratio")?.as_f64()?,
            total_energy: json.req("total_energy")?.as_f64()?,
            faults: json.req("faults")?.as_u64()?,
            rollbacks: json.req("rollbacks")?.as_u64()?,
            checkpoints: CheckpointTotals::from_json(json.req("checkpoints")?)?,
        })
    }
}

/// The serializable result of one executive run, shaped like
/// [`crate::RunReport`]: the producing spec is embedded for provenance,
/// `policy` names what ran (one entry per task), and `summary`/`tasks`
/// carry the aggregates.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecutiveRunReport {
    /// The spec that produced this result.
    pub spec: ExecutiveSpec,
    /// The `Policy::name()` of each task's scheme, in task order.
    pub policy_names: Vec<String>,
    /// Whole-horizon aggregates.
    pub summary: ExecutiveSummaryReport,
    /// Per-task aggregates, in task order.
    pub tasks: Vec<TaskReport>,
}

impl ExecutiveRunReport {
    /// Parses a report from JSON text.
    pub fn from_json_str(text: &str) -> Result<Self, SpecError> {
        Self::from_json(&Json::parse(text)?)
    }

    /// Serializes the report as pretty-printed JSON.
    pub fn to_json_string(&self) -> String {
        self.to_json().pretty()
    }
}

impl ToJson for ExecutiveRunReport {
    fn to_json(&self) -> Json {
        Json::obj([
            ("spec", self.spec.to_json()),
            (
                "policy",
                Json::Array(
                    self.policy_names
                        .iter()
                        .map(|n| n.as_str().into())
                        .collect(),
                ),
            ),
            ("summary", self.summary.to_json()),
            (
                "tasks",
                Json::Array(self.tasks.iter().map(ToJson::to_json).collect()),
            ),
        ])
    }
}

impl FromJson for ExecutiveRunReport {
    fn from_json(json: &Json) -> Result<Self, SpecError> {
        Ok(Self {
            spec: ExecutiveSpec::from_json(json.req("spec")?)?,
            policy_names: json
                .req("policy")?
                .as_array()?
                .iter()
                .map(|n| n.as_str().map(str::to_owned))
                .collect::<Result<Vec<_>, _>>()?,
            summary: ExecutiveSummaryReport::from_json(json.req("summary")?)?,
            tasks: json
                .req("tasks")?
                .as_array()?
                .iter()
                .map(TaskReport::from_json)
                .collect::<Result<Vec<_>, _>>()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trio() -> TaskSetSpec {
        TaskSetSpec::implicit([
            ("attitude-control", 900.0, 5_000),
            ("sensor-fusion", 1_400.0, 10_000),
            ("telemetry-downlink", 2_600.0, 20_000),
        ])
    }

    #[test]
    fn taskset_builds_and_matches_runtime_model() {
        let set = trio().build().unwrap();
        assert_eq!(set.len(), 3);
        assert_eq!(set.hyperperiod(), 20_000);
        assert_eq!(set.tasks()[0].name, "attitude-control");
    }

    #[test]
    fn invalid_task_sets_error_instead_of_panicking() {
        let empty = TaskSetSpec { tasks: vec![] };
        assert!(matches!(empty.build(), Err(SpecError::Invalid(_))));

        let mut zero_period = trio();
        zero_period.tasks[1].period = 0;
        assert!(matches!(zero_period.build(), Err(SpecError::Invalid(_))));

        let mut late = trio();
        late.tasks[0].deadline = late.tasks[0].period + 1;
        assert!(matches!(late.build(), Err(SpecError::Invalid(_))));

        let mut negative = trio();
        negative.tasks[2].wcet = -5.0;
        assert!(matches!(negative.build(), Err(SpecError::Invalid(_))));
    }

    #[test]
    fn executive_spec_round_trips_through_json() {
        let mut spec = ExecutiveSpec::new("avionics", trio());
        spec.faults = FaultSpec::Poisson { lambda: 5e-4 };
        spec.policy = PolicyAssignment::Shared(PolicySpec::from_tag("a_d_s", 5e-4, 2, 0).unwrap());
        spec.hyperperiods = 5;
        spec.seed = 13;
        let back = ExecutiveSpec::from_json_str(&spec.to_json_string()).unwrap();
        assert_eq!(back, spec);
        back.validate().unwrap();
    }

    #[test]
    fn per_task_policies_round_trip_and_check_arity() {
        let mut spec = ExecutiveSpec::new("mixed", trio());
        spec.policy = PolicyAssignment::PerTask(vec![
            PolicySpec::from_tag("a_d_s", 1e-3, 2, 0).unwrap(),
            PolicySpec::from_tag("kft", 1e-3, 3, 0).unwrap(),
            PolicySpec::from_tag("cscp", 1e-3, 2, 1).unwrap(),
        ]);
        let back = ExecutiveSpec::from_json_str(&spec.to_json_string()).unwrap();
        assert_eq!(back, spec);
        back.validate().unwrap();
        assert_eq!(back.policy.for_task(1).tag(), "kft");
        assert_eq!(
            back.policy.policy_names(3),
            vec!["A_D_S".to_owned(), "k-f-t".into(), "A".into()]
        );

        // Wrong arity is a SpecError, not a panic.
        spec.policy =
            PolicyAssignment::PerTask(vec![PolicySpec::from_tag("a_d_s", 1e-3, 2, 0).unwrap()]);
        assert!(matches!(spec.validate(), Err(SpecError::Invalid(_))));
    }

    #[test]
    fn missing_fields_default_sanely() {
        let text = r#"{
            "tasks": [{"name": "solo", "wcet": 500, "period": 4000}]
        }"#;
        let spec = ExecutiveSpec::from_json_str(text).unwrap();
        assert_eq!(spec.name, "unnamed");
        assert_eq!(spec.tasks.tasks[0].deadline, 4_000);
        assert_eq!(spec.costs, CostsSpec::PaperScp);
        assert_eq!(spec.k, 2);
        assert_eq!(spec.hyperperiods, 1);
        assert_eq!(spec.seed, 2006);
        assert!(matches!(spec.policy, PolicyAssignment::Shared(_)));
        spec.validate().unwrap();
    }

    #[test]
    fn mc_section_round_trips_and_is_emitted_only_when_present() {
        let mut spec = ExecutiveSpec::new("monte", trio());
        assert!(
            !spec.to_json_string().contains("\"mc\""),
            "a spec without mc must serialize without an mc key"
        );
        assert_eq!(spec.mc_or_default(), ExecutiveMcSpec::default());

        spec.mc = Some(ExecutiveMcSpec {
            replications: 64,
            threads: 2,
            queue: Some(QueueSpec {
                workers: 3,
                max_attempts: 5,
                ..Default::default()
            }),
        });
        let back = ExecutiveSpec::from_json_str(&spec.to_json_string()).unwrap();
        assert_eq!(back, spec);
        back.validate().unwrap();

        // Partial mc objects default field-wise.
        let text = r#"{
            "tasks": [{"name": "solo", "wcet": 500, "period": 4000}],
            "mc": {"replications": 7}
        }"#;
        let partial = ExecutiveSpec::from_json_str(text).unwrap();
        let mc = partial.mc.unwrap();
        assert_eq!(mc.replications, 7);
        assert_eq!(mc.threads, 0);
        assert!(mc.queue.is_none());
    }

    #[test]
    fn mc_validation_rejects_bad_parameters() {
        let mut spec = ExecutiveSpec::new("bad-mc", trio());
        spec.mc = Some(ExecutiveMcSpec {
            replications: 0,
            ..ExecutiveMcSpec::default()
        });
        assert!(matches!(spec.validate(), Err(SpecError::Invalid(_))));

        spec.mc = Some(ExecutiveMcSpec {
            queue: Some(QueueSpec {
                workers: 0,
                max_attempts: 0,
                ..Default::default()
            }),
            ..ExecutiveMcSpec::default()
        });
        assert!(matches!(spec.validate(), Err(SpecError::Invalid(_))));
    }

    #[test]
    fn executive_validation_rejects_bad_parameters() {
        let mut spec = ExecutiveSpec::new("bad", trio());
        spec.hyperperiods = 0;
        assert!(matches!(spec.validate(), Err(SpecError::Invalid(_))));

        let mut spec = ExecutiveSpec::new("bad", trio());
        spec.speed = 0.0;
        assert!(matches!(spec.validate(), Err(SpecError::Invalid(_))));

        let mut spec = ExecutiveSpec::new("bad", trio());
        spec.tasks.tasks.clear();
        assert!(matches!(spec.validate(), Err(SpecError::Invalid(_))));
    }

    #[test]
    fn run_report_round_trips_through_json() {
        let report = ExecutiveRunReport {
            spec: ExecutiveSpec::new("rt", trio()),
            policy_names: vec!["A_D_S".into(); 3],
            summary: ExecutiveSummaryReport {
                hyperperiod: 20_000,
                horizon: 40_000.0,
                jobs: 14,
                deadline_misses: 1,
                miss_ratio: 1.0 / 14.0,
                total_energy: 123_456.5,
                faults: 3,
                rollbacks: 2,
                checkpoints: CheckpointTotals {
                    store: 40,
                    compare: 10,
                    compare_store: 25,
                },
            },
            tasks: vec![TaskReport {
                name: "attitude-control".into(),
                jobs: 8,
                deadline_misses: 0,
                energy: 55_000.25,
                faults: 1,
                rollbacks: 1,
                checkpoints: CheckpointTotals {
                    store: 20,
                    compare: 5,
                    compare_store: 12,
                },
                worst_response: 1_234.5,
            }],
        };
        let back = ExecutiveRunReport::from_json_str(&report.to_json_string()).unwrap();
        assert_eq!(back, report);
        assert_eq!(back.summary.checkpoints.total(), 75);
    }
}
