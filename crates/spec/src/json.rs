//! A minimal, dependency-free JSON document model.
//!
//! The build environment of this repository cannot reach crates.io, so the
//! spec layer carries its own JSON reader/writer instead of `serde_json`.
//! The surface is deliberately serde-shaped — [`Json`] mirrors
//! `serde_json::Value`, and spec types implement [`ToJson`] / [`FromJson`]
//! the way they would derive `Serialize` / `Deserialize` — so a future PR
//! that restores the real dependency only swaps trait impls, not call
//! sites.
//!
//! Numbers round-trip exactly: floats are written with Rust's
//! shortest-round-trip formatting and integers are kept in a separate
//! lossless variant, which is what makes "serialize → deserialize → run"
//! bit-identical for every spec in this workspace.

use crate::error::SpecError;

/// A JSON document.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number written with a fraction or exponent (`1.5`, `2e-3`).
    Float(f64),
    /// A number written as a plain integer literal (lossless up to i128).
    Int(i128),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Json>),
    /// An object; insertion order is preserved.
    Object(Vec<(String, Json)>),
}

/// Types that can serialize themselves into a [`Json`] document.
pub trait ToJson {
    /// Serializes `self`.
    fn to_json(&self) -> Json;
}

/// Types that can deserialize themselves from a [`Json`] document.
pub trait FromJson: Sized {
    /// Deserializes a value, validating as it goes.
    fn from_json(json: &Json) -> Result<Self, SpecError>;
}

impl Json {
    /// Parses a JSON text.
    pub fn parse(text: &str) -> Result<Json, SpecError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after JSON document"));
        }
        Ok(v)
    }

    /// Pretty-prints with two-space indentation and a trailing newline.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Float(x) => out.push_str(&format_float(*x)),
            Json::Int(i) => out.push_str(&i.to_string()),
            Json::Str(s) => write_string(out, s),
            Json::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    item.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            Json::Object(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    write_string(out, k);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
        }
    }

    /// The value of `key` in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Required object field.
    pub fn req(&self, key: &str) -> Result<&Json, SpecError> {
        self.get(key)
            .ok_or_else(|| SpecError::missing_field(key, self.type_name()))
    }

    /// The numeric value, accepting either numeric variant. `null` reads
    /// as NaN — the write path emits NaN as `null` (JSON has no NaN), so
    /// this keeps numeric round-trips closed.
    pub fn as_f64(&self) -> Result<f64, SpecError> {
        match self {
            Json::Float(x) => Ok(*x),
            Json::Int(i) => Ok(*i as f64),
            Json::Null => Ok(f64::NAN),
            other => Err(SpecError::type_mismatch("number", other.type_name())),
        }
    }

    /// An unsigned integer (rejects fractions and negatives).
    pub fn as_u64(&self) -> Result<u64, SpecError> {
        match self {
            Json::Int(i) => u64::try_from(*i)
                .map_err(|_| SpecError::invalid(format!("integer {i} out of u64 range"))),
            other => Err(SpecError::type_mismatch(
                "unsigned integer",
                other.type_name(),
            )),
        }
    }

    /// A u32 (rejects fractions and negatives).
    pub fn as_u32(&self) -> Result<u32, SpecError> {
        let v = self.as_u64()?;
        u32::try_from(v).map_err(|_| SpecError::invalid(format!("integer {v} out of u32 range")))
    }

    /// A usize.
    pub fn as_usize(&self) -> Result<usize, SpecError> {
        let v = self.as_u64()?;
        usize::try_from(v).map_err(|_| SpecError::invalid(format!("integer {v} out of range")))
    }

    /// A string.
    pub fn as_str(&self) -> Result<&str, SpecError> {
        match self {
            Json::Str(s) => Ok(s),
            other => Err(SpecError::type_mismatch("string", other.type_name())),
        }
    }

    /// A boolean.
    pub fn as_bool(&self) -> Result<bool, SpecError> {
        match self {
            Json::Bool(b) => Ok(*b),
            other => Err(SpecError::type_mismatch("bool", other.type_name())),
        }
    }

    /// An array's items.
    pub fn as_array(&self) -> Result<&[Json], SpecError> {
        match self {
            Json::Array(items) => Ok(items),
            other => Err(SpecError::type_mismatch("array", other.type_name())),
        }
    }

    /// The JSON type name, for error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            Json::Null => "null",
            Json::Bool(_) => "bool",
            Json::Float(_) | Json::Int(_) => "number",
            Json::Str(_) => "string",
            Json::Array(_) => "array",
            Json::Object(_) => "object",
        }
    }

    /// Builds an object from `(key, value)` pairs.
    pub fn obj<I: IntoIterator<Item = (&'static str, Json)>>(fields: I) -> Json {
        Json::Object(fields.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
    }
}

impl From<f64> for Json {
    fn from(x: f64) -> Self {
        Json::Float(x)
    }
}

impl From<u64> for Json {
    fn from(x: u64) -> Self {
        Json::Int(x as i128)
    }
}

impl From<u32> for Json {
    fn from(x: u32) -> Self {
        Json::Int(x as i128)
    }
}

impl From<usize> for Json {
    fn from(x: usize) -> Self {
        Json::Int(x as i128)
    }
}

impl From<bool> for Json {
    fn from(x: bool) -> Self {
        Json::Bool(x)
    }
}

impl From<&str> for Json {
    fn from(x: &str) -> Self {
        Json::Str(x.to_owned())
    }
}

impl From<String> for Json {
    fn from(x: String) -> Self {
        Json::Str(x)
    }
}

fn push_indent(out: &mut String, n: usize) {
    for _ in 0..n {
        out.push_str("  ");
    }
}

/// Shortest representation that parses back to the same f64 (Rust's `{:?}`),
/// with JSON-isms for the values JSON cannot express.
fn format_float(x: f64) -> String {
    if x.is_nan() {
        // JSON has no NaN; the spec layer writes null and readers of report
        // documents treat null as NaN (the paper's empty table cells).
        "null".to_owned()
    } else if x.is_infinite() {
        if x > 0.0 { "1e999" } else { "-1e999" }.to_owned()
    } else {
        let s = format!("{x:?}");
        // `{:?}` prints integral floats as `1.0`, which is already valid
        // JSON and keeps the float/int distinction on re-parse.
        s
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> SpecError {
        // Convert byte offset to line/column for a useful message.
        let consumed = &self.bytes[..self.pos.min(self.bytes.len())];
        let line = consumed.iter().filter(|&&b| b == b'\n').count() + 1;
        let col = consumed.len()
            - consumed
                .iter()
                .rposition(|&b| b == b'\n')
                .map_or(0, |p| p + 1)
            + 1;
        SpecError::parse(format!("{msg} (line {line}, column {col})"))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect_byte(&mut self, b: u8) -> Result<(), SpecError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, value: Json) -> Result<Json, SpecError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{lit}'")))
        }
    }

    fn value(&mut self) -> Result<Json, SpecError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<Json, SpecError> {
        self.expect_byte(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect_byte(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(Json::Object(fields)),
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, SpecError> {
        self.expect_byte(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(Json::Array(items)),
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, SpecError> {
        self.expect_byte(b'"')?;
        let mut s = String::new();
        loop {
            match self.bump() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => return Ok(s),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => s.push('"'),
                    Some(b'\\') => s.push('\\'),
                    Some(b'/') => s.push('/'),
                    Some(b'n') => s.push('\n'),
                    Some(b'r') => s.push('\r'),
                    Some(b't') => s.push('\t'),
                    Some(b'b') => s.push('\u{8}'),
                    Some(b'f') => s.push('\u{c}'),
                    Some(b'u') => {
                        let mut code = 0u32;
                        for _ in 0..4 {
                            let d = self
                                .bump()
                                .and_then(|b| (b as char).to_digit(16))
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            code = code * 16 + d;
                        }
                        // Surrogate pairs are not needed by spec files;
                        // reject them rather than mis-decode.
                        let c = char::from_u32(code)
                            .ok_or_else(|| self.err("unsupported \\u escape (surrogate)"))?;
                        s.push(c);
                    }
                    _ => return Err(self.err("bad escape sequence")),
                },
                Some(b) if b < 0x20 => return Err(self.err("control character in string")),
                Some(b) => {
                    // Re-assemble UTF-8 multibyte sequences byte-wise.
                    let start = self.pos - 1;
                    let len = utf8_len(b);
                    let end = start + len;
                    if len == 0 || end > self.bytes.len() {
                        return Err(self.err("invalid UTF-8 in string"));
                    }
                    let chunk = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| self.err("invalid UTF-8 in string"))?;
                    s.push_str(chunk);
                    self.pos = end;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, SpecError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Json::Float)
                .map_err(|_| self.err("invalid number"))
        } else {
            text.parse::<i128>()
                .map(Json::Int)
                .map_err(|_| self.err("invalid integer"))
        }
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        0xf0..=0xf7 => 4,
        _ => 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(Json::parse("true").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse(" 42 ").unwrap(), Json::Int(42));
        assert_eq!(Json::parse("-3").unwrap(), Json::Int(-3));
        assert_eq!(Json::parse("1.5e-3").unwrap(), Json::Float(1.5e-3));
        assert_eq!(Json::parse("\"hi\\n\"").unwrap(), Json::Str("hi\n".into()));
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert!(Json::parse("null").unwrap().as_f64().unwrap().is_nan());
    }

    #[test]
    fn parses_nested_structures() {
        let v = Json::parse(r#"{"a": [1, 2.0, {"b": "c"}], "d": false}"#).unwrap();
        assert_eq!(v.req("a").unwrap().as_array().unwrap().len(), 3);
        assert_eq!(v.get("d"), Some(&Json::Bool(false)));
        assert_eq!(
            v.req("a").unwrap().as_array().unwrap()[2]
                .req("b")
                .unwrap()
                .as_str()
                .unwrap(),
            "c"
        );
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(Json::parse("").is_err());
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("{\"a\" 1}").is_err());
        assert!(Json::parse("1 2").is_err());
        assert!(Json::parse("\"unterminated").is_err());
    }

    #[test]
    fn error_reports_line_and_column() {
        let err = Json::parse("{\n  \"a\": ?\n}").unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("line 2"), "{msg}");
    }

    #[test]
    fn floats_round_trip_exactly() {
        for &x in &[1.4e-3, 0.76, 1.0 / 3.0, f64::MIN_POSITIVE, 1e308, -0.0] {
            let text = Json::Float(x).pretty();
            let back = Json::parse(text.trim()).unwrap();
            match back {
                Json::Float(y) => assert_eq!(x.to_bits(), y.to_bits(), "{x}"),
                other => panic!("expected float, got {other:?}"),
            }
        }
    }

    #[test]
    fn integers_round_trip_exactly() {
        for &x in &[0u64, 1, u64::MAX, 0xEAC9_2006] {
            let text = Json::Int(x as i128).pretty();
            let back = Json::parse(text.trim()).unwrap();
            assert_eq!(back.as_u64().unwrap(), x);
        }
    }

    #[test]
    fn pretty_output_is_stable() {
        let text = r#"{"name": "x", "xs": [1, 2], "empty": {}, "e2": []}"#;
        let v = Json::parse(text).unwrap();
        let p1 = v.pretty();
        let p2 = Json::parse(&p1).unwrap().pretty();
        assert_eq!(p1, p2);
    }

    #[test]
    fn unicode_strings_survive() {
        let v = Json::parse("\"λ ≈ 1.4×10⁻³\"").unwrap();
        assert_eq!(v.as_str().unwrap(), "λ ≈ 1.4×10⁻³");
        let round = Json::parse(v.pretty().trim()).unwrap();
        assert_eq!(round, v);
    }
}
