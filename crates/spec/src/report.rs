//! Serializable result schema: the JSON mirror of [`eacp_sim::Summary`].
//!
//! `spec + seed → identical Summary` is the reproducibility contract: the
//! report embeds the spec that produced it, so a report file is a complete,
//! re-runnable record of an experiment. Execution lives in `eacp-exec`
//! (`eacp_exec::run` produces these reports through the `Job`/`Runner`
//! path).

use crate::error::SpecError;
use crate::json::{FromJson, Json, ToJson};
use crate::model::ExperimentSpec;
use eacp_numerics::OnlineStats;
use eacp_sim::Summary;

/// Which execution tier produced a Monte-Carlo result.
///
/// The closed-form tier answers **replication-invariant** cells: when the
/// fault stream is the same for every replication seed (a deterministic
/// schedule, or Poisson with `λ = 0`) and the policy is deterministic
/// given the execution it observes (every in-repo scheme is), the outcome
/// distribution is a point mass — one simulated replication determines the
/// whole aggregate exactly, so the executor simulates once and absorbs the
/// outcome `N` times instead of running `N` identical simulations. The
/// marker records which tier served a report so consumers can tell an
/// analytic answer from a sampled one.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ServeTier {
    /// Full Monte-Carlo: every replication simulated.
    #[default]
    Mc,
    /// Closed form: one replication simulated, aggregate derived exactly.
    Analytic,
}

impl ServeTier {
    /// The serialized marker (`"mc"` / `"analytic"`).
    pub fn as_str(self) -> &'static str {
        match self {
            ServeTier::Mc => "mc",
            ServeTier::Analytic => "analytic",
        }
    }

    /// Parses the serialized marker.
    ///
    /// # Errors
    ///
    /// Unknown markers are [`SpecError`]s naming the offending value.
    pub fn parse(text: &str) -> Result<Self, SpecError> {
        match text {
            "mc" => Ok(ServeTier::Mc),
            "analytic" => Ok(ServeTier::Analytic),
            other => Err(SpecError::invalid(format!(
                "unknown serve tier {other:?} (expected mc or analytic)"
            ))),
        }
    }
}

impl std::fmt::Display for ServeTier {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Snapshot of one [`OnlineStats`] accumulator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StatsReport {
    /// Number of observations.
    pub count: u64,
    /// Mean (NaN when `count == 0`).
    pub mean: f64,
    /// Population variance (NaN when `count == 0`).
    pub variance: f64,
    /// Minimum observation (NaN when `count == 0`).
    pub min: f64,
    /// Maximum observation (NaN when `count == 0`).
    pub max: f64,
}

impl StatsReport {
    /// Snapshots an accumulator.
    pub fn from_stats(s: &OnlineStats) -> Self {
        Self {
            count: s.count(),
            mean: s.mean(),
            variance: s.population_variance(),
            min: s.min(),
            max: s.max(),
        }
    }
}

impl ToJson for StatsReport {
    fn to_json(&self) -> Json {
        Json::obj([
            ("count", self.count.into()),
            ("mean", self.mean.into()),
            ("variance", self.variance.into()),
            ("min", self.min.into()),
            ("max", self.max.into()),
        ])
    }
}

impl FromJson for StatsReport {
    fn from_json(json: &Json) -> Result<Self, SpecError> {
        Ok(Self {
            count: json.req("count")?.as_u64()?,
            mean: json.req("mean")?.as_f64()?,
            variance: json.req("variance")?.as_f64()?,
            min: json.req("min")?.as_f64()?,
            max: json.req("max")?.as_f64()?,
        })
    }
}

/// Lossless [`OnlineStats`] serialization: the raw accumulator state
/// (`count, mean, m2, min, max`), not the derived variance that
/// [`StatsReport`] renders. Round-trips bit for bit — this is the codec
/// the result store and the remote execution transport both rely on to
/// keep a deserialized [`Summary`] byte-identical to the computed one.
impl ToJson for OnlineStats {
    fn to_json(&self) -> Json {
        let (count, mean, m2, min, max) = self.raw_parts();
        Json::obj([
            ("count", count.into()),
            ("mean", mean.into()),
            ("m2", m2.into()),
            ("min", min.into()),
            ("max", max.into()),
        ])
    }
}

impl FromJson for OnlineStats {
    fn from_json(json: &Json) -> Result<Self, SpecError> {
        Ok(OnlineStats::from_raw_parts(
            json.req("count")?.as_u64()?,
            json.req("mean")?.as_f64()?,
            json.req("m2")?.as_f64()?,
            json.req("min")?.as_f64()?,
            json.req("max")?.as_f64()?,
        ))
    }
}

/// Lossless [`Summary`] serialization via [`OnlineStats`] raw parts —
/// the exact-accumulator dual of the human-facing [`SummaryReport`].
impl ToJson for Summary {
    fn to_json(&self) -> Json {
        Json::obj([
            ("replications", self.replications.into()),
            ("timely", self.timely.into()),
            ("completed", self.completed.into()),
            ("aborted", self.aborted.into()),
            ("anomalies", self.anomalies.into()),
            ("energy_timely", self.energy_timely.to_json()),
            ("energy_all", self.energy_all.to_json()),
            ("finish_timely", self.finish_timely.to_json()),
            ("faults", self.faults.to_json()),
            ("rollbacks", self.rollbacks.to_json()),
            ("checkpoints", self.checkpoints.to_json()),
            ("fast_fraction", self.fast_fraction.to_json()),
        ])
    }
}

impl FromJson for Summary {
    fn from_json(json: &Json) -> Result<Self, SpecError> {
        Ok(Summary {
            replications: json.req("replications")?.as_u64()?,
            timely: json.req("timely")?.as_u64()?,
            completed: json.req("completed")?.as_u64()?,
            aborted: json.req("aborted")?.as_u64()?,
            anomalies: json.req("anomalies")?.as_u64()?,
            energy_timely: OnlineStats::from_json(json.req("energy_timely")?)?,
            energy_all: OnlineStats::from_json(json.req("energy_all")?)?,
            finish_timely: OnlineStats::from_json(json.req("finish_timely")?)?,
            faults: OnlineStats::from_json(json.req("faults")?)?,
            rollbacks: OnlineStats::from_json(json.req("rollbacks")?)?,
            checkpoints: OnlineStats::from_json(json.req("checkpoints")?)?,
            fast_fraction: OnlineStats::from_json(json.req("fast_fraction")?)?,
        })
    }
}

/// The serializable mirror of a Monte-Carlo [`Summary`].
///
/// `p_timely` and the 95% Wilson interval are derived quantities, embedded
/// so report consumers (plots, dashboards, CI gates) need no simulator code.
#[derive(Debug, Clone, PartialEq)]
pub struct SummaryReport {
    /// Total replications.
    pub replications: u64,
    /// Replications completing at or before the deadline.
    pub timely: u64,
    /// Replications completing at all.
    pub completed: u64,
    /// Replications aborted by the policy.
    pub aborted: u64,
    /// Executor anomalies (must be 0 for healthy policies).
    pub anomalies: u64,
    /// The paper's `P`.
    pub p_timely: f64,
    /// 95% Wilson confidence interval on `P`.
    pub p_timely_ci95: (f64, f64),
    /// Energy over timely replications (the paper's `E`; NaN when `P = 0`).
    pub energy_timely: StatsReport,
    /// Energy over all replications.
    pub energy_all: StatsReport,
    /// Completion time over timely replications.
    pub finish_timely: StatsReport,
    /// Faults per replication.
    pub faults: StatsReport,
    /// Rollbacks per replication.
    pub rollbacks: StatsReport,
    /// Checkpoints (all kinds) per replication.
    pub checkpoints: StatsReport,
    /// Fraction of cycles at the fastest speed, per replication.
    pub fast_fraction: StatsReport,
}

impl SummaryReport {
    /// Builds the report from a Monte-Carlo aggregate.
    pub fn from_summary(s: &Summary) -> Self {
        let (lo, hi) = s.p_timely_ci(1.96);
        Self {
            replications: s.replications,
            timely: s.timely,
            completed: s.completed,
            aborted: s.aborted,
            anomalies: s.anomalies,
            p_timely: s.p_timely(),
            p_timely_ci95: (lo, hi),
            energy_timely: StatsReport::from_stats(&s.energy_timely),
            energy_all: StatsReport::from_stats(&s.energy_all),
            finish_timely: StatsReport::from_stats(&s.finish_timely),
            faults: StatsReport::from_stats(&s.faults),
            rollbacks: StatsReport::from_stats(&s.rollbacks),
            checkpoints: StatsReport::from_stats(&s.checkpoints),
            fast_fraction: StatsReport::from_stats(&s.fast_fraction),
        }
    }
}

impl ToJson for SummaryReport {
    fn to_json(&self) -> Json {
        Json::obj([
            ("replications", self.replications.into()),
            ("timely", self.timely.into()),
            ("completed", self.completed.into()),
            ("aborted", self.aborted.into()),
            ("anomalies", self.anomalies.into()),
            ("p_timely", self.p_timely.into()),
            (
                "p_timely_ci95",
                Json::Array(vec![
                    self.p_timely_ci95.0.into(),
                    self.p_timely_ci95.1.into(),
                ]),
            ),
            ("energy_timely", self.energy_timely.to_json()),
            ("energy_all", self.energy_all.to_json()),
            ("finish_timely", self.finish_timely.to_json()),
            ("faults", self.faults.to_json()),
            ("rollbacks", self.rollbacks.to_json()),
            ("checkpoints", self.checkpoints.to_json()),
            ("fast_fraction", self.fast_fraction.to_json()),
        ])
    }
}

impl FromJson for SummaryReport {
    fn from_json(json: &Json) -> Result<Self, SpecError> {
        let ci = json.req("p_timely_ci95")?.as_array()?;
        if ci.len() != 2 {
            return Err(SpecError::invalid("p_timely_ci95 must be a [lo, hi] pair"));
        }
        Ok(Self {
            replications: json.req("replications")?.as_u64()?,
            timely: json.req("timely")?.as_u64()?,
            completed: json.req("completed")?.as_u64()?,
            aborted: json.req("aborted")?.as_u64()?,
            anomalies: json.req("anomalies")?.as_u64()?,
            p_timely: json.req("p_timely")?.as_f64()?,
            p_timely_ci95: (ci[0].as_f64()?, ci[1].as_f64()?),
            energy_timely: StatsReport::from_json(json.req("energy_timely")?)?,
            energy_all: StatsReport::from_json(json.req("energy_all")?)?,
            finish_timely: StatsReport::from_json(json.req("finish_timely")?)?,
            faults: StatsReport::from_json(json.req("faults")?)?,
            rollbacks: StatsReport::from_json(json.req("rollbacks")?)?,
            checkpoints: StatsReport::from_json(json.req("checkpoints")?)?,
            fast_fraction: StatsReport::from_json(json.req("fast_fraction")?)?,
        })
    }
}

/// The result of running one [`ExperimentSpec`].
#[derive(Debug, Clone)]
pub struct RunReport {
    /// The spec that produced this result (embedded for provenance).
    pub spec: ExperimentSpec,
    /// The `Policy::name()` of the scheme that ran.
    pub policy_name: String,
    /// The serializable aggregate.
    pub summary: SummaryReport,
    /// Which execution tier produced the summary ([`ServeTier::Mc`] unless
    /// the closed-form tier answered a replication-invariant cell).
    /// Serialized only when analytic, so Monte-Carlo report documents keep
    /// their historical bytes.
    pub served: ServeTier,
    /// Where this report was loaded from (`None` for freshly computed
    /// reports). Never serialized — pure diagnostics provenance, so merge
    /// and store-verification failures can name the offending artifact.
    pub source: Option<std::path::PathBuf>,
}

// `source` is where the report came *from*, not part of what it *says*:
// a loaded report must compare equal to the in-memory recomputation it
// claims to record, so equality covers only the serialized fields.
impl PartialEq for RunReport {
    fn eq(&self, other: &Self) -> bool {
        self.spec == other.spec
            && self.policy_name == other.policy_name
            && self.summary == other.summary
            && self.served == other.served
    }
}

impl RunReport {
    /// Reads one report document, recording `path` as its
    /// [`RunReport::source`].
    ///
    /// # Errors
    ///
    /// Unreadable files, malformed JSON and schema mismatches all carry
    /// the offending path.
    pub fn load(path: &std::path::Path) -> Result<Self, SpecError> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| SpecError::Io(format!("{}: {e}", path.display())))?;
        let json = Json::parse(&text)
            .map_err(|e| SpecError::invalid(format!("{}: {e}", path.display())))?;
        let mut report = Self::from_json(&json).map_err(|e| {
            SpecError::invalid(format!("{}: invalid run report: {e}", path.display()))
        })?;
        report.source = Some(path.to_path_buf());
        Ok(report)
    }
}

impl ToJson for RunReport {
    fn to_json(&self) -> Json {
        let mut fields: Vec<(&'static str, Json)> = vec![
            ("spec", self.spec.to_json()),
            ("policy", self.policy_name.as_str().into()),
        ];
        // Emitted only for analytic results: Monte-Carlo documents keep
        // their historical bytes (and store cells their addresses).
        if self.served != ServeTier::Mc {
            fields.push(("served", self.served.as_str().into()));
        }
        fields.push(("summary", self.summary.to_json()));
        Json::obj(fields)
    }
}

impl FromJson for RunReport {
    fn from_json(json: &Json) -> Result<Self, SpecError> {
        Ok(Self {
            spec: ExperimentSpec::from_json(json.req("spec")?)?,
            policy_name: json.req("policy")?.as_str()?.to_owned(),
            summary: SummaryReport::from_json(json.req("summary")?)?,
            served: match json.get("served") {
                None => ServeTier::Mc,
                Some(s) => ServeTier::parse(s.as_str()?)?,
            },
            source: None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::McSpec;
    use eacp_sim::{replication_seed, Executor};

    /// Sequential spec execution on the engine API — this crate describes
    /// experiments and cannot depend on `eacp-exec` (which depends on it),
    /// so the report tests drive the engine directly under the same
    /// per-replication seeding contract.
    fn run_for_test(spec: &ExperimentSpec) -> RunReport {
        let scenario = spec.scenario.build().unwrap();
        let options = spec.executor.build().unwrap();
        let executor = Executor::new(&scenario).with_options(options);
        let mut summary = Summary::empty();
        for rep in 0..spec.mc.replications {
            let seed = replication_seed(spec.mc.seed, rep);
            let mut policy = spec.policy.build().unwrap();
            let mut faults = spec.faults.build(seed).unwrap();
            summary.absorb(&executor.run(&mut policy, &mut faults));
        }
        RunReport {
            spec: spec.clone(),
            policy_name: spec.policy.policy_name().to_owned(),
            summary: SummaryReport::from_summary(&summary),
            served: ServeTier::Mc,
            source: None,
        }
    }

    fn small_spec() -> ExperimentSpec {
        let mut spec = ExperimentSpec::paper_nominal();
        spec.mc = McSpec {
            replications: 120,
            seed: 9,
            threads: 0,
        };
        spec
    }

    #[test]
    fn report_mirrors_the_summary() {
        let spec = small_spec();
        let report = run_for_test(&spec);
        assert_eq!(report.summary.replications, 120);
        assert_eq!(report.policy_name, "A_D_S");
        assert_eq!(report.spec, spec);
        assert_eq!(report.summary.anomalies, 0);
        let (lo, hi) = report.summary.p_timely_ci95;
        assert!(lo <= report.summary.p_timely && report.summary.p_timely <= hi);
    }

    #[test]
    fn summary_report_round_trips_through_json() {
        let report = run_for_test(&small_spec());
        let json = report.summary.to_json();
        let back = SummaryReport::from_json(&Json::parse(&json.pretty()).unwrap()).unwrap();
        // NaN fields (empty stats) compare unequal; compare via JSON text,
        // which canonicalizes NaN to null.
        assert_eq!(json.pretty(), back.to_json().pretty());
        assert_eq!(report.summary.timely, back.timely);
    }

    #[test]
    fn run_report_round_trips_through_json() {
        let report = run_for_test(&small_spec());
        let text = report.to_json().pretty();
        let back = RunReport::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back.spec, report.spec);
        assert_eq!(back.policy_name, report.policy_name);
        // NaN-bearing stats compare via canonical JSON text.
        assert_eq!(back.to_json().pretty(), text);
    }

    #[test]
    fn load_records_the_source_path_without_affecting_equality() {
        let report = run_for_test(&small_spec());
        let dir = std::env::temp_dir().join(format!("eacp-spec-report-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("report.json");
        std::fs::write(&path, report.to_json().pretty()).unwrap();

        let loaded = RunReport::load(&path).unwrap();
        assert_eq!(loaded.source.as_deref(), Some(path.as_path()));
        // Provenance is diagnostics-only: the loaded report still equals
        // the in-memory one, and serializes to the same bytes.
        assert_eq!(loaded, report);
        assert_eq!(loaded.to_json().pretty(), report.to_json().pretty());

        let err = RunReport::load(&dir.join("absent.json")).unwrap_err();
        assert!(err.to_string().contains("absent.json"), "{err}");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
