//! The spec types: one serializable description per simulation concept.
//!
//! Every type here is plain data with a `build()` method that turns it into
//! the corresponding runtime object (`Scenario`, [`PolicyKind`],
//! [`FaultKind`], `MonteCarlo`, `ExecutorOptions`). Building validates:
//! all the panicking invariants of the runtime constructors are checked up
//! front and reported as [`SpecError`]s instead. Policies and fault
//! processes build as concrete enums — the monomorphized hot path — and
//! can be boxed into `dyn Policy` / `dyn FaultProcess` where the open
//! trait-object path is needed.

use crate::error::SpecError;
use crate::json::{FromJson, Json, ToJson};
use eacp_core::analysis::OptimizeMethod;
use eacp_core::policies::{Adaptive, KFaultTolerant, PoissonArrival, PolicyKind};
use eacp_energy::{DvsConfig, SpeedLevel};
use eacp_faults::{
    BurstProcess, DeterministicFaults, FaultKind, PhasedPoisson, PoissonProcess, WeibullRenewal,
};
use eacp_sim::{CheckpointCosts, ExecutorOptions, MonteCarlo, Scenario, TaskSpec};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn finite_pos(v: f64, what: &str) -> Result<f64, SpecError> {
    if v > 0.0 && v.is_finite() {
        Ok(v)
    } else {
        Err(SpecError::invalid(format!(
            "{what} must be positive and finite, got {v}"
        )))
    }
}

fn finite_nonneg(v: f64, what: &str) -> Result<f64, SpecError> {
    if v >= 0.0 && v.is_finite() {
        Ok(v)
    } else {
        Err(SpecError::invalid(format!(
            "{what} must be non-negative and finite, got {v}"
        )))
    }
}

/// How the task's work volume is specified.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum WorkSpec {
    /// The paper's parameterization: `N = U · f · D`.
    Utilization {
        /// Utilization `U` quoted at `speed`.
        utilization: f64,
        /// The speed the utilization is quoted at (1 for Tables 1/3,
        /// 2 for Tables 2/4).
        speed: f64,
        /// Relative deadline `D`.
        deadline: f64,
    },
    /// Direct cycle count.
    Cycles {
        /// Work `N` in cycles at the minimum speed.
        work_cycles: f64,
        /// Relative deadline `D`.
        deadline: f64,
    },
}

impl WorkSpec {
    /// Builds the [`TaskSpec`].
    pub fn build(&self) -> Result<TaskSpec, SpecError> {
        match *self {
            WorkSpec::Utilization {
                utilization,
                speed,
                deadline,
            } => {
                finite_pos(utilization, "utilization")?;
                finite_pos(speed, "utilization speed")?;
                finite_pos(deadline, "deadline")?;
                Ok(TaskSpec::from_utilization(utilization, speed, deadline))
            }
            WorkSpec::Cycles {
                work_cycles,
                deadline,
            } => {
                finite_pos(work_cycles, "work_cycles")?;
                finite_pos(deadline, "deadline")?;
                Ok(TaskSpec::new(work_cycles, deadline))
            }
        }
    }

    /// The relative deadline `D`.
    pub fn deadline(&self) -> f64 {
        match *self {
            WorkSpec::Utilization { deadline, .. } | WorkSpec::Cycles { deadline, .. } => deadline,
        }
    }
}

impl ToJson for WorkSpec {
    fn to_json(&self) -> Json {
        match *self {
            WorkSpec::Utilization {
                utilization,
                speed,
                deadline,
            } => Json::obj([
                ("kind", "utilization".into()),
                ("utilization", utilization.into()),
                ("speed", speed.into()),
                ("deadline", deadline.into()),
            ]),
            WorkSpec::Cycles {
                work_cycles,
                deadline,
            } => Json::obj([
                ("kind", "cycles".into()),
                ("work_cycles", work_cycles.into()),
                ("deadline", deadline.into()),
            ]),
        }
    }
}

impl FromJson for WorkSpec {
    fn from_json(json: &Json) -> Result<Self, SpecError> {
        match json.req("kind")?.as_str()? {
            "utilization" => Ok(WorkSpec::Utilization {
                utilization: json.req("utilization")?.as_f64()?,
                speed: json.get("speed").map_or(Ok(1.0), Json::as_f64)?,
                deadline: json.req("deadline")?.as_f64()?,
            }),
            "cycles" => Ok(WorkSpec::Cycles {
                work_cycles: json.req("work_cycles")?.as_f64()?,
                deadline: json.req("deadline")?.as_f64()?,
            }),
            other => Err(SpecError::unknown_kind(
                "work",
                other,
                "utilization, cycles",
            )),
        }
    }
}

/// Checkpoint operation costs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CostsSpec {
    /// The paper's SCP experiment costs (`ts = 2, tcp = 20, tr = 0`).
    PaperScp,
    /// The paper's CCP experiment costs (`ts = 20, tcp = 2, tr = 0`).
    PaperCcp,
    /// Explicit cycle costs.
    Explicit {
        /// `ts`: store cost in cycles.
        store: f64,
        /// `tcp`: compare cost in cycles.
        compare: f64,
        /// `tr`: rollback cost in cycles.
        rollback: f64,
    },
}

impl CostsSpec {
    /// Builds the [`CheckpointCosts`].
    pub fn build(&self) -> Result<CheckpointCosts, SpecError> {
        match *self {
            CostsSpec::PaperScp => Ok(CheckpointCosts::paper_scp_variant()),
            CostsSpec::PaperCcp => Ok(CheckpointCosts::paper_ccp_variant()),
            CostsSpec::Explicit {
                store,
                compare,
                rollback,
            } => {
                finite_nonneg(store, "store cost")?;
                finite_nonneg(compare, "compare cost")?;
                finite_nonneg(rollback, "rollback cost")?;
                if store + compare <= 0.0 {
                    return Err(SpecError::invalid(
                        "store + compare costs must be positive (a free CSCP allows \
                         zero-progress scheduling loops)",
                    ));
                }
                Ok(CheckpointCosts::new(store, compare, rollback))
            }
        }
    }

    /// Spec for an existing cost model (used when deriving specs from
    /// legacy `TableConfig` values).
    pub fn from_costs(costs: &CheckpointCosts) -> CostsSpec {
        let scp = CheckpointCosts::paper_scp_variant();
        let ccp = CheckpointCosts::paper_ccp_variant();
        if *costs == scp {
            CostsSpec::PaperScp
        } else if *costs == ccp {
            CostsSpec::PaperCcp
        } else {
            CostsSpec::Explicit {
                store: costs.store_cycles,
                compare: costs.compare_cycles,
                rollback: costs.rollback_cycles,
            }
        }
    }
}

impl ToJson for CostsSpec {
    fn to_json(&self) -> Json {
        match *self {
            CostsSpec::PaperScp => Json::obj([("kind", "paper-scp".into())]),
            CostsSpec::PaperCcp => Json::obj([("kind", "paper-ccp".into())]),
            CostsSpec::Explicit {
                store,
                compare,
                rollback,
            } => Json::obj([
                ("kind", "explicit".into()),
                ("store", store.into()),
                ("compare", compare.into()),
                ("rollback", rollback.into()),
            ]),
        }
    }
}

impl FromJson for CostsSpec {
    fn from_json(json: &Json) -> Result<Self, SpecError> {
        match json.req("kind")?.as_str()? {
            "paper-scp" => Ok(CostsSpec::PaperScp),
            "paper-ccp" => Ok(CostsSpec::PaperCcp),
            "explicit" => Ok(CostsSpec::Explicit {
                store: json.req("store")?.as_f64()?,
                compare: json.req("compare")?.as_f64()?,
                rollback: json.get("rollback").map_or(Ok(0.0), Json::as_f64)?,
            }),
            other => Err(SpecError::unknown_kind(
                "costs",
                other,
                "paper-scp, paper-ccp, explicit",
            )),
        }
    }
}

/// DVS speed-level table.
#[derive(Debug, Clone, PartialEq)]
pub enum DvsSpec {
    /// The paper-calibrated two-speed table (`f1 = 1, V1 = √2; f2 = 2, V2 = 2`).
    PaperDefault,
    /// Two speeds `f2 = 2·f1` with explicit voltages.
    TwoSpeed {
        /// Voltage at `f1`.
        v1: f64,
        /// Voltage at `f2`.
        v2: f64,
    },
    /// Fully explicit level table.
    Levels {
        /// `(frequency, voltage)` pairs, ascending in frequency.
        levels: Vec<(f64, f64)>,
    },
}

impl DvsSpec {
    /// Builds the [`DvsConfig`].
    pub fn build(&self) -> Result<DvsConfig, SpecError> {
        match self {
            DvsSpec::PaperDefault => Ok(DvsConfig::paper_default()),
            DvsSpec::TwoSpeed { v1, v2 } => {
                finite_pos(*v1, "v1")?;
                finite_pos(*v2, "v2")?;
                Ok(DvsConfig::two_speed(*v1, *v2))
            }
            DvsSpec::Levels { levels } => {
                if levels.is_empty() {
                    return Err(SpecError::invalid("DVS level table must not be empty"));
                }
                let mut built = Vec::with_capacity(levels.len());
                for &(f, v) in levels {
                    finite_pos(f, "level frequency")?;
                    finite_pos(v, "level voltage")?;
                    built.push(SpeedLevel::new(f, v));
                }
                if !built.windows(2).all(|w| w[0].frequency < w[1].frequency) {
                    return Err(SpecError::invalid(
                        "DVS levels must be strictly ascending in frequency",
                    ));
                }
                Ok(DvsConfig::new(built))
            }
        }
    }
}

impl ToJson for DvsSpec {
    fn to_json(&self) -> Json {
        match self {
            DvsSpec::PaperDefault => Json::obj([("kind", "paper-default".into())]),
            DvsSpec::TwoSpeed { v1, v2 } => Json::obj([
                ("kind", "two-speed".into()),
                ("v1", (*v1).into()),
                ("v2", (*v2).into()),
            ]),
            DvsSpec::Levels { levels } => Json::obj([
                ("kind", "levels".into()),
                (
                    "levels",
                    Json::Array(
                        levels
                            .iter()
                            .map(|&(f, v)| {
                                Json::obj([("frequency", f.into()), ("voltage", v.into())])
                            })
                            .collect(),
                    ),
                ),
            ]),
        }
    }
}

impl FromJson for DvsSpec {
    fn from_json(json: &Json) -> Result<Self, SpecError> {
        match json.req("kind")?.as_str()? {
            "paper-default" => Ok(DvsSpec::PaperDefault),
            "two-speed" => Ok(DvsSpec::TwoSpeed {
                v1: json.req("v1")?.as_f64()?,
                v2: json.req("v2")?.as_f64()?,
            }),
            "levels" => {
                let mut levels = Vec::new();
                for item in json.req("levels")?.as_array()? {
                    levels.push((
                        item.req("frequency")?.as_f64()?,
                        item.req("voltage")?.as_f64()?,
                    ));
                }
                Ok(DvsSpec::Levels { levels })
            }
            other => Err(SpecError::unknown_kind(
                "dvs",
                other,
                "paper-default, two-speed, levels",
            )),
        }
    }
}

/// A full scenario: task, costs, DVS table and redundancy degree.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioSpec {
    /// Task work volume and deadline.
    pub work: WorkSpec,
    /// Checkpoint costs.
    pub costs: CostsSpec,
    /// DVS table.
    pub dvs: DvsSpec,
    /// Redundant processors charged for energy (2 = DMR).
    pub processors: u32,
}

impl ScenarioSpec {
    /// The paper's nominal SCP scenario (`U = 0.76, D = 10000`).
    pub fn paper_nominal() -> Self {
        Self {
            work: WorkSpec::Utilization {
                utilization: 0.76,
                speed: 1.0,
                deadline: 10_000.0,
            },
            costs: CostsSpec::PaperScp,
            dvs: DvsSpec::PaperDefault,
            processors: 2,
        }
    }

    /// Builds the runtime [`Scenario`].
    pub fn build(&self) -> Result<Scenario, SpecError> {
        if self.processors == 0 {
            return Err(SpecError::invalid("at least one processor is required"));
        }
        Ok(
            Scenario::new(self.work.build()?, self.costs.build()?, self.dvs.build()?)
                .with_processors(self.processors),
        )
    }
}

impl ToJson for ScenarioSpec {
    fn to_json(&self) -> Json {
        Json::obj([
            ("work", self.work.to_json()),
            ("costs", self.costs.to_json()),
            ("dvs", self.dvs.to_json()),
            ("processors", self.processors.into()),
        ])
    }
}

impl FromJson for ScenarioSpec {
    fn from_json(json: &Json) -> Result<Self, SpecError> {
        Ok(Self {
            work: WorkSpec::from_json(json.req("work")?)?,
            costs: json
                .get("costs")
                .map_or(Ok(CostsSpec::PaperScp), CostsSpec::from_json)?,
            dvs: json
                .get("dvs")
                .map_or(Ok(DvsSpec::PaperDefault), DvsSpec::from_json)?,
            processors: json.get("processors").map_or(Ok(2), Json::as_u32)?,
        })
    }
}

/// Transient-fault arrival process.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultSpec {
    /// Homogeneous Poisson arrivals — the paper's model.
    Poisson {
        /// Arrival rate `λ`.
        lambda: f64,
    },
    /// A fixed schedule of fault instants (deterministic tests).
    Deterministic {
        /// Absolute fault times.
        times: Vec<f64>,
    },
    /// Weibull renewal process (bursty for `shape < 1`).
    Weibull {
        /// Shape parameter.
        shape: f64,
        /// Scale parameter.
        scale: f64,
    },
    /// Two-state Markov-modulated Poisson process (radiation bursts).
    Burst {
        /// Fault rate in the quiet state.
        quiet_rate: f64,
        /// Fault rate in the burst state.
        burst_rate: f64,
        /// Mean dwell time in the quiet state.
        mean_quiet_dwell: f64,
        /// Mean dwell time in the burst state.
        mean_burst_dwell: f64,
    },
    /// Piecewise-constant rate profile (mission phases).
    Phased {
        /// `(duration, rate)` phases.
        phases: Vec<(f64, f64)>,
        /// Whether the profile cycles forever.
        repeat: bool,
    },
}

impl FaultSpec {
    /// Builds the fault process for one replication seed, as the concrete
    /// [`FaultKind`] enum (no heap allocation, no virtual dispatch).
    ///
    /// The same `(spec, seed)` pair always yields an identical stream —
    /// this is the reproducibility contract every experiment relies on.
    /// Replication loops build once per block and re-seed the instance via
    /// [`FaultKind::reset`], which yields the same stream as rebuilding.
    /// Box the result for the open `dyn FaultProcess` escape hatch.
    pub fn build(&self, seed: u64) -> Result<FaultKind, SpecError> {
        let rng = StdRng::seed_from_u64(seed);
        match self {
            FaultSpec::Poisson { lambda } => {
                if lambda.is_nan() {
                    return Err(SpecError::invalid("fault rate must not be NaN"));
                }
                Ok(FaultKind::Poisson(PoissonProcess::new(*lambda, rng)))
            }
            FaultSpec::Deterministic { times } => {
                if times.iter().any(|t| !t.is_finite() || *t < 0.0) {
                    return Err(SpecError::invalid(
                        "deterministic fault instants must be finite and non-negative",
                    ));
                }
                Ok(FaultKind::Deterministic(DeterministicFaults::new(
                    times.clone(),
                )))
            }
            FaultSpec::Weibull { shape, scale } => {
                finite_pos(*shape, "Weibull shape")?;
                finite_pos(*scale, "Weibull scale")?;
                Ok(FaultKind::Weibull(WeibullRenewal::new(*shape, *scale, rng)))
            }
            FaultSpec::Burst {
                quiet_rate,
                burst_rate,
                mean_quiet_dwell,
                mean_burst_dwell,
            } => {
                finite_nonneg(*quiet_rate, "quiet rate")?;
                finite_pos(*burst_rate, "burst rate")?;
                finite_pos(*mean_quiet_dwell, "quiet dwell")?;
                finite_pos(*mean_burst_dwell, "burst dwell")?;
                Ok(FaultKind::Burst(BurstProcess::new(
                    *quiet_rate,
                    *burst_rate,
                    *mean_quiet_dwell,
                    *mean_burst_dwell,
                    rng,
                )))
            }
            FaultSpec::Phased { phases, repeat } => {
                if phases.is_empty() {
                    return Err(SpecError::invalid("at least one phase is required"));
                }
                for &(d, r) in phases {
                    finite_pos(d, "phase duration")?;
                    finite_nonneg(r, "phase rate")?;
                }
                Ok(FaultKind::Phased(PhasedPoisson::new(
                    phases.clone(),
                    *repeat,
                    rng,
                )))
            }
        }
    }

    /// The nominal rate `λ` when the process has one (used by sweeps).
    pub fn nominal_lambda(&self) -> Option<f64> {
        match self {
            FaultSpec::Poisson { lambda } => Some(*lambda),
            _ => None,
        }
    }
}

impl ToJson for FaultSpec {
    fn to_json(&self) -> Json {
        match self {
            FaultSpec::Poisson { lambda } => {
                Json::obj([("kind", "poisson".into()), ("lambda", (*lambda).into())])
            }
            FaultSpec::Deterministic { times } => Json::obj([
                ("kind", "deterministic".into()),
                (
                    "times",
                    Json::Array(times.iter().map(|&t| t.into()).collect()),
                ),
            ]),
            FaultSpec::Weibull { shape, scale } => Json::obj([
                ("kind", "weibull".into()),
                ("shape", (*shape).into()),
                ("scale", (*scale).into()),
            ]),
            FaultSpec::Burst {
                quiet_rate,
                burst_rate,
                mean_quiet_dwell,
                mean_burst_dwell,
            } => Json::obj([
                ("kind", "burst".into()),
                ("quiet_rate", (*quiet_rate).into()),
                ("burst_rate", (*burst_rate).into()),
                ("mean_quiet_dwell", (*mean_quiet_dwell).into()),
                ("mean_burst_dwell", (*mean_burst_dwell).into()),
            ]),
            FaultSpec::Phased { phases, repeat } => Json::obj([
                ("kind", "phased".into()),
                (
                    "phases",
                    Json::Array(
                        phases
                            .iter()
                            .map(|&(d, r)| Json::Array(vec![d.into(), r.into()]))
                            .collect(),
                    ),
                ),
                ("repeat", (*repeat).into()),
            ]),
        }
    }
}

impl FromJson for FaultSpec {
    fn from_json(json: &Json) -> Result<Self, SpecError> {
        match json.req("kind")?.as_str()? {
            "poisson" => Ok(FaultSpec::Poisson {
                lambda: json.req("lambda")?.as_f64()?,
            }),
            "deterministic" => {
                let times = json
                    .req("times")?
                    .as_array()?
                    .iter()
                    .map(Json::as_f64)
                    .collect::<Result<Vec<_>, _>>()?;
                Ok(FaultSpec::Deterministic { times })
            }
            "weibull" => Ok(FaultSpec::Weibull {
                shape: json.req("shape")?.as_f64()?,
                scale: json.req("scale")?.as_f64()?,
            }),
            "burst" => Ok(FaultSpec::Burst {
                quiet_rate: json.req("quiet_rate")?.as_f64()?,
                burst_rate: json.req("burst_rate")?.as_f64()?,
                mean_quiet_dwell: json.req("mean_quiet_dwell")?.as_f64()?,
                mean_burst_dwell: json.req("mean_burst_dwell")?.as_f64()?,
            }),
            "phased" => {
                let mut phases = Vec::new();
                for item in json.req("phases")?.as_array()? {
                    let pair = item.as_array()?;
                    if pair.len() != 2 {
                        return Err(SpecError::invalid(
                            "each phase must be a [duration, rate] pair",
                        ));
                    }
                    phases.push((pair[0].as_f64()?, pair[1].as_f64()?));
                }
                Ok(FaultSpec::Phased {
                    phases,
                    repeat: json.get("repeat").map_or(Ok(false), Json::as_bool)?,
                })
            }
            other => Err(SpecError::unknown_kind(
                "faults",
                other,
                "poisson, deterministic, weibull, burst, phased",
            )),
        }
    }
}

/// How adaptive policies optimize the sub-checkpoint count.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OptimizerSpec {
    /// The paper's Fig. 2 closed-form procedure (default).
    #[default]
    PaperClosedForm,
    /// Direct integer search over the exact recursion (ablation).
    ExactRecursion,
}

impl OptimizerSpec {
    fn build(self) -> OptimizeMethod {
        match self {
            OptimizerSpec::PaperClosedForm => OptimizeMethod::PaperClosedForm,
            OptimizerSpec::ExactRecursion => OptimizeMethod::ExactRecursion,
        }
    }

    fn tag(self) -> &'static str {
        match self {
            OptimizerSpec::PaperClosedForm => "paper-closed-form",
            OptimizerSpec::ExactRecursion => "exact-recursion",
        }
    }

    fn from_tag(tag: &str) -> Result<Self, SpecError> {
        match tag {
            "paper-closed-form" => Ok(OptimizerSpec::PaperClosedForm),
            "exact-recursion" => Ok(OptimizerSpec::ExactRecursion),
            other => Err(SpecError::unknown_kind(
                "optimizer",
                other,
                "paper-closed-form, exact-recursion",
            )),
        }
    }
}

/// One of the eight checkpointing schemes in `eacp_core::policies`.
///
/// | Tag | Paper name | Policy `name()` |
/// |---|---|---|
/// | `poisson` | Poisson-arrival baseline | `Poisson` |
/// | `kft` | k-fault-tolerant baseline | `k-f-t` |
/// | `a_d` | ADT_DVS (DATE'03) | `A_D` |
/// | `a_d_s` | `adapchp_dvs_SCP` (Fig. 6) | `A_D_S` |
/// | `a_d_c` | `adapchp_dvs_CCP` (Fig. 7) | `A_D_C` |
/// | `a_s` | `adapchp-SCP` (Fig. 3) | `A_S` |
/// | `a_c` | `adapchp-CCP` | `A_C` |
/// | `cscp` | ADT without DVS (ablation) | `A` |
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PolicySpec {
    /// Static `sqrt(2C/λ)` CSCP interval at a fixed speed.
    Poisson {
        /// Assumed fault rate `λ`.
        lambda: f64,
        /// DVS level index the scheme is pinned to.
        speed: usize,
    },
    /// Static `sqrt(NC/k)` CSCP interval at a fixed speed.
    KFaultTolerant {
        /// Fault-tolerance target `k`.
        k: u32,
        /// DVS level index the scheme is pinned to.
        speed: usize,
    },
    /// `A_D`: adaptive CSCP with DVS, no subdivision.
    AdtDvs {
        /// Assumed fault rate `λ`.
        lambda: f64,
        /// Fault-tolerance target `k`.
        k: u32,
        /// Sub-checkpoint count optimizer.
        optimizer: OptimizerSpec,
    },
    /// `A_D_S`: adaptive CSCP + SCP subdivision with DVS (the proposal).
    DvsScp {
        /// Assumed fault rate `λ`.
        lambda: f64,
        /// Fault-tolerance target `k`.
        k: u32,
        /// Sub-checkpoint count optimizer.
        optimizer: OptimizerSpec,
    },
    /// `A_D_C`: adaptive CSCP + CCP subdivision with DVS (the proposal).
    DvsCcp {
        /// Assumed fault rate `λ`.
        lambda: f64,
        /// Fault-tolerance target `k`.
        k: u32,
        /// Sub-checkpoint count optimizer.
        optimizer: OptimizerSpec,
    },
    /// `A_S`: adaptive SCP subdivision at a fixed speed.
    Scp {
        /// Assumed fault rate `λ`.
        lambda: f64,
        /// Fault-tolerance target `k`.
        k: u32,
        /// Fixed DVS level index.
        speed: usize,
        /// Sub-checkpoint count optimizer.
        optimizer: OptimizerSpec,
    },
    /// `A_C`: adaptive CCP subdivision at a fixed speed.
    Ccp {
        /// Assumed fault rate `λ`.
        lambda: f64,
        /// Fault-tolerance target `k`.
        k: u32,
        /// Fixed DVS level index.
        speed: usize,
        /// Sub-checkpoint count optimizer.
        optimizer: OptimizerSpec,
    },
    /// `A`: adaptive CSCP interval at a fixed speed (ADT without DVS).
    Cscp {
        /// Assumed fault rate `λ`.
        lambda: f64,
        /// Fault-tolerance target `k`.
        k: u32,
        /// Fixed DVS level index.
        speed: usize,
    },
}

impl PolicySpec {
    /// All eight scheme tags, in the order of the module table.
    pub const TAGS: [&'static str; 8] = [
        "poisson", "kft", "a_d", "a_d_s", "a_d_c", "a_s", "a_c", "cscp",
    ];

    /// The spec's tag (`a_d_s`, ...).
    pub fn tag(&self) -> &'static str {
        match self {
            PolicySpec::Poisson { .. } => "poisson",
            PolicySpec::KFaultTolerant { .. } => "kft",
            PolicySpec::AdtDvs { .. } => "a_d",
            PolicySpec::DvsScp { .. } => "a_d_s",
            PolicySpec::DvsCcp { .. } => "a_d_c",
            PolicySpec::Scp { .. } => "a_s",
            PolicySpec::Ccp { .. } => "a_c",
            PolicySpec::Cscp { .. } => "cscp",
        }
    }

    /// The `Policy::name()` the built policy will report.
    pub fn policy_name(&self) -> &'static str {
        match self {
            PolicySpec::Poisson { .. } => "Poisson",
            PolicySpec::KFaultTolerant { .. } => "k-f-t",
            PolicySpec::AdtDvs { .. } => "A_D",
            PolicySpec::DvsScp { .. } => "A_D_S",
            PolicySpec::DvsCcp { .. } => "A_D_C",
            PolicySpec::Scp { .. } => "A_S",
            PolicySpec::Ccp { .. } => "A_C",
            PolicySpec::Cscp { .. } => "A",
        }
    }

    /// Constructs the spec for a scheme tag with shared parameters — the
    /// desugaring used by CLI flags (`--scheme a_d_s --lambda ... --k ...`).
    pub fn from_tag(tag: &str, lambda: f64, k: u32, speed: usize) -> Result<Self, SpecError> {
        let optimizer = OptimizerSpec::default();
        Ok(match tag {
            "poisson" => PolicySpec::Poisson { lambda, speed },
            "kft" => PolicySpec::KFaultTolerant { k, speed },
            "a_d" => PolicySpec::AdtDvs {
                lambda,
                k,
                optimizer,
            },
            "a_d_s" => PolicySpec::DvsScp {
                lambda,
                k,
                optimizer,
            },
            "a_d_c" => PolicySpec::DvsCcp {
                lambda,
                k,
                optimizer,
            },
            "a_s" => PolicySpec::Scp {
                lambda,
                k,
                speed,
                optimizer,
            },
            "a_c" => PolicySpec::Ccp {
                lambda,
                k,
                speed,
                optimizer,
            },
            "cscp" => PolicySpec::Cscp { lambda, k, speed },
            other => {
                return Err(SpecError::unknown_kind(
                    "policy",
                    other,
                    "poisson, kft, a_d, a_d_s, a_d_c, a_s, a_c, cscp",
                ))
            }
        })
    }

    /// Builds a fresh policy instance, as the concrete [`PolicyKind`]
    /// enum (no heap allocation, no virtual dispatch).
    ///
    /// Policies are stateful across one run. Monte-Carlo drivers build
    /// one instance per block and restore it per replication via
    /// [`PolicyKind::reset`], which is equivalent to building fresh. Box
    /// the result for the open `dyn Policy` escape hatch.
    pub fn build(&self) -> Result<PolicyKind, SpecError> {
        let check_lambda = |l: f64| -> Result<f64, SpecError> {
            if l >= 0.0 && !l.is_nan() {
                Ok(l)
            } else {
                Err(SpecError::invalid(format!(
                    "policy lambda must be non-negative, got {l}"
                )))
            }
        };
        Ok(match *self {
            PolicySpec::Poisson { lambda, speed } => {
                if check_lambda(lambda)? <= 0.0 {
                    return Err(SpecError::invalid(
                        "the Poisson baseline needs a positive lambda (its interval is sqrt(2C/λ))",
                    ));
                }
                PolicyKind::Poisson(PoissonArrival::new(lambda, speed))
            }
            PolicySpec::KFaultTolerant { k, speed } => {
                if k == 0 {
                    return Err(SpecError::invalid("k-fault-tolerant requires k >= 1"));
                }
                PolicyKind::KFaultTolerant(KFaultTolerant::new(k, speed))
            }
            PolicySpec::AdtDvs {
                lambda,
                k,
                optimizer,
            } => PolicyKind::Adaptive(
                Adaptive::adt_dvs(check_lambda(lambda)?, k).with_optimizer(optimizer.build()),
            ),
            PolicySpec::DvsScp {
                lambda,
                k,
                optimizer,
            } => PolicyKind::Adaptive(
                Adaptive::dvs_scp(check_lambda(lambda)?, k).with_optimizer(optimizer.build()),
            ),
            PolicySpec::DvsCcp {
                lambda,
                k,
                optimizer,
            } => PolicyKind::Adaptive(
                Adaptive::dvs_ccp(check_lambda(lambda)?, k).with_optimizer(optimizer.build()),
            ),
            PolicySpec::Scp {
                lambda,
                k,
                speed,
                optimizer,
            } => PolicyKind::Adaptive(
                Adaptive::scp(check_lambda(lambda)?, k, speed).with_optimizer(optimizer.build()),
            ),
            PolicySpec::Ccp {
                lambda,
                k,
                speed,
                optimizer,
            } => PolicyKind::Adaptive(
                Adaptive::ccp(check_lambda(lambda)?, k, speed).with_optimizer(optimizer.build()),
            ),
            PolicySpec::Cscp { lambda, k, speed } => {
                PolicyKind::Adaptive(Adaptive::cscp(check_lambda(lambda)?, k, speed))
            }
        })
    }

    /// The fault-tolerance target `k`, where the scheme has one.
    pub fn k(&self) -> Option<u32> {
        match *self {
            PolicySpec::KFaultTolerant { k, .. }
            | PolicySpec::AdtDvs { k, .. }
            | PolicySpec::DvsScp { k, .. }
            | PolicySpec::DvsCcp { k, .. }
            | PolicySpec::Scp { k, .. }
            | PolicySpec::Ccp { k, .. }
            | PolicySpec::Cscp { k, .. } => Some(k),
            PolicySpec::Poisson { .. } => None,
        }
    }

    /// The fixed DVS level index, where the scheme is speed-pinned.
    pub fn speed(&self) -> Option<usize> {
        match *self {
            PolicySpec::Poisson { speed, .. }
            | PolicySpec::KFaultTolerant { speed, .. }
            | PolicySpec::Scp { speed, .. }
            | PolicySpec::Ccp { speed, .. }
            | PolicySpec::Cscp { speed, .. } => Some(speed),
            PolicySpec::AdtDvs { .. } | PolicySpec::DvsScp { .. } | PolicySpec::DvsCcp { .. } => {
                None
            }
        }
    }

    /// Overrides the assumed fault rate, where the scheme has one.
    pub fn with_lambda(mut self, new_lambda: f64) -> Self {
        match &mut self {
            PolicySpec::Poisson { lambda, .. }
            | PolicySpec::AdtDvs { lambda, .. }
            | PolicySpec::DvsScp { lambda, .. }
            | PolicySpec::DvsCcp { lambda, .. }
            | PolicySpec::Scp { lambda, .. }
            | PolicySpec::Ccp { lambda, .. }
            | PolicySpec::Cscp { lambda, .. } => *lambda = new_lambda,
            PolicySpec::KFaultTolerant { .. } => {}
        }
        self
    }

    /// Overrides the fault-tolerance target, where the scheme has one.
    pub fn with_k(mut self, new_k: u32) -> Self {
        match &mut self {
            PolicySpec::KFaultTolerant { k, .. }
            | PolicySpec::AdtDvs { k, .. }
            | PolicySpec::DvsScp { k, .. }
            | PolicySpec::DvsCcp { k, .. }
            | PolicySpec::Scp { k, .. }
            | PolicySpec::Ccp { k, .. }
            | PolicySpec::Cscp { k, .. } => *k = new_k,
            PolicySpec::Poisson { .. } => {}
        }
        self
    }
}

impl ToJson for PolicySpec {
    fn to_json(&self) -> Json {
        let mut fields: Vec<(&'static str, Json)> = vec![("kind", self.tag().into())];
        match *self {
            PolicySpec::Poisson { lambda, speed } => {
                fields.push(("lambda", lambda.into()));
                fields.push(("speed", speed.into()));
            }
            PolicySpec::KFaultTolerant { k, speed } => {
                fields.push(("k", k.into()));
                fields.push(("speed", speed.into()));
            }
            PolicySpec::AdtDvs {
                lambda,
                k,
                optimizer,
            }
            | PolicySpec::DvsScp {
                lambda,
                k,
                optimizer,
            }
            | PolicySpec::DvsCcp {
                lambda,
                k,
                optimizer,
            } => {
                fields.push(("lambda", lambda.into()));
                fields.push(("k", k.into()));
                fields.push(("optimizer", optimizer.tag().into()));
            }
            PolicySpec::Scp {
                lambda,
                k,
                speed,
                optimizer,
            }
            | PolicySpec::Ccp {
                lambda,
                k,
                speed,
                optimizer,
            } => {
                fields.push(("lambda", lambda.into()));
                fields.push(("k", k.into()));
                fields.push(("speed", speed.into()));
                fields.push(("optimizer", optimizer.tag().into()));
            }
            PolicySpec::Cscp { lambda, k, speed } => {
                fields.push(("lambda", lambda.into()));
                fields.push(("k", k.into()));
                fields.push(("speed", speed.into()));
            }
        }
        Json::obj(fields)
    }
}

impl FromJson for PolicySpec {
    fn from_json(json: &Json) -> Result<Self, SpecError> {
        let kind = json.req("kind")?.as_str()?;
        let lambda = || json.req("lambda")?.as_f64();
        let k = || json.req("k")?.as_u32();
        let speed = || json.get("speed").map_or(Ok(0), Json::as_usize);
        let optimizer = || -> Result<OptimizerSpec, SpecError> {
            match json.get("optimizer") {
                None => Ok(OptimizerSpec::default()),
                Some(v) => OptimizerSpec::from_tag(v.as_str()?),
            }
        };
        Ok(match kind {
            "poisson" => PolicySpec::Poisson {
                lambda: lambda()?,
                speed: speed()?,
            },
            "kft" => PolicySpec::KFaultTolerant {
                k: k()?,
                speed: speed()?,
            },
            "a_d" => PolicySpec::AdtDvs {
                lambda: lambda()?,
                k: k()?,
                optimizer: optimizer()?,
            },
            "a_d_s" => PolicySpec::DvsScp {
                lambda: lambda()?,
                k: k()?,
                optimizer: optimizer()?,
            },
            "a_d_c" => PolicySpec::DvsCcp {
                lambda: lambda()?,
                k: k()?,
                optimizer: optimizer()?,
            },
            "a_s" => PolicySpec::Scp {
                lambda: lambda()?,
                k: k()?,
                speed: speed()?,
                optimizer: optimizer()?,
            },
            "a_c" => PolicySpec::Ccp {
                lambda: lambda()?,
                k: k()?,
                speed: speed()?,
                optimizer: optimizer()?,
            },
            "cscp" => PolicySpec::Cscp {
                lambda: lambda()?,
                k: k()?,
                speed: speed()?,
            },
            other => {
                return Err(SpecError::unknown_kind(
                    "policy",
                    other,
                    "poisson, kft, a_d, a_d_s, a_d_c, a_s, a_c, cscp",
                ))
            }
        })
    }
}

/// Monte-Carlo replication parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct McSpec {
    /// Number of independent replications.
    pub replications: u64,
    /// Base seed (replication seeds derive deterministically from it).
    pub seed: u64,
    /// Worker threads (0 = available parallelism).
    pub threads: usize,
}

impl Default for McSpec {
    fn default() -> Self {
        Self {
            replications: 2_000,
            seed: 2006,
            threads: 0,
        }
    }
}

impl McSpec {
    /// Builds the [`MonteCarlo`] configuration.
    pub fn build(&self) -> Result<MonteCarlo, SpecError> {
        if self.replications == 0 {
            return Err(SpecError::invalid("replications must be positive"));
        }
        Ok(MonteCarlo::new(self.replications)
            .with_seed(self.seed)
            .with_threads(self.threads))
    }
}

impl ToJson for McSpec {
    fn to_json(&self) -> Json {
        Json::obj([
            ("replications", self.replications.into()),
            ("seed", self.seed.into()),
            ("threads", self.threads.into()),
        ])
    }
}

impl FromJson for McSpec {
    fn from_json(json: &Json) -> Result<Self, SpecError> {
        let d = McSpec::default();
        Ok(Self {
            replications: json
                .get("replications")
                .map_or(Ok(d.replications), Json::as_u64)?,
            seed: json.get("seed").map_or(Ok(d.seed), Json::as_u64)?,
            threads: json.get("threads").map_or(Ok(d.threads), Json::as_usize)?,
        })
    }
}

/// Default per-request transport timeout for remote queue endpoints, in
/// milliseconds (applies to connect, write and read individually).
pub const DEFAULT_REMOTE_TIMEOUT_MS: u64 = 10_000;

/// Work-queue scheduling configuration for the execution layer.
///
/// When present on an [`ExecSpec`], the experiment's replications are
/// scheduled through `eacp-exec`'s `QueueRunner` — a work queue of
/// canonical reduction blocks drained by a worker pool with lease retry —
/// instead of the plain multi-threaded runner. Results are bit-identical
/// either way; the queue buys failure tolerance and the seam for remote
/// workers. With `endpoints` set, leased blocks are shipped to `eacp
/// serve` processes at those addresses instead of running in-process;
/// the summary is still bit-identical (per-replication seeding makes a
/// block's partial the same wherever it runs).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueueSpec {
    /// Worker-pool size (0 = available parallelism).
    pub workers: usize,
    /// Per-assignment attempt budget (first attempt + retries; ≥ 1).
    pub max_attempts: u32,
    /// Remote worker endpoints (`host:port`). Empty = in-process workers.
    pub endpoints: Vec<String>,
    /// Per-request transport timeout in milliseconds (connect, write and
    /// read each get this budget). Only meaningful with `endpoints`.
    pub timeout_ms: u64,
}

impl Default for QueueSpec {
    fn default() -> Self {
        Self {
            workers: 0,
            max_attempts: 3,
            endpoints: Vec::new(),
            timeout_ms: DEFAULT_REMOTE_TIMEOUT_MS,
        }
    }
}

/// Checks one `host:port` endpoint string.
fn validate_endpoint(endpoint: &str) -> Result<(), SpecError> {
    let bad = |why: &str| {
        Err(SpecError::invalid(format!(
            "queue endpoint {endpoint:?} {why} (expected host:port)"
        )))
    };
    let Some((host, port)) = endpoint.rsplit_once(':') else {
        return bad("has no port");
    };
    if host.is_empty() {
        return bad("has an empty host");
    }
    match port.parse::<u16>() {
        Ok(0) => bad("has port 0"),
        Ok(_) => Ok(()),
        Err(_) => bad("has a non-numeric port"),
    }
}

impl QueueSpec {
    /// Validates the scheduling parameters.
    pub fn validate(&self) -> Result<(), SpecError> {
        if self.max_attempts == 0 {
            return Err(SpecError::invalid(
                "queue max_attempts must be at least 1 (the first attempt)",
            ));
        }
        for endpoint in &self.endpoints {
            validate_endpoint(endpoint)?;
        }
        if !self.endpoints.is_empty() && self.timeout_ms == 0 {
            return Err(SpecError::invalid(
                "queue timeout_ms must be positive with remote endpoints",
            ));
        }
        Ok(())
    }
}

impl ToJson for QueueSpec {
    fn to_json(&self) -> Json {
        let mut fields: Vec<(&'static str, Json)> = vec![
            ("workers", self.workers.into()),
            ("max_attempts", self.max_attempts.into()),
        ];
        // The remote fields are emitted only when they depart from the
        // in-process defaults, so documents written before the remote
        // transport existed round-trip byte-identically.
        if !self.endpoints.is_empty() {
            fields.push((
                "endpoints",
                Json::Array(
                    self.endpoints
                        .iter()
                        .map(|e| Json::Str(e.clone()))
                        .collect(),
                ),
            ));
        }
        if self.timeout_ms != DEFAULT_REMOTE_TIMEOUT_MS {
            fields.push(("timeout_ms", self.timeout_ms.into()));
        }
        Json::obj(fields)
    }
}

impl FromJson for QueueSpec {
    fn from_json(json: &Json) -> Result<Self, SpecError> {
        let d = QueueSpec::default();
        Ok(Self {
            workers: json.get("workers").map_or(Ok(d.workers), Json::as_usize)?,
            max_attempts: json
                .get("max_attempts")
                .map_or(Ok(d.max_attempts), Json::as_u32)?,
            endpoints: match json.get("endpoints") {
                None => d.endpoints,
                Some(v) => v
                    .as_array()?
                    .iter()
                    .map(|e| e.as_str().map(str::to_owned))
                    .collect::<Result<_, _>>()?,
            },
            timeout_ms: json
                .get("timeout_ms")
                .map_or(Ok(d.timeout_ms), Json::as_u64)?,
        })
    }
}

/// Executor semantics switches (mirrors [`ExecutorOptions`]), plus the
/// execution-layer scheduling choice ([`QueueSpec`]).
#[derive(Debug, Clone, PartialEq)]
pub struct ExecSpec {
    /// Whether faults can strike during checkpoint/rollback operations.
    pub faults_during_overhead: bool,
    /// Stop once the deadline has passed.
    pub stop_at_deadline: bool,
    /// Safety cap on executed operations.
    pub max_operations: u64,
    /// Zero-progress rounds tolerated before flagging an anomaly.
    pub max_stalled_rounds: u32,
    /// Run through the work-queue scheduler (`None` = plain local runner).
    pub queue: Option<QueueSpec>,
}

impl Default for ExecSpec {
    fn default() -> Self {
        let d = ExecutorOptions::default();
        Self {
            faults_during_overhead: d.faults_during_overhead,
            stop_at_deadline: d.stop_at_deadline,
            max_operations: d.max_operations,
            max_stalled_rounds: d.max_stalled_rounds,
            queue: None,
        }
    }
}

impl ExecSpec {
    /// The analysis-faithful model the paper's tables use (faults only
    /// during useful computation).
    pub fn paper() -> Self {
        Self {
            faults_during_overhead: false,
            ..Self::default()
        }
    }

    /// Spec for existing executor options (used when deriving specs from
    /// legacy call sites).
    pub fn from_options(options: &ExecutorOptions) -> Self {
        Self {
            faults_during_overhead: options.faults_during_overhead,
            stop_at_deadline: options.stop_at_deadline,
            max_operations: options.max_operations,
            max_stalled_rounds: options.max_stalled_rounds,
            queue: None,
        }
    }

    /// Requests work-queue scheduling with a pool of `workers`.
    pub fn with_queue(mut self, queue: QueueSpec) -> Self {
        self.queue = Some(queue);
        self
    }

    /// Builds the [`ExecutorOptions`].
    ///
    /// The queue configuration is not part of the engine options — it is
    /// consumed by the execution layer — but it is validated here so
    /// `ExperimentSpec::validate` rejects a bad one.
    pub fn build(&self) -> Result<ExecutorOptions, SpecError> {
        if self.max_operations == 0 {
            return Err(SpecError::invalid("max_operations must be positive"));
        }
        if let Some(queue) = &self.queue {
            queue.validate()?;
        }
        Ok(ExecutorOptions {
            max_operations: self.max_operations,
            max_stalled_rounds: self.max_stalled_rounds,
            faults_during_overhead: self.faults_during_overhead,
            stop_at_deadline: self.stop_at_deadline,
        })
    }
}

impl ToJson for ExecSpec {
    fn to_json(&self) -> Json {
        let mut fields: Vec<(&'static str, Json)> = vec![
            ("faults_during_overhead", self.faults_during_overhead.into()),
            ("stop_at_deadline", self.stop_at_deadline.into()),
            ("max_operations", self.max_operations.into()),
            ("max_stalled_rounds", self.max_stalled_rounds.into()),
        ];
        // Emitted only when present, so documents written before the queue
        // scheduler existed round-trip byte-identically.
        if let Some(queue) = &self.queue {
            fields.push(("queue", queue.to_json()));
        }
        Json::obj(fields)
    }
}

impl FromJson for ExecSpec {
    fn from_json(json: &Json) -> Result<Self, SpecError> {
        let d = ExecSpec::default();
        Ok(Self {
            faults_during_overhead: json
                .get("faults_during_overhead")
                .map_or(Ok(d.faults_during_overhead), Json::as_bool)?,
            stop_at_deadline: json
                .get("stop_at_deadline")
                .map_or(Ok(d.stop_at_deadline), Json::as_bool)?,
            max_operations: json
                .get("max_operations")
                .map_or(Ok(d.max_operations), Json::as_u64)?,
            max_stalled_rounds: json
                .get("max_stalled_rounds")
                .map_or(Ok(d.max_stalled_rounds), Json::as_u32)?,
            queue: match json.get("queue") {
                None | Some(Json::Null) => None,
                Some(q) => Some(QueueSpec::from_json(q)?),
            },
        })
    }
}

/// The top-level experiment description: everything needed to reproduce one
/// Monte-Carlo cell, bit for bit.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentSpec {
    /// Human-readable experiment name.
    pub name: String,
    /// The simulated world.
    pub scenario: ScenarioSpec,
    /// The injected fault process.
    pub faults: FaultSpec,
    /// The checkpointing scheme under test.
    pub policy: PolicySpec,
    /// Replication parameters.
    pub mc: McSpec,
    /// Executor semantics.
    pub executor: ExecSpec,
}

impl ExperimentSpec {
    /// A fully-defaulted experiment at the paper's nominal operating point
    /// (Table 1(a) first row, proposed scheme).
    pub fn paper_nominal() -> Self {
        Self {
            name: "paper-nominal".to_owned(),
            scenario: ScenarioSpec::paper_nominal(),
            faults: FaultSpec::Poisson { lambda: 1.4e-3 },
            policy: PolicySpec::DvsScp {
                lambda: 1.4e-3,
                k: 5,
                optimizer: OptimizerSpec::default(),
            },
            mc: McSpec::default(),
            executor: ExecSpec::paper(),
        }
    }

    /// Parses a spec from JSON text.
    pub fn from_json_str(text: &str) -> Result<Self, SpecError> {
        Self::from_json(&Json::parse(text)?)
    }

    /// Serializes the spec as pretty-printed JSON.
    pub fn to_json_string(&self) -> String {
        self.to_json().pretty()
    }

    /// Reads a spec file.
    pub fn load(path: &std::path::Path) -> Result<Self, SpecError> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| SpecError::Io(format!("{}: {e}", path.display())))?;
        Self::from_json_str(&text)
    }

    /// Writes the spec as a JSON file.
    pub fn save(&self, path: &std::path::Path) -> Result<(), SpecError> {
        std::fs::write(path, self.to_json_string())
            .map_err(|e| SpecError::Io(format!("{}: {e}", path.display())))
    }

    /// Validates every component by building it once.
    pub fn validate(&self) -> Result<(), SpecError> {
        self.scenario.build()?;
        self.faults.build(0)?;
        self.policy.build()?;
        self.mc.build()?;
        self.executor.build()?;
        Ok(())
    }
}

impl ToJson for ExperimentSpec {
    fn to_json(&self) -> Json {
        Json::obj([
            ("name", self.name.as_str().into()),
            ("scenario", self.scenario.to_json()),
            ("faults", self.faults.to_json()),
            ("policy", self.policy.to_json()),
            ("mc", self.mc.to_json()),
            ("executor", self.executor.to_json()),
        ])
    }
}

impl FromJson for ExperimentSpec {
    fn from_json(json: &Json) -> Result<Self, SpecError> {
        Ok(Self {
            name: json
                .get("name")
                .map_or(Ok("unnamed"), Json::as_str)?
                .to_owned(),
            scenario: ScenarioSpec::from_json(json.req("scenario")?)?,
            faults: FaultSpec::from_json(json.req("faults")?)?,
            policy: PolicySpec::from_json(json.req("policy")?)?,
            mc: json
                .get("mc")
                .map_or_else(|| Ok(McSpec::default()), McSpec::from_json)?,
            executor: json
                .get("executor")
                .map_or_else(|| Ok(ExecSpec::default()), ExecSpec::from_json)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eacp_faults::FaultProcess;
    use eacp_sim::Policy;

    #[test]
    fn every_policy_tag_builds_with_matching_name() {
        for tag in PolicySpec::TAGS {
            let spec = PolicySpec::from_tag(tag, 1.4e-3, 5, 0).unwrap();
            assert_eq!(spec.tag(), tag);
            let policy = spec.build().unwrap();
            assert_eq!(policy.name(), spec.policy_name(), "tag {tag}");
        }
    }

    #[test]
    fn unknown_policy_tag_is_rejected() {
        let err = PolicySpec::from_tag("nope", 1e-3, 5, 0).unwrap_err();
        assert!(err.to_string().contains("nope"));
    }

    #[test]
    fn scenario_spec_builds_paper_scenario() {
        let s = ScenarioSpec::paper_nominal().build().unwrap();
        assert_eq!(s.task.work_cycles, 7600.0);
        assert_eq!(s.task.deadline, 10_000.0);
        assert_eq!(s.costs.cscp_cycles(), 22.0);
        assert_eq!(s.processors, 2);
    }

    #[test]
    fn invalid_values_error_instead_of_panicking() {
        let mut spec = ExperimentSpec::paper_nominal();
        spec.scenario.work = WorkSpec::Cycles {
            work_cycles: -1.0,
            deadline: 100.0,
        };
        assert!(matches!(spec.validate(), Err(SpecError::Invalid(_))));

        let mc = McSpec {
            replications: 0,
            ..McSpec::default()
        };
        assert!(mc.build().is_err());

        let dvs = DvsSpec::Levels { levels: vec![] };
        assert!(dvs.build().is_err());

        let costs = CostsSpec::Explicit {
            store: 0.0,
            compare: 0.0,
            rollback: 0.0,
        };
        assert!(costs.build().is_err());
    }

    #[test]
    fn experiment_spec_round_trips_through_json() {
        let spec = ExperimentSpec::paper_nominal();
        let text = spec.to_json_string();
        let back = ExperimentSpec::from_json_str(&text).unwrap();
        assert_eq!(spec, back);
    }

    #[test]
    fn every_fault_kind_round_trips() {
        let faults = [
            FaultSpec::Poisson { lambda: 1.4e-3 },
            FaultSpec::Deterministic {
                times: vec![1.0, 2.5, 10.0],
            },
            FaultSpec::Weibull {
                shape: 0.7,
                scale: 800.0,
            },
            FaultSpec::Burst {
                quiet_rate: 1e-4,
                burst_rate: 5e-2,
                mean_quiet_dwell: 9_000.0,
                mean_burst_dwell: 600.0,
            },
            FaultSpec::Phased {
                phases: vec![(900.0, 0.0), (100.0, 0.05)],
                repeat: true,
            },
        ];
        for f in faults {
            let back = FaultSpec::from_json(&f.to_json()).unwrap();
            assert_eq!(f, back);
            f.build(7).unwrap();
        }
    }

    #[test]
    fn every_policy_kind_round_trips() {
        for tag in PolicySpec::TAGS {
            let spec = PolicySpec::from_tag(tag, 2e-4, 3, 1).unwrap();
            let back = PolicySpec::from_json(&spec.to_json()).unwrap();
            assert_eq!(spec, back);
        }
    }

    #[test]
    fn missing_fields_default_sanely() {
        let text = r#"{
            "scenario": {"work": {"kind": "utilization", "utilization": 0.8, "deadline": 10000}},
            "faults": {"kind": "poisson", "lambda": 0.001},
            "policy": {"kind": "a_d", "lambda": 0.001, "k": 5}
        }"#;
        let spec = ExperimentSpec::from_json_str(text).unwrap();
        assert_eq!(spec.name, "unnamed");
        assert_eq!(spec.mc, McSpec::default());
        assert_eq!(spec.scenario.processors, 2);
        assert_eq!(spec.scenario.costs, CostsSpec::PaperScp);
        spec.validate().unwrap();
    }

    #[test]
    fn queue_spec_round_trips_and_validates() {
        // Absent queue config: the document keeps its pre-queue shape.
        let spec = ExperimentSpec::paper_nominal();
        assert!(spec.executor.queue.is_none());
        assert!(!spec.to_json_string().contains("queue"));

        let mut queued = spec.clone();
        queued.executor = queued.executor.with_queue(QueueSpec {
            workers: 3,
            max_attempts: 5,
            ..QueueSpec::default()
        });
        let text = queued.to_json_string();
        assert!(text.contains("\"queue\""), "{text}");
        // In-process queue configs keep their pre-remote wire shape.
        assert!(!text.contains("endpoints"), "{text}");
        assert!(!text.contains("timeout_ms"), "{text}");
        let back = ExperimentSpec::from_json_str(&text).unwrap();
        assert_eq!(back, queued);
        assert_eq!(
            back.executor.queue,
            Some(QueueSpec {
                workers: 3,
                max_attempts: 5,
                ..QueueSpec::default()
            })
        );
        back.validate().unwrap();

        // A zero attempt budget can never run anything: rejected.
        let mut bad = queued.clone();
        bad.executor.queue = Some(QueueSpec {
            workers: 1,
            max_attempts: 0,
            ..QueueSpec::default()
        });
        assert!(matches!(bad.validate(), Err(SpecError::Invalid(_))));

        // Omitted fields default.
        let partial = Json::parse(r#"{"queue": {"workers": 2}}"#).unwrap();
        let exec = ExecSpec::from_json(&partial).unwrap();
        assert_eq!(
            exec.queue,
            Some(QueueSpec {
                workers: 2,
                max_attempts: 3,
                ..QueueSpec::default()
            })
        );
    }

    #[test]
    fn remote_queue_endpoints_round_trip_and_validate() {
        let mut queued = ExperimentSpec::paper_nominal();
        queued.executor = queued.executor.with_queue(QueueSpec {
            workers: 4,
            endpoints: vec!["10.0.0.1:7401".into(), "fleet.local:7402".into()],
            timeout_ms: 2_500,
            ..QueueSpec::default()
        });
        queued.validate().unwrap();
        let text = queued.to_json_string();
        assert!(text.contains("endpoints"), "{text}");
        assert!(text.contains("timeout_ms"), "{text}");
        let back = ExperimentSpec::from_json_str(&text).unwrap();
        assert_eq!(back, queued);

        for bad_endpoint in ["", "no-port", ":7401", "host:", "host:x", "host:0"] {
            let q = QueueSpec {
                endpoints: vec![bad_endpoint.into()],
                ..QueueSpec::default()
            };
            assert!(
                matches!(q.validate(), Err(SpecError::Invalid(_))),
                "{bad_endpoint:?} must be rejected"
            );
        }
        let zero_timeout = QueueSpec {
            endpoints: vec!["h:1".into()],
            timeout_ms: 0,
            ..QueueSpec::default()
        };
        assert!(zero_timeout.validate().is_err());
        // IPv6 addresses use rsplit: the last colon separates the port.
        QueueSpec {
            endpoints: vec!["::1:7401".into()],
            ..QueueSpec::default()
        }
        .validate()
        .unwrap();
    }

    #[test]
    fn fault_streams_are_seed_deterministic() {
        let spec = FaultSpec::Poisson { lambda: 1e-3 };
        let mut a = spec.build(42).unwrap();
        let mut b = spec.build(42).unwrap();
        for _ in 0..50 {
            assert_eq!(a.next_fault(), b.next_fault());
        }
        let mut c = spec.build(43).unwrap();
        assert_ne!(a.next_fault(), c.next_fault());
    }

    #[test]
    fn lambda_and_k_overrides_apply_where_present() {
        let p = PolicySpec::from_tag("a_d_s", 1e-3, 5, 0).unwrap();
        let p = p.with_lambda(2e-3).with_k(3);
        match p {
            PolicySpec::DvsScp { lambda, k, .. } => {
                assert_eq!(lambda, 2e-3);
                assert_eq!(k, 3);
            }
            other => panic!("unexpected {other:?}"),
        }
        // kft has no lambda; with_lambda is a no-op there.
        let kft = PolicySpec::from_tag("kft", 1e-3, 5, 0)
            .unwrap()
            .with_lambda(9.0);
        assert_eq!(kft, PolicySpec::KFaultTolerant { k: 5, speed: 0 });
    }
}
