//! Named experiment presets: the paper's operating points plus new
//! workloads opened by the spec layer.
//!
//! Preset names are stable identifiers — CLI (`eacp mc --preset ...`),
//! docs and CI all refer to them. Two families exist:
//!
//! * **Paper cells** — `table{1..4}-{a,b}` anchors (the first row of each
//!   table part, proposed-scheme column), plus the programmatic
//!   [`paper_cell`] covering every `(table, U, λ, scheme)` combination.
//! * **Workloads** — `satellite-telemetry`, `battery-budget`,
//!   `high-fault-burst`: scenarios beyond the paper's tables exercising
//!   the burst/phased fault models and non-paper operating points.

use crate::error::SpecError;
use crate::executive::{ExecutiveSpec, PolicyAssignment, TaskSetSpec};
use crate::model::{
    CostsSpec, DvsSpec, ExecSpec, ExperimentSpec, FaultSpec, McSpec, PolicySpec, ScenarioSpec,
    WorkSpec,
};

/// The paper's deadline (`D = 10000` normalized time units).
pub const PAPER_DEADLINE: f64 = 10_000.0;

/// Scheme column of a paper table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PaperScheme {
    /// Poisson-arrival baseline.
    Poisson,
    /// k-fault-tolerant baseline.
    KFaultTolerant,
    /// `A_D` (ADT_DVS, DATE'03).
    AdtDvs,
    /// The table's proposed scheme (`A_D_S` for Tables 1–2, `A_D_C` for 3–4).
    Proposed,
}

/// Builds the spec for one cell of one of the paper's four tables.
///
/// `table` is the 1-based table number. Baseline schemes are pinned to the
/// table's baseline speed (`f1` for Tables 1/3, `f2` for 2/4) and the task
/// is scaled by the table's utilization speed, exactly as
/// `eacp_experiments::table_config` does.
pub fn paper_cell(
    table: u32,
    utilization: f64,
    lambda: f64,
    k: u32,
    scheme: PaperScheme,
) -> Result<ExperimentSpec, SpecError> {
    let (costs, proposed_tag) = match table {
        1 | 2 => (CostsSpec::PaperScp, "a_d_s"),
        3 | 4 => (CostsSpec::PaperCcp, "a_d_c"),
        other => {
            return Err(SpecError::invalid(format!(
                "paper table must be 1..=4, got {other}"
            )))
        }
    };
    let (baseline_speed, util_speed) = match table {
        1 | 3 => (0usize, 1.0),
        _ => (1usize, 2.0),
    };
    let policy = match scheme {
        PaperScheme::Poisson => PolicySpec::Poisson {
            lambda,
            speed: baseline_speed,
        },
        PaperScheme::KFaultTolerant => PolicySpec::KFaultTolerant {
            k,
            speed: baseline_speed,
        },
        PaperScheme::AdtDvs => PolicySpec::from_tag("a_d", lambda, k, 0)?,
        PaperScheme::Proposed => PolicySpec::from_tag(proposed_tag, lambda, k, 0)?,
    };
    Ok(ExperimentSpec {
        name: format!(
            "table{table}-u{utilization}-l{lambda}-k{k}-{}",
            policy.tag()
        ),
        scenario: ScenarioSpec {
            work: WorkSpec::Utilization {
                utilization,
                speed: util_speed,
                deadline: PAPER_DEADLINE,
            },
            costs,
            dvs: DvsSpec::PaperDefault,
            processors: 2,
        },
        faults: FaultSpec::Poisson { lambda },
        policy,
        mc: McSpec::default(),
        // The paper's renewal analysis exposes only useful computation to
        // faults; the tables are regenerated under the same semantics.
        executor: ExecSpec::paper(),
    })
}

fn workload(name: &str) -> Option<ExperimentSpec> {
    match name {
        // A satellite telemetry frame processor crossing the radiation
        // belts: long quiet periods punctuated by fault bursts. The
        // adaptive scheme's fault-budget replanning is exactly what the
        // paper motivates for "autonomous airborne / space systems".
        "satellite-telemetry" => Some(ExperimentSpec {
            name: name.to_owned(),
            scenario: ScenarioSpec {
                work: WorkSpec::Utilization {
                    utilization: 0.70,
                    speed: 1.0,
                    deadline: PAPER_DEADLINE,
                },
                costs: CostsSpec::PaperScp,
                dvs: DvsSpec::PaperDefault,
                processors: 2,
            },
            faults: FaultSpec::Burst {
                quiet_rate: 1e-4,
                burst_rate: 4e-2,
                mean_quiet_dwell: 9_000.0,
                mean_burst_dwell: 500.0,
            },
            policy: PolicySpec::from_tag("a_d_s", 1.4e-3, 5, 0).ok()?,
            mc: McSpec::default(),
            executor: ExecSpec::default(),
        }),
        // A battery-powered node that must finish within the deadline at
        // minimum energy: light utilization, low fault rate, DVS keeps the
        // processor slow almost all the time.
        "battery-budget" => Some(ExperimentSpec {
            name: name.to_owned(),
            scenario: ScenarioSpec {
                work: WorkSpec::Utilization {
                    utilization: 0.45,
                    speed: 1.0,
                    deadline: PAPER_DEADLINE,
                },
                costs: CostsSpec::PaperScp,
                dvs: DvsSpec::PaperDefault,
                processors: 2,
            },
            faults: FaultSpec::Poisson { lambda: 2e-4 },
            policy: PolicySpec::from_tag("a_d_s", 2e-4, 2, 0).ok()?,
            mc: McSpec::default(),
            executor: ExecSpec::default(),
        }),
        // A harsh-environment operating point far beyond the paper's λ
        // grid: sustained high fault arrival with heavier bursts.
        "high-fault-burst" => Some(ExperimentSpec {
            name: name.to_owned(),
            scenario: ScenarioSpec {
                work: WorkSpec::Utilization {
                    utilization: 0.60,
                    speed: 1.0,
                    deadline: PAPER_DEADLINE,
                },
                costs: CostsSpec::PaperCcp,
                dvs: DvsSpec::PaperDefault,
                processors: 2,
            },
            faults: FaultSpec::Burst {
                quiet_rate: 2e-3,
                burst_rate: 1e-1,
                mean_quiet_dwell: 2_000.0,
                mean_burst_dwell: 400.0,
            },
            policy: PolicySpec::from_tag("a_d_c", 5e-3, 8, 0).ok()?,
            mc: McSpec::default(),
            executor: ExecSpec::default(),
        }),
        _ => None,
    }
}

/// Looks up a preset by name.
///
/// Table anchors are named `table{1..4}-a` (part (a) first row: `U = 0.76`,
/// `λ = 1.4e-3`, `k = 5`) and `table{1..4}-b` (part (b) first row:
/// `U = 0.92`, `λ = 1e-4`, `k = 1`), both with the proposed scheme.
pub fn preset(name: &str) -> Option<ExperimentSpec> {
    if let Some(w) = workload(name) {
        return Some(w);
    }
    let (table, part) = match name.strip_prefix("table") {
        Some(rest) => {
            let (num, part) = rest.split_once('-')?;
            (num.parse::<u32>().ok()?, part)
        }
        None => return None,
    };
    if !(1..=4).contains(&table) {
        return None;
    }
    let mut spec = match part {
        "a" => paper_cell(table, 0.76, 1.4e-3, 5, PaperScheme::Proposed).ok()?,
        "b" => paper_cell(table, 0.92, 1.0e-4, 1, PaperScheme::Proposed).ok()?,
        _ => return None,
    };
    spec.name = name.to_owned();
    Some(spec)
}

/// Looks up a periodic-workload preset by name (`eacp executive
/// --preset ...`, `eacp feasibility --preset ...`).
///
/// * `avionics-trio` — the three-task avionics workload of
///   `examples/periodic_taskset.rs`: attitude control, sensor fusion and
///   telemetry downlink under the shared `A_D_S` policy, five
///   hyperperiods at λ = 5e-4.
/// * `k-fault-feasibility-sweep` — a heavier five-task set near the EDF
///   feasibility boundary at `f1`, meant for `eacp feasibility`'s per-k
///   sensitivity table (`k = 5` upper bound); its executive run uses
///   per-task policies (the proposed scheme on the tight tasks, static
///   `k-f-t` on the slack ones).
pub fn executive_preset(name: &str) -> Option<ExecutiveSpec> {
    match name {
        "avionics-trio" => {
            let lambda = 5e-4;
            let k = 2;
            let mut spec = ExecutiveSpec::new(
                name,
                TaskSetSpec::implicit([
                    ("attitude-control", 900.0, 5_000),
                    ("sensor-fusion", 1_400.0, 10_000),
                    ("telemetry-downlink", 2_600.0, 20_000),
                ]),
            );
            spec.faults = FaultSpec::Poisson { lambda };
            spec.policy =
                PolicyAssignment::Shared(PolicySpec::from_tag("a_d_s", lambda, k, 0).ok()?);
            spec.k = k;
            spec.hyperperiods = 5;
            spec.seed = 13;
            Some(spec)
        }
        "k-fault-feasibility-sweep" => {
            let lambda = 1e-3;
            let k = 5;
            let mut spec = ExecutiveSpec::new(
                name,
                TaskSetSpec::implicit([
                    ("guidance", 1_100.0, 4_000),
                    ("nav-filter", 800.0, 5_000),
                    ("actuation", 600.0, 8_000),
                    ("health-monitor", 900.0, 10_000),
                    ("logging", 1_500.0, 20_000),
                ]),
            );
            spec.faults = FaultSpec::Poisson { lambda };
            spec.policy = PolicyAssignment::PerTask(vec![
                PolicySpec::from_tag("a_d_s", lambda, k, 0).ok()?,
                PolicySpec::from_tag("a_d_s", lambda, k, 0).ok()?,
                PolicySpec::from_tag("kft", lambda, 2, 0).ok()?,
                PolicySpec::from_tag("a_d_s", lambda, k, 0).ok()?,
                PolicySpec::from_tag("kft", lambda, 2, 0).ok()?,
            ]);
            spec.k = k;
            spec.hyperperiods = 3;
            spec.seed = 2006;
            Some(spec)
        }
        _ => None,
    }
}

/// All stable periodic-workload preset names.
pub fn executive_preset_names() -> Vec<&'static str> {
    vec!["avionics-trio", "k-fault-feasibility-sweep"]
}

/// All stable preset names.
pub fn preset_names() -> Vec<&'static str> {
    vec![
        "table1-a",
        "table1-b",
        "table2-a",
        "table2-b",
        "table3-a",
        "table3-b",
        "table4-a",
        "table4-b",
        "satellite-telemetry",
        "battery-budget",
        "high-fault-burst",
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_named_preset_exists_and_validates() {
        for name in preset_names() {
            let spec = preset(name).unwrap_or_else(|| panic!("missing preset {name}"));
            spec.validate().unwrap_or_else(|e| panic!("{name}: {e}"));
            assert_eq!(spec.name, name);
        }
    }

    #[test]
    fn unknown_presets_are_none() {
        assert!(preset("table9-a").is_none());
        assert!(preset("table1-z").is_none());
        assert!(preset("bogus").is_none());
        assert!(executive_preset("bogus").is_none());
    }

    #[test]
    fn every_executive_preset_exists_and_validates() {
        for name in executive_preset_names() {
            let spec = executive_preset(name).unwrap_or_else(|| panic!("missing preset {name}"));
            spec.validate().unwrap_or_else(|e| panic!("{name}: {e}"));
            assert_eq!(spec.name, name);
        }
    }

    #[test]
    fn paper_cell_matches_table_parameterization() {
        // Table 2 quotes utilization at f2 and pins baselines to f2.
        let spec = paper_cell(2, 0.76, 1.4e-3, 5, PaperScheme::Poisson).unwrap();
        match spec.scenario.work {
            WorkSpec::Utilization { speed, .. } => assert_eq!(speed, 2.0),
            ref other => panic!("unexpected {other:?}"),
        }
        assert_eq!(
            spec.policy,
            PolicySpec::Poisson {
                lambda: 1.4e-3,
                speed: 1
            }
        );
        // Table 3 is the CCP variant with an A_D_C proposal.
        let spec = paper_cell(3, 0.8, 1.6e-3, 5, PaperScheme::Proposed).unwrap();
        assert_eq!(spec.scenario.costs, CostsSpec::PaperCcp);
        assert_eq!(spec.policy.tag(), "a_d_c");
        assert!(paper_cell(5, 0.76, 1e-3, 5, PaperScheme::Proposed).is_err());
    }

    #[test]
    fn proposed_scheme_lambda_tracks_cell() {
        let spec = paper_cell(1, 0.78, 1.6e-3, 5, PaperScheme::Proposed).unwrap();
        match spec.policy {
            PolicySpec::DvsScp { lambda, k, .. } => {
                assert_eq!(lambda, 1.6e-3);
                assert_eq!(k, 5);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(spec.faults, FaultSpec::Poisson { lambda: 1.6e-3 });
    }
}
