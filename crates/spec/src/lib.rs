//! Declarative, serializable experiment descriptions for the EACP
//! workspace — the single source of truth every entry point builds from.
//!
//! The paper's evaluation is a grid of scenarios: four schemes, four
//! tables, each a `(U, λ, k)` sweep. Before this crate, every consumer
//! (CLI flags, the table harness, the examples, the benches) re-invented
//! that construction by hand. Now one [`ExperimentSpec`] — a plain data
//! structure with an exact JSON form — describes a complete experiment:
//!
//! * [`ScenarioSpec`] — task work/deadline, checkpoint costs, DVS levels;
//! * [`FaultSpec`] — Poisson / deterministic / Weibull / burst / phased
//!   fault arrivals;
//! * [`PolicySpec`] — all eight checkpointing schemes, with a
//!   `build() -> Box<dyn Policy>` factory;
//! * [`McSpec`] / [`ExecSpec`] — replications, seeding, threads, and
//!   executor semantics;
//! * [`SweepSpec`] — grids over utilization, λ, k, costs and seeds;
//! * [`TaskSetSpec`] / [`ExecutiveSpec`] — periodic task sets and the
//!   EDF-executive workload around them ([`executive`] module), with the
//!   serializable [`ExecutiveRunReport`] result schema;
//! * [`presets`] — the paper's operating points by name, plus new
//!   workloads (`satellite-telemetry`, `battery-budget`,
//!   `high-fault-burst`).
//!
//! The contract that makes this useful: **spec + seed = identical
//! results**. Serializing a spec to JSON, reading it back and running it
//! reproduces the original [`eacp_sim::Summary`] bit for bit, across
//! thread counts. Reports ([`report::RunReport`]) embed the producing spec
//! for provenance.
//!
//! The offline build environment has no serde, so [`json`] is a small
//! exact-round-trip JSON model and spec types implement [`ToJson`] /
//! [`FromJson`] directly; the trait shape deliberately mirrors a serde
//! derive so the real dependency can be swapped in later without touching
//! call sites.
//!
//! Execution lives one layer up in `eacp-exec`: `eacp_exec::run(&spec)`
//! turns a spec into a `(Summary, RunReport)` through the `Job`/`Runner`
//! API, picking the work-queue scheduler when the spec's
//! [`ExecSpec::queue`] asks for it.
//!
//! # Example
//!
//! ```
//! use eacp_spec::{ExperimentSpec, ToJson};
//!
//! let text = r#"{
//!     "name": "quick-look",
//!     "scenario": {
//!         "work": {"kind": "utilization", "utilization": 0.76, "deadline": 10000},
//!         "costs": {"kind": "paper-scp"}
//!     },
//!     "faults": {"kind": "poisson", "lambda": 0.0014},
//!     "policy": {"kind": "a_d_s", "lambda": 0.0014, "k": 5},
//!     "mc": {"replications": 200, "seed": 7}
//! }"#;
//! let spec = ExperimentSpec::from_json_str(text).unwrap();
//! spec.validate().unwrap();
//! assert_eq!(spec.policy.policy_name(), "A_D_S");
//! // The document round-trips exactly.
//! let back = ExperimentSpec::from_json_str(&spec.to_json_string()).unwrap();
//! assert_eq!(back, spec);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod error;
pub mod executive;
pub mod json;
pub mod model;
pub mod presets;
pub mod report;
pub mod sweep;

pub use error::SpecError;
pub use executive::{
    CheckpointTotals, ExecutiveMcSpec, ExecutiveRunReport, ExecutiveSpec, ExecutiveSummaryReport,
    PeriodicTaskSpec, PolicyAssignment, TaskReport, TaskSetSpec,
};
pub use json::{FromJson, Json, ToJson};
pub use model::{
    CostsSpec, DvsSpec, ExecSpec, ExperimentSpec, FaultSpec, McSpec, OptimizerSpec, PolicySpec,
    QueueSpec, ScenarioSpec, WorkSpec, DEFAULT_REMOTE_TIMEOUT_MS,
};
pub use presets::{
    executive_preset, executive_preset_names, paper_cell, preset, preset_names, PaperScheme,
};
pub use report::{RunReport, ServeTier, StatsReport, SummaryReport};
pub use sweep::{ExecutiveSweepAxis, ExecutiveSweepSpec, SweepAxis, SweepSpec};
