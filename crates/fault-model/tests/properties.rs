//! Property-based tests of the fault arrival processes.

use eacp_faults::{
    BurstProcess, DeterministicFaults, FaultProcess, PoissonProcess, WeibullRenewal,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every process emits a nondecreasing (strictly increasing for
    /// continuous distributions) sequence of finite times until
    /// exhaustion.
    #[test]
    fn poisson_streams_increase(rate in 1e-6f64..1.0, seed in 0u64..1_000) {
        let mut p = PoissonProcess::new(rate, StdRng::seed_from_u64(seed));
        let mut last = 0.0;
        for _ in 0..200 {
            let t = p.next_fault();
            prop_assert!(t.is_finite());
            prop_assert!(t > last);
            last = t;
        }
    }

    #[test]
    fn weibull_streams_increase(
        shape in 0.3f64..4.0,
        scale in 1.0f64..1_000.0,
        seed in 0u64..1_000,
    ) {
        let mut p = WeibullRenewal::new(shape, scale, StdRng::seed_from_u64(seed));
        let mut last = 0.0;
        for _ in 0..200 {
            let t = p.next_fault();
            prop_assert!(t.is_finite() && t >= last);
            last = t;
        }
    }

    #[test]
    fn burst_streams_increase(
        quiet in 0.0f64..1e-3,
        burst in 1e-3f64..0.1,
        seed in 0u64..1_000,
    ) {
        let mut p = BurstProcess::new(quiet, burst, 1_000.0, 100.0,
            StdRng::seed_from_u64(seed));
        let mut last = 0.0;
        for _ in 0..100 {
            let t = p.next_fault();
            prop_assert!(t.is_finite() && t >= last);
            last = t;
        }
    }

    /// Deterministic schedules replay their (sorted) input exactly, then
    /// return infinity forever.
    #[test]
    fn deterministic_replays_sorted_input(
        mut times in proptest::collection::vec(0.0f64..1e6, 0..50),
    ) {
        let mut d = DeterministicFaults::new(times.clone());
        times.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for &expected in &times {
            prop_assert_eq!(d.next_fault(), expected);
        }
        prop_assert_eq!(d.next_fault(), f64::INFINITY);
        prop_assert_eq!(d.next_fault(), f64::INFINITY);
    }

    /// Same seed ⇒ identical stream; different seeds ⇒ (almost surely)
    /// different first arrival.
    #[test]
    fn seeding_controls_streams(rate in 1e-4f64..0.1, seed in 0u64..10_000) {
        let mut a = PoissonProcess::new(rate, StdRng::seed_from_u64(seed));
        let mut b = PoissonProcess::new(rate, StdRng::seed_from_u64(seed));
        for _ in 0..50 {
            prop_assert_eq!(a.next_fault(), b.next_fault());
        }
        let mut c = PoissonProcess::new(rate, StdRng::seed_from_u64(seed.wrapping_add(1)));
        let mut a2 = PoissonProcess::new(rate, StdRng::seed_from_u64(seed));
        prop_assert_ne!(a2.next_fault(), c.next_fault());
    }

    /// Scaling the Poisson rate scales arrival times inversely (inverse
    /// CDF sampling is monotone in the rate for the same RNG stream).
    #[test]
    fn poisson_rate_scales_arrivals(rate in 1e-4f64..0.1, seed in 0u64..1_000) {
        let mut slow = PoissonProcess::new(rate, StdRng::seed_from_u64(seed));
        let mut fast = PoissonProcess::new(rate * 10.0, StdRng::seed_from_u64(seed));
        let (s, f) = (slow.next_fault(), fast.next_fault());
        prop_assert!((s / f - 10.0).abs() < 1e-6, "s = {s}, f = {f}");
    }
}
