//! Batched fault sampling: block-drawn arrivals behind the scalar
//! [`FaultProcess`] contract.
//!
//! The Monte-Carlo hot loop used to pay one RNG draw plus an `ln`/`powf`
//! transcendental per fault arrival, interleaved with simulation work. A
//! [`BatchedFaults`] wrapper instead refills a small pooled [`FaultBatch`]
//! buffer in blocks — uniforms first (amortizing RNG state updates), then
//! the inverse-CDF transform over the whole block, then one prefix-sum
//! pass to absolute arrival times — and serves `next_fault()` from the
//! buffer as a cursor read.
//!
//! # Bit-identity contract
//!
//! The refill draws uniforms from the *same* RNG stream in the *same*
//! order the scalar samplers would, and applies per-element math identical
//! to [`sample_exponential`](crate::sample_exponential) /
//! [`sample_weibull`](crate::sample_weibull); the prefix sum performs the
//! same `now += delta` additions in the same order. A batched stream is
//! therefore **bit-identical** to the scalar stream, prefix for prefix.
//! Arrivals drawn past the point a replication consumes only advance RNG
//! state that the next [`BatchedFaults::reset`] discards, so pooled
//! replication loops see exactly the scalar results. The golden identity
//! tests in `eacp-exec` pin this end to end for every fault process ×
//! scheme.
//!
//! # Pooling contract
//!
//! The buffer is pre-sized to the maximum block length at construction
//! and [`reset`](BatchedFaults::reset) only rewinds the cursor, so the
//! replication loop performs **no heap allocation** — the wrapper lives
//! alongside the engine's `ExecutorScratch` in the pooled per-block
//! replicator state, and the `alloc-count` witness covers it.

use crate::sampling::{fill_exponential_deltas, fill_weibull_deltas};
use crate::{FaultKind, FaultProcess};

/// Refill block length. Paper-nominal cells consume ~10 arrivals per
/// replication; constant blocks of 8 bound the worst-case overdraw to 7
/// wasted transcendentals per replication, which profiling showed beats
/// doubling growth (8 → 16 → 32 drew up to ~24 uniforms for ~11 served
/// arrivals). Fault-dense cells pay one cold `refill` call per 8
/// arrivals, amortized by the block transform.
const BATCH_LEN: usize = 8;

/// Reserved buffer capacity. Kept above [`BATCH_LEN`] so the capacity is
/// insensitive to future block-length tuning and the pooled-buffer
/// witness (`refills_never_grow_the_reserved_buffer`) pins the absence
/// of regrowth rather than an exact size.
const BATCH_MAX: usize = 32;

/// A pooled, pre-sized block of upcoming absolute fault arrival times.
///
/// Plain data: the buffer, a serve cursor, the adaptive next-refill
/// length, and an exhaustion latch for finite streams. Refilling and
/// serving live on [`BatchedFaults`], which pairs the batch with the
/// process it buffers.
#[derive(Debug, Clone)]
pub struct FaultBatch {
    /// Upcoming absolute arrival times, ascending.
    buf: Vec<f64>,
    /// Index of the next unserved arrival in `buf`.
    cursor: usize,
    /// Set once the source stream returned infinity: every later arrival
    /// is infinite, so no further refill is attempted.
    exhausted: bool,
}

impl FaultBatch {
    /// A fresh batch with the full [`BATCH_MAX`] capacity reserved, so
    /// refills never reallocate.
    // audit:setup: the one-time buffer reservation for the pooled batch.
    pub fn new() -> Self {
        Self {
            buf: Vec::with_capacity(BATCH_MAX),
            cursor: 0,
            exhausted: false,
        }
    }

    /// Discards buffered arrivals, keeping the allocation.
    #[inline]
    pub fn clear(&mut self) {
        self.buf.clear();
        self.cursor = 0;
        self.exhausted = false;
    }

    /// Arrivals buffered but not yet served.
    pub fn pending(&self) -> &[f64] {
        &self.buf[self.cursor.min(self.buf.len())..]
    }
}

impl Default for FaultBatch {
    fn default() -> Self {
        Self::new()
    }
}

/// A [`FaultKind`] served through a pooled [`FaultBatch`]: block-drawn
/// arrivals behind the scalar [`FaultProcess`] contract.
///
/// See the [module docs](self) for the bit-identity and pooling
/// contracts.
#[derive(Debug, Clone)]
pub struct BatchedFaults {
    inner: FaultKind,
    batch: FaultBatch,
}

impl BatchedFaults {
    /// Wraps a process, reserving the batch buffer up front.
    // audit:setup: construction reserves the batch buffer once.
    pub fn new(inner: FaultKind) -> Self {
        Self {
            inner,
            batch: FaultBatch::new(),
        }
    }

    /// Rewinds the process to time zero, re-seeded, and discards buffered
    /// arrivals — exactly the stream a fresh [`BatchedFaults::new`] over
    /// `FaultKind::reset(seed)` would serve, which in turn is exactly the
    /// scalar stream of a fresh process build. No allocation.
    #[inline]
    pub fn reset(&mut self, seed: u64) {
        self.inner.reset(seed);
        self.batch.clear();
    }

    /// The wrapped process.
    pub fn inner(&self) -> &FaultKind {
        &self.inner
    }

    /// Refills the batch with the next block of arrivals.
    ///
    /// Poisson and Weibull streams use the two-pass block transforms in
    /// [`crate::sampling`] plus a prefix-sum pass; the remaining processes
    /// (fixed schedules, Markov-modulated and phased arrivals consume a
    /// variable number of uniforms per arrival) run their scalar sampler
    /// into the buffer, which still amortizes the serve path. Pushes at
    /// least one arrival; never allocates (capacity is reserved).
    #[cold]
    fn refill(&mut self) {
        let batch = &mut self.batch;
        batch.buf.clear();
        batch.cursor = 0;
        let n = BATCH_LEN;
        match &mut self.inner {
            FaultKind::Poisson(p) => {
                if p.rate() <= 0.0 {
                    batch.buf.push(f64::INFINITY);
                } else {
                    fill_exponential_deltas(&mut p.rng, p.rate, &mut batch.buf, n);
                    for d in &mut batch.buf {
                        p.now += *d;
                        *d = p.now;
                    }
                }
            }
            FaultKind::Weibull(w) => {
                fill_weibull_deltas(&mut w.rng, w.shape, w.scale, &mut batch.buf, n);
                for d in &mut batch.buf {
                    w.now += *d;
                    *d = w.now;
                }
            }
            other => {
                for _ in 0..n {
                    let t = other.next_fault();
                    batch.buf.push(t);
                    if t.is_infinite() {
                        break;
                    }
                }
            }
        }
        // audit:allow(panic): every arm above pushes at least one arrival.
        let last = *batch.buf.last().expect("refill produced arrivals");
        batch.exhausted = last.is_infinite();
    }
}

impl FaultProcess for BatchedFaults {
    #[inline]
    fn next_fault(&mut self) -> f64 {
        if self.batch.cursor < self.batch.buf.len() {
            let t = self.batch.buf[self.batch.cursor];
            self.batch.cursor += 1;
            return t;
        }
        if self.batch.exhausted {
            return f64::INFINITY;
        }
        self.refill();
        self.batch.cursor = 1;
        self.batch.buf[0]
    }

    fn mean_rate(&self) -> Option<f64> {
        self.inner.mean_rate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BurstProcess, DeterministicFaults, PhasedPoisson, PoissonProcess, WeibullRenewal};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn kinds() -> Vec<FaultKind> {
        let rng = || StdRng::seed_from_u64(0);
        vec![
            FaultKind::Poisson(PoissonProcess::new(1.4e-3, rng())),
            FaultKind::Deterministic(DeterministicFaults::new(vec![3.0, 40.0, 41.5, 900.0])),
            FaultKind::Weibull(WeibullRenewal::new(0.7, 600.0, rng())),
            FaultKind::Burst(BurstProcess::new(1e-4, 5e-2, 2_000.0, 150.0, rng())),
            FaultKind::Phased(PhasedPoisson::new(
                vec![(900.0, 1e-4), (100.0, 2e-2)],
                true,
                rng(),
            )),
        ]
    }

    #[test]
    fn batched_stream_is_bit_identical_to_scalar_for_every_kind() {
        for kind in kinds() {
            let mut scalar = kind.clone();
            scalar.reset(77);
            let mut batched = BatchedFaults::new(kind);
            batched.reset(77);
            for i in 0..200 {
                let s = scalar.next_fault();
                let b = batched.next_fault();
                assert_eq!(s.to_bits(), b.to_bits(), "arrival {i}");
            }
        }
    }

    #[test]
    fn reset_discards_overdraw_and_replays_the_seeded_stream() {
        for kind in kinds() {
            let mut batched = BatchedFaults::new(kind.clone());
            batched.reset(5);
            let first: Vec<u64> = (0..7).map(|_| batched.next_fault().to_bits()).collect();
            // Leave buffered overdraw behind, re-seed, and demand the same
            // prefix a fresh scalar build produces.
            batched.reset(5);
            let replay: Vec<u64> = (0..7).map(|_| batched.next_fault().to_bits()).collect();
            assert_eq!(first, replay);
            let mut scalar = kind;
            scalar.reset(5);
            let fresh: Vec<u64> = (0..7).map(|_| scalar.next_fault().to_bits()).collect();
            assert_eq!(first, fresh);
        }
    }

    #[test]
    fn finite_streams_latch_on_infinity() {
        let sched = FaultKind::Deterministic(DeterministicFaults::new(vec![1.0, 2.0]));
        let mut batched = BatchedFaults::new(sched);
        batched.reset(0);
        assert_eq!(batched.next_fault(), 1.0);
        assert_eq!(batched.next_fault(), 2.0);
        for _ in 0..5 {
            assert_eq!(batched.next_fault(), f64::INFINITY);
        }
    }

    #[test]
    fn zero_rate_poisson_is_fault_free() {
        let mut batched = BatchedFaults::new(FaultKind::Poisson(PoissonProcess::new(
            0.0,
            StdRng::seed_from_u64(1),
        )));
        batched.reset(9);
        assert_eq!(batched.next_fault(), f64::INFINITY);
        assert_eq!(batched.next_fault(), f64::INFINITY);
    }

    #[test]
    fn refills_never_grow_the_reserved_buffer() {
        let mut batched = BatchedFaults::new(FaultKind::Poisson(PoissonProcess::new(
            0.1,
            StdRng::seed_from_u64(2),
        )));
        batched.reset(3);
        let cap = batched.batch.buf.capacity();
        for _ in 0..500 {
            batched.next_fault();
        }
        assert_eq!(batched.batch.buf.capacity(), cap);
        assert!(batched.batch.pending().len() <= cap);
    }

    #[test]
    fn mean_rate_passes_through() {
        let batched = BatchedFaults::new(FaultKind::Poisson(PoissonProcess::new(
            2.5e-3,
            StdRng::seed_from_u64(1),
        )));
        assert_eq!(batched.mean_rate(), Some(2.5e-3));
    }
}
