//! Transient-fault arrival processes for the EACP workspace.
//!
//! The DATE 2006 paper injects faults into the DMR pair as a *Poisson process
//! with rate `λ`* (faults per unit wall-clock time at the normalized minimum
//! processor speed). This crate provides that process plus several
//! alternatives used by robustness experiments and tests:
//!
//! * [`PoissonProcess`] — the paper's model; memoryless, rate `λ`.
//! * [`DeterministicFaults`] — a fixed schedule of fault instants, used by
//!   unit tests to exercise exact rollback scenarios.
//! * [`WeibullRenewal`] — renewal process with Weibull inter-arrivals
//!   (burstier than Poisson for shape < 1), a robustness extension.
//! * [`BurstProcess`] — two-state Markov-modulated Poisson process capturing
//!   radiation bursts (e.g. solar events for the paper's airborne/space
//!   scenarios).
//!
//! All processes implement [`FaultProcess`]: an infinite nondecreasing stream
//! of absolute fault times, pulled one at a time by the simulator. Processes
//! are deterministic given their RNG seed, which is what makes every
//! experiment in this workspace reproducible.
//!
//! # Examples
//!
//! ```
//! use eacp_faults::{FaultProcess, PoissonProcess};
//! use rand::SeedableRng;
//!
//! let rng = rand::rngs::StdRng::seed_from_u64(7);
//! let mut p = PoissonProcess::new(0.01, rng);
//! let t1 = p.next_fault();
//! let t2 = p.next_fault();
//! assert!(0.0 < t1 && t1 < t2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

pub mod batch;
pub mod sampling;

pub use batch::{BatchedFaults, FaultBatch};
pub use sampling::{
    fill_exponential_deltas, fill_weibull_deltas, sample_exponential, sample_weibull,
};

/// An infinite, nondecreasing stream of absolute fault arrival times.
///
/// Implementations return [`f64::INFINITY`] once (and forever after) the
/// process produces no further faults; the simulator treats that as
/// "fault-free from here on".
pub trait FaultProcess {
    /// Returns the next fault arrival time.
    ///
    /// Successive calls return a nondecreasing sequence.
    fn next_fault(&mut self) -> f64;

    /// The long-run average fault rate (faults per unit time), if defined.
    ///
    /// Used for diagnostics only; adaptive policies receive the *nominal*
    /// rate `λ` through their own configuration, mirroring the paper where
    /// the policy's assumed rate and the injected rate coincide.
    fn mean_rate(&self) -> Option<f64> {
        None
    }
}

impl<T: FaultProcess + ?Sized> FaultProcess for Box<T> {
    fn next_fault(&mut self) -> f64 {
        (**self).next_fault()
    }

    fn mean_rate(&self) -> Option<f64> {
        (**self).mean_rate()
    }
}

/// The closed set of fault processes, as one concrete type.
///
/// `Box<dyn FaultProcess>` pays a heap allocation per construction and a
/// virtual call per arrival; Monte-Carlo loops construct one process per
/// *block* as a `FaultKind` and [`reset`](FaultKind::reset) it per
/// replication instead. The enum match is a perfectly-predicted branch
/// (one variant per job) and lets each process's sampler inline into the
/// simulation loop. Custom processes outside this set keep using the boxed
/// trait object — the open, slower path.
#[derive(Debug, Clone)]
#[allow(missing_docs)]
pub enum FaultKind {
    Poisson(PoissonProcess<StdRng>),
    Deterministic(DeterministicFaults),
    Weibull(WeibullRenewal<StdRng>),
    Burst(BurstProcess<StdRng>),
    Phased(PhasedPoisson<StdRng>),
}

impl FaultKind {
    /// Rewinds the process to time zero, re-seeded — **exactly** the
    /// stream a fresh construction from the same parameters with
    /// `StdRng::seed_from_u64(seed)` would produce.
    ///
    /// This is the pooling contract replication loops rely on: one
    /// instance per block, `reset(seed)` per replication, bit-identical
    /// arrivals to building from scratch.
    pub fn reset(&mut self, seed: u64) {
        match self {
            FaultKind::Poisson(p) => p.restart(StdRng::seed_from_u64(seed)),
            FaultKind::Deterministic(d) => d.restart(),
            FaultKind::Weibull(w) => w.restart(StdRng::seed_from_u64(seed)),
            FaultKind::Burst(b) => b.restart(StdRng::seed_from_u64(seed)),
            FaultKind::Phased(p) => p.restart(StdRng::seed_from_u64(seed)),
        }
    }
}

impl FaultProcess for FaultKind {
    #[inline]
    fn next_fault(&mut self) -> f64 {
        match self {
            FaultKind::Poisson(p) => p.next_fault(),
            FaultKind::Deterministic(d) => d.next_fault(),
            FaultKind::Weibull(w) => w.next_fault(),
            FaultKind::Burst(b) => b.next_fault(),
            FaultKind::Phased(p) => p.next_fault(),
        }
    }

    fn mean_rate(&self) -> Option<f64> {
        match self {
            FaultKind::Poisson(p) => p.mean_rate(),
            FaultKind::Deterministic(d) => d.mean_rate(),
            FaultKind::Weibull(w) => w.mean_rate(),
            FaultKind::Burst(b) => b.mean_rate(),
            FaultKind::Phased(p) => p.mean_rate(),
        }
    }
}

/// Homogeneous Poisson fault arrivals with rate `λ` — the paper's model.
///
/// Inter-arrival times are i.i.d. `Exp(λ)`. A non-positive rate yields a
/// fault-free stream.
#[derive(Debug, Clone)]
pub struct PoissonProcess<R = StdRng> {
    rate: f64,
    now: f64,
    rng: R,
}

impl<R: Rng> PoissonProcess<R> {
    /// Creates a Poisson process with the given rate and RNG.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is NaN.
    pub fn new(rate: f64, rng: R) -> Self {
        assert!(!rate.is_nan(), "fault rate must not be NaN");
        Self {
            rate,
            now: 0.0,
            rng,
        }
    }

    /// The configured arrival rate `λ`.
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// Rewinds the process to time zero with a fresh RNG — exactly
    /// equivalent to `PoissonProcess::new(self.rate(), rng)`.
    pub fn restart(&mut self, rng: R) {
        self.now = 0.0;
        self.rng = rng;
    }
}

impl<R: Rng> FaultProcess for PoissonProcess<R> {
    #[inline]
    fn next_fault(&mut self) -> f64 {
        if self.rate <= 0.0 {
            return f64::INFINITY;
        }
        self.now += sample_exponential(&mut self.rng, self.rate);
        self.now
    }

    fn mean_rate(&self) -> Option<f64> {
        Some(self.rate.max(0.0))
    }
}

/// A fixed, pre-sorted schedule of fault instants.
///
/// Once the schedule is exhausted the stream returns [`f64::INFINITY`].
/// This is the workhorse of the deterministic unit tests: place a fault at
/// an exact position inside a checkpoint interval and assert the rollback
/// target, wasted work and energy to the last ulp.
#[derive(Debug, Clone, Default)]
pub struct DeterministicFaults {
    times: Vec<f64>,
    next: usize,
}

impl DeterministicFaults {
    /// Creates a schedule from fault instants, sorting them ascending.
    ///
    /// # Panics
    ///
    /// Panics if any instant is NaN or negative.
    pub fn new(mut times: Vec<f64>) -> Self {
        assert!(
            times.iter().all(|t| t.is_finite() && *t >= 0.0),
            "fault instants must be finite and non-negative"
        );
        // Total order: the assert above rules out NaN, and for the
        // remaining finite non-negative values `total_cmp` agrees with
        // `partial_cmp` — same ordering, no panic path at all.
        times.sort_by(f64::total_cmp);
        Self { times, next: 0 }
    }

    /// A schedule with no faults at all.
    pub fn none() -> Self {
        Self::default()
    }

    /// An empty schedule whose buffer can hold `capacity` instants before
    /// [`reload`](Self::reload) has to grow it. Pooled replication loops
    /// use this so the window buffer is sized in setup rather than by the
    /// densest window the fault process happens to produce mid-run.
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            times: Vec::with_capacity(capacity),
            next: 0,
        }
    }

    /// Remaining (not yet emitted) fault instants.
    pub fn remaining(&self) -> &[f64] {
        &self.times[self.next.min(self.times.len())..]
    }

    /// Rewinds the schedule to its first instant — equivalent to
    /// rebuilding from the same times, without re-sorting or reallocating.
    pub fn restart(&mut self) {
        self.next = 0;
    }

    /// Replaces the schedule in place with `times` (sorted ascending) and
    /// rewinds to the first instant — exactly equivalent to
    /// `*self = DeterministicFaults::new(times.to_vec())`, but reusing the
    /// existing buffer. Replication loops that feed each run a fresh fault
    /// window through one pooled schedule stop allocating once the buffer's
    /// capacity reaches the largest window the workload produces.
    ///
    /// # Panics
    ///
    /// Panics if any instant is NaN or negative.
    pub fn reload(&mut self, times: &[f64]) {
        assert!(
            times.iter().all(|t| t.is_finite() && *t >= 0.0),
            "fault instants must be finite and non-negative"
        );
        self.times.clear();
        self.times.extend_from_slice(times);
        // Same total-order argument as `new`; `sort_unstable_by` is
        // bit-identical to the stable sort for f64 keys, because
        // `total_cmp`-equal values have identical bit patterns.
        self.times.sort_unstable_by(f64::total_cmp);
        self.next = 0;
    }
}

impl FaultProcess for DeterministicFaults {
    #[inline]
    fn next_fault(&mut self) -> f64 {
        match self.times.get(self.next) {
            Some(&t) => {
                self.next += 1;
                t
            }
            None => f64::INFINITY,
        }
    }
}

impl FromIterator<f64> for DeterministicFaults {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        Self::new(iter.into_iter().collect())
    }
}

/// Renewal process with Weibull(shape, scale) inter-arrival times.
///
/// * `shape < 1`: clustered ("infant-mortality") arrivals — bursty.
/// * `shape = 1`: reduces exactly to [`PoissonProcess`] with `λ = 1/scale`.
/// * `shape > 1`: regular, quasi-periodic arrivals.
///
/// Mean inter-arrival time is `scale · Γ(1 + 1/shape)`.
#[derive(Debug, Clone)]
pub struct WeibullRenewal<R = StdRng> {
    shape: f64,
    scale: f64,
    now: f64,
    rng: R,
}

impl<R: Rng> WeibullRenewal<R> {
    /// Creates a Weibull renewal process.
    ///
    /// # Panics
    ///
    /// Panics unless `shape > 0` and `scale > 0`.
    pub fn new(shape: f64, scale: f64, rng: R) -> Self {
        assert!(shape > 0.0, "Weibull shape must be positive");
        assert!(scale > 0.0, "Weibull scale must be positive");
        Self {
            shape,
            scale,
            now: 0.0,
            rng,
        }
    }

    /// The shape parameter.
    pub fn shape(&self) -> f64 {
        self.shape
    }

    /// The scale parameter.
    pub fn scale(&self) -> f64 {
        self.scale
    }

    /// Rewinds the process to time zero with a fresh RNG — exactly
    /// equivalent to `WeibullRenewal::new(shape, scale, rng)`.
    pub fn restart(&mut self, rng: R) {
        self.now = 0.0;
        self.rng = rng;
    }
}

impl<R: Rng> FaultProcess for WeibullRenewal<R> {
    #[inline]
    fn next_fault(&mut self) -> f64 {
        self.now += sample_weibull(&mut self.rng, self.shape, self.scale);
        self.now
    }

    fn mean_rate(&self) -> Option<f64> {
        // 1 / (scale * Γ(1 + 1/shape)) via Lanczos-free Stirling series is
        // overkill here; use the exact values for common shapes and a
        // numerically adequate Lanczos approximation otherwise.
        Some(1.0 / (self.scale * gamma(1.0 + 1.0 / self.shape)))
    }
}

/// Two-state Markov-modulated Poisson process ("quiet" / "burst").
///
/// The environment alternates between a quiet state with fault rate
/// `quiet_rate` and a burst state with `burst_rate`; dwell times in each
/// state are exponential with means `mean_quiet_dwell` and
/// `mean_burst_dwell`. This models radiation bursts for the harsh-environment
/// scenarios motivating the paper (autonomous airborne / space systems).
#[derive(Debug, Clone)]
pub struct BurstProcess<R = StdRng> {
    quiet_rate: f64,
    burst_rate: f64,
    quiet_leave_rate: f64,
    burst_leave_rate: f64,
    in_burst: bool,
    now: f64,
    rng: R,
}

impl<R: Rng> BurstProcess<R> {
    /// Creates a burst process starting in the quiet state at time zero.
    ///
    /// # Panics
    ///
    /// Panics if any rate/dwell is not positive and finite (except
    /// `quiet_rate`, which may be zero for "no faults outside bursts").
    pub fn new(
        quiet_rate: f64,
        burst_rate: f64,
        mean_quiet_dwell: f64,
        mean_burst_dwell: f64,
        rng: R,
    ) -> Self {
        assert!(
            quiet_rate >= 0.0 && quiet_rate.is_finite(),
            "quiet rate must be non-negative and finite"
        );
        assert!(
            burst_rate > 0.0 && burst_rate.is_finite(),
            "burst rate must be positive and finite"
        );
        assert!(
            mean_quiet_dwell > 0.0 && mean_quiet_dwell.is_finite(),
            "quiet dwell must be positive and finite"
        );
        assert!(
            mean_burst_dwell > 0.0 && mean_burst_dwell.is_finite(),
            "burst dwell must be positive and finite"
        );
        Self {
            quiet_rate,
            burst_rate,
            quiet_leave_rate: 1.0 / mean_quiet_dwell,
            burst_leave_rate: 1.0 / mean_burst_dwell,
            in_burst: false,
            now: 0.0,
            rng,
        }
    }

    /// Whether the process is currently in the burst state.
    pub fn in_burst(&self) -> bool {
        self.in_burst
    }

    /// Rewinds to the quiet state at time zero with a fresh RNG — exactly
    /// equivalent to rebuilding with the same rates and dwells.
    pub fn restart(&mut self, rng: R) {
        self.in_burst = false;
        self.now = 0.0;
        self.rng = rng;
    }
}

impl<R: Rng> FaultProcess for BurstProcess<R> {
    #[inline]
    fn next_fault(&mut self) -> f64 {
        // Competing exponentials: in each state, the sooner of (next fault,
        // state switch) wins; iterate until a fault fires.
        loop {
            let (fault_rate, leave_rate) = if self.in_burst {
                (self.burst_rate, self.burst_leave_rate)
            } else {
                (self.quiet_rate, self.quiet_leave_rate)
            };
            let to_switch = sample_exponential(&mut self.rng, leave_rate);
            let to_fault = if fault_rate > 0.0 {
                sample_exponential(&mut self.rng, fault_rate)
            } else {
                f64::INFINITY
            };
            if to_fault < to_switch {
                self.now += to_fault;
                return self.now;
            }
            self.now += to_switch;
            self.in_burst = !self.in_burst;
        }
    }

    fn mean_rate(&self) -> Option<f64> {
        // Stationary distribution of the two-state chain weights the rates.
        let pi_burst = self.quiet_leave_rate / (self.quiet_leave_rate + self.burst_leave_rate);
        Some(pi_burst * self.burst_rate + (1.0 - pi_burst) * self.quiet_rate)
    }
}

/// Lanczos approximation of the gamma function, adequate for `x in (1, 2]`
/// as used by [`WeibullRenewal::mean_rate`].
fn gamma(x: f64) -> f64 {
    // g = 7, n = 9 Lanczos coefficients.
    const G: f64 = 7.0;
    const COEF: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula.
        std::f64::consts::PI / ((std::f64::consts::PI * x).sin() * gamma(1.0 - x))
    } else {
        let x = x - 1.0;
        let mut a = COEF[0];
        let t = x + G + 0.5;
        for (i, &c) in COEF.iter().enumerate().skip(1) {
            a += c / (x + i as f64);
        }
        (2.0 * std::f64::consts::PI).sqrt() * t.powf(x + 0.5) * (-t).exp() * a
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    #[test]
    fn poisson_stream_is_increasing() {
        let mut p = PoissonProcess::new(0.05, rng(1));
        let mut last = 0.0;
        for _ in 0..1000 {
            let t = p.next_fault();
            assert!(t > last);
            last = t;
        }
    }

    #[test]
    fn poisson_empirical_rate_matches() {
        let lambda = 0.01;
        let mut p = PoissonProcess::new(lambda, rng(42));
        let n = 200_000;
        let mut last = 0.0;
        for _ in 0..n {
            last = p.next_fault();
        }
        let empirical = n as f64 / last;
        assert!(
            (empirical - lambda).abs() / lambda < 0.02,
            "empirical rate {empirical} vs {lambda}"
        );
    }

    #[test]
    fn poisson_zero_rate_is_fault_free() {
        let mut p = PoissonProcess::new(0.0, rng(3));
        assert_eq!(p.next_fault(), f64::INFINITY);
        assert_eq!(p.mean_rate(), Some(0.0));
    }

    #[test]
    fn deterministic_schedule_sorted_and_exhausts() {
        let mut d = DeterministicFaults::new(vec![5.0, 1.0, 3.0]);
        assert_eq!(d.next_fault(), 1.0);
        assert_eq!(d.next_fault(), 3.0);
        assert_eq!(d.remaining(), &[5.0]);
        assert_eq!(d.next_fault(), 5.0);
        assert_eq!(d.next_fault(), f64::INFINITY);
        assert_eq!(d.next_fault(), f64::INFINITY);
    }

    #[test]
    fn deterministic_none_is_fault_free() {
        let mut d = DeterministicFaults::none();
        assert_eq!(d.next_fault(), f64::INFINITY);
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn deterministic_rejects_negative() {
        DeterministicFaults::new(vec![-1.0]);
    }

    #[test]
    fn deterministic_reload_equals_rebuild() {
        let mut pooled = DeterministicFaults::new(vec![9.0, 2.0]);
        pooled.next_fault();
        for times in [vec![5.0, 1.0, 3.0], vec![], vec![0.0, 0.0, 7.5]] {
            pooled.reload(&times);
            let mut fresh = DeterministicFaults::new(times);
            for _ in 0..4 {
                assert_eq!(pooled.next_fault().to_bits(), fresh.next_fault().to_bits());
            }
        }
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn deterministic_reload_rejects_nan() {
        DeterministicFaults::none().reload(&[f64::NAN]);
    }

    #[test]
    fn weibull_shape_one_matches_poisson_rate() {
        let scale = 100.0;
        let mut w = WeibullRenewal::new(1.0, scale, rng(9));
        let n = 100_000;
        let mut last = 0.0;
        for _ in 0..n {
            last = w.next_fault();
        }
        let empirical_mean = last / n as f64;
        assert!(
            (empirical_mean - scale).abs() / scale < 0.02,
            "mean inter-arrival {empirical_mean} vs {scale}"
        );
        let rate = w.mean_rate().unwrap();
        assert!((rate - 1.0 / scale).abs() / (1.0 / scale) < 1e-6);
    }

    #[test]
    fn weibull_mean_rate_uses_gamma() {
        // shape 2 ⇒ mean = scale·Γ(1.5) = scale·(√π/2).
        let w = WeibullRenewal::new(2.0, 10.0, rng(5));
        let expected = 1.0 / (10.0 * (std::f64::consts::PI.sqrt() / 2.0));
        assert!((w.mean_rate().unwrap() - expected).abs() < 1e-9);
    }

    #[test]
    fn burst_process_rate_between_extremes() {
        let mut b = BurstProcess::new(0.001, 0.1, 1000.0, 100.0, rng(11));
        let n = 50_000;
        let mut last = 0.0;
        for _ in 0..n {
            let t = b.next_fault();
            assert!(t >= last);
            last = t;
        }
        let empirical = n as f64 / last;
        let stationary = b.mean_rate().unwrap();
        assert!(empirical > 0.001 && empirical < 0.1);
        assert!(
            (empirical - stationary).abs() / stationary < 0.1,
            "empirical {empirical} vs stationary {stationary}"
        );
    }

    #[test]
    fn boxed_process_delegates() {
        let mut b: Box<dyn FaultProcess> = Box::new(DeterministicFaults::new(vec![2.0]));
        assert_eq!(b.next_fault(), 2.0);
        assert_eq!(b.next_fault(), f64::INFINITY);
    }

    #[test]
    fn gamma_spot_values() {
        assert!((gamma(1.0) - 1.0).abs() < 1e-10);
        assert!((gamma(2.0) - 1.0).abs() < 1e-10);
        assert!((gamma(1.5) - std::f64::consts::PI.sqrt() / 2.0).abs() < 1e-10);
        assert!((gamma(5.0) - 24.0).abs() < 1e-7);
    }
}

/// Non-homogeneous Poisson process with a piecewise-constant rate profile
/// ("mission phases": e.g. launch → cruise → radiation-belt transit).
///
/// The profile is a sequence of `(duration, rate)` phases. When `repeat`
/// is true the profile cycles forever (orbital periods); otherwise the
/// last phase's rate holds for all later times.
///
/// Sampling uses the inversion method on the integrated rate, which is
/// exact for piecewise-constant profiles.
#[derive(Debug, Clone)]
pub struct PhasedPoisson<R = StdRng> {
    phases: Vec<(f64, f64)>,
    repeat: bool,
    now: f64,
    rng: R,
}

impl<R: Rng> PhasedPoisson<R> {
    /// Creates a phased process starting at phase 0, time 0.
    ///
    /// # Panics
    ///
    /// Panics if `phases` is empty, any duration is not positive/finite,
    /// or any rate is negative/non-finite.
    pub fn new(phases: Vec<(f64, f64)>, repeat: bool, rng: R) -> Self {
        assert!(!phases.is_empty(), "at least one phase is required");
        for &(d, r) in &phases {
            assert!(
                d > 0.0 && d.is_finite(),
                "phase durations must be positive and finite"
            );
            assert!(
                r >= 0.0 && r.is_finite(),
                "phase rates must be non-negative and finite"
            );
        }
        Self {
            phases,
            repeat,
            now: 0.0,
            rng,
        }
    }

    /// The instantaneous rate at absolute time `t`.
    pub fn rate_at(&self, t: f64) -> f64 {
        let cycle: f64 = self.phases.iter().map(|(d, _)| d).sum();
        let mut pos = if self.repeat {
            t % cycle
        } else if t >= cycle {
            // audit:allow(panic): the constructor rejects empty profiles.
            return self.phases.last().expect("non-empty").1;
        } else {
            t
        };
        for &(d, r) in &self.phases {
            if pos < d {
                return r;
            }
            pos -= d;
        }
        // audit:allow(panic): the constructor rejects empty profiles.
        self.phases.last().expect("non-empty").1
    }

    /// Rewinds to phase 0 at time zero with a fresh RNG — exactly
    /// equivalent to rebuilding with the same profile.
    pub fn restart(&mut self, rng: R) {
        self.now = 0.0;
        self.rng = rng;
    }
}

impl<R: Rng> FaultProcess for PhasedPoisson<R> {
    #[inline]
    fn next_fault(&mut self) -> f64 {
        // Inversion: find t with ∫_{now}^{t} λ(s) ds = E, E ~ Exp(1).
        let mut target = sample_exponential(&mut self.rng, 1.0);
        let cycle: f64 = self.phases.iter().map(|(d, _)| d).sum();
        // Guard: a repeating all-zero profile (or trailing zero rate when
        // not repeating) never produces another fault.
        let cycle_mass: f64 = self.phases.iter().map(|(d, r)| d * r).sum();
        loop {
            // Position inside the profile.
            let pos = if self.repeat {
                self.now % cycle
            } else {
                self.now
            };
            if !self.repeat && pos >= cycle {
                // audit:allow(panic): the constructor rejects empty
                // profiles.
                let tail_rate = self.phases.last().expect("non-empty").1;
                if tail_rate <= 0.0 {
                    return f64::INFINITY;
                }
                self.now += target / tail_rate;
                return self.now;
            }
            if self.repeat && cycle_mass <= 0.0 {
                return f64::INFINITY;
            }
            // Walk phases from `pos`.
            let mut acc = 0.0;
            let mut advanced = false;
            for &(d, r) in &self.phases {
                if pos >= acc + d {
                    acc += d;
                    continue;
                }
                let offset = pos - acc;
                let remaining = d - offset;
                let mass = remaining * r;
                if mass >= target && r > 0.0 {
                    self.now += target / r;
                    return self.now;
                }
                target -= mass;
                self.now += remaining;
                advanced = true;
                break;
            }
            if !advanced {
                // pos was exactly at the profile end; loop re-normalizes.
                self.now += f64::EPSILON.max(self.now * 1e-15);
            }
        }
    }

    fn mean_rate(&self) -> Option<f64> {
        let cycle: f64 = self.phases.iter().map(|(d, _)| d).sum();
        let mass: f64 = self.phases.iter().map(|(d, r)| d * r).sum();
        if self.repeat {
            Some(mass / cycle)
        } else {
            // audit:allow(panic): the constructor rejects empty profiles.
            Some(self.phases.last().expect("non-empty").1)
        }
    }
}

#[cfg(test)]
mod phased_tests {
    use super::*;
    use rand::SeedableRng;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    #[test]
    fn single_phase_matches_poisson_rate() {
        let rate = 5e-3;
        let mut p = PhasedPoisson::new(vec![(1e9, rate)], false, rng(4));
        let n = 100_000;
        let mut last = 0.0;
        for _ in 0..n {
            last = p.next_fault();
        }
        let empirical = n as f64 / last;
        assert!((empirical - rate).abs() / rate < 0.02, "rate {empirical}");
    }

    #[test]
    fn zero_rate_phase_is_fault_free_inside() {
        // Quiet for 1000, hot afterwards (non-repeating).
        let mut p = PhasedPoisson::new(vec![(1_000.0, 0.0), (1.0, 1.0)], false, rng(7));
        for _ in 0..100 {
            let t = p.next_fault();
            assert!(t > 1_000.0, "fault at {t} inside the quiet phase");
        }
    }

    #[test]
    fn repeating_profile_concentrates_faults_in_hot_windows() {
        // 900 quiet / 100 hot per cycle of 1000.
        let mut p = PhasedPoisson::new(vec![(900.0, 0.0), (100.0, 0.05)], true, rng(11));
        let mut in_hot = 0;
        let n = 5_000;
        for _ in 0..n {
            let t = p.next_fault();
            let pos = t % 1_000.0;
            if pos >= 900.0 {
                in_hot += 1;
            }
        }
        assert_eq!(in_hot, n, "all faults must land in the hot window");
    }

    #[test]
    fn mean_rate_is_time_average() {
        let p = PhasedPoisson::new(vec![(900.0, 0.0), (100.0, 0.05)], true, rng(1));
        let expected = 100.0 * 0.05 / 1_000.0;
        assert!((p.mean_rate().unwrap() - expected).abs() < 1e-12);
    }

    #[test]
    fn rate_at_reports_profile() {
        let p = PhasedPoisson::new(vec![(10.0, 1.0), (10.0, 2.0)], true, rng(1));
        assert_eq!(p.rate_at(5.0), 1.0);
        assert_eq!(p.rate_at(15.0), 2.0);
        assert_eq!(p.rate_at(25.0), 1.0); // wrapped
        let q = PhasedPoisson::new(vec![(10.0, 1.0), (10.0, 2.0)], false, rng(1));
        assert_eq!(q.rate_at(100.0), 2.0); // held
    }

    #[test]
    fn all_zero_repeating_profile_is_fault_free() {
        let mut p = PhasedPoisson::new(vec![(10.0, 0.0)], true, rng(2));
        assert_eq!(p.next_fault(), f64::INFINITY);
    }

    #[test]
    #[should_panic(expected = "at least one phase")]
    fn rejects_empty_profile() {
        PhasedPoisson::new(vec![], true, rng(0));
    }
}
