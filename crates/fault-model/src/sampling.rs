//! Primitive distribution sampling used by the fault processes.
//!
//! These are implemented directly on top of [`rand::Rng`] (inverse-CDF
//! method) rather than pulling in `rand_distr`, keeping the dependency
//! surface minimal and the sampling fully transparent for review.

use rand::Rng;

/// Samples `Exp(rate)` via inverse CDF: `-ln(1 - U) / rate` with `U ∈ [0, 1)`.
///
/// # Panics
///
/// Panics unless `rate > 0` and finite.
///
/// # Examples
///
/// ```
/// use rand::SeedableRng;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let x = eacp_faults::sample_exponential(&mut rng, 2.0);
/// assert!(x > 0.0);
/// ```
#[inline]
pub fn sample_exponential<R: Rng + ?Sized>(rng: &mut R, rate: f64) -> f64 {
    assert!(
        rate > 0.0 && rate.is_finite(),
        "exponential rate must be positive and finite"
    );
    let u: f64 = rng.gen(); // [0, 1)
                            // 1 - u ∈ (0, 1]: ln never sees zero.
    -(1.0 - u).ln() / rate
}

/// Samples `Weibull(shape, scale)` via inverse CDF:
/// `scale · (-ln(1 - U))^{1/shape}`.
///
/// # Panics
///
/// Panics unless `shape > 0` and `scale > 0` (both finite).
#[inline]
pub fn sample_weibull<R: Rng + ?Sized>(rng: &mut R, shape: f64, scale: f64) -> f64 {
    assert!(
        shape > 0.0 && shape.is_finite(),
        "Weibull shape must be positive and finite"
    );
    assert!(
        scale > 0.0 && scale.is_finite(),
        "Weibull scale must be positive and finite"
    );
    let u: f64 = rng.gen();
    scale * (-(1.0 - u).ln()).powf(1.0 / shape)
}

/// Appends `n` i.i.d. `Exp(rate)` inter-arrival deltas to `out`, drawing
/// uniforms in the exact stream order [`sample_exponential`] would.
///
/// Two passes: first the `n` RNG draws (amortizing RNG state updates),
/// then the inverse-CDF transform over the fresh tail — per-element math
/// identical to the scalar sampler, so the appended deltas are
/// bit-identical to `n` successive [`sample_exponential`] calls.
///
/// # Panics
///
/// Panics unless `rate > 0` and finite.
#[inline]
pub fn fill_exponential_deltas<R: Rng + ?Sized>(
    rng: &mut R,
    rate: f64,
    out: &mut Vec<f64>,
    n: usize,
) {
    assert!(
        rate > 0.0 && rate.is_finite(),
        "exponential rate must be positive and finite"
    );
    let start = out.len();
    for _ in 0..n {
        out.push(rng.gen::<f64>());
    }
    for u in &mut out[start..] {
        *u = -(1.0 - *u).ln() / rate;
    }
}

/// Appends `n` i.i.d. `Weibull(shape, scale)` deltas to `out`, drawing
/// uniforms in the exact stream order [`sample_weibull`] would; the
/// block-transform counterpart of [`fill_exponential_deltas`].
///
/// # Panics
///
/// Panics unless `shape > 0` and `scale > 0` (both finite).
#[inline]
pub fn fill_weibull_deltas<R: Rng + ?Sized>(
    rng: &mut R,
    shape: f64,
    scale: f64,
    out: &mut Vec<f64>,
    n: usize,
) {
    assert!(
        shape > 0.0 && shape.is_finite(),
        "Weibull shape must be positive and finite"
    );
    assert!(
        scale > 0.0 && scale.is_finite(),
        "Weibull scale must be positive and finite"
    );
    let start = out.len();
    for _ in 0..n {
        out.push(rng.gen::<f64>());
    }
    // `1.0 / shape` is the same f64 the scalar sampler computes per call.
    let inv_shape = 1.0 / shape;
    for u in &mut out[start..] {
        *u = scale * (-(1.0 - *u).ln()).powf(inv_shape);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn exponential_mean_and_positivity() {
        let mut rng = StdRng::seed_from_u64(77);
        let rate = 0.25;
        let n = 200_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x = sample_exponential(&mut rng, rate);
            assert!(x >= 0.0);
            sum += x;
        }
        let mean = sum / n as f64;
        assert!(
            (mean - 1.0 / rate).abs() / (1.0 / rate) < 0.02,
            "mean {mean}"
        );
    }

    #[test]
    fn weibull_median_matches_closed_form() {
        let mut rng = StdRng::seed_from_u64(123);
        let (shape, scale) = (0.7, 50.0);
        let n = 100_001;
        let mut xs: Vec<f64> = (0..n)
            .map(|_| sample_weibull(&mut rng, shape, scale))
            .collect();
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = xs[n / 2];
        let expected = scale * (2f64.ln()).powf(1.0 / shape);
        assert!(
            (median - expected).abs() / expected < 0.03,
            "median {median} vs {expected}"
        );
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn exponential_rejects_zero_rate() {
        let mut rng = StdRng::seed_from_u64(1);
        sample_exponential(&mut rng, 0.0);
    }

    #[test]
    #[should_panic(expected = "shape")]
    fn weibull_rejects_bad_shape() {
        let mut rng = StdRng::seed_from_u64(1);
        sample_weibull(&mut rng, 0.0, 1.0);
    }

    #[test]
    fn exponential_block_fill_is_bit_identical_to_scalar() {
        let rate = 1.4e-3;
        let mut scalar_rng = StdRng::seed_from_u64(99);
        let mut block_rng = StdRng::seed_from_u64(99);
        let mut block = Vec::new();
        fill_exponential_deltas(&mut block_rng, rate, &mut block, 257);
        for (i, d) in block.iter().enumerate() {
            let s = sample_exponential(&mut scalar_rng, rate);
            assert_eq!(s.to_bits(), d.to_bits(), "delta {i}");
        }
    }

    #[test]
    fn weibull_block_fill_is_bit_identical_to_scalar() {
        let (shape, scale) = (0.7, 600.0);
        let mut scalar_rng = StdRng::seed_from_u64(1234);
        let mut block_rng = StdRng::seed_from_u64(1234);
        let mut block = Vec::new();
        fill_weibull_deltas(&mut block_rng, shape, scale, &mut block, 129);
        for (i, d) in block.iter().enumerate() {
            let s = sample_weibull(&mut scalar_rng, shape, scale);
            assert_eq!(s.to_bits(), d.to_bits(), "delta {i}");
        }
    }

    #[test]
    fn block_fills_append_after_existing_content() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut out = vec![42.0];
        fill_exponential_deltas(&mut rng, 2.0, &mut out, 3);
        assert_eq!(out.len(), 4);
        assert_eq!(out[0], 42.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn exponential_block_fill_rejects_zero_rate() {
        let mut rng = StdRng::seed_from_u64(1);
        fill_exponential_deltas(&mut rng, 0.0, &mut Vec::new(), 1);
    }
}
