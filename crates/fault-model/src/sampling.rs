//! Primitive distribution sampling used by the fault processes.
//!
//! These are implemented directly on top of [`rand::Rng`] (inverse-CDF
//! method) rather than pulling in `rand_distr`, keeping the dependency
//! surface minimal and the sampling fully transparent for review.

use rand::Rng;

/// Samples `Exp(rate)` via inverse CDF: `-ln(1 - U) / rate` with `U ∈ [0, 1)`.
///
/// # Panics
///
/// Panics unless `rate > 0` and finite.
///
/// # Examples
///
/// ```
/// use rand::SeedableRng;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let x = eacp_faults::sample_exponential(&mut rng, 2.0);
/// assert!(x > 0.0);
/// ```
#[inline]
pub fn sample_exponential<R: Rng + ?Sized>(rng: &mut R, rate: f64) -> f64 {
    assert!(
        rate > 0.0 && rate.is_finite(),
        "exponential rate must be positive and finite"
    );
    let u: f64 = rng.gen(); // [0, 1)
                            // 1 - u ∈ (0, 1]: ln never sees zero.
    -(1.0 - u).ln() / rate
}

/// Samples `Weibull(shape, scale)` via inverse CDF:
/// `scale · (-ln(1 - U))^{1/shape}`.
///
/// # Panics
///
/// Panics unless `shape > 0` and `scale > 0` (both finite).
#[inline]
pub fn sample_weibull<R: Rng + ?Sized>(rng: &mut R, shape: f64, scale: f64) -> f64 {
    assert!(
        shape > 0.0 && shape.is_finite(),
        "Weibull shape must be positive and finite"
    );
    assert!(
        scale > 0.0 && scale.is_finite(),
        "Weibull scale must be positive and finite"
    );
    let u: f64 = rng.gen();
    scale * (-(1.0 - u).ln()).powf(1.0 / shape)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn exponential_mean_and_positivity() {
        let mut rng = StdRng::seed_from_u64(77);
        let rate = 0.25;
        let n = 200_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x = sample_exponential(&mut rng, rate);
            assert!(x >= 0.0);
            sum += x;
        }
        let mean = sum / n as f64;
        assert!(
            (mean - 1.0 / rate).abs() / (1.0 / rate) < 0.02,
            "mean {mean}"
        );
    }

    #[test]
    fn weibull_median_matches_closed_form() {
        let mut rng = StdRng::seed_from_u64(123);
        let (shape, scale) = (0.7, 50.0);
        let n = 100_001;
        let mut xs: Vec<f64> = (0..n)
            .map(|_| sample_weibull(&mut rng, shape, scale))
            .collect();
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = xs[n / 2];
        let expected = scale * (2f64.ln()).powf(1.0 / shape);
        assert!(
            (median - expected).abs() / expected < 0.03,
            "median {median} vs {expected}"
        );
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn exponential_rejects_zero_rate() {
        let mut rng = StdRng::seed_from_u64(1);
        sample_exponential(&mut rng, 0.0);
    }

    #[test]
    #[should_panic(expected = "shape")]
    fn weibull_rejects_bad_shape() {
        let mut rng = StdRng::seed_from_u64(1);
        sample_weibull(&mut rng, 0.0, 1.0);
    }
}
