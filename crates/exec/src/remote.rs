//! Remote execution transport: the networked [`Worker`] and the server it
//! talks to — std-only TCP, no async runtime, no serde.
//!
//! This closes the ROADMAP's `RemoteRunner` item. The pieces:
//!
//! * **Frame codec** ([`write_frame`] / [`read_frame`]) — a 4-byte
//!   big-endian length prefix followed by a UTF-8 JSON payload, capped at
//!   [`MAX_FRAME_BYTES`]. Truncated, oversized or non-UTF-8 frames are
//!   [`SpecError`]s, never panics; the oversized check runs *before* the
//!   payload allocation, so a hostile length prefix cannot balloon memory.
//! * **Protocol** — version-tagged request/response objects in the
//!   workspace's hand-rolled JSON. A request is `ping` or `run_block`
//!   (the job's full [`ExperimentSpec`] plus a `[lo, hi)` replication
//!   range); a response carries the partial [`Summary`] in the lossless
//!   raw-parts encoding from `eacp_spec::report`, or an error string.
//! * **[`RemoteServer`]** — the `eacp serve` loop: accept, read requests,
//!   run each block with the same [`run_block`] the local runners use,
//!   reply. One thread per connection, sequential requests within it.
//! * **[`RemoteWorker`]** — the client side of the [`Worker`] seam. Each
//!   leased block becomes one request: connect (with timeout), send,
//!   await the partial summary (read/write timeouts throughout). Failures
//!   rotate through the configured endpoints with a short backoff; if
//!   every endpoint fails the lease fails, and the work queue re-leases
//!   the block — on the final attempt the worker runs the block
//!   **in-process** instead ([`RemoteWorker::with_fallback_attempt`]), so
//!   a fully dead fleet degrades to local execution rather than a failed
//!   run.
//!
//! Determinism is inherited, not negotiated: per-replication seeding makes
//! a block's partial summary bit-identical wherever it executes, so N
//! servers × M workers — under any failure/retry/fallback schedule —
//! merge to exactly the [`crate::LocalRunner`] summary.

use crate::job::Job;
use crate::queue::{BlockAssignment, InProcessWorker, Worker};
use crate::runner::run_block;
use eacp_sim::{NoopObserver, Summary};
use eacp_spec::{ExperimentSpec, FromJson, Json, QueueSpec, SpecError, ToJson};
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Wire protocol version; bumped on any incompatible frame/JSON change.
pub const PROTOCOL_VERSION: u64 = 1;

/// Hard cap on a single frame's payload. Large enough for any spec or
/// summary this workspace produces, small enough that a corrupt or
/// hostile length prefix cannot exhaust memory.
pub const MAX_FRAME_BYTES: usize = 8 * 1024 * 1024;

/// Writes one length-prefixed frame.
pub fn write_frame<W: Write>(w: &mut W, payload: &str) -> Result<(), SpecError> {
    let bytes = payload.as_bytes();
    if bytes.len() > MAX_FRAME_BYTES {
        return Err(SpecError::invalid(format!(
            "frame payload of {} bytes exceeds the {MAX_FRAME_BYTES}-byte cap",
            bytes.len()
        )));
    }
    let len = (bytes.len() as u32).to_be_bytes();
    w.write_all(&len)
        .and_then(|()| w.write_all(bytes))
        .and_then(|()| w.flush())
        .map_err(|e| SpecError::Io(format!("frame write failed: {e}")))
}

/// Reads one length-prefixed frame. `Ok(None)` is a clean end-of-stream
/// at a frame boundary (the peer closed the connection); anything partial
/// — a truncated prefix, a short payload, an oversized length, non-UTF-8
/// bytes — is an error, never a panic.
pub fn read_frame<R: Read>(r: &mut R) -> Result<Option<String>, SpecError> {
    let mut prefix = [0u8; 4];
    let mut filled = 0;
    while filled < prefix.len() {
        let n = r
            .read(&mut prefix[filled..])
            .map_err(|e| SpecError::Io(format!("frame length read failed: {e}")))?;
        if n == 0 {
            if filled == 0 {
                return Ok(None);
            }
            return Err(SpecError::Io(format!(
                "connection closed mid-frame ({filled} of 4 length bytes)"
            )));
        }
        filled += n;
    }
    let len = u32::from_be_bytes(prefix) as usize;
    if len > MAX_FRAME_BYTES {
        return Err(SpecError::invalid(format!(
            "frame length {len} exceeds the {MAX_FRAME_BYTES}-byte cap"
        )));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload).map_err(|e| {
        SpecError::Io(format!(
            "connection closed mid-frame ({len}-byte payload): {e}"
        ))
    })?;
    String::from_utf8(payload)
        .map(Some)
        .map_err(|e| SpecError::invalid(format!("frame payload is not UTF-8: {e}")))
}

fn versioned(fields: Vec<(&'static str, Json)>) -> Json {
    let mut all = vec![("v", Json::from(PROTOCOL_VERSION))];
    all.extend(fields);
    Json::obj(all)
}

/// Serializes a `run_block` request for `[lo, hi)` of `spec`.
pub fn run_block_request(spec: &ExperimentSpec, lo: u64, hi: u64) -> String {
    versioned(vec![
        ("op", "run_block".into()),
        ("spec", spec.to_json()),
        ("lo", lo.into()),
        ("hi", hi.into()),
    ])
    .pretty()
}

/// Serializes a `ping` request.
pub fn ping_request() -> String {
    versioned(vec![("op", "ping".into())]).pretty()
}

/// Answers one request frame; protocol or execution errors become error
/// responses rather than dropped connections, so the client always learns
/// *why* (and its provenance wrapper names the endpoint and attempt).
pub fn answer_request(text: &str) -> String {
    match answer_inner(text) {
        Ok(response) => response,
        Err(e) => versioned(vec![("error", e.to_string().into())]).pretty(),
    }
}

fn answer_inner(text: &str) -> Result<String, SpecError> {
    let json = Json::parse(text)?;
    let v = json.req("v")?.as_u64()?;
    if v != PROTOCOL_VERSION {
        return Err(SpecError::invalid(format!(
            "unsupported protocol version {v} (this server speaks {PROTOCOL_VERSION})"
        )));
    }
    match json.req("op")?.as_str()? {
        "ping" => Ok(versioned(vec![("ok", true.into())]).pretty()),
        "run_block" => {
            let spec = ExperimentSpec::from_json(json.req("spec")?)?;
            let lo = json.req("lo")?.as_u64()?;
            let hi = json.req("hi")?.as_u64()?;
            let job = Job::from_spec(&spec)?;
            let reps = job.replications();
            if lo > hi || hi > reps {
                return Err(SpecError::invalid(format!(
                    "block range [{lo}, {hi}) is out of bounds for {reps} replications"
                )));
            }
            let summary = run_block(&job, lo, hi, &mut NoopObserver);
            Ok(versioned(vec![("summary", summary.to_json())]).pretty())
        }
        other => Err(SpecError::invalid(format!(
            "unknown op {other:?} (expected ping or run_block)"
        ))),
    }
}

fn serve_connection(stream: TcpStream) {
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = std::io::BufReader::new(read_half);
    let mut writer = stream;
    loop {
        let request = match read_frame(&mut reader) {
            Ok(Some(text)) => text,
            // Clean close or a broken frame: either way the conversation
            // is over; the client's timeouts and retries own recovery.
            Ok(None) | Err(_) => return,
        };
        if write_frame(&mut writer, &answer_request(&request)).is_err() {
            return;
        }
    }
}

fn accept_loop(listener: TcpListener, stop: &AtomicBool) {
    for conn in listener.incoming() {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = conn else { continue };
        std::thread::spawn(move || serve_connection(stream));
    }
}

/// A background block-execution server: the in-process form of
/// `eacp serve`, used by tests and the bench harness. Binds, accepts on a
/// background thread, and answers `run_block`/`ping` requests until
/// [`shutdown`](RemoteServer::shutdown) (or drop).
pub struct RemoteServer {
    endpoint: String,
    stop: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
}

impl RemoteServer {
    /// Binds `addr` (e.g. `127.0.0.1:0` for an ephemeral port) and starts
    /// accepting in the background.
    pub fn bind(addr: &str) -> Result<Self, SpecError> {
        let listener =
            TcpListener::bind(addr).map_err(|e| SpecError::Io(format!("bind {addr}: {e}")))?;
        let endpoint = listener
            .local_addr()
            .map_err(|e| SpecError::Io(format!("local_addr of {addr}: {e}")))?
            .to_string();
        let stop = Arc::new(AtomicBool::new(false));
        let accept = {
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || accept_loop(listener, &stop))
        };
        Ok(Self {
            endpoint,
            stop,
            accept: Some(accept),
        })
    }

    /// The bound `host:port`, with any ephemeral port resolved.
    pub fn endpoint(&self) -> &str {
        &self.endpoint
    }

    /// Stops accepting and joins the accept thread. Connections already
    /// being served finish their current conversation and exit at EOF.
    pub fn shutdown(self) {
        drop(self);
    }
}

impl Drop for RemoteServer {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Wake the blocking accept with a throwaway connection.
        let _ = TcpStream::connect(&self.endpoint);
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
    }
}

/// Binds `addr` and serves on the calling thread, forever — the
/// `eacp serve --listen addr` entry point. `on_ready` receives the bound
/// `host:port` (ephemeral ports resolved) before the first accept.
pub fn serve_blocking(addr: &str, on_ready: impl FnOnce(&str)) -> Result<(), SpecError> {
    let listener =
        TcpListener::bind(addr).map_err(|e| SpecError::Io(format!("bind {addr}: {e}")))?;
    let endpoint = listener
        .local_addr()
        .map_err(|e| SpecError::Io(format!("local_addr of {addr}: {e}")))?
        .to_string();
    on_ready(&endpoint);
    let never = AtomicBool::new(false);
    accept_loop(listener, &never);
    Ok(())
}

/// Pings `endpoint` once within `timeout`; `Ok` means a protocol-speaking
/// server answered.
pub fn ping(endpoint: &str, timeout: Duration) -> Result<(), SpecError> {
    let stream = connect(endpoint, timeout)?;
    let mut writer = &stream;
    write_frame(&mut writer, &ping_request())?;
    let mut reader = std::io::BufReader::new(&stream);
    let text = read_frame(&mut reader)?
        .ok_or_else(|| SpecError::Io(format!("{endpoint}: closed without a pong")))?;
    let json = Json::parse(&text)?;
    match json.get("ok") {
        Some(ok) if ok.as_bool()? => Ok(()),
        _ => Err(SpecError::Io(format!(
            "{endpoint}: unexpected ping response"
        ))),
    }
}

fn connect(endpoint: &str, timeout: Duration) -> Result<TcpStream, SpecError> {
    let addr = endpoint
        .to_socket_addrs()
        .map_err(|e| SpecError::Io(format!("resolve {endpoint}: {e}")))?
        .next()
        .ok_or_else(|| SpecError::Io(format!("resolve {endpoint}: no addresses")))?;
    let stream = TcpStream::connect_timeout(&addr, timeout)
        .map_err(|e| SpecError::Io(format!("connect {endpoint}: {e}")))?;
    stream
        .set_read_timeout(Some(timeout))
        .and_then(|()| stream.set_write_timeout(Some(timeout)))
        .map_err(|e| SpecError::Io(format!("socket options for {endpoint}: {e}")))?;
    let _ = stream.set_nodelay(true);
    Ok(stream)
}

/// Backoff before transport try `t` (1-based; no sleep before the first).
fn backoff(t: usize) -> Duration {
    Duration::from_millis(25u64.saturating_mul(1 << t.min(3).saturating_sub(1)))
}

/// The networked [`Worker`]: ships each leased block to one of a set of
/// `eacp serve` endpoints and deserializes the partial [`Summary`].
///
/// Failure handling is layered:
///
/// 1. **Within a lease attempt** — the worker tries every endpoint once,
///    starting from a rotation determined by `(block, attempt)` so load
///    spreads and retries start elsewhere, with a short backoff between
///    tries. Any response is better than none: server-reported errors and
///    transport errors both advance the rotation.
/// 2. **Across lease attempts** — if all endpoints fail, the lease fails
///    with a provenance error naming the last endpoint, the phase
///    (resolve/connect/write/read/decode) and the attempt/try numbers; the
///    work queue re-leases the block to a (possibly different) pool
///    worker, which tries a different rotation.
/// 3. **Final attempt** — at `with_fallback_attempt(n)` the block runs
///    in-process instead, so the run completes (bit-identically) even with
///    every endpoint dead; the queue's lease deadline
///    ([`RemoteWorker::lease_timeout`]) bounds how long a wedged transport
///    can hold a block before a peer reclaims it.
pub struct RemoteWorker {
    endpoints: Vec<String>,
    timeout: Duration,
    /// Lease attempt at (and after) which blocks run in-process; 0 never
    /// falls back.
    fallback_attempt: u32,
}

impl RemoteWorker {
    /// A worker over `endpoints` with a per-operation `timeout_ms` budget
    /// (connect, write and read each get this budget) and no in-process
    /// fallback.
    pub fn new(endpoints: Vec<String>, timeout_ms: u64) -> Self {
        Self {
            endpoints,
            timeout: Duration::from_millis(timeout_ms.max(1)),
            fallback_attempt: 0,
        }
    }

    /// The worker a validated [`QueueSpec`] asks for: its endpoints and
    /// timeout, falling back in-process on the final lease attempt.
    pub fn from_queue_spec(queue: &QueueSpec) -> Self {
        Self::new(queue.endpoints.clone(), queue.timeout_ms)
            .with_fallback_attempt(queue.max_attempts.max(1))
    }

    /// Runs blocks in-process from lease attempt `attempt` on (instead of
    /// failing the run once retry budgets are exhausted). 0 disables.
    pub fn with_fallback_attempt(mut self, attempt: u32) -> Self {
        self.fallback_attempt = attempt;
        self
    }

    /// A lease deadline safely above this worker's worst-case transport
    /// time for one attempt (every endpoint tried, each paying full
    /// connect + write + read timeouts plus backoff), so the queue only
    /// reclaims leases that are truly wedged.
    pub fn lease_timeout(&self) -> Duration {
        let tries = self.endpoints.len().max(1) as u32;
        let per_try = self
            .timeout
            .saturating_mul(3)
            .saturating_add(Duration::from_millis(200));
        per_try
            .saturating_mul(tries.saturating_mul(2))
            .max(Duration::from_secs(1))
    }

    fn request_summary(
        &self,
        endpoint: &str,
        request: &str,
        assignment: BlockAssignment,
        attempt: u32,
        this_try: usize,
        tries: usize,
    ) -> Result<Summary, SpecError> {
        // Every failure names where, when and at which phase it happened:
        // the endpoint, the lease attempt, the transport try, and the
        // protocol phase — `fleet-smoke` triage depends on this.
        let at = |phase: &str, detail: String| {
            SpecError::Io(format!(
                "remote endpoint {endpoint}: {phase} failed for block {} [{}, {}) \
                 on lease attempt {attempt}, transport try {this_try}/{tries}: {detail}",
                assignment.block, assignment.lo, assignment.hi
            ))
        };
        let stream = connect(endpoint, self.timeout).map_err(|e| at("connect", e.to_string()))?;
        let mut writer = &stream;
        write_frame(&mut writer, request).map_err(|e| at("write", e.to_string()))?;
        let mut reader = std::io::BufReader::new(&stream);
        let text = read_frame(&mut reader)
            .map_err(|e| at("read", e.to_string()))?
            .ok_or_else(|| {
                at(
                    "read",
                    "server closed the connection without replying".into(),
                )
            })?;
        let json = Json::parse(&text).map_err(|e| at("decode", e.to_string()))?;
        if let Some(error) = json.get("error") {
            let detail = error.as_str().unwrap_or("malformed error response");
            return Err(at("decode", format!("server reported: {detail}")));
        }
        let summary = json
            .req("summary")
            .and_then(Summary::from_json)
            .map_err(|e| at("decode", e.to_string()))?;
        let expected = assignment.hi - assignment.lo;
        if summary.replications != expected {
            return Err(at(
                "decode",
                format!(
                    "summary covers {} replications, expected {expected}",
                    summary.replications
                ),
            ));
        }
        Ok(summary)
    }
}

impl Worker for RemoteWorker {
    fn name(&self) -> &'static str {
        "remote"
    }

    fn run_assignment(
        &self,
        job: &Job,
        assignment: BlockAssignment,
        attempt: u32,
    ) -> Result<Summary, SpecError> {
        if self.endpoints.is_empty()
            || (self.fallback_attempt != 0 && attempt >= self.fallback_attempt)
        {
            return InProcessWorker.run_assignment(job, assignment, attempt);
        }
        let spec = job.spec().ok_or_else(|| {
            SpecError::invalid(
                "remote execution requires a spec-built job \
                 (Job::from_parts closures have no serializable form)",
            )
        })?;
        // The server runs the block directly; shipping the queue section
        // along would be circular and is result-neutral anyway.
        let mut spec = spec.clone();
        spec.executor.queue = None;
        let request = run_block_request(&spec, assignment.lo, assignment.hi);
        let n = self.endpoints.len();
        let start = (assignment.block as usize).wrapping_add(attempt as usize - 1) % n;
        let mut last_error = None;
        for t in 0..n {
            if t > 0 {
                std::thread::sleep(backoff(t));
            }
            let endpoint = &self.endpoints[(start + t) % n];
            match self.request_summary(endpoint, &request, assignment, attempt, t + 1, n) {
                Ok(summary) => return Ok(summary),
                Err(e) => last_error = Some(e),
            }
        }
        Err(last_error.unwrap_or_else(|| SpecError::Io("remote worker has no endpoints".into())))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eacp_spec::McSpec;

    fn spec(reps: u64) -> ExperimentSpec {
        let mut spec = ExperimentSpec::paper_nominal();
        spec.mc = McSpec {
            replications: reps,
            seed: 11,
            threads: 1,
        };
        spec
    }

    #[test]
    fn frame_codec_round_trips_through_a_buffer() {
        let mut buf = Vec::new();
        write_frame(&mut buf, "hello").unwrap();
        write_frame(&mut buf, "").unwrap();
        let mut r = buf.as_slice();
        assert_eq!(read_frame(&mut r).unwrap().as_deref(), Some("hello"));
        assert_eq!(read_frame(&mut r).unwrap().as_deref(), Some(""));
        assert_eq!(read_frame(&mut r).unwrap(), None, "clean EOF");
    }

    #[test]
    fn truncated_and_oversized_frames_are_errors_not_panics() {
        // Truncated length prefix.
        let mut r: &[u8] = &[0, 0];
        assert!(read_frame(&mut r).is_err());
        // Truncated payload.
        let mut r: &[u8] = &[0, 0, 0, 9, b'x'];
        assert!(read_frame(&mut r).is_err());
        // Oversized length prefix — rejected before allocating.
        let mut r: &[u8] = &[0xff, 0xff, 0xff, 0xff];
        let err = read_frame(&mut r).unwrap_err().to_string();
        assert!(err.contains("exceeds"), "{err}");
        // Non-UTF-8 payload.
        let mut r: &[u8] = &[0, 0, 0, 2, 0xc3, 0x28];
        assert!(read_frame(&mut r).is_err());
    }

    #[test]
    fn server_answers_ping_and_rejects_protocol_garbage() {
        let server = RemoteServer::bind("127.0.0.1:0").unwrap();
        ping(server.endpoint(), Duration::from_secs(5)).unwrap();
        // A version-less request gets an error response, not a hangup.
        let stream = connect(server.endpoint(), Duration::from_secs(5)).unwrap();
        let mut writer = &stream;
        write_frame(&mut writer, "{\"op\": \"ping\"}").unwrap();
        let mut reader = std::io::BufReader::new(&stream);
        let text = read_frame(&mut reader).unwrap().unwrap();
        assert!(text.contains("error"), "{text}");
        server.shutdown();
    }

    #[test]
    fn run_block_request_round_trips_a_partial_summary() {
        let spec = spec(64);
        let job = Job::from_spec(&spec).unwrap();
        let expected = run_block(&job, 16, 48, &mut NoopObserver);
        let response = answer_request(&run_block_request(&spec, 16, 48));
        let json = Json::parse(&response).unwrap();
        let summary = Summary::from_json(json.req("summary").unwrap()).unwrap();
        assert_eq!(summary, expected, "lossless summary transport");
    }

    #[test]
    fn out_of_range_blocks_and_bad_ops_are_error_responses() {
        let text = answer_request(&run_block_request(&spec(10), 5, 20));
        assert!(text.contains("out of bounds"), "{text}");
        let text = answer_request(&versioned(vec![("op", "explode".into())]).pretty());
        assert!(text.contains("unknown op"), "{text}");
        let text = answer_request("not json at all");
        assert!(text.contains("error"), "{text}");
    }

    #[test]
    fn endpoint_rotation_spreads_blocks_and_retries() {
        let w = RemoteWorker::new(vec!["a:1".into(), "b:1".into(), "c:1".into()], 100);
        let order = |block: u64, attempt: u32| {
            let start = (block as usize).wrapping_add(attempt as usize - 1) % w.endpoints.len();
            (0..w.endpoints.len())
                .map(|t| w.endpoints[(start + t) % w.endpoints.len()].clone())
                .collect::<Vec<_>>()
        };
        assert_eq!(order(0, 1), ["a:1", "b:1", "c:1"]);
        assert_eq!(order(1, 1), ["b:1", "c:1", "a:1"]);
        // A retry of the same block starts at the next endpoint.
        assert_eq!(order(0, 2), ["b:1", "c:1", "a:1"]);
    }

    #[test]
    fn lease_timeout_covers_the_transport_budget() {
        let w = RemoteWorker::new(vec!["a:1".into(), "b:1".into()], 250);
        // 2 endpoints × (3 × 250ms + 200ms) × 2 headroom = 3.8s.
        assert!(w.lease_timeout() >= Duration::from_millis(1900));
        // Even a tiny budget keeps a sane floor.
        let w = RemoteWorker::new(vec!["a:1".into()], 1);
        assert!(w.lease_timeout() >= Duration::from_secs(1));
    }
}
