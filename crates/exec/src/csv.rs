//! CSV renderer over sweep report documents — the first half of the
//! ROADMAP's renderer item (the HTML table is the second).
//!
//! One row per grid point: scheme, `P` with its 95% Wilson interval, `E`,
//! and — where a paper-value lookup recognizes the operating point —
//! the paper's `P`/`E` and the measured-minus-paper deltas. The lookup is
//! injected as a closure so this crate stays independent of
//! `eacp-experiments` (which owns the transcribed paper tables); the CLI
//! wires the two together.

use crate::shard::PointReport;
use eacp_spec::RunReport;

/// The paper's reported values for one (operating point, scheme) cell.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PaperRef {
    /// Probability of timely completion.
    pub p: f64,
    /// Mean energy over timely runs (`NaN` where the paper prints `NaN`).
    pub e: f64,
}

/// Formats a float cell; `NaN` renders as an empty cell (the CSV mirror of
/// the paper's `NaN` energy entries).
fn cell(v: f64, precision: usize) -> String {
    if v.is_nan() {
        String::new()
    } else {
        format!("{v:.precision$}")
    }
}

/// The CSV header row (no trailing newline).
pub const CSV_HEADER: &str = "index,experiment,scheme,replications,p,p_ci_lo,p_ci_hi,\
e_timely,e_all,paper_p,delta_p,paper_e,delta_e";

/// Renders one report as a CSV row (no trailing newline).
fn row(index: Option<usize>, report: &RunReport, paper: Option<PaperRef>) -> String {
    let s = &report.summary;
    let (ci_lo, ci_hi) = s.p_timely_ci95;
    let (paper_p, delta_p, paper_e, delta_e) = match paper {
        Some(pr) => (
            cell(pr.p, 4),
            cell(s.p_timely - pr.p, 4),
            cell(pr.e, 1),
            cell(s.energy_timely.mean - pr.e, 1),
        ),
        None => Default::default(),
    };
    format!(
        "{},{},{},{},{},{},{},{},{},{paper_p},{delta_p},{paper_e},{delta_e}",
        index.map_or_else(String::new, |i| i.to_string()),
        report.spec.name,
        report.policy_name,
        s.replications,
        cell(s.p_timely, 4),
        cell(ci_lo, 4),
        cell(ci_hi, 4),
        cell(s.energy_timely.mean, 1),
        cell(s.energy_all.mean, 1),
    )
}

/// Renders a set of grid points as a CSV matrix, one row per point in
/// ascending grid order. `paper` maps a report to the paper's reference
/// values where the operating point matches a transcribed table cell.
pub fn render_csv(
    points: &[PointReport],
    paper: &dyn Fn(&RunReport) -> Option<PaperRef>,
) -> String {
    let mut out = String::from(CSV_HEADER);
    out.push('\n');
    for p in points {
        out.push_str(&row(Some(p.index), &p.report, paper(&p.report)));
        out.push('\n');
    }
    out
}

/// [`render_csv`] over pre-assembled rows, for mixtures of grid points
/// (indexed) and standalone run reports (no grid index).
pub fn render_rows(
    rows: &[(Option<usize>, RunReport)],
    paper: &dyn Fn(&RunReport) -> Option<PaperRef>,
) -> String {
    let mut out = String::from(CSV_HEADER);
    out.push('\n');
    for (index, report) in rows {
        out.push_str(&row(*index, report, paper(report)));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shard::run_sweep;
    use eacp_spec::{ExperimentSpec, McSpec, SweepAxis, SweepSpec};

    fn points() -> Vec<PointReport> {
        let mut base = ExperimentSpec::paper_nominal();
        base.name = "csv".into();
        base.mc = McSpec {
            replications: 30,
            seed: 3,
            threads: 1,
        };
        let sweep = SweepSpec {
            base,
            axes: vec![SweepAxis::Lambda(vec![1e-4, 1.4e-3])],
        };
        run_sweep(&sweep, None, 1).unwrap().points
    }

    #[test]
    fn csv_has_header_and_one_row_per_point() {
        let pts = points();
        let csv = render_csv(&pts, &|_| None);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], CSV_HEADER);
        assert_eq!(lines.len(), 1 + pts.len());
        // Paper columns are empty without a lookup hit.
        assert!(lines[1].ends_with(",,,,"), "{}", lines[1]);
        assert!(
            lines[1].starts_with("0,csv-l0.0001,A_D_S,30,"),
            "{}",
            lines[1]
        );
    }

    #[test]
    fn paper_deltas_are_rendered_when_the_lookup_hits() {
        let pts = points();
        let csv = render_csv(&pts, &|r| {
            Some(PaperRef {
                p: r.summary.p_timely,
                e: f64::NAN,
            })
        });
        let line = csv.lines().nth(1).unwrap();
        // delta_p is exactly 0.0000; NaN paper E renders empty.
        let cols: Vec<&str> = line.split(',').collect();
        assert_eq!(cols[10], "0.0000", "{line}");
        assert_eq!(cols[11], "", "{line}");
        assert_eq!(cols[12], "", "{line}");
    }

    #[test]
    fn nan_energy_renders_as_empty_cell() {
        // An impossible deadline gives P = 0 and NaN E(timely).
        let mut spec = ExperimentSpec::paper_nominal();
        spec.name = "impossible".into();
        spec.scenario.work = eacp_spec::WorkSpec::Utilization {
            utilization: 5.0,
            speed: 1.0,
            deadline: 1_000.0,
        };
        spec.mc.replications = 10;
        let sweep = SweepSpec {
            base: spec,
            axes: vec![SweepAxis::K(vec![5])],
        };
        let pts = run_sweep(&sweep, None, 1).unwrap().points;
        let csv = render_csv(&pts, &|_| None);
        let cols: Vec<&str> = csv.lines().nth(1).unwrap().split(',').collect();
        assert_eq!(cols[4], "0.0000"); // P
        assert_eq!(cols[7], ""); // E(timely) is NaN
    }
}
