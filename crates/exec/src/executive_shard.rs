//! Sharded executive Monte-Carlo sweeps: the [`crate::ExecutiveJob`]
//! counterpart of the single-task sweep executor in [`crate::shard`].
//!
//! The workflow is the same — expand an [`ExecutiveSweepSpec`] grid,
//! partition it across machines by grid-index range ([`ShardId`]), emit
//! per-shard report documents, reassemble with [`merge_executive_dir`] —
//! and so are the guarantees: expansion derives each point's seed from its
//! flat index, every point runs through a [`Runner`] honoring the
//! canonical-reduction contract, and the merged document is bit-identical
//! to the unsharded run. Coverage inspection reuses the single-task
//! [`SweepCoverage`]/[`DocCoverage`] types (and therefore the CLI's shared
//! coverage renderer) unchanged.

use crate::executive_mc::{ExecutiveJob, ExecutiveSummary};
use crate::runner::Runner;
use crate::shard::{list_report_files, DocCoverage, ShardId, SweepCoverage};
use eacp_spec::{ExecutiveSpec, ExecutiveSweepSpec, FromJson, Json, SpecError, ToJson};
use std::path::{Path, PathBuf};

/// One executive Monte-Carlo result: the spec that produced it, the
/// resolved per-task policy names, and the exact mergeable summary.
///
/// The embedded [`ExecutiveSummary`] serializes losslessly (raw
/// accumulator state), so a loaded report compares equal to — and
/// re-serializes byte-identical with — its recomputation.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecutiveMcReport {
    /// The validated spec the run was built from (provenance).
    pub spec: ExecutiveSpec,
    /// Resolved policy names, one per task.
    pub policy_names: Vec<String>,
    /// The exact Monte-Carlo aggregate.
    pub summary: ExecutiveSummary,
}

impl ToJson for ExecutiveMcReport {
    fn to_json(&self) -> Json {
        Json::obj([
            ("spec", self.spec.to_json()),
            (
                "policy_names",
                Json::Array(
                    self.policy_names
                        .iter()
                        .map(|n| Json::from(n.as_str()))
                        .collect(),
                ),
            ),
            ("summary", self.summary.to_json()),
        ])
    }
}

impl FromJson for ExecutiveMcReport {
    fn from_json(json: &Json) -> Result<Self, SpecError> {
        Ok(Self {
            spec: ExecutiveSpec::from_json(json.req("spec")?)?,
            policy_names: json
                .req("policy_names")?
                .as_array()?
                .iter()
                .map(|n| Ok(n.as_str()?.to_owned()))
                .collect::<Result<_, SpecError>>()?,
            summary: ExecutiveSummary::from_json(json.req("summary")?)?,
        })
    }
}

/// Runs one executive spec on a [`Runner`], wrapping the summary as an
/// [`ExecutiveMcReport`] — the single-point unit of work shared by the
/// sweep executor and the result store's cache-or-compute path.
pub fn run_executive_point(
    runner: &dyn Runner,
    spec: &ExecutiveSpec,
) -> Result<ExecutiveMcReport, SpecError> {
    let job = ExecutiveJob::from_spec(spec)?;
    let summary = runner.run_executive(&job)?;
    Ok(ExecutiveMcReport {
        spec: spec.clone(),
        policy_names: job.policy_names(),
        summary,
    })
}

/// One executive grid point's result, tagged with its flat grid index.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecutivePointReport {
    /// Flat index into `ExecutiveSweepSpec::expand()` order.
    pub index: usize,
    /// The point's full report (spec embedded for provenance).
    pub report: ExecutiveMcReport,
}

/// An executive sweep result document: the whole grid, or one shard.
#[derive(Debug, Clone)]
pub struct ExecutiveGridReport {
    /// The sweep that produced (or will reproduce) these points.
    pub sweep: ExecutiveSweepSpec,
    /// Total grid points in the full sweep (not just this document).
    pub total_points: usize,
    /// Which shard this document covers (`None` = the full grid).
    pub shard: Option<ShardId>,
    /// Covered points, ascending by grid index.
    pub points: Vec<ExecutivePointReport>,
    /// Where this document was loaded from (`None` for freshly computed
    /// grids). Never serialized — diagnostics provenance only.
    pub source: Option<PathBuf>,
}

// Provenance is where the document came from, not part of the result, so
// a loaded shard compares equal to its recomputation.
impl PartialEq for ExecutiveGridReport {
    fn eq(&self, other: &Self) -> bool {
        self.sweep == other.sweep
            && self.total_points == other.total_points
            && self.shard == other.shard
            && self.points == other.points
    }
}

impl ExecutiveGridReport {
    /// The canonical file name: `grid.json` for a full grid,
    /// `shard-I-of-N.json` for one shard — the same collection-directory
    /// convention as single-task sweeps.
    pub fn file_name(&self) -> String {
        match self.shard {
            None => "grid.json".to_owned(),
            Some(s) => format!("shard-{}-of-{}.json", s.index, s.count),
        }
    }

    /// Writes the document into `dir` (created if absent) under its
    /// canonical [`ExecutiveGridReport::file_name`]; returns the path.
    ///
    /// # Errors
    ///
    /// I/O failures carry the offending path.
    pub fn save(&self, dir: &Path) -> Result<PathBuf, SpecError> {
        std::fs::create_dir_all(dir)
            .map_err(|e| SpecError::Io(format!("{}: {e}", dir.display())))?;
        let path = dir.join(self.file_name());
        std::fs::write(&path, self.to_json().pretty())
            .map_err(|e| SpecError::Io(format!("{}: {e}", path.display())))?;
        Ok(path)
    }

    /// Reads one document; every failure names the offending file.
    ///
    /// # Errors
    ///
    /// Unreadable files, malformed JSON and non-executive-sweep documents
    /// are [`SpecError`]s carrying the path.
    pub fn load(path: &Path) -> Result<Self, SpecError> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| SpecError::Io(format!("{}: {e}", path.display())))?;
        let json = Json::parse(&text)
            .map_err(|e| SpecError::invalid(format!("{}: {e}", path.display())))?;
        let mut doc = Self::from_json(&json).map_err(|e| {
            SpecError::invalid(format!(
                "{}: invalid executive sweep report document: {e}",
                path.display()
            ))
        })?;
        doc.source = Some(path.to_path_buf());
        Ok(doc)
    }
}

impl ToJson for ExecutiveGridReport {
    fn to_json(&self) -> Json {
        let mut fields: Vec<(&'static str, Json)> = vec![
            ("sweep", self.sweep.to_json()),
            ("total_points", self.total_points.into()),
        ];
        if let Some(shard) = self.shard {
            fields.push(("shard", shard.to_json()));
        }
        fields.push((
            "points",
            Json::Array(
                self.points
                    .iter()
                    .map(|p| Json::obj([("index", p.index.into()), ("report", p.report.to_json())]))
                    .collect(),
            ),
        ));
        Json::obj(fields)
    }
}

impl FromJson for ExecutiveGridReport {
    fn from_json(json: &Json) -> Result<Self, SpecError> {
        let shard = match json.get("shard") {
            None | Some(Json::Null) => None,
            Some(s) => Some(ShardId::from_json(s)?),
        };
        let mut points = Vec::new();
        for item in json.req("points")?.as_array()? {
            points.push(ExecutivePointReport {
                index: item.req("index")?.as_usize()?,
                report: ExecutiveMcReport::from_json(item.req("report")?)?,
            });
        }
        Ok(Self {
            sweep: ExecutiveSweepSpec::from_json(json.req("sweep")?)?,
            total_points: json.req("total_points")?.as_usize()?,
            shard,
            points,
            source: None,
        })
    }
}

/// Expands an executive sweep and runs the selected shard (or, with
/// `shard = None`, the whole grid) on `runner`.
///
/// Each grid point's seed comes from the expansion, so a point's report
/// does not depend on which shard — or which runner — executed it.
///
/// # Errors
///
/// Per-point failures are wrapped with the grid index and point name.
pub fn run_executive_sweep(
    sweep: &ExecutiveSweepSpec,
    shard: Option<ShardId>,
    runner: &dyn Runner,
) -> Result<ExecutiveGridReport, SpecError> {
    let specs = sweep.expand()?;
    let total = specs.len();
    let range = match shard {
        Some(s) => s.range(total),
        None => 0..total,
    };
    let mut points = Vec::with_capacity(range.len());
    for index in range {
        let spec = &specs[index];
        let report = run_executive_point(runner, spec)
            .map_err(|e| SpecError::invalid(format!("grid point {index} ({}): {e}", spec.name)))?;
        points.push(ExecutivePointReport { index, report });
    }
    Ok(ExecutiveGridReport {
        sweep: sweep.clone(),
        total_points: total,
        shard,
        points,
        source: None,
    })
}

/// A directory of executive report documents proven to belong to one
/// sweep — the shared front half of [`merge_executive_dir`] and
/// [`executive_coverage_dir`], mirroring the single-task loader's checks
/// (including the total-vs-expansion guard, so a lying `total_points`
/// surfaces as an error naming the file rather than a fantasy-sized
/// allocation).
struct ExecutiveDocs {
    docs: Vec<(PathBuf, ExecutiveGridReport)>,
    total: usize,
    expected: Vec<ExecutiveSpec>,
    shard_count: Option<u64>,
}

fn load_executive_docs(dir: &Path) -> Result<ExecutiveDocs, SpecError> {
    let paths = list_report_files(dir)?;
    if paths.is_empty() {
        return Err(SpecError::invalid(format!(
            "{}: no .json report documents found",
            dir.display()
        )));
    }

    let mut docs = Vec::with_capacity(paths.len());
    for path in paths {
        let doc = ExecutiveGridReport::load(&path)?;
        docs.push((path, doc));
    }

    let (first_path, first) = &docs[0];
    let sweep_fingerprint = first.sweep.to_json().pretty();
    let total = first.total_points;
    let mut shard_count: Option<u64> = None;
    for (path, doc) in &docs {
        if doc.sweep.to_json().pretty() != sweep_fingerprint {
            return Err(SpecError::invalid(format!(
                "{}: sweep spec differs from {} — these shards are not from \
                 the same sweep",
                path.display(),
                first_path.display()
            )));
        }
        if doc.total_points != total {
            return Err(SpecError::invalid(format!(
                "{}: declares {} total points, {} declares {total}",
                path.display(),
                doc.total_points,
                first_path.display()
            )));
        }
        if let Some(s) = doc.shard {
            match shard_count {
                None => shard_count = Some(s.count),
                Some(c) if c != s.count => {
                    return Err(SpecError::invalid(format!(
                        "{}: shard count {} conflicts with earlier shard count {c}",
                        path.display(),
                        s.count
                    )))
                }
                Some(_) => {}
            }
        }
    }

    let expected = first.sweep.expand()?;
    if expected.len() != total {
        return Err(SpecError::invalid(format!(
            "{}: declares {total} total points but its embedded sweep \
             expands to {} — corrupt or tampered document",
            first_path.display(),
            expected.len()
        )));
    }
    Ok(ExecutiveDocs {
        docs,
        total,
        expected,
        shard_count,
    })
}

/// Reads every `*.json` document in `dir` and reassembles the full
/// executive grid — same loud-failure rules as [`crate::merge_dir`]:
/// missing, duplicated, out-of-range and spec-mismatched points are
/// [`SpecError`]s naming the offending file or index.
///
/// # Errors
///
/// See above.
pub fn merge_executive_dir(dir: &Path) -> Result<ExecutiveGridReport, SpecError> {
    let ExecutiveDocs {
        docs,
        total,
        expected,
        ..
    } = load_executive_docs(dir)?;
    let sweep = docs[0].1.sweep.clone();

    let mut slots: Vec<Option<ExecutivePointReport>> = vec![None; total];
    for (path, doc) in &docs {
        for point in &doc.points {
            if point.index >= total {
                return Err(SpecError::invalid(format!(
                    "{}: grid point {} is out of range for a {total}-point sweep",
                    path.display(),
                    point.index
                )));
            }
            if slots[point.index].is_some() {
                return Err(SpecError::invalid(format!(
                    "{}: grid point {} is covered twice — duplicated shard?",
                    path.display(),
                    point.index
                )));
            }
            if point.report.spec != expected[point.index] {
                return Err(SpecError::invalid(format!(
                    "{}: grid point {}'s embedded spec does not match the \
                     sweep expansion (expected {:?}, found {:?})",
                    path.display(),
                    point.index,
                    expected[point.index].name,
                    point.report.spec.name
                )));
            }
            slots[point.index] = Some(point.clone());
        }
    }
    let missing: Vec<usize> = slots
        .iter()
        .enumerate()
        .filter_map(|(i, s)| s.is_none().then_some(i))
        .collect();
    if !missing.is_empty() {
        return Err(SpecError::invalid(format!(
            "incomplete grid: {} of {total} points missing (indices {:?}{}) — \
             withheld shard?",
            missing.len(),
            &missing[..missing.len().min(8)],
            if missing.len() > 8 { ", ..." } else { "" }
        )));
    }

    Ok(ExecutiveGridReport {
        sweep,
        total_points: total,
        shard: None,
        // audit:allow(panic): the `missing` check above already rejected
        // grids with any unfilled slot.
        points: slots.into_iter().map(|s| s.expect("checked")).collect(),
        source: None,
    })
}

/// Inspects an executive result-collection directory, producing the same
/// [`SweepCoverage`] the single-task path produces — which is exactly what
/// lets `eacp queue status` and `eacp store status` render both kinds
/// through one shared coverage formatter.
///
/// # Errors
///
/// Same rules as [`crate::coverage_dir`]: unreadable/malformed/mixed
/// documents fail loudly; incomplete or duplicated coverage is reported.
pub fn executive_coverage_dir(dir: &Path) -> Result<SweepCoverage, SpecError> {
    let ExecutiveDocs {
        docs,
        total,
        shard_count,
        ..
    } = load_executive_docs(dir)?;
    let sweep_name = docs[0].1.sweep.base.name.clone();

    let mut hits: std::collections::BTreeMap<usize, usize> = Default::default();
    let docs: Vec<DocCoverage> = docs
        .into_iter()
        .map(|(path, doc)| {
            let mut indices: Vec<usize> = doc.points.iter().map(|p| p.index).collect();
            indices.sort_unstable();
            for &i in &indices {
                *hits.entry(i).or_insert(0) += 1;
            }
            DocCoverage {
                path,
                shard: doc.shard,
                indices,
            }
        })
        .collect();
    let missing = (0..total).filter(|i| !hits.contains_key(i)).collect();
    let duplicated = hits
        .iter()
        .filter_map(|(&i, &n)| (n > 1).then_some(i))
        .collect();
    Ok(SweepCoverage {
        sweep_name,
        total_points: total,
        shard_count,
        docs,
        missing,
        duplicated,
    })
}

/// The executive CSV header row (no trailing newline): per-point counters
/// plus the distribution columns (mean / standard deviation / min / max of
/// the per-horizon miss ratio and energy).
pub const EXECUTIVE_CSV_HEADER: &str = "index,experiment,policies,horizons,jobs,\
deadline_misses,faults,rollbacks,checkpoints,total_energy,\
miss_ratio_mean,miss_ratio_sd,miss_ratio_min,miss_ratio_max,\
energy_mean,energy_sd,energy_min,energy_max";

/// Formats a float cell; `NaN` (empty distributions) renders empty.
fn cell(v: f64, precision: usize) -> String {
    if v.is_nan() {
        String::new()
    } else {
        format!("{v:.precision$}")
    }
}

fn distribution_cells(s: &eacp_numerics::OnlineStats, precision: usize) -> String {
    let (count, _, _, min, max) = s.raw_parts();
    let (min, max) = if count == 0 {
        (f64::NAN, f64::NAN)
    } else {
        (min, max)
    };
    format!(
        "{},{},{},{}",
        cell(s.mean(), precision),
        cell(s.population_variance().sqrt(), precision),
        cell(min, precision),
        cell(max, precision),
    )
}

/// Renders executive grid points as a CSV matrix, one row per point in
/// ascending grid order.
pub fn render_executive_csv(points: &[ExecutivePointReport]) -> String {
    let mut out = String::from(EXECUTIVE_CSV_HEADER);
    out.push('\n');
    for p in points {
        let s = &p.report.summary;
        out.push_str(&format!(
            "{},{},{},{},{},{},{},{},{},{},{},{}\n",
            p.index,
            p.report.spec.name,
            p.report.policy_names.join("+"),
            s.horizons,
            s.jobs,
            s.deadline_misses,
            s.faults,
            s.rollbacks,
            s.checkpoints.total(),
            cell(s.total_energy, 1),
            distribution_cells(&s.miss_ratio, 4),
            distribution_cells(&s.energy, 1),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::LocalRunner;
    use eacp_spec::{
        ExecutiveMcSpec, ExecutiveSweepAxis, FaultSpec, PolicyAssignment, PolicySpec, TaskSetSpec,
    };

    fn small_sweep() -> ExecutiveSweepSpec {
        let mut base = ExecutiveSpec::new(
            "exec-grid",
            TaskSetSpec::implicit([("sensor", 500.0, 4_000), ("control", 1_200.0, 8_000)]),
        );
        base.faults = FaultSpec::Poisson { lambda: 5e-4 };
        base.policy = PolicyAssignment::Shared(PolicySpec::from_tag("a_d_s", 5e-4, 2, 0).unwrap());
        base.hyperperiods = 2;
        base.seed = 11;
        base.mc = Some(ExecutiveMcSpec {
            replications: 20,
            threads: 1,
            queue: None,
        });
        ExecutiveSweepSpec {
            base,
            axes: vec![
                ExecutiveSweepAxis::Lambda(vec![2e-4, 1e-3]),
                ExecutiveSweepAxis::K(vec![1, 3]),
            ],
        }
    }

    #[test]
    fn sharded_executive_points_equal_unsharded_points() {
        let sweep = small_sweep();
        let runner = LocalRunner::new(1);
        let full = run_executive_sweep(&sweep, None, &runner).unwrap();
        assert_eq!(full.points.len(), 4);
        let mut collected = Vec::new();
        for i in 0..3 {
            let shard =
                run_executive_sweep(&sweep, Some(ShardId::new(i, 3).unwrap()), &runner).unwrap();
            collected.extend(shard.points);
        }
        collected.sort_by_key(|p| p.index);
        assert_eq!(collected, full.points);
    }

    #[test]
    fn executive_merge_reassembles_bit_identically() {
        let sweep = small_sweep();
        let runner = LocalRunner::new(1);
        let base = std::env::temp_dir().join(format!("eacp-exec-exshard-{}", std::process::id()));
        let dir = base.join("sharded");
        let _ = std::fs::remove_dir_all(&base);

        let full = run_executive_sweep(&sweep, None, &runner).unwrap();
        for i in 0..3 {
            run_executive_sweep(&sweep, Some(ShardId::new(i, 3).unwrap()), &runner)
                .unwrap()
                .save(&dir)
                .unwrap();
        }
        let merged = merge_executive_dir(&dir).unwrap();
        assert_eq!(merged, full);
        assert_eq!(merged.to_json().pretty(), full.to_json().pretty());

        // Withheld shard → loud failure; coverage reports it calmly.
        std::fs::remove_file(dir.join("shard-1-of-3.json")).unwrap();
        let err = merge_executive_dir(&dir).unwrap_err();
        assert!(err.to_string().contains("missing"), "{err}");
        let cov = executive_coverage_dir(&dir).unwrap();
        assert_eq!(cov.sweep_name, "exec-grid");
        assert_eq!(cov.total_points, 4);
        assert!(!cov.complete());
        assert_eq!(cov.missing, vec![2]);

        std::fs::remove_dir_all(&base).unwrap();
    }

    #[test]
    fn executive_grid_round_trips_through_json() {
        let sweep = small_sweep();
        let shard = run_executive_sweep(
            &sweep,
            Some(ShardId::new(1, 2).unwrap()),
            &LocalRunner::new(1),
        )
        .unwrap();
        let text = shard.to_json().pretty();
        let back = ExecutiveGridReport::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, shard);
        assert_eq!(back.to_json().pretty(), text);
    }

    #[test]
    fn executive_csv_has_header_and_distribution_columns() {
        let sweep = small_sweep();
        let full = run_executive_sweep(&sweep, None, &LocalRunner::new(1)).unwrap();
        let csv = render_executive_csv(&full.points);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], EXECUTIVE_CSV_HEADER);
        assert_eq!(lines.len(), 1 + full.points.len());
        let cols: Vec<&str> = lines[1].split(',').collect();
        assert_eq!(cols.len(), EXECUTIVE_CSV_HEADER.split(',').count());
        assert!(lines[1].starts_with("0,exec-grid-l0.0002-k1,A_D_S+A_D_S,20,"));
        // Distribution cells are populated (20 horizons pushed).
        assert!(!cols[10].is_empty() && !cols[14].is_empty(), "{}", lines[1]);
    }
}
