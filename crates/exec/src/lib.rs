//! Unified execution layer for the EACP workspace.
//!
//! `eacp-spec` describes experiments; this crate *runs* them. It replaces
//! the two welded-shut entry points of the original simulator — the
//! closure-factory `MonteCarlo::run` and the separate `run_traced` code
//! path — with three composable pieces:
//!
//! * **[`Job`]** — a validated Monte-Carlo experiment, built from an
//!   [`ExperimentSpec`] ([`Job::from_spec`]) or from explicit parts for
//!   custom policies ([`Job::from_parts`]). Seeding is bit-identical to
//!   the legacy driver: replication `i` always runs with
//!   [`eacp_sim::replication_seed`]`(base_seed, i)`.
//! * **[`Observer`]** (re-exported from `eacp-sim`) — a streaming view of
//!   execution: replication brackets, every engine event (segments,
//!   checkpoints, faults, rollbacks, speed changes), deadline misses and
//!   energy samples. Tracing is just the `TraceRecorder` observer; the
//!   [`NoopObserver`] compiles away to the blind fast path.
//! * **[`Runner`]** — where replications execute. [`LocalRunner`] is the
//!   in-process multi-threaded implementation; its canonical fixed-block
//!   reduction makes the merged [`Summary`] bit-identical across thread
//!   counts (see the `runner` module docs). [`QueueRunner`] schedules the
//!   same canonical blocks through a [`WorkQueue`] drained by a worker
//!   pool with lease retry — bit-identical results again, plus the
//!   [`Worker`] seam the remote transport plugs into:
//!   [`RemoteWorker`] ships leased blocks to `eacp serve` endpoints over
//!   std-only TCP (see the [`remote`] module).
//!
//! On top sits the **sharded sweep executor** ([`run_sweep`],
//! [`merge_dir`]): a [`SweepSpec`] grid is partitioned across machines by
//! grid-index range, each shard emits a [`GridReport`] JSON document, and
//! the merge step reassembles the full grid — refusing to proceed on
//! missing, duplicated or spec-mismatched points. [`render_csv`] turns a
//! merged grid into the CSV matrix of the ROADMAP's renderer item.
//!
//! # Example
//!
//! ```
//! use eacp_exec::{Job, LocalRunner, Runner};
//! use eacp_spec::ExperimentSpec;
//!
//! let mut spec = ExperimentSpec::paper_nominal();
//! spec.mc.replications = 200;
//! let job = Job::from_spec(&spec).unwrap();
//! let summary = LocalRunner::default().run(&job).unwrap();
//! assert_eq!(summary.replications, 200);
//! // Same job, any thread count: bit-identical summary.
//! assert_eq!(LocalRunner::new(3).run(&job).unwrap(), summary);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analytic;
pub mod csv;
pub mod executive;
pub mod executive_mc;
pub mod executive_shard;
pub mod job;
pub mod queue;
pub mod remote;
pub mod runner;
pub mod shard;
pub mod workload;

pub use analytic::serve_closed_form;
pub use csv::{render_csv, render_rows, PaperRef, CSV_HEADER};
pub use executive::{run_executive, run_executive_observed};
pub use executive_mc::{ExecutiveJob, ExecutiveReplicator, ExecutiveSummary, TaskAggregate};
pub use executive_shard::{
    executive_coverage_dir, merge_executive_dir, render_executive_csv, run_executive_point,
    run_executive_sweep, ExecutiveGridReport, ExecutiveMcReport, ExecutivePointReport,
    EXECUTIVE_CSV_HEADER,
};
pub use job::{FaultFactory, Job, PolicyFactory, Replicator};
pub use queue::{
    run_sweep_queued, run_sweep_queued_tiered, BlockAssignment, InProcessWorker, Lease,
    NoopQueueObserver, QueueObserver, QueueRunner, QueueStatus, WorkQueue, Worker,
};
pub use remote::{serve_blocking, RemoteServer, RemoteWorker};
pub use runner::{LocalRunner, Runner};
pub use shard::{
    coverage_dir, list_report_files, merge_dir, run_point, run_point_tiered, run_sweep,
    run_sweep_tiered, run_sweep_with, DocCoverage, GridReport, PointReport, ShardId, SweepCoverage,
};
pub use workload::{run_workload_local, run_workload_queued, Replicate, Workload};

// The execution vocabulary lives in `eacp-sim` (the engine emits the
// events); re-exported here so runner-level code needs one import path.
pub use eacp_sim::{NoopObserver, Observer, Summary};

use eacp_spec::{ExperimentSpec, RunReport, ServeTier, SpecError, SummaryReport};

/// Runs one experiment spec end to end, returning both the exact in-memory
/// [`Summary`] (for bit-identical comparisons) and the serializable
/// [`RunReport`].
///
/// The spec's executor section picks the scheduler: with
/// [`eacp_spec::QueueSpec`] present the job runs on the work-queue
/// [`QueueRunner`], otherwise on the plain [`LocalRunner`] with
/// `mc.threads` workers. Both honor the canonical-reduction contract, so
/// the choice never changes a single bit of the summary.
///
/// Replication-invariant cells are answered by the closed-form tier
/// ([`serve_closed_form`]) and marked `served: analytic` in the report;
/// use [`run_tiered`] with `analytic = false` (the CLI's `--no-analytic`)
/// to force the full Monte-Carlo loop.
pub fn run(spec: &ExperimentSpec) -> Result<(Summary, RunReport), SpecError> {
    run_tiered(spec, true)
}

/// [`run`] with the closed-form serve tier explicitly enabled or disabled.
pub fn run_tiered(
    spec: &ExperimentSpec,
    analytic: bool,
) -> Result<(Summary, RunReport), SpecError> {
    let job = Job::from_spec(spec)?;
    let (summary, served) = match analytic.then(|| serve_closed_form(&job)).flatten() {
        Some(summary) => (summary, ServeTier::Analytic),
        None => {
            let summary = match &spec.executor.queue {
                Some(q) => {
                    q.validate()?;
                    let runner = QueueRunner::new(q.workers).with_max_attempts(q.max_attempts);
                    if q.endpoints.is_empty() {
                        runner.run(&job)?
                    } else {
                        // Remote fleet: leased blocks ship to the spec's
                        // endpoints; the lease deadline lets peers reclaim
                        // a wedged transport, and the final attempt falls
                        // back in-process — bit-identical either way.
                        let worker = RemoteWorker::from_queue_spec(q);
                        let lease_timeout = worker.lease_timeout();
                        runner
                            .with_worker(worker)
                            .with_lease_timeout(lease_timeout)
                            .run(&job)?
                    }
                }
                None => LocalRunner::new(spec.mc.threads).run(&job)?,
            };
            (summary, ServeTier::Mc)
        }
    };
    let report = RunReport {
        spec: spec.clone(),
        policy_name: job.policy_name().to_owned(),
        summary: SummaryReport::from_summary(&summary),
        served,
        source: None,
    };
    Ok((summary, report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use eacp_spec::{FaultSpec, McSpec};

    fn small_spec() -> ExperimentSpec {
        let mut spec = ExperimentSpec::paper_nominal();
        spec.mc = McSpec {
            replications: 120,
            seed: 9,
            threads: 0,
        };
        spec
    }

    #[test]
    fn run_produces_consistent_summary_and_report() {
        let spec = small_spec();
        let (summary, report) = run(&spec).unwrap();
        assert_eq!(summary.replications, 120);
        assert_eq!(report.summary.replications, 120);
        assert_eq!(report.summary.p_timely, summary.p_timely());
        assert_eq!(report.policy_name, "A_D_S");
        assert_eq!(report.spec, spec);
        assert_eq!(summary.anomalies, 0);
    }

    #[test]
    fn identical_specs_give_bit_identical_summaries() {
        let spec = small_spec();
        let (a, _) = run(&spec).unwrap();
        let (b, _) = run(&spec).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn queue_spec_routes_through_the_queue_runner_bit_identically() {
        let plain = small_spec();
        let mut queued = small_spec();
        queued.executor = queued.executor.with_queue(eacp_spec::QueueSpec {
            workers: 3,
            max_attempts: 2,
            ..Default::default()
        });
        let (a, report_a) = run(&plain).unwrap();
        let (b, report_b) = run(&queued).unwrap();
        assert_eq!(a, b, "scheduler choice must not change the summary");
        assert_eq!(report_a.summary, report_b.summary);
        // The embedded spec records how the run was scheduled.
        assert!(report_b.spec.executor.queue.is_some());

        queued.executor.queue = Some(eacp_spec::QueueSpec {
            workers: 1,
            max_attempts: 0,
            ..Default::default()
        });
        assert!(run(&queued).is_err(), "zero attempt budget is invalid");
    }

    #[test]
    fn bad_spec_is_an_error_not_a_panic() {
        let mut spec = small_spec();
        spec.faults = FaultSpec::Poisson { lambda: f64::NAN };
        assert!(run(&spec).is_err());
    }
}
