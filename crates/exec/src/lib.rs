//! Unified execution layer for the EACP workspace.
//!
//! `eacp-spec` describes experiments; this crate *runs* them. It replaces
//! the two welded-shut entry points of the original simulator — the
//! closure-factory `MonteCarlo::run` and the separate `run_traced` code
//! path — with three composable pieces:
//!
//! * **[`Job`]** — a validated Monte-Carlo experiment, built from an
//!   [`ExperimentSpec`] ([`Job::from_spec`]) or from explicit parts for
//!   custom policies ([`Job::from_parts`]). Seeding is bit-identical to
//!   the legacy driver: replication `i` always runs with
//!   [`eacp_sim::replication_seed`]`(base_seed, i)`.
//! * **[`Observer`]** (re-exported from `eacp-sim`) — a streaming view of
//!   execution: replication brackets, every engine event (segments,
//!   checkpoints, faults, rollbacks, speed changes), deadline misses and
//!   energy samples. Tracing is just the `TraceRecorder` observer; the
//!   [`NoopObserver`] compiles away to the blind fast path.
//! * **[`Runner`]** — where replications execute. [`LocalRunner`] is the
//!   in-process multi-threaded implementation; its canonical fixed-block
//!   reduction makes the merged [`Summary`] bit-identical across thread
//!   counts (see the `runner` module docs). Remote/batch runners from the
//!   ROADMAP plug in behind the same trait.
//!
//! On top sits the **sharded sweep executor** ([`run_sweep`],
//! [`merge_dir`]): a [`SweepSpec`] grid is partitioned across machines by
//! grid-index range, each shard emits a [`GridReport`] JSON document, and
//! the merge step reassembles the full grid — refusing to proceed on
//! missing, duplicated or spec-mismatched points. [`render_csv`] turns a
//! merged grid into the CSV matrix of the ROADMAP's renderer item.
//!
//! # Example
//!
//! ```
//! use eacp_exec::{Job, LocalRunner, Runner};
//! use eacp_spec::ExperimentSpec;
//!
//! let mut spec = ExperimentSpec::paper_nominal();
//! spec.mc.replications = 200;
//! let job = Job::from_spec(&spec).unwrap();
//! let summary = LocalRunner::default().run(&job).unwrap();
//! assert_eq!(summary.replications, 200);
//! // Same job, any thread count: bit-identical summary.
//! assert_eq!(LocalRunner::new(3).run(&job).unwrap(), summary);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod csv;
pub mod job;
pub mod runner;
pub mod shard;

pub use csv::{render_csv, render_rows, PaperRef, CSV_HEADER};
pub use job::{FaultFactory, Job, PolicyFactory};
pub use runner::{LocalRunner, Runner};
pub use shard::{list_report_files, merge_dir, run_sweep, GridReport, PointReport, ShardId};

// The execution vocabulary lives in `eacp-sim` (the engine emits the
// events); re-exported here so runner-level code needs one import path.
pub use eacp_sim::{NoopObserver, Observer, Summary};

use eacp_spec::{ExperimentSpec, RunReport, SpecError, SummaryReport};

/// Runs one experiment spec end to end on the local runner, returning both
/// the exact in-memory [`Summary`] (for bit-identical comparisons) and the
/// serializable [`RunReport`].
///
/// This is the drop-in successor of the deprecated `eacp_spec::run`:
/// same signature, same seeding, but thread-count-invariant aggregation
/// and the Job/Observer machinery underneath.
pub fn run(spec: &ExperimentSpec) -> Result<(Summary, RunReport), SpecError> {
    let job = Job::from_spec(spec)?;
    let summary = LocalRunner::new(spec.mc.threads).run(&job)?;
    let report = RunReport {
        spec: spec.clone(),
        policy_name: job.policy_name().to_owned(),
        summary: SummaryReport::from_summary(&summary),
    };
    Ok((summary, report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use eacp_spec::{FaultSpec, McSpec};

    fn small_spec() -> ExperimentSpec {
        let mut spec = ExperimentSpec::paper_nominal();
        spec.mc = McSpec {
            replications: 120,
            seed: 9,
            threads: 0,
        };
        spec
    }

    #[test]
    fn run_produces_consistent_summary_and_report() {
        let spec = small_spec();
        let (summary, report) = run(&spec).unwrap();
        assert_eq!(summary.replications, 120);
        assert_eq!(report.summary.replications, 120);
        assert_eq!(report.summary.p_timely, summary.p_timely());
        assert_eq!(report.policy_name, "A_D_S");
        assert_eq!(report.spec, spec);
        assert_eq!(summary.anomalies, 0);
    }

    #[test]
    fn identical_specs_give_bit_identical_summaries() {
        let spec = small_spec();
        let (a, _) = run(&spec).unwrap();
        let (b, _) = run(&spec).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn per_replication_outcomes_match_the_legacy_driver() {
        // The redesign's compatibility contract: identical per-replication
        // seeding means identical counts (exact) and means (up to merge
        // rounding) versus the deprecated closure-factory driver.
        let spec = small_spec();
        let (new, _) = run(&spec).unwrap();
        #[allow(deprecated)]
        let (old, _) = eacp_spec::run(&spec).unwrap();
        assert_eq!(new.timely, old.timely);
        assert_eq!(new.completed, old.completed);
        assert_eq!(new.aborted, old.aborted);
        assert_eq!(new.anomalies, old.anomalies);
        assert_eq!(new.faults.min(), old.faults.min());
        assert_eq!(new.faults.max(), old.faults.max());
        let rel = (new.energy_all.mean() - old.energy_all.mean()).abs() / old.energy_all.mean();
        assert!(rel < 1e-12, "relative drift {rel}");
    }

    #[test]
    fn bad_spec_is_an_error_not_a_panic() {
        let mut spec = small_spec();
        spec.faults = FaultSpec::Poisson { lambda: f64::NAN };
        assert!(run(&spec).is_err());
    }
}
