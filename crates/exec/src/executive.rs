//! Spec-driven execution of the periodic EDF executive.
//!
//! [`run_executive`] is to [`eacp_spec::ExecutiveSpec`] what
//! [`crate::run`] is to `ExperimentSpec`: it validates the spec, builds
//! every runtime object, runs the workload, and returns both the exact
//! in-memory [`eacp_rtsched::executive::ExecutiveReport`] (full per-job
//! records) and the serializable [`ExecutiveRunReport`] aggregate.
//!
//! Reproducibility contract: the fault stream is
//! `spec.faults.build(spec.seed)`, so the same spec document always
//! produces a byte-identical report JSON.

use eacp_rtsched::executive::{run_executive_stream, ExecutiveParams, ExecutiveReport};
use eacp_sim::{ExecutorOptions, NoopObserver, Observer};
use eacp_spec::{
    CheckpointTotals, ExecutiveRunReport, ExecutiveSpec, ExecutiveSummaryReport, SpecError,
    TaskReport,
};

/// Runs one executive spec end to end with a silent observer.
///
/// # Errors
///
/// Fails on any spec validation error; execution itself cannot fail.
pub fn run_executive(
    spec: &ExecutiveSpec,
) -> Result<(ExecutiveReport, ExecutiveRunReport), SpecError> {
    run_executive_observed(spec, &mut NoopObserver)
}

/// [`run_executive`] with every engine event of every job streamed into
/// `observer` (trace recorders, live dashboards).
///
/// # Errors
///
/// Fails on any spec validation error; execution itself cannot fail.
pub fn run_executive_observed<O: Observer + ?Sized>(
    spec: &ExecutiveSpec,
    observer: &mut O,
) -> Result<(ExecutiveReport, ExecutiveRunReport), SpecError> {
    spec.validate()?;
    let set = spec.tasks.build()?;
    let params = ExecutiveParams {
        set: &set,
        costs: spec.costs.build()?,
        dvs: spec.dvs.build()?,
        hyperperiods: spec.hyperperiods,
        options: ExecutorOptions::default(),
    };
    let mut faults = spec.faults.build(spec.seed)?;
    let policy = &spec.policy;
    let report = run_executive_stream(
        &params,
        &mut faults,
        // audit:allow(panic): `spec.validate()` above checked every
        // per-task policy assignment.
        |task| Box::new(policy.for_task(task).build().expect("validated policy")),
        observer,
    );

    let run_report = summarize(spec, &set, &report);
    Ok((report, run_report))
}

/// Folds the per-job records into the serializable report schema.
fn summarize(
    spec: &ExecutiveSpec,
    set: &eacp_rtsched::TaskSet,
    report: &ExecutiveReport,
) -> ExecutiveRunReport {
    let mut tasks: Vec<TaskReport> = set
        .tasks()
        .iter()
        .map(|t| TaskReport {
            name: t.name.clone(),
            jobs: 0,
            deadline_misses: 0,
            energy: 0.0,
            faults: 0,
            rollbacks: 0,
            checkpoints: CheckpointTotals::default(),
            worst_response: 0.0,
        })
        .collect();
    let mut totals = CheckpointTotals::default();
    let (mut faults, mut rollbacks) = (0u64, 0u64);
    for job in &report.jobs {
        let t = &mut tasks[job.task];
        t.jobs += 1;
        if !job.timely {
            t.deadline_misses += 1;
        }
        t.energy += job.energy;
        t.faults += u64::from(job.faults);
        t.rollbacks += u64::from(job.rollbacks);
        t.checkpoints.add(&CheckpointTotals {
            store: u64::from(job.store_checkpoints),
            compare: u64::from(job.compare_checkpoints),
            compare_store: u64::from(job.compare_store_checkpoints),
        });
        t.worst_response = t.worst_response.max(job.finished - job.release);
        faults += u64::from(job.faults);
        rollbacks += u64::from(job.rollbacks);
    }
    for t in &tasks {
        totals.add(&t.checkpoints);
    }
    let hyperperiod = set.hyperperiod();
    ExecutiveRunReport {
        spec: spec.clone(),
        policy_names: spec.policy.policy_names(set.len()),
        summary: ExecutiveSummaryReport {
            hyperperiod,
            horizon: (hyperperiod * u64::from(spec.hyperperiods)) as f64,
            jobs: report.jobs.len() as u64,
            deadline_misses: report.deadline_misses as u64,
            miss_ratio: report.miss_ratio(),
            total_energy: report.total_energy,
            faults,
            rollbacks,
            checkpoints: totals,
        },
        tasks,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eacp_spec::{executive_preset, FaultSpec, PolicyAssignment, PolicySpec, TaskSetSpec};

    fn small_spec() -> ExecutiveSpec {
        let mut spec = ExecutiveSpec::new(
            "exec-test",
            TaskSetSpec::implicit([("sensor", 500.0, 4_000), ("control", 1_200.0, 8_000)]),
        );
        spec.faults = FaultSpec::Poisson { lambda: 5e-4 };
        spec.policy = PolicyAssignment::Shared(PolicySpec::from_tag("a_d_s", 5e-4, 2, 0).unwrap());
        spec.hyperperiods = 2;
        spec.seed = 42;
        spec
    }

    #[test]
    fn run_executive_aggregates_match_the_raw_report() {
        let spec = small_spec();
        let (raw, report) = run_executive(&spec).unwrap();
        assert_eq!(report.summary.jobs, raw.jobs.len() as u64);
        assert_eq!(report.summary.deadline_misses, raw.deadline_misses as u64);
        assert!((report.summary.total_energy - raw.total_energy).abs() < 1e-9);
        assert_eq!(report.summary.hyperperiod, 8_000);
        assert_eq!(report.summary.horizon, 16_000.0);
        // 2 hyperperiods of 8000: sensor releases 4 jobs, control 2.
        assert_eq!(report.tasks[0].jobs, 4);
        assert_eq!(report.tasks[1].jobs, 2);
        let per_task_jobs: u64 = report.tasks.iter().map(|t| t.jobs).sum();
        assert_eq!(per_task_jobs, report.summary.jobs);
        assert_eq!(report.policy_names, vec!["A_D_S".to_owned(); 2]);
        // Every job verifies at least once, so checkpoints accumulate.
        assert!(report.summary.checkpoints.total() > 0);
    }

    #[test]
    fn invalid_specs_are_rejected_before_running() {
        let mut bad = small_spec();
        bad.hyperperiods = 0;
        assert!(run_executive(&bad).is_err());
        let mut bad = small_spec();
        bad.tasks.tasks.clear();
        assert!(run_executive(&bad).is_err());
    }

    #[test]
    fn shipped_executive_presets_run() {
        for name in eacp_spec::executive_preset_names() {
            let spec = executive_preset(name).unwrap();
            let (_, report) = run_executive(&spec).unwrap_or_else(|e| panic!("{name}: {e}"));
            assert!(report.summary.jobs > 0, "{name} released no jobs");
        }
    }
}
