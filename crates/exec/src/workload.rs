//! The [`Workload`] trait: what a runner actually replicates.
//!
//! The execution core used to be welded to one replication unit — a
//! single-task [`Job`] reduced into a [`Summary`]. This module abstracts
//! the unit out: a [`Workload`] is anything that can run replication `i`
//! (seeded by the workspace contract) into a mergeable accumulator, and
//! the canonical fixed-block reduction — the partition rule that makes
//! results bit-identical across thread and worker counts — is written
//! once, generically, in [`run_workload_local`] and
//! [`run_workload_queued`].
//!
//! Two implementations ship:
//!
//! * [`Job`] (accumulator [`Summary`]) — the existing single-task
//!   replication path. [`crate::LocalRunner::run`] routes through the
//!   generic reduction, and the golden-identity tests pin it bit-identical
//!   to the pre-refactor behavior.
//! * [`crate::ExecutiveJob`] (accumulator [`crate::ExecutiveSummary`]) —
//!   one replication is one seeded EDF-executive hyperperiod horizon.
//!
//! # Determinism contract
//!
//! The reduction never depends on thread or worker count: blocks are
//! sized by [`canonical_block_size`] (a function of the replication count
//! alone), each block is reduced sequentially by a pooled
//! [`Workload::Rep`] driver, and the per-block partials merge in
//! ascending block order.

use crate::queue::{BlockAssignment, QueueObserver, WorkQueue};
use crate::runner::canonical_block_size;
use eacp_sim::{NoopObserver, Summary};
use eacp_spec::SpecError;
use std::sync::atomic::{AtomicU64, Ordering};

/// A replication unit a runner can reduce: build a pooled per-block
/// driver, run seeded replications through it, merge the partials.
pub trait Workload: Sync {
    /// The mergeable accumulator replications absorb into.
    type Acc: Send;
    /// The pooled per-block replication driver — built once per block
    /// ([`Workload::replicator`]), then reset per replication, so the
    /// replication loop itself allocates nothing.
    type Rep<'w>: Replicate<Acc = Self::Acc>
    where
        Self: 'w;

    /// Number of replications the workload plans.
    fn replications(&self) -> u64;

    /// A fresh accumulator: the identity element of [`Workload::merge_acc`].
    fn empty_acc(&self) -> Self::Acc;

    /// Merges a partial into the running total. Callers merge partials in
    /// ascending block order, which is what makes float moments
    /// bit-identical across schedules.
    fn merge_acc(into: &mut Self::Acc, part: &Self::Acc);

    /// Builds the pooled driver for one block (setup, may allocate).
    fn replicator(&self) -> Self::Rep<'_>;
}

/// Runs one seeded replication of a [`Workload`] into its accumulator.
pub trait Replicate {
    /// The accumulator type (matches the owning workload's).
    type Acc;

    /// Runs replication `replication` under the workspace seeding
    /// contract and absorbs its outcome into `acc`.
    fn run_one(&mut self, replication: u64, acc: &mut Self::Acc);
}

/// [`Workload`] for the single-task Monte-Carlo [`Job`]: one replication
/// is one engine run, accumulated into a [`Summary`]. The pooled driver is
/// the existing [`crate::Replicator`] — the zero-allocation hot path the
/// `alloc-count` witness pins.
impl Workload for crate::job::Job {
    type Acc = Summary;
    type Rep<'w> = JobReplicate<'w>;

    fn replications(&self) -> u64 {
        crate::job::Job::replications(self)
    }

    fn empty_acc(&self) -> Summary {
        Summary::empty()
    }

    fn merge_acc(into: &mut Summary, part: &Summary) {
        into.merge(part);
    }

    fn replicator(&self) -> JobReplicate<'_> {
        JobReplicate(crate::job::Job::replicator(self))
    }
}

/// The [`Job`] driver: wraps the pooled [`crate::Replicator`] on the blind
/// fast path (the observed paths stay on [`crate::Runner::run_observed`]).
///
/// [`Job`]: crate::job::Job
pub struct JobReplicate<'w>(crate::job::Replicator<'w>);

impl Replicate for JobReplicate<'_> {
    type Acc = Summary;

    fn run_one(&mut self, replication: u64, acc: &mut Summary) {
        let out = self.0.run_replication(replication, &mut NoopObserver);
        acc.absorb(&out);
    }
}

/// Reduces one contiguous block `[lo, hi)` of a workload sequentially:
/// one pooled driver serves the whole block.
// audit:setup: per-block orchestration — builds the pooled driver and the
// empty accumulator once; the replication loop itself is `run_one`, which
// stays under the hot-path allocation rule.
pub(crate) fn run_workload_block<W: Workload + ?Sized>(workload: &W, lo: u64, hi: u64) -> W::Acc {
    let mut driver = workload.replicator();
    let mut partial = workload.empty_acc();
    for rep in lo..hi {
        driver.run_one(rep, &mut partial);
    }
    partial
}

/// Resolves a requested thread count (0 = available parallelism), clamped
/// to the number of blocks.
fn resolve_threads(threads: usize, blocks: u64) -> usize {
    let t = if threads == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        threads
    };
    t.clamp(1, blocks.max(1) as usize)
}

/// The canonical in-process reduction of any [`Workload`]: fixed-size
/// blocks handed to a work-stealing thread pool, partials merged in
/// ascending block order. Bit-identical for any `threads` value —
/// including the sequential `threads <= 1` path.
// audit:setup: per-run orchestration — worker vectors and the block index
// are allocated once per run; the replication loop is `run_workload_block`.
pub fn run_workload_local<W: Workload>(
    workload: &W,
    threads: usize,
    block_size_override: u64,
) -> W::Acc {
    let reps = workload.replications();
    let block = canonical_block_size(block_size_override, reps);
    let n_blocks = reps.div_ceil(block);
    let threads = resolve_threads(threads, n_blocks);
    if threads <= 1 {
        let mut total = workload.empty_acc();
        for b in 0..n_blocks {
            let lo = b * block;
            let hi = (lo + block).min(reps);
            let partial = run_workload_block(workload, lo, hi);
            W::merge_acc(&mut total, &partial);
        }
        return total;
    }

    let next = AtomicU64::new(0);
    let mut worker_results: Vec<Vec<(u64, W::Acc)>> = Vec::with_capacity(threads);
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(threads);
        for _ in 0..threads {
            let next = &next;
            handles.push(scope.spawn(move || {
                let mut local = Vec::new();
                loop {
                    let b = next.fetch_add(1, Ordering::Relaxed);
                    if b >= n_blocks {
                        break;
                    }
                    let lo = b * block;
                    let hi = (lo + block).min(reps);
                    local.push((b, run_workload_block(workload, lo, hi)));
                }
                local
            }));
        }
        for h in handles {
            // audit:allow(panic): re-raises a worker thread's panic on
            // the caller thread instead of silently dropping blocks.
            worker_results.push(h.join().expect("simulation worker panicked"));
        }
    });

    // Canonical order: place each block partial at its index, then merge
    // ascending — the thread schedule is forgotten here.
    let mut by_index: Vec<Option<W::Acc>> = Vec::with_capacity(n_blocks as usize);
    by_index.resize_with(n_blocks as usize, || None);
    for (b, partial) in worker_results.into_iter().flatten() {
        by_index[b as usize] = Some(partial);
    }
    let mut total = workload.empty_acc();
    for partial in by_index.iter() {
        // audit:allow(panic): the work-stealing loop hands out each block
        // index exactly once and every worker joined above.
        W::merge_acc(&mut total, partial.as_ref().expect("every block reduced"));
    }
    total
}

/// The canonical work-queue reduction of any [`Workload`]: the same fixed
/// blocks leased to a worker pool through a [`WorkQueue`] (with lease
/// retry), partials merged in ascending block order. Bit-identical to
/// [`run_workload_local`] for any worker count and any failure/retry
/// schedule, because a failed lease discards its partial wholesale and the
/// re-run is deterministic.
///
/// # Errors
///
/// Fails when an assignment exhausts its attempt budget (queue poisoned).
// audit:setup: per-run orchestration — the queue and result slots are
// allocated once per run; the replication loop is `run_workload_block`.
pub fn run_workload_queued<W: Workload>(
    workload: &W,
    workers: usize,
    max_attempts: u32,
    block_size_override: u64,
    obs: &dyn QueueObserver,
) -> Result<W::Acc, SpecError> {
    let reps = workload.replications();
    let block = canonical_block_size(block_size_override, reps);
    let n_blocks = reps.div_ceil(block);
    let assignments = (0..n_blocks).map(|b| BlockAssignment {
        block: b,
        lo: b * block,
        hi: ((b + 1) * block).min(reps),
    });
    let queue = WorkQueue::new(assignments).with_max_attempts(max_attempts);
    let pool = crate::queue::resolve_workers(workers).clamp(1, n_blocks.max(1) as usize);
    let partials = queue.drain(pool, obs, |_worker, lease| {
        Ok(run_workload_block(
            workload,
            lease.item().lo,
            lease.item().hi,
        ))
    })?;
    let mut total = workload.empty_acc();
    for partial in &partials {
        W::merge_acc(&mut total, partial);
    }
    Ok(total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::Job;
    use crate::queue::NoopQueueObserver;
    use crate::runner::{LocalRunner, Runner};
    use eacp_spec::{ExperimentSpec, McSpec};

    fn job(reps: u64) -> Job {
        let mut spec = ExperimentSpec::paper_nominal();
        spec.mc = McSpec {
            replications: reps,
            seed: 42,
            threads: 0,
        };
        Job::from_spec(&spec).unwrap()
    }

    #[test]
    fn generic_local_reduction_matches_the_runner_bit_for_bit() {
        let job = job(300);
        let reference = LocalRunner::new(1).run(&job).unwrap();
        for threads in [1usize, 2, 5] {
            assert_eq!(
                run_workload_local(&job, threads, 0),
                reference,
                "threads = {threads}"
            );
        }
    }

    #[test]
    fn generic_queued_reduction_matches_local_for_any_worker_count() {
        let job = job(250);
        let reference = run_workload_local(&job, 1, 0);
        for workers in [1usize, 3, 16] {
            let queued = run_workload_queued(&job, workers, 3, 0, &NoopQueueObserver).unwrap();
            assert_eq!(queued, reference, "workers = {workers}");
        }
    }
}
