//! The [`Job`] abstraction: a fully-validated, self-contained Monte-Carlo
//! experiment ready for any [`crate::Runner`].
//!
//! A job replaces the old closure-factory signature of
//! `MonteCarlo::run(scenario, options, policy_factory, fault_factory)`:
//! spec-driven jobs build their per-replication policy and fault stream
//! from the validated [`ExperimentSpec`] ([`Job::from_spec`]), while
//! custom policies (tests, ablations) enter through [`Job::from_parts`].
//! Both keep the workspace's bit-identical seeding contract: replication
//! `i` always runs with [`replication_seed`]`(base_seed, i)`.

use eacp_core::policies::PolicyKind;
use eacp_faults::{BatchedFaults, FaultProcess};
use eacp_sim::{
    replication_seed, Executor, ExecutorOptions, ExecutorScratch, Observer, Policy, RunOutcome,
    Scenario,
};
use eacp_spec::{ExperimentSpec, FaultSpec, PolicySpec, SpecError};

/// Builds a fresh policy for one replication seed.
pub type PolicyFactory = Box<dyn Fn(u64) -> Box<dyn Policy> + Send + Sync>;
/// Builds a fresh fault stream for one replication seed.
pub type FaultFactory = Box<dyn Fn(u64) -> Box<dyn FaultProcess> + Send + Sync>;

/// How a job constructs its per-replication policy and fault stream.
enum Dispatch {
    /// Spec-built jobs: the concrete [`PolicyKind`]/[`FaultKind`] enums,
    /// built once per block and `reset(seed)` per replication — the
    /// zero-allocation, monomorphized hot path.
    Spec {
        policy: PolicySpec,
        faults: FaultSpec,
    },
    /// `from_parts` jobs: boxed factories called once per replication —
    /// the open escape hatch for custom policies, at trait-object speed.
    Factories {
        policy: PolicyFactory,
        faults: FaultFactory,
    },
}

/// A validated Monte-Carlo experiment: scenario, executor semantics,
/// replication plan and per-replication policy/fault construction.
pub struct Job {
    name: String,
    policy_name: String,
    scenario: Scenario,
    options: ExecutorOptions,
    replications: u64,
    base_seed: u64,
    dispatch: Dispatch,
    /// The canonical spec the job was built from, for schedulers that
    /// must ship the experiment elsewhere (the remote worker transport).
    /// `from_parts` jobs carry `None`: boxed factories have no spec form
    /// and therefore cannot leave the process.
    spec: Option<ExperimentSpec>,
}

impl std::fmt::Debug for Job {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Job")
            .field("name", &self.name)
            .field("policy_name", &self.policy_name)
            .field("replications", &self.replications)
            .field("base_seed", &self.base_seed)
            .field(
                "dispatch",
                &match self.dispatch {
                    Dispatch::Spec { .. } => "spec",
                    Dispatch::Factories { .. } => "factories",
                },
            )
            .finish_non_exhaustive()
    }
}

impl Job {
    /// Builds a job from a declarative experiment description.
    ///
    /// Every component is validated up front, so later replication builds
    /// cannot fail inside worker threads.
    // audit:setup: job construction — validation and name clones happen
    // once per job, before any replication runs.
    pub fn from_spec(spec: &ExperimentSpec) -> Result<Self, SpecError> {
        let scenario = spec.scenario.build()?;
        let options = spec.executor.build()?;
        if spec.mc.replications == 0 {
            return Err(SpecError::invalid("replications must be positive"));
        }
        // Validate once; replication loops can then expect success.
        let policy_name = spec.policy.build()?.name().to_owned();
        spec.faults.build(0)?;
        Ok(Self {
            name: spec.name.clone(),
            policy_name,
            scenario,
            options,
            replications: spec.mc.replications,
            base_seed: spec.mc.seed,
            dispatch: Dispatch::Spec {
                policy: spec.policy,
                faults: spec.faults.clone(),
            },
            spec: Some(spec.clone()),
        })
    }

    /// Builds the same experiment as [`Job::from_spec`], but routed
    /// through the boxed-factory escape hatch: a fresh
    /// `Box<dyn Policy>` / `Box<dyn FaultProcess>` per replication,
    /// dispatched virtually, with no instance pooling.
    ///
    /// This is the trait-object path the pooled enums replaced. It exists
    /// for measurement and proof: `eacp bench` times it against the
    /// pooled path, and the golden bit-identity tests pin both paths to
    /// the same `Summary` for every scheme × fault process.
    ///
    /// # Errors
    ///
    /// Fails on the same invalid specs as [`Job::from_spec`].
    // audit:setup: the boxed escape hatch allocates by design — that is
    // the path the pooled enums are benchmarked against.
    pub fn from_spec_boxed(spec: &ExperimentSpec) -> Result<Self, SpecError> {
        let policy_spec = spec.policy;
        let fault_spec = spec.faults.clone();
        // Validate up front so the factories can expect success.
        policy_spec.build()?;
        fault_spec.build(0)?;
        Self::from_parts(
            spec.name.clone(),
            spec.scenario.build()?,
            spec.executor.build()?,
            spec.mc.replications,
            spec.mc.seed,
            // audit:allow(panic): both specs were just validated above.
            move |_seed| Box::new(policy_spec.build().expect("validated policy spec")),
            // audit:allow(panic): both specs were just validated above.
            move |seed| Box::new(fault_spec.build(seed).expect("validated fault spec")),
        )
    }

    /// Builds a job from explicit parts — the escape hatch for policies and
    /// fault processes that have no spec form (custom test policies,
    /// ablation prototypes).
    ///
    /// # Errors
    ///
    /// Fails when `replications == 0`.
    // audit:setup: job construction — the factories are boxed once here.
    pub fn from_parts(
        name: impl Into<String>,
        scenario: Scenario,
        options: ExecutorOptions,
        replications: u64,
        base_seed: u64,
        policy: impl Fn(u64) -> Box<dyn Policy> + Send + Sync + 'static,
        faults: impl Fn(u64) -> Box<dyn FaultProcess> + Send + Sync + 'static,
    ) -> Result<Self, SpecError> {
        if replications == 0 {
            return Err(SpecError::invalid("replications must be positive"));
        }
        let name = name.into();
        let policy = Box::new(policy);
        let policy_name = policy(base_seed).name().to_owned();
        Ok(Self {
            name,
            policy_name,
            scenario,
            options,
            replications,
            base_seed,
            dispatch: Dispatch::Factories {
                policy,
                faults: Box::new(faults),
            },
            spec: None,
        })
    }

    /// The experiment's name (from the spec, or the `from_parts` caller).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The canonical [`ExperimentSpec`] this job was built from, when it
    /// has one: `Some` for [`Job::from_spec`] jobs, `None` for the
    /// [`Job::from_parts`] / [`Job::from_spec_boxed`] escape hatches. A
    /// remote worker serializes this to ship the job across the wire.
    pub fn spec(&self) -> Option<&ExperimentSpec> {
        self.spec.as_ref()
    }

    /// The `Policy::name()` of the scheme under test.
    pub fn policy_name(&self) -> &str {
        &self.policy_name
    }

    /// Number of replications the job plans.
    pub fn replications(&self) -> u64 {
        self.replications
    }

    /// The base seed replication seeds derive from.
    pub fn base_seed(&self) -> u64 {
        self.base_seed
    }

    /// The simulated world.
    pub fn scenario(&self) -> &Scenario {
        &self.scenario
    }

    /// The executor semantics the job runs under.
    pub fn options(&self) -> ExecutorOptions {
        self.options
    }

    /// Whether every replication of this job is guaranteed to produce the
    /// same [`RunOutcome`] — the precondition of the closed-form serve
    /// tier ([`crate::serve_closed_form`]).
    ///
    /// True only for spec-built jobs whose fault stream does not depend on
    /// the replication seed: a deterministic fault schedule, or Poisson
    /// arrivals with `λ = 0` (no arrivals ever). Every spec-built policy
    /// is deterministic given the execution it observes (the documented
    /// [`PolicyKind::reset`] contract), so a seed-invariant fault stream
    /// makes the whole replication seed-invariant. Factory-built jobs may
    /// hide randomized custom policies, so they are never invariant.
    pub fn replication_invariant(&self) -> bool {
        match &self.dispatch {
            Dispatch::Spec { faults, .. } => match faults {
                FaultSpec::Poisson { lambda } => *lambda == 0.0,
                FaultSpec::Deterministic { .. } => true,
                _ => false,
            },
            Dispatch::Factories { .. } => false,
        }
    }

    /// Runs one replication, streaming its events (and the replication
    /// bracket) into `obs`.
    ///
    /// Routed through the same [`Replicator`] machinery the runners loop
    /// over, so a traced replay of one specific replication executes the
    /// exact code path — pooled scratch, monomorphized enum dispatch for
    /// spec jobs — that produced it inside a Monte-Carlo run.
    pub fn run_replication<O: Observer + ?Sized>(
        &self,
        replication: u64,
        obs: &mut O,
    ) -> RunOutcome {
        self.replicator().run_replication(replication, obs)
    }

    /// Creates the per-block replication driver: the executor, the pooled
    /// [`ExecutorScratch`], and — for spec-built jobs — one concrete
    /// policy/fault-process pair that is `reset(seed)` per replication.
    ///
    /// This is the zero-allocation entry point for running *many*
    /// replications: build the replicator once, then call
    /// [`Replicator::run_replication`] in a loop. (The convenience
    /// [`Job::run_replication`] builds a fresh one per call.) The
    /// `alloc-count` witness test pins the pooled loop allocation-free.
    // audit:setup: builds the pooled executor/scratch/policy/faults once
    // per block; replications then only reset them.
    pub fn replicator(&self) -> Replicator<'_> {
        let pooled = match &self.dispatch {
            Dispatch::Spec { policy, faults } => Some((
                // audit:allow(panic): `from_spec` validated both specs.
                policy.build().expect("validated policy spec"),
                // Arrivals are drawn in blocks through the pooled batch —
                // bit-identical to the scalar stream (see eacp-faults).
                // audit:allow(panic): `from_spec` validated both specs.
                BatchedFaults::new(faults.build(self.base_seed).expect("validated fault spec")),
            )),
            Dispatch::Factories { .. } => None,
        };
        Replicator {
            job: self,
            executor: Executor::new(&self.scenario).with_options(self.options),
            scratch: ExecutorScratch::new(),
            pooled,
        }
    }
}

/// Runs a job's replications one at a time, reusing everything reusable:
/// the executor, the engine's [`ExecutorScratch`], and (for spec-built
/// jobs) the policy and fault-process instances themselves.
///
/// On the pooled path a replication performs **no heap allocation**: the
/// policy and fault process are `reset(seed)` in place — the reproducible
/// equivalent of rebuilding them — and the engine reuses the scratch's
/// store stack and energy meter. A golden integration test pins this path
/// bit-identical to the boxed-factory path for every scheme × fault
/// process.
pub struct Replicator<'j> {
    job: &'j Job,
    executor: Executor<'j>,
    scratch: ExecutorScratch,
    pooled: Option<(PolicyKind, BatchedFaults)>,
}

impl Replicator<'_> {
    /// Runs one replication under the workspace seeding contract,
    /// streaming the replication bracket and engine events into `obs`.
    pub fn run_replication<O: Observer + ?Sized>(
        &mut self,
        replication: u64,
        obs: &mut O,
    ) -> RunOutcome {
        let seed = replication_seed(self.job.base_seed, replication);
        obs.on_replication_start(replication, seed);
        let out = match (&mut self.pooled, &self.job.dispatch) {
            (Some((policy, faults)), _) => {
                policy.reset(seed);
                faults.reset(seed);
                self.executor
                    .run_with_scratch(&mut self.scratch, policy, faults, obs)
            }
            (None, Dispatch::Factories { policy, faults }) => {
                let mut policy = policy(seed);
                let mut faults = faults(seed);
                self.executor
                    .run_with_scratch(&mut self.scratch, &mut *policy, &mut *faults, obs)
            }
            (None, Dispatch::Spec { .. }) => unreachable!("spec jobs always pool"),
        };
        obs.on_replication_end(replication, &out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eacp_faults::DeterministicFaults;
    use eacp_sim::{NoopObserver, TraceRecorder};
    use eacp_spec::McSpec;

    fn small_spec() -> ExperimentSpec {
        let mut spec = ExperimentSpec::paper_nominal();
        spec.mc = McSpec {
            replications: 50,
            seed: 9,
            threads: 0,
        };
        spec
    }

    #[test]
    fn from_spec_validates_up_front() {
        let mut bad = small_spec();
        bad.mc.replications = 0;
        assert!(Job::from_spec(&bad).is_err());

        let job = Job::from_spec(&small_spec()).unwrap();
        assert_eq!(job.replications(), 50);
        assert_eq!(job.policy_name(), "A_D_S");
        assert_eq!(job.name(), "paper-nominal");
    }

    #[test]
    fn replication_is_seeded_from_the_contract() {
        struct SeedProbe {
            seen: Vec<(u64, u64)>,
        }
        impl Observer for SeedProbe {
            fn on_replication_start(&mut self, rep: u64, seed: u64) {
                self.seen.push((rep, seed));
            }
        }
        let job = Job::from_spec(&small_spec()).unwrap();
        let mut probe = SeedProbe { seen: vec![] };
        job.run_replication(7, &mut probe);
        assert_eq!(probe.seen, vec![(7, replication_seed(9, 7))]);
    }

    #[test]
    fn run_replication_is_reproducible_and_traceable() {
        let job = Job::from_spec(&small_spec()).unwrap();
        let a = job.run_replication(3, &mut NoopObserver);
        let mut rec = TraceRecorder::new();
        let b = job.run_replication(3, &mut rec);
        assert_eq!(a, b, "observation must not change the outcome");
        assert!(!rec.is_empty());
    }

    #[test]
    fn from_parts_runs_custom_policies() {
        use eacp_sim::{CheckpointKind, Directive, PlanContext};
        struct Fixed;
        impl Policy for Fixed {
            fn name(&self) -> &'static str {
                "fixed"
            }
            fn plan(&mut self, _ctx: &PlanContext<'_>) -> Directive {
                Directive::run(0, 100.0, CheckpointKind::CompareStore)
            }
        }
        let scenario = Scenario::new(
            eacp_sim::TaskSpec::new(1000.0, 2000.0),
            eacp_sim::CheckpointCosts::paper_scp_variant(),
            eacp_spec::DvsSpec::PaperDefault.build().unwrap(),
        );
        let job = Job::from_parts(
            "custom",
            scenario,
            ExecutorOptions::default(),
            10,
            1,
            |_seed| Box::new(Fixed),
            |_seed| Box::new(DeterministicFaults::none()),
        )
        .unwrap();
        assert_eq!(job.policy_name(), "fixed");
        let out = job.run_replication(0, &mut NoopObserver);
        assert!(out.timely);
    }
}
