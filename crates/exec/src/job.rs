//! The [`Job`] abstraction: a fully-validated, self-contained Monte-Carlo
//! experiment ready for any [`crate::Runner`].
//!
//! A job replaces the old closure-factory signature of
//! `MonteCarlo::run(scenario, options, policy_factory, fault_factory)`:
//! spec-driven jobs build their per-replication policy and fault stream
//! from the validated [`ExperimentSpec`] ([`Job::from_spec`]), while
//! custom policies (tests, ablations) enter through [`Job::from_parts`].
//! Both keep the workspace's bit-identical seeding contract: replication
//! `i` always runs with [`replication_seed`]`(base_seed, i)`.

use eacp_faults::FaultProcess;
use eacp_sim::{
    replication_seed, Executor, ExecutorOptions, Observer, Policy, RunOutcome, Scenario,
};
use eacp_spec::{ExperimentSpec, SpecError};

/// Builds a fresh policy for one replication seed.
pub type PolicyFactory = Box<dyn Fn(u64) -> Box<dyn Policy> + Send + Sync>;
/// Builds a fresh fault stream for one replication seed.
pub type FaultFactory = Box<dyn Fn(u64) -> Box<dyn FaultProcess> + Send + Sync>;

/// A validated Monte-Carlo experiment: scenario, executor semantics,
/// replication plan and per-replication policy/fault construction.
pub struct Job {
    name: String,
    policy_name: String,
    scenario: Scenario,
    options: ExecutorOptions,
    replications: u64,
    base_seed: u64,
    policy: PolicyFactory,
    faults: FaultFactory,
}

impl std::fmt::Debug for Job {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Job")
            .field("name", &self.name)
            .field("policy_name", &self.policy_name)
            .field("replications", &self.replications)
            .field("base_seed", &self.base_seed)
            .finish_non_exhaustive()
    }
}

impl Job {
    /// Builds a job from a declarative experiment description.
    ///
    /// Every component is validated up front, so later replication builds
    /// cannot fail inside worker threads.
    pub fn from_spec(spec: &ExperimentSpec) -> Result<Self, SpecError> {
        let scenario = spec.scenario.build()?;
        let options = spec.executor.build()?;
        if spec.mc.replications == 0 {
            return Err(SpecError::invalid("replications must be positive"));
        }
        // Validate once; the factories below can then expect success.
        let policy_name = spec.policy.build()?.name().to_owned();
        spec.faults.build(0)?;
        let policy_spec = spec.policy;
        let fault_spec = spec.faults.clone();
        Ok(Self {
            name: spec.name.clone(),
            policy_name,
            scenario,
            options,
            replications: spec.mc.replications,
            base_seed: spec.mc.seed,
            policy: Box::new(move |_seed| policy_spec.build().expect("validated policy spec")),
            faults: Box::new(move |seed| fault_spec.build(seed).expect("validated fault spec")),
        })
    }

    /// Builds a job from explicit parts — the escape hatch for policies and
    /// fault processes that have no spec form (custom test policies,
    /// ablation prototypes).
    ///
    /// # Errors
    ///
    /// Fails when `replications == 0`.
    pub fn from_parts(
        name: impl Into<String>,
        scenario: Scenario,
        options: ExecutorOptions,
        replications: u64,
        base_seed: u64,
        policy: impl Fn(u64) -> Box<dyn Policy> + Send + Sync + 'static,
        faults: impl Fn(u64) -> Box<dyn FaultProcess> + Send + Sync + 'static,
    ) -> Result<Self, SpecError> {
        if replications == 0 {
            return Err(SpecError::invalid("replications must be positive"));
        }
        let name = name.into();
        let policy = Box::new(policy);
        let policy_name = policy(base_seed).name().to_owned();
        Ok(Self {
            name,
            policy_name,
            scenario,
            options,
            replications,
            base_seed,
            policy,
            faults: Box::new(faults),
        })
    }

    /// The experiment's name (from the spec, or the `from_parts` caller).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The `Policy::name()` of the scheme under test.
    pub fn policy_name(&self) -> &str {
        &self.policy_name
    }

    /// Number of replications the job plans.
    pub fn replications(&self) -> u64 {
        self.replications
    }

    /// The base seed replication seeds derive from.
    pub fn base_seed(&self) -> u64 {
        self.base_seed
    }

    /// The simulated world.
    pub fn scenario(&self) -> &Scenario {
        &self.scenario
    }

    /// The executor semantics the job runs under.
    pub fn options(&self) -> ExecutorOptions {
        self.options
    }

    /// Runs one replication, streaming its events (and the replication
    /// bracket) into `obs`.
    ///
    /// This is the single-replication building block every runner loops
    /// over; calling it directly is how tracing tools replay one specific
    /// replication of a Monte-Carlo experiment.
    pub fn run_replication<O: Observer + ?Sized>(
        &self,
        replication: u64,
        obs: &mut O,
    ) -> RunOutcome {
        let executor = Executor::new(&self.scenario).with_options(self.options);
        self.run_replication_on(&executor, replication, obs)
    }

    /// [`Job::run_replication`] with a caller-held executor (runners build
    /// the executor once per block instead of once per replication).
    pub(crate) fn run_replication_on<O: Observer + ?Sized>(
        &self,
        executor: &Executor<'_>,
        replication: u64,
        obs: &mut O,
    ) -> RunOutcome {
        let seed = replication_seed(self.base_seed, replication);
        obs.on_replication_start(replication, seed);
        let mut policy = (self.policy)(seed);
        let mut faults = (self.faults)(seed);
        let out = executor.run_observed(&mut *policy, &mut *faults, obs);
        obs.on_replication_end(replication, &out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eacp_faults::DeterministicFaults;
    use eacp_sim::{NoopObserver, TraceRecorder};
    use eacp_spec::McSpec;

    fn small_spec() -> ExperimentSpec {
        let mut spec = ExperimentSpec::paper_nominal();
        spec.mc = McSpec {
            replications: 50,
            seed: 9,
            threads: 0,
        };
        spec
    }

    #[test]
    fn from_spec_validates_up_front() {
        let mut bad = small_spec();
        bad.mc.replications = 0;
        assert!(Job::from_spec(&bad).is_err());

        let job = Job::from_spec(&small_spec()).unwrap();
        assert_eq!(job.replications(), 50);
        assert_eq!(job.policy_name(), "A_D_S");
        assert_eq!(job.name(), "paper-nominal");
    }

    #[test]
    fn replication_is_seeded_from_the_contract() {
        struct SeedProbe {
            seen: Vec<(u64, u64)>,
        }
        impl Observer for SeedProbe {
            fn on_replication_start(&mut self, rep: u64, seed: u64) {
                self.seen.push((rep, seed));
            }
        }
        let job = Job::from_spec(&small_spec()).unwrap();
        let mut probe = SeedProbe { seen: vec![] };
        job.run_replication(7, &mut probe);
        assert_eq!(probe.seen, vec![(7, replication_seed(9, 7))]);
    }

    #[test]
    fn run_replication_is_reproducible_and_traceable() {
        let job = Job::from_spec(&small_spec()).unwrap();
        let a = job.run_replication(3, &mut NoopObserver);
        let mut rec = TraceRecorder::new();
        let b = job.run_replication(3, &mut rec);
        assert_eq!(a, b, "observation must not change the outcome");
        assert!(!rec.is_empty());
    }

    #[test]
    fn from_parts_runs_custom_policies() {
        use eacp_sim::{CheckpointKind, Directive, PlanContext};
        struct Fixed;
        impl Policy for Fixed {
            fn name(&self) -> &'static str {
                "fixed"
            }
            fn plan(&mut self, _ctx: &PlanContext<'_>) -> Directive {
                Directive::run(0, 100.0, CheckpointKind::CompareStore)
            }
        }
        let scenario = Scenario::new(
            eacp_sim::TaskSpec::new(1000.0, 2000.0),
            eacp_sim::CheckpointCosts::paper_scp_variant(),
            eacp_spec::DvsSpec::PaperDefault.build().unwrap(),
        );
        let job = Job::from_parts(
            "custom",
            scenario,
            ExecutorOptions::default(),
            10,
            1,
            |_seed| Box::new(Fixed),
            |_seed| Box::new(DeterministicFaults::none()),
        )
        .unwrap();
        assert_eq!(job.policy_name(), "fixed");
        let out = job.run_replication(0, &mut NoopObserver);
        assert!(out.timely);
    }
}
