//! The closed-form serve tier: exact answers for replication-invariant
//! cells, without running the full Monte-Carlo loop.
//!
//! The renewal-analysis literature (Duda 1983; Aupy et al.) gives closed
//! forms for checkpointed completion time exactly where the process is
//! degenerate or memoryless; the strongest — and only bit-safe — case is
//! the **degenerate** one: when the fault stream is the same for every
//! replication seed (Poisson `λ = 0`, or a deterministic fault schedule)
//! and the policy is deterministic given what it observes (every in-repo
//! scheme is), the outcome distribution is a point mass. A 10 000-rep
//! Monte-Carlo run of such a cell simulates the identical execution
//! 10 000 times; this tier simulates it **once** and derives the aggregate
//! exactly, marking the result `served: analytic` so reports and store
//! cells record which tier answered.
//!
//! Anything short of a point mass (λ > 0, Weibull, burst, phased, or a
//! factory-built job that may hide a randomized policy) falls back to the
//! full Monte-Carlo loop — eligibility is [`Job::replication_invariant`],
//! which errs on the side of simulating.
//!
//! The tier sits at the orchestration layer (`eacp_exec::run`, the sweep
//! executors, the store's cache-or-compute path), never inside
//! [`crate::Runner::run`]: runners keep their honest per-replication
//! semantics, which is what the bench harness and the conformance test
//! measure against.

use crate::job::Job;
use eacp_sim::{NoopObserver, Summary};

/// Serves a replication-invariant job from one simulated replication, or
/// returns `None` when the job needs the full Monte-Carlo loop.
///
/// The aggregate is built by absorbing the single outcome once per planned
/// replication — the same accumulation the sequential Monte-Carlo path
/// performs on its identical per-replication outcomes, so counts, means
/// and extrema are exact (the point-mass distribution has zero variance).
/// The conformance test pins this against a real Monte-Carlo run of the
/// same cell within Wilson bounds.
pub fn serve_closed_form(job: &Job) -> Option<Summary> {
    if !job.replication_invariant() {
        return None;
    }
    // Replication 0's outcome *is* the distribution; its seed is derived
    // but unused (invariance is exactly seed-independence).
    let out = job.run_replication(0, &mut NoopObserver);
    let mut summary = Summary::empty();
    for _ in 0..job.replications() {
        summary.absorb(&out);
    }
    Some(summary)
}

#[cfg(test)]
mod tests {
    use super::*;
    use eacp_spec::{ExperimentSpec, FaultSpec, McSpec};

    fn spec(faults: FaultSpec, reps: u64) -> ExperimentSpec {
        let mut spec = ExperimentSpec::paper_nominal();
        spec.faults = faults;
        spec.mc = McSpec {
            replications: reps,
            seed: 7,
            threads: 1,
        };
        spec
    }

    #[test]
    fn eligibility_is_exactly_seed_invariance() {
        let invariant = [
            FaultSpec::Poisson { lambda: 0.0 },
            FaultSpec::Deterministic { times: vec![] },
            FaultSpec::Deterministic {
                times: vec![500.0, 3000.0],
            },
        ];
        for faults in invariant {
            let job = Job::from_spec(&spec(faults.clone(), 10)).unwrap();
            assert!(job.replication_invariant(), "{faults:?}");
            assert!(serve_closed_form(&job).is_some(), "{faults:?}");
        }
        let sampled = [
            FaultSpec::Poisson { lambda: 1.4e-3 },
            FaultSpec::Weibull {
                shape: 0.7,
                scale: 700.0,
            },
        ];
        for faults in sampled {
            let job = Job::from_spec(&spec(faults.clone(), 10)).unwrap();
            assert!(!job.replication_invariant(), "{faults:?}");
            assert!(serve_closed_form(&job).is_none(), "{faults:?}");
        }
    }

    #[test]
    fn factory_jobs_are_never_served_analytically() {
        // `from_spec_boxed` routes the very same experiment through the
        // factory escape hatch, which may hide randomized policies.
        let s = spec(FaultSpec::Poisson { lambda: 0.0 }, 10);
        let boxed = Job::from_spec_boxed(&s).unwrap();
        assert!(!boxed.replication_invariant());
        assert!(serve_closed_form(&boxed).is_none());
    }

    #[test]
    fn closed_form_aggregate_is_a_point_mass() {
        let s = spec(
            FaultSpec::Deterministic {
                times: vec![500.0, 3000.0],
            },
            250,
        );
        let job = Job::from_spec(&s).unwrap();
        let summary = serve_closed_form(&job).unwrap();
        let out = job.run_replication(0, &mut eacp_sim::NoopObserver);
        assert_eq!(summary.replications, 250);
        assert_eq!(summary.timely, if out.timely { 250 } else { 0 });
        assert_eq!(summary.faults.mean(), f64::from(out.faults));
        assert_eq!(summary.faults.population_variance(), 0.0);
        assert_eq!(summary.energy_all.min(), summary.energy_all.max());
    }
}
