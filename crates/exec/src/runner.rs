//! The [`Runner`] trait and the local multi-threaded implementation.
//!
//! # Determinism contract
//!
//! A runner's result must be a pure function of the job — never of the
//! machine it ran on. [`LocalRunner`] achieves this with *canonical block
//! reduction*: replications are split into fixed-size blocks whose size
//! depends only on the replication count, each block is reduced
//! sequentially into a partial [`Summary`], and the partials are merged in
//! ascending block order. Thread count only changes which worker picks up
//! which block, so the merged result is bit-identical for 1 thread, 64
//! threads, or the sequential observed path.

use crate::job::Job;
use eacp_sim::{Observer, Summary};
use eacp_spec::SpecError;

/// Executes a [`Job`] into a [`Summary`].
///
/// Implementations decide *where* replications run (local threads today;
/// the ROADMAP's batch/remote executors later) but must all preserve the
/// per-replication seeding contract, so every runner produces the same
/// per-replication outcomes.
pub trait Runner {
    /// Short implementation name for logs and reports.
    fn name(&self) -> &'static str;

    /// Runs the whole job on the fast (unobserved) path.
    fn run(&self, job: &Job) -> Result<Summary, SpecError>;

    /// Runs the whole job, streaming every replication bracket and engine
    /// event into `obs`.
    ///
    /// Observation imposes an ordering on the event stream, so runners may
    /// fall back to a sequential schedule here; the aggregate is still
    /// bit-identical to [`Runner::run`].
    fn run_observed(&self, job: &Job, obs: &mut dyn Observer) -> Result<Summary, SpecError>;

    /// Runs an executive Monte-Carlo workload: N seeded hyperperiod
    /// horizons reduced into an [`ExecutiveSummary`]
    /// ([`crate::ExecutiveSummary`]).
    ///
    /// The default is the sequential canonical reduction; implementations
    /// override it to parallelize, and the determinism contract carries
    /// over unchanged — same canonical blocks, same ascending merge, so
    /// the summary is bit-identical on every runner and pool size.
    ///
    /// [`ExecutiveSummary`]: crate::ExecutiveSummary
    ///
    /// # Errors
    ///
    /// Scheduling failures only (e.g. a work queue exhausting its retry
    /// budget); the workload itself cannot fail after validation.
    fn run_executive(
        &self,
        job: &crate::ExecutiveJob,
    ) -> Result<crate::ExecutiveSummary, SpecError> {
        Ok(crate::workload::run_workload_local(job, 1, 0))
    }
}

/// Multi-threaded in-process runner (std scoped threads, no work queues).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LocalRunner {
    threads: usize,
    block_size: u64,
}

impl Default for LocalRunner {
    fn default() -> Self {
        Self::new(0)
    }
}

impl LocalRunner {
    /// Creates a runner with the given worker count (0 = available
    /// parallelism).
    pub fn new(threads: usize) -> Self {
        Self {
            threads,
            block_size: 0,
        }
    }

    /// Overrides the reduction block size (0 = derive from the replication
    /// count). Changing the block size may change float rounding in the
    /// last ulp; keeping it fixed guarantees bit-identical results across
    /// thread counts.
    pub fn with_block_size(mut self, block_size: u64) -> Self {
        self.block_size = block_size;
        self
    }

    /// The reduction block size for a job of `replications`.
    ///
    /// Depends only on the replication count (never on the thread count):
    /// that is what makes the reduction canonical.
    #[cfg(test)]
    fn effective_block(&self, replications: u64) -> u64 {
        canonical_block_size(self.block_size, replications)
    }
}

/// The canonical reduction block size for a job of `replications`
/// (`override_size` wins when positive).
///
/// This is the one partition rule shared by every runner in the crate —
/// [`LocalRunner`] and [`crate::QueueRunner`] — and it depends only on the
/// replication count, never on the thread or worker count. Merging the
/// per-block partials in ascending block order is therefore bit-identical
/// no matter which runner, schedule or pool size produced them.
pub(crate) fn canonical_block_size(override_size: u64, replications: u64) -> u64 {
    if override_size > 0 {
        override_size
    } else {
        // ~64 blocks for large jobs (ample parallelism), bounded below
        // so tiny jobs don't degenerate into per-replication merges.
        replications.div_ceil(64).clamp(16, 8192)
    }
}

/// Reduces one block of replications sequentially.
///
/// One [`Job::replicator`] serves the whole block: executor, engine
/// scratch and (for spec jobs) the policy/fault instances are built once
/// here and reused — reset, not reallocated — for every replication.
pub(crate) fn run_block<O: Observer + ?Sized>(job: &Job, lo: u64, hi: u64, obs: &mut O) -> Summary {
    let mut replicator = job.replicator();
    let mut partial = Summary::empty();
    for rep in lo..hi {
        let out = replicator.run_replication(rep, obs);
        partial.absorb(&out);
    }
    partial
}

/// Merges per-block partials in ascending block order.
pub(crate) fn merge_blocks(blocks: Vec<Summary>) -> Summary {
    let mut total = Summary::empty();
    for partial in &blocks {
        total.merge(partial);
    }
    total
}

/// Runs the whole job sequentially over its canonical blocks, streaming
/// replication brackets and engine events into `obs`.
///
/// This is the shared observed path of every runner: a shared observer
/// imposes a replication order, so runners fall back to this sequential
/// schedule — over the same canonical blocks — and the aggregate stays
/// bit-identical to their parallel fast paths.
// audit:setup: per-job orchestration — allocates one partial per block,
// never inside the replication loop (that is `run_block`, which stays
// under the hot-path allocation rule).
pub(crate) fn run_sequential_observed<O: Observer + ?Sized>(
    job: &Job,
    block_size_override: u64,
    obs: &mut O,
) -> Summary {
    let reps = job.replications();
    let block = canonical_block_size(block_size_override, reps);
    let n_blocks = reps.div_ceil(block);
    let mut partials = Vec::with_capacity(n_blocks as usize);
    for b in 0..n_blocks {
        let lo = b * block;
        let hi = (lo + block).min(reps);
        partials.push(run_block(job, lo, hi, obs));
    }
    merge_blocks(partials)
}

impl Runner for LocalRunner {
    fn name(&self) -> &'static str {
        "local"
    }

    /// The fast path routes through the generic [`Workload`] reduction
    /// ([`crate::workload::run_workload_local`]): the [`Job`] impl of the
    /// trait drives the same pooled [`crate::Replicator`] over the same
    /// canonical blocks, so this is the pre-refactor reduction verbatim —
    /// the golden-identity tests pin it bit for bit.
    ///
    /// [`Workload`]: crate::workload::Workload
    fn run(&self, job: &Job) -> Result<Summary, SpecError> {
        Ok(crate::workload::run_workload_local(
            job,
            self.threads,
            self.block_size,
        ))
    }

    fn run_observed(&self, job: &Job, obs: &mut dyn Observer) -> Result<Summary, SpecError> {
        // A shared observer imposes a replication order; run sequentially
        // over the same canonical blocks so the aggregate stays
        // bit-identical to the parallel fast path.
        Ok(run_sequential_observed(job, self.block_size, obs))
    }

    fn run_executive(
        &self,
        job: &crate::ExecutiveJob,
    ) -> Result<crate::ExecutiveSummary, SpecError> {
        Ok(crate::workload::run_workload_local(
            job,
            self.threads,
            self.block_size,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eacp_spec::{ExperimentSpec, McSpec};

    fn spec(reps: u64) -> ExperimentSpec {
        let mut spec = ExperimentSpec::paper_nominal();
        spec.mc = McSpec {
            replications: reps,
            seed: 42,
            threads: 0,
        };
        spec
    }

    #[test]
    fn thread_count_never_changes_the_summary() {
        let job = Job::from_spec(&spec(400)).unwrap();
        let one = LocalRunner::new(1).run(&job).unwrap();
        for threads in [2, 3, 7, 16] {
            let many = LocalRunner::new(threads).run(&job).unwrap();
            assert_eq!(one, many, "threads = {threads}");
        }
    }

    #[test]
    fn observed_run_matches_the_fast_path_bit_for_bit() {
        let job = Job::from_spec(&spec(300)).unwrap();
        let fast = LocalRunner::new(4).run(&job).unwrap();
        let mut counter = CountingObserver::default();
        let observed = LocalRunner::new(4)
            .run_observed(&job, &mut counter)
            .unwrap();
        assert_eq!(fast, observed);
        assert_eq!(counter.started, 300);
        assert_eq!(counter.finished, 300);
        assert!(counter.events > 0);
    }

    #[derive(Default)]
    struct CountingObserver {
        started: u64,
        finished: u64,
        events: u64,
    }
    impl Observer for CountingObserver {
        fn on_replication_start(&mut self, _rep: u64, _seed: u64) {
            self.started += 1;
        }
        fn on_replication_end(&mut self, _rep: u64, _out: &eacp_sim::RunOutcome) {
            self.finished += 1;
        }
        fn on_event(&mut self, _event: &eacp_sim::TraceEvent) {
            self.events += 1;
        }
    }

    #[test]
    fn block_size_depends_only_on_replications() {
        let r = LocalRunner::new(0);
        assert_eq!(r.effective_block(10), 16);
        assert_eq!(r.effective_block(10_000), 157);
        assert_eq!(r.effective_block(1_000_000), 8192);
        assert_eq!(
            LocalRunner::new(0).with_block_size(64).effective_block(10),
            64
        );
    }

    #[test]
    fn more_threads_than_blocks_is_fine() {
        let job = Job::from_spec(&spec(20)).unwrap();
        let wide = LocalRunner::new(64).run(&job).unwrap();
        let narrow = LocalRunner::new(1).run(&job).unwrap();
        assert_eq!(wide, narrow);
        assert_eq!(wide.replications, 20);
    }
}
