//! The sharded sweep executor: partition a [`SweepSpec`] grid across
//! machines by index range, emit per-shard report documents, and
//! reassemble the full grid — failing loudly on anything suspicious.
//!
//! `SweepSpec::expand()` derives a deterministic per-point seed from the
//! grid index, so a grid point produces the same [`RunReport`] no matter
//! which shard (or machine) ran it. The workflow:
//!
//! ```text
//! eacp sweep --spec grid.json --shard 0/3 --out reports/   # machine 0
//! eacp sweep --spec grid.json --shard 1/3 --out reports/   # machine 1
//! eacp sweep --spec grid.json --shard 2/3 --out reports/   # machine 2
//! eacp merge reports/ --out grid-report.json               # anywhere
//! ```
//!
//! The merged document is bit-identical to what an unsharded
//! `eacp sweep --out` writes (the unsharded document is simply the
//! one-shard special case), and [`merge_dir`] refuses to produce a grid
//! report when a shard is missing, a grid point is duplicated, or a
//! point's embedded spec does not match the sweep it claims to belong to.

use crate::job::Job;
use crate::runner::{LocalRunner, Runner};
use eacp_spec::{
    ExperimentSpec, FromJson, Json, RunReport, SpecError, SummaryReport, SweepSpec, ToJson,
};
use std::path::{Path, PathBuf};

/// One shard of a sweep: `index` of `count`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardId {
    /// Zero-based shard index.
    pub index: u64,
    /// Total number of shards.
    pub count: u64,
}

impl ShardId {
    /// Creates a validated shard id.
    ///
    /// # Errors
    ///
    /// `count == 0` and `index >= count` are [`SpecError`]s, not silent
    /// empty shards.
    pub fn new(index: u64, count: u64) -> Result<Self, SpecError> {
        if count == 0 {
            return Err(SpecError::invalid(
                "shard count must be positive (got 0 shards)",
            ));
        }
        if index >= count {
            return Err(SpecError::invalid(format!(
                "shard index {index} is out of range for {count} shards \
                 (valid: 0..{count})"
            )));
        }
        Ok(Self { index, count })
    }

    /// Parses the CLI form `i/n` (e.g. `--shard 1/3`).
    pub fn parse(text: &str) -> Result<Self, SpecError> {
        let Some((i, n)) = text.split_once('/') else {
            return Err(SpecError::invalid(format!(
                "shard must be written as index/count, e.g. 0/3 (got {text:?})"
            )));
        };
        let parse = |s: &str, what: &str| -> Result<u64, SpecError> {
            s.trim().parse().map_err(|_| {
                SpecError::invalid(format!("shard {what} {s:?} is not a non-negative integer"))
            })
        };
        Self::new(parse(i, "index")?, parse(n, "count")?)
    }

    /// The contiguous grid-index range this shard owns out of `total`
    /// points (the ranges of all `count` shards tile `0..total` exactly).
    ///
    /// The partition is balanced: shard sizes differ by at most one (the
    /// first `total % count` shards carry the extra point), so every shard
    /// is non-empty whenever `total >= count`. The old `div_ceil` chunking
    /// starved trailing shards — 4 points over 3 shards came out 2/2/0,
    /// leaving machine 2 idle while machine 0 ran double load.
    pub fn range(&self, total: usize) -> std::ops::Range<usize> {
        let count = self.count as usize;
        let index = self.index as usize;
        let base = total / count;
        let extra = total % count;
        let lo = index * base + index.min(extra);
        let hi = lo + base + usize::from(index < extra);
        lo..hi
    }

    pub(crate) fn to_json(self) -> Json {
        Json::obj([("index", self.index.into()), ("count", self.count.into())])
    }

    pub(crate) fn from_json(json: &Json) -> Result<Self, SpecError> {
        Self::new(json.req("index")?.as_u64()?, json.req("count")?.as_u64()?)
    }
}

impl std::fmt::Display for ShardId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}", self.index, self.count)
    }
}

/// One grid point's result, tagged with its flat grid index.
#[derive(Debug, Clone, PartialEq)]
pub struct PointReport {
    /// Flat index into `SweepSpec::expand()` order.
    pub index: usize,
    /// The point's full run report (spec embedded for provenance).
    pub report: RunReport,
}

/// A sweep result document: the whole grid, or one shard of it.
#[derive(Debug, Clone)]
pub struct GridReport {
    /// The sweep that produced (or will reproduce) these points.
    pub sweep: SweepSpec,
    /// Total grid points in the full sweep (not just this document).
    pub total_points: usize,
    /// Which shard this document covers (`None` = the full grid).
    pub shard: Option<ShardId>,
    /// Covered points, ascending by grid index.
    pub points: Vec<PointReport>,
    /// Where this document was loaded from (`None` for freshly computed
    /// grids). Never serialized — diagnostics provenance only, so merge
    /// failures can name the artifact a bad point came from.
    pub source: Option<PathBuf>,
}

// Like `RunReport`: provenance is where the document came from, not part
// of the result, so a loaded shard compares equal to its recomputation.
impl PartialEq for GridReport {
    fn eq(&self, other: &Self) -> bool {
        self.sweep == other.sweep
            && self.total_points == other.total_points
            && self.shard == other.shard
            && self.points == other.points
    }
}

impl GridReport {
    /// The canonical file name: `grid.json` for a full grid,
    /// `shard-I-of-N.json` for one shard.
    pub fn file_name(&self) -> String {
        match self.shard {
            None => "grid.json".to_owned(),
            Some(s) => format!("shard-{}-of-{}.json", s.index, s.count),
        }
    }

    /// Writes the document into `dir` (created if absent) under its
    /// canonical [`GridReport::file_name`]; returns the written path.
    pub fn save(&self, dir: &Path) -> Result<PathBuf, SpecError> {
        std::fs::create_dir_all(dir)
            .map_err(|e| SpecError::Io(format!("{}: {e}", dir.display())))?;
        let path = dir.join(self.file_name());
        std::fs::write(&path, self.to_json().pretty())
            .map_err(|e| SpecError::Io(format!("{}: {e}", path.display())))?;
        Ok(path)
    }

    /// Reads one document.
    ///
    /// # Errors
    ///
    /// Every failure — unreadable file, malformed/truncated JSON, a
    /// document that is not a sweep report — carries the offending file
    /// path, so a corrupt shard in a big collection directory is
    /// identifiable without bisecting.
    pub fn load(path: &Path) -> Result<Self, SpecError> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| SpecError::Io(format!("{}: {e}", path.display())))?;
        let json = Json::parse(&text)
            .map_err(|e| SpecError::invalid(format!("{}: {e}", path.display())))?;
        let mut doc = Self::from_json(&json).map_err(|e| {
            SpecError::invalid(format!(
                "{}: invalid sweep report document: {e}",
                path.display()
            ))
        })?;
        doc.source = Some(path.to_path_buf());
        for point in &mut doc.points {
            point.report.source = Some(path.to_path_buf());
        }
        Ok(doc)
    }
}

impl ToJson for GridReport {
    fn to_json(&self) -> Json {
        let mut fields: Vec<(&'static str, Json)> = vec![
            ("sweep", self.sweep.to_json()),
            ("total_points", self.total_points.into()),
        ];
        if let Some(shard) = self.shard {
            fields.push(("shard", shard.to_json()));
        }
        fields.push((
            "points",
            Json::Array(
                self.points
                    .iter()
                    .map(|p| Json::obj([("index", p.index.into()), ("report", p.report.to_json())]))
                    .collect(),
            ),
        ));
        Json::obj(fields)
    }
}

impl FromJson for GridReport {
    fn from_json(json: &Json) -> Result<Self, SpecError> {
        let shard = match json.get("shard") {
            None | Some(Json::Null) => None,
            Some(s) => Some(ShardId::from_json(s)?),
        };
        let mut points = Vec::new();
        for item in json.req("points")?.as_array()? {
            points.push(PointReport {
                index: item.req("index")?.as_usize()?,
                report: RunReport::from_json(item.req("report")?)?,
            });
        }
        Ok(Self {
            sweep: SweepSpec::from_json(json.req("sweep")?)?,
            total_points: json.req("total_points")?.as_usize()?,
            shard,
            points,
            source: None,
        })
    }
}

/// Expands a sweep and runs the selected shard (or, with `shard = None`,
/// the whole grid), producing the shard's report document.
///
/// Each grid point runs through the [`Job`]/[`LocalRunner`] path with its
/// own expansion-derived seed, so a point's report does not depend on
/// which shard executed it.
pub fn run_sweep(
    sweep: &SweepSpec,
    shard: Option<ShardId>,
    threads: usize,
) -> Result<GridReport, SpecError> {
    run_sweep_tiered(sweep, shard, &LocalRunner::new(threads), true)
}

/// [`run_sweep`] on an explicit [`Runner`] — the seam the queued sweep
/// path and future remote runners share with the local one.
///
/// Any runner honoring the determinism contract (summaries are a pure
/// function of the job) produces the same report document here.
pub fn run_sweep_with(
    sweep: &SweepSpec,
    shard: Option<ShardId>,
    runner: &dyn Runner,
) -> Result<GridReport, SpecError> {
    run_sweep_tiered(sweep, shard, runner, true)
}

/// [`run_sweep_with`] with the closed-form serve tier explicitly enabled
/// or disabled (`analytic = false` is the CLI's `--no-analytic`).
///
/// Replication-invariant grid points — `λ = 0` corners of a fault-rate
/// axis, deterministic-schedule cells — are answered analytically and
/// marked `served: analytic` in their point reports; everything else runs
/// on `runner` as before.
pub fn run_sweep_tiered(
    sweep: &SweepSpec,
    shard: Option<ShardId>,
    runner: &dyn Runner,
    analytic: bool,
) -> Result<GridReport, SpecError> {
    let specs = sweep.expand()?;
    let total = specs.len();
    let range = match shard {
        Some(s) => s.range(total),
        None => 0..total,
    };
    let mut points = Vec::with_capacity(range.len());
    for index in range {
        let spec = &specs[index];
        let report = run_point_tiered(runner, spec, analytic)
            .map_err(|e| SpecError::invalid(format!("grid point {index} ({}): {e}", spec.name)))?;
        points.push(PointReport { index, report });
    }
    Ok(GridReport {
        sweep: sweep.clone(),
        total_points: total,
        shard,
        points,
        source: None,
    })
}

/// Runs one grid point's spec on a [`Runner`], wrapping the summary as a
/// [`RunReport`] — the single-point unit of work shared by the sweep
/// executors and the result store's cache-or-compute path.
pub fn run_point(runner: &dyn Runner, spec: &ExperimentSpec) -> Result<RunReport, SpecError> {
    run_point_tiered(runner, spec, true)
}

/// [`run_point`] with the closed-form serve tier explicitly enabled or
/// disabled.
pub fn run_point_tiered(
    runner: &dyn Runner,
    spec: &ExperimentSpec,
    analytic: bool,
) -> Result<RunReport, SpecError> {
    let job = Job::from_spec(spec)?;
    let (summary, served) = match analytic.then(|| crate::serve_closed_form(&job)).flatten() {
        Some(summary) => (summary, eacp_spec::ServeTier::Analytic),
        None => (runner.run(&job)?, eacp_spec::ServeTier::Mc),
    };
    Ok(RunReport {
        spec: spec.clone(),
        policy_name: job.policy_name().to_owned(),
        summary: SummaryReport::from_summary(&summary),
        served,
        source: None,
    })
}

/// Lists the `.json` report documents in `dir`, sorted by path — the one
/// directory-enumeration rule shared by [`merge_dir`] and the CLI's
/// `csv` loader, so both commands always see the same document set.
pub fn list_report_files(dir: &Path) -> Result<Vec<PathBuf>, SpecError> {
    let entries =
        std::fs::read_dir(dir).map_err(|e| SpecError::Io(format!("{}: {e}", dir.display())))?;
    let mut paths: Vec<PathBuf> = entries
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|ext| ext == "json"))
        .collect();
    paths.sort();
    Ok(paths)
}

/// Reads every `*.json` document in `dir` and reassembles the full grid.
///
/// # Errors
///
/// Fails loudly — with a [`SpecError`] naming the offending file or grid
/// index — when:
///
/// * the directory holds no report documents, or a `.json` file is not a
///   sweep report document;
/// * documents disagree on the sweep spec, total point count, or shard
///   count (a mixed-up directory);
/// * a grid point is covered twice (duplicated shard), is missing
///   (withheld shard), or embeds a spec that does not match the sweep's
///   expansion at its index (tampered or foreign report).
pub fn merge_dir(dir: &Path) -> Result<GridReport, SpecError> {
    let SweepDocs {
        docs,
        total,
        expected,
        ..
    } = load_sweep_docs(dir)?;
    let sweep = docs[0].1.sweep.clone();

    // Point coverage: exactly once each, spec-faithful.
    let mut slots: Vec<Option<PointReport>> = vec![None; total];
    for (path, doc) in &docs {
        for point in &doc.points {
            if point.index >= total {
                return Err(SpecError::invalid(format!(
                    "{}: grid point {} is out of range for a {total}-point sweep",
                    path.display(),
                    point.index
                )));
            }
            if slots[point.index].is_some() {
                return Err(SpecError::invalid(format!(
                    "{}: grid point {} is covered twice — duplicated shard?",
                    path.display(),
                    point.index
                )));
            }
            if point.report.spec != expected[point.index] {
                return Err(SpecError::invalid(format!(
                    "{}: grid point {}'s embedded spec does not match the \
                     sweep expansion (expected {:?}, found {:?})",
                    path.display(),
                    point.index,
                    expected[point.index].name,
                    point.report.spec.name
                )));
            }
            slots[point.index] = Some(point.clone());
        }
    }
    let missing: Vec<usize> = slots
        .iter()
        .enumerate()
        .filter_map(|(i, s)| s.is_none().then_some(i))
        .collect();
    if !missing.is_empty() {
        return Err(SpecError::invalid(format!(
            "incomplete grid: {} of {total} points missing (indices {:?}{}) — \
             withheld shard?",
            missing.len(),
            &missing[..missing.len().min(8)],
            if missing.len() > 8 { ", ..." } else { "" }
        )));
    }

    Ok(GridReport {
        sweep,
        total_points: total,
        shard: None,
        // audit:allow(panic): the `missing` check above already rejected
        // grids with any unfilled slot.
        points: slots.into_iter().map(|s| s.expect("checked")).collect(),
        source: None,
    })
}

/// A directory of report documents proven to belong to one sweep.
struct SweepDocs {
    /// `(path, document)` pairs in path order.
    docs: Vec<(PathBuf, GridReport)>,
    /// The validated total point count (equals `expected.len()`).
    total: usize,
    /// The sweep's expansion, for per-point spec checks.
    expected: Vec<ExperimentSpec>,
    /// Shard count declared by the shard documents, when any declare one.
    shard_count: Option<u64>,
}

/// Loads every `*.json` document in `dir` and validates cross-document
/// consistency — the shared front half of [`merge_dir`] and
/// [`coverage_dir`].
///
/// Checks: at least one document; every document parses (errors name the
/// file, via [`GridReport::load`]); all documents carry the same sweep
/// spec, declared total and shard count; and the declared total matches
/// the sweep's expansion *before* it is ever used as an allocation or
/// iteration bound — a corrupt or tampered `total_points` must surface as
/// a [`SpecError`] naming the file, not as a capacity-overflow panic or a
/// multi-terabyte allocation.
fn load_sweep_docs(dir: &Path) -> Result<SweepDocs, SpecError> {
    let paths = list_report_files(dir)?;
    if paths.is_empty() {
        return Err(SpecError::invalid(format!(
            "{}: no .json report documents found",
            dir.display()
        )));
    }

    let mut docs = Vec::with_capacity(paths.len());
    for path in paths {
        let doc = GridReport::load(&path)?;
        docs.push((path, doc));
    }

    let (first_path, first) = &docs[0];
    let sweep_fingerprint = first.sweep.to_json().pretty();
    let total = first.total_points;
    let mut shard_count: Option<u64> = None;
    for (path, doc) in &docs {
        if doc.sweep.to_json().pretty() != sweep_fingerprint {
            return Err(SpecError::invalid(format!(
                "{}: sweep spec differs from {} — these shards are not from \
                 the same sweep",
                path.display(),
                first_path.display()
            )));
        }
        if doc.total_points != total {
            return Err(SpecError::invalid(format!(
                "{}: declares {} total points, {} declares {total}",
                path.display(),
                doc.total_points,
                first_path.display()
            )));
        }
        if let Some(s) = doc.shard {
            match shard_count {
                None => shard_count = Some(s.count),
                Some(c) if c != s.count => {
                    return Err(SpecError::invalid(format!(
                        "{}: shard count {} conflicts with earlier shard count {c}",
                        path.display(),
                        s.count
                    )))
                }
                Some(_) => {}
            }
        }
    }

    let expected = first.sweep.expand()?;
    if expected.len() != total {
        return Err(SpecError::invalid(format!(
            "{}: declares {total} total points but its embedded sweep \
             expands to {} — corrupt or tampered document",
            first_path.display(),
            expected.len()
        )));
    }
    Ok(SweepDocs {
        docs,
        total,
        expected,
        shard_count,
    })
}

/// Coverage of one report document in a collection directory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DocCoverage {
    /// The document's path.
    pub path: PathBuf,
    /// Which shard it claims to cover (`None` = a full-grid document).
    pub shard: Option<ShardId>,
    /// The grid indices the document actually covers, ascending.
    pub indices: Vec<usize>,
}

/// Completion state of a sweep's result-collection directory — what
/// `eacp queue status` renders while shards are still trickling in.
///
/// Unlike [`merge_dir`], missing or duplicated points are *reported*, not
/// errors: the whole purpose is to see how far a distributed sweep has
/// progressed and which shards are still owed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SweepCoverage {
    /// The sweep's base experiment name.
    pub sweep_name: String,
    /// Total grid points in the full sweep.
    pub total_points: usize,
    /// Shard count declared by the shard documents, when any declare one.
    pub shard_count: Option<u64>,
    /// Per-document coverage, in path order.
    pub docs: Vec<DocCoverage>,
    /// Grid indices covered by no document, ascending.
    pub missing: Vec<usize>,
    /// Grid indices covered by more than one document, ascending.
    pub duplicated: Vec<usize>,
}

impl SweepCoverage {
    /// Points covered at least once.
    pub fn covered(&self) -> usize {
        self.total_points - self.missing.len()
    }

    /// Whether the directory is ready to [`merge_dir`]: every point
    /// covered exactly once.
    pub fn complete(&self) -> bool {
        self.missing.is_empty() && self.duplicated.is_empty()
    }
}

/// Inspects a result-collection directory: which grid points the present
/// documents cover, which are missing, which are duplicated.
///
/// # Errors
///
/// Unreadable or malformed documents, and documents from *different*
/// sweeps mixed into one directory, are still loud [`SpecError`]s naming
/// the offending file — only incomplete/duplicated coverage is tolerated.
pub fn coverage_dir(dir: &Path) -> Result<SweepCoverage, SpecError> {
    // Same loading and consistency rules as `merge_dir` — including the
    // total_points-vs-expansion guard, so a lying document cannot make
    // the status pass iterate a fantasy-sized grid.
    let SweepDocs {
        docs,
        total,
        shard_count,
        ..
    } = load_sweep_docs(dir)?;
    let sweep_name = docs[0].1.sweep.base.name.clone();

    let mut hits: std::collections::BTreeMap<usize, usize> = Default::default();
    let docs: Vec<DocCoverage> = docs
        .into_iter()
        .map(|(path, doc)| {
            let mut indices: Vec<usize> = doc.points.iter().map(|p| p.index).collect();
            indices.sort_unstable();
            for &i in &indices {
                *hits.entry(i).or_insert(0) += 1;
            }
            DocCoverage {
                path,
                shard: doc.shard,
                indices,
            }
        })
        .collect();
    let missing = (0..total).filter(|i| !hits.contains_key(i)).collect();
    let duplicated = hits
        .iter()
        .filter_map(|(&i, &n)| (n > 1).then_some(i))
        .collect();
    Ok(SweepCoverage {
        sweep_name,
        total_points: total,
        shard_count,
        docs,
        missing,
        duplicated,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use eacp_spec::{McSpec, SweepAxis};

    fn small_sweep() -> SweepSpec {
        let mut base = ExperimentSpec::paper_nominal();
        base.name = "grid".into();
        base.mc = McSpec {
            replications: 40,
            seed: 5,
            threads: 1,
        };
        SweepSpec {
            base,
            axes: vec![
                SweepAxis::Lambda(vec![1.0e-4, 1.4e-3]),
                SweepAxis::K(vec![1, 5]),
            ],
        }
    }

    #[test]
    fn shard_parse_validates() {
        assert_eq!(
            ShardId::parse("1/3").unwrap(),
            ShardId { index: 1, count: 3 }
        );
        for bad in ["", "3", "a/b", "1/0", "3/3", "4/3"] {
            let err = ShardId::parse(bad).unwrap_err();
            assert!(matches!(err, SpecError::Invalid(_)), "{bad}: {err}");
        }
    }

    #[test]
    fn shard_ranges_tile_the_grid_exactly() {
        for total in [0usize, 1, 4, 7, 10] {
            for count in [1u64, 2, 3, 5, 8] {
                let mut covered = Vec::new();
                for index in 0..count {
                    let r = ShardId::new(index, count).unwrap().range(total);
                    covered.extend(r);
                }
                assert_eq!(covered, (0..total).collect::<Vec<_>>(), "{total}/{count}");
            }
        }
    }

    #[test]
    fn shard_partition_is_balanced_and_leaves_no_shard_empty() {
        // The regression that motivated the fix: 4 points over 3 shards
        // must come out 2/1/1, not 2/2/0.
        let sizes: Vec<usize> = (0..3)
            .map(|i| ShardId::new(i, 3).unwrap().range(4).len())
            .collect();
        assert_eq!(sizes, vec![2, 1, 1]);
        for total in [1usize, 2, 5, 7, 16, 97] {
            for count in [1u64, 2, 3, 5, 8, 16] {
                let sizes: Vec<usize> = (0..count)
                    .map(|i| ShardId::new(i, count).unwrap().range(total).len())
                    .collect();
                let (min, max) = (*sizes.iter().min().unwrap(), *sizes.iter().max().unwrap());
                assert!(max - min <= 1, "unbalanced {sizes:?} for {total}/{count}");
                if total >= count as usize {
                    assert!(min >= 1, "empty shard in {sizes:?} for {total}/{count}");
                }
            }
        }
    }

    #[test]
    fn sharded_points_equal_unsharded_points() {
        let sweep = small_sweep();
        let full = run_sweep(&sweep, None, 1).unwrap();
        assert_eq!(full.points.len(), 4);
        let mut collected = Vec::new();
        for i in 0..3 {
            let shard = run_sweep(&sweep, Some(ShardId::new(i, 3).unwrap()), 1).unwrap();
            collected.extend(shard.points);
        }
        collected.sort_by_key(|p| p.index);
        assert_eq!(collected, full.points);
    }

    #[test]
    fn merge_reassembles_bit_identically_and_rejects_corruption() {
        let sweep = small_sweep();
        let base = std::env::temp_dir().join(format!("eacp-exec-shard-{}", std::process::id()));
        let sharded = base.join("sharded");
        let _ = std::fs::remove_dir_all(&base);

        let full = run_sweep(&sweep, None, 1).unwrap();
        for i in 0..3 {
            run_sweep(&sweep, Some(ShardId::new(i, 3).unwrap()), 1)
                .unwrap()
                .save(&sharded)
                .unwrap();
        }
        let merged = merge_dir(&sharded).unwrap();
        assert_eq!(merged, full, "merged grid must equal the unsharded grid");
        assert_eq!(merged.to_json().pretty(), full.to_json().pretty());

        // Withheld shard → loud failure.
        let withheld = base.join("withheld");
        std::fs::create_dir_all(&withheld).unwrap();
        for name in ["shard-0-of-3.json", "shard-2-of-3.json"] {
            std::fs::copy(sharded.join(name), withheld.join(name)).unwrap();
        }
        let err = merge_dir(&withheld).unwrap_err();
        assert!(err.to_string().contains("missing"), "{err}");

        // Duplicated shard → loud failure.
        let duplicated = base.join("duplicated");
        std::fs::create_dir_all(&duplicated).unwrap();
        for name in [
            "shard-0-of-3.json",
            "shard-1-of-3.json",
            "shard-2-of-3.json",
        ] {
            std::fs::copy(sharded.join(name), duplicated.join(name)).unwrap();
        }
        std::fs::copy(
            sharded.join("shard-0-of-3.json"),
            duplicated.join("shard-0-of-3-copy.json"),
        )
        .unwrap();
        let err = merge_dir(&duplicated).unwrap_err();
        assert!(err.to_string().contains("covered twice"), "{err}");

        // Spec-mismatched shard → loud failure.
        let mismatched = base.join("mismatched");
        std::fs::create_dir_all(&mismatched).unwrap();
        for name in ["shard-0-of-3.json", "shard-1-of-3.json"] {
            std::fs::copy(sharded.join(name), mismatched.join(name)).unwrap();
        }
        let mut other = small_sweep();
        other.base.mc.seed = 999;
        run_sweep(&other, Some(ShardId::new(2, 3).unwrap()), 1)
            .unwrap()
            .save(&mismatched)
            .unwrap();
        let err = merge_dir(&mismatched).unwrap_err();
        assert!(err.to_string().contains("sweep spec differs"), "{err}");

        std::fs::remove_dir_all(&base).unwrap();
    }

    #[test]
    fn grid_report_round_trips_through_json() {
        let sweep = small_sweep();
        let shard = run_sweep(&sweep, Some(ShardId::new(1, 2).unwrap()), 1).unwrap();
        let back = GridReport::from_json(&Json::parse(&shard.to_json().pretty()).unwrap()).unwrap();
        assert_eq!(back.shard, shard.shard);
        assert_eq!(back.total_points, shard.total_points);
        assert_eq!(back.points.len(), shard.points.len());
        assert_eq!(back.to_json().pretty(), shard.to_json().pretty());
    }

    #[test]
    fn corrupt_documents_are_spec_errors_naming_the_file() {
        let sweep = small_sweep();
        let base = std::env::temp_dir().join(format!("eacp-exec-corrupt-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&base);

        // Truncated JSON.
        let truncated = base.join("truncated");
        let path = run_sweep(&sweep, Some(ShardId::new(0, 2).unwrap()), 1)
            .unwrap()
            .save(&truncated)
            .unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, &text[..text.len() / 2]).unwrap();
        let err = merge_dir(&truncated).unwrap_err();
        assert!(matches!(err, SpecError::Invalid(_)), "{err}");
        assert!(err.to_string().contains("shard-0-of-2.json"), "{err}");

        // A total_points that does not match the embedded sweep must be a
        // SpecError, never an allocation-size panic.
        let lying = base.join("lying");
        let path = run_sweep(&sweep, Some(ShardId::new(0, 2).unwrap()), 1)
            .unwrap()
            .save(&lying)
            .unwrap();
        let text = std::fs::read_to_string(&path).unwrap().replace(
            "\"total_points\": 4",
            "\"total_points\": 1152921504606846976",
        );
        std::fs::write(&path, text).unwrap();
        let err = merge_dir(&lying).unwrap_err();
        assert!(err.to_string().contains("expands to 4"), "{err}");
        assert!(err.to_string().contains("shard-0-of-2.json"), "{err}");
        // coverage_dir shares the guard: the lie must not become the
        // status pass's iteration bound.
        let err = coverage_dir(&lying).unwrap_err();
        assert!(err.to_string().contains("expands to 4"), "{err}");

        // Structurally-wrong field types also name the file.
        let wrong = base.join("wrong");
        std::fs::create_dir_all(&wrong).unwrap();
        std::fs::write(
            wrong.join("shard-bad.json"),
            r#"{"sweep": 3, "points": "x"}"#,
        )
        .unwrap();
        let err = merge_dir(&wrong).unwrap_err();
        assert!(err.to_string().contains("shard-bad.json"), "{err}");

        std::fs::remove_dir_all(&base).unwrap();
    }

    #[test]
    fn coverage_reports_missing_and_duplicated_points_without_failing() {
        let sweep = small_sweep();
        let base = std::env::temp_dir().join(format!("eacp-exec-coverage-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&base);
        let dir = base.join("partial");

        // Shards 0 and 2 of 3 present, shard 0 duplicated under a second
        // file name; shard 1 still owed.
        run_sweep(&sweep, Some(ShardId::new(0, 3).unwrap()), 1)
            .unwrap()
            .save(&dir)
            .unwrap();
        run_sweep(&sweep, Some(ShardId::new(2, 3).unwrap()), 1)
            .unwrap()
            .save(&dir)
            .unwrap();
        std::fs::copy(
            dir.join("shard-0-of-3.json"),
            dir.join("shard-0-of-3-copy.json"),
        )
        .unwrap();

        let cov = coverage_dir(&dir).unwrap();
        assert_eq!(cov.sweep_name, "grid");
        assert_eq!(cov.total_points, 4);
        assert_eq!(cov.shard_count, Some(3));
        assert_eq!(cov.docs.len(), 3);
        // Balanced 4-over-3 partition: shard 0 owns {0,1}, shard 1 owns
        // {2}, shard 2 owns {3}.
        assert_eq!(cov.missing, vec![2]);
        assert_eq!(cov.duplicated, vec![0, 1]);
        assert_eq!(cov.covered(), 3);
        assert!(!cov.complete());

        // Completing the set clears both lists.
        std::fs::remove_file(dir.join("shard-0-of-3-copy.json")).unwrap();
        run_sweep(&sweep, Some(ShardId::new(1, 3).unwrap()), 1)
            .unwrap()
            .save(&dir)
            .unwrap();
        let cov = coverage_dir(&dir).unwrap();
        assert!(cov.complete(), "{cov:?}");
        assert_eq!(cov.covered(), 4);

        std::fs::remove_dir_all(&base).unwrap();
    }

    #[test]
    fn empty_dir_is_an_error() {
        let dir = std::env::temp_dir().join(format!("eacp-exec-empty-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        assert!(merge_dir(&dir).is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
