//! Monte-Carlo over the EDF executive: the [`ExecutiveJob`] workload and
//! its mergeable [`ExecutiveSummary`] accumulator.
//!
//! The paper's adaptive schemes are evaluated on periodic task sets, but a
//! single executive horizon is one sample — feedback-style schemes and
//! soft-deadline miss-cost comparisons need miss-ratio/energy
//! *distributions*. This module makes the executive a replication unit:
//! one replication is one seeded hyperperiod horizon
//! (`replication_seed(spec.seed, i)` seeds the fault stream of horizon
//! `i`), run through the pooled zero-allocation core
//! ([`eacp_rtsched::executive::run_executive_pooled`]) and absorbed into
//! an [`ExecutiveSummary`].
//!
//! [`ExecutiveSummary`] obeys the same partition/associativity/identity
//! merge laws as [`eacp_sim::Summary`] (counters exact, float moments to
//! rounding; see `tests/executive_merge_properties.rs`), so the canonical
//! fixed-block reduction of [`crate::workload`] applies unchanged: N
//! seeded horizons reduce bit-identically across [`crate::LocalRunner`]
//! thread counts and [`crate::QueueRunner`] worker counts.
//!
//! Persistence is lossless: [`ExecutiveSummary`] serializes its raw
//! accumulator state ([`OnlineStats::raw_parts`]), so a result-store cache
//! hit is byte-identical to recomputation.

use crate::workload::{Replicate, Workload};
use eacp_core::policies::PolicyKind;
use eacp_energy::DvsConfig;
use eacp_faults::BatchedFaults;
use eacp_numerics::OnlineStats;
use eacp_rtsched::executive::{
    run_executive_pooled, scenario_template, ExecutiveParams, ExecutiveScratch, JobRecord,
    PolicyProvider,
};
use eacp_rtsched::TaskSet;
use eacp_sim::{
    replication_seed, CheckpointCosts, ExecutorOptions, NoopObserver, Policy, Scenario,
};
use eacp_spec::{CheckpointTotals, ExecutiveSpec, FromJson, Json, SpecError, ToJson};

/// Per-task aggregates over every job of every horizon.
#[derive(Debug, Clone, PartialEq)]
pub struct TaskAggregate {
    /// Jobs dispatched (including deadline-infeasible zero-runs).
    pub jobs: u64,
    /// Jobs that missed their absolute deadline.
    pub deadline_misses: u64,
    /// Faults observed inside this task's jobs.
    pub faults: u64,
    /// Rollbacks performed by this task's jobs.
    pub rollbacks: u64,
    /// Total energy consumed by this task's jobs.
    pub energy: f64,
    /// Worst observed response time (finish − release).
    pub worst_response: f64,
}

impl TaskAggregate {
    fn empty() -> Self {
        Self {
            jobs: 0,
            deadline_misses: 0,
            faults: 0,
            rollbacks: 0,
            energy: 0.0,
            worst_response: 0.0,
        }
    }

    fn merge(&mut self, other: &Self) {
        self.jobs += other.jobs;
        self.deadline_misses += other.deadline_misses;
        self.faults += other.faults;
        self.rollbacks += other.rollbacks;
        self.energy += other.energy;
        self.worst_response = self.worst_response.max(other.worst_response);
    }
}

/// Aggregated executive Monte-Carlo results: the task-set analogue of
/// [`eacp_sim::Summary`].
///
/// One *horizon* (a full `hyperperiods × hyperperiod` simulation) is the
/// replication unit. Counters and per-task aggregates accumulate over
/// every job of every horizon; the [`OnlineStats`] fields hold the
/// *per-horizon* distributions the single-run executive cannot report —
/// miss ratio, total energy, fault and rollback counts per horizon.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecutiveSummary {
    /// Number of horizons absorbed.
    pub horizons: u64,
    /// Jobs dispatched across all horizons.
    pub jobs: u64,
    /// Deadline misses across all horizons.
    pub deadline_misses: u64,
    /// Faults across all horizons.
    pub faults: u64,
    /// Rollbacks across all horizons.
    pub rollbacks: u64,
    /// Checkpoint operations across all horizons.
    pub checkpoints: CheckpointTotals,
    /// Total energy across all horizons.
    pub total_energy: f64,
    /// Per-horizon deadline-miss ratio distribution.
    pub miss_ratio: OnlineStats,
    /// Per-horizon total-energy distribution.
    pub energy: OnlineStats,
    /// Per-horizon fault-count distribution.
    pub horizon_faults: OnlineStats,
    /// Per-horizon rollback-count distribution.
    pub horizon_rollbacks: OnlineStats,
    /// Per-task aggregates (task order is the spec's task order).
    pub per_task: Vec<TaskAggregate>,
}

impl ExecutiveSummary {
    /// An all-zero summary over `task_count` tasks: the identity element
    /// of [`ExecutiveSummary::merge`].
    // audit:setup: allocates the per-task table once per accumulator;
    // horizons only update it in place.
    pub fn empty(task_count: usize) -> Self {
        let mut per_task = Vec::with_capacity(task_count);
        per_task.resize_with(task_count, TaskAggregate::empty);
        Self {
            horizons: 0,
            jobs: 0,
            deadline_misses: 0,
            faults: 0,
            rollbacks: 0,
            checkpoints: CheckpointTotals::default(),
            total_energy: 0.0,
            miss_ratio: OnlineStats::new(),
            energy: OnlineStats::new(),
            horizon_faults: OnlineStats::new(),
            horizon_rollbacks: OnlineStats::new(),
            per_task: Vec::new(),
        }
        .with_tasks(per_task)
    }

    fn with_tasks(mut self, per_task: Vec<TaskAggregate>) -> Self {
        self.per_task = per_task;
        self
    }

    /// Folds one horizon's job log into the aggregate.
    ///
    /// The hot path of executive Monte-Carlo: touches only preallocated
    /// state, no heap allocation (the `alloc-count` witness pins this).
    ///
    /// # Panics
    ///
    /// Panics when a job record's task index is outside the accumulator's
    /// task table (a workload arity bug, never an input condition).
    pub fn absorb_horizon(&mut self, jobs: &[JobRecord]) {
        self.horizons += 1;
        let mut h_misses = 0u64;
        let mut h_energy = 0.0f64;
        let mut h_faults = 0u64;
        let mut h_rollbacks = 0u64;
        for job in jobs {
            let t = &mut self.per_task[job.task];
            t.jobs += 1;
            if !job.timely {
                t.deadline_misses += 1;
                h_misses += 1;
            }
            t.faults += u64::from(job.faults);
            t.rollbacks += u64::from(job.rollbacks);
            t.energy += job.energy;
            t.worst_response = t.worst_response.max(job.finished - job.release);
            self.checkpoints.add(&CheckpointTotals {
                store: u64::from(job.store_checkpoints),
                compare: u64::from(job.compare_checkpoints),
                compare_store: u64::from(job.compare_store_checkpoints),
            });
            h_energy += job.energy;
            h_faults += u64::from(job.faults);
            h_rollbacks += u64::from(job.rollbacks);
        }
        self.jobs += jobs.len() as u64;
        self.deadline_misses += h_misses;
        self.faults += h_faults;
        self.rollbacks += h_rollbacks;
        self.total_energy += h_energy;
        self.miss_ratio.push(if jobs.is_empty() {
            0.0
        } else {
            h_misses as f64 / jobs.len() as f64
        });
        self.energy.push(h_energy);
        self.horizon_faults.push(h_faults as f64);
        self.horizon_rollbacks.push(h_rollbacks as f64);
    }

    /// Merges another partial aggregate into this one (parallel / sharded
    /// reduction). Same contract as [`eacp_sim::Summary::merge`]: counts,
    /// minima and maxima are exactly order-invariant; float moments are
    /// order-invariant up to last-ulp rounding, so drivers merge partials
    /// in the canonical ascending block order.
    ///
    /// # Panics
    ///
    /// Panics when the two summaries aggregate different task counts.
    pub fn merge(&mut self, other: &Self) {
        assert!(
            self.per_task.len() == other.per_task.len(),
            "cannot merge executive summaries over different task sets \
             ({} vs {} tasks)",
            self.per_task.len(),
            other.per_task.len()
        );
        self.horizons += other.horizons;
        self.jobs += other.jobs;
        self.deadline_misses += other.deadline_misses;
        self.faults += other.faults;
        self.rollbacks += other.rollbacks;
        self.checkpoints.add(&other.checkpoints);
        self.total_energy += other.total_energy;
        self.miss_ratio.merge(&other.miss_ratio);
        self.energy.merge(&other.energy);
        self.horizon_faults.merge(&other.horizon_faults);
        self.horizon_rollbacks.merge(&other.horizon_rollbacks);
        for (t, o) in self.per_task.iter_mut().zip(&other.per_task) {
            t.merge(o);
        }
    }

    /// Mean per-horizon deadline-miss ratio; `NaN` when empty.
    pub fn mean_miss_ratio(&self) -> f64 {
        self.miss_ratio.mean()
    }

    /// Mean per-horizon energy; `NaN` when empty.
    pub fn mean_energy(&self) -> f64 {
        self.energy.mean()
    }
}

/// Lossless [`OnlineStats`] snapshot (raw accumulator state).
fn stats_to_json(s: &OnlineStats) -> Json {
    let (count, mean, m2, min, max) = s.raw_parts();
    Json::obj([
        ("count", count.into()),
        ("mean", mean.into()),
        ("m2", m2.into()),
        ("min", min.into()),
        ("max", max.into()),
    ])
}

fn stats_from_json(json: &Json) -> Result<OnlineStats, SpecError> {
    Ok(OnlineStats::from_raw_parts(
        json.req("count")?.as_u64()?,
        json.req("mean")?.as_f64()?,
        json.req("m2")?.as_f64()?,
        json.req("min")?.as_f64()?,
        json.req("max")?.as_f64()?,
    ))
}

impl ToJson for TaskAggregate {
    fn to_json(&self) -> Json {
        Json::obj([
            ("jobs", self.jobs.into()),
            ("deadline_misses", self.deadline_misses.into()),
            ("faults", self.faults.into()),
            ("rollbacks", self.rollbacks.into()),
            ("energy", self.energy.into()),
            ("worst_response", self.worst_response.into()),
        ])
    }
}

impl FromJson for TaskAggregate {
    fn from_json(json: &Json) -> Result<Self, SpecError> {
        Ok(Self {
            jobs: json.req("jobs")?.as_u64()?,
            deadline_misses: json.req("deadline_misses")?.as_u64()?,
            faults: json.req("faults")?.as_u64()?,
            rollbacks: json.req("rollbacks")?.as_u64()?,
            energy: json.req("energy")?.as_f64()?,
            worst_response: json.req("worst_response")?.as_f64()?,
        })
    }
}

impl ToJson for ExecutiveSummary {
    fn to_json(&self) -> Json {
        Json::obj([
            ("horizons", self.horizons.into()),
            ("jobs", self.jobs.into()),
            ("deadline_misses", self.deadline_misses.into()),
            ("faults", self.faults.into()),
            ("rollbacks", self.rollbacks.into()),
            ("checkpoints", self.checkpoints.to_json()),
            ("total_energy", self.total_energy.into()),
            ("miss_ratio", stats_to_json(&self.miss_ratio)),
            ("energy", stats_to_json(&self.energy)),
            ("horizon_faults", stats_to_json(&self.horizon_faults)),
            ("horizon_rollbacks", stats_to_json(&self.horizon_rollbacks)),
            (
                "tasks",
                Json::Array(self.per_task.iter().map(ToJson::to_json).collect()),
            ),
        ])
    }
}

impl FromJson for ExecutiveSummary {
    fn from_json(json: &Json) -> Result<Self, SpecError> {
        Ok(Self {
            horizons: json.req("horizons")?.as_u64()?,
            jobs: json.req("jobs")?.as_u64()?,
            deadline_misses: json.req("deadline_misses")?.as_u64()?,
            faults: json.req("faults")?.as_u64()?,
            rollbacks: json.req("rollbacks")?.as_u64()?,
            checkpoints: CheckpointTotals::from_json(json.req("checkpoints")?)?,
            total_energy: json.req("total_energy")?.as_f64()?,
            miss_ratio: stats_from_json(json.req("miss_ratio")?)?,
            energy: stats_from_json(json.req("energy")?)?,
            horizon_faults: stats_from_json(json.req("horizon_faults")?)?,
            horizon_rollbacks: stats_from_json(json.req("horizon_rollbacks")?)?,
            per_task: json
                .req("tasks")?
                .as_array()?
                .iter()
                .map(TaskAggregate::from_json)
                .collect::<Result<_, _>>()?,
        })
    }
}

/// A validated executive Monte-Carlo experiment: the task-set analogue of
/// [`crate::Job`]. One replication is one seeded hyperperiod horizon.
pub struct ExecutiveJob {
    spec: ExecutiveSpec,
    set: TaskSet,
    costs: CheckpointCosts,
    dvs: DvsConfig,
    options: ExecutorOptions,
    replications: u64,
    base_seed: u64,
}

impl std::fmt::Debug for ExecutiveJob {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ExecutiveJob")
            .field("name", &self.spec.name)
            .field("tasks", &self.set.len())
            .field("replications", &self.replications)
            .field("base_seed", &self.base_seed)
            .finish_non_exhaustive()
    }
}

impl ExecutiveJob {
    /// Builds a job from a declarative executive description. The horizon
    /// count comes from the spec's `mc` section
    /// ([`ExecutiveSpec::mc_or_default`]); every component is validated up
    /// front, so later horizon builds cannot fail inside worker threads.
    ///
    /// # Errors
    ///
    /// Fails on any spec validation error.
    // audit:setup: job construction — validation and the runtime builds
    // happen once per job, before any horizon runs.
    pub fn from_spec(spec: &ExecutiveSpec) -> Result<Self, SpecError> {
        spec.validate()?;
        let set = spec.tasks.build()?;
        let mc = spec.mc_or_default();
        mc.validate()?;
        Ok(Self {
            spec: spec.clone(),
            set,
            costs: spec.costs.build()?,
            dvs: spec.dvs.build()?,
            options: ExecutorOptions::default(),
            replications: mc.replications,
            base_seed: spec.seed,
        })
    }

    /// The validated spec the job was built from.
    pub fn spec(&self) -> &ExecutiveSpec {
        &self.spec
    }

    /// The experiment's name.
    pub fn name(&self) -> &str {
        &self.spec.name
    }

    /// Number of tasks in the set.
    pub fn task_count(&self) -> usize {
        self.set.len()
    }

    /// Number of horizons the job plans.
    pub fn replications(&self) -> u64 {
        self.replications
    }

    /// The base seed horizon seeds derive from.
    pub fn base_seed(&self) -> u64 {
        self.base_seed
    }

    /// Per-task policy names, one per task.
    pub fn policy_names(&self) -> Vec<String> {
        self.spec.policy.policy_names(self.set.len())
    }

    /// One display label for the assignment: the shared policy's name, or
    /// the per-task names joined with `+`.
    pub fn policy_label(&self) -> String {
        self.policy_names().join("+")
    }
}

/// Pooled per-task policies: one [`PolicyKind`] per task, reset in place
/// before each job — the executive counterpart of the single-task pooled
/// replicator path (no `Box<dyn Policy>` per job).
struct PooledPolicies {
    policies: Vec<PolicyKind>,
}

impl PolicyProvider for PooledPolicies {
    fn policy_for_job(&mut self, task: usize) -> &mut dyn Policy {
        let policy = &mut self.policies[task];
        // `PolicyKind::reset` restores the just-constructed state, so the
        // pooled instance is indistinguishable from the boxed-fresh path.
        policy.reset(0);
        policy
    }
}

/// The pooled executive horizon driver: everything reusable is built once
/// per block — the [`ExecutiveScratch`], the scenario template, one
/// batched fault stream and one [`PolicyKind`] per task — then each
/// replication resets the fault stream to its derived seed and runs one
/// horizon through [`run_executive_pooled`].
pub struct ExecutiveReplicator<'w> {
    job: &'w ExecutiveJob,
    params: ExecutiveParams<'w>,
    scenario: Scenario,
    scratch: ExecutiveScratch,
    faults: BatchedFaults,
    policies: PooledPolicies,
}

impl Replicate for ExecutiveReplicator<'_> {
    type Acc = ExecutiveSummary;

    fn run_one(&mut self, replication: u64, acc: &mut ExecutiveSummary) {
        let seed = replication_seed(self.job.base_seed, replication);
        self.faults.reset(seed);
        run_executive_pooled(
            &self.params,
            &mut self.scenario,
            &mut self.faults,
            &mut self.policies,
            &mut NoopObserver,
            &mut self.scratch,
        );
        acc.absorb_horizon(self.scratch.jobs());
    }
}

impl Workload for ExecutiveJob {
    type Acc = ExecutiveSummary;
    type Rep<'w> = ExecutiveReplicator<'w>;

    fn replications(&self) -> u64 {
        self.replications
    }

    fn empty_acc(&self) -> ExecutiveSummary {
        ExecutiveSummary::empty(self.set.len())
    }

    fn merge_acc(into: &mut ExecutiveSummary, part: &ExecutiveSummary) {
        into.merge(part);
    }

    // audit:setup: builds the pooled scratch, scenario template, fault
    // stream and per-task policies once per block; horizons then only
    // reset them.
    fn replicator(&self) -> ExecutiveReplicator<'_> {
        let params = ExecutiveParams {
            set: &self.set,
            costs: self.costs,
            dvs: self.dvs.clone(),
            hyperperiods: self.spec.hyperperiods,
            options: self.options,
        };
        let scenario = scenario_template(&params);
        let policies = PooledPolicies {
            policies: (0..self.set.len())
                .map(|task| {
                    // `from_spec` validated the assignment (arity and
                    // every policy build).
                    let policy = self.spec.policy.for_task(task).build();
                    // audit:allow(panic): checked by `from_spec` above.
                    policy.expect("validated policy spec")
                })
                .collect(),
        };
        let faults = self.spec.faults.build(self.base_seed);
        ExecutiveReplicator {
            job: self,
            params,
            scenario,
            scratch: ExecutiveScratch::new(),
            // audit:allow(panic): `from_spec` validated the fault spec.
            faults: BatchedFaults::new(faults.expect("validated fault spec")),
            policies,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{run_workload_local, run_workload_queued};
    use eacp_spec::{ExecutiveMcSpec, FaultSpec, PolicyAssignment, PolicySpec, TaskSetSpec};

    fn mc_spec(replications: u64) -> ExecutiveSpec {
        let mut spec = ExecutiveSpec::new(
            "exec-mc-test",
            TaskSetSpec::implicit([("sensor", 500.0, 4_000), ("control", 1_200.0, 8_000)]),
        );
        spec.faults = FaultSpec::Poisson { lambda: 8e-4 };
        spec.policy = PolicyAssignment::Shared(PolicySpec::from_tag("a_d_s", 8e-4, 2, 0).unwrap());
        spec.hyperperiods = 2;
        spec.seed = 77;
        spec.mc = Some(ExecutiveMcSpec {
            replications,
            threads: 0,
            queue: None,
        });
        spec
    }

    #[test]
    fn executive_job_validates_and_reports_shape() {
        let job = ExecutiveJob::from_spec(&mc_spec(16)).unwrap();
        assert_eq!(job.replications(), 16);
        assert_eq!(job.task_count(), 2);
        assert_eq!(job.policy_label(), "A_D_S+A_D_S");

        let mut bad = mc_spec(16);
        bad.tasks.tasks.clear();
        assert!(ExecutiveJob::from_spec(&bad).is_err());
    }

    #[test]
    fn horizons_are_independent_of_thread_and_worker_count() {
        let job = ExecutiveJob::from_spec(&mc_spec(24)).unwrap();
        let reference = run_workload_local(&job, 1, 0);
        assert_eq!(reference.horizons, 24);
        assert!(reference.jobs >= 24 * 6, "2 hyperperiods release 6 jobs");
        for threads in [2usize, 5] {
            assert_eq!(
                run_workload_local(&job, threads, 0),
                reference,
                "threads = {threads}"
            );
        }
        for workers in [1usize, 3] {
            let queued =
                run_workload_queued(&job, workers, 3, 0, &crate::queue::NoopQueueObserver).unwrap();
            assert_eq!(queued, reference, "workers = {workers}");
        }
    }

    #[test]
    fn summary_serialization_is_lossless() {
        let job = ExecutiveJob::from_spec(&mc_spec(8)).unwrap();
        let summary = run_workload_local(&job, 1, 0);
        let text = summary.to_json().pretty();
        let back = ExecutiveSummary::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, summary);
        // Byte-identical re-serialization (what the store's verify needs).
        assert_eq!(back.to_json().pretty(), text);
    }

    #[test]
    fn empty_summary_is_the_merge_identity() {
        let job = ExecutiveJob::from_spec(&mc_spec(4)).unwrap();
        let summary = run_workload_local(&job, 1, 0);
        let mut left = ExecutiveSummary::empty(2);
        left.merge(&summary);
        assert_eq!(left, summary);
        let mut right = summary.clone();
        right.merge(&ExecutiveSummary::empty(2));
        assert_eq!(right, summary);
    }

    #[test]
    #[should_panic(expected = "different task sets")]
    fn merging_mismatched_task_arities_panics() {
        let mut a = ExecutiveSummary::empty(2);
        let b = ExecutiveSummary::empty(3);
        a.merge(&b);
    }
}
