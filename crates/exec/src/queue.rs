//! The work-queue execution scheduler: a [`WorkQueue`] of leasable
//! assignments drained by a pool of workers, and the [`QueueRunner`] that
//! puts a [`Job`]'s canonical reduction blocks on that queue.
//!
//! This is the ROADMAP's batch-execution scheduler. The moving parts:
//!
//! * **[`WorkQueue`]** — a generic queue of indexed assignments. Workers
//!   [`lease`](WorkQueue::lease) an assignment, then either
//!   [`complete`](WorkQueue::complete) it or [`fail`](WorkQueue::fail) it;
//!   a failed (or abandoned) lease is put back on the queue and retried by
//!   whichever worker gets to it next, up to a per-assignment attempt
//!   budget. Exhausting the budget poisons the queue: every worker drains
//!   out and the scheduler surfaces the fatal error. Two liveness guards
//!   back the budget:
//!   - **Drop-guard**: a [`Lease`] dropped without settling (a caller bug,
//!     a panic mid-assignment) re-queues its assignment as a failed
//!     attempt instead of stranding it and deadlocking the drain.
//!   - **Lease deadline**: with
//!     [`with_lease_timeout`](WorkQueue::with_lease_timeout), an expired
//!     lease is reclaimed by whichever peer notices (a worker wedged in
//!     an unbounded wait cannot settle, but its assignment still moves);
//!     a late settle from the original holder is ignored — deterministic
//!     re-execution makes the duplicate result bit-identical anyway.
//! * **[`Worker`]** — *where* one assignment executes. The in-process
//!   implementation ([`InProcessWorker`]) runs the block on the calling
//!   thread; the networked [`RemoteWorker`](crate::remote::RemoteWorker)
//!   ships the job's spec + the block range to an `eacp serve` process
//!   and plugs in without touching any call site.
//! * **[`QueueRunner`]** — the [`Runner`] built from the two: it splits a
//!   job into the same fixed-size canonical blocks as [`LocalRunner`],
//!   queues them, drains the queue with a worker pool, and merges the
//!   partial [`Summary`]s in ascending block order. Because a failed lease
//!   discards its partial wholesale and the re-run is deterministic
//!   (per-replication seeding), the merged result is **bit-identical to
//!   [`LocalRunner`] for any worker count and any failure/retry schedule**.
//! * **[`QueueObserver`]** — live scheduler telemetry: every lease, retry
//!   and completion, each with a [`QueueStatus`] snapshot (queue depth,
//!   outstanding leases, completions, retries).
//!
//! Sweep-level scheduling sits on the same queue: [`run_sweep_queued`]
//! leases whole grid points to the pool, producing a [`GridReport`]
//! byte-identical to the sequential [`crate::run_sweep`].
//!
//! [`LocalRunner`]: crate::LocalRunner

use crate::job::Job;
use crate::runner::Runner;
use crate::runner::{canonical_block_size, merge_blocks, run_block, run_sequential_observed};
use crate::shard::{run_point_tiered, GridReport, PointReport, ShardId};
use eacp_sim::{NoopObserver, Observer, Summary};
use eacp_spec::{SpecError, SweepSpec};
use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};
use std::time::Duration;

// Lease deadlines are the one place the scheduler reads a clock. They
// affect only *scheduling* — when an expired lease becomes reclaimable by
// a peer — never results: the canonical merge forgets the schedule, and a
// reclaimed assignment re-runs deterministically from its seeds.
#[allow(clippy::disallowed_types)]
type DeadlineClock = std::time::Instant; // audit:allow(determinism): scheduling-only deadline clock; results are schedule-invariant under the canonical reduction

/// Default per-assignment attempt budget: the first attempt plus two
/// retries.
pub const DEFAULT_MAX_ATTEMPTS: u32 = 3;

/// A leased assignment handle: the queue slot index, the work item, and
/// which attempt this is (1-based — attempt 2 means the first lease
/// failed).
///
/// A lease must be settled back into its queue via
/// [`WorkQueue::complete`] or [`WorkQueue::fail`]. Dropping it unsettled
/// — a panic mid-assignment, or a caller that simply forgets — triggers
/// the drop-guard: the assignment is re-queued as a failed attempt, so
/// peers keep draining instead of waiting forever on a completion that
/// cannot come.
pub struct Lease<'q, T: Clone> {
    queue: &'q WorkQueue<T>,
    /// Unique id of this specific lease; a reclaimed-then-settled lease
    /// is recognized (and ignored) by its stale ticket.
    ticket: u64,
    index: usize,
    attempt: u32,
    /// `Some` until settled; `None` disarms the drop-guard.
    item: Option<T>,
}

impl<T: Clone> Lease<'_, T> {
    /// Index of the assignment in the queue's original item order.
    pub fn index(&self) -> usize {
        self.index
    }

    /// 1-based attempt number.
    pub fn attempt(&self) -> u32 {
        self.attempt
    }

    /// The work item itself.
    pub fn item(&self) -> &T {
        // audit:allow(panic): the item is present until `complete`/`fail`
        // consume the lease by value, so a live `&self` always holds it.
        self.item.as_ref().expect("lease already settled")
    }
}

impl<T: Clone + std::fmt::Debug> std::fmt::Debug for Lease<'_, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Lease")
            .field("index", &self.index)
            .field("attempt", &self.attempt)
            .field("item", &self.item)
            .finish_non_exhaustive()
    }
}

impl<T: Clone> Drop for Lease<'_, T> {
    fn drop(&mut self) {
        if let Some(item) = self.item.take() {
            self.queue.resolve(
                self.ticket,
                self.index,
                self.attempt,
                item,
                Some(&SpecError::invalid(
                    "lease dropped without complete/fail (worker panicked or abandoned it)",
                )),
            );
        }
    }
}

/// A point-in-time snapshot of queue accounting, reported to
/// [`QueueObserver`]s and rendered by `eacp queue status`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueueStatus {
    /// Total assignments the queue was created with.
    pub total: usize,
    /// Assignments waiting to be leased (the queue depth).
    pub pending: usize,
    /// Assignments currently leased to a worker.
    pub leased: usize,
    /// Assignments completed successfully.
    pub completed: usize,
    /// Failed/abandoned/expired leases that were put back on the queue.
    pub retries: u64,
}

/// Receives scheduler events from a draining [`WorkQueue`].
///
/// Callbacks take `&self` because they are invoked concurrently from every
/// worker thread; implementations use interior mutability (atomics, a
/// mutex) for anything they accumulate.
pub trait QueueObserver: Sync {
    /// Worker `worker` leased assignment `index` (attempt `attempt`).
    fn on_lease(&self, worker: usize, index: usize, attempt: u32, status: QueueStatus) {
        let _ = (worker, index, attempt, status);
    }

    /// Worker `worker` completed assignment `index`.
    fn on_complete(&self, worker: usize, index: usize, status: QueueStatus) {
        let _ = (worker, index, status);
    }

    /// Worker `worker` failed (or abandoned) assignment `index`, or
    /// noticed its lease deadline expire; the assignment went back on the
    /// queue for another attempt.
    fn on_retry(
        &self,
        worker: usize,
        index: usize,
        attempt: u32,
        error: &SpecError,
        status: QueueStatus,
    ) {
        let _ = (worker, index, attempt, error, status);
    }
}

/// The do-nothing queue observer.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoopQueueObserver;

impl QueueObserver for NoopQueueObserver {}

/// An assignment waiting to be leased.
struct PendingItem<T> {
    index: usize,
    item: T,
    attempt: u32,
}

/// An assignment currently out on lease. Carries its own copy of the item
/// so an expired lease can be re-queued without the holder's cooperation.
struct InFlight<T> {
    ticket: u64,
    index: usize,
    attempt: u32,
    item: T,
    deadline: Option<DeadlineClock>,
}

struct QueueState<T> {
    pending: VecDeque<PendingItem<T>>,
    in_flight: Vec<InFlight<T>>,
    completed: usize,
    retries: u64,
    /// Deadline expiries reclaimed but not yet reported to an observer:
    /// `(index, expired attempt)` — drained by [`WorkQueue::take_expiries`].
    expiries: Vec<(usize, u32)>,
    next_ticket: u64,
    fatal: Option<SpecError>,
}

/// A queue of indexed work assignments with lease/complete/fail semantics.
///
/// The queue itself is execution-agnostic: items are whatever a scheduler
/// leases out — replication blocks for [`QueueRunner`], grid-point indices
/// for [`run_sweep_queued`]. Blocking [`lease`](WorkQueue::lease) calls
/// wake when work reappears (a failed lease re-queued) or when the queue
/// drains or is poisoned.
pub struct WorkQueue<T> {
    state: Mutex<QueueState<T>>,
    ready: Condvar,
    total: usize,
    max_attempts: u32,
    lease_timeout: Option<Duration>,
}

impl<T: Clone> WorkQueue<T> {
    /// Creates a queue over `items` with the default attempt budget.
    pub fn new(items: impl IntoIterator<Item = T>) -> Self {
        let pending: VecDeque<PendingItem<T>> = items
            .into_iter()
            .enumerate()
            .map(|(index, item)| PendingItem {
                index,
                item,
                attempt: 1,
            })
            .collect();
        let total = pending.len();
        Self {
            state: Mutex::new(QueueState {
                pending,
                in_flight: Vec::new(),
                completed: 0,
                retries: 0,
                expiries: Vec::new(),
                next_ticket: 0,
                fatal: None,
            }),
            ready: Condvar::new(),
            total,
            max_attempts: DEFAULT_MAX_ATTEMPTS,
            lease_timeout: None,
        }
    }

    /// Overrides the per-assignment attempt budget (clamped to ≥ 1).
    pub fn with_max_attempts(mut self, max_attempts: u32) -> Self {
        self.max_attempts = max_attempts.max(1);
        self
    }

    /// Sets a per-lease deadline: a lease not settled within `timeout`
    /// becomes reclaimable by peers (counted as a failed attempt, reported
    /// through [`QueueObserver::on_retry`]). This is the wedge-stall
    /// guard — a worker stuck in an unbounded wait cannot settle, but its
    /// assignment still moves. The deadline cannot unstick the wedged
    /// thread itself; pair it with workers whose blocking operations carry
    /// their own timeouts (the remote transport derives this deadline from
    /// its per-request timeout budget).
    pub fn with_lease_timeout(mut self, timeout: Duration) -> Self {
        self.lease_timeout = Some(timeout.max(Duration::from_millis(1)));
        self
    }

    /// Total assignments the queue was created with.
    pub fn total(&self) -> usize {
        self.total
    }

    /// Locks the queue state.
    fn locked(&self) -> std::sync::MutexGuard<'_, QueueState<T>> {
        // audit:allow(panic): a poisoned lock means a peer worker already
        // panicked mid-update; queue accounting is unrecoverable then, and
        // `drain` re-raises the original panic from its join.
        self.state.lock().expect("queue lock poisoned")
    }

    /// A snapshot of the queue accounting.
    pub fn status(&self) -> QueueStatus {
        let s = self.locked();
        QueueStatus {
            total: self.total,
            pending: s.pending.len(),
            leased: s.in_flight.len(),
            completed: s.completed,
            retries: s.retries,
        }
    }

    /// Re-queues every in-flight lease whose deadline has passed. Counts
    /// each as a failed attempt; exhausting the budget poisons the queue.
    fn reclaim_expired(&self, s: &mut QueueState<T>) {
        if self.lease_timeout.is_none() {
            return;
        }
        // audit:allow(determinism): scheduling-only deadline check.
        let now = DeadlineClock::now();
        let mut reclaimed = false;
        let mut i = 0;
        while i < s.in_flight.len() {
            if s.in_flight[i].deadline.is_some_and(|d| d <= now) {
                let e = s.in_flight.swap_remove(i);
                s.retries += 1;
                s.expiries.push((e.index, e.attempt));
                reclaimed = true;
                if e.attempt >= self.max_attempts {
                    s.fatal = Some(SpecError::invalid(format!(
                        "assignment {} lease expired after {} attempts \
                         (deadline {:?}; holder never settled)",
                        e.index,
                        e.attempt,
                        self.lease_timeout.unwrap_or_default(),
                    )));
                } else {
                    s.pending.push_back(PendingItem {
                        index: e.index,
                        item: e.item,
                        attempt: e.attempt + 1,
                    });
                }
            } else {
                i += 1;
            }
        }
        if reclaimed {
            self.ready.notify_all();
        }
    }

    /// Leases the next pending assignment, blocking while the queue is
    /// momentarily empty but other leases are still in flight (one of them
    /// may fail, expire, or re-queue its assignment).
    ///
    /// Returns `None` once the queue has drained (every assignment
    /// completed) or been poisoned by an exhausted attempt budget — in
    /// both cases the worker should exit its loop.
    pub fn lease(&self) -> Option<Lease<'_, T>> {
        let mut s = self.locked();
        loop {
            self.reclaim_expired(&mut s);
            if s.fatal.is_some() {
                return None;
            }
            if let Some(p) = s.pending.pop_front() {
                let ticket = s.next_ticket;
                s.next_ticket += 1;
                let deadline = self
                    .lease_timeout
                    // audit:allow(determinism): scheduling-only deadline.
                    .map(|t| DeadlineClock::now() + t);
                s.in_flight.push(InFlight {
                    ticket,
                    index: p.index,
                    attempt: p.attempt,
                    item: p.item.clone(),
                    deadline,
                });
                return Some(Lease {
                    queue: self,
                    ticket,
                    index: p.index,
                    attempt: p.attempt,
                    item: Some(p.item),
                });
            }
            if s.in_flight.is_empty() {
                // Nothing pending and nothing in flight: drained.
                return None;
            }
            let next_deadline = s.in_flight.iter().filter_map(|e| e.deadline).min();
            s = match next_deadline {
                // Sleep until the earliest deadline so an expired lease is
                // reclaimed promptly even if nobody settles anything.
                Some(deadline) => {
                    // audit:allow(determinism): scheduling-only wakeup.
                    let wait = deadline.saturating_duration_since(DeadlineClock::now());
                    self.ready
                        .wait_timeout(s, wait)
                        // audit:allow(panic): same poisoned-lock invariant
                        // as `locked`.
                        .expect("queue lock poisoned")
                        .0
                }
                // audit:allow(panic): same poisoned-lock invariant.
                None => self.ready.wait(s).expect("queue lock poisoned"),
            };
        }
    }

    /// Settles a lease: removes it from the in-flight set and either
    /// counts the completion or re-queues/poisons on failure. A stale
    /// ticket (the lease expired and a peer already reclaimed it) is
    /// ignored — the reclaim already did the accounting, and the re-run
    /// produces a bit-identical result.
    fn resolve(&self, ticket: u64, index: usize, attempt: u32, item: T, error: Option<&SpecError>) {
        let mut s = self.locked();
        let Some(pos) = s.in_flight.iter().position(|e| e.ticket == ticket) else {
            return;
        };
        s.in_flight.swap_remove(pos);
        match error {
            None => s.completed += 1,
            Some(error) => {
                s.retries += 1;
                if attempt >= self.max_attempts {
                    s.fatal = Some(SpecError::invalid(format!(
                        "assignment {index} failed after {attempt} attempts: {error}"
                    )));
                } else {
                    s.pending.push_back(PendingItem {
                        index,
                        item,
                        attempt: attempt + 1,
                    });
                }
            }
        }
        drop(s);
        // Workers blocked in `lease` must re-check the drained condition.
        self.ready.notify_all();
    }

    /// Marks a leased assignment as successfully completed.
    pub fn complete(&self, mut lease: Lease<'_, T>) {
        debug_assert!(std::ptr::eq(lease.queue, self), "lease from another queue");
        if let Some(item) = lease.item.take() {
            self.resolve(lease.ticket, lease.index, lease.attempt, item, None);
        }
    }

    /// Reports a failed (or abandoned) lease.
    ///
    /// The assignment returns to the back of the queue for another
    /// attempt; once its attempt budget is exhausted the queue is poisoned
    /// with a fatal error naming the assignment, and every worker drains
    /// out.
    pub fn fail(&self, mut lease: Lease<'_, T>, error: &SpecError) {
        debug_assert!(std::ptr::eq(lease.queue, self), "lease from another queue");
        if let Some(item) = lease.item.take() {
            self.resolve(lease.ticket, lease.index, lease.attempt, item, Some(error));
        }
    }

    /// Drains and returns the deadline expiries reclaimed since the last
    /// call: `(assignment index, the attempt that expired)` pairs.
    /// [`WorkQueue::drain`] polls this to route expiries into
    /// [`QueueObserver::on_retry`]; external lease loops can do the same.
    pub fn take_expiries(&self) -> Vec<(usize, u32)> {
        std::mem::take(&mut self.locked().expiries)
    }

    /// The fatal error that poisoned the queue, if any.
    pub fn fatal(&self) -> Option<SpecError> {
        self.locked().fatal.clone()
    }

    /// Drains the queue with a pool of `workers` threads, running each
    /// leased assignment through `run` and collecting the results in
    /// assignment order.
    ///
    /// `run` is called as `run(worker, &lease)`; an `Err` re-queues the
    /// assignment (see [`WorkQueue::fail`]). The call returns once every
    /// assignment has completed, or with the fatal error once any
    /// assignment exhausts its attempt budget. A *panic* inside `run`
    /// drops the lease mid-unwind, and the lease's drop-guard re-queues
    /// the assignment (so peer workers drain out instead of waiting
    /// forever on a completion that never comes); the panic then
    /// propagates as a panic of the `drain` call itself.
    pub fn drain<R: Send>(
        &self,
        workers: usize,
        obs: &dyn QueueObserver,
        run: impl Fn(usize, &Lease<'_, T>) -> Result<R, SpecError> + Sync,
    ) -> Result<Vec<R>, SpecError>
    where
        T: Send,
    {
        let workers = workers.clamp(1, self.total.max(1));
        let expired = SpecError::invalid(format!(
            "lease deadline exceeded ({:?})",
            self.lease_timeout.unwrap_or_default()
        ));
        let report_expiries = |worker: usize| {
            for (index, attempt) in self.take_expiries() {
                obs.on_retry(worker, index, attempt, &expired, self.status());
            }
        };
        let mut collected: Vec<(usize, R)> = Vec::with_capacity(self.total);
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(workers);
            for worker in 0..workers {
                let run = &run;
                let report_expiries = &report_expiries;
                handles.push(scope.spawn(move || {
                    let mut local: Vec<(usize, R)> = Vec::new();
                    while let Some(lease) = self.lease() {
                        report_expiries(worker);
                        obs.on_lease(worker, lease.index(), lease.attempt(), self.status());
                        match run(worker, &lease) {
                            Ok(result) => {
                                let index = lease.index();
                                local.push((index, result));
                                self.complete(lease);
                                obs.on_complete(worker, index, self.status());
                            }
                            Err(error) => {
                                let (index, attempt) = (lease.index(), lease.attempt());
                                self.fail(lease, &error);
                                obs.on_retry(worker, index, attempt, &error, self.status());
                            }
                        }
                    }
                    // An expiry may have poisoned the queue after our last
                    // lease; report it before draining out.
                    report_expiries(worker);
                    local
                }));
            }
            for h in handles {
                // audit:allow(panic): re-raises a worker's panic on the
                // caller thread — the documented `drain` contract; the
                // lease drop-guard already released the dead worker's
                // assignment.
                collected.extend(h.join().expect("queue worker panicked"));
            }
        });
        if let Some(fatal) = self.fatal() {
            return Err(fatal);
        }
        // Forget the lease schedule: place every result at its assignment
        // index and hand them back in canonical order. An expired lease
        // can complete twice (the stale holder and the reclaimer); the
        // results are bit-identical, so last-write-wins is safe.
        let mut slots: Vec<Option<R>> = Vec::with_capacity(self.total);
        slots.resize_with(self.total, || None);
        for (index, result) in collected {
            slots[index] = Some(result);
        }
        Ok(slots
            .into_iter()
            // audit:allow(panic): the queue only drains once `completed ==
            // total` and every completion filled its slot above.
            .map(|r| r.expect("every assignment completed exactly once"))
            .collect())
    }
}

/// One contiguous replication block of a job — the unit of work a
/// [`QueueRunner`] leases to its pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockAssignment {
    /// Canonical block index (ascending merge order).
    pub block: u64,
    /// First replication of the block (inclusive).
    pub lo: u64,
    /// End of the block (exclusive).
    pub hi: u64,
}

/// Executes one leased block of a job — the remote-execution seam.
///
/// [`InProcessWorker`] runs the block on the calling thread. The networked
/// [`RemoteWorker`](crate::remote::RemoteWorker) implements the same trait
/// by shipping the job's spec and the block's replication range to an
/// `eacp serve` process and deserializing the partial [`Summary`] that
/// comes back; per-replication seeding guarantees the partial is identical
/// wherever it ran, so swapping implementations never changes results. The
/// seam covers the fast path ([`Runner::run`] / [`QueueRunner::run_with`])
/// only: [`Runner::run_observed`] streams per-replication events and
/// therefore always executes sequentially in-process, bypassing the
/// worker.
pub trait Worker: Send + Sync {
    /// Short implementation name for logs and errors.
    fn name(&self) -> &'static str;

    /// Runs every replication in `assignment` and returns the block's
    /// partial summary. `attempt` is the lease's 1-based attempt number —
    /// implementations may route retries differently (the remote worker
    /// rotates endpoints and falls back in-process on the final attempt).
    /// An `Err` counts as a failed lease: the block is re-queued and
    /// retried from scratch.
    fn run_assignment(
        &self,
        job: &Job,
        assignment: BlockAssignment,
        attempt: u32,
    ) -> Result<Summary, SpecError>;
}

/// The local [`Worker`]: runs the block on the leasing thread.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct InProcessWorker;

impl Worker for InProcessWorker {
    fn name(&self) -> &'static str {
        "in-process"
    }

    fn run_assignment(
        &self,
        job: &Job,
        assignment: BlockAssignment,
        _attempt: u32,
    ) -> Result<Summary, SpecError> {
        Ok(run_block(
            job,
            assignment.lo,
            assignment.hi,
            &mut NoopObserver,
        ))
    }
}

/// Work-queue [`Runner`]: canonical blocks leased to a worker pool.
///
/// Results are bit-identical to [`crate::LocalRunner`] for any worker
/// count because both runners split the job with
/// the same replication-count-only block rule and merge partials in
/// ascending block order; the queue schedule (which worker ran which
/// block, in what order, with how many retries) is forgotten at the merge.
pub struct QueueRunner<W: Worker = InProcessWorker> {
    workers: usize,
    block_size: u64,
    max_attempts: u32,
    lease_timeout: Option<Duration>,
    worker: W,
}

impl QueueRunner<InProcessWorker> {
    /// Creates a queue runner with `workers` pool threads (0 = available
    /// parallelism) leasing to in-process workers.
    pub fn new(workers: usize) -> Self {
        Self {
            workers,
            block_size: 0,
            max_attempts: DEFAULT_MAX_ATTEMPTS,
            lease_timeout: None,
            worker: InProcessWorker,
        }
    }
}

impl<W: Worker> QueueRunner<W> {
    /// Swaps the [`Worker`] implementation (failure-injecting test
    /// workers; the networked [`crate::remote::RemoteWorker`]).
    pub fn with_worker<V: Worker>(self, worker: V) -> QueueRunner<V> {
        QueueRunner {
            workers: self.workers,
            block_size: self.block_size,
            max_attempts: self.max_attempts,
            lease_timeout: self.lease_timeout,
            worker,
        }
    }

    /// Overrides the reduction block size (0 = derive from the replication
    /// count). Must match the comparison runner's block size for
    /// bit-identical cross-runner results; the default always does.
    pub fn with_block_size(mut self, block_size: u64) -> Self {
        self.block_size = block_size;
        self
    }

    /// Overrides the per-assignment attempt budget (clamped to ≥ 1).
    pub fn with_max_attempts(mut self, max_attempts: u32) -> Self {
        self.max_attempts = max_attempts.max(1);
        self
    }

    /// Sets the per-lease deadline (see [`WorkQueue::with_lease_timeout`]).
    pub fn with_lease_timeout(mut self, timeout: Duration) -> Self {
        self.lease_timeout = Some(timeout);
        self
    }

    fn pool_size(&self, blocks: u64) -> usize {
        resolve_workers(self.workers).clamp(1, blocks.max(1) as usize)
    }

    /// [`Runner::run`] with scheduler telemetry streamed into `obs`.
    pub fn run_with(&self, job: &Job, obs: &dyn QueueObserver) -> Result<Summary, SpecError> {
        let reps = job.replications();
        let block = canonical_block_size(self.block_size, reps);
        let n_blocks = reps.div_ceil(block);
        let assignments = (0..n_blocks).map(|b| BlockAssignment {
            block: b,
            lo: b * block,
            hi: ((b + 1) * block).min(reps),
        });
        let mut queue = WorkQueue::new(assignments).with_max_attempts(self.max_attempts);
        if let Some(timeout) = self.lease_timeout {
            queue = queue.with_lease_timeout(timeout);
        }
        let partials = queue.drain(self.pool_size(n_blocks), obs, |_worker, lease| {
            self.worker
                .run_assignment(job, *lease.item(), lease.attempt())
        })?;
        Ok(merge_blocks(partials))
    }
}

impl<W: Worker> Runner for QueueRunner<W> {
    fn name(&self) -> &'static str {
        "queue"
    }

    fn run(&self, job: &Job) -> Result<Summary, SpecError> {
        self.run_with(job, &NoopQueueObserver)
    }

    /// Note: a shared replication observer imposes an ordering, so this
    /// path runs sequentially **in-process** over the canonical blocks —
    /// it does not lease through the [`Worker`] seam and performs no
    /// retries. The aggregate is still bit-identical to [`Runner::run`];
    /// only execution locality differs. Use [`QueueRunner::run_with`] and
    /// a [`QueueObserver`] for scheduler-level telemetry that keeps the
    /// worker pool.
    fn run_observed(&self, job: &Job, obs: &mut dyn Observer) -> Result<Summary, SpecError> {
        Ok(run_sequential_observed(job, self.block_size, obs))
    }

    /// Executive workloads lease the same canonical blocks through a
    /// [`WorkQueue`] ([`crate::workload::run_workload_queued`]): any
    /// worker count and any failure/retry schedule produces the same
    /// summary as [`LocalRunner`](crate::LocalRunner), bit for bit.
    fn run_executive(
        &self,
        job: &crate::ExecutiveJob,
    ) -> Result<crate::ExecutiveSummary, SpecError> {
        crate::workload::run_workload_queued(
            job,
            self.workers,
            self.max_attempts,
            self.block_size,
            &NoopQueueObserver,
        )
    }
}

/// Resolves a requested pool size: 0 means available parallelism.
pub(crate) fn resolve_workers(workers: usize) -> usize {
    if workers == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        workers
    }
}

/// Expands a sweep and drains the selected shard's grid points through a
/// work-queue worker pool (`workers = 0` for available parallelism),
/// producing a report byte-identical to the sequential
/// [`crate::run_sweep`].
///
/// Each leased point runs on a single-threaded [`crate::LocalRunner`];
/// thread-count invariance of the canonical reduction makes the per-point
/// reports — and therefore the assembled [`GridReport`] — independent of
/// the pool size, the lease schedule and any retries.
pub fn run_sweep_queued(
    sweep: &SweepSpec,
    shard: Option<ShardId>,
    workers: usize,
    max_attempts: u32,
    obs: &dyn QueueObserver,
) -> Result<GridReport, SpecError> {
    run_sweep_queued_tiered(sweep, shard, workers, max_attempts, obs, true)
}

/// [`run_sweep_queued`] with the closed-form serve tier explicitly enabled
/// or disabled (`analytic = false` is the CLI's `--no-analytic`).
pub fn run_sweep_queued_tiered(
    sweep: &SweepSpec,
    shard: Option<ShardId>,
    workers: usize,
    max_attempts: u32,
    obs: &dyn QueueObserver,
    analytic: bool,
) -> Result<GridReport, SpecError> {
    let specs = sweep.expand()?;
    let total = specs.len();
    let range = match shard {
        Some(s) => s.range(total),
        None => 0..total,
    };
    let indices: Vec<usize> = range.collect();
    let queue = WorkQueue::new(indices).with_max_attempts(max_attempts);
    let runner = crate::LocalRunner::new(1);
    let points = queue.drain(resolve_workers(workers), obs, |_worker, lease| {
        let index = *lease.item();
        let spec = &specs[index];
        let report = run_point_tiered(&runner, spec, analytic)
            .map_err(|e| SpecError::invalid(format!("grid point {index} ({}): {e}", spec.name)))?;
        Ok(PointReport { index, report })
    })?;
    Ok(GridReport {
        sweep: sweep.clone(),
        total_points: total,
        shard,
        points,
        source: None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::LocalRunner;
    use eacp_spec::{ExperimentSpec, McSpec, SweepAxis, ToJson};
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Mutex as StdMutex;

    fn spec(reps: u64) -> ExperimentSpec {
        let mut spec = ExperimentSpec::paper_nominal();
        spec.mc = McSpec {
            replications: reps,
            seed: 42,
            threads: 0,
        };
        spec
    }

    /// Counts scheduler events; used to prove the observer wiring fires.
    #[derive(Default)]
    struct CountingQueueObserver {
        leases: AtomicU64,
        completions: AtomicU64,
        retries: AtomicU64,
    }

    impl QueueObserver for CountingQueueObserver {
        fn on_lease(&self, _w: usize, _i: usize, _a: u32, _s: QueueStatus) {
            self.leases.fetch_add(1, Ordering::Relaxed);
        }
        fn on_complete(&self, _w: usize, _i: usize, status: QueueStatus) {
            self.completions.fetch_add(1, Ordering::Relaxed);
            assert!(status.completed <= status.total);
        }
        fn on_retry(&self, _w: usize, _i: usize, _a: u32, _e: &SpecError, _s: QueueStatus) {
            self.retries.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Fails the first `fail_first_attempts` leases of every block whose
    /// index is in `blocks` — lease abandonment mid-block, deterministic.
    // A test double counting attempts by block id; never iterated, so
    // hash order is irrelevant (see clippy.toml on R1 scope).
    #[allow(clippy::disallowed_types)]
    struct FlakyWorker {
        blocks: Vec<u64>,
        fail_first_attempts: u32,
        attempts: StdMutex<std::collections::HashMap<u64, u32>>,
    }

    impl FlakyWorker {
        fn failing(blocks: Vec<u64>, fail_first_attempts: u32) -> Self {
            Self {
                blocks,
                fail_first_attempts,
                attempts: StdMutex::new(Default::default()),
            }
        }
    }

    impl Worker for FlakyWorker {
        fn name(&self) -> &'static str {
            "flaky"
        }
        fn run_assignment(
            &self,
            job: &Job,
            assignment: BlockAssignment,
            attempt: u32,
        ) -> Result<Summary, SpecError> {
            let seen = {
                let mut seen = self.attempts.lock().unwrap();
                let n = seen.entry(assignment.block).or_insert(0);
                *n += 1;
                *n
            };
            if self.blocks.contains(&assignment.block) && seen <= self.fail_first_attempts {
                return Err(SpecError::invalid(format!(
                    "injected lease failure (block {}, attempt {seen})",
                    assignment.block
                )));
            }
            InProcessWorker.run_assignment(job, assignment, attempt)
        }
    }

    #[test]
    fn queue_runner_matches_local_runner_for_1_3_and_64_workers() {
        let job = Job::from_spec(&spec(400)).unwrap();
        let reference = LocalRunner::new(1).run(&job).unwrap();
        for workers in [1usize, 3, 64] {
            let queued = QueueRunner::new(workers).run(&job).unwrap();
            assert_eq!(reference, queued, "workers = {workers}");
        }
    }

    #[test]
    fn injected_lease_failures_do_not_change_the_summary() {
        let job = Job::from_spec(&spec(300)).unwrap();
        let reference = LocalRunner::new(1).run(&job).unwrap();
        let obs = CountingQueueObserver::default();
        // 300 reps → block 16 → 19 blocks; fail the first attempt of a
        // third of them.
        let flaky = FlakyWorker::failing(vec![0, 3, 6, 9, 12, 15, 18], 1);
        let queued = QueueRunner::new(4)
            .with_worker(flaky)
            .run_with(&job, &obs)
            .unwrap();
        assert_eq!(reference, queued);
        assert_eq!(obs.retries.load(Ordering::Relaxed), 7);
        assert_eq!(obs.completions.load(Ordering::Relaxed), 19);
        assert_eq!(
            obs.leases.load(Ordering::Relaxed),
            19 + 7,
            "every retry re-leases"
        );
    }

    #[test]
    fn exhausted_attempt_budget_is_a_fatal_error_not_a_hang() {
        let job = Job::from_spec(&spec(40)).unwrap();
        let always_failing = FlakyWorker::failing(vec![1], u32::MAX);
        let err = QueueRunner::new(3)
            .with_worker(always_failing)
            .with_max_attempts(2)
            .run(&job)
            .unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("after 2 attempts"), "{msg}");
        assert!(msg.contains("injected lease failure"), "{msg}");
    }

    #[test]
    #[should_panic(expected = "queue worker panicked")]
    fn worker_panic_propagates_instead_of_deadlocking() {
        // One worker panics mid-lease; the lease's drop-guard releases the
        // assignment on unwind so the peers drain out, and the panic then
        // propagates through the pool join — the failure mode is a crash
        // with a message, never a hang on a completion that can't come.
        struct PanickingWorker {
            fired: StdMutex<bool>,
        }
        impl Worker for PanickingWorker {
            fn name(&self) -> &'static str {
                "panicking"
            }
            fn run_assignment(
                &self,
                job: &Job,
                assignment: BlockAssignment,
                attempt: u32,
            ) -> Result<Summary, SpecError> {
                if assignment.block == 1 {
                    let mut fired = self.fired.lock().unwrap();
                    if !*fired {
                        *fired = true;
                        panic!("injected worker panic");
                    }
                }
                InProcessWorker.run_assignment(job, assignment, attempt)
            }
        }
        let job = Job::from_spec(&spec(100)).unwrap();
        let _ = QueueRunner::new(3)
            .with_worker(PanickingWorker {
                fired: StdMutex::new(false),
            })
            .run(&job);
    }

    #[test]
    fn observed_queue_run_matches_the_fast_path() {
        let job = Job::from_spec(&spec(200)).unwrap();
        let fast = QueueRunner::new(4).run(&job).unwrap();
        let mut rec = eacp_sim::TraceRecorder::new();
        let observed = QueueRunner::new(4).run_observed(&job, &mut rec).unwrap();
        assert_eq!(fast, observed);
        assert!(!rec.is_empty());
    }

    #[test]
    fn queue_status_accounting_is_consistent() {
        let queue: WorkQueue<u32> = WorkQueue::new([10, 20, 30]);
        assert_eq!(
            queue.status(),
            QueueStatus {
                total: 3,
                pending: 3,
                leased: 0,
                completed: 0,
                retries: 0
            }
        );
        let lease = queue.lease().unwrap();
        assert_eq!(lease.index(), 0);
        assert_eq!(*lease.item(), 10);
        assert_eq!(lease.attempt(), 1);
        assert_eq!(queue.status().leased, 1);
        queue.fail(lease, &SpecError::invalid("flake"));
        let status = queue.status();
        assert_eq!((status.pending, status.leased, status.retries), (3, 0, 1));
        // The re-queued assignment went to the back with attempt 2.
        let (a, b, c) = (
            queue.lease().unwrap(),
            queue.lease().unwrap(),
            queue.lease().unwrap(),
        );
        assert_eq!((a.index(), b.index(), c.index()), (1, 2, 0));
        assert_eq!(c.attempt(), 2);
        for lease in [a, b, c] {
            queue.complete(lease);
        }
        assert_eq!(queue.status().completed, 3);
        assert!(queue.lease().is_none(), "drained queue leases nothing");
    }

    #[test]
    fn dropped_lease_requeues_as_a_failed_attempt() {
        let queue: WorkQueue<u32> = WorkQueue::new([7]);
        let lease = queue.lease().unwrap();
        assert_eq!(queue.status().leased, 1);
        // Dropping without complete/fail — the bug this guard exists for.
        drop(lease);
        let status = queue.status();
        assert_eq!((status.pending, status.leased, status.retries), (1, 0, 1));
        let retried = queue.lease().unwrap();
        assert_eq!(retried.attempt(), 2, "a drop counts as a failed attempt");
        queue.complete(retried);
        assert_eq!(queue.status().completed, 1);
        assert!(queue.lease().is_none());
        assert!(queue.fatal().is_none());
    }

    #[test]
    fn dropped_lease_on_final_attempt_poisons_the_queue() {
        let queue: WorkQueue<u32> = WorkQueue::new([7]).with_max_attempts(1);
        drop(queue.lease().unwrap());
        assert!(queue.lease().is_none(), "poisoned queue leases nothing");
        let fatal = queue.fatal().expect("budget exhausted by the drop");
        assert!(fatal.to_string().contains("dropped"), "{fatal}");
    }

    #[test]
    fn expired_lease_is_reclaimed_and_late_settle_is_ignored() {
        let queue: WorkQueue<u32> =
            WorkQueue::new([10, 20]).with_lease_timeout(Duration::from_millis(25));
        let wedged = queue.lease().unwrap();
        assert_eq!(wedged.index(), 0);
        std::thread::sleep(Duration::from_millis(40));
        // A peer leasing after the deadline reclaims the wedged
        // assignment; it gets the other item first (FIFO), and the
        // reclaimed one re-queues behind it with attempt 2.
        let fresh = queue.lease().unwrap();
        assert_eq!(fresh.index(), 1);
        assert_eq!(queue.take_expiries(), vec![(0, 1)]);
        assert_eq!(queue.status().retries, 1);
        let reclaimed = queue.lease().unwrap();
        assert_eq!((reclaimed.index(), reclaimed.attempt()), (0, 2));
        // The wedged holder finally settles: stale, ignored.
        queue.complete(wedged);
        assert_eq!(queue.status().completed, 0, "stale settle must not count");
        queue.complete(fresh);
        queue.complete(reclaimed);
        assert_eq!(queue.status().completed, 2);
        assert!(queue.lease().is_none());
        assert!(queue.fatal().is_none());
    }

    #[test]
    fn expiry_on_final_attempt_poisons_instead_of_spinning() {
        let queue: WorkQueue<u32> = WorkQueue::new([5])
            .with_max_attempts(1)
            .with_lease_timeout(Duration::from_millis(10));
        let wedged = queue.lease().unwrap();
        std::thread::sleep(Duration::from_millis(25));
        // The blocking lease call notices the expiry, poisons, returns.
        assert!(queue.lease().is_none());
        let fatal = queue.fatal().expect("expired final attempt poisons");
        assert!(fatal.to_string().contains("expired"), "{fatal}");
        assert_eq!(queue.take_expiries(), vec![(0, 1)]);
        drop(wedged);
    }

    #[test]
    fn drain_reports_expiries_through_on_retry() {
        // One assignment wedges on its first attempt (holds the lease past
        // the deadline without settling); a peer reclaims and re-runs it.
        let queue: WorkQueue<u32> = WorkQueue::new((0..4).collect::<Vec<u32>>())
            .with_lease_timeout(Duration::from_millis(30));
        let obs = CountingQueueObserver::default();
        let wedged_once = std::sync::atomic::AtomicBool::new(false);
        let out = queue
            .drain(3, &obs, |_worker, lease| {
                if lease.index() == 2
                    && lease.attempt() == 1
                    && !wedged_once.swap(true, Ordering::SeqCst)
                {
                    // Wedge past the deadline, then settle late (stale).
                    std::thread::sleep(Duration::from_millis(80));
                }
                Ok(*lease.item() * 10)
            })
            .unwrap();
        assert_eq!(out, vec![0, 10, 20, 30]);
        assert!(
            obs.retries.load(Ordering::Relaxed) >= 1,
            "the expiry must surface through on_retry"
        );
    }

    #[test]
    fn queued_sweep_is_identical_to_sequential_sweep() {
        let mut base = ExperimentSpec::paper_nominal();
        base.name = "queued".into();
        base.mc = McSpec {
            replications: 40,
            seed: 5,
            threads: 1,
        };
        let sweep = SweepSpec {
            base,
            axes: vec![
                SweepAxis::Lambda(vec![1.0e-4, 1.4e-3]),
                SweepAxis::K(vec![1, 5]),
            ],
        };
        let sequential = crate::run_sweep(&sweep, None, 1).unwrap();
        for workers in [1usize, 3] {
            let queued = run_sweep_queued(&sweep, None, workers, 3, &NoopQueueObserver).unwrap();
            assert_eq!(queued, sequential, "workers = {workers}");
            assert_eq!(queued.to_json().pretty(), sequential.to_json().pretty());
        }
        // Sharded queued runs cover exactly the shard's range.
        let shard = ShardId::new(1, 3).unwrap();
        let queued = run_sweep_queued(&sweep, Some(shard), 2, 3, &NoopQueueObserver).unwrap();
        let sequential = crate::run_sweep(&sweep, Some(shard), 1).unwrap();
        assert_eq!(queued, sequential);
    }
}
