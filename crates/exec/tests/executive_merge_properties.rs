//! Property tests for `ExecutiveSummary::merge`: merging any contiguous
//! partition of the seeded horizons equals the unpartitioned fold (the
//! invariant the fixed-block reduction in `run_workload_local` /
//! `run_workload_queued` and the sharded executive sweeps rely on),
//! merge is associative, and the empty summary is the exact two-sided
//! identity.

use eacp_exec::ExecutiveSummary;
use eacp_rtsched::executive::JobRecord;
use proptest::prelude::*;

/// Tasks every synthetic horizon draws its job records from; merge
/// requires both sides to agree on this arity.
const TASKS: usize = 3;

/// Builds a synthetic job record from sampled raw values; `status`
/// selects timely / late so both counter paths are exercised, and the
/// checkpoint counters are cheap deterministic functions of the inputs
/// so every field of the fold carries signal.
fn job(
    task: u64,
    energy: f64,
    response: f64,
    faults: u64,
    rollbacks: u64,
    status: u64,
) -> JobRecord {
    let release = response % 5_000.0;
    JobRecord {
        task: (task % TASKS as u64) as usize,
        release,
        absolute_deadline: release + 8_000.0,
        started: release,
        finished: release + response,
        timely: !status.is_multiple_of(3),
        energy,
        faults: faults as u32,
        rollbacks: rollbacks as u32,
        store_checkpoints: (faults * 3 % 17) as u32,
        compare_checkpoints: (rollbacks * 5 % 13) as u32,
        compare_store_checkpoints: 1 + (faults % 7) as u32,
    }
}

type RawJob = (u64, f64, f64, u64, u64, u64);

fn horizons_from(raw: &[Vec<RawJob>]) -> Vec<Vec<JobRecord>> {
    raw.iter()
        .map(|h| {
            h.iter()
                .map(|&(t, e, resp, f, r, st)| job(t, e, resp, f, r, st))
                .collect()
        })
        .collect()
}

fn absorb_all(horizons: &[Vec<JobRecord>]) -> ExecutiveSummary {
    let mut s = ExecutiveSummary::empty(TASKS);
    for h in horizons {
        s.absorb_horizon(h);
    }
    s
}

/// Float moments match to merge-rounding tolerance.
fn close(a: f64, b: f64) -> bool {
    (a.is_nan() && b.is_nan()) || (a - b).abs() <= 1e-9 * (1.0 + a.abs().max(b.abs()))
}

fn horizon_strategy() -> impl Strategy<Value = Vec<Vec<RawJob>>> {
    proptest::collection::vec(
        proptest::collection::vec(
            (
                0u64..40,
                1.0f64..1e5,
                1.0f64..2e4,
                0u64..20,
                0u64..10,
                0u64..40,
            ),
            0..12,
        ),
        1..60,
    )
}

proptest! {
    /// Any multi-way contiguous partition of the horizons, merged in
    /// order, equals the unpartitioned fold: counts exactly, moments to
    /// tolerance.
    #[test]
    fn merging_any_partition_equals_unpartitioned_fold(
        raw in horizon_strategy(),
        cuts in proptest::collection::vec(0.0f64..1.0, 1..5),
    ) {
        let horizons = horizons_from(&raw);
        let whole = absorb_all(&horizons);

        let mut bounds: Vec<usize> =
            cuts.iter().map(|f| (f * horizons.len() as f64) as usize).collect();
        bounds.push(0);
        bounds.push(horizons.len());
        bounds.sort_unstable();
        let mut merged = ExecutiveSummary::empty(TASKS);
        for pair in bounds.windows(2) {
            merged.merge(&absorb_all(&horizons[pair[0]..pair[1]]));
        }

        // Counters are exactly partition-invariant.
        prop_assert_eq!(merged.horizons, whole.horizons);
        prop_assert_eq!(merged.jobs, whole.jobs);
        prop_assert_eq!(merged.deadline_misses, whole.deadline_misses);
        prop_assert_eq!(merged.faults, whole.faults);
        prop_assert_eq!(merged.rollbacks, whole.rollbacks);
        prop_assert_eq!(&merged.checkpoints, &whole.checkpoints);
        prop_assert_eq!(merged.miss_ratio.count(), whole.miss_ratio.count());
        prop_assert_eq!(merged.miss_ratio.min(), whole.miss_ratio.min());
        prop_assert_eq!(merged.miss_ratio.max(), whole.miss_ratio.max());
        prop_assert_eq!(merged.energy.min(), whole.energy.min());
        prop_assert_eq!(merged.energy.max(), whole.energy.max());
        // Per-task rows: counters and worst response (a max) exact,
        // energy (a sum) to tolerance.
        for (m, w) in merged.per_task.iter().zip(&whole.per_task) {
            prop_assert_eq!(m.jobs, w.jobs);
            prop_assert_eq!(m.deadline_misses, w.deadline_misses);
            prop_assert_eq!(m.faults, w.faults);
            prop_assert_eq!(m.rollbacks, w.rollbacks);
            prop_assert_eq!(m.worst_response.to_bits(), w.worst_response.to_bits());
            prop_assert!(close(m.energy, w.energy));
        }
        // Float moments match to merge-rounding tolerance.
        prop_assert!(close(merged.total_energy, whole.total_energy));
        prop_assert!(close(merged.mean_miss_ratio(), whole.mean_miss_ratio()));
        prop_assert!(close(merged.mean_energy(), whole.mean_energy()));
        prop_assert!(close(merged.horizon_faults.mean(), whole.horizon_faults.mean()));
        prop_assert!(close(merged.horizon_rollbacks.mean(), whole.horizon_rollbacks.mean()));
        prop_assert!(close(
            merged.energy.population_variance(),
            whole.energy.population_variance()
        ));
        prop_assert!(close(
            merged.miss_ratio.population_variance(),
            whole.miss_ratio.population_variance()
        ));
    }

    /// Merge is associative: (a ⊔ b) ⊔ c equals a ⊔ (b ⊔ c) — counts
    /// exactly, moments to tolerance.
    #[test]
    fn merge_is_associative(raw in horizon_strategy()) {
        let horizons = horizons_from(&raw);
        let third = (horizons.len() / 3).max(1).min(horizons.len());
        let two_thirds = (2 * horizons.len() / 3).clamp(third, horizons.len());
        let a = absorb_all(&horizons[..third]);
        let b = absorb_all(&horizons[third..two_thirds]);
        let c = absorb_all(&horizons[two_thirds..]);

        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);

        let mut bc = b.clone();
        bc.merge(&c);
        let mut right = a.clone();
        right.merge(&bc);

        prop_assert_eq!(left.horizons, right.horizons);
        prop_assert_eq!(left.jobs, right.jobs);
        prop_assert_eq!(left.deadline_misses, right.deadline_misses);
        prop_assert_eq!(left.faults, right.faults);
        prop_assert_eq!(left.rollbacks, right.rollbacks);
        prop_assert_eq!(&left.checkpoints, &right.checkpoints);
        prop_assert!(close(left.total_energy, right.total_energy));
        prop_assert!(close(left.mean_miss_ratio(), right.mean_miss_ratio()));
        prop_assert!(close(left.mean_energy(), right.mean_energy()));
        prop_assert!(close(
            left.energy.population_variance(),
            right.energy.population_variance()
        ));
    }

    /// The empty summary is an exact two-sided identity of merge.
    #[test]
    fn empty_summary_is_the_merge_identity(raw in horizon_strategy()) {
        let horizons = horizons_from(&raw);
        let s = absorb_all(&horizons);

        let mut left = ExecutiveSummary::empty(TASKS);
        left.merge(&s);
        prop_assert_eq!(&left, &s);

        let mut right = s.clone();
        right.merge(&ExecutiveSummary::empty(TASKS));
        prop_assert_eq!(&right, &s);
    }
}
