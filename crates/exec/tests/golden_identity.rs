//! Golden bit-identity of the pooled/monomorphized replication path.
//!
//! Spec-built jobs run on `PolicyKind`/`FaultKind` enums that are built
//! once per block and `reset(seed)` per replication, with the engine's
//! scratch pooled across runs. These tests pin that hot path byte-identical
//! to the boxed-factory escape hatch (per-replication `Box<dyn Policy>` /
//! `Box<dyn FaultProcess>`) for **every** spec scheme × fault-process
//! combination, across runners, thread counts and the single-replication
//! replay entry point.

use eacp_exec::{Job, LocalRunner, QueueRunner, Runner};
use eacp_sim::NoopObserver;
use eacp_spec::{ExperimentSpec, FaultSpec, McSpec, PolicySpec};

/// One representative of every stochastic fault process, plus the
/// deterministic schedule, at rates that actually produce rollbacks.
fn fault_specs() -> Vec<(&'static str, FaultSpec)> {
    vec![
        ("poisson", FaultSpec::Poisson { lambda: 2e-3 }),
        (
            "weibull",
            FaultSpec::Weibull {
                shape: 0.7,
                scale: 700.0,
            },
        ),
        (
            "burst",
            FaultSpec::Burst {
                quiet_rate: 1e-4,
                burst_rate: 2e-2,
                mean_quiet_dwell: 5_000.0,
                mean_burst_dwell: 500.0,
            },
        ),
        (
            "phased",
            FaultSpec::Phased {
                phases: vec![(4_000.0, 5e-4), (1_000.0, 5e-3)],
                repeat: true,
            },
        ),
        (
            "deterministic",
            FaultSpec::Deterministic {
                times: vec![350.0, 1_200.0, 2_700.0, 6_100.0],
            },
        ),
    ]
}

fn golden_spec(tag: &str, name: &str, faults: FaultSpec, reps: u64) -> ExperimentSpec {
    let mut spec = ExperimentSpec::paper_nominal();
    spec.name = format!("golden-{tag}-{name}");
    spec.policy = PolicySpec::from_tag(tag, 1.4e-3, 5, 0).expect("known scheme tag");
    spec.faults = faults;
    spec.mc = McSpec {
        replications: reps,
        seed: 77,
        threads: 1,
    };
    spec
}

/// The trait-object path: fresh `Box<dyn ...>` per replication, virtual
/// dispatch, no pooling.
fn boxed_job(spec: &ExperimentSpec) -> Job {
    Job::from_spec_boxed(spec).expect("valid golden job")
}

#[test]
fn pooled_path_matches_boxed_path_for_every_scheme_and_fault_process() {
    for tag in PolicySpec::TAGS {
        for (fault_name, fault_spec) in fault_specs() {
            let spec = golden_spec(tag, fault_name, fault_spec, 120);
            let pooled_job = Job::from_spec(&spec).unwrap();
            let boxed = LocalRunner::new(1).run(&boxed_job(&spec)).unwrap();
            let pooled = LocalRunner::new(1).run(&pooled_job).unwrap();
            assert_eq!(pooled, boxed, "scheme {tag} × faults {fault_name}");
            // Some combinations must actually exercise faults for the
            // identity to mean anything.
            if fault_name == "poisson" {
                assert!(pooled.faults.mean() > 0.0, "{tag} saw no faults");
            }
        }
    }
}

#[test]
fn pooled_path_is_runner_invariant() {
    // A scheme with rollback-driven replanning (deep policy state) and a
    // state-machine fault process: the hardest combination to pool.
    let spec = golden_spec(
        "a_d_s",
        "burst",
        fault_specs().remove(2).1, // burst
        200,
    );
    let job = Job::from_spec(&spec).unwrap();
    let reference = LocalRunner::new(1).run(&job).unwrap();
    for threads in [2, 4, 8] {
        let threaded = LocalRunner::new(threads).run(&job).unwrap();
        assert_eq!(reference, threaded, "threads = {threads}");
    }
    for workers in [1, 3, 16] {
        let queued = QueueRunner::new(workers).run(&job).unwrap();
        assert_eq!(reference, queued, "workers = {workers}");
    }
}

#[test]
fn single_replication_replay_matches_the_runner_path() {
    // `Job::run_replication` routes through the same pooled machinery, so
    // replaying replication `i` alone reproduces its in-run outcome.
    for (fault_name, fault_spec) in fault_specs() {
        let spec = golden_spec("a_d_c", fault_name, fault_spec, 40);
        let pooled_job = Job::from_spec(&spec).unwrap();
        let boxed = boxed_job(&spec);
        for rep in [0u64, 7, 39] {
            let a = pooled_job.run_replication(rep, &mut NoopObserver);
            let b = boxed.run_replication(rep, &mut NoopObserver);
            assert_eq!(a, b, "rep {rep} × faults {fault_name}");
        }
    }
}
