//! Fleet conformance and failure-mode tests for the remote transport:
//!
//! * N servers × M workers produce a `Summary` bit-identical to the
//!   sequential `LocalRunner` — the determinism contract the whole
//!   transport rides on.
//! * Dead endpoints (connection refused), black holes (accepts, never
//!   replies) and a server killed mid-lease are all absorbed by endpoint
//!   rotation, the lease retry budget and the in-process fallback.
//! * Transport errors carry full provenance: endpoint, lease attempt,
//!   transport try, and protocol phase.

use eacp_exec::{Job, LocalRunner, QueueRunner, RemoteServer, RemoteWorker, Runner};
use eacp_spec::{ExperimentSpec, McSpec, QueueSpec, SweepAxis, SweepSpec};
use std::io::Read;
use std::net::TcpListener;

fn spec(reps: u64, seed: u64) -> ExperimentSpec {
    let mut spec = ExperimentSpec::paper_nominal();
    spec.mc = McSpec {
        replications: reps,
        seed,
        threads: 1,
    };
    spec
}

fn fleet_runner(
    endpoints: Vec<String>,
    workers: usize,
    timeout_ms: u64,
    max_attempts: u32,
) -> QueueRunner<RemoteWorker> {
    let worker = RemoteWorker::new(endpoints, timeout_ms).with_fallback_attempt(max_attempts);
    let lease_timeout = worker.lease_timeout();
    QueueRunner::new(workers)
        .with_max_attempts(max_attempts)
        .with_worker(worker)
        .with_lease_timeout(lease_timeout)
}

/// A `host:port` that refuses connections (bound, then released).
fn closed_port() -> String {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let endpoint = listener.local_addr().unwrap().to_string();
    drop(listener);
    endpoint
}

#[test]
fn two_servers_times_1_4_and_16_workers_match_local_runner() {
    let s1 = RemoteServer::bind("127.0.0.1:0").unwrap();
    let s2 = RemoteServer::bind("127.0.0.1:0").unwrap();
    let endpoints = vec![s1.endpoint().to_owned(), s2.endpoint().to_owned()];
    let spec = spec(640, 7);
    let job = Job::from_spec(&spec).unwrap();
    let reference = LocalRunner::new(1).run(&job).unwrap();
    for workers in [1usize, 4, 16] {
        let fleet = fleet_runner(endpoints.clone(), workers, 5_000, 3)
            .run(&job)
            .unwrap();
        assert_eq!(fleet, reference, "2 servers x {workers} workers");
    }
}

#[test]
fn dead_endpoint_is_absorbed_by_rotation() {
    let live = RemoteServer::bind("127.0.0.1:0").unwrap();
    let endpoints = vec![closed_port(), live.endpoint().to_owned()];
    let job = Job::from_spec(&spec(200, 3)).unwrap();
    let reference = LocalRunner::new(1).run(&job).unwrap();
    let fleet = fleet_runner(endpoints, 4, 2_000, 3).run(&job).unwrap();
    assert_eq!(fleet, reference, "half-dead fleet still bit-identical");
}

#[test]
fn server_killed_mid_lease_is_recovered_by_the_retry_budget() {
    let live = RemoteServer::bind("127.0.0.1:0").unwrap();
    // A "server" that accepts one connection, reads the request, and dies
    // without replying — then its port refuses further connections. This
    // is a deterministic stand-in for SIGKILL mid-lease.
    let killer = TcpListener::bind("127.0.0.1:0").unwrap();
    let killer_endpoint = killer.local_addr().unwrap().to_string();
    let kill = std::thread::spawn(move || {
        if let Ok((mut conn, _)) = killer.accept() {
            let mut buf = [0u8; 4096];
            let _ = conn.read(&mut buf);
        }
        // Dropping the listener (and the half-read connection) closes the
        // port: every later connect is refused immediately.
    });
    let endpoints = vec![killer_endpoint, live.endpoint().to_owned()];
    let job = Job::from_spec(&spec(320, 5)).unwrap();
    let reference = LocalRunner::new(1).run(&job).unwrap();
    let fleet = fleet_runner(endpoints, 4, 2_000, 3).run(&job).unwrap();
    assert_eq!(fleet, reference, "mid-lease kill must not change a bit");
    kill.join().unwrap();
}

#[test]
fn black_hole_endpoint_times_out_and_falls_back_in_process() {
    // Bound but never accepted: connects land in the backlog and succeed,
    // writes buffer, reads time out — the wedged-transport case the lease
    // deadline and read timeout exist for.
    let hole = TcpListener::bind("127.0.0.1:0").unwrap();
    let endpoint = hole.local_addr().unwrap().to_string();
    let job = Job::from_spec(&spec(48, 9)).unwrap();
    let reference = LocalRunner::new(1).run(&job).unwrap();
    let fleet = fleet_runner(vec![endpoint], 2, 200, 2).run(&job).unwrap();
    assert_eq!(fleet, reference);
    drop(hole);
}

#[test]
fn fully_dead_fleet_degrades_to_in_process_execution() {
    let endpoints = vec![closed_port(), closed_port()];
    let job = Job::from_spec(&spec(64, 1)).unwrap();
    let reference = LocalRunner::new(1).run(&job).unwrap();
    let fleet = fleet_runner(endpoints, 3, 300, 2).run(&job).unwrap();
    assert_eq!(fleet, reference, "no servers at all still completes");
}

#[test]
fn transport_errors_carry_endpoint_attempt_and_phase_provenance() {
    let dead = closed_port();
    let job = Job::from_spec(&spec(16, 2)).unwrap();
    // No fallback: exhaust the budget so the provenance surfaces.
    let worker = RemoteWorker::new(vec![dead.clone()], 300);
    let err = QueueRunner::new(1)
        .with_max_attempts(2)
        .with_worker(worker)
        .run(&job)
        .unwrap_err()
        .to_string();
    assert!(err.contains(&dead), "endpoint missing: {err}");
    assert!(err.contains("connect failed"), "phase missing: {err}");
    assert!(err.contains("lease attempt 2"), "attempt missing: {err}");
    assert!(err.contains("transport try 1/1"), "try missing: {err}");
    assert!(err.contains("after 2 attempts"), "budget missing: {err}");
}

#[test]
fn endpoints_spec_routes_through_the_fleet_bit_identically() {
    let server = RemoteServer::bind("127.0.0.1:0").unwrap();
    let plain = spec(320, 5);
    let mut remote = plain.clone();
    remote.executor.queue = Some(QueueSpec {
        workers: 4,
        max_attempts: 3,
        endpoints: vec![server.endpoint().to_owned()],
        timeout_ms: 5_000,
    });
    let (a, report) = eacp_exec::run(&remote).unwrap();
    let (b, _) = eacp_exec::run(&plain).unwrap();
    assert_eq!(a, b, "spec-routed fleet run must equal the local run");
    // Provenance: the report records the fleet scheduling.
    let q = report.spec.executor.queue.expect("queue section preserved");
    assert_eq!(q.endpoints.len(), 1);
}

#[test]
fn remote_sweep_matches_sequential_sweep() {
    let s1 = RemoteServer::bind("127.0.0.1:0").unwrap();
    let s2 = RemoteServer::bind("127.0.0.1:0").unwrap();
    let mut base = spec(40, 11);
    base.name = "fleet-sweep".into();
    let sweep = SweepSpec {
        base,
        axes: vec![
            SweepAxis::Lambda(vec![1.0e-4, 1.4e-3]),
            SweepAxis::K(vec![1, 5]),
        ],
    };
    let sequential = eacp_exec::run_sweep(&sweep, None, 1).unwrap();
    let runner = fleet_runner(
        vec![s1.endpoint().to_owned(), s2.endpoint().to_owned()],
        4,
        5_000,
        3,
    );
    let remote = eacp_exec::run_sweep_with(&sweep, None, &runner).unwrap();
    assert_eq!(remote, sequential, "grid bytes are location-independent");
}
