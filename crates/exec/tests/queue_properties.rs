//! Property tests of the work-queue scheduler's determinism contract:
//! for any worker count and any injected lease-failure pattern (workers
//! abandoning assignments mid-block), `QueueRunner` produces a `Summary`
//! bit-identical to the sequential `LocalRunner::new(1)`.

// Test doubles key attempt counts by block id and never iterate the map,
// so hash order is irrelevant (see clippy.toml on R1 scope).
#![allow(clippy::disallowed_types)]

use eacp_exec::{
    BlockAssignment, InProcessWorker, Job, LocalRunner, QueueRunner, Runner, Summary, Worker,
};
use eacp_spec::{ExperimentSpec, McSpec, SpecError};
use proptest::prelude::*;
use std::collections::HashMap;
use std::sync::Mutex;

fn job(reps: u64, seed: u64) -> Job {
    let mut spec = ExperimentSpec::paper_nominal();
    spec.mc = McSpec {
        replications: reps,
        seed,
        threads: 0,
    };
    Job::from_spec(&spec).expect("valid property-test spec")
}

/// Abandons the first `fail_attempts` leases of every block whose bit is
/// set in `fail_mask` — a deterministic model of workers dying mid-block.
struct FlakyWorker {
    fail_mask: u64,
    fail_attempts: u32,
    attempts: Mutex<HashMap<u64, u32>>,
}

impl FlakyWorker {
    fn new(fail_mask: u64, fail_attempts: u32) -> Self {
        Self {
            fail_mask,
            fail_attempts,
            attempts: Mutex::new(HashMap::new()),
        }
    }
}

impl Worker for FlakyWorker {
    fn name(&self) -> &'static str {
        "flaky"
    }
    fn run_assignment(
        &self,
        job: &Job,
        assignment: BlockAssignment,
        lease_attempt: u32,
    ) -> Result<Summary, SpecError> {
        let attempt = {
            let mut seen = self.attempts.lock().unwrap();
            let n = seen.entry(assignment.block).or_insert(0);
            *n += 1;
            *n
        };
        let targeted = assignment.block < 64 && (self.fail_mask >> assignment.block) & 1 == 1;
        if targeted && attempt <= self.fail_attempts {
            return Err(SpecError::invalid(format!(
                "injected abandonment (block {}, attempt {attempt})",
                assignment.block
            )));
        }
        InProcessWorker.run_assignment(job, assignment, lease_attempt)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    /// Any worker count, any failed-lease pattern, any retry depth the
    /// budget survives: the queue's merged summary equals the sequential
    /// runner's bit for bit.
    #[test]
    fn queue_runner_with_failures_matches_sequential_local_runner(
        workers in 1usize..=64,
        fail_mask in 0u64..256,
        fail_attempts in 1u32..=2,
        seed in 0u64..1000,
    ) {
        // Block size 8 over 56 replications: 7 blocks, so worker counts
        // both below and far above the block count are exercised.
        let job = job(56, seed);
        let reference = LocalRunner::new(1).with_block_size(8).run(&job).unwrap();
        let queued = QueueRunner::new(workers)
            .with_block_size(8)
            .with_max_attempts(fail_attempts + 1)
            .with_worker(FlakyWorker::new(fail_mask, fail_attempts))
            .run(&job)
            .unwrap();
        prop_assert_eq!(&queued, &reference,
            "workers={} fail_mask={:#b} fail_attempts={}", workers, fail_mask, fail_attempts);
    }

    /// The default (derived) block rule is shared too: queue and local
    /// runners agree for arbitrary job sizes without explicit block sizes.
    #[test]
    fn queue_runner_matches_local_runner_for_arbitrary_job_sizes(
        reps in 1u64..200,
        workers in 1usize..=16,
        threads in 1usize..=8,
    ) {
        let job = job(reps, 11);
        let local = LocalRunner::new(threads).run(&job).unwrap();
        let queued = QueueRunner::new(workers).run(&job).unwrap();
        prop_assert_eq!(&queued, &local, "reps={} workers={} threads={}", reps, workers, threads);
    }
}
