//! Conformance suite for the closed-form serve tier.
//!
//! The tier's promise: a replication-invariant cell served analytically
//! is statistically indistinguishable from — and for point-mass cells
//! exactly equal to — the full Monte-Carlo loop, and every non-invariant
//! cell falls back to MC bit-identically. These tests pin the promise.

use eacp_exec::{run_sweep_tiered, run_tiered, serve_closed_form, Job, LocalRunner};
use eacp_spec::{ExperimentSpec, FaultSpec, McSpec, ServeTier, SweepAxis, SweepSpec, ToJson};

fn spec_with(faults: FaultSpec, reps: u64) -> ExperimentSpec {
    let mut spec = ExperimentSpec::paper_nominal();
    spec.faults = faults;
    spec.mc = McSpec {
        replications: reps,
        seed: 11,
        threads: 1,
    };
    spec
}

/// The Wilson score interval at z for a Bernoulli proportion — the bound
/// the ISSUE pins the analytic ≡ MC conformance to.
fn wilson(successes: f64, n: f64, z: f64) -> (f64, f64) {
    let p = successes / n;
    let z2 = z * z;
    let denom = 1.0 + z2 / n;
    let center = (p + z2 / (2.0 * n)) / denom;
    let half = (z / denom) * (p * (1.0 - p) / n + z2 / (4.0 * n * n)).sqrt();
    (center - half, center + half)
}

#[test]
fn analytic_matches_forced_mc_on_invariant_cells() {
    for faults in [
        FaultSpec::Poisson { lambda: 0.0 },
        FaultSpec::Deterministic { times: vec![] },
        FaultSpec::Deterministic {
            times: vec![700.0, 4200.0],
        },
    ] {
        let spec = spec_with(faults, 400);
        let (analytic, report_a) = run_tiered(&spec, true).unwrap();
        let (mc, report_m) = run_tiered(&spec, false).unwrap();
        assert_eq!(report_a.served, ServeTier::Analytic);
        assert_eq!(report_m.served, ServeTier::Mc);

        // The analytic p_timely must sit inside the MC run's Wilson
        // interval (for a point mass the two proportions are equal, so
        // this is the conservative form of the bound).
        let (lo, hi) = wilson(mc.timely as f64, mc.replications as f64, 1.96);
        let p = analytic.p_timely();
        assert!(
            (lo..=hi).contains(&p),
            "analytic p_timely {p} outside MC Wilson interval [{lo}, {hi}]"
        );

        // Stronger than Wilson: an invariant cell is a point mass, so
        // every moment agrees exactly, not just within sampling error.
        assert_eq!(analytic, mc, "invariant cell must be an exact point mass");
        assert_eq!(analytic.energy_all.sample_variance(), 0.0);
        assert_eq!(report_a.summary, report_m.summary);
    }
}

#[test]
fn non_invariant_cells_fall_back_bit_identically() {
    for faults in [
        FaultSpec::Poisson { lambda: 1.4e-3 },
        FaultSpec::Weibull {
            shape: 0.7,
            scale: 900.0,
        },
    ] {
        let spec = spec_with(faults, 150);
        let (with_tier, report_t) = run_tiered(&spec, true).unwrap();
        let (forced_mc, report_f) = run_tiered(&spec, false).unwrap();
        assert_eq!(report_t.served, ServeTier::Mc, "must fall back to MC");
        assert_eq!(report_f.served, ServeTier::Mc);
        assert_eq!(
            with_tier, forced_mc,
            "the tier toggle must not change an MC result by a single bit"
        );
        assert_eq!(report_t.to_json().pretty(), report_f.to_json().pretty());
    }
}

#[test]
fn sweep_marks_only_invariant_points_analytic() {
    let mut base = ExperimentSpec::paper_nominal();
    base.name = "tier-grid".into();
    base.mc = McSpec {
        replications: 80,
        seed: 3,
        threads: 1,
    };
    let sweep = SweepSpec {
        base,
        axes: vec![SweepAxis::Lambda(vec![0.0, 1.4e-3])],
    };
    let grid = run_sweep_tiered(&sweep, None, &LocalRunner::new(1), true).unwrap();
    let tiers: Vec<ServeTier> = grid.points.iter().map(|p| p.report.served).collect();
    assert_eq!(tiers, vec![ServeTier::Analytic, ServeTier::Mc]);

    // And with the tier disabled, everything is MC and bit-identical on
    // the λ > 0 point.
    let forced = run_sweep_tiered(&sweep, None, &LocalRunner::new(1), false).unwrap();
    assert!(forced
        .points
        .iter()
        .all(|p| p.report.served == ServeTier::Mc));
    assert_eq!(
        grid.points[1].report.summary,
        forced.points[1].report.summary
    );
    assert_eq!(
        grid.points[0].report.summary.p_timely,
        forced.points[0].report.summary.p_timely
    );
}

#[test]
fn served_marker_round_trips_through_report_json() {
    use eacp_spec::{FromJson, RunReport};
    let spec = spec_with(FaultSpec::Poisson { lambda: 0.0 }, 60);
    let (_, report) = run_tiered(&spec, true).unwrap();
    assert_eq!(report.served, ServeTier::Analytic);
    let text = report.to_json().pretty();
    assert!(text.contains("\"served\": \"analytic\""));
    let back = RunReport::from_json(&eacp_spec::Json::parse(&text).unwrap()).unwrap();
    assert_eq!(back, report);

    // MC reports omit the marker entirely — historical documents keep
    // their bytes — and deserialize back to the Mc default.
    let (_, mc_report) = run_tiered(&spec, false).unwrap();
    let mc_text = mc_report.to_json().pretty();
    assert!(!mc_text.contains("served"));
    let mc_back = RunReport::from_json(&eacp_spec::Json::parse(&mc_text).unwrap()).unwrap();
    assert_eq!(mc_back.served, ServeTier::Mc);
}

#[test]
fn closed_form_serve_scales_to_any_replication_count() {
    // The whole point of the tier: cost is one execution regardless of N.
    let spec = spec_with(FaultSpec::Poisson { lambda: 0.0 }, 1_000_000);
    let job = Job::from_spec(&spec).unwrap();
    let summary = serve_closed_form(&job).expect("λ=0 is invariant");
    assert_eq!(summary.replications, 1_000_000);
    assert_eq!(summary.energy_all.sample_variance(), 0.0);
    assert_eq!(summary.p_timely(), 1.0);
}
