//! Property test of the replan memo's transparency contract: the
//! `PlanCache`/`ArgminCache` inside the adaptive policies survive
//! `reset(seed)` on purpose (they memoize a pure function of the plan
//! inputs), so a replication's outcome must be bit-identical whether the
//! cache is cold or warmed by any number of earlier replications.

use eacp_exec::Job;
use eacp_sim::NoopObserver;
use eacp_spec::{ExperimentSpec, FaultSpec, McSpec, PolicySpec};
use proptest::prelude::*;

fn adaptive_job(tag: &str, lambda: f64, seed: u64, reps: u64) -> Job {
    let mut spec = ExperimentSpec::paper_nominal();
    spec.name = format!("replan-cache-{tag}");
    spec.policy = PolicySpec::from_tag(tag, lambda, 5, 0).expect("known scheme tag");
    spec.faults = FaultSpec::Poisson { lambda };
    spec.mc = McSpec {
        replications: reps,
        seed,
        threads: 1,
    };
    Job::from_spec(&spec).expect("valid property-test spec")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]
    #[test]
    fn warm_cache_never_changes_a_replication(
        // The adaptive schemes that replan (and so consult the memo).
        tag_idx in 0usize..4,
        // Rates from fault-free (0) to replanning-dominated (~2e-2).
        lambda_mils in 0u32..21,
        seed in 0u64..1_000,
        warmups in 1u64..12,
    ) {
        let tag = ["a_d_s", "a_d", "a_s", "a_c"][tag_idx];
        let lambda = f64::from(lambda_mils) * 1e-3;
        let job = adaptive_job(tag, lambda, seed, warmups + 1);

        // Cold: the target replication is the first thing this
        // replicator ever runs — every replan computes from scratch.
        let cold = job
            .replicator()
            .run_replication(warmups, &mut NoopObserver);

        // Warm: the same replication after `warmups` earlier ones have
        // filled the memo with whatever keys they produced.
        let mut warmed = job.replicator();
        for i in 0..warmups {
            warmed.run_replication(i, &mut NoopObserver);
        }
        let warm = warmed.run_replication(warmups, &mut NoopObserver);

        prop_assert_eq!(
            cold, warm,
            "replication outcome depended on replan-cache warmth"
        );
    }
}
