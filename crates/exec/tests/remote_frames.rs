//! Property and adversarial tests of the remote frame codec: round-trip
//! fidelity for arbitrary payload streams, and the R4 contract that
//! corrupt, truncated or oversized input is always a `SpecError`, never a
//! panic or an unbounded allocation.

use eacp_exec::remote::{read_frame, write_frame, MAX_FRAME_BYTES};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any sequence of payloads (including empty ones and arbitrary bytes
    /// laundered through UTF-8) reads back frame for frame, ending in a
    /// clean EOF.
    #[test]
    fn frame_streams_round_trip(
        raw in proptest::collection::vec(
            proptest::collection::vec(0u8..=255, 0..512),
            0..6,
        ),
    ) {
        let payloads: Vec<String> = raw
            .iter()
            .map(|bytes| String::from_utf8_lossy(bytes).into_owned())
            .collect();
        let mut buf = Vec::new();
        for payload in &payloads {
            write_frame(&mut buf, payload).unwrap();
        }
        let mut r = buf.as_slice();
        for payload in &payloads {
            prop_assert_eq!(read_frame(&mut r).unwrap().as_deref(), Some(payload.as_str()));
        }
        prop_assert_eq!(read_frame(&mut r).unwrap(), None, "clean EOF after the last frame");
    }

    /// Feeding the reader arbitrary garbage terminates without a panic:
    /// every frame either parses, ends the stream cleanly, or errors.
    #[test]
    fn arbitrary_bytes_never_panic_the_reader(
        garbage in proptest::collection::vec(0u8..=255, 0..4096),
    ) {
        let mut r = garbage.as_slice();
        while let Ok(Some(_)) = read_frame(&mut r) {}
    }

    /// Truncating a valid frame anywhere — inside the length prefix or
    /// inside the payload — is an error (or a clean EOF at offset zero),
    /// never a short read silently returned as data.
    #[test]
    fn truncated_frames_are_errors_not_short_reads(
        bytes in proptest::collection::vec(0u8..=255, 1..512),
        cut_percent in 0usize..100,
    ) {
        let payload = String::from_utf8_lossy(&bytes).into_owned();
        let mut buf = Vec::new();
        write_frame(&mut buf, &payload).unwrap();
        let cut = (buf.len() * cut_percent) / 100;
        prop_assert!(cut < buf.len());
        let mut r = &buf[..cut];
        match read_frame(&mut r) {
            Ok(None) => prop_assert_eq!(cut, 0, "EOF is only clean at a frame boundary"),
            Err(_) => {}
            Ok(Some(s)) => prop_assert!(false, "read a whole frame from a truncated stream: {:?}", s),
        }
    }
}

#[test]
fn oversized_declared_length_is_rejected_before_allocating() {
    let mut r: &[u8] = &((MAX_FRAME_BYTES as u32) + 1).to_be_bytes();
    let err = read_frame(&mut r).unwrap_err().to_string();
    assert!(err.contains("exceeds"), "{err}");
    // The all-ones prefix (4 GiB claim) too.
    let mut r: &[u8] = &[0xff; 4];
    assert!(read_frame(&mut r).is_err());
}

#[test]
fn oversized_payload_is_refused_at_the_writer() {
    let huge = "x".repeat(MAX_FRAME_BYTES + 1);
    let mut buf = Vec::new();
    let err = write_frame(&mut buf, &huge).unwrap_err().to_string();
    assert!(err.contains("exceeds"), "{err}");
    assert!(buf.is_empty(), "nothing must hit the wire");
}

#[test]
fn frame_exactly_at_the_cap_round_trips() {
    let max = "y".repeat(MAX_FRAME_BYTES);
    let mut buf = Vec::new();
    write_frame(&mut buf, &max).unwrap();
    let mut r = buf.as_slice();
    assert_eq!(read_frame(&mut r).unwrap(), Some(max));
}
