//! Conformance suite for the spec-driven EDF executive: determinism
//! (same spec + seed ⇒ byte-identical report), consistency with the
//! single-job Monte-Carlo path, and invariance of the aggregates.

use eacp_exec::{run_executive, ExecutiveJob, Job, LocalRunner, QueueRunner, Runner};
use eacp_sim::{replication_seed, NoopObserver};
use eacp_spec::ToJson;
use eacp_spec::{
    CostsSpec, DvsSpec, ExecSpec, ExecutiveMcSpec, ExecutiveSpec, ExperimentSpec, FaultSpec,
    McSpec, PolicyAssignment, PolicySpec, ScenarioSpec, TaskSetSpec, WorkSpec,
};

fn duo_spec() -> ExecutiveSpec {
    let lambda = 8e-4;
    let mut spec = ExecutiveSpec::new(
        "conformance-duo",
        TaskSetSpec::implicit([("sensor", 600.0, 4_000), ("control", 1_300.0, 8_000)]),
    );
    spec.faults = FaultSpec::Poisson { lambda };
    spec.policy = PolicyAssignment::Shared(PolicySpec::from_tag("a_d_s", lambda, 2, 0).unwrap());
    spec.hyperperiods = 3;
    spec.seed = 99;
    spec
}

/// Same spec + seed ⇒ byte-identical `ExecutiveRunReport` JSON, including
/// through a serialize/parse cycle of the spec itself.
#[test]
fn executive_report_is_deterministic() {
    let spec = duo_spec();
    let (_, first) = run_executive(&spec).unwrap();
    let (_, second) = run_executive(&spec).unwrap();
    assert_eq!(first.to_json_string(), second.to_json_string());

    // The document round-trip drives the identical run.
    let reparsed = ExecutiveSpec::from_json_str(&spec.to_json_string()).unwrap();
    let (_, third) = run_executive(&reparsed).unwrap();
    assert_eq!(first.to_json_string(), third.to_json_string());

    // A different seed changes the fault stream (and, with λ > 0 over a
    // long horizon, almost surely the report).
    let mut reseeded = spec.clone();
    reseeded.seed = 100;
    let (_, fourth) = run_executive(&reseeded).unwrap();
    assert_ne!(first.to_json_string(), fourth.to_json_string());
}

/// A single-task executive over one hyperperiod is the same computation
/// as one replication of the equivalent single-job Monte-Carlo
/// experiment: same scenario, same policy, same fault stream.
#[test]
fn single_task_executive_matches_single_job_run() {
    for lambda in [0.0, 1.4e-3, 4e-3] {
        let wcet = 5_200.0;
        let deadline = 10_000u64;
        let mc_seed = 77;

        let experiment = ExperimentSpec {
            name: "single-job".into(),
            scenario: ScenarioSpec {
                work: WorkSpec::Cycles {
                    work_cycles: wcet,
                    deadline: deadline as f64,
                },
                costs: CostsSpec::PaperScp,
                dvs: DvsSpec::PaperDefault,
                processors: 2,
            },
            faults: FaultSpec::Poisson { lambda },
            policy: PolicySpec::from_tag("a_d_s", lambda, 5, 0).unwrap(),
            mc: McSpec {
                replications: 1,
                seed: mc_seed,
                threads: 1,
            },
            // The executive runs jobs under the physical default
            // semantics; the experiment must match.
            executor: ExecSpec::default(),
        };
        let job = Job::from_spec(&experiment).unwrap();
        let out = job.run_replication(0, &mut NoopObserver);

        let mut executive = ExecutiveSpec::new(
            "single-task",
            TaskSetSpec::implicit([("solo", wcet, deadline)]),
        );
        executive.faults = FaultSpec::Poisson { lambda };
        executive.policy = PolicyAssignment::Shared(experiment.policy);
        executive.hyperperiods = 1;
        // The Monte-Carlo path seeds replication i's fault stream with
        // replication_seed(base, i); hand the executive replication 0's
        // stream so both consume identical fault arrivals.
        executive.seed = replication_seed(mc_seed, 0);

        let (raw, report) = run_executive(&executive).unwrap();
        assert_eq!(raw.jobs.len(), 1, "λ={lambda}");
        let j = &raw.jobs[0];
        assert_eq!(j.timely, out.timely, "λ={lambda}");
        assert_eq!(j.faults, out.faults, "λ={lambda}");
        assert_eq!(j.rollbacks, out.rollbacks, "λ={lambda}");
        assert_eq!(j.store_checkpoints, out.store_checkpoints, "λ={lambda}");
        assert_eq!(j.compare_checkpoints, out.compare_checkpoints, "λ={lambda}");
        assert_eq!(
            j.compare_store_checkpoints, out.compare_store_checkpoints,
            "λ={lambda}"
        );
        assert_eq!(j.energy, out.energy, "λ={lambda}");
        assert_eq!(j.finished - j.started, out.finish_time, "λ={lambda}");
        assert_eq!(report.summary.total_energy, out.energy, "λ={lambda}");
        assert_eq!(
            report.summary.deadline_misses,
            u64::from(!out.timely),
            "λ={lambda}"
        );
    }
}

/// The serializable aggregates are a pure fold of the raw per-job
/// records — totals match, per-task rows sum to the summary.
#[test]
fn aggregates_are_consistent_with_raw_records() {
    let (raw, report) = run_executive(&duo_spec()).unwrap();
    assert_eq!(report.summary.jobs as usize, raw.jobs.len());
    assert_eq!(report.summary.deadline_misses as usize, raw.deadline_misses);
    let energy: f64 = raw.jobs.iter().map(|j| j.energy).sum();
    assert!((report.summary.total_energy - energy).abs() < 1e-9);
    let faults: u64 = raw.jobs.iter().map(|j| u64::from(j.faults)).sum();
    assert_eq!(report.summary.faults, faults);
    let per_task_jobs: u64 = report.tasks.iter().map(|t| t.jobs).sum();
    assert_eq!(per_task_jobs, report.summary.jobs);
    let per_task_cp: u64 = report.tasks.iter().map(|t| t.checkpoints.total()).sum();
    assert_eq!(per_task_cp, report.summary.checkpoints.total());
    // Worst response per task really is the max over that task's jobs.
    for (idx, t) in report.tasks.iter().enumerate() {
        let worst = raw
            .jobs_of(idx)
            .map(|j| j.finished - j.release)
            .fold(0.0f64, f64::max);
        assert_eq!(t.worst_response, worst);
    }
}

/// The executive Monte-Carlo reduction is runner-invariant: every thread
/// count, every worker count and any retry budget produce a summary that
/// serializes byte-identically to the single-thread reference — the
/// property the sharded sweeps, the queue path and the result store's
/// cache hits all rest on.
#[test]
fn executive_summary_is_byte_identical_across_threads_and_workers() {
    let mut spec = duo_spec();
    spec.mc = Some(ExecutiveMcSpec {
        replications: 24,
        threads: 1,
        queue: None,
    });
    let job = ExecutiveJob::from_spec(&spec).unwrap();
    let reference = LocalRunner::new(1)
        .run_executive(&job)
        .unwrap()
        .to_json()
        .pretty();
    for threads in [2usize, 4, 8] {
        let summary = LocalRunner::new(threads).run_executive(&job).unwrap();
        assert_eq!(summary.to_json().pretty(), reference, "threads = {threads}");
    }
    for workers in [1usize, 3, 16] {
        let summary = QueueRunner::new(workers).run_executive(&job).unwrap();
        assert_eq!(summary.to_json().pretty(), reference, "workers = {workers}");
    }
}

/// Per-task assignments really drive different policies per task.
#[test]
fn per_task_policies_are_applied_per_task() {
    let mut spec = duo_spec();
    spec.policy = PolicyAssignment::PerTask(vec![
        PolicySpec::from_tag("a_d_s", 8e-4, 2, 0).unwrap(),
        PolicySpec::from_tag("kft", 8e-4, 3, 0).unwrap(),
    ]);
    let (_, report) = run_executive(&spec).unwrap();
    assert_eq!(
        report.policy_names,
        vec!["A_D_S".to_owned(), "k-f-t".into()]
    );

    // The shared-assignment run differs (k-f-t schedules differently).
    let (_, shared) = run_executive(&duo_spec()).unwrap();
    assert_ne!(
        report.tasks[1].checkpoints, shared.tasks[1].checkpoints,
        "k-f-t and A_D_S should place different checkpoints on the control task"
    );
}
